// Experiment E-SOUND — the §4 soundness theorem, checked exhaustively:
//
//   Equation 1:  ql ->l ql'  implies  abs(ql) = abs(ql')  or
//                                     abs(ql) ->h abs(ql')
//
// For every reachable asynchronous transition, the §4 abstraction function
// must yield a stutter or a rendezvous step (two steps for a remote-sent
// fused reply — see refine/abstraction.hpp). This bench reports, per
// protocol and N: asynchronous states, validated transitions, and the
// stutter/step split. Any violation aborts the row.
#include <cstdio>
#include <iostream>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/abstraction.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/storage_cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/checker.hpp"

using namespace ccref;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  StorageFlags storage = storage_flags(cli, "512M");
  std::size_t mem = storage.memory_limit;
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();

  std::printf("E-SOUND: Equation-1 simulation relation, checked per edge\n\n");
  Table table({"Protocol", "Variant", "N", "Async states", "Edges checked",
               "Stutters", "Rendezvous steps", "Violations"});
  JsonArrayFile json;

  auto run = [&](const char* name, const char* variant,
                 const ir::Protocol& p, const refine::Options& opts, int n) {
    auto rp = refine::refine(p, opts);
    runtime::AsyncSystem sys(rp, n);
    sem::RendezvousSystem rv(p, n);
    auto simrel = refine::make_simulation_checker(sys, rv);

    std::size_t stutters = 0, steps = 0, violations = 0;
    verify::CheckOptions<runtime::AsyncSystem> copts;
    copts.memory_limit = mem;
    copts.hash_compact = storage.hash_compact;
    copts.spill = storage.spill;
    copts.external = storage.external;
    copts.want_trace = false;
    copts.edge_check = [&](const runtime::AsyncState& a,
                           const runtime::AsyncState& b,
                           const sem::Label& label) -> std::string {
      auto ra = refine::abstract(sys, a);
      auto rb = refine::abstract(sys, b);
      ByteSink sa, sb;
      rv.encode(ra, sa);
      rv.encode(rb, sb);
      bool stutter = sa.size() == sb.size() &&
                     std::equal(sa.bytes().begin(), sa.bytes().end(),
                                sb.bytes().begin());
      (stutter ? stutters : steps) += 1;
      std::string msg = simrel(a, b, label);
      if (!msg.empty()) ++violations;
      return "";  // count violations instead of aborting the sweep
    };
    auto r = verify::explore(sys, copts);
    table.row({name, variant, strf("%d", n),
               r.status == verify::Status::Ok ? strf("%zu", r.states)
                                              : "Unfinished",
               strf("%zu", r.transitions), strf("%zu", stutters),
               strf("%zu", steps), strf("%zu", violations)});
    JsonObject o;
    o.field("bench", "soundness")
        .field("protocol", name)
        .field("variant", variant)
        .field("n", n)
        .field("semantics", "asynchronous")
        .field("engine", "seq")
        .field("jobs", 1)
        .field("symmetry", "off")
        // Every edge runs through the Equation-1 edge_check, which the
        // engines cannot reconcile with an ample-set reduction (explore()
        // would downgrade it anyway), so this bench is always por=off.
        .field("por", "off")
        .field("status", verify::to_string(r.status))
        .field("states", r.states)
        .field("transitions", r.transitions)
        .field("stutters", stutters)
        .field("rendezvous_steps", steps)
        .field("violations", violations)
        .field("seconds", r.seconds)
        .field("memory_bytes", r.memory_bytes)
        .field("spill_bytes", r.spill_bytes)
        .field("external_bytes", r.external_bytes);
    json.push(o);
  };

  refine::Options fused;
  refine::Options plain;
  plain.request_reply_fusion = false;
  refine::Options big;
  big.home_buffer_capacity = 4;

  auto mig = protocols::make_migratory();
  run("migratory", "refined", mig, fused, 2);
  run("migratory", "refined", mig, fused, 3);
  run("migratory", "no fusion", mig, plain, 2);
  run("migratory", "k=4", mig, big, 2);
  auto inv = protocols::make_invalidate();
  run("invalidate", "refined", inv, fused, 2);
  run("invalidate", "no fusion", inv, plain, 2);

  table.print(std::cout);
  std::printf(
      "\nEvery asynchronous transition maps to a stutter or a rendezvous "
      "step under abs —\nthe refinement is sound (§4), so the detailed "
      "protocol needs no separate proof.\n");
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
