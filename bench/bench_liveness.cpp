// Experiment LIVE — the liveness side of the paper's claims as temporal
// formulas (ltl/check.hpp over the Büchi-product engine):
//
//   G F completion                    §2.5: under weak process fairness the
//                                     refined protocols always complete
//                                     another rendezvous (no livelock) —
//                                     already at the paper's minimal buffer
//                                     k = 2.
//   G (requested(0) -> F granted(0))  §6: per-node starvation. At k = 2 a
//                                     concrete starvation lasso exists even
//                                     under strong (service) fairness: the
//                                     other requesters keep the buffer full,
//                                     remote 0 is nacked on every retry, and
//                                     no grant to 0 is ever *enabled* on the
//                                     cycle. With a slot per requester
//                                     (k = n + 1) requests are always
//                                     buffered, the grant stays enabled, and
//                                     service fairness forces it: PASS.
//
// Every run reports the usual engine row (status/states/transitions/seconds/
// memory) under the same 64 MB default cap as Table 3; counterexamples are
// concrete stem+cycle traces (printed with --traces).
#include <cstdio>
#include <limits>
#include <iostream>

#include "ltl/check.hpp"
#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace ccref;

namespace {

constexpr const char* kProgress = "G F completion";
constexpr const char* kNoStarvation = "G (requested(0) -> F granted(0))";

std::string cell(const verify::LivenessResult& r) {
  if (r.status == verify::Status::Unfinished)
    return strf("Unfinished (%zu+)", r.states);
  return strf("%s %zu/%.2f", verify::to_string(r.status), r.states,
              r.seconds);
}

struct Runner {
  std::size_t mem;
  verify::SymmetryMode symmetry;
  verify::PorMode por;
  bool traces;
  Table table{{"Protocol", "N", "k", "Semantics", "Property", "Fairness",
               "Result (states/s)"}};
  JsonArrayFile json;

  template <class Sys>
  void run(const Sys& sys, const char* protocol, int n, int k,
           const char* semantics, const char* property,
           verify::FairnessMode fairness) {
    verify::LivenessOptions opts;
    opts.memory_limit = mem;
    opts.symmetry = symmetry;
    opts.fairness = fairness;
    opts.por = por;
    auto r = ltl::check_ltl(sys, property, opts);

    JsonObject o;
    o.field("bench", "liveness")
        .field("protocol", protocol)
        .field("n", n)
        .field("k", k)
        .field("semantics", semantics)
        .field("engine", "seq")
        .field("jobs", 1)
        .field("symmetry", verify::to_string(opts.symmetry))
        .field("por", verify::to_string(opts.por))
        .field("property", property)
        .field("fairness", verify::to_string(fairness))
        .field("status", verify::to_string(r.status))
        .field("states", r.states)
        .field("transitions", r.transitions)
        .field("seconds", r.seconds)
        .field("memory_bytes", r.memory_bytes)
        // The nested-DFS liveness engine is RAM-only; zeros keep the
        // disk-usage schema uniform across every bench's --json.
        .field("spill_bytes", std::size_t{0})
        .field("external_bytes", std::size_t{0});
    if (!r.note.empty()) o.field("note", r.note);
    json.push(o);
    table.row({protocol, strf("%d", n), k ? strf("%d", k) : "-", semantics,
               property, verify::to_string(fairness), cell(r)});
    if (traces && r.status == verify::Status::LivenessViolated) {
      std::printf("\n%s, n=%d, k=%d, %s [%s]: %s\n", protocol, n, k, property,
                  verify::to_string(fairness), r.violation.c_str());
      for (const auto& s : r.stem) std::printf("  stem  %s\n", s.c_str());
      for (const auto& s : r.cycle) std::printf("  cycle %s\n", s.c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::size_t mem = static_cast<std::size_t>(
      cli.size_flag("mem", "64M", 1u << 20,
                    std::numeric_limits<std::uint64_t>::max(),
                    "state-memory limit, e.g. 64M or 2G"));
  bool smoke = cli.bool_flag("smoke", false,
                             "small configurations only (CI-sized)");
  bool traces =
      cli.bool_flag("traces", false, "print counterexample lassos");
  std::string sym_arg = cli.str_flag(
      "symmetry", "off", "symmetry reduction: off | canonical");
  std::string por_arg = cli.str_flag(
      "por", "off", "partial-order reduction: off | ample "
      "(downgraded under fairness)");
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();
  auto symmetry = verify::parse_symmetry(sym_arg);
  if (!symmetry) {
    std::fprintf(stderr, "bad --symmetry value '%s' (off | canonical)\n",
                 sym_arg.c_str());
    return 2;
  }
  auto por = verify::parse_por(por_arg);
  if (!por) {
    std::fprintf(stderr, "bad --por value '%s' (off | ample)\n",
                 por_arg.c_str());
    return 2;
  }

  std::printf("LIVE: LTL liveness over the Büchi product "
              "(%zu MB cap%s)\n\n",
              mem >> 20, smoke ? ", smoke" : "");

  Runner runner{mem, *symmetry, *por, traces};

  auto sweep = [&](const char* name, const ir::Protocol& p) {
    // §2.5 weak progress at the paper's minimal buffer.
    for (int n : smoke ? std::vector<int>{2} : std::vector<int>{2, 3}) {
      runner.run(sem::RendezvousSystem(p, n), name, n, 0, "rendezvous",
                 kProgress, verify::FairnessMode::Weak);
      auto rp = refine::refine(p);
      runner.run(runtime::AsyncSystem(rp, n), name, n,
                 rp.options.home_buffer_capacity, "asynchronous", kProgress,
                 verify::FairnessMode::Weak);
    }
    // §6 starvation needs a third requester to keep a k=2 buffer busy.
    const int n = 3;
    for (int k : {2, n + 1}) {
      refine::Options opts;
      opts.home_buffer_capacity = k;
      auto rp = refine::refine(p, opts);
      runner.run(runtime::AsyncSystem(rp, n), name, n, k, "asynchronous",
                 kNoStarvation, verify::FairnessMode::Strong);
    }
  };

  auto migratory = protocols::make_migratory();
  sweep("Migratory", migratory);
  if (!smoke) {
    auto invalidate = protocols::make_invalidate();
    sweep("Invalidate", invalidate);
  }

  runner.table.print(std::cout);
  std::printf(
      "\nreading: §2.5 — G F completion PASSes already at k=2 under weak\n"
      "fairness; §6 — the starvation formula FAILs at k=2 with a concrete\n"
      "nack-forever lasso (strong fairness notwithstanding) and PASSes once\n"
      "the buffer holds a slot per requester (k=n+1).\n");
  if (!json_path.empty() && !runner.json.write(json_path)) return 1;
  return 0;
}
