// Experiment F-SCALE — the §5 scaling claim:
//
//   "the rendezvous migratory protocol could be model checked for up to 64
//    nodes using 32MB of memory, while the asynchronous protocol can be
//    model checked for only two nodes using 64MB of memory."
//
// Sweeps N for both semantics and reports states / time / memory, with the
// per-run limits from the paper (32 MB rendezvous, 64 MB asynchronous).
//
// `--sweep` switches to the SCALE experiment instead: the lock-free
// parallel engine on the asynchronous migratory and invalidate protocols
// at fixed N, jobs in {1,2,4,8,max} crossed with compression off/collapse,
// reporting states/sec and speedup versus the jobs=1 run of the same
// configuration. `--assert-jobs J --assert-speedup S` turns the sweep into
// a CI gate: exit 1 unless every configuration reaches speedup >= S at
// jobs=J (only meaningful on a machine with >= J hardware threads).
#include <algorithm>
#include <cstdio>
#include <limits>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/bitstate.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"

using namespace ccref;

namespace {

double states_per_sec(const verify::CheckResult& r) {
  return r.seconds > 0 ? static_cast<double>(r.states) / r.seconds : 0.0;
}

int run_sweep(std::size_t as_mem, unsigned sweep_n, unsigned shards,
              std::size_t expect_states, unsigned assert_jobs,
              double assert_speedup, const std::string& assert_protocol,
              const std::string& json_path) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> jobs_sweep{1, 2, 4, 8, hw};
  std::sort(jobs_sweep.begin(), jobs_sweep.end());
  jobs_sweep.erase(std::unique(jobs_sweep.begin(), jobs_sweep.end()),
                   jobs_sweep.end());

  std::printf(
      "SCALE: lock-free parallel engine, asynchronous semantics, N=%u\n"
      "hardware threads: %u (speedups beyond %u jobs cannot materialize "
      "here)\n\n",
      sweep_n, hw, hw);
  Table table({"Protocol", "Compress", "Jobs", "Status", "States",
               "Time (s)", "States/s", "Speedup"});
  JsonArrayFile json;

  struct Config {
    const char* name;
    ir::Protocol proto;
  };
  Config configs[] = {{"Migratory", protocols::make_migratory()},
                      {"Invalidate", protocols::make_invalidate()}};
  bool asserts_ok = true;

  for (auto& cfg : configs) {
    auto rp = refine::refine(cfg.proto);
    runtime::AsyncSystem sys(rp, static_cast<int>(sweep_n));
    for (auto compress :
         {verify::CompressionMode::Off, verify::CompressionMode::Collapse}) {
      double base_seconds = 0;
      for (unsigned jobs : jobs_sweep) {
        verify::CheckOptions<runtime::AsyncSystem> opts;
        opts.memory_limit = as_mem;
        opts.want_trace = false;
        opts.compress = compress;
        opts.expected_states = expect_states;
        auto r = jobs <= 1 ? verify::explore(sys, opts)
                           : verify::par_explore(sys, opts, jobs, shards);
        if (jobs == 1) base_seconds = r.seconds;
        const double speedup =
            r.seconds > 0 ? base_seconds / r.seconds : 0.0;
        table.row({cfg.name, verify::to_string(compress), strf("%u", jobs),
                   verify::to_string(r.status), strf("%zu", r.states),
                   strf("%.3f", r.seconds), strf("%.0f", states_per_sec(r)),
                   strf("%.2fx", speedup)});
        JsonObject o;
        o.field("bench", "scale_sweep")
            .field("protocol", cfg.name)
            .field("semantics", "asynchronous")
            .field("n", static_cast<int>(sweep_n))
            .field("engine", jobs <= 1 ? "seq" : "par")
            .field("jobs", static_cast<int>(jobs))
            .field("shards", static_cast<int>(shards == 0 ? jobs : shards))
            .field("hardware_concurrency", static_cast<int>(hw))
            .field("compress", verify::to_string(compress))
            .field("status", verify::to_string(r.status))
            .field("states", r.states)
            .field("transitions", r.transitions)
            .field("seconds", r.seconds)
            .field("states_per_sec", states_per_sec(r))
            .field("speedup_vs_1", speedup)
            .field("memory_bytes", r.memory_bytes)
            .field("spill_bytes", r.spill_bytes)
            .field("external_bytes", r.external_bytes);
        json.push(o);
        const bool gated =
            assert_protocol.empty() || assert_protocol == cfg.name;
        if (gated && assert_jobs > 0 && jobs == assert_jobs &&
            speedup < assert_speedup) {
          std::fprintf(stderr,
                       "SPEEDUP ASSERT FAILED: %s compress=%s jobs=%u "
                       "speedup %.2fx < required %.2fx\n",
                       cfg.name, verify::to_string(compress), jobs, speedup,
                       assert_speedup);
          asserts_ok = false;
        }
      }
    }
  }

  table.print(std::cout);
  if (!json_path.empty() && !json.write(json_path)) return 1;
  if (!asserts_ok) return 1;
  if (assert_jobs > 0)
    std::printf("\nspeedup assertion passed: >= %.2fx at jobs=%u\n",
                assert_speedup, assert_jobs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::size_t rv_mem = static_cast<std::size_t>(
      cli.size_flag("rendezvous-mem", "32M", 1u << 20,
                    std::numeric_limits<std::uint64_t>::max(),
                    "rendezvous state-memory limit, e.g. 32M or 1G"));
  std::size_t as_mem = static_cast<std::size_t>(
      cli.size_flag("async-mem", "64M", 1u << 20,
                    std::numeric_limits<std::uint64_t>::max(),
                    "asynchronous state-memory limit, e.g. 64M or 2G"));
  auto jobs = static_cast<unsigned>(cli.uint_flag(
      "jobs", 1, 1, 1024, "worker threads (1 = sequential engine)"));
  auto shards = static_cast<unsigned>(cli.uint_flag(
      "shards", 0, 0, 256,
      "visited-set shards for the parallel engine (0: match jobs)"));
  std::string sym_arg = cli.str_flag(
      "symmetry", "off", "symmetry reduction: off | canonical");
  std::string por_arg = cli.str_flag(
      "por", "off", "partial-order reduction: off | ample");
  std::string compress_arg = cli.str_flag(
      "compress", "off", "state-vector compression: off | collapse");
  auto expect_states = static_cast<std::size_t>(cli.uint_flag(
      "expect-states", 0, 0, 1u << 31,
      "pre-size the visited set for this many states (0: grow on demand)"));
  bool sweep = cli.bool_flag(
      "sweep", false,
      "run the parallel scaling sweep (jobs x compression) instead");
  auto sweep_n = static_cast<unsigned>(cli.uint_flag(
      "sweep-n", 4, 2, 16, "asynchronous node count for --sweep"));
  auto assert_jobs = static_cast<unsigned>(cli.uint_flag(
      "assert-jobs", 0, 0, 1024,
      "with --sweep: jobs level the speedup assertion applies to (0: off)"));
  double assert_speedup = cli.double_flag(
      "assert-speedup", 0.0,
      "with --sweep: minimum speedup_vs_1 required at --assert-jobs");
  std::string assert_protocol = cli.str_flag(
      "assert-protocol", "",
      "with --sweep: restrict the speedup assertion to this protocol "
      "(Migratory | Invalidate; empty: all)");
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();
  auto symmetry = verify::parse_symmetry(sym_arg);
  if (!symmetry) {
    std::fprintf(stderr, "bad --symmetry value '%s' (off | canonical)\n",
                 sym_arg.c_str());
    return 2;
  }
  auto por = verify::parse_por(por_arg);
  if (!por) {
    std::fprintf(stderr, "bad --por value '%s' (off | ample)\n",
                 por_arg.c_str());
    return 2;
  }
  auto compress = verify::parse_compression(compress_arg);
  if (!compress) {
    std::fprintf(stderr, "bad --compress value '%s' (off | collapse)\n",
                 compress_arg.c_str());
    return 2;
  }

  if (sweep)
    return run_sweep(as_mem, sweep_n, shards, expect_states, assert_jobs,
                     assert_speedup, assert_protocol, json_path);

  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);

  std::printf("F-SCALE: migratory protocol, max checkable N per semantics\n\n");
  Table table({"Semantics", "N", "Status", "States", "Time (s)", "Memory"});
  JsonArrayFile json;

  auto base_row = [&](const char* semantics, int n, bool bitstate) {
    JsonObject o;
    o.field("bench", "scaling")
        .field("protocol", "Migratory")
        .field("n", n)
        .field("semantics", semantics)
        .field("engine", jobs <= 1 ? "seq" : "par")
        .field("jobs", static_cast<int>(jobs))
        .field("symmetry", verify::to_string(*symmetry))
        .field("por", verify::to_string(*por))
        .field("compress", verify::to_string(*compress))
        .field("bitstate", bitstate);
    return o;
  };
  auto record = [&](const char* semantics, int n,
                    const verify::CheckResult& r) {
    JsonObject o = base_row(semantics, n, /*bitstate=*/false);
    o.field("status", verify::to_string(r.status))
        .field("states", r.states)
        .field("transitions", r.transitions)
        .field("seconds", r.seconds)
        .field("states_per_sec", states_per_sec(r))
        .field("memory_bytes", r.memory_bytes)
        .field("pool_bytes", r.pool_bytes)
        .field("raw_pool_bytes", r.raw_pool_bytes)
        .field("spill_bytes", r.spill_bytes)
        .field("external_bytes", r.external_bytes);
    json.push(o);
  };
  auto record_bitstate = [&](const char* semantics, int n,
                             const verify::BitstateResult& r) {
    JsonObject o = base_row(semantics, n, /*bitstate=*/true);
    o.field("status", r.state_bounded ? "approximate (capped)" : "approximate")
        .field("states", r.states)
        .field("transitions", r.transitions)
        .field("seconds", r.seconds)
        .field("memory_bytes", r.memory_bytes)
        // Bitstate keeps its bit array in RAM; zeros keep the schema uniform.
        .field("spill_bytes", std::size_t{0})
        .field("external_bytes", std::size_t{0});
    json.push(o);
  };

  for (int n : {2, 4, 8, 16, 32, 64}) {
    verify::CheckOptions<sem::RendezvousSystem> opts;
    opts.memory_limit = rv_mem;
    opts.want_trace = false;
    opts.symmetry = *symmetry;
    opts.por = *por;
    opts.compress = *compress;
    opts.expected_states = expect_states;
    sem::RendezvousSystem sys(p, n);
    auto r = jobs <= 1 ? verify::explore(sys, opts)
                       : verify::par_explore(sys, opts, jobs, shards);
    table.row({"rendezvous (32MB)", strf("%d", n),
               verify::to_string(r.status), strf("%zu", r.states),
               strf("%.2f", r.seconds), human_bytes(r.memory_bytes)});
    record("rendezvous", n, r);
    if (r.status != verify::Status::Ok) break;
  }

  for (int n : {2, 3, 4, 5, 6, 8}) {
    verify::CheckOptions<runtime::AsyncSystem> opts;
    opts.memory_limit = as_mem;
    opts.want_trace = false;
    opts.symmetry = *symmetry;
    opts.por = *por;
    opts.compress = *compress;
    opts.expected_states = expect_states;
    runtime::AsyncSystem sys(rp, n);
    auto r = jobs <= 1 ? verify::explore(sys, opts)
                       : verify::par_explore(sys, opts, jobs, shards);
    table.row({"asynchronous (64MB)", strf("%d", n),
               verify::to_string(r.status), strf("%zu", r.states),
               strf("%.2f", r.seconds), human_bytes(r.memory_bytes)});
    record("asynchronous", n, r);
    if (r.status != verify::Status::Ok) break;
  }

  // Past the exact-checker wall, SPIN's 1997 workaround was bitstate
  // hashing (-DBITSTATE, "supertrace"): approximate coverage in fixed
  // memory. Counts are lower bounds on the reachable states.
  for (int n : {5, 6}) {
    auto r = verify::explore_bitstate(runtime::AsyncSystem(rp, n),
                                      8u << 20, 100000, {},
                                      /*max_states=*/250000, *symmetry);
    table.row({"async bitstate (8MB)", strf("%d", n),
               r.state_bounded ? "approximate (capped)" : "approximate",
               strf("%zu+", r.states), strf("%.2f", r.seconds),
               human_bytes(r.memory_bytes)});
    record_bitstate("asynchronous", n, r);
  }

  table.print(std::cout);
  std::printf(
      "\npaper: rendezvous checkable to N=64 in 32MB; asynchronous only N=2 "
      "in 64MB.\nOur per-state footprint is smaller than SPIN 2.x's, so the "
      "asynchronous wall sits at N=6 instead of N=4, with the same "
      "exponential shape.\nBitstate rows show Holzmann supertrace coverage "
      "beyond the exact-checker wall.\n");
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
