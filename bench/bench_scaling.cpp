// Experiment F-SCALE — the §5 scaling claim:
//
//   "the rendezvous migratory protocol could be model checked for up to 64
//    nodes using 32MB of memory, while the asynchronous protocol can be
//    model checked for only two nodes using 64MB of memory."
//
// Sweeps N for both semantics and reports states / time / memory, with the
// per-run limits from the paper (32 MB rendezvous, 64 MB asynchronous).
#include <cstdio>
#include <iostream>

#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/bitstate.hpp"
#include "verify/checker.hpp"

using namespace ccref;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::size_t rv_mem = static_cast<std::size_t>(
                           cli.int_flag("rendezvous-mb", 32,
                                        "rendezvous memory limit (MB)"))
                       << 20;
  std::size_t as_mem = static_cast<std::size_t>(
                           cli.int_flag("async-mb", 64,
                                        "asynchronous memory limit (MB)"))
                       << 20;
  cli.finish();

  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);

  std::printf("F-SCALE: migratory protocol, max checkable N per semantics\n\n");
  Table table({"Semantics", "N", "Status", "States", "Time (s)", "Memory"});

  for (int n : {2, 4, 8, 16, 32, 64}) {
    verify::CheckOptions<sem::RendezvousSystem> opts;
    opts.memory_limit = rv_mem;
    opts.want_trace = false;
    auto r = verify::explore(sem::RendezvousSystem(p, n), opts);
    table.row({"rendezvous (32MB)", strf("%d", n),
               verify::to_string(r.status), strf("%zu", r.states),
               strf("%.2f", r.seconds), human_bytes(r.memory_bytes)});
    if (r.status != verify::Status::Ok) break;
  }

  for (int n : {2, 3, 4, 5, 6, 8}) {
    verify::CheckOptions<runtime::AsyncSystem> opts;
    opts.memory_limit = as_mem;
    opts.want_trace = false;
    auto r = verify::explore(runtime::AsyncSystem(rp, n), opts);
    table.row({"asynchronous (64MB)", strf("%d", n),
               verify::to_string(r.status), strf("%zu", r.states),
               strf("%.2f", r.seconds), human_bytes(r.memory_bytes)});
    if (r.status != verify::Status::Ok) break;
  }

  // Past the exact-checker wall, SPIN's 1997 workaround was bitstate
  // hashing (-DBITSTATE, "supertrace"): approximate coverage in fixed
  // memory. Counts are lower bounds on the reachable states.
  for (int n : {5, 6}) {
    auto r = verify::explore_bitstate(runtime::AsyncSystem(rp, n),
                                      8u << 20, 100000, {},
                                      /*max_states=*/250000);
    table.row({"async bitstate (8MB)", strf("%d", n),
               r.state_bounded ? "approximate (capped)" : "approximate",
               strf("%zu+", r.states), strf("%.2f", r.seconds),
               human_bytes(r.memory_bytes)});
  }

  table.print(std::cout);
  std::printf(
      "\npaper: rendezvous checkable to N=64 in 32MB; asynchronous only N=2 "
      "in 64MB.\nOur per-state footprint is smaller than SPIN 2.x's, so the "
      "asynchronous wall sits at N=6 instead of N=4, with the same "
      "exponential shape.\nBitstate rows show Holzmann supertrace coverage "
      "beyond the exact-checker wall.\n");
  return 0;
}
