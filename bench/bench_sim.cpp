// SIM — discrete-event simulator benchmarks (see DESIGN.md §4.8).
//
// Two sections:
//   throughput  open-loop lock_server arrivals: raw engine speed
//               (events/sec) and parallel-lane scaling (speedup_vs_1) as
//               the client count grows into the thousands
//   quality     refined vs generic vs hand-designed protocol variants under
//               the avalanche cost model: msgs/op and latency percentiles —
//               the paper's claim that the refined protocol is "comparable
//               in quality" to the hand design, now in cycles
//
// `--smoke` runs a seconds-fast correctness gate (exact message counts on a
// pinned workload, a trace replay, a multi-lane run) and exits nonzero on
// any mismatch — wired into CI so the engine cannot silently rot.
//
//   ./bench_sim --json=BENCH_sim.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "sim/des.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace ccref;

namespace {

struct Timed {
  sim::DesStats stats;
  double seconds = 0;

  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(stats.events) / seconds : 0.0;
  }
};

Timed timed_run(const refine::RefinedProtocol& rp, sim::OpSource& src,
                const sim::DesOptions& dopts) {
  Timed t;
  const auto t0 = std::chrono::steady_clock::now();
  t.stats = sim::des_simulate(rp, src, dopts);
  t.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return t;
}

// ---- throughput: open-loop lock_server ---------------------------------

Timed lock_server_run(const ir::Protocol& p,
                      const refine::RefinedProtocol& rp, std::uint32_t nodes,
                      int lanes, std::uint64_t seed) {
  sim::SyntheticConfig cfg;
  cfg.kind = "lock_server";
  cfg.nodes = nodes;
  cfg.ops_per_node = 4;
  cfg.addresses = 64;  // 64 independent locks: work for every lane
  cfg.think_mean = 64;
  cfg.arrival_window = 4 * static_cast<std::uint64_t>(nodes);
  cfg.seed = seed;
  sim::SyntheticSource src(p, cfg);
  sim::DesOptions dopts;
  dopts.lanes = lanes;
  return timed_run(rp, src, dopts);
}

// ---- quality: refined vs generic vs hand under the cost model ----------

struct Variant {
  const char* name;
  refine::Options opts;
};

Timed quality_run(const ir::Protocol& p, const refine::Options& opts,
                  bool migratory, std::uint64_t seed) {
  auto rp = refine::refine(p, opts);
  sim::SyntheticConfig cfg;
  cfg.kind = migratory ? "migratory" : "invalidate";
  cfg.nodes = 8;
  cfg.ops_per_node = 50;
  cfg.addresses = 4;
  cfg.write_fraction = 0.3;
  cfg.think_mean = 32;
  cfg.seed = seed;
  sim::SyntheticSource src(p, cfg);
  sim::DesOptions dopts;  // avalanche cost defaults
  return timed_run(rp, src, dopts);
}

// ---- smoke gate --------------------------------------------------------

#define SMOKE_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "SMOKE FAIL %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                 \
      return 1;                                                      \
    }                                                                \
  } while (0)

int smoke() {
  // 1. Pinned exact counts: one migratory remote, 10 acquire/release pairs
  //    — the same numbers the cross-engine agreement tests pin (10 fused
  //    req/gr + 10 LR/ack, zero nacks).
  {
    auto p = protocols::make_migratory();
    refine::Options opts;
    opts.channel_capacity = 8;
    auto rp = refine::refine(p, opts);
    auto w = sim::migratory_workload(p, 1, 10);
    sim::WorkloadSource src(w);
    sim::DesOptions dopts;
    dopts.cost = *sim::CostModel::preset("uniform");
    auto t = timed_run(rp, src, dopts);
    SMOKE_CHECK(t.stats.finished);
    SMOKE_CHECK(t.stats.req == 20 && t.stats.repl == 10 &&
                t.stats.ack == 10 && t.stats.nack == 0);
    SMOKE_CHECK(t.stats.ops_total == 20);
    SMOKE_CHECK(t.events_per_sec() > 0);
  }
  // 2. Trace replay: a small inline trace drives the invalidate protocol to
  //    completion with one op per record.
  {
    // `1 r 0x20` re-reads a block node 1 holds in M: an already-exclusive
    // copy must serve the read (alt-goal), not wait for a downgrade to S.
    const std::string text = "0 w 0x10 0\n1 r 0x10 4\n0 evict 0x10 2\n"
                             "1 w 0x20 0\n1 r 0x20 2\n1 evict 0x20 2\n"
                             "1 evict 0x10 2\n";
    sim::Trace trace;
    std::string err;
    SMOKE_CHECK(sim::parse_trace(text, trace, err));
    auto p = protocols::make_invalidate();
    refine::Options opts;
    opts.channel_capacity = 8;
    auto rp = refine::refine(p, opts);
    sim::TraceSource src(p, trace);
    auto t = timed_run(rp, src, {});
    SMOKE_CHECK(t.stats.finished);
    SMOKE_CHECK(t.stats.ops_total == trace.records.size());
  }
  // 3. Parallel lanes agree with the single lane on protocol work.
  {
    auto p = protocols::make_lock_server();
    refine::Options opts;
    opts.channel_capacity = 8;
    auto rp = refine::refine(p, opts);
    auto one = lock_server_run(p, rp, 256, 1, 42);
    auto four = lock_server_run(p, rp, 256, 4, 42);
    SMOKE_CHECK(one.stats.finished && four.stats.finished);
    SMOKE_CHECK(one.stats.ops_total == four.stats.ops_total);
    SMOKE_CHECK(one.events_per_sec() > 0 && four.events_per_sec() > 0);
  }
  // 4. Lane imbalance: every node sticks to its own address, so no op ever
  //    crosses lanes, and two nodes carry 300x the work of the rest. The
  //    adaptive horizon must collapse the barrier count vs fixed windows
  //    while leaving the protocol work identical (same ops, same events).
  {
    std::string text;
    for (int pair = 0; pair < 1500; ++pair)
      for (int node : {0, 4})
        text += strf("%d w 0x%x 1\n%d evict 0x%x 1\n", node, node, node,
                     node);
    for (int node : {1, 2, 3, 5, 6, 7})
      for (int pair = 0; pair < 5; ++pair)
        text += strf("%d w 0x%x 1\n%d evict 0x%x 1\n", node, node, node,
                     node);
    sim::Trace trace;
    std::string err;
    SMOKE_CHECK(sim::parse_trace(text, trace, err));
    auto p = protocols::make_invalidate();
    refine::Options opts;
    opts.channel_capacity = 8;
    auto rp = refine::refine(p, opts);
    sim::DesOptions fixed;
    fixed.lanes = 4;
    fixed.window_max = 0;  // pin the old fixed-barrier cadence
    sim::DesOptions adaptive;
    adaptive.lanes = 4;
    sim::TraceSource src_f(p, trace);
    auto f = timed_run(rp, src_f, fixed);
    sim::TraceSource src_a(p, trace);
    auto a = timed_run(rp, src_a, adaptive);
    SMOKE_CHECK(f.stats.finished && a.stats.finished);
    SMOKE_CHECK(f.stats.ops_total == trace.records.size());
    SMOKE_CHECK(a.stats.ops_total == f.stats.ops_total);
    SMOKE_CHECK(a.stats.events == f.stats.events);
    SMOKE_CHECK(a.stats.messages() == f.stats.messages());
    SMOKE_CHECK(f.stats.windows > 0 && a.stats.windows > 0);
    SMOKE_CHECK(a.stats.windows * 2 <= f.stats.windows);
  }
  std::printf("bench_sim --smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bool smoke_only = cli.bool_flag(
      "smoke", false, "fast correctness gate: exact counts, then exit");
  std::uint64_t nodes_max = cli.uint_flag(
      "nodes-max", 4000, 64, 1u << 20,
      "largest lock_server client count in the throughput sweep");
  std::uint64_t seed = cli.uint_flag("seed", 42, 0, ~0ull, "workload seed");
  std::uint64_t assert_lanes = cli.uint_flag(
      "assert-lanes", 0, 0, 64,
      "exit 1 unless this lane count reaches --assert-speedup somewhere");
  double assert_speedup = cli.double_flag(
      "assert-speedup", 0.0, "required speedup_vs_1 for --assert-lanes");
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();

  if (smoke_only) return smoke();

  JsonArrayFile json;

  // ---- throughput sweep -------------------------------------------------
  std::printf("SIM-THROUGHPUT: open-loop lock_server, 64 locks, "
              "4 acquire/release pairs per client\n\n");
  Table tput({"N", "lanes", "events", "cycles", "events/sec", "speedup_vs_1",
              "msgs/op", "p50", "p99"});
  auto lock_p = protocols::make_lock_server();
  refine::Options lock_opts;
  lock_opts.channel_capacity = 8;
  auto lock_rp = refine::refine(lock_p, lock_opts);
  std::vector<std::uint32_t> sweep_n;
  for (std::uint64_t n = 1000; n <= nodes_max; n *= 4)
    sweep_n.push_back(static_cast<std::uint32_t>(n));
  double best_asserted = 0;
  for (std::uint32_t n : sweep_n) {
    double base = 0;
    for (int lanes : {1, 2, 4}) {
      auto t = lock_server_run(lock_p, lock_rp, n, lanes, seed);
      if (!t.stats.finished) {
        std::fprintf(stderr, "N=%u lanes=%d stalled: %s\n", n, lanes,
                     t.stats.stall.to_string().c_str());
        return 1;
      }
      if (lanes == 1) base = t.seconds;
      const double speedup = t.seconds > 0 ? base / t.seconds : 0.0;
      if (static_cast<std::uint64_t>(lanes) == assert_lanes)
        best_asserted = std::max(best_asserted, speedup);
      tput.row({strf("%u", n), strf("%d", lanes),
                strf("%llu", static_cast<unsigned long long>(t.stats.events)),
                strf("%llu", static_cast<unsigned long long>(t.stats.cycles)),
                strf("%.0f", t.events_per_sec()), strf("%.2f", speedup),
                strf("%.2f", t.stats.msgs_per_op()),
                strf("%llu", static_cast<unsigned long long>(
                                 t.stats.latency.percentile(0.5))),
                strf("%llu", static_cast<unsigned long long>(
                                 t.stats.latency.percentile(0.99)))});
      JsonObject o;
      o.field("section", "throughput")
          .field("protocol", "lockserver")
          .field("n", n)
          .field("lanes", lanes)
          .field("seed", seed)
          .field("events", t.stats.events)
          .field("cycles", t.stats.cycles)
          .field("seconds", t.seconds)
          .field("events_per_sec", t.events_per_sec())
          .field("speedup_vs_1", speedup)
          .field("windows", t.stats.windows)
          .field("msgs_per_op", t.stats.msgs_per_op())
          .field("lat_p50", t.stats.latency.percentile(0.5))
          .field("lat_p99", t.stats.latency.percentile(0.99))
          // The simulator holds everything in RAM; zeros keep the
          // disk-usage schema uniform across every bench's --json.
          .field("spill_bytes", std::size_t{0})
          .field("external_bytes", std::size_t{0});
      json.push(o);
    }
  }
  tput.print(std::cout);
  if (assert_lanes && best_asserted < assert_speedup) {
    std::fprintf(stderr,
                 "FAIL: best speedup at %llu lanes is %.2f, required %.2f\n",
                 static_cast<unsigned long long>(assert_lanes),
                 best_asserted, assert_speedup);
    return 1;
  }

  // ---- quality: refined vs hand ------------------------------------------
  std::printf("\nSIM-QUALITY: avalanche cost model, 8 nodes x 50 ops, "
              "4 blocks\n\n");
  Table qual({"Protocol", "Variant", "msgs/op", "nacks", "p50", "p99",
              "home busy"});
  refine::Options generic;
  generic.request_reply_fusion = false;
  generic.channel_capacity = 8;
  refine::Options refined;
  refined.channel_capacity = 8;
  refine::Options hand;
  hand.channel_capacity = 8;
  hand.elide_ack = {"LR"};
  // No hand variant for invalidate: eliding the drop ack is safe but not
  // live (see bench_msg_efficiency), so generic-vs-refined is the spread.
  const struct {
    const char* protocol;
    bool migratory;
    std::vector<Variant> variants;
  } quality[] = {
      {"migratory", true,
       {{"generic (no fusion)", generic},
        {"refined (3.3)", refined},
        {"hand design (no LR ack)", hand}}},
      {"invalidate", false,
       {{"generic (no fusion)", generic}, {"refined (3.3)", refined}}},
  };
  for (const auto& q : quality) {
    auto p = q.migratory ? protocols::make_migratory()
                         : protocols::make_invalidate();
    for (const auto& v : q.variants) {
      auto t = quality_run(p, v.opts, q.migratory, seed);
      if (!t.stats.finished) {
        std::fprintf(stderr, "%s/%s stalled: %s\n", q.protocol, v.name,
                     t.stats.stall.to_string().c_str());
        return 1;
      }
      qual.row({q.protocol, v.name, strf("%.2f", t.stats.msgs_per_op()),
                strf("%llu", static_cast<unsigned long long>(t.stats.nack)),
                strf("%llu", static_cast<unsigned long long>(
                                 t.stats.latency.percentile(0.5))),
                strf("%llu", static_cast<unsigned long long>(
                                 t.stats.latency.percentile(0.99))),
                strf("%.3f", t.stats.home_occupancy())});
      JsonObject o;
      o.field("section", "quality")
          .field("protocol", q.protocol)
          .field("variant", v.name)
          .field("n", 8)
          .field("seed", seed)
          .field("msgs_per_op", t.stats.msgs_per_op())
          .field("nacks", t.stats.nack)
          .field("lat_p50", t.stats.latency.percentile(0.5))
          .field("lat_p99", t.stats.latency.percentile(0.99))
          .field("home_occupancy", t.stats.home_occupancy())
          .field("spill_bytes", std::size_t{0})
          .field("external_bytes", std::size_t{0});
      json.push(o);
    }
  }
  qual.print(std::cout);
  std::printf(
      "\npaper: the refined protocol should track the hand design's message "
      "economy; the\ncost model turns the residual ack into a bounded p50 "
      "gap, not a throughput cliff.\n");

  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
