// Experiment E-BUF — buffer requirements and fairness (§2.5, §6):
//
//   "If we were to guarantee progress only for some remote node, a buffer
//    that can hold 2 messages suffices. ... assuring forward progress for
//    each remote node requires too much buffer space ... if the size of the
//    buffer in the home node is n ... the home node never generates a nack."
//
// Sweeps the home buffer capacity k for a fixed contending population and
// reports nack traffic, messages per op, latency spread, and Jain's fairness
// index over per-remote completions. k = n+1 (one slot per remote plus the
// ack buffer) eliminates nacks entirely, as §6 predicts.
#include <cstdio>
#include <algorithm>
#include <iostream>

#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace ccref;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  int n = static_cast<int>(
      cli.uint_flag("remotes", 8, 1, 64, "contending remotes"));
  int cycles = static_cast<int>(cli.uint_flag(
      "cycles", 40, 1, 1u << 20, "acquire/release cycles per remote"));
  std::uint64_t seed = cli.uint_flag("seed", 11, 0, ~0ull, "scheduler seed");
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();

  auto p = protocols::make_migratory();
  auto w = sim::migratory_workload(p, n, cycles);

  std::printf(
      "E-BUF: home buffer capacity k vs nacks and fairness "
      "(migratory, %d remotes, %d cycles each)\n\n",
      n, cycles);
  Table table({"k", "Ops", "nacks", "nacks/op", "msgs/op", "avg latency",
               "max latency", "Jain fairness"});
  JsonArrayFile json;

  std::vector<int> ks = {2, 3, 4, n / 2, n, n + 1};
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  for (int k : ks) {
    refine::Options opts;
    opts.home_buffer_capacity = k;
    opts.channel_capacity = 8;
    auto rp = refine::refine(p, opts);
    runtime::AsyncSystem sys(rp, n);
    sim::SimOptions sopts;
    sopts.seed = seed;
    auto stats = sim::simulate(sys, w, sopts);
    JsonObject o;
    o.field("bench", "buffer_fairness")
        .field("protocol", "Migratory")
        .field("n", n)
        .field("k", k)
        .field("semantics", "asynchronous")
        .field("engine", "sim")
        .field("jobs", 1)
        .field("symmetry", "off")
        .field("por", "off")
        .field("status", stats.finished ? "ok" : "stalled");
    if (!stats.finished) {
      json.push(o);
      table.row({strf("%d", k), "STALLED", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    std::uint64_t lat_total = 0, lat_max = 0, lat_n = 0;
    for (const auto& r : stats.remotes) {
      lat_total += r.latency_total;
      lat_n += r.ops_completed;
      lat_max = std::max(lat_max, r.latency_max);
    }
    o.field("ops", stats.ops_total)
        .field("nacks", stats.nack)
        .field("msgs_per_op", stats.msgs_per_op())
        .field("latency_avg", lat_n ? static_cast<double>(lat_total) /
                                          static_cast<double>(lat_n)
                                    : 0.0)
        .field("latency_max", lat_max)
        .field("jain_fairness", stats.fairness_index())
        // Simulator rows: zeros keep the disk-usage schema uniform.
        .field("spill_bytes", std::size_t{0})
        .field("external_bytes", std::size_t{0});
    json.push(o);
    table.row(
        {strf("%d", k),
         strf("%llu", static_cast<unsigned long long>(stats.ops_total)),
         strf("%llu", static_cast<unsigned long long>(stats.nack)),
         strf("%.3f", static_cast<double>(stats.nack) /
                          static_cast<double>(stats.ops_total)),
         strf("%.2f", stats.msgs_per_op()),
         strf("%.1f", lat_n ? static_cast<double>(lat_total) /
                                  static_cast<double>(lat_n)
                            : 0.0),
         strf("%llu", static_cast<unsigned long long>(lat_max)),
         strf("%.3f", stats.fairness_index())});
  }

  table.print(std::cout);
  std::printf(
      "\npaper (§2.5/§6): k=2 suffices for weak-fairness progress; a buffer "
      "of n (here k=%d)\nmeans the home never nacks; per-remote strong "
      "fairness by refinement alone is impractical.\n",
      n + 1);
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
