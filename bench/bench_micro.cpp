// MICRO — google-benchmark microbenchmarks of the checker's hot paths:
// state encode/decode, successor enumeration (both semantics), hashing, and
// visited-set insertion. These dominate Table 3's wall-clock numbers.
#include <benchmark/benchmark.h>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/hash.hpp"
#include "verify/checker.hpp"
#include "verify/state_set.hpp"

using namespace ccref;

namespace {

const ir::Protocol& migratory() {
  static const ir::Protocol p = protocols::make_migratory();
  return p;
}

const refine::RefinedProtocol& refined_migratory() {
  static const refine::RefinedProtocol rp = refine::refine(migratory());
  return rp;
}

void BM_RendezvousSuccessors(benchmark::State& state) {
  sem::RendezvousSystem sys(migratory(), static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) benchmark::DoNotOptimize(sys.successors(s));
}
BENCHMARK(BM_RendezvousSuccessors)->Arg(4)->Arg(16)->Arg(64);

void BM_AsyncSuccessors(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) benchmark::DoNotOptimize(sys.successors(s));
}
BENCHMARK(BM_AsyncSuccessors)->Arg(4)->Arg(16)->Arg(64);

void BM_AsyncEncode(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) {
    ByteSink sink;
    sys.encode(s, sink);
    benchmark::DoNotOptimize(sink.bytes());
  }
}
BENCHMARK(BM_AsyncEncode)->Arg(4)->Arg(64);

void BM_AsyncEncodeDecodeRoundTrip(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) {
    ByteSink sink;
    sys.encode(s, sink);
    ByteSource src(sink.bytes());
    benchmark::DoNotOptimize(sys.decode(src));
  }
}
BENCHMARK(BM_AsyncEncodeDecodeRoundTrip)->Arg(4)->Arg(64);

void BM_HashBytes(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0x5a});
  for (auto _ : state) benchmark::DoNotOptimize(hash_bytes(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashBytes)->Arg(16)->Arg(64)->Arg(1024);

void BM_StateSetInsert(benchmark::State& state) {
  std::uint64_t i = 0;
  verify::StateSet set(1u << 30);
  for (auto _ : state) {
    ByteSink sink;
    sink.u64(i++);
    sink.u64(i * 0x9e3779b9);
    benchmark::DoNotOptimize(set.insert(sink.bytes()));
  }
}
BENCHMARK(BM_StateSetInsert);

void BM_ExploreMigratoryRendezvous(benchmark::State& state) {
  for (auto _ : state) {
    sem::RendezvousSystem sys(migratory(), static_cast<int>(state.range(0)));
    verify::CheckOptions<sem::RendezvousSystem> opts;
    opts.want_trace = false;
    benchmark::DoNotOptimize(verify::explore(sys, opts));
  }
}
BENCHMARK(BM_ExploreMigratoryRendezvous)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

// Explicit main instead of BENCHMARK_MAIN(): tags the run context with the
// engine-configuration fields the other benches' JSON rows carry, so swept
// outputs stay joinable on (engine, jobs, symmetry, por).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("engine", "seq");
  benchmark::AddCustomContext("jobs", "1");
  benchmark::AddCustomContext("symmetry", "off");
  benchmark::AddCustomContext("por", "off");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
