// MICRO — google-benchmark microbenchmarks of the checker's hot paths:
// state encode/decode, successor enumeration (both semantics), hashing, and
// visited-set insertion. These dominate Table 3's wall-clock numbers.
#include <benchmark/benchmark.h>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/hash.hpp"
#include "verify/checker.hpp"
#include "verify/collapse.hpp"
#include "verify/state_set.hpp"

using namespace ccref;

namespace {

const ir::Protocol& migratory() {
  static const ir::Protocol p = protocols::make_migratory();
  return p;
}

const refine::RefinedProtocol& refined_migratory() {
  static const refine::RefinedProtocol rp = refine::refine(migratory());
  return rp;
}

void BM_RendezvousSuccessors(benchmark::State& state) {
  sem::RendezvousSystem sys(migratory(), static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) benchmark::DoNotOptimize(sys.successors(s));
}
BENCHMARK(BM_RendezvousSuccessors)->Arg(4)->Arg(16)->Arg(64);

void BM_AsyncSuccessors(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) benchmark::DoNotOptimize(sys.successors(s));
}
BENCHMARK(BM_AsyncSuccessors)->Arg(4)->Arg(16)->Arg(64);

void BM_AsyncEncode(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) {
    ByteSink sink;
    sys.encode(s, sink);
    benchmark::DoNotOptimize(sink.bytes());
  }
}
BENCHMARK(BM_AsyncEncode)->Arg(4)->Arg(64);

void BM_AsyncEncodeDecodeRoundTrip(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) {
    ByteSink sink;
    sys.encode(s, sink);
    ByteSource src(sink.bytes());
    benchmark::DoNotOptimize(sys.decode(src));
  }
}
BENCHMARK(BM_AsyncEncodeDecodeRoundTrip)->Arg(4)->Arg(64);

void BM_HashBytes(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0x5a});
  for (auto _ : state) benchmark::DoNotOptimize(hash_bytes(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashBytes)->Arg(16)->Arg(64)->Arg(1024);

// Collapse-compression dictionary keys are mostly 1-4 bytes; the length-mixed
// finalizer keeps throughput flat across these sizes.
void BM_HashBytesShort(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0x5a});
  for (auto _ : state) benchmark::DoNotOptimize(hash_bytes(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashBytesShort)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_StateSetInsert(benchmark::State& state) {
  std::uint64_t i = 0;
  verify::StateSet set(1u << 30);
  for (auto _ : state) {
    ByteSink sink;
    sink.u64(i++);
    sink.u64(i * 0x9e3779b9);
    benchmark::DoNotOptimize(set.insert(sink.bytes()));
  }
}
BENCHMARK(BM_StateSetInsert);

// Encode a real async state through a ComponentSink (marks recorded) vs. the
// plain ByteSink above — the marginal cost of boundary bookkeeping.
void BM_AsyncEncodeWithMarks(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  ComponentSink sink;
  for (auto _ : state) {
    sink.clear();
    sys.encode(s, sink);
    benchmark::DoNotOptimize(sink.bytes());
    benchmark::DoNotOptimize(sink.marks());
  }
}
BENCHMARK(BM_AsyncEncodeWithMarks)->Arg(4)->Arg(64);

// Insert throughput + bytes-per-state of the collapsed visited set against
// the raw baseline, over the real reachable set of the async migratory
// protocol at N = range(0). Counters report the achieved compression ratio.
void BM_CollapseInsert(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  const auto mode = state.range(1) ? verify::CompressionMode::Collapse
                                   : verify::CompressionMode::Off;
  // Pre-enumerate a batch of distinct reachable encodings so the timed loop
  // measures insertion, not successor generation.
  std::vector<std::vector<std::byte>> encs;
  std::vector<std::vector<ComponentMark>> all_marks;
  {
    verify::CollapsedStateSet dedup(64u << 20);
    ComponentSink sink;
    auto root = sys.initial();
    sys.encode(root, sink);
    (void)dedup.insert(sink.bytes());
    encs.emplace_back(sink.bytes().begin(), sink.bytes().end());
    all_marks.emplace_back(sink.marks().begin(), sink.marks().end());
    for (std::size_t cur = 0; cur < encs.size() && encs.size() < 20000;
         ++cur) {
      ByteSource src(encs[cur]);
      auto s = sys.decode(src);
      for (auto& [succ, label] : sys.successors(s, sem::LabelMode::Quiet)) {
        sink.clear();
        sys.encode(succ, sink);
        if (dedup.insert(sink.bytes()).outcome ==
            verify::StateSet::Outcome::Inserted) {
          encs.emplace_back(sink.bytes().begin(), sink.bytes().end());
          all_marks.emplace_back(sink.marks().begin(), sink.marks().end());
        }
      }
    }
  }
  std::size_t stored = 0, raw = 0, states = 0;
  for (auto _ : state) {
    verify::CollapsedStateSet set(1u << 30, mode);
    for (std::size_t i = 0; i < encs.size(); ++i)
      benchmark::DoNotOptimize(set.insert(encs[i], all_marks[i]));
    stored = set.stored_bytes();
    raw = set.raw_bytes();
    states = set.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encs.size()));
  state.counters["bytes_per_state"] =
      states ? static_cast<double>(stored) / static_cast<double>(states) : 0;
  state.counters["raw_bytes_per_state"] =
      states ? static_cast<double>(raw) / static_cast<double>(states) : 0;
  state.counters["compression_ratio"] =
      stored ? static_cast<double>(raw) / static_cast<double>(stored) : 0;
}
BENCHMARK(BM_CollapseInsert)
    ->ArgsProduct({{3, 4}, {0, 1}})
    ->ArgNames({"n", "collapse"});

void BM_ExploreMigratoryRendezvous(benchmark::State& state) {
  for (auto _ : state) {
    sem::RendezvousSystem sys(migratory(), static_cast<int>(state.range(0)));
    verify::CheckOptions<sem::RendezvousSystem> opts;
    opts.want_trace = false;
    benchmark::DoNotOptimize(verify::explore(sys, opts));
  }
}
BENCHMARK(BM_ExploreMigratoryRendezvous)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

// Explicit main instead of BENCHMARK_MAIN(): tags the run context with the
// engine-configuration fields the other benches' JSON rows carry, so swept
// outputs stay joinable on (engine, jobs, symmetry, por).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("engine", "seq");
  benchmark::AddCustomContext("jobs", "1");
  benchmark::AddCustomContext("symmetry", "off");
  benchmark::AddCustomContext("por", "off");
  benchmark::AddCustomContext("compress", "off");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
