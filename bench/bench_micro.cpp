// MICRO — google-benchmark microbenchmarks of the checker's hot paths:
// state encode/decode, successor enumeration (both semantics), hashing, and
// visited-set insertion. These dominate Table 3's wall-clock numbers.
#include <benchmark/benchmark.h>

#include <cstring>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/atomic_table.hpp"
#include "support/calendar_queue.hpp"
#include "support/event_pool.hpp"
#include "support/hash.hpp"
#include "support/spill.hpp"
#include "support/work_steal_deque.hpp"
#include "verify/checker.hpp"
#include "verify/collapse.hpp"
#include "verify/external_set.hpp"
#include "verify/fingerprint_set.hpp"
#include "verify/memory_budget.hpp"
#include "verify/state_set.hpp"

using namespace ccref;

namespace {

const ir::Protocol& migratory() {
  static const ir::Protocol p = protocols::make_migratory();
  return p;
}

const refine::RefinedProtocol& refined_migratory() {
  static const refine::RefinedProtocol rp = refine::refine(migratory());
  return rp;
}

void BM_RendezvousSuccessors(benchmark::State& state) {
  sem::RendezvousSystem sys(migratory(), static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) benchmark::DoNotOptimize(sys.successors(s));
}
BENCHMARK(BM_RendezvousSuccessors)->Arg(4)->Arg(16)->Arg(64);

void BM_AsyncSuccessors(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) benchmark::DoNotOptimize(sys.successors(s));
}
BENCHMARK(BM_AsyncSuccessors)->Arg(4)->Arg(16)->Arg(64);

void BM_AsyncEncode(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) {
    ByteSink sink;
    sys.encode(s, sink);
    benchmark::DoNotOptimize(sink.bytes());
  }
}
BENCHMARK(BM_AsyncEncode)->Arg(4)->Arg(64);

void BM_AsyncEncodeDecodeRoundTrip(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  for (auto _ : state) {
    ByteSink sink;
    sys.encode(s, sink);
    ByteSource src(sink.bytes());
    benchmark::DoNotOptimize(sys.decode(src));
  }
}
BENCHMARK(BM_AsyncEncodeDecodeRoundTrip)->Arg(4)->Arg(64);

void BM_HashBytes(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0x5a});
  for (auto _ : state) benchmark::DoNotOptimize(hash_bytes(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashBytes)->Arg(16)->Arg(64)->Arg(1024);

// Collapse-compression dictionary keys are mostly 1-4 bytes; the length-mixed
// finalizer keeps throughput flat across these sizes.
void BM_HashBytesShort(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0x5a});
  for (auto _ : state) benchmark::DoNotOptimize(hash_bytes(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashBytesShort)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_StateSetInsert(benchmark::State& state) {
  std::uint64_t i = 0;
  verify::StateSet set(1u << 30);
  for (auto _ : state) {
    ByteSink sink;
    sink.u64(i++);
    sink.u64(i * 0x9e3779b9);
    benchmark::DoNotOptimize(set.insert(sink.bytes()));
  }
}
BENCHMARK(BM_StateSetInsert);

// One fingerprint per state instead of the full vector: the insert path the
// hash-compaction tier runs per successor. Compare against
// BM_StateSetInsert for the per-state cost the tier removes.
void BM_FingerprintInsert(benchmark::State& state) {
  verify::MemoryBudget budget(1u << 30);
  verify::FingerprintSet set(budget);
  std::uint64_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(set.insert(++i * 0x9e3779b97f4a7c15ull));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FingerprintInsert);

// The external tier's steady-state insert path: a RAM-cache miss appended
// to a partition's pending run (one buffered 8-byte write plus the record).
// Compare against BM_FingerprintInsert for the per-miss cost of deferring
// the membership answer to disk.
void BM_PartitionFlush(benchmark::State& state) {
  verify::MemoryBudget budget(1u << 30);
  verify::ExternalVisitedSet::Config cfg;
  cfg.dir = "/tmp/ccref-bench-ext";
  cfg.partitions = static_cast<std::size_t>(state.range(0));
  // insert() never merges on its own (the engine drives resolve()), so the
  // watermark only sizes the charged sort scratch here.
  cfg.watermark = std::size_t{1} << 20;
  verify::ExternalVisitedSet set(budget, cfg);
  std::uint64_t i = 0;
  std::byte rec[32] = {};
  for (auto _ : state) {
    const std::uint64_t fp = ++i * 0x9e3779b97f4a7c15ull;
    benchmark::DoNotOptimize(set.insert(fp, i, rec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionFlush)->Arg(1)->Arg(16)->ArgNames({"partitions"});

// One delayed-duplicate-detection pass: sort a watermark-sized pending
// batch and merge it against a history run of range(1) fingerprints — the
// two sequential disk passes the tier's amortized cost bound is built on.
// Half of each batch duplicates admitted states, half is fresh.
void BM_RunMerge(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto history = static_cast<std::size_t>(state.range(1));
  std::uint64_t fresh_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    verify::MemoryBudget budget(1u << 30);
    verify::ExternalVisitedSet::Config cfg;
    cfg.dir = "/tmp/ccref-bench-ext";
    cfg.partitions = 1;
    cfg.watermark = batch;
    // Keep the RAM cache front small so the duplicate half of the batch
    // reaches the pending run instead of short-circuiting in RAM — the
    // merge itself is what is being measured.
    cfg.cache_slots = 1024;
    verify::ExternalVisitedSet set(budget, cfg);
    std::byte rec[16] = {};
    auto admit_all = [&] {
      return set.resolve(/*only_ripe=*/false,
                         [](std::uint32_t, std::uint64_t, std::uint64_t,
                            std::span<const std::byte>) {});
    };
    for (std::uint64_t v = 0; v < history; ++v)
      (void)set.insert((v + 1) * 0x9e3779b97f4a7c15ull, 0, rec);
    if (admit_all() == verify::ResolveOutcome::Failed) state.SkipWithError("io");
    // Pending batch: alternate a known-admitted and a fresh fingerprint.
    for (std::uint64_t v = 0; v < batch; ++v) {
      const std::uint64_t fp = (v & 1) ? (v / 2 + 1) * 0x9e3779b97f4a7c15ull
                                       : (history + v) * 0xc2b2ae3d27d4eb4full;
      (void)set.insert(fp ? fp : 1, 0, rec);
    }
    state.ResumeTiming();
    std::uint64_t fresh = 0;
    const auto ro = set.resolve(
        /*only_ripe=*/false, [&](std::uint32_t, std::uint64_t, std::uint64_t,
                                 std::span<const std::byte>) { ++fresh; });
    if (ro == verify::ResolveOutcome::Failed) state.SkipWithError("io");
    benchmark::DoNotOptimize(fresh);
    fresh_total += fresh;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["fresh_per_batch"] =
      state.iterations()
          ? static_cast<double>(fresh_total) /
                static_cast<double>(state.iterations())
          : 0;
}
BENCHMARK(BM_RunMerge)
    ->ArgsProduct({{4096, 65536}, {0, 1 << 20}})
    ->ArgNames({"batch", "history"});

// mmap + ftruncate + unlink for one spill chunk — the rare-path cost a pool
// pays when it crosses the RAM watermark (chunks double, so a 64 MB
// overflow takes ~14 of these, not thousands).
void BM_SpillChunkAlloc(benchmark::State& state) {
  SpillArena arena("/tmp/ccref-bench-spill");
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::byte* p = arena.map_chunk(bytes);
    benchmark::DoNotOptimize(p);
    p[0] = std::byte{1};  // fault in the first page
    arena.unmap_chunk(p, bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpillChunkAlloc)->Arg(64 << 10)->Arg(4 << 20);

// Encode a real async state through a ComponentSink (marks recorded) vs. the
// plain ByteSink above — the marginal cost of boundary bookkeeping.
void BM_AsyncEncodeWithMarks(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  auto s = sys.initial();
  ComponentSink sink;
  for (auto _ : state) {
    sink.clear();
    sys.encode(s, sink);
    benchmark::DoNotOptimize(sink.bytes());
    benchmark::DoNotOptimize(sink.marks());
  }
}
BENCHMARK(BM_AsyncEncodeWithMarks)->Arg(4)->Arg(64);

// Insert throughput + bytes-per-state of the collapsed visited set against
// the raw baseline, over the real reachable set of the async migratory
// protocol at N = range(0). Counters report the achieved compression ratio.
void BM_CollapseInsert(benchmark::State& state) {
  runtime::AsyncSystem sys(refined_migratory(),
                           static_cast<int>(state.range(0)));
  const auto mode = state.range(1) ? verify::CompressionMode::Collapse
                                   : verify::CompressionMode::Off;
  // Pre-enumerate a batch of distinct reachable encodings so the timed loop
  // measures insertion, not successor generation.
  std::vector<std::vector<std::byte>> encs;
  std::vector<std::vector<ComponentMark>> all_marks;
  {
    verify::CollapsedStateSet dedup(64u << 20);
    ComponentSink sink;
    auto root = sys.initial();
    sys.encode(root, sink);
    (void)dedup.insert(sink.bytes());
    encs.emplace_back(sink.bytes().begin(), sink.bytes().end());
    all_marks.emplace_back(sink.marks().begin(), sink.marks().end());
    for (std::size_t cur = 0; cur < encs.size() && encs.size() < 20000;
         ++cur) {
      ByteSource src(encs[cur]);
      auto s = sys.decode(src);
      for (auto& [succ, label] : sys.successors(s, sem::LabelMode::Quiet)) {
        sink.clear();
        sys.encode(succ, sink);
        if (dedup.insert(sink.bytes()).outcome ==
            verify::StateSet::Outcome::Inserted) {
          encs.emplace_back(sink.bytes().begin(), sink.bytes().end());
          all_marks.emplace_back(sink.marks().begin(), sink.marks().end());
        }
      }
    }
  }
  std::size_t stored = 0, raw = 0, states = 0;
  for (auto _ : state) {
    verify::CollapsedStateSet set(1u << 30, mode);
    for (std::size_t i = 0; i < encs.size(); ++i)
      benchmark::DoNotOptimize(set.insert(encs[i], all_marks[i]));
    stored = set.stored_bytes();
    raw = set.raw_bytes();
    states = set.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encs.size()));
  state.counters["bytes_per_state"] =
      states ? static_cast<double>(stored) / static_cast<double>(states) : 0;
  state.counters["raw_bytes_per_state"] =
      states ? static_cast<double>(raw) / static_cast<double>(states) : 0;
  state.counters["compression_ratio"] =
      stored ? static_cast<double>(raw) / static_cast<double>(stored) : 0;
}
BENCHMARK(BM_CollapseInsert)
    ->ArgsProduct({{3, 4}, {0, 1}})
    ->ArgNames({"n", "collapse"});

// ---- lock-free engine hot paths ---------------------------------------
//
// The three paths the parallel engine leans on: contended CAS
// insert-if-absent into one shared table, owner/thief traffic on a
// Chase–Lev deque, and the COLLAPSE dictionary's lock-free hit probe.
// ->Threads(k) runs the SAME shared structure from k benchmark threads;
// thread 0 owns setup/teardown (google-benchmark barriers the timed loop).

void BM_CasInsertContended(benchmark::State& state) {
  static verify::MemoryBudget* budget = nullptr;
  static AtomicByteTable<verify::MemoryBudget>* table = nullptr;
  if (state.thread_index() == 0) {
    budget = new verify::MemoryBudget(1u << 30);
    table = new AtomicByteTable<verify::MemoryBudget>(
        *budget, /*initial_slots=*/1 << 16, /*chunk0_bytes=*/1 << 20,
        /*track_parents=*/false);
  }
  // Each thread inserts a disjoint fresh-key stream: every operation takes
  // the full claim-CAS / publish path, and all threads contend on the same
  // slot array, pool bump pointer, and budget counter.
  std::uint64_t i = 0;
  std::byte key[16] = {};
  const auto tid = static_cast<std::uint64_t>(state.thread_index());
  for (auto _ : state) {
    const std::uint64_t v = (tid << 48) | i++;
    std::memcpy(key, &v, sizeof(v));
    benchmark::DoNotOptimize(table->insert(key, hash_bytes(key)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    delete table;
    delete budget;
  }
}
BENCHMARK(BM_CasInsertContended)->Threads(1)->Threads(2)->Threads(4);

void BM_StealThroughput(benchmark::State& state) {
  static WorkStealDeque<std::uint64_t*>* dq = nullptr;
  static std::uint64_t dummy = 42;
  if (state.thread_index() == 0) dq = new WorkStealDeque<std::uint64_t*>(64);
  // Thread 0 is the owner (push then pop — the deque hovers near empty, so
  // pop and steal keep racing the last-item CAS, the worst case); the rest
  // are thieves hammering steal().
  for (auto _ : state) {
    if (state.thread_index() == 0) {
      dq->push(&dummy);
      benchmark::DoNotOptimize(dq->pop());
    } else {
      benchmark::DoNotOptimize(dq->steal());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) delete dq;
}
BENCHMARK(BM_StealThroughput)->Threads(2)->Threads(4);

void BM_CollapseLookupHit(benchmark::State& state) {
  static verify::MemoryBudget* budget = nullptr;
  static verify::ConcurrentDict* dict = nullptr;
  static std::vector<std::vector<std::byte>> keys;
  if (state.thread_index() == 0) {
    budget = new verify::MemoryBudget(1u << 30);
    bool alive = false;
    dict = new verify::ConcurrentDict(*budget, /*chunk0=*/4096, &alive);
    // Pre-intern a realistic component population (COLLAPSE keys are a few
    // bytes each); the timed loop then exercises the pure hit path.
    keys.clear();
    for (std::uint64_t v = 0; v < 512; ++v) {
      std::vector<std::byte> k(4);
      std::memcpy(k.data(), &v, 4);
      (void)dict->intern(k, hash_bytes(k));
      keys.push_back(std::move(k));
    }
  }
  std::uint64_t i = static_cast<std::uint64_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    const auto& k = keys[i++ % keys.size()];
    benchmark::DoNotOptimize(dict->intern(k, hash_bytes(k)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    delete dict;
    delete budget;
  }
}
BENCHMARK(BM_CollapseLookupHit)->Threads(1)->Threads(4);

// ---- discrete-event simulator hot paths -------------------------------

// Steady-state hold pattern: pop the minimum, reschedule it a small random
// increment ahead — the simulator's per-event scheduling cost at a standing
// population of range(0) events (one push + one pop per iteration).
void BM_CalendarQueuePushPop(benchmark::State& state) {
  CalendarQueue q(/*width_hint=*/8);
  const auto population = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t i = 0; i < population; ++i) {
    x ^= x << 13, x ^= x >> 7, x ^= x << 17;
    q.push(x % 512, static_cast<std::uint32_t>(i));
  }
  std::uint64_t t = 0;
  std::uint32_t h = 0;
  for (auto _ : state) {
    const bool ok = q.pop(t, h);
    benchmark::DoNotOptimize(ok);
    x ^= x << 13, x ^= x >> 7, x ^= x << 17;
    q.push(t + 1 + x % 64, h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["buckets"] = static_cast<double>(q.bucket_count());
}
BENCHMARK(BM_CalendarQueuePushPop)->Arg(64)->Arg(4096)->Arg(1 << 16);

// Recycled alloc/release through the intrusive free list with a standing
// live population — after warm-up every event allocation the engine makes
// takes this path (no heap traffic).
void BM_EventPoolAlloc(benchmark::State& state) {
  struct Ev {
    std::uint64_t time;
    std::uint32_t a, b;
  };
  EventPool<Ev> pool;
  std::vector<EventPool<Ev>::Handle> live;
  for (int i = 0; i < 255; ++i) live.push_back(pool.alloc());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto h = pool.alloc();
    pool[h].time = i;
    benchmark::DoNotOptimize(pool[h]);
    pool.release(live[i % live.size()]);
    live[i % live.size()] = h;
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventPoolAlloc);

void BM_ExploreMigratoryRendezvous(benchmark::State& state) {
  for (auto _ : state) {
    sem::RendezvousSystem sys(migratory(), static_cast<int>(state.range(0)));
    verify::CheckOptions<sem::RendezvousSystem> opts;
    opts.want_trace = false;
    benchmark::DoNotOptimize(verify::explore(sys, opts));
  }
}
BENCHMARK(BM_ExploreMigratoryRendezvous)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

// Explicit main instead of BENCHMARK_MAIN(): tags the run context with the
// engine-configuration fields the other benches' JSON rows carry, so swept
// outputs stay joinable on (engine, jobs, symmetry, por).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("engine", "seq");
  benchmark::AddCustomContext("jobs", "1");
  benchmark::AddCustomContext("symmetry", "off");
  benchmark::AddCustomContext("por", "off");
  benchmark::AddCustomContext("compress", "off");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
