// Experiment E-MSG — the paper's protocol-quality metric (§1, §3.3, §5):
//
//   quality = "the number of request, acknowledge, and negative acknowledge
//   (nack) messages needed for carrying out the rendezvous"
//
// Compares, per completed workload operation:
//   generic      — §3 refinement without request/reply fusion
//                  (every rendezvous costs request + ack);
//   refined      — the full procedure with §3.3 fusion (req/gr and inv/ID
//                  collapse to two messages);
//   hand-design  — the Avalanche team's asynchronous migratory protocol,
//                  which additionally drops the ack after LR (§5's dotted
//                  arrows). The paper: "the loss of efficiency due to the
//                  extra ack is small" — measured here.
#include <cstdio>
#include <iostream>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace ccref;

namespace {

void row_for(Table& table, JsonArrayFile& json, const char* proto,
             const char* variant, const ir::Protocol& p,
             const refine::Options& opts, const sim::Workload& w, int n,
             std::uint64_t seed) {
  auto rp = refine::refine(p, opts);
  runtime::AsyncSystem sys(rp, n);
  sim::SimOptions sopts;
  sopts.seed = seed;
  auto stats = sim::simulate(sys, w, sopts);
  JsonObject o;
  o.field("bench", "msg_efficiency")
      .field("protocol", proto)
      .field("variant", variant)
      .field("n", n)
      .field("semantics", "asynchronous")
      .field("engine", "sim")
      .field("jobs", 1)
      .field("symmetry", "off")
      .field("por", "off")
      .field("finished", stats.finished);
  if (!stats.finished) {
    table.row({proto, variant, strf("%d", n), "STALLED", "-", "-", "-", "-",
               "-"});
    json.push(o);
    return;
  }
  o.field("ops", stats.ops_total)
      .field("req", stats.req)
      .field("ack", stats.ack)
      .field("nack", stats.nack)
      .field("repl", stats.repl)
      .field("msgs_per_op", stats.msgs_per_op())
      // Simulator rows: zeros keep the disk-usage schema uniform.
      .field("spill_bytes", std::size_t{0})
      .field("external_bytes", std::size_t{0});
  json.push(o);
  table.row({proto, variant, strf("%d", n), strf("%llu",
                 static_cast<unsigned long long>(stats.ops_total)),
             strf("%llu", static_cast<unsigned long long>(stats.req)),
             strf("%llu", static_cast<unsigned long long>(stats.ack)),
             strf("%llu", static_cast<unsigned long long>(stats.nack)),
             strf("%llu", static_cast<unsigned long long>(stats.repl)),
             strf("%.2f", stats.msgs_per_op())});
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  int cycles = static_cast<int>(cli.uint_flag(
      "cycles", 50, 1, 1u << 20, "acquire/release cycles per remote"));
  std::uint64_t seed =
      cli.uint_flag("seed", 7, 0, ~0ull, "scheduler seed");
  double write_frac =
      cli.double_flag("write-fraction", 0.3, "invalidate write-miss ratio");
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();

  std::printf("E-MSG: wire messages per completed operation\n\n");
  Table table({"Protocol", "Variant", "N", "Ops", "req", "ack", "nack",
               "repl", "msgs/op"});
  JsonArrayFile json;

  refine::Options generic;
  generic.request_reply_fusion = false;
  generic.channel_capacity = 8;
  refine::Options refined;
  refined.channel_capacity = 8;
  refine::Options hand;
  hand.channel_capacity = 8;
  hand.elide_ack = {"LR"};

  auto mig = protocols::make_migratory();
  for (int n : {1, 4, 8}) {
    auto w = sim::migratory_workload(mig, n, cycles);
    row_for(table, json, "migratory", "generic (no fusion)", mig, generic, w,
            n, seed);
    row_for(table, json, "migratory", "refined (§3.3)", mig, refined, w, n,
            seed);
    row_for(table, json, "migratory", "hand design (no LR ack)", mig, hand, w,
            n, seed);
  }

  // (No hand-design variant for invalidate: eliding the drop ack breaks
  // forward progress there — see InvalidateHand.ElidedDropIsSafeButNotLive.)
  auto inv = protocols::make_invalidate();
  for (int n : {4, 8}) {
    auto w = sim::invalidate_workload(inv, n, cycles, write_frac, seed);
    row_for(table, json, "invalidate", "generic (no fusion)", inv, generic, w,
            n, seed);
    row_for(table, json, "invalidate", "refined (§3.3)", inv, refined, w, n,
            seed);
  }

  table.print(std::cout);
  std::printf(
      "\npaper: fused req/gr and inv/ID take 2 messages per pair instead of "
      "4; the hand design\nsaves exactly one further ack per LR, so the "
      "refined protocol is 'comparable in quality'.\n");
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
