// Experiment A-ABL — ablations of the refinement's design choices:
//
//   progress buffer (§3.2): reserve the last free slot for requests that can
//       complete a rendezvous in the current state. Without it, the buffer
//       fills with requests that cannot fire and the completing message is
//       nacked forever — the livelock the paper describes.
//   ack buffer (§3.2): reserve a slot for the pending target's response when
//       entering a transient state.
//   request/reply fusion (§3.3): message savings (see also E-MSG); here we
//       confirm it does not change safety or progress.
//
// Livelock is measured exactly: a *doomed* state is a reachable state from
// which no rendezvous-completing transition is ever reachable again.
#include <cstdio>
#include <limits>
#include <iostream>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/progress.hpp"

using namespace ccref;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::size_t mem = static_cast<std::size_t>(
      cli.size_flag("mem", "1G", 1u << 20,
                    std::numeric_limits<std::uint64_t>::max(),
                    "state-memory limit, e.g. 64M or 2G"));
  bool full = cli.bool_flag(
      "full", true, "include the invalidate N=4 rows (~1.2M states each)");
  std::string por_arg = cli.str_flag(
      "por", "off", "partial-order reduction: off | ample");
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();
  auto por = verify::parse_por(por_arg);
  if (!por) {
    std::fprintf(stderr, "bad --por value '%s' (off | ample)\n",
                 por_arg.c_str());
    return 2;
  }

  std::printf(
      "A-ABL: buffer-reservation ablations — doomed states = reachable "
      "livelock\n\n");
  Table table({"Protocol", "N", "progress buf", "ack buf", "fusion",
               "States", "Doomed states", "Verdict"});
  JsonArrayFile json;

  auto run = [&](const char* name, const ir::Protocol& p, int n,
                 bool progress, bool ack, bool fusion) {
    refine::Options opts;
    opts.progress_buffer = progress;
    opts.ack_buffer = ack;
    opts.request_reply_fusion = fusion;
    auto rp = refine::refine(p, opts);
    verify::ProgressOptions popts;
    popts.memory_limit = mem;
    popts.por = *por;
    auto r = verify::check_progress(runtime::AsyncSystem(rp, n), popts);
    std::string verdict =
        r.status != verify::Status::Ok ? "Unfinished"
        : r.doomed == 0                ? "live"
                                       : "LIVELOCK";
    table.row({name, strf("%d", n), progress ? "on" : "off",
               ack ? "on" : "off", fusion ? "on" : "off",
               strf("%zu", r.states), strf("%zu", r.doomed), verdict});
    JsonObject o;
    o.field("bench", "ablation")
        .field("protocol", name)
        .field("n", n)
        .field("semantics", "asynchronous")
        .field("engine", "seq")
        .field("jobs", 1)
        .field("symmetry", "off")
        .field("por", verify::to_string(*por))
        .field("progress_buffer", progress)
        .field("ack_buffer", ack)
        .field("fusion", fusion)
        .field("status", verify::to_string(r.status))
        .field("states", r.states)
        .field("doomed", r.doomed)
        // The progress checker keeps its reverse graph in RAM; zeros keep
        // the disk-usage schema uniform across every bench's --json.
        .field("spill_bytes", std::size_t{0})
        .field("external_bytes", std::size_t{0})
        .field("verdict", verdict);
    json.push(o);
  };

  auto mig = protocols::make_migratory();
  run("migratory", mig, 4, true, true, true);
  run("migratory", mig, 4, false, true, true);
  run("migratory", mig, 4, true, false, true);
  run("migratory", mig, 4, false, false, true);
  run("migratory", mig, 4, true, true, false);

  if (full) {
    auto inv = protocols::make_invalidate();
    run("invalidate", inv, 4, true, true, true);
    run("invalidate", inv, 4, false, true, true);
    run("invalidate", inv, 4, true, false, true);
    run("invalidate", inv, 4, false, false, true);
  }

  table.print(std::cout);
  std::printf(
      "\npaper (§3.2): without the progress-buffer reservation 'a livelock "
      "can result'; with both\nreservations the refined protocol guarantees "
      "forward progress for at least one remote (§2.5).\n");
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
