// SNOOP — the snooping bus family: MESI vs MOESI vs MESIF vs Dragon.
//
// Two sections:
//   verify   the four protocols through the engine matrix: abstract
//            (rendezvous broadcast) invariant at n=3 and refined
//            (split-transaction bus) invariant at n=2, with state counts per
//            engine configuration — the scenario-diversity unlock the
//            ROADMAP asks the broadcast IR for
//   traffic  timed synthetic traffic under the bus cost model: bus
//            transactions, memory write-backs, cache-to-cache transfers and
//            bus updates per miss — the classic protocol-economy comparison
//            (MOESI trades memory write-backs for c2c supply, Dragon trades
//            invalidations for word updates)
//
// `--smoke` runs a seconds-fast gate (all four verdicts under 64 MB at small
// n, a deterministic traffic run, a determinism replay) and exits nonzero on
// any mismatch — wired into CI.
//
//   ./bench_snoop --json=BENCH_snoop.json
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "protocols/snoop.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "sim/bus.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"

using namespace ccref;

namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;
using verify::CompressionMode;
using verify::PorMode;
using verify::Status;
using verify::SymmetryMode;

struct VerifyRun {
  verify::CheckResult result;
  double seconds = 0;
};

template <class Sys, class Inv>
VerifyRun run_check(const Sys& sys, Inv inv, SymmetryMode symmetry,
                    unsigned jobs, std::size_t memory_limit) {
  verify::CheckOptions<Sys> opts;
  opts.want_trace = false;
  opts.symmetry = symmetry;
  opts.invariant = std::move(inv);
  opts.memory_limit = memory_limit;
  VerifyRun r;
  const auto t0 = std::chrono::steady_clock::now();
  r.result = jobs <= 1 ? verify::explore(sys, opts)
                       : verify::par_explore(sys, opts, jobs);
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

// ---- smoke gate ---------------------------------------------------------

#define SMOKE_CHECK(cond)                                            \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::fprintf(stderr, "SMOKE FAIL %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                 \
      return 1;                                                      \
    }                                                                \
  } while (0)

int smoke() {
  const std::size_t limit = 64u << 20;
  for (const auto& [name, p] : protocols::make_snoop_family()) {
    // Abstract broadcast level, n = 2, canonical symmetry.
    RendezvousSystem rv(p, 2);
    auto a = run_check(rv, protocols::snoop_invariant(p, 2),
                       SymmetryMode::Canonical, 1, limit);
    SMOKE_CHECK(a.result.status == Status::Ok);
    SMOKE_CHECK(a.result.states > 1);
    // Refined split-transaction bus, n = 2.
    auto rp = refine::refine(p);
    AsyncSystem as(rp, 2);
    auto r = run_check(as, protocols::snoop_async_invariant(p, 2),
                       SymmetryMode::Canonical, 1, limit);
    SMOKE_CHECK(r.result.status == Status::Ok);
    SMOKE_CHECK(r.result.states > a.result.states);
  }
  // Deterministic traffic: same seed, same counters, run finishes.
  auto p = protocols::make_mesi();
  auto w = sim::make_bus_workload(4, 20, 0.3, 0.1, 16, 7);
  sim::BusOptions opts;
  opts.seed = 7;
  auto one = sim::bus_simulate(p, 4, w, opts);
  auto two = sim::bus_simulate(p, 4, w, opts);
  SMOKE_CHECK(one.finished && two.finished);
  SMOKE_CHECK(one.cycles == two.cycles && one.steps == two.steps);
  SMOKE_CHECK(one.bus_transactions == two.bus_transactions);
  SMOKE_CHECK(one.bus_transactions > 0 && one.grants > 0);
  SMOKE_CHECK(one.hits + one.mem_fills + one.c2c_transfers > 0);
  std::printf("bench_snoop --smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  bool smoke_only = cli.bool_flag(
      "smoke", false, "fast correctness gate: all four verdicts, then exit");
  std::uint64_t nodes = cli.uint_flag(
      "nodes", 8, 2, 32, "caches on the simulated bus (traffic section)");
  std::uint64_t ops = cli.uint_flag(
      "ops", 200, 1, 1u << 20, "read/write ops per cache");
  double write_fraction =
      cli.double_flag("write-fraction", 0.3, "probability an op is a write");
  double evict_fraction = cli.double_flag(
      "evict-fraction", 0.1, "probability an op is followed by an evict");
  std::uint64_t seed = cli.uint_flag("seed", 42, 0, ~0ull, "workload seed");
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();

  if (smoke_only) return smoke();

  JsonArrayFile json;
  auto family = protocols::make_snoop_family();

  // ---- verify: the engine matrix on both levels -------------------------
  std::printf("SNOOP-VERIFY: abstract (rendezvous broadcast) n=3, refined "
              "(split-transaction bus) n=2\n\n");
  Table ver({"Protocol", "level", "engine", "jobs", "sym", "states",
             "transitions", "sec"});
  const std::size_t limit = 512u << 20;
  for (const auto& [name, p] : family) {
    RendezvousSystem rv(p, 3);
    auto rp = refine::refine(p);
    AsyncSystem as(rp, 2);
    const struct {
      const char* level;
      unsigned jobs;
      SymmetryMode sym;
    } cells[] = {{"abstract", 1, SymmetryMode::Off},
                 {"abstract", 1, SymmetryMode::Canonical},
                 {"abstract", 4, SymmetryMode::Canonical},
                 {"refined", 1, SymmetryMode::Canonical},
                 {"refined", 4, SymmetryMode::Canonical}};
    for (const auto& c : cells) {
      VerifyRun r;
      if (std::string_view(c.level) == "abstract")
        r = run_check(rv, protocols::snoop_invariant(p, 3), c.sym, c.jobs,
                      limit);
      else
        r = run_check(as, protocols::snoop_async_invariant(p, 2), c.sym,
                      c.jobs, limit);
      if (r.result.status != Status::Ok) {
        std::fprintf(stderr, "%s %s: %s\n", name.c_str(), c.level,
                     r.result.violation.c_str());
        return 1;
      }
      const char* engine = c.jobs > 1 ? "par_explore" : "explore";
      const char* sym =
          c.sym == SymmetryMode::Canonical ? "canonical" : "off";
      ver.row({name, c.level, engine, strf("%u", c.jobs), sym,
               strf("%llu", static_cast<unsigned long long>(r.result.states)),
               strf("%llu",
                    static_cast<unsigned long long>(r.result.transitions)),
               strf("%.2f", r.seconds)});
      JsonObject o;
      o.field("section", "verify")
          .field("protocol", name)
          .field("level", c.level)
          .field("engine", engine)
          .field("jobs", c.jobs)
          .field("symmetry", sym)
          .field("por", "off")
          .field("n", std::string_view(c.level) == "abstract" ? 3 : 2)
          .field("status", "ok")
          .field("states", r.result.states)
          .field("transitions", r.result.transitions)
          .field("seconds", r.seconds)
          .field("spill_bytes", r.result.spill_bytes)
          .field("external_bytes", r.result.external_bytes);
      json.push(o);
    }
  }
  ver.print(std::cout);

  // ---- traffic: the bus cost model --------------------------------------
  std::printf("\nSNOOP-TRAFFIC: %llu caches x %llu ops, write %.2f, evict "
              "%.2f, avalanche bus costs\n\n",
              static_cast<unsigned long long>(nodes),
              static_cast<unsigned long long>(ops), write_fraction,
              evict_fraction);
  Table traf({"Protocol", "bus txns", "txns/miss", "wb/miss", "c2c/miss",
              "fill/miss", "upd/miss", "hit rate", "cycles/op", "avg lat"});
  for (const auto& [name, p] : family) {
    auto w = sim::make_bus_workload(static_cast<int>(nodes),
                                    static_cast<int>(ops), write_fraction,
                                    evict_fraction, 32, seed);
    sim::BusOptions sopts;
    sopts.seed = seed;
    sopts.max_steps = 50'000'000;
    auto t = sim::bus_simulate(p, static_cast<int>(nodes), w, sopts);
    if (!t.finished) {
      std::fprintf(stderr, "%s traffic run stalled: %s\n", name.c_str(),
                   t.stall.c_str());
      return 1;
    }
    const double hit_rate =
        t.ops_total ? static_cast<double>(t.hits) / t.ops_total : 0.0;
    const double cycles_per_op =
        t.ops_total ? static_cast<double>(t.cycles) / t.ops_total : 0.0;
    traf.row(
        {name,
         strf("%llu", static_cast<unsigned long long>(t.bus_transactions)),
         strf("%.2f", t.per_op(t.bus_transactions)),
         strf("%.2f", t.per_op(t.mem_writebacks)),
         strf("%.2f", t.per_op(t.c2c_transfers)),
         strf("%.2f", t.per_op(t.mem_fills)),
         strf("%.2f", t.per_op(t.bus_updates)), strf("%.2f", hit_rate),
         strf("%.1f", cycles_per_op), strf("%.1f", t.avg_latency())});
    JsonObject o;
    o.field("section", "traffic")
        .field("protocol", name)
        .field("engine", "bus_sim")
        .field("jobs", 1)
        .field("symmetry", "off")
        .field("por", "off")
        .field("n", nodes)
        .field("ops", ops)
        .field("seed", seed)
        .field("bus_transactions", t.bus_transactions)
        .field("mem_writebacks", t.mem_writebacks)
        .field("c2c_transfers", t.c2c_transfers)
        .field("mem_fills", t.mem_fills)
        .field("bus_updates", t.bus_updates)
        .field("grants", t.grants)
        .field("hits", t.hits)
        .field("cycles", t.cycles)
        .field("avg_latency", t.avg_latency());
    json.push(o);
  }
  traf.print(std::cout);
  std::printf(
      "\nexpected shape: MOESI converts MESI memory write-backs into c2c "
      "supply (owned state);\nMESIF keeps clean sharing c2c (F responder); "
      "Dragon replaces invalidation misses with\nword updates — more bus "
      "transactions, far less block traffic.\n");

  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
