// Experiment T3 — reproduces Table 3 of the paper:
//
//   "Number of states visited and time taken in seconds for reachability
//    analysis of the rendezvous and asynchronous versions of the migratory
//    and invalidate protocols. All verifications were limited to 64MB."
//
// Paper-reported values (SPIN, 1997):
//   migratory  N=2: async 23163/2.84s,  rendezvous 54/0.1s
//   migratory  N=4: async Unfinished,   rendezvous 235/0.4s
//   migratory  N=8: async Unfinished,   rendezvous 965/0.5s
//   invalidate N=2: async 193389/19.2s, rendezvous 546/0.6s
//   invalidate N=4: async Unfinished,   rendezvous 18686/2.3s
//   invalidate N=6: async Unfinished,   rendezvous 228334/18.4s
//
// Our checker stores states more compactly than SPIN 2.x, so the absolute
// counts are smaller and the 64MB wall moves out by ~2 nodes; the *shape* —
// rendezvous orders of magnitude cheaper, asynchronous exploration
// exhausting memory as N grows — is the result under test.
//
// `--jobs N` (default 1 = the sequential engine, bit-identical to all prior
// results) switches to the parallel engine; Ok-status state and transition
// counts are engine-independent. `--json path` dumps machine-readable rows.
#include <cstdio>
#include <iostream>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/storage_cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/bitstate.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"

using namespace ccref;

namespace {

std::string cell(const verify::CheckResult& r) {
  if (r.status == verify::Status::Unfinished)
    return strf("Unfinished (%zu+)", r.states);
  return strf("%zu/%.2f", r.states, r.seconds);
}

template <class Sys>
verify::CheckResult run(const Sys& sys, const StorageFlags& storage,
                        unsigned jobs, unsigned shards,
                        verify::SymmetryMode symmetry, verify::PorMode por,
                        verify::CompressionMode compress,
                        std::size_t expect_states) {
  verify::CheckOptions<Sys> opts;
  opts.memory_limit = storage.memory_limit;
  opts.want_trace = false;
  opts.symmetry = symmetry;
  opts.por = por;
  opts.compress = compress;
  opts.hash_compact = storage.hash_compact;
  opts.spill = storage.spill;
  opts.external = storage.external;
  opts.expected_states = expect_states;
  return jobs <= 1 ? verify::explore(sys, opts)
                   : verify::par_explore(sys, opts, jobs, shards);
}

/// Bitstate rows reuse the CheckResult shape so the table / JSON code paths
/// stay shared: supertrace counts are lower bounds, flagged Approximate.
template <class Sys>
verify::CheckResult run_bitstate(const Sys& sys, std::size_t mem,
                                 verify::SymmetryMode symmetry) {
  auto b = verify::explore_bitstate(sys, mem, 100000, {}, /*max_states=*/0,
                                    symmetry);
  verify::CheckResult r;
  r.status = verify::Status::Ok;
  r.states = b.states;
  r.transitions = b.transitions;
  r.seconds = b.seconds;
  r.memory_bytes = b.memory_bytes;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  StorageFlags storage = storage_flags(cli, "64M");
  bool extend = cli.bool_flag("extended", true,
                              "also run N beyond the paper's table");
  auto jobs = static_cast<unsigned>(cli.uint_flag(
      "jobs", 1, 1, 1024, "worker threads (1 = sequential engine)"));
  auto shards = static_cast<unsigned>(cli.uint_flag(
      "shards", 0, 0, 256,
      "visited-set shards for the parallel engine (0: match jobs)"));
  std::string sym_arg = cli.str_flag(
      "symmetry", "off", "symmetry reduction: off | canonical");
  std::string por_arg = cli.str_flag(
      "por", "off", "partial-order reduction: off | ample");
  bool bitstate = cli.bool_flag(
      "bitstate", false,
      "approximate supertrace search (--mem becomes the bit-array size)");
  std::string compress_arg = cli.str_flag(
      "compress", "off", "state-vector compression: off | collapse");
  auto expect_states = static_cast<std::size_t>(cli.uint_flag(
      "expect-states", 0, 0, 1u << 31,
      "pre-size the visited set for this many states (0: grow on demand)"));
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();
  auto symmetry = verify::parse_symmetry(sym_arg);
  if (!symmetry) {
    std::fprintf(stderr, "bad --symmetry value '%s' (off | canonical)\n",
                 sym_arg.c_str());
    return 2;
  }
  auto por = verify::parse_por(por_arg);
  if (!por) {
    std::fprintf(stderr, "bad --por value '%s' (off | ample)\n",
                 por_arg.c_str());
    return 2;
  }
  auto compress = verify::parse_compression(compress_arg);
  if (!compress) {
    std::fprintf(stderr, "bad --compress value '%s' (off | collapse)\n",
                 compress_arg.c_str());
    return 2;
  }

  std::printf("Table 3: states visited / seconds for reachability analysis\n");
  std::printf("(verifications limited to %zu MB of state memory, %u job%s%s%s%s%s)\n\n",
              storage.memory_limit >> 20, jobs, jobs == 1 ? "" : "s",
              bitstate ? ", bitstate" : "",
              storage.hash_compact ? ", hash-compact" : "",
              storage.arena ? ", spill" : "",
              storage.external.enabled() ? ", external" : "");

  Table table({"Protocol", "N", "Asynchronous protocol",
               "Rendezvous protocol"});
  JsonArrayFile json;

  auto record = [&](const char* name, int n, const char* semantics,
                    const verify::CheckResult& r) {
    JsonObject o;
    o.field("bench", "table3")
        .field("protocol", name)
        .field("n", n)
        .field("semantics", semantics)
        .field("engine", jobs <= 1 ? "seq" : "par")
        .field("jobs", static_cast<int>(jobs))
        .field("symmetry", verify::to_string(*symmetry))
        .field("por", verify::to_string(*por))
        .field("bitstate", bitstate)
        .field("compress", verify::to_string(*compress))
        .field("status",
               bitstate ? "approximate" : verify::to_string(r.status))
        .field("states", r.states)
        .field("transitions", r.transitions)
        .field("seconds", r.seconds)
        .field("memory_bytes", r.memory_bytes)
        .field("hash_compact", storage.hash_compact)
        .field("omission_probability", r.omission_probability)
        .field("spill_bytes", r.spill_bytes)
        .field("external_bytes", r.external_bytes)
        .field("merge_passes", r.merge_passes)
        .field("waste_bytes", r.waste_bytes)
        .field("pool_bytes", r.pool_bytes)
        .field("raw_pool_bytes", r.raw_pool_bytes)
        .field("compression_ratio",
               r.pool_bytes ? static_cast<double>(r.raw_pool_bytes) /
                                  static_cast<double>(r.pool_bytes)
                            : 0.0);
    json.push(o);
  };

  auto run_rows = [&](const char* name, const ir::Protocol& p,
                      std::vector<int> ns) {
    auto rp = refine::refine(p);
    for (int n : ns) {
      auto rv = bitstate
                    ? run_bitstate(sem::RendezvousSystem(p, n),
                                   storage.memory_limit, *symmetry)
                    : run(sem::RendezvousSystem(p, n), storage, jobs, shards,
                          *symmetry, *por, *compress, expect_states);
      auto as = bitstate
                    ? run_bitstate(runtime::AsyncSystem(rp, n),
                                   storage.memory_limit, *symmetry)
                    : run(runtime::AsyncSystem(rp, n), storage, jobs, shards,
                          *symmetry, *por, *compress, expect_states);
      record(name, n, "rendezvous", rv);
      record(name, n, "asynchronous", as);
      table.row({name, strf("%d", n),
                 bitstate ? strf("%zu+/%.2f", as.states, as.seconds)
                          : cell(as),
                 bitstate ? strf("%zu+/%.2f", rv.states, rv.seconds)
                          : cell(rv)});
    }
  };

  auto migratory = protocols::make_migratory();
  auto invalidate = protocols::make_invalidate();
  run_rows("Migratory", migratory,
           extend ? std::vector<int>{2, 4, 6, 8} : std::vector<int>{2, 4, 8});
  run_rows("Invalidate", invalidate,
           extend ? std::vector<int>{2, 3, 4, 6} : std::vector<int>{2, 4, 6});

  table.print(std::cout);
  std::printf(
      "\npaper (SPIN): migratory async 23163/2.84 at N=2, Unfinished at "
      "N=4,8;\n              rendezvous 54/235/965 at N=2/4/8; invalidate "
      "async Unfinished beyond N=2.\n");
  if (!json_path.empty() && !json.write(json_path)) return 1;
  return 0;
}
