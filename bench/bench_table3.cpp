// Experiment T3 — reproduces Table 3 of the paper:
//
//   "Number of states visited and time taken in seconds for reachability
//    analysis of the rendezvous and asynchronous versions of the migratory
//    and invalidate protocols. All verifications were limited to 64MB."
//
// Paper-reported values (SPIN, 1997):
//   migratory  N=2: async 23163/2.84s,  rendezvous 54/0.1s
//   migratory  N=4: async Unfinished,   rendezvous 235/0.4s
//   migratory  N=8: async Unfinished,   rendezvous 965/0.5s
//   invalidate N=2: async 193389/19.2s, rendezvous 546/0.6s
//   invalidate N=4: async Unfinished,   rendezvous 18686/2.3s
//   invalidate N=6: async Unfinished,   rendezvous 228334/18.4s
//
// Our checker stores states more compactly than SPIN 2.x, so the absolute
// counts are smaller and the 64MB wall moves out by ~2 nodes; the *shape* —
// rendezvous orders of magnitude cheaper, asynchronous exploration
// exhausting memory as N grows — is the result under test.
#include <cstdio>
#include <iostream>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/checker.hpp"

using namespace ccref;

namespace {

std::string cell(const verify::CheckResult& r) {
  if (r.status == verify::Status::Unfinished)
    return strf("Unfinished (%zu+)", r.states);
  return strf("%zu/%.2f", r.states, r.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::size_t mem =
      static_cast<std::size_t>(cli.int_flag("mem-mb", 64,
                                            "memory limit per run (MB)"))
      << 20;
  bool extend = cli.bool_flag("extended", true,
                              "also run N beyond the paper's table");
  cli.finish();

  std::printf("Table 3: states visited / seconds for reachability analysis\n");
  std::printf("(verifications limited to %zu MB of state memory)\n\n",
              mem >> 20);

  Table table({"Protocol", "N", "Asynchronous protocol",
               "Rendezvous protocol"});

  auto run_rows = [&](const char* name, const ir::Protocol& p,
                      std::vector<int> ns) {
    auto rp = refine::refine(p);
    for (int n : ns) {
      verify::CheckOptions<sem::RendezvousSystem> rv_opts;
      rv_opts.memory_limit = mem;
      rv_opts.want_trace = false;
      auto rv = verify::explore(sem::RendezvousSystem(p, n), rv_opts);

      verify::CheckOptions<runtime::AsyncSystem> as_opts;
      as_opts.memory_limit = mem;
      as_opts.want_trace = false;
      auto as = verify::explore(runtime::AsyncSystem(rp, n), as_opts);

      table.row({name, strf("%d", n), cell(as), cell(rv)});
    }
  };

  auto migratory = protocols::make_migratory();
  auto invalidate = protocols::make_invalidate();
  run_rows("Migratory", migratory,
           extend ? std::vector<int>{2, 4, 6, 8} : std::vector<int>{2, 4, 8});
  run_rows("Invalidate", invalidate,
           extend ? std::vector<int>{2, 3, 4, 6} : std::vector<int>{2, 4, 6});

  table.print(std::cout);
  std::printf(
      "\npaper (SPIN): migratory async 23163/2.84 at N=2, Unfinished at "
      "N=4,8;\n              rendezvous 54/235/965 at N=2/4/8; invalidate "
      "async Unfinished beyond N=2.\n");
  return 0;
}
