// Experiment CAP — breaking the paper's 64 MB wall with storage tiers:
//
// Table 3 caps every verification at 64 MB of state memory; past the wall
// the checker reports Unfinished with however many states fit. This bench
// sweeps the asynchronous migratory and invalidate protocols across that
// same budget under each storage tier —
//
//   full          one byte vector per state (the Table-3 baseline)
//   collapse      COLLAPSE index tuples + component dictionaries
//   hash-compact  one 64-bit fingerprint per state (omission probability
//                 reported; violations stay exact)
//   spill         full vectors, pools overflowing to an mmap arena
//                 (rows emitted only when --spill DIR is given)
//   external      disk-resident visited set: partitioned fingerprint runs
//                 with delayed duplicate detection (rows emitted only when
//                 --external DIR is given; reports disk bytes and merge
//                 passes in --json)
//
// and then re-runs the Table-3 wall configurations (migratory N=5 at
// 32 MB, invalidate N=5 with symmetry at 16 MB) to show the tiers turning
// Unfinished into a finished verdict inside the same RAM cap.
//
// `--smoke` is the CI gate: small configurations, plus an in-RAM
// full-storage reference run per protocol — exit 1 unless every tier that
// finishes agrees with the reference verdict and state count.
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/storage_cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"

using namespace ccref;

namespace {

struct Tier {
  const char* name;
  verify::CompressionMode compress = verify::CompressionMode::Off;
  bool hash_compact = false;
  bool spill = false;
  bool external = false;
};

constexpr Tier kFull{"full"};
constexpr Tier kCollapse{"collapse", verify::CompressionMode::Collapse};
constexpr Tier kHashCompact{"hash-compact", verify::CompressionMode::Off,
                            true};
constexpr Tier kSpill{"spill", verify::CompressionMode::Off, false, true};
constexpr Tier kExternal{"external", verify::CompressionMode::Off, false,
                         false, true};

std::string cell(const verify::CheckResult& r) {
  if (r.status == verify::Status::Unfinished)
    return strf("Unfinished (%zu+)", r.states);
  std::string c = strf("%zu/%.2f", r.states, r.seconds);
  const std::size_t disk = r.spill_bytes + r.external_bytes;
  if (disk > 0) c += strf(" +%zuMB disk", disk >> 20);
  return c;
}

struct Runner {
  unsigned jobs = 1;
  SpillArena* arena = nullptr;  // null: spill rows are skipped
  const verify::ExternalPolicy* external = nullptr;  // null: external skipped
  Table table{{"Protocol", "N", "Mem", "Symmetry", "Tier",
               "States/s (async)"}};
  JsonArrayFile json;

  verify::CheckResult run(const runtime::AsyncSystem& sys, std::size_t mem,
                          verify::SymmetryMode symmetry, const Tier& tier) {
    verify::CheckOptions<runtime::AsyncSystem> opts;
    opts.memory_limit = mem;
    opts.want_trace = false;
    opts.symmetry = symmetry;
    opts.compress = tier.compress;
    opts.hash_compact = tier.hash_compact;
    if (tier.spill && arena != nullptr) opts.spill = {arena, mem / 2};
    if (tier.external && external != nullptr) opts.external = *external;
    return jobs <= 1 ? verify::explore(sys, opts)
                     : verify::par_explore(sys, opts, jobs, jobs);
  }

  verify::CheckResult row(const char* name, const runtime::AsyncSystem& sys,
                          int n, std::size_t mem,
                          verify::SymmetryMode symmetry, const Tier& tier) {
    auto r = run(sys, mem, symmetry, tier);
    JsonObject o;
    o.field("bench", "capacity")
        .field("protocol", name)
        .field("n", n)
        .field("semantics", "asynchronous")
        .field("engine", jobs <= 1 ? "seq" : "par")
        .field("jobs", static_cast<int>(jobs))
        .field("symmetry", verify::to_string(symmetry))
        .field("tier", tier.name)
        .field("mem_bytes", mem)
        .field("status", verify::to_string(r.status))
        .field("states", r.states)
        .field("transitions", r.transitions)
        .field("seconds", r.seconds)
        .field("memory_bytes", r.memory_bytes)
        .field("spill_bytes", r.spill_bytes)
        .field("external_bytes", r.external_bytes)
        .field("merge_passes", r.merge_passes)
        .field("waste_bytes", r.waste_bytes)
        .field("omission_probability", r.omission_probability);
    json.push(o);
    table.row({name, strf("%d", n), strf("%zuM", mem >> 20),
               verify::to_string(symmetry), tier.name, cell(r)});
    return r;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  StorageFlags storage = storage_flags(cli, "64M");
  auto jobs = static_cast<unsigned>(cli.uint_flag(
      "jobs", 1, 1, 1024, "worker threads (1 = sequential engine)"));
  bool smoke = cli.bool_flag(
      "smoke", false,
      "CI gate: small configurations, verdict agreement asserted");
  std::string json_path =
      cli.str_flag("json", "", "dump machine-readable results to this file");
  cli.finish();
  // --hash-compact makes no sense here (the sweep runs every tier); the
  // flag exists because storage_flags declares the uniform block, but a
  // request for it would silently duplicate the hash-compact rows.
  if (storage.hash_compact) {
    std::fprintf(stderr,
                 "--hash-compact is implied by the tier sweep; drop it\n");
    return 2;
  }

  const std::size_t mem = storage.memory_limit;
  Runner runner;
  runner.jobs = jobs;
  runner.arena = storage.arena.get();
  if (storage.external.enabled()) runner.external = &storage.external;

  auto migratory = protocols::make_migratory();
  auto invalidate = protocols::make_invalidate();
  auto rp_mig = refine::refine(migratory);
  auto rp_inv = refine::refine(invalidate);

  std::vector<Tier> tiers{kFull, kCollapse, kHashCompact};
  if (storage.arena) tiers.push_back(kSpill);
  if (runner.external) tiers.push_back(kExternal);

  if (smoke) {
    // CI: one walled budget per protocol, every tier, counts checked
    // against an in-RAM reference. 2 MB walls migratory N=4 (43,956
    // states) and invalidate N=3 (84,005 states) on full storage.
    const std::size_t wall = 2u << 20;
    bool ok = true;
    auto gate = [&](const char* name, const runtime::AsyncSystem& sys,
                    int n) {
      verify::CheckOptions<runtime::AsyncSystem> ref_opts;
      ref_opts.memory_limit = 512u << 20;
      ref_opts.want_trace = false;
      auto ref = verify::explore(sys, ref_opts);
      if (ref.status != verify::Status::Ok) {
        std::fprintf(stderr, "%s n=%d: reference run %s\n", name, n,
                     verify::to_string(ref.status));
        ok = false;
        return;
      }
      for (const auto& tier : tiers) {
        auto r = runner.row(name, sys, n, wall, verify::SymmetryMode::Off,
                            tier);
        const bool must_finish =
            tier.hash_compact || tier.spill || tier.external;
        if (must_finish &&
            (r.status != verify::Status::Ok || r.states != ref.states)) {
          std::fprintf(stderr,
                       "CAPACITY GATE FAILED: %s n=%d tier=%s: %s "
                       "%zu states vs reference %zu\n",
                       name, n, tier.name, verify::to_string(r.status),
                       r.states, ref.states);
          ok = false;
        }
      }
    };
    gate("Migratory", runtime::AsyncSystem(rp_mig, 4), 4);
    gate("Invalidate", runtime::AsyncSystem(rp_inv, 3), 3);
    runner.table.print(std::cout);
    if (!json_path.empty() && !runner.json.write(json_path)) return 1;
    if (!ok) return 1;
    std::printf("\ncapacity gate passed: hash-compact%s%s finished the "
                "walled runs with reference-exact counts\n",
                storage.arena ? " and spill" : "",
                runner.external ? " and external" : "");
    return 0;
  }

  std::printf(
      "CAP: storage tiers vs the %zu MB wall (asynchronous semantics, "
      "%u job%s)\n\n",
      mem >> 20, jobs, jobs == 1 ? "" : "s");

  for (int n : {3, 4, 5, 6})
    for (const auto& tier : tiers)
      runner.row("Migratory", runtime::AsyncSystem(rp_mig, n), n, mem,
                 verify::SymmetryMode::Off, tier);
  // Invalidate stops at N=5: ~29M plain states — every tier's table is
  // budget-bound long before then, so N=6 adds minutes, not information.
  for (int n : {3, 4, 5})
    for (const auto& tier : tiers)
      runner.row("Invalidate", runtime::AsyncSystem(rp_inv, n), n, mem,
                 verify::SymmetryMode::Off, tier);

  // The Table-3 wall rows: configurations the seed build leaves Unfinished
  // at these budgets, finished by compaction (and spill, when available).
  for (const auto& tier : tiers)
    runner.row("Migratory", runtime::AsyncSystem(rp_mig, 5), 5, 32u << 20,
               verify::SymmetryMode::Off, tier);
  for (const auto& tier : tiers)
    runner.row("Invalidate", runtime::AsyncSystem(rp_inv, 5), 5, 16u << 20,
               verify::SymmetryMode::Canonical, tier);

  runner.table.print(std::cout);
  std::printf(
      "\nreading: at 64 MB full storage walls at migratory N=5 / invalidate "
      "N=4;\nhash compaction clears both (omission probability reported in "
      "--json),\n--spill DIR finishes them with full vectors by paging "
      "pools to disk,\nand --external DIR moves the visited set itself to "
      "disk — exact counts\nat budgets where even the spill tier's tables "
      "no longer fit.\n");
  if (!json_path.empty() && !runner.json.write(json_path)) return 1;
  return 0;
}
