# Empty dependencies file for bench_msg_efficiency.
# This may be replaced when dependencies are built.
