file(REMOVE_RECURSE
  "../bench/bench_msg_efficiency"
  "../bench/bench_msg_efficiency.pdb"
  "CMakeFiles/bench_msg_efficiency.dir/bench_msg_efficiency.cpp.o"
  "CMakeFiles/bench_msg_efficiency.dir/bench_msg_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msg_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
