file(REMOVE_RECURSE
  "../bench/bench_buffer_fairness"
  "../bench/bench_buffer_fairness.pdb"
  "CMakeFiles/bench_buffer_fairness.dir/bench_buffer_fairness.cpp.o"
  "CMakeFiles/bench_buffer_fairness.dir/bench_buffer_fairness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
