file(REMOVE_RECURSE
  "../bench/bench_soundness"
  "../bench/bench_soundness.pdb"
  "CMakeFiles/bench_soundness.dir/bench_soundness.cpp.o"
  "CMakeFiles/bench_soundness.dir/bench_soundness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
