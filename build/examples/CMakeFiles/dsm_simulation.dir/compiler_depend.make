# Empty compiler generated dependencies file for dsm_simulation.
# This may be replaced when dependencies are built.
