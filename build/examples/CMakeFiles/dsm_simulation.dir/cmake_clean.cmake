file(REMOVE_RECURSE
  "CMakeFiles/dsm_simulation.dir/dsm_simulation.cpp.o"
  "CMakeFiles/dsm_simulation.dir/dsm_simulation.cpp.o.d"
  "dsm_simulation"
  "dsm_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
