file(REMOVE_RECURSE
  "CMakeFiles/lock_server.dir/lock_server.cpp.o"
  "CMakeFiles/lock_server.dir/lock_server.cpp.o.d"
  "lock_server"
  "lock_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
