# Empty dependencies file for lock_server.
# This may be replaced when dependencies are built.
