# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_sem[1]_include.cmake")
include("/root/repo/build/tests/test_refine[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_dsl[1]_include.cmake")
include("/root/repo/build/tests/test_progress[1]_include.cmake")
include("/root/repo/build/tests/test_protocols[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_tables[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_bitstate[1]_include.cmake")
