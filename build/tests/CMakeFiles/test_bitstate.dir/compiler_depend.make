# Empty compiler generated dependencies file for test_bitstate.
# This may be replaced when dependencies are built.
