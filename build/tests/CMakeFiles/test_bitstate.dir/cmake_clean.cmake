file(REMOVE_RECURSE
  "CMakeFiles/test_bitstate.dir/test_bitstate.cpp.o"
  "CMakeFiles/test_bitstate.dir/test_bitstate.cpp.o.d"
  "test_bitstate"
  "test_bitstate.pdb"
  "test_bitstate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
