file(REMOVE_RECURSE
  "CMakeFiles/ccref_ir.dir/builder.cpp.o"
  "CMakeFiles/ccref_ir.dir/builder.cpp.o.d"
  "CMakeFiles/ccref_ir.dir/expr.cpp.o"
  "CMakeFiles/ccref_ir.dir/expr.cpp.o.d"
  "CMakeFiles/ccref_ir.dir/print.cpp.o"
  "CMakeFiles/ccref_ir.dir/print.cpp.o.d"
  "CMakeFiles/ccref_ir.dir/process.cpp.o"
  "CMakeFiles/ccref_ir.dir/process.cpp.o.d"
  "CMakeFiles/ccref_ir.dir/stmt.cpp.o"
  "CMakeFiles/ccref_ir.dir/stmt.cpp.o.d"
  "CMakeFiles/ccref_ir.dir/validate.cpp.o"
  "CMakeFiles/ccref_ir.dir/validate.cpp.o.d"
  "libccref_ir.a"
  "libccref_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
