# Empty compiler generated dependencies file for ccref_ir.
# This may be replaced when dependencies are built.
