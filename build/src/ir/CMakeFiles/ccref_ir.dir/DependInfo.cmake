
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/ccref_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/ccref_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/ir/CMakeFiles/ccref_ir.dir/expr.cpp.o" "gcc" "src/ir/CMakeFiles/ccref_ir.dir/expr.cpp.o.d"
  "/root/repo/src/ir/print.cpp" "src/ir/CMakeFiles/ccref_ir.dir/print.cpp.o" "gcc" "src/ir/CMakeFiles/ccref_ir.dir/print.cpp.o.d"
  "/root/repo/src/ir/process.cpp" "src/ir/CMakeFiles/ccref_ir.dir/process.cpp.o" "gcc" "src/ir/CMakeFiles/ccref_ir.dir/process.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/ir/CMakeFiles/ccref_ir.dir/stmt.cpp.o" "gcc" "src/ir/CMakeFiles/ccref_ir.dir/stmt.cpp.o.d"
  "/root/repo/src/ir/validate.cpp" "src/ir/CMakeFiles/ccref_ir.dir/validate.cpp.o" "gcc" "src/ir/CMakeFiles/ccref_ir.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ccref_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
