file(REMOVE_RECURSE
  "libccref_ir.a"
)
