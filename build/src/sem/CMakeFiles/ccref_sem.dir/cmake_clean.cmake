file(REMOVE_RECURSE
  "CMakeFiles/ccref_sem.dir/rendezvous.cpp.o"
  "CMakeFiles/ccref_sem.dir/rendezvous.cpp.o.d"
  "libccref_sem.a"
  "libccref_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
