# Empty compiler generated dependencies file for ccref_sem.
# This may be replaced when dependencies are built.
