file(REMOVE_RECURSE
  "libccref_sem.a"
)
