# Empty dependencies file for ccref_sim.
# This may be replaced when dependencies are built.
