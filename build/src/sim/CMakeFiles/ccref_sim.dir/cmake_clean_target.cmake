file(REMOVE_RECURSE
  "libccref_sim.a"
)
