file(REMOVE_RECURSE
  "CMakeFiles/ccref_sim.dir/simulator.cpp.o"
  "CMakeFiles/ccref_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ccref_sim.dir/workload.cpp.o"
  "CMakeFiles/ccref_sim.dir/workload.cpp.o.d"
  "libccref_sim.a"
  "libccref_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
