file(REMOVE_RECURSE
  "CMakeFiles/ccref_support.dir/cli.cpp.o"
  "CMakeFiles/ccref_support.dir/cli.cpp.o.d"
  "CMakeFiles/ccref_support.dir/strings.cpp.o"
  "CMakeFiles/ccref_support.dir/strings.cpp.o.d"
  "CMakeFiles/ccref_support.dir/table.cpp.o"
  "CMakeFiles/ccref_support.dir/table.cpp.o.d"
  "libccref_support.a"
  "libccref_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
