# Empty dependencies file for ccref_support.
# This may be replaced when dependencies are built.
