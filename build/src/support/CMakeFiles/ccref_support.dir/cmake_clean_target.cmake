file(REMOVE_RECURSE
  "libccref_support.a"
)
