file(REMOVE_RECURSE
  "CMakeFiles/ccref_runtime.dir/async_system.cpp.o"
  "CMakeFiles/ccref_runtime.dir/async_system.cpp.o.d"
  "libccref_runtime.a"
  "libccref_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
