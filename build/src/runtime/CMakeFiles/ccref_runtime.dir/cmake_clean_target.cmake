file(REMOVE_RECURSE
  "libccref_runtime.a"
)
