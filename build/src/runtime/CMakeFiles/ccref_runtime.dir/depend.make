# Empty dependencies file for ccref_runtime.
# This may be replaced when dependencies are built.
