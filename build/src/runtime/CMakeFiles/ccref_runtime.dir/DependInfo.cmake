
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/async_system.cpp" "src/runtime/CMakeFiles/ccref_runtime.dir/async_system.cpp.o" "gcc" "src/runtime/CMakeFiles/ccref_runtime.dir/async_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/refine/CMakeFiles/ccref_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/sem/CMakeFiles/ccref_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ccref_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ccref_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
