# Empty dependencies file for ccref_dsl.
# This may be replaced when dependencies are built.
