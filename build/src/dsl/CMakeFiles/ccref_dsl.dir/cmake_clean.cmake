file(REMOVE_RECURSE
  "CMakeFiles/ccref_dsl.dir/lexer.cpp.o"
  "CMakeFiles/ccref_dsl.dir/lexer.cpp.o.d"
  "CMakeFiles/ccref_dsl.dir/parser.cpp.o"
  "CMakeFiles/ccref_dsl.dir/parser.cpp.o.d"
  "libccref_dsl.a"
  "libccref_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
