file(REMOVE_RECURSE
  "libccref_dsl.a"
)
