# Empty compiler generated dependencies file for ccref_protocols.
# This may be replaced when dependencies are built.
