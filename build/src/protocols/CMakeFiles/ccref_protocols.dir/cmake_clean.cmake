file(REMOVE_RECURSE
  "CMakeFiles/ccref_protocols.dir/invalidate.cpp.o"
  "CMakeFiles/ccref_protocols.dir/invalidate.cpp.o.d"
  "CMakeFiles/ccref_protocols.dir/lockserver.cpp.o"
  "CMakeFiles/ccref_protocols.dir/lockserver.cpp.o.d"
  "CMakeFiles/ccref_protocols.dir/migratory.cpp.o"
  "CMakeFiles/ccref_protocols.dir/migratory.cpp.o.d"
  "CMakeFiles/ccref_protocols.dir/writeupdate.cpp.o"
  "CMakeFiles/ccref_protocols.dir/writeupdate.cpp.o.d"
  "libccref_protocols.a"
  "libccref_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
