file(REMOVE_RECURSE
  "libccref_protocols.a"
)
