# Empty compiler generated dependencies file for ccref_refine.
# This may be replaced when dependencies are built.
