file(REMOVE_RECURSE
  "CMakeFiles/ccref_refine.dir/abstraction.cpp.o"
  "CMakeFiles/ccref_refine.dir/abstraction.cpp.o.d"
  "CMakeFiles/ccref_refine.dir/refined.cpp.o"
  "CMakeFiles/ccref_refine.dir/refined.cpp.o.d"
  "libccref_refine.a"
  "libccref_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
