file(REMOVE_RECURSE
  "libccref_refine.a"
)
