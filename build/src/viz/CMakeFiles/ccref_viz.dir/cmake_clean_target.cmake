file(REMOVE_RECURSE
  "libccref_viz.a"
)
