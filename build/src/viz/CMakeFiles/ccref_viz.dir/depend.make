# Empty dependencies file for ccref_viz.
# This may be replaced when dependencies are built.
