file(REMOVE_RECURSE
  "CMakeFiles/ccref_viz.dir/dot.cpp.o"
  "CMakeFiles/ccref_viz.dir/dot.cpp.o.d"
  "libccref_viz.a"
  "libccref_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccref_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
