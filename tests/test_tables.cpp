// Row-by-row scenario tests for the paper's Table 1 (remote rules) and
// Table 2 (home rules). Each test constructs the exact situation a row
// describes and asserts that precisely that rule fires, with the effects
// the table specifies. States are built by mutating AsyncSystem::initial().
#include <gtest/gtest.h>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"

namespace ccref {
namespace {

using refine::Options;
using runtime::AsyncState;
using runtime::AsyncSystem;
using runtime::Meta;
using runtime::Msg;
using sem::Label;

/// Migratory with fusion disabled: every rendezvous uses the generic
/// request/ack scheme, which is what Tables 1 and 2 describe.
struct Generic {
  ir::Protocol p = protocols::make_migratory();
  refine::RefinedProtocol rp;
  AsyncSystem sys;

  Generic()
      : rp(refine::refine(p, plain())), sys(rp, 3) {}

  static Options plain() {
    Options o;
    o.request_reply_fusion = false;
    return o;
  }

  ir::StateId rs(const char* name) const { return p.remote.find_state(name); }
  ir::StateId hs(const char* name) const { return p.home.find_state(name); }
  ir::MsgId msg(const char* name) const { return p.find_message(name); }

  Msg req_from(int src, const char* m,
               std::vector<ir::Value> pay = {}) const {
    Msg out;
    out.meta = Meta::Req;
    out.msg = msg(m);
    out.src = static_cast<std::uint8_t>(src);
    out.payload = std::move(pay);
    return out;
  }
  Msg home_req(const char* m, std::vector<ir::Value> pay = {}) const {
    Msg out;
    out.meta = Meta::Req;
    out.msg = msg(m);
    out.src = Msg::kHomeSrc;
    out.payload = std::move(pay);
    return out;
  }
  Msg ctrl(Meta meta, int src) const {
    Msg out;
    out.meta = meta;
    out.src = src < 0 ? Msg::kHomeSrc : static_cast<std::uint8_t>(src);
    return out;
  }

  /// The unique successor whose label contains `needle`.
  std::pair<AsyncState, Label> only(const AsyncState& s,
                                    const std::string& needle) const {
    auto succs = sys.successors(s);
    const std::pair<AsyncState, Label>* found = nullptr;
    int hits = 0;
    for (const auto& sl : succs)
      if (sl.second.text.find(needle) != std::string::npos) {
        found = &sl;
        ++hits;
      }
    EXPECT_EQ(hits, 1) << "needle '" << needle << "' in "
                       << sys.describe(s);
    if (!found) return {s, {}};
    return *found;
  }

  bool has(const AsyncState& s, const std::string& needle) const {
    for (const auto& [next, label] : sys.successors(s))
      if (label.text.find(needle) != std::string::npos) return true;
    return false;
  }
};

// ---- Table 1: remote node ------------------------------------------------------

TEST(Table1, C1_ActiveWithEmptyBufferSendsRequest) {
  Generic f;
  AsyncState s = f.sys.initial();  // r0 in I (active), empty buffer
  auto [next, label] = f.only(s, "r0 C1: request req");
  EXPECT_EQ(label.sent_req, 1);
  EXPECT_TRUE(next.remotes[0].transient);
  ASSERT_EQ(next.up[0].size(), 1u);
  EXPECT_EQ(next.up[0].front().meta, Meta::Req);
  EXPECT_EQ(next.up[0].front().msg, f.msg("req"));
}

TEST(Table1, C2_ActiveWithBufferedRequestDeletesIt) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.remotes[0].buffer = f.home_req("inv");  // stale request from the home
  auto [next, label] = f.only(s, "r0 C2: request req");
  EXPECT_FALSE(next.remotes[0].buffer.has_value())
      << "row C2: the buffered request must be deleted";
  EXPECT_TRUE(next.remotes[0].transient);
}

TEST(Table1, C3_PassiveMatchingRequestIsAcked) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.remotes[0].state = f.rs("W");
  s.remotes[0].buffer = f.req_from(-1, "gr", {0});
  s.remotes[0].buffer->src = Msg::kHomeSrc;
  auto [next, label] = f.only(s, "r0 C3: ack gr");
  EXPECT_EQ(label.sent_ack, 1);
  EXPECT_TRUE(label.completes_rendezvous);
  EXPECT_EQ(next.remotes[0].state, f.rs("V"));
  EXPECT_FALSE(next.remotes[0].buffer.has_value());
  ASSERT_EQ(next.up[0].size(), 1u);
  EXPECT_EQ(next.up[0].front().meta, Meta::Ack);
}

TEST(Table1, C3_PassiveNonMatchingRequestIsNacked) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.remotes[0].state = f.rs("W");         // W only accepts gr
  s.remotes[0].buffer = f.home_req("inv");
  auto [next, label] = f.only(s, "r0 C3: nack inv");
  EXPECT_EQ(label.sent_nack, 1);
  EXPECT_EQ(next.remotes[0].state, f.rs("W")) << "continues to wait";
  EXPECT_FALSE(next.remotes[0].buffer.has_value());
}

TEST(Table1, T1_AckCompletesTheRendezvous) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.remotes[0].state = f.rs("I");
  s.remotes[0].transient = true;  // sent req, awaiting response
  s.down[0].push(f.ctrl(Meta::Ack, -1));
  auto [next, label] = f.only(s, "r0 T1: ack completes req");
  EXPECT_FALSE(next.remotes[0].transient);
  EXPECT_EQ(next.remotes[0].state, f.rs("W"));
}

TEST(Table1, T2_NackReturnsToCommunicationStateAndRetries) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.remotes[0].state = f.rs("I");
  s.remotes[0].transient = true;
  s.down[0].push(f.ctrl(Meta::Nack, -1));
  auto [next, label] = f.only(s, "r0 T2: nack");
  EXPECT_FALSE(next.remotes[0].transient);
  EXPECT_EQ(next.remotes[0].state, f.rs("I"));
  // Retransmission is now enabled again.
  EXPECT_TRUE(f.has(next, "r0 C1: request req"));
}

TEST(Table1, T3_RequestDuringTransientIsIgnored) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.remotes[0].state = f.rs("I");
  s.remotes[0].transient = true;
  s.down[0].push(f.home_req("inv"));
  auto [next, label] = f.only(s, "r0 T3: ignore inv");
  EXPECT_TRUE(next.remotes[0].transient) << "still waiting for ack/nack";
  EXPECT_TRUE(next.down[0].empty()) << "the request is deleted";
  EXPECT_FALSE(next.remotes[0].buffer.has_value());
  EXPECT_TRUE(next.up[0].empty()) << "no ack/nack is ever generated (R3)";
}

// ---- Table 2: home node --------------------------------------------------------

TEST(Table2, C1_SatisfyingBufferedRequestIsAcked) {
  Generic f;
  AsyncState s = f.sys.initial();  // home in F, accepts req from any
  s.home.buffer.push_back(f.req_from(1, "req"));
  auto [next, label] = f.only(s, "h C1: ack req from r1");
  EXPECT_EQ(label.sent_ack, 1);
  EXPECT_TRUE(label.completes_rendezvous);
  EXPECT_EQ(next.home.state, f.hs("GRANT"));
  EXPECT_TRUE(next.home.buffer.empty());
  EXPECT_EQ(next.home.store.get(f.p.home.find_var("j")), 1u)
      << "generalized input binds the sender";
}

TEST(Table2, C2_InitiatesRendezvousAndEntersTransient) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.home.state = f.hs("I1");  // wants to send inv to the owner
  s.home.store.set(f.p.home.find_var("o"), 2);
  auto [next, label] = f.only(s, "h C2: request inv -> r2");
  EXPECT_EQ(label.sent_req, 1);
  EXPECT_TRUE(next.home.transient);
  EXPECT_EQ(next.home.t_target, 2);
  ASSERT_EQ(next.down[2].size(), 1u);
  EXPECT_EQ(next.down[2].front().msg, f.msg("inv"));
}

TEST(Table2, C2_ConditionA_BlockedWhileC1Possible) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.home.state = f.hs("I1");
  s.home.store.set(f.p.home.find_var("o"), 2);
  // A buffered LR from the owner satisfies I1's guard: C2 must not fire.
  s.home.buffer.push_back(f.req_from(2, "LR", {0}));
  EXPECT_FALSE(f.has(s, "h C2")) << "condition (a) violated";
  EXPECT_TRUE(f.has(s, "h C1: ack LR from r2"));
}

TEST(Table2, C2_ConditionC_SkipsTargetWithPendingRequest) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.home.state = f.hs("I1");
  s.home.store.set(f.p.home.find_var("o"), 2);
  // The owner's own req is pending (it cannot satisfy our inv): wasteful to
  // send. (A req can't complete in I1, so condition (a) is met.)
  s.home.buffer.push_back(f.req_from(2, "req"));
  EXPECT_FALSE(f.has(s, "h C2: request inv -> r2"))
      << "condition (c) violated";
}

TEST(Table2, C2_FullBufferEvictsAVictimIntoAckBuffer) {
  Generic f;  // k = 2
  AsyncState s = f.sys.initial();
  s.home.state = f.hs("I1");
  s.home.store.set(f.p.home.find_var("o"), 0);
  // Two reqs fill the buffer; neither satisfies I1 (which wants LR/inv).
  s.home.buffer.push_back(f.req_from(1, "req"));
  s.home.buffer.push_back(f.req_from(2, "req"));
  auto [next, label] = f.only(s, "h C2: request inv -> r0");
  EXPECT_EQ(label.sent_nack, 1) << "one buffered request must be nacked to "
                                   "free the ack buffer";
  EXPECT_EQ(label.sent_req, 1);
  EXPECT_EQ(next.home.buffer.size(), 1u);
}

TEST(Table2, T1_AckCompletesHomeRendezvous) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.home.state = f.hs("GRANT");
  s.home.store.set(f.p.home.find_var("j"), 1);
  s.home.transient = true;
  s.home.t_guard = 0;  // gr
  s.home.t_target = 1;
  s.up[1].push(f.ctrl(Meta::Ack, 1));
  auto [next, label] = f.only(s, "h T1: ack from r1 completes gr");
  EXPECT_FALSE(next.home.transient);
  EXPECT_EQ(next.home.state, f.hs("E"));
  EXPECT_EQ(next.home.store.get(f.p.home.find_var("o")), 1u)
      << "the output action runs at completion";
}

TEST(Table2, T2_NackReturnsToCommunicationState) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.home.state = f.hs("GRANT");
  s.home.store.set(f.p.home.find_var("j"), 1);
  s.home.transient = true;
  s.home.t_guard = 0;
  s.home.t_target = 1;
  s.up[1].push(f.ctrl(Meta::Nack, 1));
  auto [next, label] = f.only(s, "h T2: nack from r1");
  EXPECT_FALSE(next.home.transient);
  EXPECT_EQ(next.home.state, f.hs("GRANT"));
  EXPECT_EQ(next.home.store.get(f.p.home.find_var("o")), ir::kNoNode)
      << "the output action must NOT have run";
}

TEST(Table2, T3_RequestFromPendingTargetIsImplicitNack) {
  Generic f;
  AsyncState s = f.sys.initial();
  s.home.state = f.hs("I1");
  s.home.store.set(f.p.home.find_var("o"), 0);
  s.home.transient = true;  // inv sent to r0
  s.home.t_guard = 0;
  s.home.t_target = 0;
  s.up[0].push(f.req_from(0, "LR", {0}));  // r0 evicted concurrently
  auto [next, label] = f.only(s, "h T3: implicit nack; buffered LR");
  EXPECT_FALSE(next.home.transient) << "back to the communication state";
  ASSERT_EQ(next.home.buffer.size(), 1u);
  EXPECT_EQ(next.home.buffer[0].msg, f.msg("LR"));
  // The buffered LR now completes via C1.
  EXPECT_TRUE(f.has(next, "h C1: ack LR from r0"));
}

TEST(Table2, T4_RequestBufferedWhenSpaceAmple) {
  Generic f;
  Options o = Generic::plain();
  o.home_buffer_capacity = 4;  // free > 2 even with the ack reservation
  auto rp = refine::refine(f.p, o);
  AsyncSystem sys(rp, 3);
  AsyncState s = sys.initial();
  s.home.state = f.hs("I1");
  s.home.store.set(f.p.home.find_var("o"), 0);
  s.home.transient = true;
  s.home.t_guard = 0;
  s.home.t_target = 0;
  s.up[1].push(f.req_from(1, "req"));
  bool buffered = false;
  for (const auto& [next, label] : sys.successors(s))
    if (label.text.find("h buffer: req from r1") != std::string::npos) {
      buffered = true;
      EXPECT_EQ(next.home.buffer.size(), 1u);
      EXPECT_TRUE(next.home.transient) << "T4 does not leave the transient";
    }
  EXPECT_TRUE(buffered);
}

TEST(Table2, T5_LastSlotReservedForSatisfyingRequests) {
  // Uses the invalidate protocol: its INV state accepts drop from anyone,
  // so a drop satisfies the progress buffer while a reqS does not.
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p);  // k = 2
  AsyncSystem sys(rp, 3);
  AsyncState s = sys.initial();
  s.home.state = p.home.find_state("INV");
  NodeSet cs;
  cs.add(0);
  s.home.store.set(p.home.find_var("cs"), cs.bits());
  s.home.transient = true;  // inv outstanding to r0
  s.home.t_guard = 0;
  s.home.t_target = 0;
  s.remotes[0].state = p.remote.find_state("S");

  // avail = k - used - ackbuf = 2 - 0 - 1 = 1: only satisfying requests.
  {
    AsyncState t = s;
    Msg drop;
    drop.meta = Meta::Req;
    drop.msg = p.find_message("drop");
    drop.src = 1;
    t.up[1].push(drop);
    bool buffered = false, nacked = false;
    for (const auto& [next, label] : sys.successors(t)) {
      if (label.text.find("h buffer: drop from r1") != std::string::npos)
        buffered = true;
      if (label.text.find("h T6: nack drop from r1") != std::string::npos)
        nacked = true;
    }
    EXPECT_TRUE(buffered) << "drop satisfies INV's guard: progress buffer";
    EXPECT_FALSE(nacked);
  }
  {
    AsyncState t = s;
    Msg reqs;
    reqs.meta = Meta::Req;
    reqs.msg = p.find_message("reqS");
    reqs.src = 1;
    t.up[1].push(reqs);
    bool buffered = false, nacked = false;
    for (const auto& [next, label] : sys.successors(t)) {
      if (label.text.find("h buffer: reqS from r1") != std::string::npos)
        buffered = true;
      if (label.text.find("h T6: nack reqS from r1") != std::string::npos)
        nacked = true;
    }
    EXPECT_FALSE(buffered) << "reqS cannot complete in INV: not admitted";
    EXPECT_TRUE(nacked) << "row T6";
  }
}

TEST(Table2, T6_RequestNackedWhenNoSpace) {
  Generic f;  // k = 2
  AsyncState s = f.sys.initial();
  s.home.state = f.hs("I1");
  s.home.store.set(f.p.home.find_var("o"), 0);
  s.home.transient = true;
  s.home.t_guard = 0;
  s.home.t_target = 0;
  s.home.buffer.push_back(f.req_from(2, "req"));  // one slot taken
  // avail = 2 - 1 - 1 = 0: everything from r1 bounces.
  s.up[1].push(f.req_from(1, "req"));
  auto [next, label] = f.only(s, "h T6: nack req from r1");
  EXPECT_EQ(label.sent_nack, 1);
  EXPECT_EQ(next.home.buffer.size(), 1u);
  ASSERT_EQ(next.down[1].size(), 1u);
  EXPECT_EQ(next.down[1].front().meta, Meta::Nack);
}

// ---- §3.3 fusion behaviours -----------------------------------------------------

struct Fused {
  ir::Protocol p = protocols::make_migratory();
  refine::RefinedProtocol rp = refine::refine(p);
  AsyncSystem sys{rp, 3};
};

TEST(Fusion, HomeConsumesFusedRequestWithoutAck) {
  Fused f;
  AsyncState s = f.sys.initial();
  Msg req;
  req.meta = Meta::Req;
  req.msg = f.p.find_message("req");
  req.src = 1;
  s.home.buffer.push_back(req);
  for (const auto& [next, label] : f.sys.successors(s)) {
    if (label.text.find("h C1: consume req from r1") == std::string::npos)
      continue;
    EXPECT_EQ(label.sent_ack, 0) << "§3.3: the later reply is the ack";
    EXPECT_TRUE(label.completes_rendezvous);
    EXPECT_EQ(next.home.state, f.p.home.find_state("GRANT"));
    return;
  }
  FAIL() << "fused consume not found";
}

TEST(Fusion, HomeRepliesFireAndForget) {
  Fused f;
  AsyncState s = f.sys.initial();
  s.home.state = f.p.home.find_state("GRANT");
  s.home.store.set(f.p.home.find_var("j"), 1);
  s.remotes[1].state = f.p.remote.find_state("I");
  s.remotes[1].transient = true;  // r1 is waiting for the grant
  bool found = false;
  for (const auto& [next, label] : f.sys.successors(s)) {
    if (label.text.find("h C2: repl gr -> r1") == std::string::npos)
      continue;
    found = true;
    EXPECT_EQ(label.sent_repl, 1);
    EXPECT_FALSE(next.home.transient) << "no ack expected for a reply";
    EXPECT_EQ(next.home.state, f.p.home.find_state("E"));
    ASSERT_EQ(next.down[1].size(), 1u);
    EXPECT_EQ(next.down[1].front().meta, Meta::Repl);
  }
  EXPECT_TRUE(found);
}

TEST(Fusion, RemoteReplCompletesBothRendezvous) {
  Fused f;
  AsyncState s = f.sys.initial();
  s.remotes[1].state = f.p.remote.find_state("I");
  s.remotes[1].transient = true;
  Msg repl;
  repl.meta = Meta::Repl;
  repl.msg = f.p.find_message("gr");
  repl.src = Msg::kHomeSrc;
  repl.payload = {0};
  s.down[1].push(repl);
  bool found = false;
  for (const auto& [next, label] : f.sys.successors(s)) {
    if (label.text.find("r1 T1: repl gr") == std::string::npos) continue;
    found = true;
    EXPECT_EQ(next.remotes[1].state, f.p.remote.find_state("V"))
        << "lands past the wait state in one step";
    EXPECT_FALSE(next.remotes[1].transient);
  }
  EXPECT_TRUE(found);
}

TEST(Fusion, RemoteAnswersFusedInvWithReply) {
  Fused f;
  AsyncState s = f.sys.initial();
  s.remotes[0].state = f.p.remote.find_state("V");
  Msg inv;
  inv.meta = Meta::Req;
  inv.msg = f.p.find_message("inv");
  inv.src = Msg::kHomeSrc;
  s.remotes[0].buffer = inv;
  bool found = false;
  for (const auto& [next, label] : f.sys.successors(s)) {
    if (label.text.find("r0 C3: inv answered with repl ID") ==
        std::string::npos)
      continue;
    found = true;
    EXPECT_EQ(label.sent_repl, 1);
    EXPECT_EQ(label.sent_ack, 0);
    EXPECT_EQ(next.remotes[0].state, f.p.remote.find_state("I"))
        << "passes straight through D1";
    ASSERT_EQ(next.up[0].size(), 1u);
    EXPECT_EQ(next.up[0].front().meta, Meta::Repl);
    EXPECT_EQ(next.up[0].front().msg, f.p.find_message("ID"));
  }
  EXPECT_TRUE(found);
}

// ---- elide-ack (hand design) -----------------------------------------------------

TEST(ElideAck, SenderCommitsAtSendTime) {
  auto p = protocols::make_migratory();
  Options o;
  o.elide_ack = {"LR"};
  auto rp = refine::refine(p, o);
  AsyncSystem sys(rp, 2);
  AsyncState s = sys.initial();
  s.remotes[0].state = p.remote.find_state("A2");
  bool found = false;
  for (const auto& [next, label] : sys.successors(s)) {
    if (label.text.find("r0: send LR (no ack)") == std::string::npos)
      continue;
    found = true;
    EXPECT_TRUE(label.completes_rendezvous);
    EXPECT_EQ(next.remotes[0].state, p.remote.find_state("I"))
        << "no transient: the sender moved on";
    EXPECT_FALSE(next.remotes[0].transient);
  }
  EXPECT_TRUE(found);
}

TEST(ElideAck, HomeAlwaysAdmitsElidedMessages) {
  auto p = protocols::make_migratory();
  Options o;
  o.elide_ack = {"LR"};
  auto rp = refine::refine(p, o);
  AsyncSystem sys(rp, 3);
  AsyncState s = sys.initial();
  s.home.state = p.home.find_state("E");
  s.home.store.set(p.home.find_var("o"), 0);
  // Buffer already full of reqs.
  for (int src : {1, 2}) {
    Msg m;
    m.meta = Meta::Req;
    m.msg = p.find_message("req");
    m.src = static_cast<std::uint8_t>(src);
    s.home.buffer.push_back(m);
  }
  Msg lr;
  lr.meta = Meta::Req;
  lr.msg = p.find_message("LR");
  lr.src = 0;
  lr.payload = {0};
  s.up[0].push(lr);
  bool buffered = false;
  for (const auto& [next, label] : sys.successors(s))
    if (label.text.find("h buffer: LR from r0") != std::string::npos) {
      buffered = true;
      EXPECT_EQ(next.home.buffer.size(), 3u) << "admitted beyond k";
    }
  EXPECT_TRUE(buffered)
      << "the hand design commits to always accepting writebacks";
}

}  // namespace
}  // namespace ccref
