// mmap-backed spill tier (support/spill.hpp): SpillArena lifecycle and
// caps, ChunkedBytePool chunk routing past the RAM watermark, the
// budget == memory_used honesty invariant when pools straddle RAM and
// disk, and the end-to-end payoff — a checker run that the RAM budget
// alone leaves Unfinished completes once the pools may spill.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "support/atomic_table.hpp"
#include "support/spill.hpp"
#include "verify/checker.hpp"
#include "verify/collapse.hpp"
#include "verify/par_checker.hpp"
#include "verify/state_set.hpp"

namespace ccref {
namespace {

namespace fs = std::filesystem;
using runtime::AsyncSystem;
using verify::CollapsedStateSet;
using verify::CompressionMode;
using verify::MemoryBudget;
using verify::StateSet;
using verify::StorageOptions;

/// Fresh per-test directory under the gtest temp root; removed on scope
/// exit so failed runs don't accrete arenas.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::path(::testing::TempDir()) /
           ("ccref-spill-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::vector<std::byte> state_bytes(std::uint64_t id, std::size_t len = 32) {
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((id >> ((i % 8) * 8)) & 0xff);
  return b;
}

// ---- SpillArena ------------------------------------------------------------

TEST(SpillArena, MapWriteReadUnmap) {
  TempDir dir;
  SpillArena arena(dir.path.string());
  ASSERT_TRUE(arena.ok());
  std::byte* p = arena.map_chunk(64 << 10);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.spill_bytes(), std::size_t{64} << 10);
  // Fresh chunks are zero-filled; writes persist across a cold hint.
  for (std::size_t i = 0; i < (64u << 10); ++i)
    ASSERT_EQ(p[i], std::byte{0}) << "offset " << i;
  for (std::size_t i = 0; i < (64u << 10); ++i)
    p[i] = static_cast<std::byte>(i * 7);
  arena.note_cold(p, 64 << 10);
  for (std::size_t i = 0; i < (64u << 10); ++i)
    ASSERT_EQ(p[i], static_cast<std::byte>(i * 7)) << "offset " << i;
  arena.unmap_chunk(p, 64 << 10);
  EXPECT_EQ(arena.spill_bytes(), 0u);
}

TEST(SpillArena, FilesAreUnlinkedImmediately) {
  // Each chunk file is unlinked right after mmap: a crashed run leaks no
  // disk blocks, and the directory stays empty while chunks are live.
  TempDir dir;
  SpillArena arena(dir.path.string());
  ASSERT_TRUE(arena.ok());
  std::byte* p = arena.map_chunk(4 << 10);
  ASSERT_NE(p, nullptr);
  std::size_t entries = 0;
  for ([[maybe_unused]] auto& e : fs::directory_iterator(dir.path)) ++entries;
  EXPECT_EQ(entries, 0u);
  arena.unmap_chunk(p, 4 << 10);
}

TEST(SpillArena, CapRefusesExcess) {
  TempDir dir;
  SpillArena arena(dir.path.string(), /*max_bytes=*/8 << 10);
  ASSERT_TRUE(arena.ok());
  std::byte* a = arena.map_chunk(4 << 10);
  ASSERT_NE(a, nullptr);
  // The second map would cross the cap: refused, accounting untouched.
  EXPECT_EQ(arena.map_chunk(8 << 10), nullptr);
  EXPECT_EQ(arena.spill_bytes(), std::size_t{4} << 10);
  arena.unmap_chunk(a, 4 << 10);
  // Released bytes come back under the cap.
  std::byte* b = arena.map_chunk(8 << 10);
  EXPECT_NE(b, nullptr);
  if (b != nullptr) arena.unmap_chunk(b, 8 << 10);
}

TEST(SpillArena, DeadWhenDirectoryImpossible) {
  // A path through /dev/null can never become a directory; the arena must
  // come up dead and refuse every map instead of crashing.
  SpillArena arena("/dev/null/ccref-spill");
  EXPECT_FALSE(arena.ok());
  EXPECT_EQ(arena.map_chunk(4 << 10), nullptr);
  EXPECT_EQ(arena.spill_bytes(), 0u);
}

// ---- ChunkedBytePool routing ----------------------------------------------

TEST(ChunkedBytePoolSpill, RamFirstThenSpillPastWatermark) {
  TempDir dir;
  SpillArena arena(dir.path.string());
  ASSERT_TRUE(arena.ok());
  MemoryBudget budget(1 << 20);
  // Watermark at 8 KB: the first chunks charge RAM, later ones spill even
  // though the budget still has headroom.
  ChunkedBytePool<MemoryBudget> pool(budget, 4096, {&arena, 8 << 10});
  std::vector<std::uint32_t> offsets;
  for (int i = 0; i < 64; ++i) {
    auto off = pool.alloc(1024);
    ASSERT_NE(off, ChunkedBytePool<MemoryBudget>::kNpos);
    std::memset(pool.data(off), i, 1024);
    offsets.push_back(off);
  }
  EXPECT_GT(pool.charged(), 0u);
  EXPECT_LE(pool.charged(), budget.used());
  EXPECT_GT(pool.spill_bytes(), 0u);
  EXPECT_EQ(pool.spill_bytes(), arena.spill_bytes());
  // Spilled bytes never hit the RAM budget.
  EXPECT_LE(budget.used(), std::size_t{8} << 10 << 1);
  for (int i = 0; i < 64; ++i) {
    const std::byte* p = pool.data(offsets[static_cast<std::size_t>(i)]);
    for (int j = 0; j < 1024; ++j)
      ASSERT_EQ(p[j], static_cast<std::byte>(i)) << "alloc " << i;
  }
}

TEST(ChunkedBytePoolSpill, FallsBackToRamWhenArenaExhausted) {
  TempDir dir;
  // Arena holds exactly one 4 KB chunk; watermark 0 sends everything to
  // spill first, so chunk 0 spills and chunk 1 must fall back to RAM.
  SpillArena arena(dir.path.string(), 4 << 10);
  ASSERT_TRUE(arena.ok());
  MemoryBudget budget(1 << 20);
  ChunkedBytePool<MemoryBudget> pool(budget, 4096, {&arena, 0});
  for (int i = 0; i < 12; ++i)
    ASSERT_NE(pool.alloc(1024), ChunkedBytePool<MemoryBudget>::kNpos);
  EXPECT_EQ(pool.spill_bytes(), std::size_t{4} << 10);
  EXPECT_GT(pool.charged(), 0u);
  EXPECT_EQ(budget.used(), pool.charged());
}

TEST(ChunkedBytePoolSpill, ExhaustionWhenDiskAndRamRefuse) {
  TempDir dir;
  SpillArena arena(dir.path.string(), 4 << 10);
  ASSERT_TRUE(arena.ok());
  // RAM budget covers one chunk too; after disk + RAM are spent the pool
  // reports exhaustion with books that still balance.
  MemoryBudget budget(4 << 10);
  ChunkedBytePool<MemoryBudget> pool(budget, 4096, {&arena, 0});
  std::size_t accepted = 0;
  for (;; ++accepted) {
    if (pool.alloc(512) == ChunkedBytePool<MemoryBudget>::kNpos) break;
    ASSERT_LT(accepted, 10000u);
  }
  // Chunk 0 (4 KB) spills and fills; chunk 1 doubles to 8 KB, which both
  // the arena cap and the RAM budget refuse.
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(pool.charged() + pool.spill_bytes(),
            pool.bytes_allocated() + pool.bytes_waste());
  EXPECT_LE(budget.used(), budget.limit());
}

TEST(ChunkedBytePoolSpill, WasteStaysHonestThroughConcurrentExhaustion) {
  // Several threads bump-allocate until both tiers refuse; mid-CAS losers
  // and skipped chunk tails may strand bytes, but held == handed-out +
  // waste must balance exactly, and the RAM budget must equal the pool's
  // RAM charge (nothing leaks, nothing is double-charged).
  TempDir dir;
  SpillArena arena(dir.path.string(), 16 << 10);
  ASSERT_TRUE(arena.ok());
  MemoryBudget budget(16 << 10);
  ChunkedBytePool<MemoryBudget> pool(budget, 4096, {&arena, 8 << 10});
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&pool, t] {
      // Mixed sizes force chunk-tail skips (records never straddle).
      for (int i = 0; i < 4000; ++i)
        if (pool.alloc(static_cast<std::size_t>(64 + ((t * 37 + i) % 5) *
                                                         500)) ==
            ChunkedBytePool<MemoryBudget>::kNpos)
          break;
    });
  for (auto& w : workers) w.join();
  const std::size_t held = pool.charged() + pool.spill_bytes();
  EXPECT_EQ(held, pool.bytes_allocated() + pool.bytes_waste());
  EXPECT_EQ(budget.used(), pool.charged());
  EXPECT_LE(budget.used(), budget.limit());
}

// ---- visited sets over spilling pools --------------------------------------

TEST(StateSetSpill, StatesRoundTripAcrossTiers) {
  TempDir dir;
  SpillArena arena(dir.path.string());
  ASSERT_TRUE(arena.ok());
  // Watermark low enough that most payload chunks land on disk while the
  // entry index stays in RAM.
  StateSet set(256 << 10, 0, {&arena, 16 << 10});
  std::vector<std::uint32_t> indices;
  for (std::uint64_t id = 0; id < 4000; ++id) {
    auto r = set.insert(state_bytes(id));
    ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted) << "id " << id;
    indices.push_back(r.index);
  }
  EXPECT_GT(set.spill_bytes(), 0u);
  EXPECT_EQ(set.memory_used(), set.budget().used());
  for (std::uint64_t id = 0; id < 4000; ++id) {
    auto bytes = state_bytes(id);
    auto r = set.insert(bytes);
    ASSERT_EQ(r.outcome, StateSet::Outcome::AlreadyPresent);
    ASSERT_EQ(r.index, indices[id]);
    auto stored = set.at(indices[id]);
    ASSERT_TRUE(std::equal(bytes.begin(), bytes.end(), stored.begin(),
                           stored.end()));
  }
}

TEST(CollapsedSetSpill, DictionariesSpillAndBooksBalance) {
  TempDir dir;
  SpillArena arena(dir.path.string());
  ASSERT_TRUE(arena.ok());
  StorageOptions st;
  st.compress = CompressionMode::Collapse;
  st.spill = {&arena, 8 << 10};
  // The budget mostly feeds the RAM-only entry tables (tuples plus three
  // dictionaries); the pools behind them overflow to the arena.
  CollapsedStateSet set(1 << 20, st);
  std::vector<ComponentMark> marks{{8, 0}, {16, 1}, {24, 2}};
  std::vector<std::uint32_t> indices;
  for (std::uint64_t id = 0; id < 3000; ++id) {
    auto r = set.insert(state_bytes(id), marks);
    ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted) << "id " << id;
    indices.push_back(r.index);
  }
  EXPECT_GT(set.spill_bytes(), 0u);
  EXPECT_EQ(set.memory_used(), set.budget().used());
  for (std::uint64_t id = 0; id < 3000; ++id) {
    auto bytes = state_bytes(id);
    auto stored = set.at(indices[id]);
    ASSERT_TRUE(std::equal(bytes.begin(), bytes.end(), stored.begin(),
                           stored.end()))
        << "id " << id;
  }
}

// ---- end to end: spill turns Unfinished into a verdict ---------------------

TEST(SpillEndToEnd, BreaksTheRamWallSequentialAndParallel) {
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 4);
  verify::CheckOptions<AsyncSystem> opts;
  opts.want_trace = false;
  opts.detect_deadlock = false;
  opts.memory_limit = 2u << 20;

  auto walled = verify::explore(sys, opts);
  ASSERT_EQ(walled.status, verify::Status::Unfinished)
      << "wall gone — shrink the limit so the test still bites";

  verify::CheckOptions<AsyncSystem> ref_opts = opts;
  ref_opts.memory_limit = 512u << 20;
  auto reference = verify::explore(sys, ref_opts);
  ASSERT_EQ(reference.status, verify::Status::Ok);

  TempDir dir;
  SpillArena arena(dir.path.string());
  ASSERT_TRUE(arena.ok());
  opts.spill = {&arena, opts.memory_limit / 2};
  auto spilled = verify::explore(sys, opts);
  EXPECT_EQ(spilled.status, verify::Status::Ok);
  EXPECT_EQ(spilled.states, reference.states);
  EXPECT_EQ(spilled.transitions, reference.transitions);
  EXPECT_GT(spilled.spill_bytes, 0u);
  EXPECT_LE(spilled.memory_bytes, opts.memory_limit);

  auto par = verify::par_explore(sys, opts, 4);
  EXPECT_EQ(par.status, verify::Status::Ok);
  EXPECT_EQ(par.states, reference.states);
  EXPECT_GT(par.spill_bytes, 0u);
}

TEST(SpillEndToEnd, DiskExhaustionReportsUnfinished) {
  // A spill cap small enough that disk runs out mid-search must surface as
  // an honest Unfinished, exactly like RAM exhaustion — never a crash or a
  // silently truncated Ok.
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 4);
  TempDir dir;
  SpillArena arena(dir.path.string(), /*max_bytes=*/64 << 10);
  ASSERT_TRUE(arena.ok());
  verify::CheckOptions<AsyncSystem> opts;
  opts.want_trace = false;
  opts.detect_deadlock = false;
  opts.memory_limit = 2u << 20;
  opts.spill = {&arena, opts.memory_limit / 2};
  auto r = verify::explore(sys, opts);
  EXPECT_EQ(r.status, verify::Status::Unfinished);
  EXPECT_LE(r.spill_bytes, std::size_t{64} << 10);
  EXPECT_LE(r.memory_bytes, opts.memory_limit);
}

}  // namespace
}  // namespace ccref
