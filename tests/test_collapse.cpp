// COLLAPSE state-vector compression (verify/collapse.hpp): index-tuple
// storage must be observationally identical to raw storage — same verdicts,
// same Ok-status state/transition counts, same counterexample traces — across
// engines, symmetry, POR, and the liveness/progress analyses, while the
// bytes actually pooled shrink on the asynchronous Table-3 configurations.
// Also pins the budget discipline: dictionaries charge the same MemoryBudget
// as the tuple pool, and exhaustion mid-insert (a component interned, the
// tuple refused) leaves every set consistent with its reservation.
#include <gtest/gtest.h>

#include "ltl/check.hpp"
#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"
#include "verify/collapse.hpp"
#include "verify/par_checker.hpp"
#include "verify/progress.hpp"
#include "verify/sharded_state_set.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;
using verify::CollapsedStateSet;
using verify::CompressionMode;
using verify::PorMode;
using verify::ShardedStateSet;
using verify::StateSet;
using verify::SymmetryMode;

// ---- unit: the set itself --------------------------------------------------

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> b;
  for (int v : vals) b.push_back(static_cast<std::byte>(v));
  return b;
}

TEST(CollapsedStateSet, OffModeIsPassthrough) {
  CollapsedStateSet set(1 << 20, CompressionMode::Off);
  auto s = bytes_of({1, 2, 3, 4});
  auto r = set.insert(s);
  ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted);
  EXPECT_EQ(set.insert(s).outcome, StateSet::Outcome::AlreadyPresent);
  auto stored = set.at(r.index);
  EXPECT_TRUE(std::equal(s.begin(), s.end(), stored.begin(), stored.end()));
  EXPECT_EQ(set.raw_bytes(), s.size());
  EXPECT_EQ(set.stored_bytes(), s.size());
}

TEST(CollapsedStateSet, MultiComponentRoundTrip) {
  CollapsedStateSet set(1 << 20, CompressionMode::Collapse);
  // Two components of class 0 and 1 plus an implicit trailing class-0 run.
  std::vector<ComponentMark> marks{{2, 0}, {5, 1}};
  std::vector<std::uint32_t> indices;
  std::vector<std::vector<std::byte>> states;
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b) {
      auto s = bytes_of({a, a + 1, b, b + 1, b + 2, 7});
      auto r = set.insert(s, marks);
      ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted);
      indices.push_back(r.index);
      states.push_back(std::move(s));
    }
  EXPECT_EQ(set.size(), 16u);
  // 16 states share 4 + 4 dictionary entries; the raw bytes exceed what is
  // stored even at this toy size once the inputs repeat enough.
  for (std::size_t i = 0; i < states.size(); ++i) {
    auto stored = set.at(indices[i]);
    EXPECT_TRUE(std::equal(states[i].begin(), states[i].end(), stored.begin(),
                           stored.end()))
        << "state " << i;
    auto dup = set.insert(states[i], marks);
    EXPECT_EQ(dup.outcome, StateSet::Outcome::AlreadyPresent);
    EXPECT_EQ(dup.index, indices[i]);
  }
}

TEST(CollapsedStateSet, EmptyMarksCollapseWholeState) {
  // No boundary emission: the whole encoding is one class-0 component.
  // Sound (ratio 1), and duplicate detection still works.
  CollapsedStateSet set(1 << 20, CompressionMode::Collapse);
  auto s = bytes_of({9, 8, 7});
  auto r = set.insert(s);
  ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted);
  EXPECT_EQ(set.insert(s).outcome, StateSet::Outcome::AlreadyPresent);
  auto stored = set.at(r.index);
  EXPECT_TRUE(std::equal(s.begin(), s.end(), stored.begin(), stored.end()));
}

std::vector<std::byte> wide_state(std::uint64_t id, std::size_t len = 32) {
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((id >> ((i % 8) * 8)) & 0xff);
  return b;
}

TEST(CollapsedStateSet, ExhaustionMidInsertLeavesSetConsistent) {
  // Tight budget: inserts eventually fail, possibly after interning some of
  // a state's components. The tuple set must never hold a partial tuple, the
  // budget must cover exactly what is held, and every accepted state must
  // still round-trip.
  CollapsedStateSet set(24 << 10, CompressionMode::Collapse);
  std::vector<ComponentMark> marks{{8, 0}, {16, 1}, {24, 2}};
  std::vector<std::uint64_t> accepted;
  std::uint64_t id = 0;
  for (;; ++id) {
    auto r = set.insert(wide_state(id), marks);
    if (r.outcome == StateSet::Outcome::Exhausted) break;
    ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted);
    ASSERT_EQ(r.index, accepted.size());
    accepted.push_back(id);
    ASSERT_LT(id, 100000u) << "limit never hit";
  }
  EXPECT_GT(accepted.size(), 50u);
  EXPECT_EQ(set.size(), accepted.size());
  EXPECT_LE(set.memory_used(), set.memory_limit());
  // Quiescent reservation alignment: the budget charges exactly the bytes
  // the tuple set and dictionaries hold (reconcile() ran after the rollback).
  EXPECT_EQ(set.budget().used(), set.memory_used());

  auto retry = set.insert(wide_state(id), marks);
  EXPECT_EQ(retry.outcome, StateSet::Outcome::Exhausted);

  for (std::size_t i = 0; i < accepted.size(); ++i) {
    auto s = wide_state(accepted[i]);
    auto r = set.insert(s, marks);
    ASSERT_EQ(r.outcome, StateSet::Outcome::AlreadyPresent);
    ASSERT_EQ(r.index, i);
    auto stored = set.at(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(
        std::equal(s.begin(), s.end(), stored.begin(), stored.end()));
  }
}

TEST(CollapsedStateSet, ShardedCollapseExhaustionConsistent) {
  // K compressed shards on one shared budget: after exhaustion every
  // accepted ref still resolves and the shared budget was never burst.
  ShardedStateSet set(48 << 10, 4, /*track_parents=*/false,
                      CompressionMode::Collapse);
  std::vector<ComponentMark> marks{{8, 0}, {16, 1}, {24, 2}};
  std::vector<std::pair<std::uint64_t, ShardedStateSet::Ref>> accepted;
  for (std::uint64_t id = 0;; ++id) {
    auto r = set.insert(wide_state(id), marks);
    if (r.outcome == ShardedStateSet::Outcome::Exhausted) break;
    ASSERT_EQ(r.outcome, ShardedStateSet::Outcome::Inserted);
    accepted.push_back({id, r.ref});
    ASSERT_LT(id, 100000u);
  }
  EXPECT_GT(accepted.size(), 50u);
  EXPECT_LE(set.memory_used(), set.memory_limit());
  EXPECT_EQ(set.size(), accepted.size());
  for (auto& [id, ref] : accepted) {
    auto s = wide_state(id);
    auto r = set.insert(s, marks);
    ASSERT_EQ(r.outcome, ShardedStateSet::Outcome::AlreadyPresent);
    ASSERT_EQ(r.ref, ref);
    auto stored = set.at(ref);
    ASSERT_TRUE(
        std::equal(s.begin(), s.end(), stored.begin(), stored.end()));
  }
}

// ---- agreement: compress x {engine, symmetry, por} on the protocols -------

template <class Sys>
verify::CheckResult check(const Sys& sys, CompressionMode compress,
                          PorMode por, SymmetryMode symmetry,
                          unsigned jobs = 1) {
  verify::CheckOptions<Sys> opts;
  opts.want_trace = false;
  opts.compress = compress;
  opts.por = por;
  opts.symmetry = symmetry;
  opts.memory_limit = 512u << 20;
  return jobs <= 1 ? verify::explore(sys, opts)
                   : verify::par_explore(sys, opts, jobs);
}

void expect_compress_agreement(const ir::Protocol& p, int n,
                               const char* what) {
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, n);
  for (unsigned jobs : {1u, 4u}) {
    for (auto sym : {SymmetryMode::Off, SymmetryMode::Canonical}) {
      for (auto por : {PorMode::Off, PorMode::Ample}) {
        auto off = check(sys, CompressionMode::Off, por, sym, jobs);
        auto col = check(sys, CompressionMode::Collapse, por, sym, jobs);
        ASSERT_EQ(off.status, verify::Status::Ok)
            << what << " jobs=" << jobs;
        EXPECT_EQ(col.status, off.status) << what << " jobs=" << jobs;
        if (jobs > 1 && por == PorMode::Ample) {
          // Parallel ample-set counts are scheduling-dependent (racing
          // inserts trigger conservative full expansions — see the C3 note
          // in par_checker.hpp), so runs only agree up to the unreduced
          // bound; test_por pins the same property.
          auto full = check(sys, CompressionMode::Off, PorMode::Off, sym,
                            jobs);
          EXPECT_LE(col.states, full.states) << what << " jobs=" << jobs;
          continue;
        }
        EXPECT_EQ(col.states, off.states) << what << " jobs=" << jobs;
        EXPECT_EQ(col.transitions, off.transitions)
            << what << " jobs=" << jobs;
        // Compression never inflates what the raw pool would have held.
        EXPECT_EQ(col.raw_pool_bytes, off.raw_pool_bytes)
            << what << " jobs=" << jobs;
      }
    }
  }
}

TEST(Collapse, AgreesMigratory) {
  expect_compress_agreement(protocols::make_migratory(), 3, "migratory");
}

TEST(Collapse, AgreesInvalidate) {
  expect_compress_agreement(protocols::make_invalidate(), 2, "invalidate");
}

TEST(Collapse, AgreesWriteUpdate) {
  expect_compress_agreement(protocols::make_write_update(), 2, "writeupdate");
}

TEST(Collapse, AgreesLockServer) {
  expect_compress_agreement(protocols::make_lock_server(), 3, "lockserver");
}

TEST(Collapse, AgreesOnRendezvousSemantics) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 4);
  auto off = check(sys, CompressionMode::Off, PorMode::Off, SymmetryMode::Off);
  auto col =
      check(sys, CompressionMode::Collapse, PorMode::Off, SymmetryMode::Off);
  EXPECT_EQ(col.status, off.status);
  EXPECT_EQ(col.states, off.states);
  EXPECT_EQ(col.transitions, off.transitions);
}

// ---- the point of the feature: the pool shrinks ----------------------------

TEST(Collapse, CompressesAsyncMigratory) {
  // The async migratory state at N=3 is dominated by repeated remote and
  // channel components; collapse must at least halve the stored bytes
  // (the Table-3 N=4 run clears 3x — see BENCH_compress.json).
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  auto off = check(sys, CompressionMode::Off, PorMode::Off, SymmetryMode::Off);
  auto col =
      check(sys, CompressionMode::Collapse, PorMode::Off, SymmetryMode::Off);
  ASSERT_EQ(off.status, verify::Status::Ok);
  ASSERT_EQ(col.status, verify::Status::Ok);
  EXPECT_EQ(col.raw_pool_bytes, off.pool_bytes)
      << "raw accounting must mirror the uncompressed pool";
  EXPECT_GE(off.pool_bytes, 2 * col.pool_bytes)
      << "collapse stored " << col.pool_bytes << " vs raw "
      << off.pool_bytes;
}

// ---- traces, liveness, progress under compression --------------------------

TEST(Collapse, TraceIdenticalAcrossModes) {
  // Force a deterministic violation; the BFS order is identical in both
  // modes, so the rebuilt trace (which re-expands stored states under
  // Collapse) must match label for label.
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  verify::CheckResult results[2];
  int i = 0;
  for (auto mode : {CompressionMode::Off, CompressionMode::Collapse}) {
    verify::CheckOptions<AsyncSystem> opts;
    opts.compress = mode;
    opts.want_trace = true;
    opts.invariant = [&sys](const runtime::AsyncState& s) {
      return s.remotes[0].state != sys.initial().remotes[0].state
                 ? "remote 0 left its initial state"
                 : std::string();
    };
    results[i++] = verify::explore(sys, opts);
  }
  ASSERT_EQ(results[0].status, verify::Status::InvariantViolated);
  EXPECT_EQ(results[1].status, results[0].status);
  EXPECT_EQ(results[1].violation, results[0].violation);
  ASSERT_FALSE(results[0].trace.empty());
  EXPECT_EQ(results[1].trace, results[0].trace);
}

TEST(Collapse, LivenessAgreesUnderCompression) {
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  verify::LivenessResult rs[2];
  int i = 0;
  for (auto mode : {CompressionMode::Off, CompressionMode::Collapse}) {
    verify::LivenessOptions lopts;
    lopts.fairness = verify::FairnessMode::Weak;
    lopts.compress = mode;
    rs[i++] = ltl::check_ltl(sys, "G F completion", lopts);
  }
  EXPECT_EQ(rs[1].status, rs[0].status);
  EXPECT_EQ(rs[1].states, rs[0].states);
  EXPECT_EQ(rs[1].transitions, rs[0].transitions);
}

TEST(Collapse, ProgressAgreesUnderCompression) {
  auto p = protocols::make_invalidate();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  verify::ProgressResult rs[2];
  int i = 0;
  for (auto mode : {CompressionMode::Off, CompressionMode::Collapse}) {
    verify::ProgressOptions popts;
    popts.compress = mode;
    rs[i++] = verify::check_progress(sys, popts);
  }
  EXPECT_EQ(rs[1].status, rs[0].status);
  EXPECT_EQ(rs[1].states, rs[0].states);
  EXPECT_EQ(rs[1].transitions, rs[0].transitions);
  EXPECT_EQ(rs[1].doomed, rs[0].doomed);
  EXPECT_EQ(rs[1].completing_edges, rs[0].completing_edges);
}

TEST(Collapse, FlagParses) {
  EXPECT_EQ(verify::parse_compression("off"), CompressionMode::Off);
  EXPECT_EQ(verify::parse_compression("collapse"), CompressionMode::Collapse);
  EXPECT_FALSE(verify::parse_compression("zip").has_value());
  EXPECT_STREQ(verify::to_string(CompressionMode::Collapse), "collapse");
}

}  // namespace
}  // namespace ccref
