// Tests for the refinement analysis (§3): message classification,
// request/reply fusion detection (§3.3), its rejection conditions, and the
// elide-ack hand-design deviation.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"

namespace ccref::refine {
namespace {

using ir::MsgId;
using ir::ProtocolBuilder;
using ir::Type;
using ir::ex::var;

TEST(Refine, MigratoryClassification) {
  auto p = protocols::make_migratory();
  auto rp = refine(p);
  // The paper's §5 result: req/gr and inv/ID fuse; LR keeps its ack.
  EXPECT_EQ(rp.cls(p.find_message("req")), MsgClass::FusedRequest);
  EXPECT_EQ(rp.cls(p.find_message("gr")), MsgClass::Reply);
  EXPECT_EQ(rp.cls(p.find_message("inv")), MsgClass::FusedRequest);
  EXPECT_EQ(rp.cls(p.find_message("ID")), MsgClass::Reply);
  EXPECT_EQ(rp.cls(p.find_message("LR")), MsgClass::Normal);
}

TEST(Refine, MigratoryFusionTables) {
  auto p = protocols::make_migratory();
  auto rp = refine(p);
  // Remote fusion: active I --req--> W waits for gr.
  ASSERT_EQ(rp.remote_fusions.size(), 1u);
  EXPECT_EQ(rp.remote_fusions[0].active_state, p.remote.find_state("I"));
  EXPECT_EQ(rp.remote_fusions[0].wait_state, p.remote.find_state("W"));
  EXPECT_EQ(rp.remote_fusions[0].reply, p.find_message("gr"));
  EXPECT_NE(rp.remote_fusion_at(p.remote.find_state("I")), nullptr);
  EXPECT_EQ(rp.remote_fusion_at(p.remote.find_state("V")), nullptr);
  // Home fusion: I1's inv output expects ID.
  ASSERT_EQ(rp.home_fusions.size(), 1u);
  EXPECT_EQ(rp.home_fusions[0].home_state, p.home.find_state("I1"));
  EXPECT_EQ(rp.home_fusions[0].reply, p.find_message("ID"));
  EXPECT_NE(rp.home_fusion_at(p.home.find_state("I1"), 0), nullptr);
}

TEST(Refine, FusionCanBeDisabled) {
  auto p = protocols::make_migratory();
  Options opts;
  opts.request_reply_fusion = false;
  auto rp = refine(p, opts);
  for (MsgId m = 0; m < p.messages.size(); ++m)
    EXPECT_EQ(rp.cls(m), MsgClass::Normal);
  EXPECT_TRUE(rp.remote_fusions.empty());
  EXPECT_TRUE(rp.home_fusions.empty());
}

TEST(Refine, ElideAckMarksMessage) {
  auto p = protocols::make_migratory();
  Options opts;
  opts.elide_ack = {"LR"};
  auto rp = refine(p, opts);
  EXPECT_EQ(rp.cls(p.find_message("LR")), MsgClass::ElideAck);
  // Fusions unaffected.
  EXPECT_EQ(rp.cls(p.find_message("req")), MsgClass::FusedRequest);
}

TEST(Refine, ElideAckRejectsHomeSentMessages) {
  auto p = protocols::make_migratory();
  Options opts;
  opts.elide_ack = {"inv"};
  EXPECT_DEATH((void)refine(p, opts), "remote->home");
}

TEST(Refine, InvalidateClassification) {
  auto p = protocols::make_invalidate();
  auto rp = refine(p);
  // reqS/grS and reqX/grX fuse.
  EXPECT_EQ(rp.cls(p.find_message("reqS")), MsgClass::FusedRequest);
  EXPECT_EQ(rp.cls(p.find_message("grS")), MsgClass::Reply);
  EXPECT_EQ(rp.cls(p.find_message("reqX")), MsgClass::FusedRequest);
  EXPECT_EQ(rp.cls(p.find_message("grX")), MsgClass::Reply);
  // rvk/WB must NOT fuse: WB is also sent voluntarily (M --evict--> WBACK),
  // violating the §3.3 "repl always appears after req" condition.
  EXPECT_EQ(rp.cls(p.find_message("rvk")), MsgClass::Normal);
  EXPECT_EQ(rp.cls(p.find_message("WB")), MsgClass::Normal);
  // inv has no data reply: generic scheme.
  EXPECT_EQ(rp.cls(p.find_message("inv")), MsgClass::Normal);
  EXPECT_EQ(rp.cls(p.find_message("drop")), MsgClass::Normal);
}

TEST(Refine, RepliesThroughDetectsInvID) {
  auto p = protocols::make_migratory();
  auto rp = refine(p);
  const auto& v = p.remote.state(p.remote.find_state("V"));
  ASSERT_EQ(v.inputs.size(), 1u);  // h?inv
  EXPECT_TRUE(rp.remote_replies_through(v.inputs[0]));
  const auto& w = p.remote.state(p.remote.find_state("W"));
  ASSERT_EQ(w.inputs.size(), 1u);  // h?gr -> V (V is not active)
  EXPECT_FALSE(rp.remote_replies_through(w.inputs[0]));
}

TEST(Refine, RequiresBufferCapacityTwo) {
  auto p = protocols::make_migratory();
  Options opts;
  opts.home_buffer_capacity = 1;
  EXPECT_DEATH((void)refine(p, opts), "buffer capacity");
}

/// The home-side §3.3 condition: a reply may only be fired at a remote
/// whose fused request was consumed on every path (found by fuzzing — a
/// home that spontaneously replies to r(j) would crash an idle remote).
TEST(Refine, FusionRejectedWhenHomeRepliesWithoutRequest) {
  ProtocolBuilder b("spont");
  MsgId REQ = b.msg("rq");
  MsgId REPL = b.msg("rp");

  auto& h = b.home();
  ir::VarId j = h.var("j", Type::Node);
  h.comm("IDLE").initial();
  h.comm("R");
  h.input("IDLE", REQ).from_any(j).go("R");
  h.output("R", REPL).to(var(j)).go("IDLE");
  // Second reply site with no consumed request on the path: IDLE can fire
  // rp at whatever stale j holds.
  h.output("IDLE", REPL).to(var(j)).go("IDLE");

  auto& r = b.remote();
  r.comm("A").initial();
  r.comm("W");
  r.output("A", REQ).go("W");
  r.input("W", REPL).go("A");
  auto p = b.build();
  auto rp = refine(p);
  EXPECT_EQ(rp.cls(REQ), MsgClass::Normal);
  EXPECT_EQ(rp.cls(REPL), MsgClass::Normal);
  EXPECT_TRUE(rp.remote_fusions.empty());
}

/// The set-based variant of the flow condition: granting from a waiting set
/// that only ever receives parked requesters is provable (the lock server).
TEST(Refine, ReplyFromWaitingSetIsProvable) {
  ProtocolBuilder b("parkset");
  MsgId REQ = b.msg("rq");
  MsgId REPL = b.msg("rp");

  auto& h = b.home();
  ir::VarId w = h.var("w", Type::NodeSet);
  ir::VarId j = h.var("j", Type::Node);
  ir::VarId t = h.var("t", Type::Node);
  h.comm("L").initial();
  h.input("L", REQ).from_any(j).act(ir::st::set_add(w, var(j))).go("L");
  h.output("L", REPL)
      .when(ir::ex::negate(ir::ex::set_empty(var(w))))
      .to_any_in(var(w), t)
      .act(ir::st::set_remove(w, var(t)))
      .go("L");

  auto& r = b.remote();
  r.comm("A").initial();
  r.comm("W");
  r.output("A", REQ).go("W");
  r.input("W", REPL).go("A");
  auto p = b.build();
  auto rp = refine(p);
  EXPECT_EQ(rp.cls(REQ), MsgClass::FusedRequest);
  EXPECT_EQ(rp.cls(REPL), MsgClass::Reply);
}

/// ...but not when the answered member stays in the set (it would be
/// granted twice).
TEST(Refine, ReplyFromSetWithoutRemovalIsRejected) {
  ProtocolBuilder b("sticky");
  MsgId REQ = b.msg("rq");
  MsgId REPL = b.msg("rp");

  auto& h = b.home();
  ir::VarId w = h.var("w", Type::NodeSet);
  ir::VarId j = h.var("j", Type::Node);
  ir::VarId t = h.var("t", Type::Node);
  h.comm("L").initial();
  h.input("L", REQ).from_any(j).act(ir::st::set_add(w, var(j))).go("L");
  h.output("L", REPL)
      .when(ir::ex::negate(ir::ex::set_empty(var(w))))
      .to_any_in(var(w), t)
      .go("L");  // forgets to remove t from w

  auto& r = b.remote();
  r.comm("A").initial();
  r.comm("W");
  r.output("A", REQ).go("W");
  r.input("W", REPL).go("A");
  auto p = b.build();
  auto rp = refine(p);
  EXPECT_EQ(rp.cls(REQ), MsgClass::Normal);
  EXPECT_EQ(rp.cls(REPL), MsgClass::Normal);
}

/// Fusion must be rejected when the wait state has a second guard (the
/// remote is not guaranteed to be waiting for the reply).
TEST(Refine, FusionRejectedWhenWaitStateHasOtherGuards) {
  ProtocolBuilder b("busy-wait");
  MsgId REQ = b.msg("rq");
  MsgId REPL = b.msg("rp", {Type::Int});
  MsgId POKE = b.msg("poke");

  auto& h = b.home();
  ir::VarId j = h.var("j", Type::Node);
  ir::VarId d = h.var("d", Type::Int, 0, 2);
  h.comm("IDLE").initial();
  h.comm("R");
  h.input("IDLE", REQ).from_any(j).go("R");
  h.output("R", REPL).to(var(j)).pay({var(d)}).go("IDLE");
  h.output("IDLE", POKE).to(var(j)).go("IDLE");

  auto& r = b.remote();
  ir::VarId got = r.var("got", Type::Int, 0, 2);
  r.comm("A").initial();
  r.comm("W");
  r.output("A", REQ).go("W");
  r.input("W", REPL).bind({got}).go("A");
  r.input("W", POKE).go("A");  // second guard spoils the fusion
  auto p = b.build();
  auto rp = refine(p);
  EXPECT_EQ(rp.cls(REQ), MsgClass::Normal);
  EXPECT_EQ(rp.cls(REPL), MsgClass::Normal);
}

/// Fusion must be rejected when the wait state has a second entry path (the
/// remote could sit in W without ever having sent the request).
TEST(Refine, FusionRejectedWhenWaitStateHasOtherEntries) {
  ProtocolBuilder b("second-entry");
  MsgId REQ = b.msg("rq");
  MsgId REPL = b.msg("rp");
  MsgId POKE = b.msg("poke");

  auto& h = b.home();
  ir::VarId j = h.var("j", Type::Node);
  h.comm("IDLE").initial();
  h.comm("R");
  h.input("IDLE", REQ).from_any(j).go("R");
  h.output("R", REPL).to(var(j)).go("IDLE");
  h.output("IDLE", POKE).to(var(j)).go("IDLE");

  auto& r = b.remote();
  r.comm("A").initial();
  r.comm("W");
  r.comm("P");  // unreachable helper state (warning only, not an error)
  r.output("A", REQ).go("W");
  r.input("W", REPL).go("A");
  r.input("P", POKE).go("W");  // second entry into W
  auto p = b.build();
  auto rp = refine(p);
  EXPECT_EQ(rp.cls(REQ), MsgClass::Normal);
  EXPECT_EQ(rp.cls(REPL), MsgClass::Normal);
}

}  // namespace
}  // namespace ccref::refine
