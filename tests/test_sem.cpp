// Tests for the rendezvous (synchronous) semantics: transition enumeration,
// payload transfer, binders, encode/decode, and full exploration of the
// paper's protocols with their safety invariants.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/validate.hpp"
#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"

namespace ccref {
namespace {

using ir::ProtocolBuilder;
using ir::Type;
using ir::VarId;
using ir::ex::lit;
using ir::ex::var;
using sem::RendezvousSystem;
using sem::RvState;

/// Handshake: remote asks, home answers with a counter value.
ir::Protocol counter_protocol(std::uint32_t bound = 4) {
  ProtocolBuilder b("counter");
  ir::MsgId ASK = b.msg("ask");
  ir::MsgId ANS = b.msg("ans", {Type::Int});

  auto& h = b.home();
  VarId j = h.var("j", Type::Node);
  VarId c = h.var("c", Type::Int, 0, bound);
  h.comm("IDLE").initial();
  h.comm("REPLY");
  h.input("IDLE", ASK).from_any(j).go("REPLY");
  h.output("REPLY", ANS)
      .to(var(j))
      .pay({var(c)})
      .act(ir::st::assign(c, ir::ex::add(var(c), lit(1))))
      .go("IDLE");

  auto& r = b.remote();
  VarId got = r.var("got", Type::Int, 0, bound);
  r.internal("Z");
  r.comm("ASK");
  r.comm("WAIT");
  r.tau("Z", "go").go("ASK");
  r.output("ASK", ASK).go("WAIT");
  r.input("WAIT", ANS).bind({got}).go("Z");
  return b.build();
}

TEST(Rendezvous, InitialStateMatchesDeclarations) {
  auto p = counter_protocol();
  RendezvousSystem sys(p, 3);
  RvState s = sys.initial();
  EXPECT_EQ(s.home.state, p.home.find_state("IDLE"));
  ASSERT_EQ(s.remotes.size(), 3u);
  for (const auto& r : s.remotes)
    EXPECT_EQ(r.state, p.remote.find_state("Z"));
  EXPECT_EQ(s.home.store.get(p.home.find_var("c")), 0u);
}

TEST(Rendezvous, TauMovesEnumerated) {
  auto p = counter_protocol();
  RendezvousSystem sys(p, 2);
  auto succs = sys.successors(sys.initial());
  // Only the two remotes' τ "go" moves are enabled initially.
  ASSERT_EQ(succs.size(), 2u);
  for (const auto& [next, label] : succs) {
    EXPECT_FALSE(label.completes_rendezvous);
    EXPECT_NE(label.text.find("tau go"), std::string::npos);
  }
}

TEST(Rendezvous, RendezvousTransfersPayloadAndBindsSender) {
  auto p = counter_protocol();
  RendezvousSystem sys(p, 2);
  RvState s = sys.initial();
  // Move r1 to ASK.
  s.remotes[1].state = p.remote.find_state("ASK");
  auto succs = sys.successors(s);
  // r0 tau + the ask rendezvous.
  bool found = false;
  for (const auto& [next, label] : succs) {
    if (!label.completes_rendezvous) continue;
    found = true;
    EXPECT_NE(label.text.find("r1!ask"), std::string::npos);
    EXPECT_EQ(next.home.state, p.home.find_state("REPLY"));
    EXPECT_EQ(next.home.store.get(p.home.find_var("j")), 1u);
    EXPECT_EQ(next.remotes[1].state, p.remote.find_state("WAIT"));
  }
  EXPECT_TRUE(found);
}

TEST(Rendezvous, ReplyCarriesValueAndRunsAction) {
  auto p = counter_protocol();
  RendezvousSystem sys(p, 2);
  RvState s = sys.initial();
  VarId j = p.home.find_var("j");
  VarId c = p.home.find_var("c");
  s.home.state = p.home.find_state("REPLY");
  s.home.store.set(j, 0);
  s.home.store.set(c, 2);
  s.remotes[0].state = p.remote.find_state("WAIT");
  auto succs = sys.successors(s);
  bool found = false;
  for (const auto& [next, label] : succs) {
    if (!label.completes_rendezvous) continue;
    found = true;
    EXPECT_NE(label.text.find("h!ans"), std::string::npos);
    EXPECT_EQ(next.remotes[0].store.get(p.remote.find_var("got")), 2u);
    EXPECT_EQ(next.home.store.get(c), 3u) << "home action must run";
    EXPECT_EQ(next.remotes[0].state, p.remote.find_state("Z"));
  }
  EXPECT_TRUE(found);
}

TEST(Rendezvous, EncodeDecodeRoundTrip) {
  auto p = counter_protocol();
  RendezvousSystem sys(p, 3);
  RvState s = sys.initial();
  s.home.store.set(p.home.find_var("c"), 3);
  s.remotes[2].state = p.remote.find_state("WAIT");
  ByteSink sink;
  sys.encode(s, sink);
  ByteSource src(sink.bytes());
  RvState back = sys.decode(src);
  EXPECT_TRUE(src.exhausted());
  EXPECT_EQ(s, back);
}

TEST(Rendezvous, DescribeNamesStatesAndVars) {
  auto p = counter_protocol();
  RendezvousSystem sys(p, 1);
  std::string d = sys.describe(sys.initial());
  EXPECT_NE(d.find("h=IDLE"), std::string::npos);
  EXPECT_NE(d.find("r0=Z"), std::string::npos);
  EXPECT_NE(d.find("c=0"), std::string::npos);
}

// ---- full exploration of the paper's protocols ------------------------------

TEST(Explore, CounterProtocolIsCleanAndFinite) {
  auto p = counter_protocol();
  RendezvousSystem sys(p, 2);
  auto result = verify::explore(sys);
  EXPECT_EQ(result.status, verify::Status::Ok);
  EXPECT_GT(result.states, 10u);
  EXPECT_LT(result.states, 2000u);
}

TEST(Explore, MigratoryValidates) {
  auto p = protocols::make_migratory();
  auto diags = ir::validate(p);
  EXPECT_FALSE(ir::has_errors(diags)) << ir::to_string(diags);
}

TEST(Explore, InvalidateValidates) {
  auto p = protocols::make_invalidate();
  auto diags = ir::validate(p);
  EXPECT_FALSE(ir::has_errors(diags)) << ir::to_string(diags);
}

class MigratoryExplore : public testing::TestWithParam<int> {};

TEST_P(MigratoryExplore, SafeAndDeadlockFree) {
  const int n = GetParam();
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, n);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.invariant = protocols::migratory_invariant(p, n);
  auto result = verify::explore(sys, opts);
  EXPECT_EQ(result.status, verify::Status::Ok)
      << result.violation << "\n"
      << (result.trace.empty() ? "" : result.trace.back());
  EXPECT_GT(result.states, 0u);
}

INSTANTIATE_TEST_SUITE_P(N, MigratoryExplore, testing::Values(1, 2, 3, 4));

class InvalidateExplore : public testing::TestWithParam<int> {};

TEST_P(InvalidateExplore, SafeAndDeadlockFree) {
  const int n = GetParam();
  auto p = protocols::make_invalidate();
  RendezvousSystem sys(p, n);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.invariant = protocols::invalidate_invariant(p, n);
  auto result = verify::explore(sys, opts);
  EXPECT_EQ(result.status, verify::Status::Ok)
      << result.violation << "\n"
      << (result.trace.empty() ? "" : result.trace.back());
}

INSTANTIATE_TEST_SUITE_P(N, InvalidateExplore, testing::Values(1, 2, 3));

TEST(Explore, MigratoryWithDataDomainStillSafe) {
  auto p = protocols::make_migratory({.data_domain = 2});
  RendezvousSystem sys(p, 2);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.invariant = protocols::migratory_invariant(p, 2);
  auto result = verify::explore(sys, opts);
  EXPECT_EQ(result.status, verify::Status::Ok) << result.violation;
}

TEST(Explore, StateCountsGrowWithN) {
  auto p = protocols::make_migratory();
  std::size_t prev = 0;
  for (int n = 1; n <= 3; ++n) {
    auto result = verify::explore(RendezvousSystem(p, n));
    EXPECT_EQ(result.status, verify::Status::Ok);
    EXPECT_GT(result.states, prev);
    prev = result.states;
  }
}

TEST(Explore, RendezvousMigratoryStaysTiny) {
  // The headline of Table 3: the rendezvous migratory protocol at N=2 is
  // tens of states, not tens of thousands.
  auto p = protocols::make_migratory();
  auto result = verify::explore(RendezvousSystem(p, 2));
  EXPECT_EQ(result.status, verify::Status::Ok);
  EXPECT_LT(result.states, 500u);
}

// ---- checker behaviour ------------------------------------------------------

TEST(Checker, DetectsInjectedInvariantViolation) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 2);
  verify::CheckOptions<RendezvousSystem> opts;
  // Claim the home may never reach E — exploration must disprove it.
  ir::StateId hE = p.home.find_state("E");
  opts.invariant = [hE](const RvState& s) {
    return s.home.state == hE ? "home reached E" : "";
  };
  auto result = verify::explore(sys, opts);
  EXPECT_EQ(result.status, verify::Status::InvariantViolated);
  EXPECT_EQ(result.violation, "home reached E");
  // BFS trace: initial + shortest path (rw τ, then the fused req/gr pair
  // as two rendezvous steps).
  ASSERT_FALSE(result.trace.empty());
  EXPECT_NE(result.trace.front().find("initial"), std::string::npos);
  EXPECT_GE(result.trace.size(), 3u);
}

TEST(Checker, DeadlockDetected) {
  // Home that accepts one message and then offers nothing.
  ProtocolBuilder b("dead");
  ir::MsgId M = b.msg("m");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("A").initial();
  h.comm("STUCK");
  h.input("A", M).from_any().go("STUCK");
  h.input("STUCK", M).from_any().when(ir::ex::boolean(false)).go("STUCK");
  auto& r = b.remote();
  r.comm("S");
  r.comm("DONE");
  r.output("S", M).to_home().go("DONE");
  r.input("DONE", M).from_home().go("DONE");
  auto p = b.build();
  auto result = verify::explore(RendezvousSystem(p, 1));
  EXPECT_EQ(result.status, verify::Status::Deadlock);
  EXPECT_NE(result.violation.find("deadlock"), std::string::npos);
}

TEST(Checker, MemoryLimitYieldsUnfinished) {
  auto p = protocols::make_invalidate();
  RendezvousSystem sys(p, 3);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.memory_limit = 16 << 10;  // 16 KB — absurdly small on purpose
  auto result = verify::explore(sys, opts);
  EXPECT_EQ(result.status, verify::Status::Unfinished);
  EXPECT_LE(result.memory_bytes, opts.memory_limit);
}

TEST(Checker, EdgeCheckRuns) {
  auto p = counter_protocol();
  RendezvousSystem sys(p, 1);
  verify::CheckOptions<RendezvousSystem> opts;
  int edges = 0;
  opts.edge_check = [&](const RvState&, const RvState&, const sem::Label&) {
    ++edges;
    return std::string{};
  };
  auto result = verify::explore(sys, opts);
  EXPECT_EQ(result.status, verify::Status::Ok);
  EXPECT_EQ(static_cast<std::size_t>(edges), result.transitions);
}

// ---- state set --------------------------------------------------------------

TEST(StateSet, InsertAndDedup) {
  verify::StateSet set(1 << 20);
  std::vector<std::byte> a{std::byte{1}, std::byte{2}};
  std::vector<std::byte> b{std::byte{1}, std::byte{3}};
  auto r1 = set.insert(a);
  EXPECT_EQ(r1.outcome, verify::StateSet::Outcome::Inserted);
  auto r2 = set.insert(b);
  EXPECT_EQ(r2.outcome, verify::StateSet::Outcome::Inserted);
  auto r3 = set.insert(a);
  EXPECT_EQ(r3.outcome, verify::StateSet::Outcome::AlreadyPresent);
  EXPECT_EQ(r3.index, r1.index);
  EXPECT_EQ(set.size(), 2u);
}

TEST(StateSet, AtReturnsStoredBytes) {
  verify::StateSet set(1 << 20);
  std::vector<std::byte> a{std::byte{9}, std::byte{8}, std::byte{7}};
  auto r = set.insert(a);
  auto back = set.at(r.index);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), back.begin()));
}

TEST(StateSet, ManyInsertsSurviveGrowth) {
  verify::StateSet set(8 << 20);
  for (std::uint32_t i = 0; i < 50000; ++i) {
    ByteSink sink;
    sink.u32(i);
    auto r = set.insert(sink.bytes());
    ASSERT_EQ(r.outcome, verify::StateSet::Outcome::Inserted);
    ASSERT_EQ(r.index, i);
  }
  EXPECT_EQ(set.size(), 50000u);
  // Everything still findable.
  ByteSink sink;
  sink.u32(31337);
  EXPECT_EQ(set.insert(sink.bytes()).outcome,
            verify::StateSet::Outcome::AlreadyPresent);
}

TEST(StateSet, RespectsMemoryLimit) {
  verify::StateSet set(32 << 10);
  bool exhausted = false;
  for (std::uint32_t i = 0; i < 100000 && !exhausted; ++i) {
    ByteSink sink;
    sink.u64(i);
    sink.u64(i * 3);
    exhausted =
        set.insert(sink.bytes()).outcome == verify::StateSet::Outcome::Exhausted;
  }
  EXPECT_TRUE(exhausted);
  EXPECT_LE(set.memory_used(), 32u << 10);
}

}  // namespace
}  // namespace ccref
