// Property-based tests over randomly generated star protocols.
//
// For each seed, the pipeline must uphold:
//   P1  the generated protocol passes ir::validate (generator soundness);
//   P2  the DSL round-trips it (print -> parse -> identical state space);
//   P3  the refinement's asynchronous semantics satisfies Equation 1 on
//       every reachable transition (§4) — for both the fused and unfused
//       variants;
//   P4  progress preservation: if no rendezvous state is doomed, no
//       asynchronous state is doomed (§2.5's guarantee);
//   P5  the asynchronous state space embeds the rendezvous one (every
//       rendezvous-reachable abstract state is abs of some async state is
//       costly to check directly; we check the cheaper consequence that
//       abs of the async initial state is the rendezvous initial state and
//       at least as many states are reachable asynchronously).
#include <gtest/gtest.h>

#include "dsl/parser.hpp"
#include "ir/print.hpp"
#include "ir/validate.hpp"
#include "random_protocol.hpp"
#include "refine/abstraction.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"
#include "verify/progress.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;

constexpr int kRemotes = 2;
constexpr std::size_t kMem = 192u << 20;

class RandomProtocol : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProtocol, ValidatesByConstruction) {
  auto p = fuzz::random_protocol(GetParam());
  auto diags = ir::validate(p);
  EXPECT_FALSE(ir::has_errors(diags))
      << ir::to_string(diags) << "\n" << ir::to_string(p);
}

TEST_P(RandomProtocol, DslRoundTripPreservesStateSpace) {
  auto p = fuzz::random_protocol(GetParam());
  auto parsed = dsl::parse(ir::to_string(p));
  ASSERT_TRUE(parsed.ok()) << parsed.error_text() << "\n"
                           << ir::to_string(p);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.detect_deadlock = false;  // random protocols may deadlock; irrelevant
  opts.memory_limit = kMem;
  auto a = verify::explore(RendezvousSystem(p, kRemotes), opts);
  auto b = verify::explore(RendezvousSystem(*parsed.protocol, kRemotes),
                           opts);
  ASSERT_EQ(a.status, verify::Status::Ok);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST_P(RandomProtocol, RefinementSatisfiesEquationOne) {
  auto p = fuzz::random_protocol(GetParam());
  for (bool fusion : {true, false}) {
    refine::Options opts;
    opts.request_reply_fusion = fusion;
    auto rp = refine::refine(p, opts);
    AsyncSystem sys(rp, kRemotes);
    RendezvousSystem rv(p, kRemotes);
    verify::CheckOptions<AsyncSystem> copts;
    copts.memory_limit = kMem;
    copts.detect_deadlock = false;
    copts.edge_check = refine::make_simulation_checker(sys, rv);
    auto r = verify::explore(sys, copts);
    if (r.status == verify::Status::Unfinished) continue;  // too big; skip
    EXPECT_EQ(r.status, verify::Status::Ok)
        << "fusion=" << fusion << ": " << r.violation << "\n"
        << (r.trace.empty() ? "" : r.trace.back()) << "\n"
        << ir::to_string(p);
  }
}

TEST_P(RandomProtocol, ProgressIsPreserved) {
  auto p = fuzz::random_protocol(GetParam());
  auto rv = verify::check_progress(RendezvousSystem(p, kRemotes), kMem);
  if (rv.status != verify::Status::Ok || rv.doomed > 0)
    GTEST_SKIP() << "rendezvous protocol itself can wedge; §2.5 guarantees "
                    "nothing here";
  auto rp = refine::refine(p);
  auto as = verify::check_progress(AsyncSystem(rp, kRemotes), kMem);
  if (as.status != verify::Status::Ok) GTEST_SKIP() << "async too large";
  EXPECT_EQ(as.doomed, 0u)
      << as.doomed_example << "\n" << ir::to_string(p);
}

TEST_P(RandomProtocol, AbstractionMapsInitialToInitial) {
  auto p = fuzz::random_protocol(GetParam());
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, kRemotes);
  RendezvousSystem rv(p, kRemotes);
  auto a = refine::abstract(sys, sys.initial());
  ByteSink sa, sb;
  rv.encode(a, sa);
  rv.encode(rv.initial(), sb);
  EXPECT_TRUE(std::equal(sa.bytes().begin(), sa.bytes().end(),
                         sb.bytes().begin(), sb.bytes().end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProtocol,
                         testing::Range<std::uint64_t>(1, 81));

}  // namespace
}  // namespace ccref
