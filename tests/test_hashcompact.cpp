// Hash-compaction storage tier (verify/fingerprint_set.hpp and the
// hash_compact routing in collapse.hpp / checker.hpp / par_checker.hpp):
// the fingerprint table's budget discipline, the birthday-bound omission
// estimate, verdict/count agreement with full storage across the engine x
// symmetry x POR x compression matrix, counterexample traces that stay
// exact under compaction, and — via a deliberately colliding fingerprint
// stub — proof that a collision degrades into a REPORTED omission
// probability, never a silently wrong count presented as exact.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "verify/checker.hpp"
#include "verify/collapse.hpp"
#include "verify/fingerprint_set.hpp"
#include "verify/par_checker.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using verify::CollapsedStateSet;
using verify::CompressionMode;
using verify::FingerprintSet;
using verify::MemoryBudget;
using verify::PorMode;
using verify::StateSet;
using verify::StorageOptions;
using verify::SymmetryMode;

// ---- FingerprintSet unit ---------------------------------------------------

TEST(FingerprintSet, InsertDupAndGrowth) {
  MemoryBudget budget(4 << 20);
  FingerprintSet set(budget);
  // Enough inserts to force several doublings past the 1024-slot floor.
  for (std::uint64_t i = 1; i <= 10000; ++i) {
    auto r = set.insert(i * 0x9e3779b97f4a7c15ull);
    ASSERT_EQ(r.outcome, FingerprintSet::Outcome::Inserted) << "i " << i;
    ASSERT_EQ(r.index, i - 1);
  }
  EXPECT_EQ(set.size(), 10000u);
  for (std::uint64_t i = 1; i <= 10000; ++i)
    EXPECT_EQ(set.insert(i * 0x9e3779b97f4a7c15ull).outcome,
              FingerprintSet::Outcome::AlreadyPresent);
  EXPECT_EQ(set.size(), 10000u);
  EXPECT_EQ(budget.used(), set.memory_used());
}

TEST(FingerprintSet, ZeroFingerprintFoldsOntoOne) {
  // 0 marks an empty slot, so fingerprint 0 costs one bit: it aliases 1.
  MemoryBudget budget(1 << 20);
  FingerprintSet set(budget);
  EXPECT_EQ(set.insert(0).outcome, FingerprintSet::Outcome::Inserted);
  EXPECT_EQ(set.insert(1).outcome, FingerprintSet::Outcome::AlreadyPresent);
  EXPECT_EQ(set.size(), 1u);
}

TEST(FingerprintSet, ExhaustionAtHardCapWhenGrowthRefused) {
  // Budget fits the 1024-slot floor but no doubling: inserts must keep
  // landing past the 70% growth trigger up to the 95% hard cap, then
  // report Exhausted without bursting the budget.
  MemoryBudget budget(12 << 10);
  FingerprintSet set(budget);
  std::size_t accepted = 0;
  for (std::uint64_t i = 1;; ++i) {
    auto r = set.insert(i * 0x9e3779b97f4a7c15ull);
    if (r.outcome == FingerprintSet::Outcome::Exhausted) break;
    ASSERT_EQ(r.outcome, FingerprintSet::Outcome::Inserted);
    ++accepted;
    ASSERT_LT(i, 100000u);
  }
  EXPECT_GT(accepted, 1024u * 7 / 10);  // past the growth trigger...
  EXPECT_LT(accepted, 1024u);           // ...but below a full table
  EXPECT_EQ(set.size(), accepted);
  EXPECT_LE(budget.used(), budget.limit());
  // Every accepted fingerprint is still findable after exhaustion.
  for (std::uint64_t i = 1; i <= accepted; ++i)
    EXPECT_EQ(set.insert(i * 0x9e3779b97f4a7c15ull).outcome,
              FingerprintSet::Outcome::AlreadyPresent);
}

TEST(FingerprintSet, GrowRacesSiblingChargeOnSharedBudget) {
  // Two sets drawing on one near-exhausted budget: A's grow-before-insert
  // (try_reserve of the doubled table) interleaves with B's charges. Any
  // outcome is legal per insert — what must hold is that growth is
  // admitted BEFORE the probe chain moves (a refused grow never corrupts
  // already-accepted entries), the budget never bursts, and every accepted
  // fingerprint stays findable afterwards.
  MemoryBudget budget(40 << 10);
  FingerprintSet a(budget);
  FingerprintSet b(budget);
  std::size_t accepted_a = 0, accepted_b = 0;
  bool full_a = false, full_b = false;
  for (std::uint64_t i = 1; !(full_a && full_b); ++i) {
    ASSERT_LT(i, 100000u);
    if (!full_a) {
      auto r = a.insert(i * 0x9e3779b97f4a7c15ull);
      if (r.outcome == FingerprintSet::Outcome::Exhausted)
        full_a = true;
      else
        ++accepted_a;
    }
    if (!full_b) {
      auto r = b.insert(i * 0xc2b2ae3d27d4eb4full);
      if (r.outcome == FingerprintSet::Outcome::Exhausted)
        full_b = true;
      else
        ++accepted_b;
    }
    ASSERT_LE(budget.used(), budget.limit());
  }
  EXPECT_GT(accepted_a, 0u);
  EXPECT_GT(accepted_b, 0u);
  EXPECT_EQ(a.size(), accepted_a);
  EXPECT_EQ(b.size(), accepted_b);
  EXPECT_EQ(budget.used(), a.memory_used() + b.memory_used());
  for (std::uint64_t i = 1; i <= accepted_a; ++i)
    ASSERT_EQ(a.insert(i * 0x9e3779b97f4a7c15ull).outcome,
              FingerprintSet::Outcome::AlreadyPresent);
  for (std::uint64_t i = 1; i <= accepted_b; ++i)
    ASSERT_EQ(b.insert(i * 0xc2b2ae3d27d4eb4full).outcome,
              FingerprintSet::Outcome::AlreadyPresent);
}

TEST(FingerprintSet, ShardedGrowUnderSharedBudgetIsRaceFree) {
  // The parallel engine's shape, run under TSan in CI: four shard-owned
  // sets hammering one atomic MemoryBudget, so every grow's try_reserve
  // races the other shards' charges. Per-set state is shard-local (no
  // locks needed); the shared budget must end exactly balanced against
  // the per-set books and never burst its limit.
  MemoryBudget budget(160 << 10);
  constexpr int kShards = 4;
  std::vector<std::unique_ptr<FingerprintSet>> shards;
  for (int s = 0; s < kShards; ++s)
    shards.push_back(std::make_unique<FingerprintSet>(budget));
  std::vector<std::size_t> accepted(kShards, 0);
  std::vector<std::thread> workers;
  for (int s = 0; s < kShards; ++s)
    workers.emplace_back([&, s] {
      FingerprintSet& set = *shards[static_cast<std::size_t>(s)];
      for (std::uint64_t i = 1; i <= 50000; ++i) {
        auto r = set.insert((i * kShards + static_cast<std::uint64_t>(s)) *
                            0x9e3779b97f4a7c15ull);
        if (r.outcome == FingerprintSet::Outcome::Exhausted) break;
        ++accepted[static_cast<std::size_t>(s)];
      }
    });
  for (auto& w : workers) w.join();
  std::size_t charged = 0, total = 0;
  for (int s = 0; s < kShards; ++s) {
    const auto& set = *shards[static_cast<std::size_t>(s)];
    EXPECT_GT(accepted[static_cast<std::size_t>(s)], 0u) << "shard " << s;
    EXPECT_EQ(set.size(), accepted[static_cast<std::size_t>(s)]);
    charged += set.memory_used();
    total += set.size();
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(budget.used(), charged);
  EXPECT_LE(budget.used(), budget.limit());
  // Acceptance is a membership promise: re-probes must all hit.
  for (int s = 0; s < kShards; ++s)
    for (std::uint64_t i = 1; i <= accepted[static_cast<std::size_t>(s)]; ++i)
      ASSERT_EQ(shards[static_cast<std::size_t>(s)]
                    ->insert((i * kShards + static_cast<std::uint64_t>(s)) *
                             0x9e3779b97f4a7c15ull)
                    .outcome,
                FingerprintSet::Outcome::AlreadyPresent)
          << "shard " << s;
}

TEST(OmissionBound, BirthdayEstimate) {
  EXPECT_EQ(verify::omission_bound(0), 0.0);
  EXPECT_EQ(verify::omission_bound(1), 0.0);
  // n=2: one pair at 2^-64.
  EXPECT_NEAR(verify::omission_bound(2), 5.42101086242752e-20, 1e-33);
  EXPECT_LT(verify::omission_bound(1000), verify::omission_bound(2000));
  // ~2^33 states drive the bound past 1; it must clamp, not overflow.
  EXPECT_EQ(verify::omission_bound(std::size_t{1} << 40), 1.0);
}

// ---- CollapsedStateSet window semantics ------------------------------------

std::vector<std::byte> state_bytes(std::uint64_t id, std::size_t len = 24) {
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((id >> ((i % 8) * 8)) & 0xff);
  return b;
}

TEST(HashCompactWindow, FifoConsumptionReleasesBudget) {
  // Under compaction at() serves exactly the BFS cursor: reads must walk
  // the window head in insertion order, and each consumed state hands its
  // bytes back to the budget — the window never outlives the frontier.
  StorageOptions st;
  st.hash_compact = true;
  CollapsedStateSet set(1 << 20, st);
  std::vector<std::uint32_t> indices;
  for (std::uint64_t id = 0; id < 200; ++id) {
    auto r = set.insert(state_bytes(id));
    ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted);
    ASSERT_EQ(r.index, id);
    indices.push_back(r.index);
  }
  EXPECT_EQ(set.size(), 200u);
  EXPECT_EQ(set.insert(state_bytes(7)).outcome,
            StateSet::Outcome::AlreadyPresent);
  const std::size_t before = set.budget().used();
  for (std::uint64_t id = 0; id < 200; ++id) {
    auto stored = set.at(indices[id]);
    auto bytes = state_bytes(id);
    ASSERT_TRUE(std::equal(bytes.begin(), bytes.end(), stored.begin(),
                           stored.end()))
        << "id " << id;
  }
  EXPECT_LT(set.budget().used(), before);
  EXPECT_EQ(set.memory_used(), set.budget().used());
}

// ---- agreement with full storage across the matrix -------------------------

template <class Sys>
verify::CheckResult check(const Sys& sys, bool hc, CompressionMode compress,
                          PorMode por, SymmetryMode symmetry,
                          unsigned jobs = 1) {
  verify::CheckOptions<Sys> opts;
  opts.want_trace = false;
  opts.hash_compact = hc;
  opts.compress = compress;
  opts.por = por;
  opts.symmetry = symmetry;
  opts.memory_limit = 512u << 20;
  return jobs <= 1 ? verify::explore(sys, opts)
                   : verify::par_explore(sys, opts, jobs);
}

void expect_hc_agreement(const ir::Protocol& p, int n, const char* what) {
  // At these sizes the birthday bound is ~1e-14, so a 64-bit fingerprint
  // collision in-test would be a hash bug, not bad luck: counts must match
  // full storage exactly, and the run must carry the omission caveat.
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, n);
  for (unsigned jobs : {1u, 4u}) {
    for (auto sym : {SymmetryMode::Off, SymmetryMode::Canonical}) {
      for (auto por : {PorMode::Off, PorMode::Ample}) {
        auto full = check(sys, false, CompressionMode::Off, por, sym, jobs);
        auto hc = check(sys, true, CompressionMode::Off, por, sym, jobs);
        ASSERT_EQ(full.status, verify::Status::Ok)
            << what << " jobs=" << jobs;
        EXPECT_EQ(hc.status, full.status) << what << " jobs=" << jobs;
        EXPECT_GT(hc.omission_probability, 0.0) << what;
        EXPECT_LT(hc.omission_probability, 1e-9) << what;
        EXPECT_EQ(full.omission_probability, 0.0) << what;
        if (jobs > 1 && por == PorMode::Ample) {
          // Parallel ample-set counts are scheduling-dependent (see the C3
          // note in par_checker.hpp): agreement only up to the full bound.
          auto cap =
              check(sys, false, CompressionMode::Off, PorMode::Off, sym,
                    jobs);
          EXPECT_LE(hc.states, cap.states) << what << " jobs=" << jobs;
          continue;
        }
        EXPECT_EQ(hc.states, full.states) << what << " jobs=" << jobs;
        EXPECT_EQ(hc.transitions, full.transitions)
            << what << " jobs=" << jobs;
        // The tier's point: fingerprints beat full vectors on memory.
        if (jobs == 1) {
          EXPECT_LT(hc.memory_bytes, full.memory_bytes)
              << what << " jobs=" << jobs;
        }
      }
    }
  }
}

TEST(HashCompact, AgreesMigratory) {
  expect_hc_agreement(protocols::make_migratory(), 3, "migratory");
}

TEST(HashCompact, AgreesInvalidate) {
  expect_hc_agreement(protocols::make_invalidate(), 2, "invalidate");
}

TEST(HashCompact, AgreesWriteUpdate) {
  expect_hc_agreement(protocols::make_write_update(), 2, "writeupdate");
}

TEST(HashCompact, AgreesLockServer) {
  expect_hc_agreement(protocols::make_lock_server(), 3, "lockserver");
}

TEST(HashCompact, CompressRequestIsNotedAndIgnored) {
  // Compaction stores no byte vectors, so COLLAPSE has nothing to work on;
  // asking for both must still verify but record the conflict.
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  auto r = check(sys, true, CompressionMode::Collapse, PorMode::Off,
                 SymmetryMode::Off);
  EXPECT_EQ(r.status, verify::Status::Ok);
  EXPECT_NE(r.note.find("hash"), std::string::npos) << "note: " << r.note;
}

// ---- adversarial: a colliding fingerprint must degrade loudly --------------

/// Deliberately terrible fingerprint: 64 buckets. Any non-trivial state
/// space collides immediately — the worst case the birthday bound warns
/// about, forced deterministically.
std::uint64_t folded_fingerprint(std::span<const std::byte> s) {
  return verify::default_fingerprint(s) & 0x3f;
}

TEST(HashCompact, ForcedCollisionIsReportedNotSilent) {
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  auto full = check(sys, false, CompressionMode::Off, PorMode::Off,
                    SymmetryMode::Off);
  ASSERT_EQ(full.status, verify::Status::Ok);
  ASSERT_GT(full.states, 64u);

  for (unsigned jobs : {1u, 4u}) {
    verify::CheckOptions<AsyncSystem> opts;
    opts.want_trace = false;
    opts.hash_compact = true;
    opts.fingerprint = &folded_fingerprint;
    opts.memory_limit = 512u << 20;
    auto r = jobs <= 1 ? verify::explore(sys, opts)
                       : verify::par_explore(sys, opts, jobs);
    // States were omitted (64 buckets cap the count), and the result SAYS
    // so: the omission probability is reported, not buried.
    EXPECT_LE(r.states, 64u) << "jobs=" << jobs;
    EXPECT_LT(r.states, full.states) << "jobs=" << jobs;
    EXPECT_GT(r.omission_probability, 0.0) << "jobs=" << jobs;
  }
}

// ---- traces stay exact under compaction ------------------------------------

TEST(HashCompact, ViolationTraceMatchesFullStorage) {
  // Same deterministic violation as the collapse trace test: compaction
  // re-concretizes the counterexample by replaying real transitions whose
  // fingerprints match the logged chain, so the labels must be identical
  // to the full-storage trace, step for step.
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  verify::CheckResult results[2];
  int i = 0;
  for (bool hc : {false, true}) {
    verify::CheckOptions<AsyncSystem> opts;
    opts.hash_compact = hc;
    opts.want_trace = true;
    opts.invariant = [&sys](const runtime::AsyncState& s) {
      return s.remotes[0].state != sys.initial().remotes[0].state
                 ? "remote 0 left its initial state"
                 : std::string();
    };
    results[i++] = verify::explore(sys, opts);
  }
  ASSERT_EQ(results[0].status, verify::Status::InvariantViolated);
  EXPECT_EQ(results[1].status, results[0].status);
  EXPECT_EQ(results[1].violation, results[0].violation);
  ASSERT_FALSE(results[0].trace.empty());
  EXPECT_EQ(results[1].trace, results[0].trace);
}

TEST(HashCompact, ParallelViolationTraceIsValid) {
  // The parallel engine's BFS order is nondeterministic, so the trace may
  // differ from the sequential one — but it must exist, start at the
  // initial state, and end in the reported violation.
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  verify::CheckOptions<AsyncSystem> opts;
  opts.hash_compact = true;
  opts.want_trace = true;
  opts.invariant = [&sys](const runtime::AsyncState& s) {
    return s.remotes[0].state != sys.initial().remotes[0].state
               ? "remote 0 left its initial state"
               : std::string();
  };
  auto r = verify::par_explore(sys, opts, 4);
  ASSERT_EQ(r.status, verify::Status::InvariantViolated);
  EXPECT_EQ(r.violation, "remote 0 left its initial state");
  ASSERT_FALSE(r.trace.empty());
  EXPECT_NE(r.trace.front().find("initial"), std::string::npos)
      << "trace head: " << r.trace.front();
}

// ---- the payoff: compaction finishes where full storage cannot -------------

TEST(HashCompact, FinishesInsideBudgetThatWallsFullStorage) {
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 4);
  verify::CheckOptions<AsyncSystem> opts;
  opts.want_trace = false;
  opts.detect_deadlock = false;
  opts.memory_limit = 2u << 20;
  auto walled = verify::explore(sys, opts);
  ASSERT_EQ(walled.status, verify::Status::Unfinished)
      << "wall gone — shrink the limit so the test still bites";

  verify::CheckOptions<AsyncSystem> ref_opts = opts;
  ref_opts.memory_limit = 512u << 20;
  auto reference = verify::explore(sys, ref_opts);
  ASSERT_EQ(reference.status, verify::Status::Ok);

  opts.hash_compact = true;
  auto hc = verify::explore(sys, opts);
  EXPECT_EQ(hc.status, verify::Status::Ok);
  EXPECT_EQ(hc.states, reference.states);
  EXPECT_LE(hc.memory_bytes, opts.memory_limit);

  auto par = verify::par_explore(sys, opts, 4);
  EXPECT_EQ(par.status, verify::Status::Ok);
  EXPECT_EQ(par.states, reference.states);
}

}  // namespace
}  // namespace ccref
