// Unit tests for the LTL subsystem: parser round-trips and errors, NNF
// normalization, the GPVW tableau translation, and the fair-lasso engine on
// tiny hand-built Kripke structures (no protocol involved, so verdicts are
// checkable by eye).
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "ltl/buchi.hpp"
#include "ltl/formula.hpp"
#include "ltl/parser.hpp"
#include "verify/liveness.hpp"

namespace ccref {
namespace {

using ltl::FormulaFactory;
using ltl::ParseResult;

std::string round_trip(const std::string& text) {
  FormulaFactory factory;
  ParseResult r = ltl::parse(text, factory);
  EXPECT_EQ(r.error, "") << text;
  if (!r.error.empty()) return "";
  return factory.to_string(r.formula, r.atoms);
}

TEST(LtlParser, RoundTrips) {
  // The renderer parenthesizes non-atomic operands and desugars `->`.
  EXPECT_EQ(round_trip("G F completion"), "G (F completion)");
  EXPECT_EQ(round_trip("G (requested(0) -> F granted(0))"),
            "G (!requested(0) || (F granted(0)))");
  EXPECT_EQ(round_trip("p U q"), "p U q");
  EXPECT_EQ(round_trip("!p || X q"), "!p || (X q)");
  EXPECT_EQ(round_trip("true U p"), "F p");  // sugar re-recognized
}

TEST(LtlParser, PrecedenceBindsAsDocumented) {
  // `->` lowest, then `||`, `&&`, `U`, unary. So a && b || c -> d U e
  // reads ((a && b) || c) -> (d U e).
  EXPECT_EQ(round_trip("a && b || c -> d U e"),
            "!((a && b) || c) || (d U e)");
  // U is right-associative.
  EXPECT_EQ(round_trip("a U b U c"), "a U (b U c)");
}

TEST(LtlParser, SharedSpellingsShareAtomIndices) {
  FormulaFactory factory;
  ParseResult r = ltl::parse("G (requested(0) -> F requested(0))", factory);
  ASSERT_EQ(r.error, "");
  EXPECT_EQ(r.atoms.size(), 1u);
  ASSERT_EQ(r.atoms[0].name, "requested");
  ASSERT_EQ(r.atoms[0].args.size(), 1u);
  EXPECT_EQ(r.atoms[0].args[0], "0");
}

TEST(LtlParser, ReportsErrors) {
  FormulaFactory factory;
  EXPECT_NE(ltl::parse("G (p", factory).error, "");       // unbalanced
  EXPECT_NE(ltl::parse("p q", factory).error, "");        // trailing input
  EXPECT_NE(ltl::parse("", factory).error, "");           // empty
  EXPECT_NE(ltl::parse("p &&", factory).error, "");       // missing operand
  EXPECT_NE(ltl::parse("U p", factory).error, "");        // binary as prefix
}

TEST(LtlFormula, NnfPushesNegationThroughDuals) {
  FormulaFactory factory;
  ParseResult r = ltl::parse("G F p", factory);
  ASSERT_EQ(r.error, "");
  // ¬(G F p) = F G ¬p.
  EXPECT_EQ(factory.to_string(factory.to_nnf(r.formula, /*negated=*/true),
                              r.atoms),
            "F (G !p)");
}

// ---- tiny Kripke structure driving the product engine ----------------------
//
// States are bytes; atom valuations and edges are table-driven per test. No
// num_remotes() member, so the engine runs with FairnessMode::None semantics
// regardless of the requested mode (every cycle is "fair").
struct TinyState {
  std::uint8_t at = 0;
};

class TinySystem {
 public:
  using State = TinyState;

  using Edges = std::vector<std::vector<std::uint8_t>>;

  explicit TinySystem(Edges edges) : edges_(std::move(edges)) {}

  [[nodiscard]] State initial() const { return {}; }

  [[nodiscard]] std::vector<std::pair<State, sem::Label>> successors(
      const State& s) const {
    std::vector<std::pair<State, sem::Label>> out;
    for (std::uint8_t to : edges_[s.at]) {
      sem::Label l;
      l.text = "-> " + std::to_string(int(to));
      out.emplace_back(State{to}, l);
    }
    return out;
  }

  void encode(const State& s, ByteSink& sink) const { sink.u8(s.at); }
  [[nodiscard]] State decode(ByteSource& src) const { return {src.u8()}; }
  [[nodiscard]] std::string describe(const State& s) const {
    return "s" + std::to_string(int(s.at));
  }

 private:
  std::vector<std::vector<std::uint8_t>> edges_;
};

/// Compile `text` over atom predicates given by name -> per-state bitmask
/// (bit k set = atom holds at state k). Event atoms are not needed here.
struct TinyProperty {
  ltl::Buchi aut;
  std::vector<std::function<bool(const TinyState&, const sem::Label&)>> atoms;
};

TinyProperty tiny_compile(const std::string& text,
                          const std::map<std::string, std::uint32_t>& masks) {
  FormulaFactory factory;
  ParseResult r = ltl::parse(text, factory);
  EXPECT_EQ(r.error, "") << text;
  TinyProperty p;
  for (const ltl::Atom& a : r.atoms) {
    auto it = masks.find(a.spelling);
    EXPECT_NE(it, masks.end()) << "unmapped atom " << a.spelling;
    std::uint32_t mask = it == masks.end() ? 0 : it->second;
    p.atoms.push_back([mask](const TinyState& s, const sem::Label&) {
      return (mask >> s.at) & 1u;
    });
  }
  p.aut = ltl::translate(factory.to_nnf(r.formula, /*negated=*/true),
                         r.atoms.size());
  return p;
}

verify::LivenessResult tiny_check(
    const TinySystem& sys, const std::string& text,
    const std::map<std::string, std::uint32_t>& masks) {
  TinyProperty p = tiny_compile(text, masks);
  return verify::find_accepting_lasso(sys, p.aut, p.atoms);
}

TEST(LtlEngine, GloballyFinallyHoldsOnVisitingCycle) {
  // 0 <-> 1, p only at 1: every infinite run visits 1 infinitely often.
  TinySystem sys(TinySystem::Edges{{1}, {0}});
  auto r = tiny_check(sys, "G F p", {{"p", 0b10}});
  EXPECT_EQ(r.status, verify::Status::Ok) << r.violation;
  EXPECT_GT(r.states, 0u);
}

TEST(LtlEngine, GloballyFinallyFailsOnAvoidingCycle) {
  // 0 -> {0, 1}, 1 -> 1. p holds only at 1; looping at 0 avoids it.
  TinySystem sys(TinySystem::Edges{{0, 1}, {1}});
  auto r = tiny_check(sys, "G F p", {{"p", 0b10}});
  ASSERT_EQ(r.status, verify::Status::LivenessViolated);
  EXPECT_FALSE(r.cycle.empty());
  for (const auto& step : r.cycle)
    EXPECT_EQ(step.find("<trace reconstruction failed>"), std::string::npos)
        << step;
}

TEST(LtlEngine, FinallyGloballyDistinguishesSettlingFromOscillating) {
  // Settles: 0 -> 1 -> 1 with p at 1 => F G p holds.
  TinySystem settles(TinySystem::Edges{{1}, {1}});
  EXPECT_EQ(tiny_check(settles, "F G p", {{"p", 0b10}}).status,
            verify::Status::Ok);
  // Oscillates: 0 <-> 1 with p only at 1 => F G p fails.
  TinySystem oscillates(TinySystem::Edges{{1}, {0}});
  EXPECT_EQ(tiny_check(oscillates, "F G p", {{"p", 0b10}}).status,
            verify::Status::LivenessViolated);
}

TEST(LtlEngine, ResponsePropertyFindsUnansweredRequest) {
  // 0 -> 1 -> 2 -> 2; p (request) at 1, q (grant) at 2: answered.
  TinySystem answered(TinySystem::Edges{{1}, {2}, {2}});
  EXPECT_EQ(
      tiny_check(answered, "G (p -> F q)", {{"p", 0b010}, {"q", 0b100}})
          .status,
      verify::Status::Ok);
  // 0 -> 1 -> 1: the request at 1 is never answered.
  TinySystem ignored(TinySystem::Edges{{1}, {1}});
  auto r =
      tiny_check(ignored, "G (p -> F q)", {{"p", 0b010}, {"q", 0b000}});
  EXPECT_EQ(r.status, verify::Status::LivenessViolated);
}

TEST(LtlEngine, DeadlockIsStutterExtended) {
  // 0 -> 1, 1 has no successors. p never holds: with the stutter extension
  // the sole infinite word is s0 s1 s1 s1 ... so G F p fails there, while
  // F G !p holds on it.
  TinySystem sys(TinySystem::Edges{{1}, {}});
  auto fails = tiny_check(sys, "G F p", {{"p", 0b00}});
  ASSERT_EQ(fails.status, verify::Status::LivenessViolated);
  bool saw_stutter = false;
  for (const auto& step : fails.cycle)
    if (step.find("stutters forever") != std::string::npos) saw_stutter = true;
  EXPECT_TRUE(saw_stutter);
  EXPECT_EQ(tiny_check(sys, "F G !p", {{"p", 0b00}}).status,
            verify::Status::Ok);
}

TEST(LtlEngine, StemPlusCycleReplaysConcretely) {
  // 0 -> 1 -> 2 -> 1 (lasso with a real stem). q at 2 only; G !q fails.
  TinySystem sys(TinySystem::Edges{{1}, {2}, {1}});
  auto r = tiny_check(sys, "G !q", {{"q", 0b100}});
  ASSERT_EQ(r.status, verify::Status::LivenessViolated);
  ASSERT_FALSE(r.stem.empty());
  EXPECT_NE(r.stem.front().find("initial: s0"), std::string::npos);
  ASSERT_FALSE(r.cycle.empty());
  for (const auto& step : r.cycle)
    EXPECT_EQ(step.find("<trace reconstruction failed>"), std::string::npos)
        << step;
}

TEST(LtlEngine, MemoryExhaustionReportsUnfinished) {
  TinySystem sys(TinySystem::Edges{{1}, {0}});
  TinyProperty p = tiny_compile("G F p", {{"p", 0b10}});
  verify::LivenessOptions opts;
  opts.memory_limit = 16;  // not even the root fits
  auto r = verify::find_accepting_lasso(sys, p.aut, p.atoms, opts);
  EXPECT_EQ(r.status, verify::Status::Unfinished);
}

TEST(LtlBuchi, UntilAcceptanceRejectsProcrastination) {
  // ¬(p U q) should accept p^ω (q never): check with the engine on a p-only
  // self-loop; p U q must then be violated.
  TinySystem sys(TinySystem::Edges{{0}});
  EXPECT_EQ(tiny_check(sys, "p U q", {{"p", 0b1}, {"q", 0b0}}).status,
            verify::Status::LivenessViolated);
  // And with q reachable-and-taken it holds: 0 -> 1 (q at 1).
  TinySystem gets_there(TinySystem::Edges{{1}, {1}});
  EXPECT_EQ(
      tiny_check(gets_there, "p U q", {{"p", 0b01}, {"q", 0b10}}).status,
      verify::Status::Ok);
}

}  // namespace
}  // namespace ccref
