// Protocol-zoo tests: every shipped protocol validates, satisfies its safety
// invariants under full exploration at both semantics, refines soundly, and
// makes forward progress. This file is the breadth counterpart to the
// migratory/invalidate-focused suites.
#include <gtest/gtest.h>

#include "ir/validate.hpp"
#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "refine/abstraction.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"
#include "verify/progress.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;

// ---- lock server -------------------------------------------------------------

TEST(LockServer, Validates) {
  auto p = protocols::make_lock_server();
  auto diags = ir::validate(p);
  EXPECT_FALSE(ir::has_errors(diags)) << ir::to_string(diags);
}

class LockServerN : public testing::TestWithParam<int> {};

TEST_P(LockServerN, RendezvousMutualExclusion) {
  const int n = GetParam();
  auto p = protocols::make_lock_server();
  verify::CheckOptions<RendezvousSystem> opts;
  opts.invariant = protocols::lock_server_invariant(p, n);
  auto r = verify::explore(RendezvousSystem(p, n), opts);
  EXPECT_EQ(r.status, verify::Status::Ok)
      << r.violation << (r.trace.empty() ? "" : "\n" + r.trace.back());
}

INSTANTIATE_TEST_SUITE_P(N, LockServerN, testing::Values(1, 2, 3, 4, 5));

TEST(LockServer, FusionClassification) {
  auto p = protocols::make_lock_server();
  auto rp = refine::refine(p);
  // acq/grant fuse; rel keeps its explicit ack.
  EXPECT_EQ(rp.cls(p.find_message("acq")), refine::MsgClass::FusedRequest);
  EXPECT_EQ(rp.cls(p.find_message("grant")), refine::MsgClass::Reply);
  EXPECT_EQ(rp.cls(p.find_message("rel")), refine::MsgClass::Normal);
}

TEST(LockServer, AsyncSafeAndSound) {
  auto p = protocols::make_lock_server();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  RendezvousSystem rv(p, 3);
  verify::CheckOptions<AsyncSystem> opts;
  opts.memory_limit = 512u << 20;
  opts.invariant = protocols::lock_server_async_invariant(p, 3);
  opts.edge_check = refine::make_simulation_checker(sys, rv);
  auto r = verify::explore(sys, opts);
  EXPECT_EQ(r.status, verify::Status::Ok)
      << r.violation << (r.trace.empty() ? "" : "\n" + r.trace.back());
}

TEST(LockServer, AsyncNeverDoomed) {
  auto p = protocols::make_lock_server();
  auto rp = refine::refine(p);
  auto r = verify::check_progress(AsyncSystem(rp, 3));
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_EQ(r.doomed, 0u) << r.doomed_example;
}

// ---- write-update --------------------------------------------------------------

TEST(WriteUpdate, Validates) {
  auto p = protocols::make_write_update();
  auto diags = ir::validate(p);
  EXPECT_FALSE(ir::has_errors(diags)) << ir::to_string(diags);
}

class WriteUpdateN : public testing::TestWithParam<int> {};

TEST_P(WriteUpdateN, RendezvousValueCoherence) {
  const int n = GetParam();
  auto p = protocols::make_write_update();
  verify::CheckOptions<RendezvousSystem> opts;
  opts.memory_limit = 512u << 20;
  opts.invariant = protocols::write_update_invariant(p, n);
  auto r = verify::explore(RendezvousSystem(p, n), opts);
  EXPECT_EQ(r.status, verify::Status::Ok)
      << r.violation << (r.trace.empty() ? "" : "\n" + r.trace.back());
}

INSTANTIATE_TEST_SUITE_P(N, WriteUpdateN, testing::Values(1, 2, 3));

TEST(WriteUpdate, FusionClassification) {
  auto p = protocols::make_write_update();
  auto rp = refine::refine(p);
  EXPECT_EQ(rp.cls(p.find_message("reqS")), refine::MsgClass::FusedRequest);
  EXPECT_EQ(rp.cls(p.find_message("grS")), refine::MsgClass::Reply);
  // wr is answered by state change, not a dedicated reply; upd has no reply.
  EXPECT_EQ(rp.cls(p.find_message("wr")), refine::MsgClass::Normal);
  EXPECT_EQ(rp.cls(p.find_message("upd")), refine::MsgClass::Normal);
}

TEST(WriteUpdate, AsyncSafeAndSound) {
  auto p = protocols::make_write_update();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  RendezvousSystem rv(p, 2);
  verify::CheckOptions<AsyncSystem> opts;
  opts.memory_limit = 1024u << 20;
  opts.edge_check = refine::make_simulation_checker(sys, rv);
  auto r = verify::explore(sys, opts);
  EXPECT_EQ(r.status, verify::Status::Ok)
      << r.violation << (r.trace.empty() ? "" : "\n" + r.trace.back());
}

TEST(WriteUpdate, AsyncNeverDoomed) {
  auto p = protocols::make_write_update();
  auto rp = refine::refine(p);
  auto r = verify::check_progress(AsyncSystem(rp, 2), 1024u << 20);
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_EQ(r.doomed, 0u) << r.doomed_example;
}

TEST(InvalidateHand, ElidedDropIsSafeButNotLive) {
  // A cautionary tale the tooling makes visible: transplanting the Avalanche
  // hand-design trick (fire-and-forget relinquish) from migratory to the
  // invalidate protocol keeps *safety* but breaks *progress*. A remote can
  // evict (unacked drop) and immediately re-request; if the home consumes
  // the reqS first, it sits in GS with the drop still buffered — GS has no
  // input guards to consume it, and Table 2's condition (c) ("no request
  // from ri pending in buffer") then blocks the grant to that remote
  // forever. Migratory escapes only because every state that grants was
  // reached by consuming the relinquish first. This is exactly why the
  // refinement procedure, not the designer, should decide where acks can be
  // dropped.
  auto p = protocols::make_invalidate();
  refine::Options opts;
  opts.elide_ack = {"drop"};
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 3);
  verify::CheckOptions<AsyncSystem> copts;
  copts.memory_limit = 512u << 20;
  copts.invariant = protocols::invalidate_async_invariant(p, 3);
  copts.want_trace = false;
  auto r = verify::explore(sys, copts);
  EXPECT_EQ(r.status, verify::Status::Ok) << r.violation;  // still safe
  auto prog = verify::check_progress(AsyncSystem(rp, 3), 512u << 20);
  ASSERT_EQ(prog.status, verify::Status::Ok);
  EXPECT_GT(prog.doomed, 0u) << "expected the documented livelock";
}

// ---- cross-protocol properties --------------------------------------------------

TEST(Zoo, AllProtocolsRoundTripThroughTheDsl) {
  // (Parsing is covered in test_dsl for migratory/invalidate; this extends
  // coverage to the whole zoo via print -> validate only, since printing is
  // the inverse direction.)
  for (auto p : {protocols::make_lock_server(), protocols::make_write_update()}) {
    auto diags = ir::validate(p);
    EXPECT_FALSE(ir::has_errors(diags)) << p.name << "\n"
                                        << ir::to_string(diags);
  }
}

TEST(Zoo, RendezvousAlwaysSmallerThanAsync) {
  for (auto p : {protocols::make_migratory(), protocols::make_invalidate(),
                 protocols::make_lock_server()}) {
    auto rv = verify::explore(RendezvousSystem(p, 2));
    auto rp = refine::refine(p);
    verify::CheckOptions<AsyncSystem> opts;
    opts.memory_limit = 512u << 20;
    opts.want_trace = false;
    auto as = verify::explore(AsyncSystem(rp, 2), opts);
    ASSERT_EQ(rv.status, verify::Status::Ok) << p.name;
    ASSERT_EQ(as.status, verify::Status::Ok) << p.name;
    EXPECT_LT(rv.states, as.states) << p.name;
  }
}

}  // namespace
}  // namespace ccref
