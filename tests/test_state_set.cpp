// StateSet / ShardedStateSet edge cases: rollback-on-Exhausted during table
// growth, slot-collision lookups, and the memory-accounting invariant
// (memory_used() never exceeds the limit after any insert sequence).
#include <gtest/gtest.h>

#include <thread>

#include "support/rng.hpp"
#include "verify/sharded_state_set.hpp"
#include "verify/state_set.hpp"

namespace ccref {
namespace {

using verify::ShardedStateSet;
using verify::StateSet;

std::vector<std::byte> state_bytes(std::uint64_t id, std::size_t len = 16) {
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((id >> ((i % 8) * 8)) & 0xff);
  return b;
}

TEST(StateSet, ExhaustionLeavesSetConsistent) {
  // Small budget, 16-byte states: inserts fail eventually, possibly inside
  // grow(). Afterwards every accepted state must still be present at its
  // original index and the rejected one must NOT be resident.
  StateSet set(24 << 10);
  std::vector<std::uint64_t> accepted;
  std::uint64_t id = 0;
  for (;; ++id) {
    auto r = set.insert(state_bytes(id));
    if (r.outcome == StateSet::Outcome::Exhausted) break;
    ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted);
    ASSERT_EQ(r.index, accepted.size());
    accepted.push_back(id);
    ASSERT_LT(id, 100000u) << "limit never hit";
  }
  EXPECT_GT(accepted.size(), 100u);
  EXPECT_LE(set.memory_used(), set.memory_limit());
  EXPECT_EQ(set.size(), accepted.size());

  // The rejected state was rolled back: a retry reports exhaustion again
  // (it would have to be re-added), never AlreadyPresent.
  auto retry = set.insert(state_bytes(id));
  EXPECT_EQ(retry.outcome, StateSet::Outcome::Exhausted);

  for (std::size_t i = 0; i < accepted.size(); ++i) {
    auto bytes = state_bytes(accepted[i]);
    auto r = set.insert(bytes);
    ASSERT_EQ(r.outcome, StateSet::Outcome::AlreadyPresent);
    ASSERT_EQ(r.index, i);
    auto stored = set.at(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(std::equal(bytes.begin(), bytes.end(), stored.begin(),
                           stored.end()));
  }
}

TEST(StateSet, GrowthRollbackOnTableBudget) {
  // Budget sized so the initial 1024-slot table (4 KB) plus ~717 tiny
  // entries fit, but the 8 KB grown table does not: the insert that trips
  // the 0.7 load factor must be rolled back.
  //
  // Footprint at the trip point with 8-byte states: pool 8*718≈5.7 KB
  // (capacity 8 KB), entries 24*718≈17 KB (capacity 24 KB), table 4 KB.
  // Pick the limit just above that but below the +8 KB grow.
  StateSet set(37 << 10);
  std::size_t inserted = 0;
  for (std::uint64_t id = 0;; ++id) {
    auto r = set.insert(state_bytes(id, 8));
    if (r.outcome == StateSet::Outcome::Exhausted) break;
    ++inserted;
    ASSERT_LT(id, 10000u);
  }
  EXPECT_GT(inserted, 0u);
  EXPECT_LE(set.memory_used(), set.memory_limit());
  EXPECT_EQ(set.size(), inserted);
  // All survivors still resolve.
  for (std::uint64_t id = 0; id < inserted; ++id) {
    auto r = set.insert(state_bytes(id, 8));
    ASSERT_EQ(r.outcome, StateSet::Outcome::AlreadyPresent);
  }
}

TEST(StateSet, CollidingSlotsResolveToDistinctStates) {
  // Find states whose hashes collide in the initial 1024-slot table; open
  // addressing must keep them distinct and retrievable.
  auto base = state_bytes(1);
  std::uint64_t h0 = hash_bytes(base) & 1023;
  std::vector<std::uint64_t> colliders;
  for (std::uint64_t id = 2; colliders.size() < 3; ++id) {
    if ((hash_bytes(state_bytes(id)) & 1023) == h0) colliders.push_back(id);
    ASSERT_LT(id, 1000000u);
  }
  StateSet set(1 << 20);
  auto r0 = set.insert(base);
  ASSERT_EQ(r0.outcome, StateSet::Outcome::Inserted);
  std::vector<std::uint32_t> idx;
  for (std::uint64_t id : colliders) {
    auto r = set.insert(state_bytes(id));
    ASSERT_EQ(r.outcome, StateSet::Outcome::Inserted);
    idx.push_back(r.index);
  }
  // Lookups traverse the probe chain to the right entry.
  EXPECT_EQ(set.insert(base).outcome, StateSet::Outcome::AlreadyPresent);
  for (std::size_t i = 0; i < colliders.size(); ++i) {
    auto r = set.insert(state_bytes(colliders[i]));
    EXPECT_EQ(r.outcome, StateSet::Outcome::AlreadyPresent);
    EXPECT_EQ(r.index, idx[i]);
  }
}

TEST(StateSet, MemoryNeverExceedsLimitUnderRandomInserts) {
  Rng rng(7);
  for (std::size_t limit : {8u << 10, 64u << 10, 256u << 10}) {
    StateSet set(limit);
    for (int step = 0; step < 20000; ++step) {
      std::size_t len = 1 + rng.below(64);
      auto r = set.insert(state_bytes(rng.next(), len));
      ASSERT_LE(set.memory_used(), limit) << "after step " << step;
      if (r.outcome == StateSet::Outcome::Exhausted && rng.below(4) == 0)
        break;  // keep hammering a full set most of the time
    }
  }
}

// ---- expected-states hint ----------------------------------------------------

TEST(StateSet, ExpectedStatesHintPreChargesTable) {
  // expected=100000 at the 0.7 load factor needs 262144 slots; the charge
  // lands at construction, before any insert.
  StateSet hinted(64u << 20, /*expected_states=*/100000);
  StateSet plain(64u << 20);
  EXPECT_GE(hinted.memory_used(), 262144 * sizeof(std::uint32_t));
  EXPECT_GT(hinted.memory_used(), plain.memory_used());
  EXPECT_EQ(hinted.budget().used(), hinted.memory_used());

  // The hint is invisible to semantics: same inserts, same indices.
  for (std::uint64_t id = 0; id < 2000; ++id) {
    auto a = hinted.insert(state_bytes(id));
    auto b = plain.insert(state_bytes(id));
    ASSERT_EQ(a.outcome, StateSet::Outcome::Inserted);
    ASSERT_EQ(b.outcome, StateSet::Outcome::Inserted);
    ASSERT_EQ(a.index, b.index);
  }
}

TEST(StateSet, OversizedHintClampsToHalfBudget) {
  // A wild hint must degrade into ordinary growth, not eat the whole budget
  // (or overflow): the pre-charge is capped at limit/2.
  StateSet set(64u << 10, /*expected_states=*/10'000'000);
  EXPECT_LE(set.memory_used(), set.memory_limit() / 2);
  std::size_t inserted = 0;
  for (std::uint64_t id = 0;; ++id) {
    auto r = set.insert(state_bytes(id));
    if (r.outcome == StateSet::Outcome::Exhausted) break;
    ++inserted;
    ASSERT_LE(set.memory_used(), set.memory_limit());
    ASSERT_LT(id, 100000u);
  }
  EXPECT_GT(inserted, 100u);
}

TEST(ShardedStateSet, ExpectedStatesHintSplitsAcrossShards) {
  // The aggregate hint is divided per shard; each shard's pre-sized table is
  // charged against the one shared budget up front.
  ShardedStateSet hinted(8u << 20, 4, /*track_parents=*/false,
                         verify::CompressionMode::Off,
                         /*expected_states=*/7000);
  ShardedStateSet plain(8u << 20, 4);
  // 7000/4 = 1750 expected per shard -> 4096 slots each (vs. 1024 default).
  EXPECT_GE(hinted.memory_used(), 4 * 4096 * sizeof(std::uint32_t));
  EXPECT_GT(hinted.memory_used(), plain.memory_used());
  for (std::uint64_t id = 0; id < 7000; ++id) {
    auto a = hinted.insert(state_bytes(id));
    auto b = plain.insert(state_bytes(id));
    ASSERT_EQ(a.outcome, ShardedStateSet::Outcome::Inserted);
    ASSERT_EQ(b.outcome, ShardedStateSet::Outcome::Inserted);
    ASSERT_EQ(a.ref, b.ref);
  }
  EXPECT_EQ(hinted.size(), 7000u);
}

// ---- the same discipline for the sharded set --------------------------------

TEST(ShardedStateSet, InsertDedupAndRefs) {
  ShardedStateSet set(1 << 20, 8);
  auto a = set.insert(state_bytes(1));
  auto b = set.insert(state_bytes(2));
  ASSERT_EQ(a.outcome, ShardedStateSet::Outcome::Inserted);
  ASSERT_EQ(b.outcome, ShardedStateSet::Outcome::Inserted);
  auto a2 = set.insert(state_bytes(1));
  EXPECT_EQ(a2.outcome, ShardedStateSet::Outcome::AlreadyPresent);
  EXPECT_EQ(a2.ref, a.ref);
  EXPECT_EQ(set.size(), 2u);
  auto bytes = state_bytes(2);
  auto stored = set.at(b.ref);
  EXPECT_TRUE(
      std::equal(bytes.begin(), bytes.end(), stored.begin(), stored.end()));
}

TEST(ShardedStateSet, ExhaustionLeavesAllShardsConsistent) {
  ShardedStateSet set(64 << 10, 4);
  std::vector<std::pair<std::uint64_t, ShardedStateSet::Ref>> accepted;
  std::uint64_t id = 0;
  for (;; ++id) {
    auto r = set.insert(state_bytes(id));
    if (r.outcome == ShardedStateSet::Outcome::Exhausted) break;
    ASSERT_EQ(r.outcome, ShardedStateSet::Outcome::Inserted);
    accepted.push_back({id, r.ref});
    ASSERT_LT(id, 100000u);
  }
  EXPECT_GT(accepted.size(), 100u);
  EXPECT_LE(set.memory_used(), set.memory_limit());
  EXPECT_EQ(set.size(), accepted.size());
  for (auto& [sid, ref] : accepted) {
    auto r = set.insert(state_bytes(sid));
    ASSERT_EQ(r.outcome, ShardedStateSet::Outcome::AlreadyPresent);
    ASSERT_EQ(r.ref, ref);
  }
}

TEST(ShardedStateSet, MemoryNeverExceedsLimitUnderRandomInserts) {
  Rng rng(11);
  ShardedStateSet set(128 << 10, 16);
  for (int step = 0; step < 20000; ++step) {
    std::size_t len = 1 + rng.below(64);
    (void)set.insert(state_bytes(rng.next(), len));
    ASSERT_LE(set.memory_used(), set.memory_limit()) << "after step " << step;
  }
}

TEST(ShardedStateSet, ParentTracking) {
  ShardedStateSet set(1 << 20, 4, /*track_parents=*/true);
  auto root = set.insert(state_bytes(100));
  ASSERT_EQ(root.outcome, ShardedStateSet::Outcome::Inserted);
  EXPECT_EQ(set.parent_of(root.ref), ShardedStateSet::kNoParent);
  auto child =
      set.insert(state_bytes(101), {}, ShardedStateSet::pack(root.ref));
  ASSERT_EQ(child.outcome, ShardedStateSet::Outcome::Inserted);
  EXPECT_EQ(ShardedStateSet::unpack(set.parent_of(child.ref)), root.ref);
  // A duplicate insert must NOT overwrite the recorded parent.
  auto dup = set.insert(state_bytes(101), {}, ShardedStateSet::kNoParent);
  EXPECT_EQ(dup.outcome, ShardedStateSet::Outcome::AlreadyPresent);
  EXPECT_EQ(ShardedStateSet::unpack(set.parent_of(child.ref)), root.ref);
}

TEST(ShardedStateSet, ConcurrentInsertsAgreeWithSequential) {
  // 4 threads insert overlapping ranges; afterwards the set must hold
  // exactly the union, each state resolvable to a stable ref.
  constexpr std::uint64_t kUniverse = 4000;
  ShardedStateSet set(8 << 20, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&set, t] {
      // Each thread covers 2/4 of the universe, offset by its id.
      for (std::uint64_t id = 0; id < kUniverse; ++id)
        if ((id / (kUniverse / 4)) % 4 == static_cast<std::uint64_t>(t) ||
            (id / (kUniverse / 4) + 1) % 4 == static_cast<std::uint64_t>(t))
          (void)set.insert(state_bytes(id));
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size(), kUniverse);
  for (std::uint64_t id = 0; id < kUniverse; ++id) {
    auto r = set.insert(state_bytes(id));
    ASSERT_EQ(r.outcome, ShardedStateSet::Outcome::AlreadyPresent) << id;
  }
}

}  // namespace
}  // namespace ccref
