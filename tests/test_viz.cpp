// Tests for the DOT exporter that regenerates the paper's figures.
#include <gtest/gtest.h>

#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "viz/dot.hpp"

namespace ccref::viz {
namespace {

TEST(Dot, RendezvousHomeMentionsStatesAndMessages) {
  auto p = protocols::make_migratory();
  std::string dot = rendezvous_dot(p, p.home);
  EXPECT_NE(dot.find("digraph migratory_h"), std::string::npos);
  for (const char* name : {"\"F\"", "\"E\"", "\"I1\"", "\"I2\"", "\"I3\""})
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  EXPECT_NE(dot.find("r(i)?req"), std::string::npos);
  EXPECT_NE(dot.find("r(o)!inv"), std::string::npos);
  EXPECT_NE(dot.find("r(j)!gr"), std::string::npos);
}

TEST(Dot, RendezvousRemoteShowsTauEdges) {
  auto p = protocols::make_migratory();
  std::string dot = rendezvous_dot(p, p.remote);
  EXPECT_NE(dot.find("evict"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("h!LR"), std::string::npos);
}

TEST(Dot, RefinedUsesAsyncNotationAndTransients) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  std::string dot = refined_dot(rp, p.remote);
  // Figure 5's conventions: ?? / !! operators, dotted transient self-loop.
  EXPECT_NE(dot.find("h!!req"), std::string::npos);
  EXPECT_NE(dot.find("??gr"), std::string::npos);
  EXPECT_NE(dot.find("??nack"), std::string::npos);
  EXPECT_NE(dot.find("??*"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
}

TEST(Dot, RefinedHomeShowsFusedReplies) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  std::string dot = refined_dot(rp, p.home);
  // gr is a fire-and-forget reply: no transient; inv routes via one.
  EXPECT_NE(dot.find("r(j)!!gr"), std::string::npos);
  EXPECT_NE(dot.find("r(o)!!inv"), std::string::npos);
  EXPECT_NE(dot.find("??ID"), std::string::npos);
}

TEST(Dot, ElideAckDrawnDotted) {
  auto p = protocols::make_migratory();
  refine::Options opts;
  opts.elide_ack = {"LR"};
  auto rp = refine::refine(p, opts);
  std::string dot = refined_dot(rp, p.remote);
  // The hand design's LR edge is dotted and has no transient wait.
  EXPECT_NE(dot.find("h!!LR"), std::string::npos);
  auto pos = dot.find("h!!LR");
  auto line_end = dot.find('\n', pos);
  EXPECT_NE(dot.substr(pos, line_end - pos).find("dotted"),
            std::string::npos);
}

TEST(Dot, OutputIsBalanced) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  for (std::string dot :
       {rendezvous_dot(p, p.home), rendezvous_dot(p, p.remote),
        refined_dot(rp, p.home), refined_dot(rp, p.remote)}) {
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
              std::count(dot.begin(), dot.end(), '}'));
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '['),
              std::count(dot.begin(), dot.end(), ']'));
  }
}

}  // namespace
}  // namespace ccref::viz
