// Tests for the workload-driven simulator: determinism, completion, message
// accounting (the §3.3 fusion savings and the §5 hand-design comparison),
// buffer-size effects (§6), and fairness measurement.
#include <gtest/gtest.h>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sim/simulator.hpp"

namespace ccref::sim {
namespace {

using refine::Options;
using runtime::AsyncSystem;

SimStats run_migratory(int n, int cycles, Options opts = {},
                       std::uint64_t seed = 7) {
  opts.channel_capacity = 8;  // simulation approximates the infinite network
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, n);
  auto w = migratory_workload(p, n, cycles);
  SimOptions sopts;
  sopts.seed = seed;
  // The protocol object must outlive the stats; run synchronously.
  return simulate(sys, w, sopts);
}

TEST(Sim, MigratorySingleRemoteCompletes) {
  auto stats = run_migratory(1, 10);
  EXPECT_TRUE(stats.finished) << stats.stall;
  EXPECT_EQ(stats.ops_total, 20u);  // 10 acquires + 10 releases
  EXPECT_EQ(stats.remotes[0].ops_completed, 20u);
}

TEST(Sim, MigratoryManyRemotesComplete) {
  auto stats = run_migratory(6, 5);
  EXPECT_TRUE(stats.finished) << stats.stall;
  EXPECT_EQ(stats.ops_total, 60u);
}

TEST(Sim, DeterministicForSeed) {
  auto a = run_migratory(4, 5, {}, 99);
  auto b = run_migratory(4, 5, {}, 99);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.messages(), b.messages());
  auto c = run_migratory(4, 5, {}, 100);
  // Different schedules virtually always differ in step count.
  EXPECT_TRUE(a.steps != c.steps || a.messages() != c.messages());
}

TEST(Sim, SingleRemoteMessageCountsAreExact) {
  // One remote, no contention: each acquire is the fused req/gr pair
  // (2 messages), each release is LR + ack (2 messages). No nacks.
  auto stats = run_migratory(1, 10);
  EXPECT_EQ(stats.req, 20u);   // 10 req + 10 LR
  EXPECT_EQ(stats.repl, 10u);  // 10 gr
  EXPECT_EQ(stats.ack, 10u);   // 10 LR acks
  EXPECT_EQ(stats.nack, 0u);
  EXPECT_DOUBLE_EQ(stats.msgs_per_op(), 2.0);
}

TEST(Sim, FusionSavesMessages) {
  Options fused;
  Options plain;
  plain.request_reply_fusion = false;
  auto with = run_migratory(4, 10, fused);
  auto without = run_migratory(4, 10, plain);
  ASSERT_TRUE(with.finished) << with.stall;
  ASSERT_TRUE(without.finished) << without.stall;
  // The generic scheme needs an explicit ack per rendezvous; fusion halves
  // the message count for the req/gr and inv/ID pairs.
  EXPECT_LT(with.msgs_per_op(), without.msgs_per_op());
  EXPECT_GT(without.ack, with.ack);
}

TEST(Sim, HandDesignSavesTheLRAck) {
  Options refined;
  Options hand;
  hand.elide_ack = {"LR"};
  auto a = run_migratory(1, 20, refined);
  auto b = run_migratory(1, 20, hand);
  ASSERT_TRUE(a.finished) << a.stall;
  ASSERT_TRUE(b.finished) << b.stall;
  // Exactly one ack per release disappears; the paper: "the loss of
  // efficiency due to the extra ack is small".
  EXPECT_EQ(a.ack - b.ack, 20u);
  EXPECT_EQ(a.req, b.req);
  EXPECT_EQ(a.repl, b.repl);
}

TEST(Sim, ContentionCausesNacksWithMinimalBuffer) {
  // k=2 with many contending remotes must produce nacks (requests bounce).
  auto stats = run_migratory(8, 10);
  ASSERT_TRUE(stats.finished) << stats.stall;
  EXPECT_GT(stats.nack, 0u);
}

TEST(Sim, LargerBufferReducesNacks) {
  Options small;  // k = 2
  Options big;
  big.home_buffer_capacity = 9;
  auto a = run_migratory(8, 10, small);
  auto b = run_migratory(8, 10, big);
  ASSERT_TRUE(a.finished) << a.stall;
  ASSERT_TRUE(b.finished) << b.stall;
  EXPECT_LT(b.nack, a.nack);
}

TEST(Sim, FairnessIndexReasonableUnderContention) {
  auto stats = run_migratory(6, 10);
  ASSERT_TRUE(stats.finished);
  // Every remote completes its fixed workload, so the index is exactly 1;
  // the interesting spread shows up in latency instead.
  EXPECT_DOUBLE_EQ(stats.fairness_index(), 1.0);
  std::uint64_t max_latency = 0;
  for (const auto& r : stats.remotes)
    max_latency = std::max(max_latency, r.latency_max);
  EXPECT_GT(max_latency, 0u);
}

TEST(Sim, InvalidateWorkloadCompletes) {
  auto p = protocols::make_invalidate();
  Options opts;
  opts.channel_capacity = 8;
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 4);
  auto w = invalidate_workload(p, 4, 10, 0.3, 42);
  SimOptions sopts;
  sopts.seed = 5;
  auto stats = simulate(sys, w, sopts);
  EXPECT_TRUE(stats.finished) << stats.stall;
  EXPECT_EQ(stats.ops_total, 80u);
  EXPECT_GT(stats.completions, 0u);
}

TEST(Sim, InvalidateReadsShareWritesExclude) {
  // All-read workload completes with strictly fewer messages than all-write
  // (no invalidation sweeps needed).
  auto p = protocols::make_invalidate();
  Options opts;
  opts.channel_capacity = 8;
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 4);
  SimOptions sopts;
  sopts.seed = 5;
  auto reads = simulate(sys, invalidate_workload(p, 4, 10, 0.0, 42), sopts);
  auto writes = simulate(sys, invalidate_workload(p, 4, 10, 1.0, 42), sopts);
  ASSERT_TRUE(reads.finished) << reads.stall;
  ASSERT_TRUE(writes.finished) << writes.stall;
  EXPECT_LT(reads.messages(), writes.messages());
}

TEST(Sim, WorkloadGeneratorShapes) {
  auto p = protocols::make_migratory();
  auto w = migratory_workload(p, 3, 4);
  ASSERT_EQ(w.per_remote.size(), 3u);
  EXPECT_EQ(w.total_ops(), 24u);
  EXPECT_EQ(w.per_remote[0][0].name, "acquire");
  EXPECT_EQ(w.per_remote[0][1].name, "release");

  auto iv = protocols::make_invalidate();
  auto wi = invalidate_workload(iv, 2, 50, 0.5, 1);
  int writes = 0;
  for (const auto& op : wi.per_remote[0])
    if (op.name == "write") ++writes;
  EXPECT_GT(writes, 10);
  EXPECT_LT(writes, 40);
}

TEST(Sim, StallReportedWhenWorkloadImpossible) {
  // An op whose goal can never be reached (D1 needs an invalidation, but
  // there is no second remote) must hit the step budget and report a stall.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 1);
  Workload w;
  w.vocabulary = {"req", "evict"};
  w.per_remote.resize(1);
  w.per_remote[0].push_back(
      {"impossible", {"req"}, p.remote.find_state("D1")});
  SimOptions sopts;
  sopts.max_steps = 1000;
  auto stats = simulate(sys, w, sopts);
  EXPECT_FALSE(stats.finished);
  ASSERT_TRUE(stats.stall.stalled());
  // The structured diagnostics name the wedged op and where it sits.
  EXPECT_EQ(stats.stall.op, "impossible");
  EXPECT_EQ(stats.stall.remote, 0);
  EXPECT_NE(stats.stall.to_string().find("impossible"), std::string::npos);
}

TEST(Sim, ObligatoryActionsAreNeverGated) {
  // A remote whose workload is exhausted must still answer invalidations:
  // r0 acquires then goes quiet holding the line; r1's acquire triggers an
  // inv that r0 must answer despite having no ops left.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  Workload w;
  w.vocabulary = {"req", "evict"};
  w.per_remote.resize(2);
  const ir::StateId goal_v = p.remote.find_state("V");
  w.per_remote[0].push_back({"acquire", {"req"}, goal_v});
  w.per_remote[1].push_back({"acquire", {"req"}, goal_v});
  SimOptions sopts;
  sopts.seed = 3;
  auto stats = simulate(sys, w, sopts);
  EXPECT_TRUE(stats.finished) << stats.stall;
  EXPECT_EQ(stats.ops_total, 2u);
}

}  // namespace
}  // namespace ccref::sim
