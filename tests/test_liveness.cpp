// Protocol-level liveness tests: the LTL engine against the CTL-style
// progress analysis, §6 per-node starvation at small vs. large home buffers,
// and lasso re-concretization under symmetry reduction.
//
// The agreement suite pins the paper-level claim both analyses encode: for
// these protocols "some doomed state exists" (check_progress) and "a weakly
// fair run with finitely many completions exists" (G F completion) have the
// same verdict. Doomed regions are successor-closed, so their bottom SCCs
// always support a weakly fair non-completing cycle; the protocols'
// refinements make the converse hold too.
#include <gtest/gtest.h>

#include "ltl/check.hpp"
#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/progress.hpp"

namespace ccref {
namespace {

using refine::Options;
using runtime::AsyncSystem;
using sem::RendezvousSystem;
using verify::FairnessMode;
using verify::LivenessOptions;
using verify::Status;

LivenessOptions weak_opts() {
  LivenessOptions o;
  o.fairness = FairnessMode::Weak;
  return o;
}

/// `G F completion` must agree with check_progress's doomed-state analysis.
template <class Sys>
void expect_agreement(const Sys& sys, const char* what) {
  auto progress = verify::check_progress(sys);
  ASSERT_EQ(progress.status, Status::Ok) << what;
  auto ltl = ltl::check_ltl(sys, "G F completion", weak_opts());
  ASSERT_NE(ltl.status, Status::Unfinished) << what;
  EXPECT_EQ(ltl.status == Status::Ok, progress.doomed == 0)
      << what << ": LTL " << verify::to_string(ltl.status) << " ["
      << ltl.violation << "] vs " << progress.doomed << " doomed states";
}

TEST(LivenessAgreement, AllProtocolsRendezvous) {
  expect_agreement(RendezvousSystem(protocols::make_migratory(), 3),
                   "migratory rv");
  expect_agreement(RendezvousSystem(protocols::make_invalidate(), 3),
                   "invalidate rv");
  expect_agreement(RendezvousSystem(protocols::make_write_update(), 3),
                   "write-update rv");
  expect_agreement(RendezvousSystem(protocols::make_lock_server(), 3),
                   "lock-server rv");
}

TEST(LivenessAgreement, AllProtocolsAsync) {
  auto check = [](const ir::Protocol& p, const char* what) {
    auto rp = refine::refine(p);
    expect_agreement(AsyncSystem(rp, 2), what);
  };
  check(protocols::make_migratory(), "migratory async");
  check(protocols::make_invalidate(), "invalidate async");
  check(protocols::make_write_update(), "write-update async");
  check(protocols::make_lock_server(), "lock-server async");
}

TEST(LivenessAgreement, MisconfiguredBufferLivelocksBothWays) {
  // §3.2's livelock (reservations off) must be seen by both analyses.
  auto p = protocols::make_migratory();
  Options opts;
  opts.progress_buffer = false;
  opts.ack_buffer = false;
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 4);
  auto progress = verify::check_progress(sys);
  ASSERT_EQ(progress.status, Status::Ok);
  EXPECT_GT(progress.doomed, 0u);
  auto ltl = ltl::check_ltl(sys, "G F completion", weak_opts());
  ASSERT_EQ(ltl.status, Status::LivenessViolated);
  EXPECT_FALSE(ltl.cycle.empty());
}

// ---- §6: per-node starvation --------------------------------------------------

LivenessOptions strong_opts() {
  LivenessOptions o;
  o.fairness = FairnessMode::Strong;
  return o;
}

TEST(Starvation, MinimalBufferStarvesANode) {
  // k = 2 guarantees *some* progress (§2.5) but not per-node progress: with
  // three requesters the home can serve two of them forever while remote 0's
  // request is nacked on every retry; no grant to 0 is ever enabled on that
  // cycle, so even strong (service) fairness admits it.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);  // home_buffer_capacity = 2
  AsyncSystem sys(rp, 3);
  auto r = ltl::check_ltl(sys, "G (requested(0) -> F granted(0))",
                          strong_opts());
  ASSERT_EQ(r.status, Status::LivenessViolated) << r.note;
  EXPECT_FALSE(r.cycle.empty());
  // The starving remote keeps being nacked around the cycle: its grant must
  // not appear there.
  for (const auto& step : r.cycle)
    EXPECT_EQ(step.find("<trace reconstruction failed>"), std::string::npos)
        << step;
}

TEST(Starvation, PerNodeBufferSlotsRestoreService) {
  // §6's fix: with a slot per requester plus the ack reservation
  // (k = n + 1), a request is never nacked for lack of space, so it is
  // eventually buffered; once buffered, the grant stays enabled and strong
  // fairness forces it. The starvation formula passes.
  auto p = protocols::make_migratory();
  Options opts;
  opts.home_buffer_capacity = 4;  // n + 1
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 3);
  auto r = ltl::check_ltl(sys, "G (requested(0) -> F granted(0))",
                          strong_opts());
  EXPECT_EQ(r.status, Status::Ok) << r.violation;
}

TEST(Starvation, WeakFairnessIsNotEnough) {
  // Under weak fairness alone even the big buffer starves remote 0: the
  // home may "fairly" serve the other requesters while 0's request sits
  // buffered. This is exactly why §6 needs the service-fairness assumption.
  auto p = protocols::make_migratory();
  Options opts;
  opts.home_buffer_capacity = 4;
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 3);
  auto r = ltl::check_ltl(sys, "G (requested(0) -> F granted(0))",
                          weak_opts());
  EXPECT_EQ(r.status, Status::LivenessViolated);
}

// ---- symmetry composition -----------------------------------------------------

TEST(LivenessSymmetry, QuotientMatchesUnreducedVerdictWithoutFairness) {
  // Fairness-free emptiness is orbit-invariant, so the quotient must agree
  // with the full product while storing fewer states. (G !nacked is a
  // symmetric property the k=2 migratory system genuinely violates.)
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  LivenessOptions none;
  none.fairness = FairnessMode::None;
  auto plain = ltl::check_ltl(sys, "G !nacked", none);
  LivenessOptions sym = none;
  sym.symmetry = verify::SymmetryMode::Canonical;
  auto reduced = ltl::check_ltl(sys, "G !nacked", sym);
  EXPECT_EQ(plain.status, reduced.status);
  EXPECT_EQ(plain.status, Status::LivenessViolated);
  EXPECT_TRUE(reduced.note.empty()) << reduced.note;
  EXPECT_LT(reduced.states, plain.states);
}

TEST(LivenessSymmetry, FairnessForcesDowngradeToFullProduct) {
  // Weak-fairness marks live in per-representative coordinate frames, which
  // the quotient's per-step relabeling mixes up; the engine must refuse the
  // unsound combination (and still return the full-product verdict).
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  auto plain = ltl::check_ltl(sys, "G F completion", weak_opts());
  LivenessOptions sym = weak_opts();
  sym.symmetry = verify::SymmetryMode::Canonical;
  auto reduced = ltl::check_ltl(sys, "G F completion", sym);
  EXPECT_EQ(plain.status, reduced.status);
  EXPECT_EQ(reduced.states, plain.states);  // really ran unreduced
  EXPECT_NE(reduced.note.find("downgraded"), std::string::npos)
      << reduced.note;
}

TEST(LivenessSymmetry, AsymmetricFormulaIsDowngradedNotWrong) {
  // granted(0) names a concrete remote: the orbit quotient is unsound for
  // it, so check_ltl must fall back to the full space and say so.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  LivenessOptions sym = strong_opts();
  sym.symmetry = verify::SymmetryMode::Canonical;
  auto r = ltl::check_ltl(sys, "G (requested(0) -> F granted(0))", sym);
  EXPECT_NE(r.note.find("downgraded"), std::string::npos) << r.note;
  EXPECT_EQ(r.status, Status::LivenessViolated);
}

TEST(LivenessSymmetry, LassoReplaysConcretelyUnderSymmetry) {
  // The reported lasso must be a path of the *uncanonicalized* relation
  // even when the product ran on orbit representatives.
  auto p = protocols::make_migratory();
  Options opts;
  opts.progress_buffer = false;
  opts.ack_buffer = false;
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 4);  // n=4: the smallest livelocking configuration
  LivenessOptions sym;
  sym.fairness = FairnessMode::None;  // keep the quotient active
  sym.symmetry = verify::SymmetryMode::Canonical;
  auto r = ltl::check_ltl(sys, "G F completion", sym);
  ASSERT_EQ(r.status, Status::LivenessViolated);
  for (const auto& step : r.stem)
    EXPECT_EQ(step.find("<trace reconstruction failed>"), std::string::npos)
        << step;
  for (const auto& step : r.cycle)
    EXPECT_EQ(step.find("<trace reconstruction failed>"), std::string::npos)
        << step;
}

// ---- result-shape alignment ---------------------------------------------------

TEST(LivenessResult, CarriesEngineMetadata) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);  // AsyncSystem keeps a pointer into this
  AsyncSystem sys(rp, 2);
  auto r = ltl::check_ltl(sys, "G F completion", weak_opts());
  EXPECT_GT(r.states, 0u);
  EXPECT_GT(r.transitions, 0u);
  EXPECT_GT(r.memory_bytes, 0u);
  EXPECT_GE(r.seconds, 0.0);
}

}  // namespace
}  // namespace ccref
