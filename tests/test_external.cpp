// External-memory visited tier (support/run_file.hpp +
// verify/external_set.hpp and the --external routing through collapse.hpp
// / checker.hpp / par_checker.hpp): run-file I/O discipline, the
// exactly-once admission guarantee of sorted-run delayed duplicate
// detection across cache evictions and merge generations, verdict/count
// agreement with the in-RAM reference across the engine x symmetry x POR
// matrix, counterexample traces replayed from the order log, the
// composition downgrade notes, and the payoff — runs that a 2 MB RAM
// budget leaves Unfinished reach exact verdicts once the table moves to
// disk.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "support/run_file.hpp"
#include "verify/checker.hpp"
#include "verify/external_set.hpp"
#include "verify/par_checker.hpp"

namespace ccref {
namespace {

namespace fs = std::filesystem;
using runtime::AsyncSystem;
using verify::ExternalVisitedSet;
using verify::MemoryBudget;
using verify::PorMode;
using verify::ResolveOutcome;
using verify::SymmetryMode;

/// Fresh per-test directory under the gtest temp root; removed on scope
/// exit so failed runs don't accrete run files.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::path(::testing::TempDir()) /
           ("ccref-ext-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::vector<std::byte> rec_bytes(std::uint64_t id, std::size_t len = 24) {
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((id >> ((i % 8) * 8)) & 0xff);
  return b;
}

// ---- RunFile ---------------------------------------------------------------

TEST(RunFile, AppendFlushReadRoundTrip) {
  TempDir dir;
  ASSERT_TRUE(ensure_run_dir(dir.path.string()));
  RunFile f;
  ASSERT_TRUE(f.open(dir.path.string(), "t", /*buffer_bytes=*/64));
  ASSERT_TRUE(f.ok());
  // Appends larger and smaller than the buffer, to exercise both paths.
  std::vector<std::uint64_t> vals;
  for (std::uint64_t i = 0; i < 1000; ++i) vals.push_back(i * 0x9e37ull);
  for (std::uint64_t v : vals) ASSERT_TRUE(f.append(&v, sizeof(v)));
  EXPECT_EQ(f.bytes(), vals.size() * sizeof(std::uint64_t));
  ASSERT_TRUE(f.flush());
  // Positioned reads.
  std::uint64_t v = 0;
  ASSERT_TRUE(f.pread_at(500 * sizeof(v), &v, sizeof(v)));
  EXPECT_EQ(v, vals[500]);
  // Sequential reader sees every value, then reports a clean end.
  RunFile::Reader r(f, 128);
  for (std::uint64_t expect : vals) {
    ASSERT_TRUE(r.read(&v, sizeof(v)));
    ASSERT_EQ(v, expect);
  }
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.read(&v, sizeof(v)));
}

TEST(RunFile, FilesAreUnlinkedImmediately) {
  // The fd owns the blocks: the directory stays empty while the file is
  // live, so a crashed run leaks nothing.
  TempDir dir;
  ASSERT_TRUE(ensure_run_dir(dir.path.string()));
  RunFile f;
  ASSERT_TRUE(f.open(dir.path.string(), "t"));
  std::size_t entries = 0;
  for ([[maybe_unused]] auto& e : fs::directory_iterator(dir.path)) ++entries;
  EXPECT_EQ(entries, 0u);
}

TEST(RunFile, ResetRestartsAppendsAtZero) {
  TempDir dir;
  ASSERT_TRUE(ensure_run_dir(dir.path.string()));
  RunFile f;
  ASSERT_TRUE(f.open(dir.path.string(), "t"));
  std::uint64_t v = 7;
  ASSERT_TRUE(f.append(&v, sizeof(v)));
  ASSERT_TRUE(f.reset());
  EXPECT_EQ(f.bytes(), 0u);
  v = 11;
  ASSERT_TRUE(f.append(&v, sizeof(v)));
  ASSERT_TRUE(f.flush());
  std::uint64_t got = 0;
  ASSERT_TRUE(f.pread_at(0, &got, sizeof(got)));
  EXPECT_EQ(got, 11u);
  EXPECT_EQ(f.bytes(), sizeof(std::uint64_t));
}

TEST(RunFile, DeadWhenDirectoryImpossible) {
  // A path through /dev/null can never become a directory: open must fail
  // cleanly and every later operation must report failure, not crash.
  EXPECT_FALSE(ensure_run_dir("/dev/null/ccref-ext"));
  RunFile f;
  EXPECT_FALSE(f.open("/dev/null/ccref-ext", "t"));
  EXPECT_FALSE(f.ok());
  std::uint64_t v = 1;
  EXPECT_FALSE(f.append(&v, sizeof(v)));
}

// ---- ExternalVisitedSet ----------------------------------------------------

TEST(ExternalSet, CacheFrontHitIsExactAlreadyPresent) {
  TempDir dir;
  MemoryBudget budget(16 << 20);
  ExternalVisitedSet::Config cfg;
  cfg.dir = dir.path.string();
  cfg.partitions = 4;
  cfg.watermark = 1 << 20;  // never auto-ripe; this test resolves nothing
  cfg.cache_slots = 1024;
  ExternalVisitedSet set(budget, cfg);
  ASSERT_TRUE(set.ok());
  auto bytes = rec_bytes(1);
  EXPECT_EQ(set.insert(42, 0, bytes), ExternalVisitedSet::Outcome::Deferred);
  // The repeat probe hits the cache front: exact, nothing new queued.
  EXPECT_EQ(set.insert(42, 0, bytes),
            ExternalVisitedSet::Outcome::AlreadyPresent);
  EXPECT_EQ(set.pending(), 1u);
  EXPECT_GT(set.disk_bytes(), 0u);
  EXPECT_EQ(budget.used(), set.memory_used());
}

TEST(ExternalSet, ExactlyOnceAcrossCacheEvictionAndMerges) {
  // The admission guarantee under the worst case for the cache front: the
  // same fingerprint re-queued after eviction must be dropped by the merge
  // — first by batch-internal dedupe, then by the history run.
  TempDir dir;
  MemoryBudget budget(16 << 20);
  ExternalVisitedSet::Config cfg;
  cfg.dir = dir.path.string();
  cfg.partitions = 1;
  cfg.watermark = 1 << 20;  // resolve manually
  cfg.cache_slots = 1024;
  ExternalVisitedSet set(budget, cfg);
  ASSERT_TRUE(set.ok());

  const std::uint64_t fp_a = 0x5555;
  auto enqueue_round = [&] {
    // fp_a, then 16 distinct fingerprints sharing its cache slot window
    // (same low bits): the 8-probe window is fully overwritten, so the
    // final re-insert of fp_a MISSES the cache and goes to disk again.
    EXPECT_NE(set.insert(fp_a, 0, rec_bytes(0)),
              ExternalVisitedSet::Outcome::Exhausted);
    for (std::uint64_t i = 1; i <= 16; ++i)
      EXPECT_NE(set.insert(fp_a + i * 1024, 0, rec_bytes(i)),
                ExternalVisitedSet::Outcome::Exhausted);
    ASSERT_EQ(set.insert(fp_a, 0, rec_bytes(0)),
              ExternalVisitedSet::Outcome::Deferred)
        << "cache eviction plan broke — fix the filler fingerprints";
  };

  enqueue_round();
  std::vector<std::uint64_t> admitted;
  auto collect = [&](std::uint32_t index, std::uint64_t fp, std::uint64_t,
                     std::span<const std::byte>) {
    EXPECT_EQ(index, admitted.size());
    admitted.push_back(fp);
  };
  ASSERT_EQ(set.resolve(false, collect), ResolveOutcome::Fresh);
  // 18 pending entries, 17 distinct fingerprints: batch dedupe kept the
  // first fp_a occurrence only.
  EXPECT_EQ(admitted.size(), 17u);
  EXPECT_EQ(set.size(), 17u);
  EXPECT_EQ(set.pending(), 0u);

  // Second generation: every fingerprint is now in the history run, so a
  // full re-enqueue must drain without a single fresh state.
  enqueue_round();
  admitted.clear();
  ASSERT_EQ(set.resolve(false, collect), ResolveOutcome::Drained);
  EXPECT_TRUE(admitted.empty());
  EXPECT_EQ(set.size(), 17u);
  EXPECT_GE(set.merge_passes(), 2u);
  EXPECT_EQ(budget.used(), set.memory_used());
}

TEST(ExternalSet, WatermarkGatesRipeResolve) {
  TempDir dir;
  MemoryBudget budget(16 << 20);
  ExternalVisitedSet::Config cfg;
  cfg.dir = dir.path.string();
  cfg.partitions = 2;  // high fingerprint bit routes the partition
  cfg.watermark = 8;
  cfg.cache_slots = 1024;
  ExternalVisitedSet set(budget, cfg);
  ASSERT_TRUE(set.ok());
  // Fill partition 0 past the watermark; partition 1 gets a single entry.
  for (std::uint64_t i = 1; i <= 8; ++i)
    ASSERT_EQ(set.insert(i * 2048, 0, rec_bytes(i)),
              ExternalVisitedSet::Outcome::Deferred);
  ASSERT_EQ(set.insert((std::uint64_t{1} << 63) | 3, 0, rec_bytes(99)),
            ExternalVisitedSet::Outcome::Deferred);
  EXPECT_TRUE(set.needs_resolve());
  std::size_t fresh = 0;
  ASSERT_EQ(set.resolve(/*only_ripe=*/true,
                        [&](std::uint32_t, std::uint64_t, std::uint64_t,
                            std::span<const std::byte>) { ++fresh; }),
            ResolveOutcome::Fresh);
  // Only the ripe partition was merged; the lone entry still waits.
  EXPECT_EQ(fresh, 8u);
  EXPECT_EQ(set.pending(), 1u);
  EXPECT_FALSE(set.needs_resolve());
  // The drain pass (only_ripe=false) flushes the rest.
  ASSERT_EQ(set.resolve(false,
                        [&](std::uint32_t, std::uint64_t, std::uint64_t,
                            std::span<const std::byte>) { ++fresh; }),
            ResolveOutcome::Fresh);
  EXPECT_EQ(fresh, 9u);
  EXPECT_EQ(set.pending(), 0u);
}

TEST(ExternalSet, OrderLogReplaysFingerprintAndParent) {
  TempDir dir;
  MemoryBudget budget(16 << 20);
  ExternalVisitedSet::Config cfg;
  cfg.dir = dir.path.string();
  cfg.partitions = 1;
  cfg.watermark = 1 << 20;
  cfg.cache_slots = 1024;
  cfg.keep_order_log = true;
  ExternalVisitedSet set(budget, cfg);
  ASSERT_TRUE(set.ok());
  for (std::uint64_t i = 1; i <= 50; ++i)
    ASSERT_EQ(set.insert(i * 7919, i - 1, rec_bytes(i)),
              ExternalVisitedSet::Outcome::Deferred);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
  ASSERT_EQ(set.resolve(false,
                        [&](std::uint32_t index, std::uint64_t fp,
                            std::uint64_t parent, std::span<const std::byte>) {
                          EXPECT_EQ(index, seen.size());
                          seen.emplace_back(fp, parent);
                        }),
            ResolveOutcome::Fresh);
  ASSERT_EQ(seen.size(), 50u);
  // The order log serves random-access replay of exactly what resolve
  // delivered — the trace-reconstruction contract.
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(set.fingerprint_at(i), seen[i].first) << "index " << i;
    EXPECT_EQ(set.parent_at(i), seen[i].second) << "index " << i;
  }
}

TEST(ExternalSet, SurvivorBytesRoundTripThroughRecordFile) {
  TempDir dir;
  MemoryBudget budget(16 << 20);
  ExternalVisitedSet::Config cfg;
  cfg.dir = dir.path.string();
  cfg.partitions = 1;
  cfg.watermark = 1 << 20;
  cfg.cache_slots = 1024;
  ExternalVisitedSet set(budget, cfg);
  ASSERT_TRUE(set.ok());
  // Varying record lengths, so the stream framing is actually exercised.
  for (std::uint64_t i = 1; i <= 40; ++i)
    ASSERT_EQ(set.insert(i * 6151, 0, rec_bytes(i, 8 + (i % 5) * 16)),
              ExternalVisitedSet::Outcome::Deferred);
  std::size_t checked = 0;
  ASSERT_EQ(set.resolve(false,
                        [&](std::uint32_t, std::uint64_t, std::uint64_t,
                            std::span<const std::byte> bytes) {
                          ++checked;
                          auto expect =
                              rec_bytes(checked, 8 + (checked % 5) * 16);
                          ASSERT_EQ(bytes.size(), expect.size());
                          EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                                                 bytes.begin()));
                        }),
            ResolveOutcome::Fresh);
  EXPECT_EQ(checked, 40u);
}

TEST(ExternalSet, DeadDirectoryReportsExhaustedNotCrash) {
  MemoryBudget budget(16 << 20);
  ExternalVisitedSet::Config cfg;
  cfg.dir = "/dev/null/ccref-ext";
  cfg.partitions = 1;
  cfg.cache_slots = 1024;
  ExternalVisitedSet set(budget, cfg);
  EXPECT_FALSE(set.ok());
  EXPECT_EQ(set.insert(1, 0, rec_bytes(1)),
            ExternalVisitedSet::Outcome::Exhausted);
  EXPECT_EQ(set.resolve(false,
                        [](std::uint32_t, std::uint64_t, std::uint64_t,
                           std::span<const std::byte>) {}),
            ResolveOutcome::Failed);
}

// ---- agreement with the in-RAM reference across the matrix -----------------

template <class Sys>
verify::CheckResult check_ext(const Sys& sys, const std::string& dir,
                              PorMode por, SymmetryMode symmetry,
                              unsigned jobs) {
  verify::CheckOptions<Sys> opts;
  opts.want_trace = false;
  opts.por = por;
  opts.symmetry = symmetry;
  opts.memory_limit = 512u << 20;
  if (!dir.empty()) opts.external.dir = dir;
  return jobs <= 1 ? verify::explore(sys, opts)
                   : verify::par_explore(sys, opts, jobs);
}

void expect_ext_agreement(const ir::Protocol& p, int n, const char* what) {
  // At these sizes the fingerprint birthday bound is ~1e-14: a collision
  // in-test would be a hash bug, not bad luck. The external tier forces
  // POR off (deferred duplicate detection hides revisits from the ample
  // cycle proviso), so the reference is always the por=Off RAM run; when
  // Ample was requested the downgrade must be SAID, and counts must still
  // match the por=Off reference exactly.
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, n);
  TempDir dir;
  for (unsigned jobs : {1u, 4u}) {
    for (auto sym : {SymmetryMode::Off, SymmetryMode::Canonical}) {
      auto ref = check_ext(sys, "", PorMode::Off, sym, jobs);
      ASSERT_EQ(ref.status, verify::Status::Ok)
          << what << " jobs=" << jobs;
      for (auto por : {PorMode::Off, PorMode::Ample}) {
        auto ext = check_ext(sys, dir.path.string(), por, sym, jobs);
        EXPECT_EQ(ext.status, verify::Status::Ok)
            << what << " jobs=" << jobs << " note: " << ext.note;
        EXPECT_EQ(ext.states, ref.states) << what << " jobs=" << jobs;
        EXPECT_EQ(ext.transitions, ref.transitions)
            << what << " jobs=" << jobs;
        EXPECT_GT(ext.external_bytes, 0u) << what;
        EXPECT_GT(ext.omission_probability, 0.0) << what;
        EXPECT_LT(ext.omission_probability, 1e-9) << what;
        if (por == PorMode::Ample)
          EXPECT_NE(ext.note.find("por downgraded"), std::string::npos)
              << what << " note: " << ext.note;
      }
    }
  }
}

TEST(ExternalAgreement, Migratory) {
  expect_ext_agreement(protocols::make_migratory(), 3, "migratory");
}

TEST(ExternalAgreement, Invalidate) {
  expect_ext_agreement(protocols::make_invalidate(), 2, "invalidate");
}

TEST(ExternalAgreement, WriteUpdate) {
  expect_ext_agreement(protocols::make_write_update(), 2, "writeupdate");
}

TEST(ExternalAgreement, LockServer) {
  expect_ext_agreement(protocols::make_lock_server(), 3, "lockserver");
}

// ---- composition notes -----------------------------------------------------

TEST(ExternalComposition, CompressRequestIsNotedAndIgnored) {
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  TempDir dir;
  verify::CheckOptions<AsyncSystem> opts;
  opts.want_trace = false;
  opts.compress = verify::CompressionMode::Collapse;
  opts.external.dir = dir.path.string();
  for (unsigned jobs : {1u, 2u}) {
    auto r = jobs <= 1 ? verify::explore(sys, opts)
                       : verify::par_explore(sys, opts, jobs);
    EXPECT_EQ(r.status, verify::Status::Ok) << "jobs=" << jobs;
    EXPECT_NE(r.note.find("hash"), std::string::npos)
        << "jobs=" << jobs << " note: " << r.note;
  }
}

TEST(ExternalComposition, HashCompactIsSubsumed) {
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  TempDir dir;
  verify::CheckOptions<AsyncSystem> opts;
  opts.want_trace = false;
  opts.hash_compact = true;
  opts.external.dir = dir.path.string();
  for (unsigned jobs : {1u, 2u}) {
    auto r = jobs <= 1 ? verify::explore(sys, opts)
                       : verify::par_explore(sys, opts, jobs);
    EXPECT_EQ(r.status, verify::Status::Ok) << "jobs=" << jobs;
    EXPECT_NE(r.note.find("subsumed"), std::string::npos)
        << "jobs=" << jobs << " note: " << r.note;
  }
}

// ---- traces stay exact through the order log -------------------------------

TEST(ExternalTrace, ViolationTraceMatchesRamStorage) {
  // The external tier stores fingerprints, not states: the trace is
  // re-concretized by replaying real transitions whose fingerprints match
  // the order log's parent chain, so seq labels must be identical to the
  // RAM-storage trace, step for step.
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  TempDir dir;
  verify::CheckResult results[2];
  int i = 0;
  for (bool external : {false, true}) {
    verify::CheckOptions<AsyncSystem> opts;
    opts.want_trace = true;
    if (external) opts.external.dir = dir.path.string();
    opts.invariant = [&sys](const runtime::AsyncState& s) {
      return s.remotes[0].state != sys.initial().remotes[0].state
                 ? "remote 0 left its initial state"
                 : std::string();
    };
    results[i++] = verify::explore(sys, opts);
  }
  ASSERT_EQ(results[0].status, verify::Status::InvariantViolated);
  EXPECT_EQ(results[1].status, results[0].status);
  EXPECT_EQ(results[1].violation, results[0].violation);
  ASSERT_FALSE(results[0].trace.empty());
  EXPECT_EQ(results[1].trace, results[0].trace);
}

TEST(ExternalTrace, ParallelViolationTraceIsValid) {
  // Parallel BFS order is nondeterministic, so the trace may differ from
  // the sequential one — but it must exist, start at the initial state,
  // and end in the reported violation.
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  TempDir dir;
  verify::CheckOptions<AsyncSystem> opts;
  opts.want_trace = true;
  opts.external.dir = dir.path.string();
  opts.invariant = [&sys](const runtime::AsyncState& s) {
    return s.remotes[0].state != sys.initial().remotes[0].state
               ? "remote 0 left its initial state"
               : std::string();
  };
  auto r = verify::par_explore(sys, opts, 4);
  ASSERT_EQ(r.status, verify::Status::InvariantViolated);
  EXPECT_EQ(r.violation, "remote 0 left its initial state");
  ASSERT_FALSE(r.trace.empty());
  EXPECT_NE(r.trace.front().find("initial"), std::string::npos)
      << "trace head: " << r.trace.front();
}

// ---- the payoff: disk finishes where the RAM budget cannot -----------------

TEST(ExternalEndToEnd, BreaksTheRamWallSequentialAndParallel) {
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 4);
  verify::CheckOptions<AsyncSystem> opts;
  opts.want_trace = false;
  opts.detect_deadlock = false;
  opts.memory_limit = 2u << 20;

  auto walled = verify::explore(sys, opts);
  ASSERT_EQ(walled.status, verify::Status::Unfinished)
      << "wall gone — shrink the limit so the test still bites";

  verify::CheckOptions<AsyncSystem> ref_opts = opts;
  ref_opts.memory_limit = 512u << 20;
  auto reference = verify::explore(sys, ref_opts);
  ASSERT_EQ(reference.status, verify::Status::Ok);

  TempDir dir;
  opts.external.dir = dir.path.string();
  auto ext = verify::explore(sys, opts);
  EXPECT_EQ(ext.status, verify::Status::Ok) << "note: " << ext.note;
  EXPECT_EQ(ext.states, reference.states);
  EXPECT_EQ(ext.transitions, reference.transitions);
  EXPECT_GT(ext.external_bytes, 0u);
  EXPECT_GT(ext.merge_passes, 0u);
  EXPECT_LE(ext.memory_bytes, opts.memory_limit);

  auto par = verify::par_explore(sys, opts, 4);
  EXPECT_EQ(par.status, verify::Status::Ok) << "note: " << par.note;
  EXPECT_EQ(par.states, reference.states);
  EXPECT_GT(par.external_bytes, 0u);
  EXPECT_LE(par.memory_bytes, opts.memory_limit);
}

TEST(ExternalEndToEnd, DeadDiskReportsUnfinished) {
  // An unusable --external directory must surface as an honest Unfinished
  // (disk took the table's place and disk is gone) — never a crash or a
  // silently truncated Ok.
  auto p = protocols::make_migratory();  // RefinedProtocol points into it
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  verify::CheckOptions<AsyncSystem> opts;
  opts.want_trace = false;
  opts.detect_deadlock = false;
  opts.external.dir = "/dev/null/ccref-ext";
  auto seq = verify::explore(sys, opts);
  EXPECT_EQ(seq.status, verify::Status::Unfinished);
  auto par = verify::par_explore(sys, opts, 2);
  EXPECT_EQ(par.status, verify::Status::Unfinished);
}

}  // namespace
}  // namespace ccref
