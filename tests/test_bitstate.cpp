// Tests for bitstate hashing (supertrace) exploration.
#include <gtest/gtest.h>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/bitstate.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;

TEST(Bitstate, MatchesExactCountOnSmallSpaces) {
  // With ample bits the collision probability is negligible: bitstate DFS
  // visits exactly the states BFS found.
  auto p = protocols::make_migratory();
  for (int n : {1, 2, 3}) {
    RendezvousSystem sys(p, n);
    auto exact = verify::explore(sys);
    ASSERT_EQ(exact.status, verify::Status::Ok);
    auto bit = verify::explore_bitstate(sys, 16u << 20);
    EXPECT_EQ(bit.states, exact.states) << "n=" << n;
    EXPECT_EQ(bit.transitions, exact.transitions) << "n=" << n;
  }
}

TEST(Bitstate, AsyncSmallSpaceExact) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  auto exact = verify::explore(sys);
  ASSERT_EQ(exact.status, verify::Status::Ok);
  auto bit = verify::explore_bitstate(sys, 16u << 20);
  EXPECT_EQ(bit.states, exact.states);
}

TEST(Bitstate, MemoryIsFixedUpFront) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 2);
  auto bit = verify::explore_bitstate(sys, 1u << 20);
  EXPECT_LE(bit.memory_bytes, 1u << 20);
  EXPECT_GE(bit.memory_bytes, (1u << 20) / 2) << "uses most of the budget";
}

TEST(Bitstate, TinyBitArrayUndercounts) {
  // Starved of bits, collisions prune the search: the count is a lower
  // bound, never an overcount.
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  auto exact_states = 39840u;  // known from the exact checker
  auto bit = verify::explore_bitstate(sys, 1024);  // 8K bits for 40k states
  EXPECT_LT(bit.states, exact_states);
  EXPECT_GT(bit.states, 100u) << "still explores a useful fraction";
}

TEST(Bitstate, ViolationsFoundAreReal) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 2);
  ir::StateId hE = p.home.find_state("E");
  auto bit = verify::explore_bitstate(
      sys, 8u << 20, 100000, [hE](const sem::RvState& s) {
        return s.home.state == hE ? std::string("reached E") : std::string();
      });
  EXPECT_EQ(bit.violation, "reached E");
}

TEST(Bitstate, DepthBoundReported) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  auto bit = verify::explore_bitstate(sys, 8u << 20, /*max_depth=*/10);
  EXPECT_TRUE(bit.depth_bounded);
  EXPECT_LE(bit.max_depth, 10u);
}

TEST(Bitstate, CoversHugeSpacesInFixedMemory) {
  // The headline: the async space that was `Unfinished` under the exact
  // 64 MB checker at N=5..6 is coverable (approximately) in 8 MB of bits.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 5);
  auto bit = verify::explore_bitstate(sys, 8u << 20, 1u << 20);
  EXPECT_LE(bit.memory_bytes, 8u << 20);
  // Exact count at N=5 is 436,825; expect the vast majority visited.
  EXPECT_GT(bit.states, 400000u);
}

}  // namespace
}  // namespace ccref
