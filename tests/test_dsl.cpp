// Tests for the textual protocol language: lexing, parsing, diagnostics,
// and the print -> parse round-trip for the paper's protocols.
#include <gtest/gtest.h>

#include "dsl/lexer.hpp"
#include "support/strings.hpp"
#include "dsl/parser.hpp"
#include "ir/print.hpp"
#include "ir/validate.hpp"
#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"

namespace ccref::dsl {
namespace {

// ---- lexer -------------------------------------------------------------------

TEST(Lexer, TokenizesPunctuationAndWords) {
  auto r = lex("state F { r(any j)?req -> GRANT }");
  ASSERT_TRUE(r.error.empty());
  std::vector<Tok> kinds;
  for (const auto& t : r.tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), Tok::Ident);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::Arrow), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), Tok::Query), kinds.end());
  EXPECT_EQ(kinds.back(), Tok::End);
}

TEST(Lexer, TwoCharOperators) {
  auto r = lex(":= += -= == != <= && || ->");
  ASSERT_TRUE(r.error.empty());
  std::vector<Tok> want = {Tok::Assign, Tok::PlusEq, Tok::MinusEq,
                           Tok::EqEq,   Tok::NotEq,  Tok::LessEq,
                           Tok::AndAnd, Tok::OrOr,   Tok::Arrow,
                           Tok::End};
  ASSERT_EQ(r.tokens.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(r.tokens[i].kind, want[i]) << i;
}

TEST(Lexer, CommentsAndPositions) {
  auto r = lex("a // comment with -> tokens\n  b");
  ASSERT_TRUE(r.error.empty());
  ASSERT_EQ(r.tokens.size(), 3u);  // a, b, End
  EXPECT_EQ(r.tokens[1].text, "b");
  EXPECT_EQ(r.tokens[1].line, 2);
  EXPECT_EQ(r.tokens[1].col, 3);
}

TEST(Lexer, ReportsBadCharacter) {
  auto r = lex("a $ b");
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.error_line, 1);
  EXPECT_EQ(r.error_col, 3);
}

// ---- parser ------------------------------------------------------------------

constexpr const char* kPingPong = R"(
protocol pingpong;
message ping;
message pong(int);

home h {
  var j: node;
  var c: int mod 4 = 1;
  state IDLE initial {
    r(any j)?ping -> REPLY
  }
  state REPLY {
    r(j)!pong(c) { c := c + 1 } -> IDLE
  }
}

remote r {
  var got: int mod 4;
  internal THINK {
    tau go -> ASK
  }
  state ASK {
    h!ping -> WAIT
  }
  state WAIT {
    h?pong(got) -> THINK
  }
}
)";

TEST(Parser, ParsesPingPong) {
  auto r = parse(kPingPong);
  ASSERT_TRUE(r.ok()) << r.error_text();
  const auto& p = *r.protocol;
  EXPECT_EQ(p.name, "pingpong");
  EXPECT_EQ(p.messages.size(), 2u);
  EXPECT_EQ(p.home.states.size(), 2u);
  EXPECT_EQ(p.remote.states.size(), 3u);
  EXPECT_EQ(p.home.vars[1].bound, 4u);
  EXPECT_EQ(p.home.vars[1].init, 1u);
  auto diags = ir::validate(p);
  EXPECT_FALSE(ir::has_errors(diags)) << ir::to_string(diags);
}

TEST(Parser, ParsedProtocolExecutes) {
  auto r = parse(kPingPong);
  ASSERT_TRUE(r.ok()) << r.error_text();
  auto result = verify::explore(sem::RendezvousSystem(*r.protocol, 2));
  EXPECT_EQ(result.status, verify::Status::Ok);
  EXPECT_GT(result.states, 5u);
}

TEST(Parser, ForwardStateReferencesWork) {
  // REPLY is referenced before its declaration in kPingPong; also check a
  // same-state self-loop.
  auto r = parse(R"(
protocol t;
message m;
home h {
  var j: node;
  state A initial { r(any j)?m -> B }
  state B { r(j)!m -> A }
}
remote r {
  state S { h!m -> T }
  state T { h?m -> S }
}
)");
  EXPECT_TRUE(r.ok()) << r.error_text();
}

TEST(Parser, ConditionsBindersActionsAndSets) {
  auto r = parse(R"(
protocol sets;
message add;
message probe;
home h {
  var cs: nodeset;
  var t: node;
  state H initial {
    [!empty(cs)] r(pick cs as t)!probe { cs -= {t}; t := none } -> H
    r(any t)?add { cs += {t} } -> H
    [size(cs) <= 1 && true] tau idle -> H
  }
}
remote r {
  state S {
    h!add -> P
  }
  state P {
    h?probe -> S
    tau quit -> S
  }
}
)");
  ASSERT_TRUE(r.ok()) << r.error_text();
  auto diags = ir::validate(*r.protocol);
  EXPECT_FALSE(ir::has_errors(diags)) << ir::to_string(diags);
  const auto& h = r.protocol->home.states[0];
  EXPECT_EQ(h.outputs.size(), 1u);
  EXPECT_EQ(h.outputs[0].to.kind, ir::PeerSel::Kind::AnyInSet);
  EXPECT_NE(h.outputs[0].cond, nullptr);
  EXPECT_EQ(h.taus.size(), 1u);
}

TEST(Parser, ErrorsCarryPositions) {
  auto r = parse("protocol p;\nmessage m\nhome h {}");  // missing ';'
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("3:1"), std::string::npos)
      << r.error_text();
}

TEST(Parser, UnknownStateIsAnError) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  var j: node;
  state A initial { r(any j)?m -> NOWHERE }
}
remote r {
  state S { h!m -> S }
}
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("unknown state 'NOWHERE'"),
            std::string::npos);
}

TEST(Parser, UndeclaredVariableIsAnError) {
  auto r = parse(R"(
protocol p;
message m(int);
home h {
  var j: node;
  state A initial { r(any j)?m(x) -> A }
}
remote r {
  state S { h!m(1) -> S }
}
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("undeclared variable 'x'"),
            std::string::npos);
}

TEST(Parser, ReservedWordsRejectedAsNames) {
  auto r = parse("protocol state;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("reserved"), std::string::npos);
}

TEST(Parser, SelfRejectedInHome) {
  auto r = parse(R"(
protocol p;
message m(node);
home h {
  var j: node;
  state A initial { r(j)!m(self) -> A }
}
remote r {
  state S { h?m -> S }
}
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("self"), std::string::npos);
}

TEST(Parser, IgnoredPayloadFields) {
  auto r = parse(R"(
protocol p;
message m(int, node);
home h {
  var j: node;
  var x: int;
  state A initial { r(any j)?m(x, _) -> A }
}
remote r {
  var n: node;
  state S { h!m(3, self) -> S }
}
)");
  ASSERT_TRUE(r.ok()) << r.error_text();
  EXPECT_EQ(r.protocol->home.states[0].inputs[0].bind_payload[1],
            ir::kNoVar);
}

TEST(Parser, PickOnInputIsRejected) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  var w: nodeset;
  var t: node;
  state A initial { r(pick w as t)?m -> A }
}
remote r {
  state S { h!m -> S }
}
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("'pick' is only valid on output"),
            std::string::npos);
}

TEST(Parser, AnyOnOutputIsRejected) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  var j: node;
  state A initial { r(any j)!m -> A }
}
remote r {
  state S { h?m -> S }
}
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("'any' is only valid on input"),
            std::string::npos);
}

TEST(Parser, MissingArrowIsAnError) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  var j: node;
  state A initial { r(any j)?m A }
}
remote r { state S { h!m -> S } }
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("'->'"), std::string::npos);
}

TEST(Parser, RemoteAddressingRemoteIsRejected) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  var j: node;
  state A initial { r(any j)?m -> A }
}
remote r {
  var k: node;
  state S { r(k)!m -> S }
}
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("only with the home"), std::string::npos);
}

TEST(Parser, HomeAddressingItselfIsRejected) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  state A initial { h?m -> A }
}
remote r { state S { h!m -> S } }
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("cannot address itself"), std::string::npos);
}

TEST(Parser, DuplicateMessageRejected) {
  auto r = parse("protocol p;\nmessage m;\nmessage m;\nhome h {}\nremote r {}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("duplicate message"), std::string::npos);
}

TEST(Parser, DuplicateVariableRejected) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  var x: int;
  var x: bool;
  state A initial { r(any x)?m -> A }
}
remote r { state S { h!m -> S } }
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("duplicate variable"), std::string::npos);
}

TEST(Parser, TrailingSemicolonInActionAllowed) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  var j: node;
  var x: int;
  state A initial { r(any j)?m { x := 1; } -> A }
}
remote r { state S { h!m -> S } }
)");
  EXPECT_TRUE(r.ok()) << r.error_text();
}

TEST(Parser, EmptySetLiteralInExpressions) {
  auto r = parse(R"(
protocol p;
message m;
home h {
  var w: nodeset;
  var j: node;
  state A initial {
    [w == {}] r(any j)?m -> A
  }
}
remote r { state S { h!m -> S } }
)");
  EXPECT_TRUE(r.ok()) << r.error_text();
}

// ---- topology + broadcast -----------------------------------------------------

// A minimal but complete bus protocol: one broadcast with a generalized home
// input, one snoop guard, one point-to-point grant.
constexpr const char* kMiniBus = R"(
protocol minibus;
topology bus;
message Up;
message Gr;
home h {
  var j: node;
  state H initial { r(any j)?Up -> G }
  state G { r(j)!Gr { j := none } -> H }
}
remote r {
  state I initial { tau go -> A }
  state A { bcast!Up -> W }
  state W { h?Gr -> S }
  state S { bcast?Up -> I }
}
)";

TEST(Parser, TopologyBusParses) {
  auto r = parse(kMiniBus);
  ASSERT_TRUE(r.ok()) << r.error_text();
  const ir::Protocol& p = *r.protocol;
  EXPECT_EQ(p.topology, ir::Topology::Bus);
  const ir::State& a = p.remote.state(p.remote.find_state("A"));
  ASSERT_EQ(a.outputs.size(), 1u);
  EXPECT_EQ(a.outputs[0].to.kind, ir::PeerSel::Kind::Bcast);
  const ir::State& s = p.remote.state(p.remote.find_state("S"));
  ASSERT_EQ(s.inputs.size(), 1u);
  EXPECT_EQ(s.inputs[0].from.kind, ir::PeerSrc::Kind::Bcast);
  auto diags = ir::validate(p);
  EXPECT_FALSE(ir::has_errors(diags)) << ir::to_string(diags);
}

TEST(Parser, BcastRequiresBusTopologyWithPosition) {
  // Same protocol minus the topology declaration: the first 'bcast' must be
  // rejected at its own line:column, naming the missing declaration.
  std::string text = kMiniBus;
  text.erase(text.find("topology bus;\n"), 14);
  auto r = parse(text);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("requires 'topology bus;'"),
            std::string::npos)
      << r.error_text();
  EXPECT_NE(r.error_text().find("12:13"), std::string::npos)
      << r.error_text();  // line 12, the 'bcast!Up' guard
}

TEST(Parser, HomeCannotUseBcast) {
  auto r = parse(R"(
protocol p;
topology bus;
message m;
home h {
  var j: node;
  state A initial { bcast!m -> A }
}
remote r { state S { h?m -> S } }
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("the home cannot use 'bcast'"),
            std::string::npos)
      << r.error_text();
}

TEST(Parser, RequesterBinderOnlyOnSnoopGuards) {
  auto r = parse(R"(
protocol p;
topology bus;
message Up;
home h {
  var j: node;
  state H initial { r(any j)?Up -> H }
}
remote r {
  var v: node;
  state A initial { bcast(v)!Up -> A }
}
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("only valid on 'bcast(v)?'"),
            std::string::npos)
      << r.error_text();
}

TEST(Parser, TopologyNeedsBusOrStar) {
  auto r = parse("protocol p;\ntopology ring;\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error_text().find("expected 'bus' or 'star'"),
            std::string::npos)
      << r.error_text();
}

TEST(Parser, BusProtocolRoundTrips) {
  auto first = parse(kMiniBus);
  ASSERT_TRUE(first.ok()) << first.error_text();
  std::string printed = ir::to_string(*first.protocol);
  auto second = parse(printed);
  ASSERT_TRUE(second.ok()) << second.error_text() << "\n--- printed ---\n"
                           << printed;
  auto a = verify::explore(sem::RendezvousSystem(*first.protocol, 3));
  auto b = verify::explore(sem::RendezvousSystem(*second.protocol, 3));
  EXPECT_EQ(a.status, verify::Status::Ok);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
}

// ---- round-trip ---------------------------------------------------------------

class RoundTrip : public testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintParseReprint) {
  ir::Protocol original = std::string(GetParam()) == "migratory"
                              ? protocols::make_migratory()
                              : protocols::make_invalidate();
  std::string text = ir::to_string(original);
  auto parsed = parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error_text() << "\n--- source ---\n"
                           << text;
  // Printing the parsed protocol reproduces the text exactly (modulo the
  // cosmetic guard labels, which print as comments and do not re-parse).
  std::string text2 = ir::to_string(*parsed.protocol);
  auto strip_comments = [](std::string s) {
    std::string out;
    for (auto line : ccref::split(s, '\n')) {
      auto pos = line.find("   //");
      out += std::string(pos == std::string_view::npos ? line
                                                       : line.substr(0, pos));
      out += '\n';
    }
    return out;
  };
  EXPECT_EQ(strip_comments(text), strip_comments(text2));
}

TEST_P(RoundTrip, ParsedProtocolHasIdenticalStateSpace) {
  ir::Protocol original = std::string(GetParam()) == "migratory"
                              ? protocols::make_migratory()
                              : protocols::make_invalidate();
  auto parsed = parse(ir::to_string(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error_text();
  auto a = verify::explore(sem::RendezvousSystem(original, 3));
  auto b = verify::explore(sem::RendezvousSystem(*parsed.protocol, 3));
  EXPECT_EQ(a.status, verify::Status::Ok);
  EXPECT_EQ(b.status, verify::Status::Ok);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.transitions, b.transitions);
}

INSTANTIATE_TEST_SUITE_P(Protocols, RoundTrip,
                         testing::Values("migratory", "invalidate"));

}  // namespace
}  // namespace ccref::dsl
