// Random star-protocol generator for property-based testing.
//
// Generates type-correct protocols inside the paper's §2.4 fragment:
// messages are assigned a direction (remote->home or home->remote) up
// front; remote communication states are either single-output active or
// passive; the home mixes generalized inputs, targeted outputs, and τs.
// Every generated protocol passes ir::validate by construction, so the
// property suites can focus on semantic properties of the refinement:
// Equation-1 soundness on every reachable asynchronous edge and progress
// preservation.
#pragma once

#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace ccref::fuzz {

struct GenOptions {
  int min_msgs = 2, max_msgs = 4;
  int min_states = 2, max_states = 4;  // per process
  double payload_prob = 0.5;           // chance a message carries an int
  double cond_prob = 0.3;              // chance a guard is conditional
  double tau_prob = 0.4;               // chance a passive state gets a τ
};

inline ir::Protocol random_protocol(std::uint64_t seed,
                                    const GenOptions& g = {}) {
  Rng rng(seed);
  ir::ProtocolBuilder b(strf("fuzz%llu", (unsigned long long)seed));

  // ---- messages with fixed directions and known arity ----
  const int nmsgs = static_cast<int>(rng.range(g.min_msgs, g.max_msgs));
  std::vector<ir::MsgId> up, down;  // remote->home, home->remote
  std::vector<int> arity;           // indexed by MsgId
  for (int m = 0; m < nmsgs; ++m) {
    bool with_payload = rng.chance(g.payload_prob);
    ir::MsgId id = b.msg(strf("m%d", m),
                         with_payload ? std::vector<ir::Type>{ir::Type::Int}
                                      : std::vector<ir::Type>{});
    arity.push_back(with_payload ? 1 : 0);
    if (m == 0 || (m > 1 && rng.chance(0.5)))
      up.push_back(id);
    else
      down.push_back(id);
  }
  if (down.empty()) {
    down.push_back(b.msg("mdown"));
    arity.push_back(0);
  }

  // ---- home ----
  auto& h = b.home();
  ir::VarId hj = h.var("j", ir::Type::Node);
  ir::VarId hx = h.var("x", ir::Type::Int, 0, 2);
  const int hn = static_cast<int>(rng.range(g.min_states, g.max_states));
  for (int s = 0; s < hn; ++s) h.comm(strf("H%d", s));

  auto hstate = [&](int s) { return strf("H%d", s); };
  auto h_rand_state = [&]() {
    return hstate(static_cast<int>(rng.range(0, hn - 1)));
  };
  auto hcond = [&]() -> ir::ExprP {
    if (!rng.chance(g.cond_prob)) return nullptr;
    return ir::ex::eq(ir::ex::var(hx), ir::ex::lit(rng.range(0, 1)));
  };
  auto haction = [&]() -> ir::StmtP {
    if (!rng.chance(0.4)) return nullptr;
    return ir::st::assign(hx, ir::ex::add(ir::ex::var(hx), ir::ex::lit(1)));
  };

  // Every up-message has one unconditional receiver state; every
  // down-message one unconditional sender state — so no message is dead by
  // construction. Extra conditional guards are sprinkled on top.
  std::vector<int> up_receiver(up.size()), down_sender(down.size());
  for (std::size_t i = 0; i < up.size(); ++i)
    up_receiver[i] = static_cast<int>(rng.range(0, hn - 1));
  for (std::size_t i = 0; i < down.size(); ++i)
    down_sender[i] = static_cast<int>(rng.range(0, hn - 1));

  for (int s = 0; s < hn; ++s) {
    bool has_guard = false;
    for (std::size_t i = 0; i < up.size(); ++i) {
      bool mandatory = up_receiver[i] == s;
      if (!mandatory && !rng.chance(0.25)) continue;
      has_guard = true;
      auto& ib = h.input(hstate(s), up[i]).from_any(hj);
      if (!mandatory) {
        if (auto c = hcond()) ib.when(c);
      }
      if (arity[up[i]] == 1) ib.bind({hx});
      if (auto a = haction()) ib.act(a);
      ib.go(h_rand_state());
    }
    for (std::size_t i = 0; i < down.size(); ++i) {
      bool mandatory = down_sender[i] == s;
      if (!mandatory && !rng.chance(0.25)) continue;
      has_guard = true;
      auto& ob = h.output(hstate(s), down[i]).to(ir::ex::var(hj));
      if (!mandatory) {
        if (auto c = hcond()) ob.when(c);
      }
      if (arity[down[i]] == 1) ob.pay({ir::ex::var(hx)});
      if (auto a = haction()) ob.act(a);
      ob.go(h_rand_state());
    }
    if (!has_guard || rng.chance(0.2))
      h.tau(hstate(s), strf("t%d", s)).go(h_rand_state());
  }

  // ---- remote ----
  auto& r = b.remote();
  ir::VarId rd = r.var("d", ir::Type::Int, 0, 2);
  const int rn = static_cast<int>(rng.range(g.min_states, g.max_states));
  std::vector<bool> active(rn);
  for (int s = 0; s < rn; ++s) {
    active[s] = rng.chance(0.5);
    r.comm(strf("R%d", s));
  }
  auto rstate = [&](int s) { return strf("R%d", s); };
  auto r_rand_state = [&]() {
    return rstate(static_cast<int>(rng.range(0, rn - 1)));
  };
  for (int s = 0; s < rn; ++s) {
    if (active[s]) {
      ir::MsgId m = up[rng.below(up.size())];
      auto& ob = r.output(rstate(s), m);
      if (arity[m] == 1) ob.pay({ir::ex::var(rd)});
      if (rng.chance(0.4))
        ob.act(ir::st::assign(rd,
                              ir::ex::add(ir::ex::var(rd), ir::ex::lit(1))));
      ob.go(r_rand_state());
    } else {
      int inputs = static_cast<int>(rng.range(1, 2));
      for (int gi = 0; gi < inputs; ++gi) {
        ir::MsgId m = down[rng.below(down.size())];
        auto& ib = r.input(rstate(s), m);
        if (arity[m] == 1) ib.bind({rd});
        ib.go(r_rand_state());
      }
      if (rng.chance(g.tau_prob))
        r.tau(rstate(s), strf("u%d", s)).go(r_rand_state());
    }
  }

  return b.build();
}

}  // namespace ccref::fuzz
