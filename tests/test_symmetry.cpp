// Symmetry (scalarset) reduction: canonicalization must be a true quotient
// — same verification verdicts as the full search with at most as many
// stored states (equal at n=1, strictly fewer once n remotes can actually
// permute), idempotent and invariant across random permutations of a state,
// and counterexample traces reconstructed from orbit representatives must
// replay step-by-step through the *uncanonicalized* transition relation.
#include <gtest/gtest.h>

#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/rng.hpp"
#include "verify/bitstate.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;
using verify::SymmetryMode;

template <class Sys>
verify::CheckResult check(const Sys& sys, SymmetryMode symmetry,
                          unsigned jobs = 1) {
  verify::CheckOptions<Sys> opts;
  opts.want_trace = false;
  opts.symmetry = symmetry;
  // writeupdate async at n=3 exhausts the default (Table-3) 64MB budget in
  // the *full* search — the comparison needs both sides to finish.
  opts.memory_limit = 512u << 20;
  return jobs <= 1 ? verify::explore(sys, opts)
                   : verify::par_explore(sys, opts, jobs);
}

ir::NodePerm random_perm(int n, Rng& rng) {
  ir::NodePerm perm(n);
  for (int i = 0; i < n; ++i) perm[i] = static_cast<std::uint8_t>(i);
  for (int i = n - 1; i > 0; --i)
    std::swap(perm[i], perm[rng.below(static_cast<std::uint64_t>(i) + 1)]);
  return perm;
}

template <class Sys>
std::vector<std::byte> enc(const Sys& sys, const typename Sys::State& s) {
  ByteSink sink;
  sys.encode(s, sink);
  return sink.take();
}

// ---- (a) canonical vs off verdict agreement, every protocol x semantics ----

void expect_same_verdict_fewer_states(const ir::Protocol& p, int n,
                                      const char* what) {
  {
    RendezvousSystem sys(p, n);
    auto full = check(sys, SymmetryMode::Off);
    auto quot = check(sys, SymmetryMode::Canonical);
    EXPECT_EQ(quot.status, full.status) << what << " rendezvous n=" << n;
    EXPECT_LE(quot.states, full.states) << what << " rendezvous n=" << n;
  }
  auto rp = refine::refine(p);
  {
    AsyncSystem sys(rp, n);
    auto full = check(sys, SymmetryMode::Off);
    auto quot = check(sys, SymmetryMode::Canonical);
    EXPECT_EQ(quot.status, full.status) << what << " async n=" << n;
    EXPECT_LE(quot.states, full.states) << what << " async n=" << n;
  }
}

TEST(Symmetry, VerdictAgreesMigratory) {
  expect_same_verdict_fewer_states(protocols::make_migratory(), 3,
                                   "migratory");
}

TEST(Symmetry, VerdictAgreesInvalidate) {
  expect_same_verdict_fewer_states(protocols::make_invalidate(), 3,
                                   "invalidate");
}

TEST(Symmetry, VerdictAgreesWriteUpdate) {
  expect_same_verdict_fewer_states(protocols::make_write_update(), 3,
                                   "writeupdate");
}

TEST(Symmetry, VerdictAgreesLockServer) {
  expect_same_verdict_fewer_states(protocols::make_lock_server(), 3,
                                   "lockserver");
}

// ---- (b) quotient size: equal at n=1, strictly smaller at n >= 3 ----------

TEST(Symmetry, NoReductionAtOneRemote) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  {
    RendezvousSystem sys(p, 1);
    EXPECT_EQ(check(sys, SymmetryMode::Canonical).states,
              check(sys, SymmetryMode::Off).states);
  }
  {
    AsyncSystem sys(rp, 1);
    EXPECT_EQ(check(sys, SymmetryMode::Canonical).states,
              check(sys, SymmetryMode::Off).states);
  }
}

TEST(Symmetry, StrictReductionBothEnginesMigratoryN3) {
  // The acceptance bar: at n >= 3 the quotient must be *strictly* smaller
  // with the same verdict, in the sequential and the parallel engine alike.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  for (unsigned jobs : {1u, 4u}) {
    {
      RendezvousSystem sys(p, 3);
      auto full = check(sys, SymmetryMode::Off, jobs);
      auto quot = check(sys, SymmetryMode::Canonical, jobs);
      EXPECT_EQ(quot.status, full.status) << "jobs=" << jobs;
      EXPECT_LT(quot.states, full.states) << "jobs=" << jobs;
    }
    {
      AsyncSystem sys(rp, 3);
      auto full = check(sys, SymmetryMode::Off, jobs);
      auto quot = check(sys, SymmetryMode::Canonical, jobs);
      EXPECT_EQ(quot.status, full.status) << "jobs=" << jobs;
      EXPECT_LT(quot.states, full.states) << "jobs=" << jobs;
    }
  }
}

TEST(Symmetry, SequentialAndParallelQuotientsAgree) {
  // Orbit counts are engine-independent on Ok runs, exactly like full
  // counts are.
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p);
  for (int n : {2, 3}) {
    RendezvousSystem rv(p, n);
    EXPECT_EQ(check(rv, SymmetryMode::Canonical, 1).states,
              check(rv, SymmetryMode::Canonical, 4).states)
        << "rendezvous n=" << n;
    AsyncSystem as(rp, n);
    EXPECT_EQ(check(as, SymmetryMode::Canonical, 1).states,
              check(as, SymmetryMode::Canonical, 4).states)
        << "async n=" << n;
  }
}

TEST(Symmetry, ComposesWithBitstate) {
  // Ample bits, no collisions: the bitstate walk under symmetry visits
  // exactly the orbit count the exact checker stores.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  auto exact = check(sys, SymmetryMode::Canonical);
  ASSERT_EQ(exact.status, verify::Status::Ok);
  auto bit = verify::explore_bitstate(sys, 16u << 20, 100000, {}, 0,
                                      SymmetryMode::Canonical);
  EXPECT_EQ(bit.states, exact.states);
}

// ---- (c) canonicalization is idempotent and permutation-invariant ---------

/// Walk `steps` random transitions from the initial state, checking at each
/// state that canonical(perm(s)) == canonical(s) for random permutations and
/// that canonicalize is idempotent.
template <class Sys>
void expect_canonical_invariance(const Sys& sys, int n, int steps,
                                 std::uint64_t seed) {
  Rng rng(seed);
  auto state = sys.initial();
  for (int step = 0; step < steps; ++step) {
    auto canon = state;
    sys.canonicalize(canon);
    auto twice = canon;
    sys.canonicalize(twice);
    EXPECT_EQ(enc(sys, twice), enc(sys, canon)) << "not idempotent @" << step;
    for (int k = 0; k < 4; ++k) {
      auto permuted = state;
      sys.permute(permuted, random_perm(n, rng));
      sys.canonicalize(permuted);
      EXPECT_EQ(enc(sys, permuted), enc(sys, canon))
          << "orbit split @" << step;
    }
    auto succs = sys.successors(state);
    if (succs.empty()) break;
    state = succs[rng.below(succs.size())].first;
  }
}

TEST(Symmetry, CanonicalInvariantOnRandomWalksRendezvous) {
  for (const auto& p :
       {protocols::make_migratory(), protocols::make_invalidate(),
        protocols::make_write_update(), protocols::make_lock_server()})
    for (int n : {2, 3, 5})
      expect_canonical_invariance(RendezvousSystem(p, n), n, 60, 7 * n);
}

TEST(Symmetry, CanonicalInvariantOnRandomWalksAsync) {
  for (const auto& p :
       {protocols::make_migratory(), protocols::make_invalidate(),
        protocols::make_write_update(), protocols::make_lock_server()}) {
    auto rp = refine::refine(p);
    for (int n : {2, 3, 4})
      expect_canonical_invariance(AsyncSystem(rp, n), n, 60, 11 * n);
  }
}

TEST(Symmetry, PermuteIsAGroupAction) {
  // Composing two permutations must equal applying their composition — the
  // property that makes "orbit" well-defined at all.
  auto p = protocols::make_invalidate();
  RendezvousSystem sys(p, 4);
  Rng rng(99);
  auto state = sys.initial();
  for (int step = 0; step < 20; ++step) {
    auto a = random_perm(4, rng);
    auto b = random_perm(4, rng);
    ir::NodePerm ab(4);
    for (int i = 0; i < 4; ++i) ab[i] = b[a[i]];
    auto s1 = state;
    sys.permute(s1, a);
    sys.permute(s1, b);
    auto s2 = state;
    sys.permute(s2, ab);
    EXPECT_EQ(enc(sys, s1), enc(sys, s2)) << "@" << step;
    auto succs = sys.successors(state);
    if (succs.empty()) break;
    state = succs[rng.below(succs.size())].first;
  }
}

// ---- (d) traces from the quotient replay through the concrete relation ----

/// Walk the trace strings through the real (uncanonicalized) successor
/// relation: every step must be an actual transition whose label and
/// destination render exactly as recorded.
template <class Sys>
typename Sys::State expect_trace_replays(const Sys& sys,
                                         const verify::CheckResult& r) {
  auto cur = sys.initial();
  sys.canonicalize(cur);  // traces start at the root's representative
  EXPECT_EQ(r.trace.front(), "initial: " + sys.describe(cur));
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_EQ(r.trace[i].find("<trace reconstruction failed>"),
              std::string::npos);
    bool advanced = false;
    for (auto& [succ, label] : sys.successors(cur)) {
      if (label.text + "  =>  " + sys.describe(succ) != r.trace[i]) continue;
      cur = std::move(succ);
      advanced = true;
      break;
    }
    EXPECT_TRUE(advanced) << "step " << i << " is not a concrete transition: "
                          << r.trace[i];
    if (!advanced) break;
  }
  return cur;
}

TEST(Symmetry, RendezvousTraceReplaysConcretely) {
  // Seeded bug: flag any remote that reaches V. The quotient must still
  // produce a concrete, replayable path to a violating state.
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 3);
  const ir::StateId rV = p.remote.find_state("V");
  verify::CheckOptions<RendezvousSystem> opts;
  opts.symmetry = SymmetryMode::Canonical;
  opts.invariant = [&](const sem::RvState& s) -> std::string {
    for (const auto& r : s.remotes)
      if (r.state == rV) return "seeded bug: a remote reached V";
    return "";
  };
  auto r = verify::explore(sys, opts);
  ASSERT_EQ(r.status, verify::Status::InvariantViolated);
  ASSERT_GE(r.trace.size(), 2u);
  auto final_state = expect_trace_replays(sys, r);
  EXPECT_FALSE(opts.invariant(final_state).empty())
      << "replayed endpoint does not violate the seeded invariant";
}

TEST(Symmetry, AsyncTraceReplaysConcretely) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  const ir::StateId rV = p.remote.find_state("V");
  verify::CheckOptions<AsyncSystem> opts;
  opts.symmetry = SymmetryMode::Canonical;
  opts.invariant = [&](const runtime::AsyncState& s) -> std::string {
    for (const auto& r : s.remotes)
      if (r.state == rV) return "seeded bug: a remote reached V";
    return "";
  };
  auto r = verify::explore(sys, opts);
  ASSERT_EQ(r.status, verify::Status::InvariantViolated);
  ASSERT_GE(r.trace.size(), 2u);
  auto final_state = expect_trace_replays(sys, r);
  EXPECT_FALSE(opts.invariant(final_state).empty());
}

TEST(Symmetry, ParallelTraceReplaysConcretely) {
  // The parallel engine's trace may be longer than the BFS-minimal one but
  // must be just as concrete.
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 3);
  const ir::StateId rV = p.remote.find_state("V");
  verify::CheckOptions<RendezvousSystem> opts;
  opts.symmetry = SymmetryMode::Canonical;
  opts.invariant = [&](const sem::RvState& s) -> std::string {
    for (const auto& r : s.remotes)
      if (r.state == rV) return "seeded bug: a remote reached V";
    return "";
  };
  auto r = verify::par_explore(sys, opts, 4);
  ASSERT_EQ(r.status, verify::Status::InvariantViolated);
  ASSERT_GE(r.trace.size(), 2u);
  auto final_state = expect_trace_replays(sys, r);
  EXPECT_FALSE(opts.invariant(final_state).empty());
}

// ---- systems without canonicalize() ---------------------------------------

struct Counter {
  using State = int;
  [[nodiscard]] State initial() const { return 0; }
  [[nodiscard]] std::vector<std::pair<State, sem::Label>> successors(
      const State& s) const {
    if (s >= 3) return {};
    sem::Label l;
    l.text = "inc";
    return {{s + 1, l}};
  }
  void encode(const State& s, ByteSink& sink) const {
    sink.varint(static_cast<std::uint64_t>(s));
  }
  [[nodiscard]] State decode(ByteSource& src) const {
    return static_cast<State>(src.varint());
  }
  [[nodiscard]] std::string describe(const State& s) const {
    return "n=" + std::to_string(s);
  }
};

TEST(Symmetry, CanonicalIsANoOpWithoutSystemSupport) {
  Counter sys;
  verify::CheckOptions<Counter> opts;
  opts.detect_deadlock = false;
  opts.symmetry = SymmetryMode::Canonical;
  auto r = verify::explore(sys, opts);
  EXPECT_EQ(r.status, verify::Status::Ok);
  EXPECT_EQ(r.states, 4u);
}

}  // namespace
}  // namespace ccref
