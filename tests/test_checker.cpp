// Focused tests for verify/: BFS trace reconstruction, status precedence,
// memory accounting, and the describe() output both semantics provide for
// counterexamples.
#include <gtest/gtest.h>

#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"
#include "verify/progress.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;
using sem::RvState;

TEST(Trace, ShortestPathToViolation) {
  // BFS guarantees the counterexample is minimal: reaching V from scratch
  // takes exactly req-rendezvous + gr-rendezvous = 2 steps.
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 2);
  verify::CheckOptions<RendezvousSystem> opts;
  ir::StateId rV = p.remote.find_state("V");
  opts.invariant = [rV](const RvState& s) {
    for (const auto& r : s.remotes)
      if (r.state == rV) return "someone reached V";
    return "";
  };
  auto result = verify::explore(sys, opts);
  ASSERT_EQ(result.status, verify::Status::InvariantViolated);
  // initial + 2 steps.
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_NE(result.trace[0].find("initial"), std::string::npos);
  EXPECT_NE(result.trace[1].find("!req"), std::string::npos);
  EXPECT_NE(result.trace[2].find("!gr"), std::string::npos);
  // Each step carries the full state description.
  EXPECT_NE(result.trace[2].find("h=E"), std::string::npos);
}

TEST(Trace, AsyncTraceLabelsAreTableRows) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 1);
  verify::CheckOptions<AsyncSystem> opts;
  ir::StateId rV = p.remote.find_state("V");
  opts.invariant = [rV](const runtime::AsyncState& s) {
    return s.remotes[0].state == rV && !s.remotes[0].transient
               ? "reached V"
               : "";
  };
  auto result = verify::explore(sys, opts);
  ASSERT_EQ(result.status, verify::Status::InvariantViolated);
  // request -> buffer -> consume -> repl -> deliver: 5 steps + initial.
  ASSERT_EQ(result.trace.size(), 6u);
  EXPECT_NE(result.trace[1].find("r0 C1: request req"), std::string::npos);
  EXPECT_NE(result.trace[3].find("h C1: consume req"), std::string::npos);
  EXPECT_NE(result.trace[4].find("h C2: repl gr"), std::string::npos);
  EXPECT_NE(result.trace[5].find("r0 T1: repl gr"), std::string::npos);
}

TEST(Trace, DisabledWhenNotWanted) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 2);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.want_trace = false;
  opts.invariant = [&](const RvState& s) {
    return s.home.state == p.home.find_state("E") ? "E" : "";
  };
  auto result = verify::explore(sys, opts);
  EXPECT_EQ(result.status, verify::Status::InvariantViolated);
  EXPECT_TRUE(result.trace.empty());
}

TEST(Checker, InvariantCheckedOnInitialState) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 1);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.invariant = [](const RvState&) { return "always broken"; };
  auto result = verify::explore(sys, opts);
  EXPECT_EQ(result.status, verify::Status::InvariantViolated);
  EXPECT_EQ(result.states, 1u);
  ASSERT_EQ(result.trace.size(), 1u);
}

TEST(Checker, TransitionsCountedOnce) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 2);
  auto result = verify::explore(sys);
  ASSERT_EQ(result.status, verify::Status::Ok);
  // Recount by hand.
  std::size_t edges = 0;
  verify::StateSet seen(64u << 20);
  ByteSink sink;
  sys.encode(sys.initial(), sink);
  (void)seen.insert(sink.bytes());
  for (std::uint32_t cur = 0; cur < seen.size(); ++cur) {
    ByteSource src(seen.at(cur));
    for (auto& [succ, label] : sys.successors(sys.decode(src))) {
      ++edges;
      ByteSink s2;
      sys.encode(succ, s2);
      (void)seen.insert(s2.bytes());
    }
  }
  EXPECT_EQ(result.transitions, edges);
  EXPECT_EQ(result.states, seen.size());
}

TEST(Checker, MemoryReportedWithinLimit) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  verify::CheckOptions<AsyncSystem> opts;
  opts.memory_limit = 1u << 20;
  opts.want_trace = false;
  auto result = verify::explore(AsyncSystem(rp, 4), opts);
  EXPECT_EQ(result.status, verify::Status::Unfinished);
  EXPECT_LE(result.memory_bytes, 1u << 20);
  EXPECT_GT(result.states, 0u);
}

TEST(Progress, CountsCompletingEdges) {
  auto p = protocols::make_migratory();
  auto r = verify::check_progress(RendezvousSystem(p, 2));
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_GT(r.completing_edges, 0u);
  EXPECT_GT(r.transitions, r.completing_edges)
      << "τ moves do not complete rendezvous";
}

TEST(Describe, AsyncStateMentionsEverything) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  auto s = sys.initial();
  s.home.transient = true;
  s.home.t_guard = 0;
  s.home.t_target = 1;
  runtime::Msg m;
  m.meta = runtime::Meta::Req;
  m.msg = p.find_message("req");
  m.src = 0;
  s.home.buffer.push_back(m);
  s.up[0].push(runtime::Msg{runtime::Meta::Ack, 0, 0, {}});
  std::string d = sys.describe(s);
  EXPECT_NE(d.find("h=F*"), std::string::npos) << d;       // transient marker
  EXPECT_NE(d.find("->r1"), std::string::npos) << d;       // pending target
  EXPECT_NE(d.find("REQ.req<r0"), std::string::npos) << d; // buffered request
  EXPECT_NE(d.find("up0:"), std::string::npos) << d;       // channel content
  EXPECT_NE(d.find("ACK"), std::string::npos) << d;
}

TEST(Describe, RoundTripAfterMutation) {
  // decode(encode(s)) == s for hand-mutated states, not just reachable ones.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  auto s = sys.initial();
  s.remotes[2].state = p.remote.find_state("V");
  s.remotes[2].store.set(p.remote.find_var("d"), 0);
  s.remotes[1].transient = true;
  s.down[2].push(runtime::Msg{runtime::Meta::Nack, 0, runtime::Msg::kHomeSrc,
                              {}});
  ByteSink sink;
  sys.encode(s, sink);
  ByteSource src(sink.bytes());
  EXPECT_EQ(sys.decode(src), s);
}

}  // namespace
}  // namespace ccref
