// Tests for the asynchronous semantics (Tables 1 and 2), the §4 abstraction
// function and Equation-1 simulation relation, and the behavioural
// differences between refinement variants.
#include <gtest/gtest.h>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/abstraction.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"

namespace ccref {
namespace {

using refine::Options;
using runtime::AsyncState;
using runtime::AsyncSystem;
using runtime::Meta;
using sem::RendezvousSystem;

TEST(Async, InitialStateMirrorsProtocol) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  AsyncState s = sys.initial();
  EXPECT_FALSE(s.home.transient);
  EXPECT_EQ(s.home.state, p.home.initial);
  EXPECT_TRUE(s.home.buffer.empty());
  for (const auto& r : s.remotes) {
    EXPECT_FALSE(r.transient);
    EXPECT_FALSE(r.buffer.has_value());
  }
}

TEST(Async, EncodeDecodeRoundTrip) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  // Walk a few deterministic steps, round-tripping each state.
  AsyncState s = sys.initial();
  for (int step = 0; step < 20; ++step) {
    ByteSink sink;
    sys.encode(s, sink);
    ByteSource src(sink.bytes());
    AsyncState back = sys.decode(src);
    ASSERT_TRUE(src.exhausted());
    ASSERT_EQ(s, back) << "step " << step << ": " << sys.describe(s);
    auto succs = sys.successors(s);
    if (succs.empty()) break;
    s = succs[step % succs.size()].first;
  }
}

TEST(Async, FirstStepsAreRemoteRequests) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  auto succs = sys.successors(sys.initial());
  // Initially: each remote can initiate its fused req; nothing else.
  ASSERT_EQ(succs.size(), 2u);
  for (const auto& [next, label] : succs) {
    EXPECT_EQ(label.sent_req, 1);
    EXPECT_EQ(label.decision, "req");
    EXPECT_FALSE(label.completes_rendezvous);
  }
  // After sending, the remote is transient and its request is in flight.
  const AsyncState& s1 = succs[0].first;
  EXPECT_TRUE(s1.remotes[0].transient);
  ASSERT_EQ(s1.up[0].size(), 1u);
  EXPECT_EQ(s1.up[0].front().meta, Meta::Req);
}

/// Drive one full fused req/gr transaction by hand and count messages:
/// exactly 2 (the §3.3 result), with no acks.
TEST(Async, FusedGrantTakesTwoMessages) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 1);
  AsyncState s = sys.initial();
  int req = 0, ack = 0, nack = 0, repl = 0, steps = 0;
  // Deterministically follow the only enabled transition until r0 is in V.
  const ir::StateId rV = p.remote.find_state("V");
  while (s.remotes[0].state != rV || s.remotes[0].transient) {
    auto succs = sys.successors(s);
    ASSERT_EQ(succs.size(), 1u) << sys.describe(s);
    req += succs[0].second.sent_req;
    ack += succs[0].second.sent_ack;
    nack += succs[0].second.sent_nack;
    repl += succs[0].second.sent_repl;
    s = succs[0].first;
    ASSERT_LT(++steps, 20);
  }
  EXPECT_EQ(req, 1);   // the fused req
  EXPECT_EQ(repl, 1);  // gr doubles as the ack
  EXPECT_EQ(ack, 0);
  EXPECT_EQ(nack, 0);
}

/// Without fusion the same transaction costs 4 messages (req+ack, gr+ack).
TEST(Async, UnfusedGrantTakesFourMessages) {
  auto p = protocols::make_migratory();
  Options opts;
  opts.request_reply_fusion = false;
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 1);
  AsyncState s = sys.initial();
  int req = 0, ack = 0, repl = 0, steps = 0;
  const ir::StateId rV = p.remote.find_state("V");
  while (s.remotes[0].state != rV || s.remotes[0].transient) {
    auto succs = sys.successors(s);
    ASSERT_GE(succs.size(), 1u) << sys.describe(s);
    req += succs[0].second.sent_req;
    ack += succs[0].second.sent_ack;
    repl += succs[0].second.sent_repl;
    s = succs[0].first;
    ASSERT_LT(++steps, 30);
  }
  EXPECT_EQ(req, 2);
  EXPECT_EQ(ack, 2);
  EXPECT_EQ(repl, 0);
}

// ---- full exploration -------------------------------------------------------

struct AsyncCase {
  int n;
  bool fusion;
  const char* name;
};

class AsyncMigratory : public testing::TestWithParam<AsyncCase> {};

TEST_P(AsyncMigratory, SafeDeadlockFreeAndSound) {
  const auto& param = GetParam();
  auto p = protocols::make_migratory();
  Options opts;
  opts.request_reply_fusion = param.fusion;
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, param.n);
  RendezvousSystem rv(p, param.n);

  verify::CheckOptions<AsyncSystem> copts;
  copts.memory_limit = 256u << 20;
  copts.invariant = protocols::migratory_async_invariant(p, param.n);
  copts.edge_check = refine::make_simulation_checker(sys, rv);
  auto result = verify::explore(sys, copts);
  EXPECT_EQ(result.status, verify::Status::Ok)
      << verify::to_string(result.status) << ": " << result.violation
      << (result.trace.empty() ? "" : "\n" + result.trace.back());
  EXPECT_GT(result.states, param.n >= 2 ? 100u : 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AsyncMigratory,
    testing::Values(AsyncCase{1, true, "n1"}, AsyncCase{2, true, "n2"},
                    AsyncCase{1, false, "n1nofuse"},
                    AsyncCase{2, false, "n2nofuse"}),
    [](const auto& info) { return info.param.name; });

TEST(AsyncExplore, InvalidateN2SoundAndSafe) {
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  RendezvousSystem rv(p, 2);
  verify::CheckOptions<AsyncSystem> copts;
  copts.memory_limit = 512u << 20;
  copts.invariant = protocols::invalidate_async_invariant(p, 2);
  copts.edge_check = refine::make_simulation_checker(sys, rv);
  auto result = verify::explore(sys, copts);
  EXPECT_EQ(result.status, verify::Status::Ok)
      << result.violation
      << (result.trace.empty() ? "" : "\n" + result.trace.back());
}

TEST(AsyncExplore, AsyncBlowsUpRelativeToRendezvous) {
  // The essence of Table 3: the asynchronous state space dwarfs the
  // rendezvous one for the same protocol and N.
  auto p = protocols::make_migratory();
  auto rv_result = verify::explore(RendezvousSystem(p, 2));
  auto rp = refine::refine(p);
  verify::CheckOptions<AsyncSystem> copts;
  copts.memory_limit = 256u << 20;
  auto as_result = verify::explore(AsyncSystem(rp, 2), copts);
  ASSERT_EQ(rv_result.status, verify::Status::Ok);
  ASSERT_EQ(as_result.status, verify::Status::Ok);
  EXPECT_GT(as_result.states, rv_result.states * 10);
}

TEST(AsyncExplore, HandDesignElideAckSafe) {
  // The Avalanche hand design (no ack after LR) is still safe, verified
  // directly on the asynchronous state space.
  auto p = protocols::make_migratory();
  Options opts;
  opts.elide_ack = {"LR"};
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 2);
  verify::CheckOptions<AsyncSystem> copts;
  copts.memory_limit = 256u << 20;
  copts.invariant = protocols::migratory_async_invariant(p, 2);
  auto result = verify::explore(sys, copts);
  EXPECT_EQ(result.status, verify::Status::Ok)
      << result.violation
      << (result.trace.empty() ? "" : "\n" + result.trace.back());
}

TEST(AsyncExplore, LargerBufferStillSound) {
  auto p = protocols::make_migratory();
  Options opts;
  opts.home_buffer_capacity = 4;
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 2);
  RendezvousSystem rv(p, 2);
  verify::CheckOptions<AsyncSystem> copts;
  copts.memory_limit = 512u << 20;
  copts.invariant = protocols::migratory_async_invariant(p, 2);
  copts.edge_check = refine::make_simulation_checker(sys, rv);
  auto result = verify::explore(sys, copts);
  EXPECT_EQ(result.status, verify::Status::Ok)
      << result.violation
      << (result.trace.empty() ? "" : "\n" + result.trace.back());
}

TEST(AsyncExplore, DataDomainPropagatesValues) {
  auto p = protocols::make_migratory({.data_domain = 2});
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  RendezvousSystem rv(p, 2);
  verify::CheckOptions<AsyncSystem> copts;
  copts.memory_limit = 512u << 20;
  copts.invariant = protocols::migratory_async_invariant(p, 2);
  copts.edge_check = refine::make_simulation_checker(sys, rv);
  auto result = verify::explore(sys, copts);
  EXPECT_EQ(result.status, verify::Status::Ok)
      << result.violation
      << (result.trace.empty() ? "" : "\n" + result.trace.back());
}

// ---- abstraction ------------------------------------------------------------

TEST(Abstraction, InitialMapsToInitial) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  RendezvousSystem rv(p, 2);
  auto a = refine::abstract(sys, sys.initial());
  ByteSink sa, sb;
  rv.encode(a, sa);
  rv.encode(rv.initial(), sb);
  EXPECT_TRUE(std::equal(sa.bytes().begin(), sa.bytes().end(),
                         sb.bytes().begin(), sb.bytes().end()));
}

TEST(Abstraction, InFlightRequestIsDiscarded) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 1);
  // r0 sends its req: concrete state has r0 transient; abs maps it back.
  auto succs = sys.successors(sys.initial());
  ASSERT_EQ(succs.size(), 1u);
  auto a = refine::abstract(sys, succs[0].first);
  EXPECT_EQ(a.remotes[0].state, p.remote.find_state("I"));
  EXPECT_EQ(a.home.state, p.home.find_state("F"));
}

TEST(Abstraction, RejectsElideAckVariants) {
  auto p = protocols::make_migratory();
  refine::Options opts;
  opts.elide_ack = {"LR"};
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, 1);
  EXPECT_DEATH((void)refine::abstract(sys, sys.initial()), "elide-ack");
}

}  // namespace
}  // namespace ccref
