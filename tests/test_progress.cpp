// Tests for the forward-progress (livelock) analysis — §2.5 / §3.2.
//
// The flagship cases reproduce the paper's buffer-reservation arguments:
// with the progress buffer and ack buffer enabled, the refined protocols
// have no doomed states; disabling either reservation creates the livelock
// the paper warns about (requests nacked forever while a completing
// writeback can never be buffered).
#include <gtest/gtest.h>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/progress.hpp"

namespace ccref {
namespace {

using refine::Options;
using runtime::AsyncSystem;

TEST(Progress, RendezvousMigratoryNeverDoomed) {
  auto p = protocols::make_migratory();
  auto r = verify::check_progress(sem::RendezvousSystem(p, 3));
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_EQ(r.doomed, 0u) << r.doomed_example;
  EXPECT_GT(r.completing_edges, 0u);
}

TEST(Progress, RefinedMigratoryNeverDoomed) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  auto r = verify::check_progress(AsyncSystem(rp, 3));
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_EQ(r.doomed, 0u) << r.doomed_example;
}

TEST(Progress, RefinedInvalidateNeverDoomed) {
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p);
  auto r = verify::check_progress(AsyncSystem(rp, 3));
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_EQ(r.doomed, 0u) << r.doomed_example;
}

TEST(Progress, DisablingReservationsCreatesLivelock) {
  // §3.2's motivating failure: without the buffer reservations the home's
  // buffer fills with requests that cannot complete in its current state,
  // and the one message that could (the owner's relinquish) is nacked
  // forever. Four remotes are needed to fill a k=2 buffer with junk while a
  // revocation is outstanding (owner + requester + two spammers).
  auto p = protocols::make_migratory();
  Options opts;
  opts.progress_buffer = false;
  opts.ack_buffer = false;
  auto rp = refine::refine(p, opts);
  auto r = verify::check_progress(AsyncSystem(rp, 4));
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_GT(r.doomed, 0u);
}

TEST(Progress, ReservationsPreventThatLivelock) {
  // Same configuration with the reservations on: no doomed states.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  auto r = verify::check_progress(AsyncSystem(rp, 4));
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_EQ(r.doomed, 0u) << r.doomed_example;
}

TEST(Progress, HandDesignStillProgresses) {
  auto p = protocols::make_migratory();
  Options opts;
  opts.elide_ack = {"LR"};
  auto rp = refine::refine(p, opts);
  auto r = verify::check_progress(AsyncSystem(rp, 3));
  ASSERT_EQ(r.status, verify::Status::Ok);
  EXPECT_EQ(r.doomed, 0u) << r.doomed_example;
}

TEST(Progress, MemoryExhaustionReportsUnfinished) {
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p);
  auto r = verify::check_progress(AsyncSystem(rp, 3), 64 << 10);
  EXPECT_EQ(r.status, verify::Status::Unfinished);
}

}  // namespace
}  // namespace ccref
