// The snooping bus family (MESI, MOESI, MESIF, Dragon): the four protocols
// must parse from the DSL, satisfy the coherence invariant at the rendezvous
// level with agreeing verdicts and state/transition counts across the whole
// engine matrix ({seq,par} x {sym off,canonical} x {por off,ample} x
// {compress off,collapse}), satisfy `G F completion` liveness, and — once
// refined to the split-transaction bus — still satisfy the invariant with
// matrix-agreeing verdicts.
#include <gtest/gtest.h>

#include "ltl/check.hpp"
#include "protocols/snoop.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "sim/bus.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;
using verify::CompressionMode;
using verify::PorMode;
using verify::Status;
using verify::SymmetryMode;

template <class Sys, class Inv>
verify::CheckResult check(const Sys& sys, Inv inv, PorMode por,
                          SymmetryMode symmetry, CompressionMode compress,
                          unsigned jobs) {
  verify::CheckOptions<Sys> opts;
  opts.want_trace = false;
  opts.por = por;
  opts.symmetry = symmetry;
  opts.compress = compress;
  opts.invariant = std::move(inv);
  opts.memory_limit = 512u << 20;
  return jobs <= 1 ? verify::explore(sys, opts)
                   : verify::par_explore(sys, opts, jobs);
}

// ---- abstract level: invariant + engine-matrix agreement -------------------

void expect_abstract_matrix(const ir::Protocol& p, int n, const char* what) {
  RendezvousSystem sys(p, n);
  auto inv = protocols::snoop_invariant(p, n);
  auto baseline = check(sys, inv, PorMode::Off, SymmetryMode::Off,
                        CompressionMode::Off, 1);
  ASSERT_EQ(baseline.status, Status::Ok) << what << ": " << baseline.violation;
  EXPECT_GT(baseline.states, 1u) << what;
  for (unsigned jobs : {1u, 4u}) {
    for (auto sym : {SymmetryMode::Off, SymmetryMode::Canonical}) {
      for (auto por : {PorMode::Off, PorMode::Ample}) {
        for (auto comp : {CompressionMode::Off, CompressionMode::Collapse}) {
          auto r = check(sys, inv, por, sym, comp, jobs);
          EXPECT_EQ(r.status, Status::Ok)
              << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym)
              << " por=" << static_cast<int>(por)
              << " comp=" << static_cast<int>(comp) << ": " << r.violation;
          // Invariant runs force por off, and the rendezvous system exposes
          // no footprints anyway — every cell explores the same graph, so
          // the counts must agree exactly (modulo the symmetry quotient).
          auto same_sym =
              check(sys, inv, PorMode::Off, sym, CompressionMode::Off, 1);
          EXPECT_EQ(r.states, same_sym.states)
              << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym);
          EXPECT_EQ(r.transitions, same_sym.transitions)
              << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym);
        }
      }
    }
  }
  // The symmetry quotient must genuinely shrink the graph for n >= 2.
  if (n >= 2) {
    auto quo = check(sys, inv, PorMode::Off, SymmetryMode::Canonical,
                     CompressionMode::Off, 1);
    EXPECT_LT(quo.states, baseline.states) << what;
  }
}

TEST(Snoop, AbstractMesiMatrix) {
  expect_abstract_matrix(protocols::make_mesi(), 3, "mesi n=3");
}
TEST(Snoop, AbstractMoesiMatrix) {
  expect_abstract_matrix(protocols::make_moesi(), 3, "moesi n=3");
}
TEST(Snoop, AbstractMesifMatrix) {
  expect_abstract_matrix(protocols::make_mesif(), 3, "mesif n=3");
}
TEST(Snoop, AbstractDragonMatrix) {
  expect_abstract_matrix(protocols::make_dragon(), 3, "dragon n=3");
}

// ---- liveness: every fair run completes bus transactions forever ----------

TEST(Snoop, AbstractLiveness) {
  for (const auto& [name, p] : protocols::make_snoop_family()) {
    RendezvousSystem sys(p, 2);
    verify::LivenessOptions lopts;
    lopts.memory_limit = 512u << 20;
    auto r = ltl::check_ltl(sys, "G F completion", lopts);
    EXPECT_EQ(r.status, Status::Ok) << name << ": " << r.violation;
  }
}

// ---- refinement classifies broadcasts and never fuses them ----------------

TEST(Snoop, RefineClassifiesBroadcasts) {
  auto p = protocols::make_mesi();
  auto rp = refine::refine(p);
  using refine::MsgClass;
  EXPECT_EQ(rp.cls(p.find_message("BusRd")), MsgClass::Broadcast);
  EXPECT_EQ(rp.cls(p.find_message("BusRdX")), MsgClass::Broadcast);
  EXPECT_EQ(rp.cls(p.find_message("BusWB")), MsgClass::Broadcast);
  EXPECT_EQ(rp.cls(p.find_message("Evict")), MsgClass::Normal);
  for (const auto& f : rp.remote_fusions)
    EXPECT_NE(rp.cls(f.request), MsgClass::Broadcast);
}

// ---- refined level: split-transaction bus, invariant + matrix --------------

void expect_refined_matrix(const ir::Protocol& p, int n, const char* what) {
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, n);
  auto inv = protocols::snoop_async_invariant(p, n);
  auto baseline = check(sys, inv, PorMode::Off, SymmetryMode::Off,
                        CompressionMode::Off, 1);
  ASSERT_EQ(baseline.status, Status::Ok) << what << ": " << baseline.violation;
  EXPECT_GT(baseline.states, 1u) << what;
  for (unsigned jobs : {1u, 4u}) {
    for (auto sym : {SymmetryMode::Off, SymmetryMode::Canonical}) {
      for (auto comp : {CompressionMode::Off, CompressionMode::Collapse}) {
        auto r = check(sys, inv, PorMode::Off, sym, comp, jobs);
        EXPECT_EQ(r.status, Status::Ok)
            << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym)
            << " comp=" << static_cast<int>(comp) << ": " << r.violation;
        auto same_sym =
            check(sys, inv, PorMode::Off, sym, CompressionMode::Off, 1);
        EXPECT_EQ(r.states, same_sym.states)
            << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym);
        EXPECT_EQ(r.transitions, same_sym.transitions)
            << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym);
      }
    }
  }
  // POR (no invariant, plain reachability + deadlock): verdict must agree
  // with the full graph while storing at most as many states.
  auto nul = [](const runtime::AsyncState&) { return std::string(); };
  verify::CheckOptions<AsyncSystem> full_opts;
  full_opts.want_trace = false;
  full_opts.memory_limit = 512u << 20;
  auto full = verify::explore(sys, full_opts);
  verify::CheckOptions<AsyncSystem> por_opts = full_opts;
  por_opts.por = PorMode::Ample;
  auto reduced = verify::explore(sys, por_opts);
  EXPECT_EQ(reduced.status, full.status) << what;
  EXPECT_LE(reduced.states, full.states) << what;
  (void)nul;
}

TEST(Snoop, RefinedMesiMatrix) {
  expect_refined_matrix(protocols::make_mesi(), 2, "refined mesi n=2");
}
TEST(Snoop, RefinedMoesiMatrix) {
  expect_refined_matrix(protocols::make_moesi(), 2, "refined moesi n=2");
}
TEST(Snoop, RefinedMesifMatrix) {
  expect_refined_matrix(protocols::make_mesif(), 2, "refined mesif n=2");
}
TEST(Snoop, RefinedDragonMatrix) {
  expect_refined_matrix(protocols::make_dragon(), 2, "refined dragon n=2");
}

// ---- timed bus simulator: drives the verified semantics -------------------

TEST(Snoop, BusSimFinishesDeterministically) {
  // bus_simulate steps sem::RendezvousSystem::successors, so every simulated
  // behaviour is inside the verified state graph by construction; here we
  // pin that runs finish, replay bit-identically under the same seed, and
  // produce the counters the cost model is built around.
  auto w = sim::make_bus_workload(3, 30, 0.3, 0.1, 16, 11);
  for (const auto& [name, p] : protocols::make_snoop_family()) {
    sim::BusOptions opts;
    opts.seed = 11;
    auto one = sim::bus_simulate(p, 3, w, opts);
    auto two = sim::bus_simulate(p, 3, w, opts);
    ASSERT_TRUE(one.finished) << name << ": " << one.stall;
    EXPECT_EQ(one.cycles, two.cycles) << name;
    EXPECT_EQ(one.steps, two.steps) << name;
    EXPECT_EQ(one.bus_transactions, two.bus_transactions) << name;
    EXPECT_GT(one.bus_transactions, 0u) << name;
    EXPECT_GT(one.grants, 0u) << name;
    std::uint64_t completed = 0;
    for (const auto& r : one.remotes) completed += r.ops_completed;
    EXPECT_EQ(completed, one.ops_total) << name;
    if (name == "dragon")
      EXPECT_GT(one.bus_updates, 0u);  // update-based: BusUpd traffic exists
    else
      EXPECT_EQ(one.bus_updates, 0u) << name;
  }
  // The owned state pays off on identical traffic: MOESI serves dirty misses
  // cache-to-cache where MESI reflects them to memory.
  sim::BusOptions opts;
  opts.seed = 11;
  auto mesi = sim::bus_simulate(protocols::make_mesi(), 3, w, opts);
  auto moesi = sim::bus_simulate(protocols::make_moesi(), 3, w, opts);
  EXPECT_LT(moesi.mem_writebacks, mesi.mem_writebacks);
}

}  // namespace
}  // namespace ccref
