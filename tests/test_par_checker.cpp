// The parallel engine must agree with the sequential one: identical status,
// state count, and transition count on every Ok run (exploration order is
// the only thing that differs), and identical status on violation /
// exhaustion runs (the offending state may legitimately differ).
#include <gtest/gtest.h>

#include <algorithm>

#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;
using sem::RvState;

constexpr unsigned kJobs = 4;

template <class Sys>
void expect_engines_agree(const Sys& sys, const char* what) {
  verify::CheckOptions<Sys> opts;
  opts.want_trace = false;
  auto seq = verify::explore(sys, opts);
  const unsigned max_jobs =
      std::max(2u, ThreadPool::default_concurrency());
  for (unsigned jobs : {1u, kJobs, max_jobs}) {
    auto par = verify::par_explore(sys, opts, jobs);
    EXPECT_EQ(par.status, seq.status) << what << " jobs=" << jobs;
    EXPECT_EQ(par.states, seq.states) << what << " jobs=" << jobs;
    EXPECT_EQ(par.transitions, seq.transitions) << what << " jobs=" << jobs;
  }
}

void expect_both_semantics_agree(const ir::Protocol& p, int n,
                                 const char* what) {
  expect_engines_agree(RendezvousSystem(p, n), what);
  auto rp = refine::refine(p);
  expect_engines_agree(AsyncSystem(rp, n), what);
}

TEST(ParChecker, MatchesSequentialMigratory) {
  expect_both_semantics_agree(protocols::make_migratory(), 2, "migratory");
}

TEST(ParChecker, MatchesSequentialInvalidate) {
  expect_both_semantics_agree(protocols::make_invalidate(), 2, "invalidate");
}

TEST(ParChecker, MatchesSequentialWriteUpdate) {
  expect_both_semantics_agree(protocols::make_write_update(), 2,
                              "writeupdate");
}

TEST(ParChecker, MatchesSequentialLockServer) {
  expect_both_semantics_agree(protocols::make_lock_server(), 2, "lockserver");
}

TEST(ParChecker, RendezvousAtLargerN) {
  // More states, more stealing: the parallel totals must still be exact.
  expect_engines_agree(RendezvousSystem(protocols::make_migratory(), 6),
                       "migratory n=6");
}

TEST(ParChecker, UnfinishedStatusMatchesUnderTightBudget) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  verify::CheckOptions<AsyncSystem> opts;
  opts.memory_limit = 1u << 20;
  opts.want_trace = false;
  AsyncSystem sys(rp, 4);
  auto seq = verify::explore(sys, opts);
  auto par = verify::par_explore(sys, opts, kJobs);
  EXPECT_EQ(seq.status, verify::Status::Unfinished);
  EXPECT_EQ(par.status, verify::Status::Unfinished);
  EXPECT_GT(par.states, 0u);
  EXPECT_LE(par.memory_bytes, opts.memory_limit);
}

TEST(ParChecker, InvariantViolationDetectedWithTrace) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 2);
  verify::CheckOptions<RendezvousSystem> opts;
  ir::StateId rV = p.remote.find_state("V");
  opts.invariant = [rV](const RvState& s) {
    for (const auto& r : s.remotes)
      if (r.state == rV) return "someone reached V";
    return "";
  };
  auto par = verify::par_explore(sys, opts, kJobs);
  ASSERT_EQ(par.status, verify::Status::InvariantViolated);
  EXPECT_EQ(par.violation, "someone reached V");
  // The parallel trace is a real path (possibly non-minimal): it starts at
  // the root and every step reconstructs.
  ASSERT_GE(par.trace.size(), 2u);
  EXPECT_NE(par.trace[0].find("initial"), std::string::npos);
  for (const auto& step : par.trace)
    EXPECT_EQ(step.find("<trace reconstruction failed>"), std::string::npos)
        << step;
}

TEST(ParChecker, InvariantViolationOnInitialState) {
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 1);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.invariant = [](const RvState&) { return "always broken"; };
  auto par = verify::par_explore(sys, opts, kJobs);
  EXPECT_EQ(par.status, verify::Status::InvariantViolated);
  EXPECT_EQ(par.states, 1u);
  ASSERT_EQ(par.trace.size(), 1u);
}

TEST(ParChecker, EdgeCheckRuns) {
  // An edge check that rejects every completing rendezvous must fire in both
  // engines; labels must be materialized for its diagnostic.
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 2);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.edge_check = [](const RvState&, const RvState&, const sem::Label& l) {
    return l.completes_rendezvous ? "rendezvous forbidden" : "";
  };
  auto seq = verify::explore(sys, opts);
  auto par = verify::par_explore(sys, opts, kJobs);
  EXPECT_EQ(seq.status, verify::Status::InvariantViolated);
  EXPECT_EQ(par.status, verify::Status::InvariantViolated);
  EXPECT_NE(par.violation.find("edge '"), std::string::npos);
  EXPECT_NE(par.violation.find("rendezvous forbidden"), std::string::npos);
}

TEST(ParChecker, QuietLabelsStillCountMessages) {
  // LabelMode::Quiet must not change enumeration, only skip text.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  auto s = sys.initial();
  auto full = sys.successors(s, sem::LabelMode::Full);
  auto quiet = sys.successors(s, sem::LabelMode::Quiet);
  ASSERT_EQ(full.size(), quiet.size());
  ASSERT_FALSE(full.empty());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].first, quiet[i].first);
    EXPECT_FALSE(full[i].second.text.empty());
    EXPECT_TRUE(quiet[i].second.text.empty());
    EXPECT_EQ(full[i].second.decision, quiet[i].second.decision);
    EXPECT_EQ(full[i].second.messages_sent(),
              quiet[i].second.messages_sent());
    EXPECT_EQ(full[i].second.completes_rendezvous,
              quiet[i].second.completes_rendezvous);
  }
}

}  // namespace
}  // namespace ccref
