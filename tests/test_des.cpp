// Tests for the discrete-event simulator: the event core (calendar queue,
// event pool, histogram), the cost model and trace parser, and — most
// importantly — cross-engine agreement: runtime::AsyncExec executing under
// the DES scheduler must produce the same protocol behaviour (message
// counts, op completions, verdicts) as the random-step sim::Simulator,
// since both claim to implement the Tables 1/2 asynchronous semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sim/des.hpp"
#include "sim/des_workload.hpp"
#include "sim/simulator.hpp"
#include "support/calendar_queue.hpp"
#include "support/event_pool.hpp"
#include "support/rng.hpp"

namespace ccref::sim {
namespace {

using refine::Options;
using runtime::AsyncSystem;

// ---- event core -------------------------------------------------------------

TEST(CalendarQueue, PopsInTimeOrder) {
  CalendarQueue q;
  Rng rng(42);
  std::vector<std::uint64_t> times;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t t = rng.below(100000);
    times.push_back(t);
    q.push(t, static_cast<std::uint32_t>(i));
  }
  std::sort(times.begin(), times.end());
  std::uint64_t t = 0;
  std::uint32_t p = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    ASSERT_TRUE(q.pop(t, p));
    EXPECT_EQ(t, times[i]) << "at pop " << i;
  }
  EXPECT_FALSE(q.pop(t, p));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EnqueueBelowCurrentTimeStillPopsFirst) {
  CalendarQueue q;
  q.push(1000, 1);
  std::uint64_t t = 0;
  std::uint32_t p = 0;
  ASSERT_TRUE(q.pop(t, p));
  EXPECT_EQ(t, 1000u);
  // The cursor sits at day(1000); an earlier enqueue must pull it back.
  q.push(10, 2);
  q.push(2000, 3);
  ASSERT_TRUE(q.pop(t, p));
  EXPECT_EQ(t, 10u);
  EXPECT_EQ(p, 2u);
  ASSERT_TRUE(q.pop(t, p));
  EXPECT_EQ(t, 2000u);
}

TEST(CalendarQueue, TiesBreakByPayload) {
  CalendarQueue q;
  q.push(5, 9);
  q.push(5, 3);
  q.push(5, 7);
  std::uint64_t t = 0;
  std::uint32_t p = 0;
  ASSERT_TRUE(q.pop(t, p));
  EXPECT_EQ(p, 3u);
  ASSERT_TRUE(q.pop(t, p));
  EXPECT_EQ(p, 7u);
  ASSERT_TRUE(q.pop(t, p));
  EXPECT_EQ(p, 9u);
}

TEST(CalendarQueue, SparseFarFutureJump) {
  CalendarQueue q(1);  // 1-cycle days: a huge gap forces the fallback scan
  q.push(1, 1);
  std::uint64_t t = 0;
  std::uint32_t p = 0;
  ASSERT_TRUE(q.pop(t, p));
  q.push(1u << 30, 2);
  ASSERT_TRUE(q.pop(t, p));
  EXPECT_EQ(t, std::uint64_t{1} << 30);
}

TEST(EventPool, RecyclesSlots) {
  EventPool<int> pool;
  auto a = pool.alloc();
  auto b = pool.alloc();
  pool[a] = 1;
  pool[b] = 2;
  EXPECT_EQ(pool.size(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.size(), 1u);
  auto c = pool.alloc();  // must reuse the freed slot
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.capacity(), 2u);
  EXPECT_EQ(pool[b], 2);
}

TEST(LatencyHistogram, ExactForSmallValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 8; ++v) h.record(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.5);
}

TEST(LatencyHistogram, PercentileWithinBucketError) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(100);
  h.record(10000);
  // p50 lands in 100's bucket: upper edge within 12.5% above 100.
  EXPECT_GE(h.percentile(0.5), 100u);
  EXPECT_LE(h.percentile(0.5), 112u);
  EXPECT_EQ(h.percentile(1.0), 10000u);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(1u << 20);
    (i % 2 ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.max(), both.max());
  for (double p : {0.1, 0.5, 0.9, 0.99})
    EXPECT_EQ(a.percentile(p), both.percentile(p)) << p;
}

// ---- cost model -------------------------------------------------------------

TEST(CostModel, C2CFormulaMatchesPaper) {
  CostModel m;  // block_words = 4
  EXPECT_EQ(m.c2c(8), 4 * 4 + 8 + 1u);
  EXPECT_EQ(m.latency(/*data=*/true, /*from_home=*/true, 8),
            m.memory + m.link);
  EXPECT_EQ(m.latency(true, false, 8), m.c2c(8) + m.link);
  EXPECT_EQ(m.latency(false, true, 8), m.link);
}

TEST(CostModel, Presets) {
  EXPECT_TRUE(CostModel::preset("").has_value());
  EXPECT_TRUE(CostModel::preset("avalanche").has_value());
  auto u = CostModel::preset("uniform");
  ASSERT_TRUE(u.has_value());
  EXPECT_TRUE(u->flat);
  EXPECT_EQ(u->latency(true, false, 32), u->link);
  EXPECT_EQ(u->home_occupancy, 0u);
  auto dsm = CostModel::preset("dsm");
  ASSERT_TRUE(dsm.has_value());
  EXPECT_GT(dsm->link, CostModel{}.link);
  EXPECT_FALSE(CostModel::preset("nonsense").has_value());
}

// ---- trace parser -----------------------------------------------------------

TEST(Trace, ParsesRecordsCommentsAndHex) {
  Trace t;
  std::string err;
  ASSERT_TRUE(parse_trace("# header\n"
                          "0 r 0x10 5\n"
                          "1 w 16 0   # trailing comment\n"
                          "\n"
                          "0 rel 0x10 0\n",
                          t, err))
      << err;
  ASSERT_EQ(t.records.size(), 3u);
  EXPECT_EQ(t.records[0].node, 0u);
  EXPECT_EQ(t.records[0].op, "r");
  EXPECT_EQ(t.records[0].addr, 0x10u);
  EXPECT_EQ(t.records[0].think, 5u);
  EXPECT_EQ(t.records[1].addr, 16u);
  EXPECT_EQ(t.num_nodes(), 2u);
}

TEST(Trace, RejectsBadInputWithLineNumbers) {
  Trace t;
  std::string err;
  EXPECT_FALSE(parse_trace("0 frobnicate 1 0\n", t, err));
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_FALSE(parse_trace("0 r 1\n", t, err));  // missing think field
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_FALSE(parse_trace("0 r 1 0\nnotanumber r 1 0\n", t, err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Trace, RejectsSignedFields) {
  // strtoull silently wraps a leading '-' ("-1" becomes 2^64-1), which used
  // to turn a typo'd node id into a 4-billion-node trace. All three numeric
  // fields must reject signed spellings, with the line number in the error.
  Trace t;
  std::string err;
  EXPECT_FALSE(parse_trace("-1 r 0x10 0\n", t, err));
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("bad node id '-1'"), std::string::npos) << err;
  EXPECT_FALSE(parse_trace("0 r 0x10 0\n0 r -16 0\n", t, err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("bad address '-16'"), std::string::npos) << err;
  EXPECT_FALSE(parse_trace("0 r 0x10 -2\n", t, err));
  EXPECT_NE(err.find("bad think time '-2'"), std::string::npos) << err;
  EXPECT_FALSE(parse_trace("+1 r 0x10 0\n", t, err));  // '+' wraps too
  EXPECT_NE(err.find("bad node id '+1'"), std::string::npos) << err;
}

TEST(Trace, LoadMissingFileFails) {
  Trace t;
  std::string err;
  EXPECT_FALSE(load_trace("/nonexistent/trace.txt", t, err));
  EXPECT_FALSE(err.empty());
}

// ---- cross-engine agreement -------------------------------------------------

struct Engines {
  SimStats step;  // random-step simulator
  DesStats des;   // discrete-event simulator
};

Engines run_both_migratory(int n, int cycles, Options opts = {},
                           std::uint64_t seed = 7) {
  opts.channel_capacity = 8;
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, n);
  auto w = migratory_workload(p, n, cycles);
  SimOptions sopts;
  sopts.seed = seed;
  Engines e;
  e.step = simulate(sys, w, sopts);
  WorkloadSource src(w);
  DesOptions dopts;
  dopts.cost = *CostModel::preset("uniform");
  e.des = des_simulate(rp, src, dopts);
  return e;
}

TEST(DesAgreement, MigratorySingleRemoteExactMessages) {
  // One remote, no contention: message counts are schedule-invariant, so
  // both engines must agree exactly (and match test_sim's pinned numbers).
  auto e = run_both_migratory(1, 10);
  ASSERT_TRUE(e.step.finished) << e.step.stall.to_string();
  ASSERT_TRUE(e.des.finished) << e.des.stall.to_string();
  EXPECT_EQ(e.des.ops_total, 20u);
  EXPECT_EQ(e.des.ops_total, e.step.ops_total);
  EXPECT_EQ(e.des.req, 20u);
  EXPECT_EQ(e.des.repl, 10u);
  EXPECT_EQ(e.des.ack, 10u);
  EXPECT_EQ(e.des.nack, 0u);
  EXPECT_EQ(e.des.req, e.step.req);
  EXPECT_EQ(e.des.ack, e.step.ack);
  EXPECT_EQ(e.des.nack, e.step.nack);
  EXPECT_EQ(e.des.repl, e.step.repl);
  EXPECT_DOUBLE_EQ(e.des.msgs_per_op(), 2.0);
  EXPECT_EQ(e.des.completions, e.step.completions);
}

TEST(DesAgreement, MigratoryManyRemotesSameOpsAndVerdict) {
  for (std::uint64_t seed : {7u, 99u, 12345u}) {
    auto e = run_both_migratory(6, 5, {}, seed);
    EXPECT_EQ(e.des.finished, e.step.finished) << seed;
    EXPECT_EQ(e.des.ops_total, e.step.ops_total) << seed;
    EXPECT_EQ(e.des.ops_total, 60u) << seed;
  }
}

Engines run_both_invalidate(int n, int ops, double wf, std::uint64_t seed) {
  Options opts;
  opts.channel_capacity = 8;
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p, opts);
  AsyncSystem sys(rp, n);
  auto w = invalidate_workload(p, n, ops, wf, seed);
  SimOptions sopts;
  sopts.seed = seed;
  Engines e;
  e.step = simulate(sys, w, sopts);
  WorkloadSource src(w);
  DesOptions dopts;
  dopts.cost = *CostModel::preset("uniform");
  e.des = des_simulate(rp, src, dopts);
  return e;
}

TEST(DesAgreement, InvalidateSingleRemoteExactMessages) {
  for (std::uint64_t seed : {3u, 11u}) {
    auto e = run_both_invalidate(1, 10, 0.5, seed);
    ASSERT_TRUE(e.step.finished) << e.step.stall.to_string();
    ASSERT_TRUE(e.des.finished) << e.des.stall.to_string();
    EXPECT_EQ(e.des.ops_total, e.step.ops_total);
    EXPECT_EQ(e.des.req, e.step.req) << seed;
    EXPECT_EQ(e.des.ack, e.step.ack) << seed;
    EXPECT_EQ(e.des.nack, e.step.nack) << seed;
    EXPECT_EQ(e.des.repl, e.step.repl) << seed;
  }
}

TEST(DesAgreement, InvalidateMultiRemoteVerdicts) {
  for (std::uint64_t seed : {3u, 11u, 77u}) {
    auto e = run_both_invalidate(4, 6, 0.4, seed);
    EXPECT_EQ(e.des.finished, e.step.finished) << seed;
    EXPECT_EQ(e.des.ops_total, e.step.ops_total) << seed;
  }
}

TEST(DesAgreement, LockServerCompletes) {
  Options opts;
  opts.channel_capacity = 8;
  auto p = protocols::make_lock_server();
  auto rp = refine::refine(p, opts);
  SyntheticConfig cfg;
  cfg.kind = "lock_server";
  cfg.nodes = 8;
  cfg.ops_per_node = 3;
  cfg.think_mean = 5;
  auto src = SyntheticSource(p, cfg);
  auto stats = des_simulate(rp, src);
  ASSERT_TRUE(stats.finished) << stats.stall.to_string();
  EXPECT_EQ(stats.ops_total, 8u * 3u * 2u);  // acquire + release pairs
  EXPECT_GT(stats.cycles, 0u);
  EXPECT_DOUBLE_EQ(stats.fairness_index(), 1.0);
}

// ---- determinism ------------------------------------------------------------

DesStats run_synthetic(const std::string& kind, std::uint32_t nodes,
                       const DesOptions& dopts, std::uint64_t seed = 1,
                       std::uint64_t addresses = 4) {
  Options opts;
  opts.channel_capacity = 8;
  auto p = kind == "lock_server"
               ? protocols::make_lock_server()
               : (kind == "invalidate" ? protocols::make_invalidate()
                                       : protocols::make_migratory());
  auto rp = refine::refine(p, opts);
  SyntheticConfig cfg;
  cfg.kind = kind;
  cfg.nodes = nodes;
  cfg.ops_per_node = 4;
  cfg.addresses = addresses;
  cfg.think_mean = 16;
  cfg.seed = seed;
  SyntheticSource src(p, cfg);
  return des_simulate(rp, src, dopts);
}

void expect_identical(const DesStats& a, const DesStats& b) {
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.messages(), b.messages());
  EXPECT_EQ(a.ops_total, b.ops_total);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.memory_accesses, b.memory_accesses);
  EXPECT_EQ(a.c2c_transfers, b.c2c_transfers);
  EXPECT_EQ(a.write_backs, b.write_backs);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(0.5), b.latency.percentile(0.5));
  EXPECT_EQ(a.latency.percentile(0.99), b.latency.percentile(0.99));
  EXPECT_EQ(a.finished, b.finished);
}

TEST(Des, DeterministicForSeedAndLanes) {
  DesOptions d;
  auto a = run_synthetic("migratory", 16, d, 5);
  auto b = run_synthetic("migratory", 16, d, 5);
  expect_identical(a, b);
  auto c = run_synthetic("migratory", 16, d, 6);
  EXPECT_TRUE(a.events != c.events || a.messages() != c.messages());
}

TEST(Des, ParallelLanesDeterministicAndComplete) {
  DesOptions one;
  one.lanes = 1;
  DesOptions two;
  two.lanes = 2;
  DesOptions four;
  four.lanes = 4;
  auto s1 = run_synthetic("migratory", 24, one, 9, 8);
  auto s2 = run_synthetic("migratory", 24, two, 9, 8);
  auto s2b = run_synthetic("migratory", 24, two, 9, 8);
  auto s4 = run_synthetic("migratory", 24, four, 9, 8);
  ASSERT_TRUE(s1.finished) << s1.stall.to_string();
  ASSERT_TRUE(s2.finished) << s2.stall.to_string();
  ASSERT_TRUE(s4.finished) << s4.stall.to_string();
  // Lanes partition addresses; every config completes the same workload.
  EXPECT_EQ(s1.ops_total, s2.ops_total);
  EXPECT_EQ(s1.ops_total, s4.ops_total);
  // Same lane count => bit-identical run.
  expect_identical(s2, s2b);
}

// ---- slot revolving door ----------------------------------------------------

TEST(Des, ManyMoreNodesThanSlotsShareOneLock) {
  // 200 clients on one lock address: far beyond the 64 protocol slots, the
  // revolving door must rebind released slots to parked clients.
  Options opts;
  opts.channel_capacity = 8;
  auto p = protocols::make_lock_server();
  auto rp = refine::refine(p, opts);
  SyntheticConfig cfg;
  cfg.nodes = 200;
  cfg.ops_per_node = 2;
  cfg.addresses = 1;
  cfg.think_mean = 3;
  cfg.arrival_window = 500;
  SyntheticSource src(p, cfg);
  auto stats = des_simulate(rp, src);
  ASSERT_TRUE(stats.finished) << stats.stall.to_string();
  EXPECT_EQ(stats.ops_total, 200u * 2u * 2u);
  EXPECT_EQ(stats.instances, 1u);
  EXPECT_GT(stats.fairness_index(), 0.99);
}

// ---- write buffer -----------------------------------------------------------

TEST(Des, WriteBufferAbsorbsStores) {
  DesOptions off;
  DesOptions on;
  on.write_buffer = true;
  auto a = run_synthetic("invalidate", 8, off, 21);
  auto b = run_synthetic("invalidate", 8, on, 21);
  ASSERT_TRUE(a.finished) << a.stall.to_string();
  ASSERT_TRUE(b.finished) << b.stall.to_string();
  EXPECT_EQ(a.ops_total, b.ops_total);
  EXPECT_EQ(a.wbuf_hits, 0u);
  EXPECT_GT(b.wbuf_hits, 0u);
  // Buffered stores skip the protocol: strictly less wire traffic.
  EXPECT_LT(b.messages(), a.messages());
}

// ---- stall diagnostics ------------------------------------------------------

TEST(Des, WedgeProducesStructuredStall) {
  // An op that gates off every decision can never reach its goal: the run
  // must wedge (no events left) and name the blocked op and node.
  auto p = protocols::make_migratory();
  Options opts;
  opts.channel_capacity = 8;
  auto rp = refine::refine(p, opts);
  Workload w;
  w.vocabulary = {"req", "evict", "write"};
  Op impossible;
  impossible.name = "acquire";
  impossible.decisions = {};  // never allowed to send the request
  impossible.goal = p.remote.find_state("V");
  w.per_remote = {{impossible}};
  WorkloadSource src(w);
  auto stats = des_simulate(rp, src);
  EXPECT_FALSE(stats.finished);
  ASSERT_TRUE(stats.stall.stalled());
  EXPECT_EQ(stats.stall.op, "acquire");
  EXPECT_EQ(stats.stall.remote, 0);
  EXPECT_NE(stats.stall.to_string().find("acquire"), std::string::npos);
}

TEST(Des, EventBudgetStall) {
  DesOptions d;
  d.max_events = 10;
  auto stats = run_synthetic("migratory", 8, d, 3);
  EXPECT_FALSE(stats.finished);
  ASSERT_TRUE(stats.stall.stalled());
  EXPECT_NE(stats.stall.reason.find("event budget"), std::string::npos);
}

TEST(Stall, ToStringFormatsContext) {
  Stall s;
  EXPECT_EQ(s.to_string(), "");
  s.reason = "wedged";
  s.op = "w";
  s.remote = 3;
  s.up_occupancy = 1;
  const std::string out = s.to_string();
  EXPECT_NE(out.find("wedged"), std::string::npos);
  EXPECT_NE(out.find("op=w"), std::string::npos);
  EXPECT_NE(out.find("node=3"), std::string::npos);
}

// ---- fairness edge cases ----------------------------------------------------

TEST(DesStatsTest, FairnessIndexEdgeCases) {
  DesStats s;
  EXPECT_DOUBLE_EQ(s.fairness_index(), 1.0);  // no nodes at all
  s.nodes.resize(4);
  EXPECT_DOUBLE_EQ(s.fairness_index(), 1.0);  // zero ops everywhere
  s.nodes[0].completed = 8;
  EXPECT_DOUBLE_EQ(s.fairness_index(), 0.25);  // one node got everything
  for (auto& n : s.nodes) n.completed = 5;
  EXPECT_DOUBLE_EQ(s.fairness_index(), 1.0);
  s.nodes.resize(1);
  EXPECT_DOUBLE_EQ(s.fairness_index(), 1.0);  // single node
}

// ---- trace end-to-end -------------------------------------------------------

TEST(Des, TraceDrivesSimulation) {
  Trace t;
  std::string err;
  ASSERT_TRUE(parse_trace("0 r 0 0\n"
                          "1 w 0 3\n"
                          "0 rel 0 1\n"
                          "1 rel 0 1\n"
                          "0 w 0x40 2\n"
                          "0 rel 0x40 0\n",
                          t, err))
      << err;
  Options opts;
  opts.channel_capacity = 8;
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p, opts);
  TraceSource src(p, t);
  auto stats = des_simulate(rp, src);
  ASSERT_TRUE(stats.finished) << stats.stall.to_string();
  EXPECT_EQ(stats.ops_total, 6u);
  EXPECT_EQ(stats.instances, 2u);  // addresses 0 and 0x40
  EXPECT_EQ(stats.nodes[0].completed, 4u);
  EXPECT_EQ(stats.nodes[1].completed, 2u);
}

// A node re-reading a block it holds in M must complete instantly off the
// exclusive copy (the read's alt-goal): waiting for S would wedge with
// empty channels, since nobody ever downgrades the sole owner.
TEST(Des, ReadAfterOwnWriteServedByExclusiveCopy) {
  Trace t;
  std::string err;
  ASSERT_TRUE(parse_trace("0 w 0 0\n"
                          "0 r 0 2\n"
                          "0 rel 0 1\n",
                          t, err))
      << err;
  Options opts;
  opts.channel_capacity = 8;
  auto p = protocols::make_invalidate();
  auto rp = refine::refine(p, opts);
  TraceSource src(p, t);
  auto stats = des_simulate(rp, src);
  ASSERT_TRUE(stats.finished) << stats.stall.to_string();
  EXPECT_EQ(stats.ops_total, 3u);
}

}  // namespace
}  // namespace ccref::sim
