// Ample-set partial-order reduction: the reduced search must reach the same
// verdicts as the full one — across engines, with and without the symmetry
// quotient, on the shipped protocols and on random §2.4 fragment protocols —
// while storing at most (and on the async Table-3 configs strictly fewer
// than) the full state count. Analyses that must see every state or edge
// (invariants, the Equation-1 edge check, fairness-constrained lassos,
// X-containing formulas) downgrade to the unreduced search and say so.
//
// Also pins down the StateSet budget-accounting fix: after any insert
// outcome, including rollback on exhaustion, the bytes charged to the budget
// equal the bytes the set actually holds.
#include <gtest/gtest.h>

#include "ltl/check.hpp"
#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "random_protocol.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"
#include "verify/progress.hpp"
#include "verify/sharded_state_set.hpp"
#include "verify/state_set.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;
using verify::PorMode;
using verify::SymmetryMode;

template <class Sys>
verify::CheckResult check(const Sys& sys, PorMode por, SymmetryMode symmetry,
                          unsigned jobs = 1) {
  verify::CheckOptions<Sys> opts;
  opts.want_trace = false;
  opts.por = por;
  opts.symmetry = symmetry;
  opts.memory_limit = 512u << 20;
  return jobs <= 1 ? verify::explore(sys, opts)
                   : verify::par_explore(sys, opts, jobs);
}

// ---- verdict agreement: {seq,par} x {sym off,on} x {por off,ample} --------

void expect_agreement_matrix(const ir::Protocol& p, int n, const char* what) {
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, n);
  auto baseline = check(sys, PorMode::Off, SymmetryMode::Off);
  for (unsigned jobs : {1u, 4u}) {
    for (auto sym : {SymmetryMode::Off, SymmetryMode::Canonical}) {
      auto full = check(sys, PorMode::Off, sym, jobs);
      auto reduced = check(sys, PorMode::Ample, sym, jobs);
      EXPECT_EQ(full.status, baseline.status)
          << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym);
      EXPECT_EQ(reduced.status, baseline.status)
          << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym);
      EXPECT_LE(reduced.states, full.states)
          << what << " jobs=" << jobs << " sym=" << static_cast<int>(sym);
    }
  }
}

TEST(Por, VerdictAgreesMigratory) {
  expect_agreement_matrix(protocols::make_migratory(), 3, "migratory");
}

TEST(Por, VerdictAgreesInvalidate) {
  expect_agreement_matrix(protocols::make_invalidate(), 2, "invalidate");
}

TEST(Por, VerdictAgreesWriteUpdate) {
  expect_agreement_matrix(protocols::make_write_update(), 2, "writeupdate");
}

TEST(Por, VerdictAgreesLockServer) {
  expect_agreement_matrix(protocols::make_lock_server(), 3, "lockserver");
}

// ---- strict reduction on the paper's asynchronous configurations ----------

TEST(Por, StrictReductionAsyncTable3Configs) {
  for (const auto& [p, n, what] :
       {std::tuple{protocols::make_migratory(), 2, "migratory n=2"},
        std::tuple{protocols::make_migratory(), 3, "migratory n=3"},
        std::tuple{protocols::make_invalidate(), 2, "invalidate n=2"}}) {
    auto rp = refine::refine(p);
    AsyncSystem sys(rp, n);
    auto full = check(sys, PorMode::Off, SymmetryMode::Off);
    auto reduced = check(sys, PorMode::Ample, SymmetryMode::Off);
    ASSERT_EQ(full.status, verify::Status::Ok) << what;
    EXPECT_EQ(reduced.status, verify::Status::Ok) << what;
    EXPECT_LT(reduced.states, full.states) << what;
  }
}

TEST(Por, NoOpOnRendezvousSemantics) {
  // The rendezvous system exposes no per-edge footprints (no
  // successors_por), so --por ample must change nothing there.
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 3);
  auto full = check(sys, PorMode::Off, SymmetryMode::Off);
  auto reduced = check(sys, PorMode::Ample, SymmetryMode::Off);
  EXPECT_EQ(reduced.status, full.status);
  EXPECT_EQ(reduced.states, full.states);
  EXPECT_EQ(reduced.transitions, full.transitions);
}

// ---- analyses that must see everything downgrade and say so ---------------

TEST(Por, InvariantRunsDowngradeWithNote) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  verify::CheckOptions<AsyncSystem> opts;
  opts.por = PorMode::Ample;
  opts.invariant = [](const runtime::AsyncState&) { return std::string(); };
  for (unsigned jobs : {1u, 4u}) {
    auto r = jobs <= 1 ? verify::explore(sys, opts)
                       : verify::par_explore(sys, opts, jobs);
    EXPECT_EQ(r.status, verify::Status::Ok) << "jobs=" << jobs;
    EXPECT_NE(r.note.find("por downgraded to off"), std::string::npos)
        << "jobs=" << jobs;
    // Downgraded means the full graph: counts match the por-off run.
    EXPECT_EQ(r.states, check(sys, PorMode::Off, SymmetryMode::Off).states)
        << "jobs=" << jobs;
  }
}

TEST(Por, DowngradedTraceStillReplaysConcretely) {
  // A seeded invariant violation with --por ample: the engine downgrades
  // (invariants must see every state) and the produced counterexample must
  // still walk through the concrete transition relation.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 3);
  const ir::StateId rV = p.remote.find_state("V");
  verify::CheckOptions<AsyncSystem> opts;
  opts.por = PorMode::Ample;
  opts.symmetry = SymmetryMode::Canonical;
  opts.invariant = [&](const runtime::AsyncState& s) -> std::string {
    for (const auto& r : s.remotes)
      if (r.state == rV) return "seeded bug: a remote reached V";
    return "";
  };
  auto r = verify::explore(sys, opts);
  ASSERT_EQ(r.status, verify::Status::InvariantViolated);
  EXPECT_NE(r.note.find("por downgraded to off"), std::string::npos);
  ASSERT_GE(r.trace.size(), 2u);
  auto cur = sys.initial();
  sys.canonicalize(cur);
  EXPECT_EQ(r.trace.front(), "initial: " + sys.describe(cur));
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    bool advanced = false;
    for (auto& [succ, label] : sys.successors(cur)) {
      if (label.text + "  =>  " + sys.describe(succ) != r.trace[i]) continue;
      cur = std::move(succ);
      advanced = true;
      break;
    }
    ASSERT_TRUE(advanced) << "step " << i
                          << " is not a concrete transition: " << r.trace[i];
  }
  EXPECT_FALSE(opts.invariant(cur).empty());
}

// ---- random protocols from the §2.4 fragment ------------------------------

TEST(Por, VerdictAgreesOnRandomProtocols) {
  for (std::uint64_t seed : {1u, 2u, 5u, 9u, 13u, 21u, 34u, 55u}) {
    auto p = fuzz::random_protocol(seed);
    auto rp = refine::refine(p);
    AsyncSystem sys(rp, 2);
    auto full = check(sys, PorMode::Off, SymmetryMode::Off);
    for (unsigned jobs : {1u, 4u}) {
      auto reduced = check(sys, PorMode::Ample, SymmetryMode::Off, jobs);
      EXPECT_EQ(reduced.status, full.status)
          << "seed=" << seed << " jobs=" << jobs;
      EXPECT_LE(reduced.states, full.states)
          << "seed=" << seed << " jobs=" << jobs;
    }
  }
}

// ---- progress analysis under POR ------------------------------------------

TEST(Por, ProgressVerdictAgrees) {
  for (const auto& [p, n] : {std::pair{protocols::make_migratory(), 3},
                             std::pair{protocols::make_invalidate(), 2}}) {
    auto rp = refine::refine(p);
    AsyncSystem sys(rp, n);
    verify::ProgressOptions off;
    off.memory_limit = 512u << 20;
    verify::ProgressOptions ample = off;
    ample.por = PorMode::Ample;
    auto full = verify::check_progress(sys, off);
    auto reduced = verify::check_progress(sys, ample);
    ASSERT_EQ(full.status, verify::Status::Ok);
    EXPECT_EQ(reduced.status, full.status);
    // Doomed-state counts are graph-relative, but the *verdict* — does a
    // livelock exist — must agree between the full and reduced graphs.
    EXPECT_EQ(reduced.doomed == 0, full.doomed == 0);
    EXPECT_LE(reduced.states, full.states);
  }
}

TEST(Por, ProgressDetectsSeededLivelockUnderReduction) {
  // Dropping the §3.2 progress-buffer reservation livelocks the migratory
  // protocol; the reduced search must still find doomed states.
  auto p = protocols::make_migratory();
  refine::Options ropts;
  ropts.progress_buffer = false;
  ropts.ack_buffer = false;
  auto rp = refine::refine(p, ropts);
  AsyncSystem sys(rp, 4);
  verify::ProgressOptions off;
  off.memory_limit = 512u << 20;
  verify::ProgressOptions ample = off;
  ample.por = PorMode::Ample;
  auto full = verify::check_progress(sys, off);
  auto reduced = verify::check_progress(sys, ample);
  ASSERT_EQ(full.status, verify::Status::Ok);
  ASSERT_EQ(reduced.status, verify::Status::Ok);
  EXPECT_GT(full.doomed, 0u);
  EXPECT_GT(reduced.doomed, 0u);
}

// ---- LTL: POR only for next-free formulas without fairness ----------------

TEST(Por, LtlVerdictAgreesWithoutFairness) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  for (const char* prop :
       {"G F completion", "G (requested(0) -> F granted(0))"}) {
    verify::LivenessOptions off;
    off.fairness = verify::FairnessMode::None;
    verify::LivenessOptions ample = off;
    ample.por = PorMode::Ample;
    auto full = ltl::check_ltl(sys, prop, off);
    auto reduced = ltl::check_ltl(sys, prop, ample);
    EXPECT_EQ(reduced.status, full.status) << prop;
    EXPECT_TRUE(reduced.note.empty()) << prop << ": " << reduced.note;
    EXPECT_LE(reduced.states, full.states) << prop;
  }
}

TEST(Por, LtlNextFormulaDowngradesWithNote) {
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  verify::LivenessOptions opts;
  opts.fairness = verify::FairnessMode::None;
  opts.por = PorMode::Ample;
  auto r = ltl::check_ltl(sys, "G (completion -> X true)", opts);
  EXPECT_NE(r.note.find("por downgraded to off"), std::string::npos)
      << r.note;
  EXPECT_NE(r.note.find("X"), std::string::npos) << r.note;
}

TEST(Por, LtlFairnessDowngradesWithNote) {
  // Fairness marks live on product frames the ample reduction does not
  // preserve; the engine falls back and reports the same verdict as the
  // unreduced fair search.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 2);
  verify::LivenessOptions off;
  off.fairness = verify::FairnessMode::Weak;
  verify::LivenessOptions ample = off;
  ample.por = PorMode::Ample;
  auto full = ltl::check_ltl(sys, "G F completion", off);
  auto reduced = ltl::check_ltl(sys, "G F completion", ample);
  EXPECT_EQ(reduced.status, full.status);
  EXPECT_EQ(reduced.states, full.states);
  EXPECT_NE(reduced.note.find("por downgraded to off"), std::string::npos)
      << reduced.note;
}

// ---- StateSet budget accounting (the PR's bugfix) -------------------------

TEST(Por, StateSetBudgetMatchesUsageThroughExhaustion) {
  // Regression for the reservation leak: the admission check used to keep
  // its projected reservation when the insert was rejected, so repeated
  // rejected inserts inflated budget().used() past memory_used() and
  // starved sibling shards. The invariant now holds after every outcome.
  verify::StateSet set(24 << 10);
  std::uint64_t id = 0;
  auto bytes = [](std::uint64_t v) {
    std::vector<std::byte> b(16);
    for (std::size_t i = 0; i < b.size(); ++i)
      b[i] = static_cast<std::byte>((v >> ((i % 8) * 8)) & 0xff);
    return b;
  };
  for (;; ++id) {
    auto r = set.insert(bytes(id));
    ASSERT_EQ(set.budget().used(), set.memory_used()) << "after id " << id;
    if (r.outcome == verify::StateSet::Outcome::Exhausted) break;
    ASSERT_LT(id, 100000u);
  }
  // The leak showed up on *repeated* exhaustion: each rejected insert left
  // its projected bytes reserved. Hammer the full set and re-check.
  for (int k = 0; k < 100; ++k) {
    auto r = set.insert(bytes(id + 1 + static_cast<std::uint64_t>(k)));
    EXPECT_EQ(r.outcome, verify::StateSet::Outcome::Exhausted);
    ASSERT_EQ(set.budget().used(), set.memory_used()) << "retry " << k;
  }
  // Lookups of resident states keep the invariant too.
  auto hit = set.insert(bytes(0));
  EXPECT_EQ(hit.outcome, verify::StateSet::Outcome::AlreadyPresent);
  EXPECT_EQ(set.budget().used(), set.memory_used());
}

TEST(Por, SharedBudgetShardsStayReconciled) {
  // Two shards on one budget: after one shard exhausts the pool, the
  // budget's used() must equal the sum of what the shards actually hold —
  // otherwise the sibling is starved by phantom charges.
  verify::MemoryBudget budget(24 << 10);
  verify::StateSet a(budget);
  verify::StateSet b(budget);
  auto bytes = [](std::uint64_t v, std::byte tag) {
    std::vector<std::byte> out(16, tag);
    for (std::size_t i = 0; i < 8; ++i)
      out[i] = static_cast<std::byte>((v >> (i * 8)) & 0xff);
    return out;
  };
  std::uint64_t id = 0;
  while (true) {
    auto r = a.insert(bytes(id++, std::byte{0xaa}));
    ASSERT_EQ(budget.used(), a.memory_used() + b.memory_used());
    if (r.outcome == verify::StateSet::Outcome::Exhausted) break;
    ASSERT_LT(id, 100000u);
  }
  for (int k = 0; k < 50; ++k) {
    (void)a.insert(bytes(id + static_cast<std::uint64_t>(k), std::byte{0xaa}));
    (void)b.insert(bytes(static_cast<std::uint64_t>(k), std::byte{0xbb}));
    ASSERT_EQ(budget.used(), a.memory_used() + b.memory_used())
        << "retry " << k;
  }
}

}  // namespace
}  // namespace ccref
