// The lock-free building blocks under direct attack: Chase–Lev deque
// owner/thief races, CAS insert-if-absent under contention, budget
// exhaustion mid-CAS (the budget == memory_used invariant), termination
// corner cases (single-state spaces), and a jobs=max fuzz agreement run
// on all four protocols — the pieces the par/seq agreement matrices
// exercise only indirectly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "protocols/invalidate.hpp"
#include "protocols/lockserver.hpp"
#include "protocols/migratory.hpp"
#include "protocols/writeupdate.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/atomic_table.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"
#include "support/work_steal_deque.hpp"
#include "verify/checker.hpp"
#include "verify/memory_budget.hpp"
#include "verify/par_checker.hpp"
#include "verify/sharded_state_set.hpp"

namespace ccref {
namespace {

using runtime::AsyncSystem;
using sem::RendezvousSystem;
using verify::MemoryBudget;
using verify::ShardedStateSet;

std::vector<std::byte> state_bytes(std::uint64_t id, std::size_t len = 16) {
  std::vector<std::byte> b(len);
  for (std::size_t i = 0; i < len; ++i)
    b[i] = static_cast<std::byte>((id >> ((i % 8) * 8)) & 0xff);
  return b;
}

// ---- Chase–Lev deque --------------------------------------------------------

TEST(WorkStealDeque, OwnerLifoThiefFifo) {
  WorkStealDeque<std::uint64_t*> dq;
  std::uint64_t vals[3] = {1, 2, 3};
  for (auto& v : vals) dq.push(&v);
  // Owner pops newest first...
  EXPECT_EQ(dq.pop(), &vals[2]);
  // ...thieves steal oldest first.
  EXPECT_EQ(dq.steal(), &vals[0]);
  EXPECT_EQ(dq.pop(), &vals[1]);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(WorkStealDeque, GrowsPastInitialCapacity) {
  WorkStealDeque<std::uint64_t*> dq(8);
  std::vector<std::uint64_t> vals(1000);
  for (auto& v : vals) dq.push(&v);
  EXPECT_EQ(dq.size(), vals.size());
  for (std::size_t i = vals.size(); i-- > 0;) EXPECT_EQ(dq.pop(), &vals[i]);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(WorkStealDeque, EveryItemTakenExactlyOnceUnderTheft) {
  // One owner pushes/pops while thieves hammer steal(); every pushed item
  // must surface exactly once across all takers — including the frontier
  // draining DURING a steal (the owner pops the deque dry while a thief
  // holds a stale top index; the CAS arbitration must not duplicate or
  // lose the last item).
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealDeque<std::uint64_t*> dq(8);
  std::vector<std::uint64_t> vals(kItems);
  for (int i = 0; i < kItems; ++i) vals[i] = static_cast<std::uint64_t>(i);

  std::vector<std::atomic<int>> taken(kItems);
  for (auto& t : taken) t.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t)
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (std::uint64_t* p = dq.steal())
          taken[static_cast<std::size_t>(*p)].fetch_add(1);
      }
      // Final sweep so nothing is stranded when the owner quits first.
      while (std::uint64_t* p = dq.steal())
        taken[static_cast<std::size_t>(*p)].fetch_add(1);
    });

  // Owner: push in bursts, pop between bursts to force last-item races.
  std::size_t next = 0;
  while (next < kItems) {
    for (int burst = 0; burst < 37 && next < kItems; ++burst)
      dq.push(&vals[next++]);
    for (int burst = 0; burst < 19; ++burst) {
      if (std::uint64_t* p = dq.pop())
        taken[static_cast<std::size_t>(*p)].fetch_add(1);
      else
        break;
    }
  }
  while (std::uint64_t* p = dq.pop())
    taken[static_cast<std::size_t>(*p)].fetch_add(1);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (int i = 0; i < kItems; ++i)
    ASSERT_EQ(taken[i].load(), 1) << "item " << i;
}

// ---- AtomicByteTable --------------------------------------------------------

TEST(AtomicByteTable, InsertLookupRoundTrip) {
  MemoryBudget budget(1 << 20);
  AtomicByteTable<MemoryBudget> table(budget, 64, 4096,
                                      /*track_parents=*/true);
  auto s1 = state_bytes(1), s2 = state_bytes(2);
  auto r1 = table.insert(s1, hash_bytes(s1), 7);
  ASSERT_EQ(r1.outcome, InsertOutcome::Inserted);
  auto r2 = table.insert(s2, hash_bytes(s2), 9);
  ASSERT_EQ(r2.outcome, InsertOutcome::Inserted);
  auto dup = table.insert(s1, hash_bytes(s1), 99);
  EXPECT_EQ(dup.outcome, InsertOutcome::AlreadyPresent);
  EXPECT_EQ(dup.ref, r1.ref);
  // Duplicate insert never overwrites the recorded parent.
  EXPECT_EQ(table.parent_at(r1.ref), 7u);
  auto stored = table.at(r2.ref);
  EXPECT_TRUE(std::equal(s2.begin(), s2.end(), stored.begin(), stored.end()));
  EXPECT_EQ(table.size(), 2u);
}

TEST(AtomicByteTable, ResizesThroughManyInserts) {
  MemoryBudget budget(8 << 20);
  AtomicByteTable<MemoryBudget> table(budget, 64, 4096, false);
  for (std::uint64_t id = 0; id < 20000; ++id) {
    auto s = state_bytes(id);
    ASSERT_EQ(table.insert(s, hash_bytes(s)).outcome,
              InsertOutcome::Inserted);
  }
  for (std::uint64_t id = 0; id < 20000; ++id) {
    auto s = state_bytes(id);
    ASSERT_EQ(table.insert(s, hash_bytes(s)).outcome,
              InsertOutcome::AlreadyPresent);
  }
}

TEST(AtomicByteTable, ContendedInsertsDedupeExactly) {
  // All threads insert the SAME key range concurrently: exactly one
  // Inserted per key, everyone agrees on the ref, and concurrent resizes
  // lose nothing.
  constexpr std::uint64_t kUniverse = 8000;
  constexpr int kThreads = 4;
  MemoryBudget budget(16 << 20);
  AtomicByteTable<MemoryBudget> table(budget, 64, 4096, false);
  std::atomic<std::size_t> inserted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      std::size_t mine = 0;
      for (std::uint64_t id = 0; id < kUniverse; ++id) {
        auto s = state_bytes(id);
        auto r = table.insert(s, hash_bytes(s));
        ASSERT_NE(r.outcome, InsertOutcome::Exhausted);
        if (r.outcome == InsertOutcome::Inserted) ++mine;
      }
      inserted.fetch_add(mine);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(inserted.load(), kUniverse);
  EXPECT_EQ(table.size(), kUniverse);
}

TEST(AtomicByteTable, BudgetEqualsChargedThroughExhaustion) {
  // The budget == memory-held invariant must hold at every step, INCLUDING
  // inserts that exhaust mid-CAS (claim made, pool refuses, claim rolled
  // back): chunks and slot arrays are charged exactly when allocated.
  MemoryBudget budget(64 << 10);
  AtomicByteTable<MemoryBudget> table(budget, 64, 1024, false);
  bool exhausted = false;
  for (std::uint64_t id = 0; id < 100000; ++id) {
    auto s = state_bytes(id);
    auto r = table.insert(s, hash_bytes(s));
    ASSERT_EQ(budget.used(), table.charged()) << "after id " << id;
    ASSERT_LE(budget.used(), budget.limit());
    if (r.outcome == InsertOutcome::Exhausted) {
      exhausted = true;
      break;
    }
  }
  ASSERT_TRUE(exhausted);
  // Accepted records survive a post-exhaustion dedupe sweep.
  const std::size_t n = table.size();
  EXPECT_GT(n, 100u);
  for (std::uint64_t id = 0; id < 10; ++id) {
    auto s = state_bytes(id);
    EXPECT_EQ(table.insert(s, hash_bytes(s)).outcome,
              InsertOutcome::AlreadyPresent);
  }
  EXPECT_EQ(table.size(), n);
}

TEST(AtomicByteTable, ConcurrentExhaustionKeepsBudgetExact) {
  // 4 threads race a tiny budget to exhaustion; whatever interleaving the
  // scheduler picks, charged bytes mirror the budget exactly afterwards
  // and the limit is never burst.
  constexpr int kThreads = 4;
  MemoryBudget budget(48 << 10);
  AtomicByteTable<MemoryBudget> table(budget, 64, 1024, false);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::uint64_t id = t * 100000; id < t * 100000 + 20000; ++id) {
        auto s = state_bytes(id);
        (void)table.insert(s, hash_bytes(s));
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(budget.used(), table.charged());
  EXPECT_LE(budget.used(), budget.limit());
  EXPECT_GT(table.size(), 100u);
}

// ---- ShardedStateSet over the lock-free core --------------------------------

TEST(LockFreeShardedSet, CollapseConcurrentInsertsAgree) {
  // Compressed shards under concurrent insertion: the dictionaries'
  // lock-free hit path and spinlocked miss path must still produce one
  // dense index per distinct component, so the set holds exactly the
  // union afterwards.
  constexpr std::uint64_t kUniverse = 3000;
  ShardedStateSet set(8 << 20, 4, /*track_parents=*/false,
                      verify::CompressionMode::Collapse);
  std::vector<ComponentMark> marks{{8, 0}, {16, 1}, {24, 2}};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (std::uint64_t id = 0; id < kUniverse; ++id)
        (void)set.insert(state_bytes(id, 32), marks);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(set.size(), kUniverse);
  for (std::uint64_t id = 0; id < kUniverse; ++id) {
    auto s = state_bytes(id, 32);
    auto r = set.insert(s, marks);
    ASSERT_EQ(r.outcome, ShardedStateSet::Outcome::AlreadyPresent) << id;
    auto stored = set.at(r.ref);
    ASSERT_TRUE(
        std::equal(s.begin(), s.end(), stored.begin(), stored.end()));
  }
}

// ---- termination corner cases ----------------------------------------------

TEST(LockFreeParChecker, SingleStateSpaceTerminates) {
  // A root whose only successors are itself: the frontier drains after one
  // expansion and every idle worker must observe in_flight == 0 and exit —
  // with many more workers than work, this is the pure termination-detector
  // path.
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 1);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.want_trace = false;
  auto seq = verify::explore(sys, opts);
  for (unsigned jobs : {1u, 8u}) {
    auto par = verify::par_explore(sys, opts, jobs);
    EXPECT_EQ(par.status, seq.status) << "jobs=" << jobs;
    EXPECT_EQ(par.states, seq.states) << "jobs=" << jobs;
    EXPECT_EQ(par.transitions, seq.transitions) << "jobs=" << jobs;
  }
}

TEST(LockFreeParChecker, ViolationOnRootWithManyIdleWorkers) {
  // The root violates: no item is ever pushed, workers must all exit via
  // the stop flag / zero counter without touching a frontier.
  auto p = protocols::make_migratory();
  RendezvousSystem sys(p, 1);
  verify::CheckOptions<RendezvousSystem> opts;
  opts.invariant = [](const sem::RvState&) { return "always broken"; };
  auto par = verify::par_explore(sys, opts, 8);
  EXPECT_EQ(par.status, verify::Status::InvariantViolated);
  EXPECT_EQ(par.states, 1u);
}

TEST(LockFreeParChecker, ExhaustionRaceStillBoundsMemory) {
  // Many workers race one tiny budget; the run must end (no lost
  // decrement deadlock), report Unfinished, and never burst the limit.
  auto p = protocols::make_migratory();
  auto rp = refine::refine(p);
  AsyncSystem sys(rp, 4);
  verify::CheckOptions<AsyncSystem> opts;
  opts.memory_limit = 1u << 20;
  opts.want_trace = false;
  auto par = verify::par_explore(sys, opts, 8);
  EXPECT_EQ(par.status, verify::Status::Unfinished);
  EXPECT_GT(par.states, 0u);
  EXPECT_LE(par.memory_bytes, opts.memory_limit);
}

// ---- jobs=max fuzz: all four protocols, every reduction composed -----------

TEST(LockFreeParChecker, JobsMaxFuzzAgreementAllProtocols) {
  const unsigned jobs = std::max(2u, ThreadPool::default_concurrency());
  const ir::Protocol protos[] = {
      protocols::make_migratory(), protocols::make_invalidate(),
      protocols::make_write_update(), protocols::make_lock_server()};
  for (const auto& p : protos) {
    auto rp = refine::refine(p);
    AsyncSystem sys(rp, 2);
    for (auto compress :
         {verify::CompressionMode::Off, verify::CompressionMode::Collapse}) {
      for (auto por : {verify::PorMode::Off, verify::PorMode::Ample}) {
        verify::CheckOptions<AsyncSystem> opts;
        opts.want_trace = false;
        opts.compress = compress;
        opts.por = por;
        opts.symmetry = verify::SymmetryMode::Canonical;
        auto seq = verify::explore(sys, opts);
        auto par = verify::par_explore(sys, opts, jobs);
        ASSERT_EQ(par.status, seq.status)
            << p.name << " compress=" << static_cast<int>(compress)
            << " por=" << static_cast<int>(por);
        if (seq.status == verify::Status::Ok &&
            por == verify::PorMode::Off) {
          // Exact-count agreement holds only for the full state space;
          // under Ample the two engines pick different (equally sound)
          // reduced spaces because ample choices are order-dependent.
          ASSERT_EQ(par.states, seq.states) << p.name;
          ASSERT_EQ(par.transitions, seq.transitions) << p.name;
        } else if (seq.status == verify::Status::Ok) {
          ASSERT_GT(par.states, 0u) << p.name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ccref
