// Unit tests for src/support: hashing, node sets, RNG, byte codec, strings,
// tables, CLI parsing.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <set>
#include <sstream>

#include "support/bytes.hpp"
#include "support/hash.hpp"
#include "support/node_set.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/cli.hpp"

namespace ccref {
namespace {

// ---- hash ------------------------------------------------------------------

std::uint64_t hash_str(std::string_view s, std::uint64_t seed = 1) {
  return hash_bytes(std::as_bytes(std::span(s.data(), s.size())), seed);
}

TEST(Hash, DeterministicAcrossCalls) {
  EXPECT_EQ(hash_str("hello"), hash_str("hello"));
  EXPECT_EQ(hash_str(""), hash_str(""));
}

TEST(Hash, DiffersOnContent) {
  EXPECT_NE(hash_str("hello"), hash_str("hellp"));
  EXPECT_NE(hash_str("ab"), hash_str("ba"));
  EXPECT_NE(hash_str("a"), hash_str("aa"));
}

TEST(Hash, DiffersOnSeed) {
  EXPECT_NE(hash_str("hello", 1), hash_str("hello", 2));
}

TEST(Hash, LengthBoundaries) {
  // Exercise the 0/4/8/16-byte code paths.
  std::string s;
  std::set<std::uint64_t> seen;
  for (int len = 0; len <= 40; ++len) {
    seen.insert(hash_str(s));
    s.push_back(static_cast<char>('a' + (len % 26)));
  }
  EXPECT_EQ(seen.size(), 41u) << "collision among trivial inputs";
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(0, 0), 0u);
}

// Collapse-compression dictionary keys are mostly 1-4 bytes; the finalizer
// must keep such short inputs collision-free and well spread. Enumerates
// every 1- and 2-byte key plus constrained 3-/4-byte alphabets and demands
// zero 64-bit collisions across the whole set and a sane low-bit bucket
// distribution (what an open-addressed table actually indexes by).
TEST(Hash, ShortInputCollisionRate) {
  std::set<std::uint64_t> seen;
  std::vector<std::size_t> buckets(256, 0);
  std::size_t total = 0;
  auto feed = [&](std::span<const std::byte> key) {
    const std::uint64_t h = hash_bytes(key);
    ASSERT_TRUE(seen.insert(h).second)
        << "64-bit collision on a " << key.size() << "-byte key";
    ++buckets[h & 0xff];
    ++total;
  };
  std::byte k[4];
  for (unsigned a = 0; a < 256; ++a) {
    k[0] = static_cast<std::byte>(a);
    feed({k, 1});
  }
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; ++b) {
      k[0] = static_cast<std::byte>(a);
      k[1] = static_cast<std::byte>(b);
      feed({k, 2});
    }
  // 3-byte keys over a 32-symbol alphabet, 4-byte keys over 16 symbols:
  // 32768 + 65536 more keys without the full 2^24/2^32 blow-up.
  for (unsigned a = 0; a < 32; ++a)
    for (unsigned b = 0; b < 32; ++b)
      for (unsigned c = 0; c < 32; ++c) {
        k[0] = static_cast<std::byte>(a * 8);
        k[1] = static_cast<std::byte>(b * 8);
        k[2] = static_cast<std::byte>(c * 8);
        feed({k, 3});
      }
  for (unsigned a = 0; a < 16; ++a)
    for (unsigned b = 0; b < 16; ++b)
      for (unsigned c = 0; c < 16; ++c)
        for (unsigned d = 0; d < 16; ++d) {
          k[0] = static_cast<std::byte>(a * 16);
          k[1] = static_cast<std::byte>(b * 16);
          k[2] = static_cast<std::byte>(c * 16);
          k[3] = static_cast<std::byte>(d * 16);
          feed({k, 4});
        }
  // Uniform expectation is total/256 per low-byte bucket; allow 2x skew.
  const std::size_t expect = total / 256;
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_GT(buckets[i], expect / 2) << "bucket " << i << " underloaded";
    EXPECT_LT(buckets[i], expect * 2) << "bucket " << i << " overloaded";
  }
}

// ---- NodeSet ---------------------------------------------------------------

TEST(NodeSet, StartsEmpty) {
  NodeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
}

TEST(NodeSet, AddRemoveContains) {
  NodeSet s;
  s.add(3);
  s.add(17);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(17));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 2);
  s.remove(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
  s.remove(3);  // removing an absent element is a no-op
  EXPECT_EQ(s.size(), 1);
}

TEST(NodeSet, AllOfN) {
  EXPECT_EQ(NodeSet::all(0).size(), 0);
  EXPECT_EQ(NodeSet::all(5).size(), 5);
  EXPECT_EQ(NodeSet::all(64).size(), 64);
  EXPECT_TRUE(NodeSet::all(5).contains(4));
  EXPECT_FALSE(NodeSet::all(5).contains(5));
}

TEST(NodeSet, FirstAndNext) {
  NodeSet s;
  s.add(5);
  s.add(9);
  s.add(63);
  EXPECT_EQ(s.first(), 5);
  EXPECT_EQ(s.next_after(5), 9);
  EXPECT_EQ(s.next_after(9), 63);
  EXPECT_EQ(s.next_after(63), -1);
}

TEST(NodeSet, Iteration) {
  NodeSet s;
  s.add(0);
  s.add(2);
  s.add(40);
  std::vector<int> got;
  for (NodeId id : s) got.push_back(id);
  EXPECT_EQ(got, (std::vector<int>{0, 2, 40}));
}

TEST(NodeSet, EqualityIsValueBased) {
  NodeSet a, b;
  a.add(1);
  b.add(1);
  EXPECT_EQ(a, b);
  b.add(2);
  EXPECT_NE(a, b);
}

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng r(3);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo |= (v == -2);
    hi |= (v == 2);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// ---- bytes -----------------------------------------------------------------

TEST(Bytes, RoundTripFixedWidths) {
  ByteSink sink;
  sink.u8(0xab);
  sink.u16(0x1234);
  sink.u32(0xdeadbeef);
  sink.u64(0x0123456789abcdefull);
  ByteSource src(sink.bytes());
  EXPECT_EQ(src.u8(), 0xab);
  EXPECT_EQ(src.u16(), 0x1234);
  EXPECT_EQ(src.u32(), 0xdeadbeefu);
  EXPECT_EQ(src.u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(src.exhausted());
}

TEST(Bytes, VarintRoundTrip) {
  std::vector<std::uint64_t> values = {0,    1,    127,  128,   300,
                                       1u << 20, ~0ull, 0x8080, 42};
  ByteSink sink;
  for (auto v : values) sink.varint(v);
  ByteSource src(sink.bytes());
  for (auto v : values) EXPECT_EQ(src.varint(), v);
  EXPECT_TRUE(src.exhausted());
}

TEST(Bytes, VarintSmallValuesAreOneByte) {
  ByteSink sink;
  sink.varint(127);
  EXPECT_EQ(sink.size(), 1u);
  sink.varint(128);
  EXPECT_EQ(sink.size(), 3u);
}

TEST(Bytes, CanonicalEncoding) {
  ByteSink a, b;
  a.varint(1000);
  b.varint(1000);
  EXPECT_TRUE(std::equal(a.bytes().begin(), a.bytes().end(),
                         b.bytes().begin(), b.bytes().end()));
}

TEST(Bytes, PlainSinkIgnoresBoundaries) {
  ByteSink sink;
  sink.u32(7);
  sink.boundary(3);  // no mark store attached: must be a no-op
  sink.u32(9);
  EXPECT_EQ(sink.size(), 8u);
}

TEST(Bytes, ComponentSinkRecordsBoundaries) {
  ComponentSink sink;
  sink.u32(7);
  sink.boundary(0);
  sink.u16(3);
  sink.boundary(2);
  ASSERT_EQ(sink.marks().size(), 2u);
  EXPECT_EQ(sink.marks()[0].end, 4u);
  EXPECT_EQ(sink.marks()[0].cls, 0u);
  EXPECT_EQ(sink.marks()[1].end, 6u);
  EXPECT_EQ(sink.marks()[1].cls, 2u);
}

TEST(Bytes, ComponentSinkRawShiftsEmbeddedMarks) {
  // Encode a fragment with its own marks, then splice it into a larger
  // encoding after a prefix — embedded mark offsets must shift by the base.
  ComponentSink inner;
  inner.u16(1);
  inner.boundary(1);
  inner.u8(2);
  inner.boundary(1);

  ComponentSink outer;
  outer.u32(0xfeed);
  outer.boundary(4);
  outer.raw(inner.bytes(), inner.marks());
  ASSERT_EQ(outer.marks().size(), 3u);
  EXPECT_EQ(outer.marks()[0].end, 4u);
  EXPECT_EQ(outer.marks()[0].cls, 4u);
  EXPECT_EQ(outer.marks()[1].end, 6u);
  EXPECT_EQ(outer.marks()[1].cls, 1u);
  EXPECT_EQ(outer.marks()[2].end, 7u);
  EXPECT_EQ(outer.marks()[2].cls, 1u);
  EXPECT_EQ(outer.size(), 7u);
}

TEST(Bytes, ComponentSinkClearDropsMarks) {
  ComponentSink sink;
  sink.u8(1);
  sink.boundary(0);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_TRUE(sink.marks().empty());
  sink.u8(2);
  sink.boundary(5);
  ASSERT_EQ(sink.marks().size(), 1u);
  EXPECT_EQ(sink.marks()[0].end, 1u);
  EXPECT_EQ(sink.marks()[0].cls, 5u);
}

// ---- strings ---------------------------------------------------------------

TEST(Strings, Strf) {
  EXPECT_EQ(strf("x=%d", 42), "x=42");
  EXPECT_EQ(strf("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(strf("%.2f", 1.239), "1.24");
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(12), "12 B");
  EXPECT_EQ(human_bytes(1536), "1.5 KB");
  EXPECT_EQ(human_bytes(64ull << 20), "64.0 MB");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

// ---- table -----------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"Protocol", "N", "states"});
  t.row({"migratory", "2", "54"});
  t.row({"invalidate", "16", "228334"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("| migratory "), std::string::npos);
  EXPECT_NE(out.find("| Protocol "), std::string::npos);
  // All lines are equally wide.
  auto lines = split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].size(), lines[1].size());
  EXPECT_EQ(lines[0].size(), lines[2].size());
}

TEST(Table, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.row({"only-one"}), "precondition");
}

// ---- cli -------------------------------------------------------------------

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--nodes=8", "--verbose", "--name", "mig"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.int_flag("nodes", 2), 8);
  EXPECT_EQ(cli.int_flag("mem", 64), 64);
  EXPECT_TRUE(cli.bool_flag("verbose", false));
  EXPECT_EQ(cli.str_flag("name", "x"), "mig");
  cli.finish();
}

TEST(Cli, DoubleFlag) {
  const char* argv[] = {"prog", "--rate=0.25"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.double_flag("rate", 1.0), 0.25);
  cli.finish();
}

TEST(Cli, PositionalArgs) {
  const char* argv[] = {"prog", "file1", "--k=3", "file2"};
  Cli cli(4, const_cast<char**>(argv));
  (void)cli.int_flag("k", 0);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1");
  cli.finish();
}

TEST(Cli, UnknownFlagIsFatal) {
  const char* argv[] = {"prog", "--bogus=1"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT(cli.finish(), testing::ExitedWithCode(2), "unknown flag");
}

TEST(Cli, DoubleFlagRejectsNonFiniteAndHex) {
  // strtod happily parses "nan", "inf" and hex floats; a NaN assertion
  // threshold makes every gate comparison false and the gate passes
  // vacuously. All of these must die with exit 2, not sneak through.
  for (const char* bad : {"nan", "inf", "-inf", "0x1p4", "0X2", "1e",
                          "1.5x", ""}) {
    const std::string arg = std::string("--rate=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    Cli cli(2, const_cast<char**>(argv));
    EXPECT_EXIT((void)cli.double_flag("rate", 1.0, ""),
                testing::ExitedWithCode(2), "finite decimal")
        << "value: '" << bad << "'";
  }
}

TEST(Cli, DoubleFlagAcceptsPlainDecimals) {
  for (const char* good : {"0", "-2.5", "1e-3", ".5", "3."}) {
    const std::string arg = std::string("--rate=") + good;
    const char* argv[] = {"prog", arg.c_str()};
    Cli cli(2, const_cast<char**>(argv));
    EXPECT_DOUBLE_EQ(cli.double_flag("rate", 1.0, ""), std::strtod(good,
                                                                   nullptr));
    cli.finish();
  }
}

TEST(Cli, BoolFlagRejectsJunk) {
  const char* argv[] = {"prog", "--verbose=maybe"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)cli.bool_flag("verbose", false, ""),
              testing::ExitedWithCode(2), "expected true or false");
}

TEST(Cli, IntFlagRejectsJunk) {
  for (const char* bad : {"12abc", "zz", ""}) {
    const std::string arg = std::string("--nodes=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    Cli cli(2, const_cast<char**>(argv));
    EXPECT_EXIT((void)cli.int_flag("nodes", 2, ""),
                testing::ExitedWithCode(2), "expected integer")
        << "value: '" << bad << "'";
  }
}

// ---- byte-size parsing -----------------------------------------------------

TEST(ParseSize, PlainAndSuffixedValues) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(parse_size("0", 0, max), 0u);
  EXPECT_EQ(parse_size("4096", 0, max), 4096u);
  EXPECT_EQ(parse_size("64K", 0, max), std::uint64_t{64} << 10);
  EXPECT_EQ(parse_size("64k", 0, max), std::uint64_t{64} << 10);
  EXPECT_EQ(parse_size("512M", 0, max), std::uint64_t{512} << 20);
  EXPECT_EQ(parse_size("512m", 0, max), std::uint64_t{512} << 20);
  EXPECT_EQ(parse_size("2G", 0, max), std::uint64_t{2} << 30);
  EXPECT_EQ(parse_size("3T", 0, max), std::uint64_t{3} << 40);
}

TEST(ParseSize, RejectsMalformedSpellings) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_FALSE(parse_size("", 0, max).has_value());
  EXPECT_FALSE(parse_size("M", 0, max).has_value());  // bare suffix
  EXPECT_FALSE(parse_size("5GB", 0, max).has_value());  // trailing junk
  EXPECT_FALSE(parse_size("5 M", 0, max).has_value());
  EXPECT_FALSE(parse_size("-1K", 0, max).has_value());
  EXPECT_FALSE(parse_size("+64M", 0, max).has_value());
  EXPECT_FALSE(parse_size("0x40M", 0, max).has_value());
  EXPECT_FALSE(parse_size("64Q", 0, max).has_value());  // unknown suffix
}

TEST(ParseSize, RejectsOverflowExactly) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  // 17e18 KiB overflows u64 bytes; the largest representable K value is
  // floor(2^64/1024) and must still be accepted.
  EXPECT_FALSE(parse_size("17000000000000000000K", 0, max).has_value());
  EXPECT_EQ(parse_size("18014398509481983K", 0, max),
            std::uint64_t{18014398509481983} << 10);
  EXPECT_FALSE(parse_size("18014398509481984K", 0, max).has_value());
  EXPECT_FALSE(parse_size("16777216T", 0, max).has_value());
}

TEST(ParseSize, HonorsRangeAfterScaling) {
  // The range check applies to the scaled byte value, not the digits.
  EXPECT_EQ(parse_size("1M", 1 << 20, 1 << 30), std::uint64_t{1} << 20);
  EXPECT_FALSE(parse_size("1023K", 1 << 20, 1 << 30).has_value());
  EXPECT_FALSE(parse_size("2G", 1 << 20, 1 << 30).has_value());
}

TEST(Cli, SizeFlagParsesSuffixAndDefault) {
  const char* argv[] = {"prog", "--mem=512M", "--spill-cap", "2G"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.size_flag("mem", "64M", 1 << 20,
                          std::numeric_limits<std::uint64_t>::max()),
            std::uint64_t{512} << 20);
  EXPECT_EQ(cli.size_flag("spill-cap", "0", 0,
                          std::numeric_limits<std::uint64_t>::max()),
            std::uint64_t{2} << 30);
  // Defaults go through the same parser, suffix and all.
  EXPECT_EQ(cli.size_flag("other", "16K", 0,
                          std::numeric_limits<std::uint64_t>::max()),
            std::uint64_t{16} << 10);
  cli.finish();
}

TEST(Cli, SizeFlagRejectsBadValueWithDiagnostic) {
  const char* argv[] = {"prog", "--mem=5GB"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EXIT((void)cli.size_flag("mem", "64M", 0,
                                  std::numeric_limits<std::uint64_t>::max()),
              testing::ExitedWithCode(2), "mem");
}

}  // namespace
}  // namespace ccref
