// Unit tests for the protocol IR: expression evaluation and typing,
// statement execution, the builder, validation of the paper's §2.4
// restrictions, and the pretty-printer.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/print.hpp"
#include "ir/store.hpp"
#include "ir/validate.hpp"

namespace ccref::ir {
namespace {

using ex::add;
using ex::boolean;
using ex::eq;
using ex::land;
using ex::lit;
using ex::lor;
using ex::lt;
using ex::ne;
using ex::negate;
using ex::self;
using ex::set_contains;
using ex::set_empty;
using ex::set_size;
using ex::sub;
using ex::var;

/// A tiny process context: x:int mod 4, b:bool, n:node, s:nodeset.
struct Fixture {
  Process proc;
  VarId x, b, n, s;
  Store store;

  Fixture() {
    proc.name = "p";
    proc.role = Role::Remote;
    proc.vars = {
        {"x", Type::Int, 1, 4},
        {"b", Type::Bool, 0, 2},
        {"n", Type::Node, 2, 2},
        {"s", Type::NodeSet, 0, 2},
    };
    x = 0;
    b = 1;
    n = 2;
    s = 3;
    proc.states.push_back({"only", StateKind::Comm, {}, {}, {}});
    store = Store(proc.vars);
  }

  std::int64_t ev(const ExprP& e, int self_id = 5) const {
    return eval(*e, store, EvalCtx{self_id});
  }
  void run(const StmtP& st, int self_id = 5) {
    exec(*st, store, proc.vars, EvalCtx{self_id});
  }
};

// ---- expression evaluation -------------------------------------------------

TEST(Expr, Literals) {
  Fixture f;
  EXPECT_EQ(f.ev(lit(7)), 7);
  EXPECT_EQ(f.ev(boolean(true)), 1);
  EXPECT_EQ(f.ev(boolean(false)), 0);
  EXPECT_EQ(f.ev(ex::empty_set()), 0);
}

TEST(Expr, VarRefReadsStore) {
  Fixture f;
  EXPECT_EQ(f.ev(var(f.x)), 1);
  f.store.set(f.x, 3);
  EXPECT_EQ(f.ev(var(f.x)), 3);
}

TEST(Expr, SelfIdUsesContext) {
  Fixture f;
  EXPECT_EQ(f.ev(self(), 9), 9);
}

TEST(Expr, Arithmetic) {
  Fixture f;
  EXPECT_EQ(f.ev(add(lit(2), lit(3))), 5);
  EXPECT_EQ(f.ev(sub(lit(2), lit(3))), -1);  // unbounded until assignment
  EXPECT_EQ(f.ev(add(var(f.x), lit(1))), 2);
}

TEST(Expr, Comparisons) {
  Fixture f;
  EXPECT_EQ(f.ev(eq(lit(2), lit(2))), 1);
  EXPECT_EQ(f.ev(ne(lit(2), lit(2))), 0);
  EXPECT_EQ(f.ev(lt(lit(1), lit(2))), 1);
  EXPECT_EQ(f.ev(ex::le(lit(2), lit(2))), 1);
  EXPECT_EQ(f.ev(lt(lit(2), lit(2))), 0);
}

TEST(Expr, BooleanConnectives) {
  Fixture f;
  EXPECT_EQ(f.ev(land(boolean(true), boolean(false))), 0);
  EXPECT_EQ(f.ev(lor(boolean(true), boolean(false))), 1);
  EXPECT_EQ(f.ev(negate(boolean(false))), 1);
}

TEST(Expr, SetOperations) {
  Fixture f;
  NodeSet nodes;
  nodes.add(1);
  nodes.add(3);
  f.store.set(f.s, nodes.bits());
  EXPECT_EQ(f.ev(set_empty(var(f.s))), 0);
  EXPECT_EQ(f.ev(set_size(var(f.s))), 2);
  EXPECT_EQ(f.ev(set_contains(var(f.s), lit(1))), 1);
  EXPECT_EQ(f.ev(set_contains(var(f.s), lit(2))), 0);
  f.store.set(f.s, 0);
  EXPECT_EQ(f.ev(set_empty(var(f.s))), 1);
}

TEST(Expr, StructuralEquality) {
  auto a = add(var(0), lit(1));
  auto b = add(var(0), lit(1));
  auto c = add(var(1), lit(1));
  EXPECT_TRUE(expr_equal(*a, *b));
  EXPECT_FALSE(expr_equal(*a, *c));
  EXPECT_FALSE(expr_equal(*a, *lit(1)));
}

TEST(Expr, PrintReadable) {
  Fixture f;
  EXPECT_EQ(to_string(*add(var(f.x), lit(1)), f.proc), "(x + 1)");
  EXPECT_EQ(to_string(*set_contains(var(f.s), var(f.n)), f.proc),
            "(n in s)");
  EXPECT_EQ(to_string(*self(), f.proc), "self");
}

// ---- statement execution ---------------------------------------------------

TEST(Stmt, AssignReducesModuloBound) {
  Fixture f;
  f.run(st::assign(f.x, lit(7)));  // bound 4
  EXPECT_EQ(f.store.get(f.x), 3u);
  f.run(st::assign(f.x, sub(lit(0), lit(1))));  // -1 wraps to 3
  EXPECT_EQ(f.store.get(f.x), 3u);
}

TEST(Stmt, AssignNodeAndBool) {
  Fixture f;
  f.run(st::assign(f.n, lit(1)));
  EXPECT_EQ(f.store.get(f.n), 1u);
  f.run(st::assign(f.b, boolean(true)));
  EXPECT_EQ(f.store.get(f.b), 1u);
}

TEST(Stmt, SetAddRemove) {
  Fixture f;
  f.run(st::set_add(f.s, lit(2)));
  f.run(st::set_add(f.s, lit(5)));
  EXPECT_EQ(NodeSet(f.store.get(f.s)).size(), 2);
  f.run(st::set_remove(f.s, lit(2)));
  EXPECT_FALSE(NodeSet(f.store.get(f.s)).contains(2));
  EXPECT_TRUE(NodeSet(f.store.get(f.s)).contains(5));
}

TEST(Stmt, SeqRunsInOrder) {
  Fixture f;
  f.run(st::seq({st::assign(f.x, lit(2)),
                 st::assign(f.x, add(var(f.x), lit(1)))}));
  EXPECT_EQ(f.store.get(f.x), 3u);
}

TEST(Stmt, NopAndIsNop) {
  Fixture f;
  auto before = f.store;
  f.run(st::nop());
  EXPECT_EQ(f.store, before);
  EXPECT_TRUE(is_nop(*st::nop()));
  EXPECT_TRUE(is_nop(*st::seq({st::nop(), st::nop()})));
  EXPECT_FALSE(is_nop(*st::assign(f.x, lit(0))));
}

TEST(Stmt, EqualityStructural) {
  auto a = st::assign(0, lit(1));
  auto b = st::assign(0, lit(1));
  auto c = st::assign(1, lit(1));
  EXPECT_TRUE(stmt_equal(*a, *b));
  EXPECT_FALSE(stmt_equal(*a, *c));
}

// ---- builder + validation --------------------------------------------------

/// Minimal valid ping/pong protocol through the builder.
Protocol ping_pong() {
  ProtocolBuilder b("pingpong");
  MsgId PING = b.msg("ping");
  MsgId PONG = b.msg("pong", {Type::Int});

  auto& h = b.home();
  VarId j = h.var("j", Type::Node);
  VarId d = h.var("d", Type::Int, 0, 2);
  h.comm("IDLE").initial();
  h.comm("REPLY");
  h.input("IDLE", PING).from_any(j).go("REPLY");
  h.output("REPLY", PONG).to(var(j)).pay({var(d)}).go("IDLE");

  auto& r = b.remote();
  VarId got = r.var("got", Type::Int, 0, 2);
  r.internal("THINK");
  r.comm("ASK");
  r.comm("WAIT");
  r.tau("THINK", "go").go("ASK");
  r.output("ASK", PING).to_home().go("WAIT");
  r.input("WAIT", PONG).from_home().bind({got}).go("THINK");
  return b.build();
}

TEST(Builder, BuildsPingPong) {
  Protocol p = ping_pong();
  EXPECT_EQ(p.messages.size(), 2u);
  EXPECT_EQ(p.home.states.size(), 2u);
  EXPECT_EQ(p.remote.states.size(), 3u);
  EXPECT_EQ(p.home.initial, p.home.find_state("IDLE"));
  EXPECT_EQ(p.remote.initial, p.remote.find_state("THINK"));
  EXPECT_EQ(p.find_message("pong"), 1);
}

TEST(Builder, DanglingStateNameAborts) {
  ProtocolBuilder b("bad");
  MsgId M = b.msg("m");
  b.home().comm("A");
  b.home().var("j", Type::Node);
  b.home().input("A", M).from_any().go("NOWHERE");
  b.remote().comm("B");
  b.remote().output("B", M).to_home().go("B");
  EXPECT_DEATH((void)b.build(), "undeclared state");
}

TEST(Validate, PingPongIsClean) {
  Protocol p = ping_pong();
  auto diags = validate(p);
  EXPECT_FALSE(has_errors(diags)) << to_string(diags);
}

TEST(Validate, RemoteActiveStateMustBeSingleOutput) {
  ProtocolBuilder b("bad");
  MsgId A = b.msg("a");
  MsgId Bm = b.msg("b");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", A).from_any().go("H");
  h.input("H", Bm).from_any().go("H");
  auto& r = b.remote();
  r.comm("S");
  // Two output guards in one remote comm state violates §2.4.
  r.output("S", A).to_home().go("S");
  r.output("S", Bm).to_home().go("S");
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("active state"), std::string::npos);
}

TEST(Validate, RemoteCannotAddressOtherRemotes) {
  ProtocolBuilder b("bad");
  MsgId M = b.msg("m");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");
  auto& r = b.remote();
  r.comm("S");
  r.output("S", M).to(lit(1)).go("S");  // star topology violation
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("star topology"), std::string::npos);
}

TEST(Validate, BcastSendRequiresBusTopology) {
  ProtocolBuilder b("bad");
  MsgId M = b.msg("m");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");
  auto& r = b.remote();
  r.comm("S");
  r.output("S", M).bcast().go("S");  // no `topology bus` declared
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("'bcast!' requires 'topology bus;'"),
            std::string::npos)
      << to_string(diags);
}

TEST(Validate, SnoopGuardRequiresBusTopology) {
  ProtocolBuilder b("bad");
  MsgId M = b.msg("m");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");
  auto& r = b.remote();
  r.comm("S");
  r.input("S", M).from_bcast().go("S");
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("'bcast?' snoop guard requires "
                                  "'topology bus;'"),
            std::string::npos)
      << to_string(diags);
}

TEST(Validate, RemoteCannotAddressPeersUnderBus) {
  ProtocolBuilder b("bad");
  b.topology(Topology::Bus);
  MsgId M = b.msg("m");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");
  auto& r = b.remote();
  r.comm("S");
  r.output("S", M).to(lit(1)).go("S");  // a bus has no private peer wires
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("a bus cannot"), std::string::npos)
      << to_string(diags);
}

TEST(Validate, HomeCannotSnoop) {
  ProtocolBuilder b("bad");
  b.topology(Topology::Bus);
  MsgId M = b.msg("m");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_bcast().go("H");  // must be a generalized r(any v)?
  auto& r = b.remote();
  r.comm("S");
  r.output("S", M).bcast().go("S");
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("not a 'bcast?' snoop guard"),
            std::string::npos)
      << to_string(diags);
}

TEST(Validate, BroadcastNeedsGeneralizedHomeInput) {
  ProtocolBuilder b("bad");
  b.topology(Topology::Bus);
  MsgId M = b.msg("m");
  MsgId G = b.msg("g");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", G).from_any().go("H");  // no home input consumes m at all
  auto& r = b.remote();
  r.comm("S");
  r.output("S", M).bcast().go("S");
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("no generalized home input"),
            std::string::npos)
      << to_string(diags);
}

TEST(Validate, InternalStateNeedsTau) {
  ProtocolBuilder b("bad");
  MsgId M = b.msg("m");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");
  auto& r = b.remote();
  r.internal("STUCK");
  r.comm("S");
  r.output("S", M).to_home().go("S");
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("no τ move"), std::string::npos);
}

TEST(Validate, PayloadArityChecked) {
  ProtocolBuilder b("bad");
  MsgId M = b.msg("m", {Type::Int});
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");  // binds nothing: allowed (ignore all)
  auto& r = b.remote();
  r.comm("S");
  r.output("S", M).to_home().go("S");  // supplies no payload: error
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("payload"), std::string::npos);
}

TEST(Validate, PayloadTypeChecked) {
  ProtocolBuilder b("bad");
  MsgId M = b.msg("m", {Type::Int});
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");
  auto& r = b.remote();
  VarId flag = r.var("flag", Type::Bool);
  r.comm("S");
  r.output("S", M).to_home().pay({var(flag)}).go("S");
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
}

TEST(Validate, SelfOnlyInRemote) {
  ProtocolBuilder b("bad");
  MsgId M = b.msg("m", {Type::Node});
  auto& h = b.home();
  VarId j = h.var("j", Type::Node);
  h.comm("H");
  h.output("H", M).to(var(j)).pay({self()}).go("H");
  auto& r = b.remote();
  r.comm("S");
  r.input("S", M).from_home().go("S");
  auto diags = validate(b.build());
  EXPECT_TRUE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("self"), std::string::npos);
}

TEST(Validate, UnreachableStateWarns) {
  ProtocolBuilder b("warny");
  MsgId M = b.msg("m");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H").initial();
  h.comm("ISLAND");
  h.input("H", M).from_any().go("H");
  h.input("ISLAND", M).from_any().go("ISLAND");
  auto& r = b.remote();
  r.comm("S");
  r.output("S", M).to_home().go("S");
  auto diags = validate(b.build());
  EXPECT_FALSE(has_errors(diags)) << to_string(diags);
  EXPECT_NE(to_string(diags).find("unreachable"), std::string::npos);
}

TEST(Validate, UnusedMessageWarns) {
  ProtocolBuilder b("warny");
  MsgId M = b.msg("m");
  (void)b.msg("never");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");
  auto& r = b.remote();
  r.comm("S");
  r.output("S", M).to_home().go("S");
  auto diags = validate(b.build());
  EXPECT_FALSE(has_errors(diags));
  EXPECT_NE(to_string(diags).find("never used"), std::string::npos);
}

TEST(Validate, OneWayMessageWarns) {
  ProtocolBuilder b("warny");
  MsgId M = b.msg("m");
  MsgId ORPHAN = b.msg("orphan");
  auto& h = b.home();
  h.var("j", Type::Node);
  h.comm("H");
  h.input("H", M).from_any().go("H");
  auto& r = b.remote();
  r.comm("S");
  r.comm("S2");
  r.output("S", M).to_home().go("S2");
  r.output("S2", ORPHAN).to_home().go("S");  // nobody ever receives it
  auto diags = validate(b.build());
  EXPECT_NE(to_string(diags).find("never"), std::string::npos);
}

// ---- type inference --------------------------------------------------------

TEST(TypeOf, InfersCorrectTypes) {
  Fixture f;
  std::string err;
  EXPECT_EQ(type_of(*lit(1), f.proc, &err), Type::Int);
  EXPECT_EQ(type_of(*var(f.s), f.proc, &err), Type::NodeSet);
  EXPECT_EQ(type_of(*set_size(var(f.s)), f.proc, &err), Type::Int);
  EXPECT_EQ(type_of(*eq(var(f.n), self()), f.proc, &err), Type::Bool);
}

TEST(TypeOf, RejectsMixedComparison) {
  Fixture f;
  std::string err;
  EXPECT_EQ(type_of(*eq(var(f.n), lit(1)), f.proc, &err), std::nullopt);
  EXPECT_FALSE(err.empty());
}

TEST(TypeOf, RejectsLogicOnInts) {
  Fixture f;
  std::string err;
  EXPECT_EQ(type_of(*land(lit(1), boolean(true)), f.proc, &err),
            std::nullopt);
}

// ---- printer ---------------------------------------------------------------

TEST(Print, ProtocolListingMentionsEverything) {
  Protocol p = ping_pong();
  std::string out = to_string(p);
  EXPECT_NE(out.find("protocol pingpong"), std::string::npos);
  EXPECT_NE(out.find("message ping"), std::string::npos);
  EXPECT_NE(out.find("message pong(int)"), std::string::npos);
  EXPECT_NE(out.find("home h"), std::string::npos);
  EXPECT_NE(out.find("remote r"), std::string::npos);
  EXPECT_NE(out.find("state IDLE initial"), std::string::npos);
  EXPECT_NE(out.find("internal THINK"), std::string::npos);
  EXPECT_NE(out.find("r(any j)?ping"), std::string::npos);
  EXPECT_NE(out.find("h!ping"), std::string::npos);
  EXPECT_NE(out.find("h?pong(got)"), std::string::npos);
}

TEST(Print, GuardWithConditionAndAction) {
  Fixture f;
  // Build a guard by hand and render it.
  Protocol proto;
  proto.name = "t";
  proto.messages = {{"m", {Type::Int}}};
  proto.remote = f.proc;
  proto.remote.role = Role::Remote;
  OutputGuard g;
  g.cond = eq(var(f.x), lit(1));
  g.to = {PeerSel::Kind::Home, nullptr};
  g.msg = 0;
  g.payload = {var(f.x)};
  g.action = st::assign(f.x, lit(0));
  g.next = 0;
  std::string s = to_string(g, proto.remote, proto);
  EXPECT_NE(s.find("[(x == 1)]"), std::string::npos);
  EXPECT_NE(s.find("h!m(x)"), std::string::npos);
  EXPECT_NE(s.find("{ x := 0 }"), std::string::npos);
  EXPECT_NE(s.find("-> only"), std::string::npos);
}

}  // namespace
}  // namespace ccref::ir
