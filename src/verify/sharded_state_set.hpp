// Lock-free concurrent visited-state set: K CAS-based shards drawing on
// one shared MemoryBudget.
//
// This keeps the multi-core-SPIN sharding geometry — a state's 64-bit
// hash picks the shard (high bits; each shard's open-addressing table
// uses the low bits, so the two choices stay independent) — but shards
// are now a STRIPING detail, not a lock domain: each shard is a
// ConcurrentCollapsedSet whose insert-if-absent is a claim-by-CAS /
// publish-with-release protocol (support/atomic_table.hpp), so any
// number of threads insert into the same shard without serializing.
// More shards still help (they split the resize epochs and spread the
// allocation bump counters), which is why the parallel checker defaults
// them to the job count rather than jobs*8 mutex domains.
//
// Because symmetry reduction canonicalizes before hashing, all members
// of an orbit land in the same shard and dedupe there — the reduction
// needs no cross-shard coordination. A state's Ref is (shard, record
// offset): offsets are stable and never reused, so Refs are global
// identities; the parallel checker stores BFS parents inline in the
// record (no side arrays to lock) and reconstructs counterexample traces
// exactly like the sequential engine does.
//
// Concurrency contract:
//   * insert() may be called from any thread at any time.
//   * at() / parent_of() / stored_bytes() require quiescence (no
//     concurrent insert) — the checker only calls them after workers
//     stop. Under Collapse, at() expands into a per-shard scratch
//     buffer: a returned span is valid until the next at() on the same
//     shard; callers that need several states at once copy.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "support/thread_pool.hpp"
#include "verify/collapse.hpp"
#include "verify/external_set.hpp"
#include "verify/state_set.hpp"

namespace ccref::verify {

class ShardedStateSet {
 public:
  using Outcome = StateSet::Outcome;

  /// Global identity of a stored state: shard plus record byte offset
  /// inside that shard's pool (stable, never reused; NOT dense).
  struct Ref {
    std::uint32_t shard = 0;
    std::uint32_t index = 0;

    friend bool operator==(const Ref&, const Ref&) = default;
  };

  /// Packed Ref for parent links; kNoParent marks the root.
  static constexpr std::uint64_t kNoParent = ~0ull;
  [[nodiscard]] static constexpr std::uint64_t pack(Ref r) {
    return (static_cast<std::uint64_t>(r.shard) << 32) | r.index;
  }
  [[nodiscard]] static constexpr Ref unpack(std::uint64_t p) {
    return {static_cast<std::uint32_t>(p >> 32),
            static_cast<std::uint32_t>(p)};
  }

  struct InsertResult {
    Outcome outcome;
    Ref ref;  // valid unless Exhausted or Deferred
  };

  /// One state admitted by an external-tier resolve pass: its global Ref
  /// plus an owned copy of the encoded bytes, ready to become a frontier
  /// item. (External records live on disk; the engine never reads them
  /// back through at().)
  struct FreshState {
    Ref ref;
    std::vector<std::byte> bytes;
  };

  /// `shard_count` is rounded up to a power of two and clamped to
  /// [1, kMaxShards]. `track_parents` stores one packed Ref inline per
  /// record for trace reconstruction. Under CompressionMode::Collapse
  /// each shard keeps its own dictionaries — shard choice hashes the raw
  /// (canonical) encoding, so equal states land in one shard and never
  /// need sibling dictionaries to agree on indices; the component
  /// STRUCTURE, however, is shared (one CollapseStructure) so every
  /// shard slices identically. `expected_states` is split evenly across
  /// shards to pre-size their tables; all construction floors shrink
  /// until they fit a quarter of the budget, so even tiny limits leave
  /// headroom for actual states.
  ShardedStateSet(std::size_t memory_limit_bytes, unsigned shard_count,
                  bool track_parents = false,
                  CompressionMode mode = CompressionMode::Off,
                  std::size_t expected_states = 0)
      : ShardedStateSet(memory_limit_bytes, shard_count, track_parents,
                        StorageOptions::legacy(mode, expected_states)) {}

  /// Primary constructor with full storage-tier routing (hash compaction,
  /// spill policy) threaded to every shard and dictionary.
  ShardedStateSet(std::size_t memory_limit_bytes, unsigned shard_count,
                  bool track_parents, const StorageOptions& st)
      : budget_(memory_limit_bytes),
        st_(st),
        fp_(st.fingerprint != nullptr ? st.fingerprint : &default_fingerprint),
        track_parents_(track_parents) {
    const std::size_t expected_states = st.expected_states;
    unsigned n = 1;
    while (n < shard_count && n < kMaxShards) n <<= 1;
    shard_bits_ = 0;
    for (unsigned v = n; v > 1; v >>= 1) ++shard_bits_;

    if (st_.external.enabled()) {
      // External tier: each shard runs its own single-partition
      // ExternalVisitedSet behind a spinlock — the shard hash (high
      // fingerprint bits) already plays the partition role, so merges of
      // different shards proceed on different worker threads while the
      // rest of the pool keeps exploring. No CAS tables are built at all:
      // the whole budget is left to the caches, buffers and sort scratch
      // that configure() splits n ways.
      auto cfg = ExternalVisitedSet::configure(st_.external,
                                               memory_limit_bytes, n);
      cfg.partitions = 1;
      cfg.keep_order_log = st_.keep_fingerprints;
      ext_shards_.reserve(n);
      ext_ok_ = true;
      for (unsigned i = 0; i < n; ++i) {
        auto es = std::make_unique<ExtShard>(budget_, cfg);
        ext_ok_ = ext_ok_ && es->set.ok();
        ext_shards_.push_back(std::move(es));
      }
      return;
    }

    ConcurrentCollapsedSet::Layout layout;
    std::size_t slots = 1024;
    if (expected_states > 0) {
      const std::size_t per_shard = expected_states / n;
      while (slots * 7 < per_shard * 10) slots *= 2;
      // A wild hint must degrade into ordinary growth, not pre-spend the
      // budget (same discipline as StateSet's hint clamp).
      while (slots > 1024 &&
             n * slots * sizeof(std::uint64_t) > memory_limit_bytes / 2)
        slots /= 2;
    }
    while (slots > 64 &&
           n * slots * sizeof(std::uint64_t) > memory_limit_bytes / 4)
      slots /= 2;
    layout.table_slots = slots;
    std::size_t chunk0 = 4096;
    while (chunk0 > 1024 && n * chunk0 > memory_limit_bytes / 4) chunk0 /= 2;
    layout.table_chunk0 = chunk0;
    layout.dict_chunk0 = 256;

    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      shards_.push_back(std::make_unique<ConcurrentCollapsedSet>(
          budget_, st_, track_parents, structure_, layout));
  }

  /// Thread-safe lock-free insert; `parent` is recorded for fresh states
  /// when parent tracking is on (pass pack(ref) of the BFS predecessor,
  /// kNoParent for the root). `marks` carries the component boundaries
  /// of `state` (from a ComponentSink); ignored in Off mode. A duplicate
  /// insert never overwrites the recorded parent (only the claiming
  /// thread ever writes the record).
  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::span<const ComponentMark> marks = {},
                                    std::uint64_t parent = kNoParent,
                                    std::vector<FreshState>* fresh = nullptr) {
    // Under hash compaction (and the external tier, which stores nothing
    // BUT fingerprints) the run's FingerprintFn doubles as the shard
    // hash: computed once, it picks the shard AND becomes the stored
    // fingerprint (shards use the high bits, tables the low bits).
    const std::uint64_t h = (st_.hash_compact || !ext_shards_.empty())
                                ? fp_(state)
                                : hash_bytes(state);
    const auto si = static_cast<std::uint32_t>(
        shard_bits_ == 0 ? 0 : h >> (64 - shard_bits_));
    if (!ext_shards_.empty())
      return insert_external(si, h, parent, state, fresh);
    auto r = shards_[si]->insert(state, marks, h, parent);
    return {r.outcome, {si, r.ref}};
  }

  /// External tier only: run delayed duplicate detection across shards.
  /// `only_ripe` restricts the pass to shards past their watermark; the
  /// final drain passes false. Admitted states are appended to `fresh`
  /// for the caller to re-enqueue. Thread-safe (per-shard locks), but the
  /// drain protocol in par_explore serializes full drains.
  [[nodiscard]] ResolveOutcome resolve_external(bool only_ripe,
                                                std::vector<FreshState>& fresh) {
    CCREF_REQUIRE(!ext_shards_.empty());
    bool any = false;
    for (std::uint32_t si = 0; si < ext_shards_.size(); ++si) {
      ExtShard& es = *ext_shards_[si];
      std::lock_guard<SpinLock> lock(es.mu);
      switch (resolve_shard_locked(si, es, only_ripe, fresh)) {
        case ResolveOutcome::Fresh: any = true; break;
        case ResolveOutcome::Drained: break;
        case ResolveOutcome::Failed: return ResolveOutcome::Failed;
      }
    }
    return any ? ResolveOutcome::Fresh : ResolveOutcome::Drained;
  }

  /// External tier: states queued for delayed duplicate detection but not
  /// yet resolved. Exact whenever no insert is mid-flight (in_flight == 0
  /// in the parallel engine), which is the only point the termination
  /// detector reads it.
  [[nodiscard]] std::size_t external_pending() const {
    return ext_pending_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool external() const { return !ext_shards_.empty(); }

  /// Quiescent-only: bytes held on disk by the external tier.
  [[nodiscard]] std::size_t external_bytes() const {
    std::size_t total = 0;
    for (const auto& es : ext_shards_) total += es->set.disk_bytes();
    return total;
  }

  /// Quiescent-only: sorted-run merge passes across shards.
  [[nodiscard]] std::size_t merge_passes() const {
    std::size_t total = 0;
    for (const auto& es : ext_shards_) total += es->set.merge_passes();
    return total;
  }

  /// Quiescent-only: bytes of a stored state. Not available under the
  /// external tier (records live on disk; traces replay by fingerprint).
  [[nodiscard]] std::span<const std::byte> at(Ref r) const {
    CCREF_REQUIRE(ext_shards_.empty());
    return shards_[r.shard]->at(r.index);
  }

  /// Quiescent-only: BFS parent recorded at insertion (kNoParent for root).
  /// Under the external tier this reads the shard's order log.
  [[nodiscard]] std::uint64_t parent_of(Ref r) const {
    if (!ext_shards_.empty()) return ext_shards_[r.shard]->set.parent_at(r.index);
    CCREF_REQUIRE(track_parents_);
    return shards_[r.shard]->parent_of(r.index);
  }

  /// Total states across shards (exact whenever no insert is mid-flight).
  /// Under the external tier, pending (unresolved) entries are not counted.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& es : ext_shards_) total += es->set.size();
    for (const auto& sh : shards_) total += sh->size();
    return total;
  }

  [[nodiscard]] std::size_t memory_used() const { return budget_.used(); }
  [[nodiscard]] std::size_t memory_limit() const { return budget_.limit(); }
  [[nodiscard]] unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }

  /// Quiescent-only: summed raw encoding bytes of all stored states.
  [[nodiscard]] std::size_t raw_bytes() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->raw_bytes();
    return total;
  }

  /// Quiescent-only: bytes actually spent storing states (pools plus
  /// dictionary footprints) across shards. Under the external tier this
  /// is the fixed RAM plan (caches + buffers + sort scratch) — the
  /// records themselves live on disk (external_bytes()).
  [[nodiscard]] std::size_t stored_bytes() const {
    std::size_t total = 0;
    for (const auto& es : ext_shards_) total += es->set.memory_used();
    for (const auto& sh : shards_) total += sh->stored_bytes();
    return total;
  }

  /// Quiescent-only: bytes held in mmap-backed spill files across shards.
  [[nodiscard]] std::size_t spill_bytes() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->spill_bytes();
    return total;
  }

  /// Quiescent-only: chunk bytes held but never occupied by records.
  [[nodiscard]] std::size_t waste_bytes() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->waste_bytes();
    return total;
  }

  [[nodiscard]] bool hash_compact() const { return st_.hash_compact; }

  /// The resolved fingerprint function this set hashes with.
  [[nodiscard]] FingerprintFn fingerprint_fn() const { return fp_; }

  /// Stored hash of a record — the state's fingerprint under compaction
  /// and the external tier (read back from the shard's order log there).
  [[nodiscard]] std::uint64_t hash_of(Ref r) const {
    if (!ext_shards_.empty())
      return ext_shards_[r.shard]->set.fingerprint_at(r.index);
    return shards_[r.shard]->hash_of(r.index);
  }

 private:
  static constexpr unsigned kMaxShards = 256;

  /// One external shard: a single-partition delayed-duplicate-detection
  /// set behind a spinlock. The lock covers insert and resolve; both are
  /// short (an append, or one watermark-bounded merge) and the shard
  /// fan-out keeps contention low.
  struct ExtShard {
    SpinLock mu;
    ExternalVisitedSet set;
    ExtShard(MemoryBudget& b, const ExternalVisitedSet::Config& cfg)
        : set(b, cfg) {}
  };

  [[nodiscard]] InsertResult insert_external(std::uint32_t si, std::uint64_t fp,
                                             std::uint64_t parent,
                                             std::span<const std::byte> state,
                                             std::vector<FreshState>* fresh) {
    if (!ext_ok_) return {Outcome::Exhausted, {}};
    ExtShard& es = *ext_shards_[si];
    std::lock_guard<SpinLock> lock(es.mu);
    const Outcome out = es.set.insert(fp, parent, state);
    if (out == Outcome::Exhausted) return {out, {}};
    if (out == Outcome::Deferred) {
      ext_pending_.fetch_add(1, std::memory_order_release);
      // Ripe inline resolve: the inserting worker pays for this shard's
      // merge while the others keep exploring — partitions routed to
      // workers, merges overlapped with expansion.
      if (fresh != nullptr && es.set.needs_resolve() &&
          resolve_shard_locked(si, es, /*only_ripe=*/true, *fresh) ==
              ResolveOutcome::Failed)
        return {Outcome::Exhausted, {}};
    }
    return {out, {si, 0}};
  }

  /// Caller holds es.mu. Decrements ext_pending_ by what the merge
  /// consumed and appends admitted states to `fresh`.
  [[nodiscard]] ResolveOutcome resolve_shard_locked(
      std::uint32_t si, ExtShard& es, bool only_ripe,
      std::vector<FreshState>& fresh) {
    const std::size_t before = es.set.pending();
    const ResolveOutcome ro = es.set.resolve(
        only_ripe, [&](std::uint32_t index, std::uint64_t /*fp*/,
                       std::uint64_t /*parent*/,
                       std::span<const std::byte> bytes) {
          fresh.push_back({Ref{si, index},
                           std::vector<std::byte>(bytes.begin(), bytes.end())});
        });
    const std::size_t consumed = before - es.set.pending();
    if (consumed != 0)
      ext_pending_.fetch_sub(consumed, std::memory_order_release);
    if (ro == ResolveOutcome::Failed) ext_ok_ = false;
    return ro;
  }

  MemoryBudget budget_;
  StorageOptions st_;
  FingerprintFn fp_ = &default_fingerprint;
  unsigned shard_bits_ = 0;
  bool track_parents_;
  CollapseStructure structure_;  // shared across shards (see ctor comment)
  std::vector<std::unique_ptr<ConcurrentCollapsedSet>> shards_;
  std::vector<std::unique_ptr<ExtShard>> ext_shards_;  // external tier only
  std::atomic<std::size_t> ext_pending_{0};
  bool ext_ok_ = false;  // meaningful only when ext_shards_ is non-empty
};

}  // namespace ccref::verify
