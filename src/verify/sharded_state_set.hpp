// Concurrent visited-state set: K independently-locked StateSet shards
// drawing on one shared MemoryBudget.
//
// This is the standard multi-core-SPIN design: a state's 64-bit hash picks
// the shard (high bits — the shard's own open-addressing table uses the low
// bits, so the two choices stay independent), and only that shard's mutex is
// taken for the insert. Because symmetry reduction canonicalizes before
// hashing, all members of an orbit land in the same shard and dedupe there —
// the reduction needs no cross-shard coordination. Per-shard indices are stable in discovery order, so
// a state is globally identified by a (shard, index) Ref — the parallel
// checker stores BFS parents as packed Refs and reconstructs counterexample
// traces exactly like the sequential engine does.
//
// Concurrency contract:
//   * insert() may be called from any thread at any time.
//   * at() / parent_of() / iteration via shard() require quiescence (no
//     concurrent insert) — the checker only calls them after workers stop,
//     because a shard's byte pool may reallocate under insertion.
#pragma once

#include <array>
#include <mutex>
#include <span>
#include <vector>

#include "verify/collapse.hpp"
#include "verify/state_set.hpp"

namespace ccref::verify {

class ShardedStateSet {
 public:
  using Outcome = StateSet::Outcome;

  /// Global identity of a stored state.
  struct Ref {
    std::uint32_t shard = 0;
    std::uint32_t index = 0;

    friend bool operator==(const Ref&, const Ref&) = default;
  };

  /// Packed Ref for dense parent arrays; kNoParent marks the root.
  static constexpr std::uint64_t kNoParent = ~0ull;
  [[nodiscard]] static constexpr std::uint64_t pack(Ref r) {
    return (static_cast<std::uint64_t>(r.shard) << 32) | r.index;
  }
  [[nodiscard]] static constexpr Ref unpack(std::uint64_t p) {
    return {static_cast<std::uint32_t>(p >> 32),
            static_cast<std::uint32_t>(p)};
  }

  struct InsertResult {
    Outcome outcome;
    Ref ref;  // valid unless Exhausted
  };

  /// `shard_count` is rounded up to a power of two and clamped to
  /// [1, kMaxShards]. `track_parents` reserves one packed Ref per state for
  /// trace reconstruction. Under CompressionMode::Collapse each shard keeps
  /// its own dictionaries — shard choice hashes the raw (canonical)
  /// encoding, so equal states land in one shard and never need sibling
  /// dictionaries to agree on indices. `expected_states` is split evenly
  /// across shards to pre-size their tables.
  ShardedStateSet(std::size_t memory_limit_bytes, unsigned shard_count,
                  bool track_parents = false,
                  CompressionMode mode = CompressionMode::Off,
                  std::size_t expected_states = 0)
      : budget_(memory_limit_bytes), track_parents_(track_parents) {
    unsigned n = 1;
    while (n < shard_count && n < kMaxShards) n <<= 1;
    shard_bits_ = 0;
    for (unsigned v = n; v > 1; v >>= 1) ++shard_bits_;
    shards_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      shards_.push_back(std::make_unique<Shard>(budget_, mode,
                                                expected_states / n));
  }

  /// Thread-safe insert; `parent` is recorded for fresh states when parent
  /// tracking is on (pass pack(ref) of the BFS predecessor, kNoParent for
  /// the root). `marks` carries the component boundaries of `state` (from a
  /// ComponentSink); ignored in Off mode.
  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::span<const ComponentMark> marks = {},
                                    std::uint64_t parent = kNoParent) {
    const std::uint64_t h = hash_bytes(state);
    const auto si = static_cast<std::uint32_t>(
        shard_bits_ == 0 ? 0 : h >> (64 - shard_bits_));
    Shard& sh = *shards_[si];
    std::lock_guard<std::mutex> lock(sh.mu);
    auto r = sh.set.insert(state, marks, h);
    if (r.outcome == Outcome::Inserted && track_parents_)
      sh.parents.push_back(parent);
    return {r.outcome, {si, r.index}};
  }

  /// Quiescent-only: bytes of a stored state.
  [[nodiscard]] std::span<const std::byte> at(Ref r) const {
    return shards_[r.shard]->set.at(r.index);
  }

  /// Quiescent-only: BFS parent recorded at insertion (kNoParent for root).
  [[nodiscard]] std::uint64_t parent_of(Ref r) const {
    CCREF_REQUIRE(track_parents_);
    return shards_[r.shard]->parents[r.index];
  }

  /// Quiescent-only: total states across shards.
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->set.size();
    return total;
  }

  [[nodiscard]] std::size_t memory_used() const { return budget_.used(); }
  [[nodiscard]] std::size_t memory_limit() const { return budget_.limit(); }
  [[nodiscard]] unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  /// Quiescent-only access to one shard's set (post-run iteration).
  [[nodiscard]] const CollapsedStateSet& shard(unsigned i) const {
    return shards_[i]->set;
  }

  /// Quiescent-only: summed raw encoding bytes of all stored states.
  [[nodiscard]] std::size_t raw_bytes() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->set.raw_bytes();
    return total;
  }

  /// Quiescent-only: bytes actually spent storing states (pools plus
  /// dictionary footprints) across shards.
  [[nodiscard]] std::size_t stored_bytes() const {
    std::size_t total = 0;
    for (const auto& sh : shards_) total += sh->set.stored_bytes();
    return total;
  }

 private:
  static constexpr unsigned kMaxShards = 256;

  struct Shard {
    Shard(MemoryBudget& budget, CompressionMode mode,
          std::size_t expected_states)
        : set(budget, mode, expected_states) {}
    std::mutex mu;
    CollapsedStateSet set;
    std::vector<std::uint64_t> parents;
  };

  MemoryBudget budget_;
  unsigned shard_bits_ = 0;
  bool track_parents_;
  // unique_ptr: Shard holds a mutex and must not move when the vector grows
  // (it never grows post-construction, but stay safe).
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ccref::verify
