// Partial-order reduction mode for the explicit-state engines.
//
// The refinement procedure (paper §3, Tables 1-2) turns every rendezvous
// into an exchange of request/ack/nack messages over per-remote FIFO
// channels, so the asynchronous state space is dominated by interleavings
// of *independent* deliveries: popping the head of remote i's down channel
// commutes with any step of remote j != i and with any home step that does
// not touch channel i. Under PorMode::Ample the checkers expand, at each
// state, an *ample subset* of the enabled transitions instead of all of
// them — the classic ample-set conditions:
//
//   C0  the ample set is nonempty whenever some transition is enabled;
//   C1  (persistence) no transition outside the ample set can interact
//       with an ample transition before one of them fires — guaranteed
//       statically here by picking, for some remote i, the delivery of
//       down[i]'s head plus remote i's local steps: only those transitions
//       read or write remote machine i, pop down[i], or push up[i], FIFO
//       heads are stable under foreign tail-pushes, and a free up[i] slot
//       (required for candidacy) can only be freed further by others;
//   C2  (invisibility) ample transitions do not change the truth of any
//       observed predicate — trivially satisfied for pure reachability and
//       deadlock detection; the LTL layer restricts POR to next-free
//       formulas and masks out remotes named by the atoms (check.hpp);
//   C3  (cycle proviso) no transition is postponed forever around a cycle —
//       enforced with the BFS proviso: if any ample successor was already
//       visited, the state is fully expanded. On every cycle of the reduced
//       graph some member is inserted first, and the cycle edge reaching it
//       observes AlreadyPresent, so that edge's source is fully expanded.
//
// Deadlocks are preserved (ample sets are nonempty subsets of the enabled
// set, selected only when they cannot be disabled by others), safety
// verdicts agree with the unreduced engines, and re-concretized traces stay
// real paths. State counts shrink; `transitions` counts only traversed
// edges of the reduced graph.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace ccref::verify {

enum class PorMode : std::uint8_t {
  Off,    // expand every enabled transition (bit-identical to prior runs)
  Ample,  // expand an ample subset per state (C0-C3 above)
};

[[nodiscard]] constexpr const char* to_string(PorMode m) {
  switch (m) {
    case PorMode::Off: return "off";
    case PorMode::Ample: return "ample";
  }
  return "?";
}

/// Parse a `--por` flag value; nullopt on anything unknown.
[[nodiscard]] inline std::optional<PorMode> parse_por(std::string_view text) {
  if (text == "off") return PorMode::Off;
  if (text == "ample") return PorMode::Ample;
  return std::nullopt;
}

}  // namespace ccref::verify
