// Explicit-state reachability checker (the library's stand-in for SPIN).
//
// Works over any System type providing:
//   using State = ...;                              // value type
//   State initial() const;
//   std::vector<std::pair<State, sem::Label>> successors(const State&) const;
//   void encode(const State&, ByteSink&) const;
//   State decode(ByteSource&) const;
//   std::string describe(const State&) const;
//
// Exploration is breadth-first using the visited set as the queue, so
// counter-example traces are shortest. A memory budget bounds the visited
// set; exhausting it yields Status::Unfinished — the paper's Table 3 term
// for the asynchronous protocols that outgrew 64 MB.
#pragma once

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "sem/label.hpp"
#include "support/bytes.hpp"
#include "verify/collapse.hpp"
#include "verify/por.hpp"
#include "verify/state_set.hpp"
#include "verify/symmetry.hpp"

namespace ccref::verify {

enum class Status : std::uint8_t {
  Ok,                 // full state space explored, no violations
  Unfinished,         // memory budget exhausted (paper: "Unfinished")
  InvariantViolated,  // a reachable state failed an invariant
  Deadlock,           // a reachable state has no successors
  LivenessViolated,   // a fair accepting lasso exists (liveness.hpp)
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Unfinished: return "Unfinished";
    case Status::InvariantViolated: return "invariant-violated";
    case Status::Deadlock: return "deadlock";
    case Status::LivenessViolated: return "liveness-violated";
  }
  return "?";
}

struct CheckResult {
  Status status = Status::Ok;
  std::size_t states = 0;       // distinct states stored
  std::size_t transitions = 0;  // edges traversed
  std::size_t memory_bytes = 0;
  /// Bytes spent storing states: index-tuple pool plus dictionary footprint
  /// under CompressionMode::Collapse, the raw pool otherwise.
  std::size_t pool_bytes = 0;
  /// Summed raw encoding sizes of the stored states — what the pool would
  /// hold uncompressed. pool_bytes/raw_pool_bytes is the compression ratio.
  std::size_t raw_pool_bytes = 0;
  /// Bytes of state storage held in mmap-backed spill files (0 without a
  /// spill directory). Not part of memory_bytes: that is the RAM story.
  std::size_t spill_bytes = 0;
  /// Pool chunk bytes held (RAM or spill) but never occupied by records —
  /// chunk-seam skips plus final-chunk tails. The honest gap between
  /// memory charged and memory used by actual data.
  std::size_t waste_bytes = 0;
  /// Disk bytes held by the external visited tier at finish (pending +
  /// history runs, order log, frontier queue). Zero without --external.
  std::size_t external_bytes = 0;
  /// Sorted-run merge passes the external tier performed (one per
  /// partition per delayed-duplicate-detection round).
  std::size_t merge_passes = 0;
  /// Hash compaction / external tier only: birthday-bound probability
  /// that at least one distinct state was omitted because its 64-bit
  /// fingerprint collided (~states²/2⁶⁵). Zero for the exact storage
  /// tiers. Violation verdicts and their traces are exact regardless —
  /// only Ok's state count carries this caveat.
  double omission_probability = 0;
  double seconds = 0;
  std::string violation;           // message for violated invariant
  std::string note;                // engine notes (e.g. a POR downgrade)
  std::vector<std::string> trace;  // labels root -> offending state
};

template <class Sys>
struct CheckOptions {
  std::size_t memory_limit = 64u << 20;  // the paper's 64 MB
  bool detect_deadlock = true;
  bool want_trace = true;
  /// Return "" when the state is fine, otherwise the violation message.
  std::function<std::string(const typename Sys::State&)> invariant;
  /// Called on every traversed edge (used by the §4 simulation-relation
  /// checker); return "" or a violation message. Edge checks always see the
  /// concrete successor, before any canonicalization.
  std::function<std::string(const typename Sys::State&,
                            const typename Sys::State&, const sem::Label&)>
      edge_check;
  /// Canonical stores one representative per remote-permutation orbit
  /// (symmetry.hpp); state counts become orbit counts. Ignored by systems
  /// that do not provide canonicalize() (custom test harnesses).
  SymmetryMode symmetry = SymmetryMode::Off;
  /// Ample expands an ample subset of each state's transitions (por.hpp).
  /// Ignored by systems without successors_por(). Per-state invariants and
  /// edge checks observe more than reachability, so either downgrades the
  /// reduction to Off (recorded in CheckResult::note): a reduced search
  /// checks them only on the reduced graph's states/edges.
  PorMode por = PorMode::Off;
  /// Collapse interns state components (home, remotes, channels) in
  /// per-class dictionaries and pools only index tuples (collapse.hpp).
  /// Verdicts and state/transition counts are unchanged; pool bytes shrink.
  CompressionMode compress = CompressionMode::Off;
  /// Hash-compaction storage tier: one 64-bit fingerprint per state
  /// instead of (collapsed) bytes — ~11 B/state against ~60 raw. States
  /// whose fingerprints collide dedupe, so Ok runs carry
  /// CheckResult::omission_probability; violation verdicts stay exact
  /// (traces re-concretize by replaying real transitions). Makes
  /// `compress` moot — noted in CheckResult::note when both are set.
  bool hash_compact = false;
  /// Fingerprint override for hash compaction (tests stub deterministic
  /// collisions); null uses the engine's hash.
  FingerprintFn fingerprint = nullptr;
  /// Chunked pools (state/tuple/dictionary storage) allocate past
  /// spill.ram_watermark — or whenever RAM refuses — from mmap-backed
  /// files in the SpillArena instead of the heap. Default: no arena, RAM
  /// only. The random-access tables stay in RAM either way.
  SpillPolicy spill;
  /// Disk-backed visited tier (--external DIR): fingerprints live in
  /// partitioned run files behind a RAM cache front, and membership
  /// resolves by sorted-run delayed duplicate detection — the visited
  /// TABLE leaves RAM, which spill alone cannot do. Subsumes
  /// hash_compact (same fingerprint representation and omission bound)
  /// and makes compress moot; both are noted, not errors. POR downgrades
  /// to Off: the ample proviso needs immediate revisit answers, which
  /// deferred membership cannot give.
  ExternalPolicy external;
  /// Pre-size the visited set's hash table for this many states (0: grow on
  /// demand). The charge is taken up front, capped at half the budget.
  std::size_t expected_states = 0;
};

namespace detail {

template <class Sys>
std::vector<std::byte> encode_state(const Sys& sys,
                                    const typename Sys::State& s) {
  ByteSink sink;
  sys.encode(s, sink);
  return sink.take();
}

/// Does the system offer the LabelMode-aware successor overload? Systems
/// without it (custom test harnesses) always pay for full labels.
template <class Sys>
concept HasLabelMode = requires(const Sys& sys, const typename Sys::State& s) {
  { sys.successors(s, sem::LabelMode::Quiet) };
};

/// Does the system offer orbit canonicalization? Systems without it run
/// with SymmetryMode::Canonical as a no-op.
template <class Sys>
concept HasCanonicalize = requires(const Sys& sys, typename Sys::State& s) {
  { sys.canonicalize(s) };
};

/// Does the system expose ample-candidate structure for partial-order
/// reduction? Systems without it (rendezvous semantics, custom harnesses)
/// run with PorMode::Ample as a no-op.
template <class Sys>
concept HasPor = requires(const Sys& sys, const typename Sys::State& s) {
  { sys.successors_por(s, sem::LabelMode::Quiet) };
};

/// Select the ample candidate to expand: invisible to the observer mask
/// (bit i set = remote i's moves can change an observed predicate) and a
/// strict subset of the enabled edges (expanding everything through a
/// candidate that IS everything gains nothing and would double-process
/// edges). Smallest edge count first, lowest process id on ties, so the
/// sequential and parallel engines make the same deterministic choice.
/// Returns nullptr when no candidate qualifies: fall back to full expansion.
template <class PS>
const typename PS::Candidate* pick_ample(const PS& ps,
                                         std::uint64_t visible) {
  const typename PS::Candidate* best = nullptr;
  std::size_t best_edges = 0;
  for (const auto& c : ps.candidates) {
    if (c.process >= 0 && c.process < 64 && ((visible >> c.process) & 1))
      continue;
    std::size_t edges = 1 + (c.local_end - c.local_begin);
    if (edges >= ps.all.size()) continue;
    if (!best || edges < best_edges ||
        (edges == best_edges && c.process < best->process)) {
      best = &c;
      best_edges = edges;
    }
  }
  return best;
}

/// Canonicalize `s` in place when the mode asks for it and the system
/// supports it; otherwise leave the concrete state untouched.
template <class Sys>
void maybe_canonicalize(const Sys& sys, typename Sys::State& s,
                        SymmetryMode mode) {
  if constexpr (HasCanonicalize<Sys>) {
    if (mode == SymmetryMode::Canonical) sys.canonicalize(s);
  } else {
    (void)sys;
    (void)s;
    (void)mode;
  }
}

/// Enumerate successors, skipping Label::text materialization when the
/// system supports it and the caller doesn't need text.
template <class Sys>
auto successors_of(const Sys& sys, const typename Sys::State& s,
                   sem::LabelMode mode) {
  if constexpr (HasLabelMode<Sys>) {
    return sys.successors(s, mode);
  } else {
    return sys.successors(s);
  }
}

/// One step of trace replay: find the successor of `cur` whose (canonical)
/// encoding equals `child_bytes`, append its label + description to
/// `labels`, and advance `cur` to that *concrete* successor. Under symmetry
/// the stored child is only an orbit representative; matching the canonical
/// encoding while carrying the concrete successor forward re-concretizes the
/// trace into a real path of the uncanonicalized transition relation (the
/// orbit re-search scheme — no per-step permutations are stored). Compares
/// size, then hash, then bytes — and reuses the caller's ByteSink — so
/// replaying a chain is linear in the encoded bytes enumerated, not
/// quadratic in re-allocated vectors.
template <class Sys>
void append_step_label(const Sys& sys, typename Sys::State& cur,
                       std::span<const std::byte> child_bytes,
                       SymmetryMode symmetry, ByteSink& sink,
                       std::vector<std::string>& labels) {
  const std::uint64_t child_hash = hash_bytes(child_bytes);
  for (auto& [succ, label] : sys.successors(cur)) {
    sink.clear();
    if constexpr (HasCanonicalize<Sys>) {
      if (symmetry == SymmetryMode::Canonical) {
        auto rep = succ;
        sys.canonicalize(rep);
        sys.encode(rep, sink);
      } else {
        sys.encode(succ, sink);
      }
    } else {
      sys.encode(succ, sink);
    }
    auto enc = sink.bytes();
    if (enc.size() != child_bytes.size()) continue;
    if (hash_bytes(enc) != child_hash) continue;
    if (!std::equal(enc.begin(), enc.end(), child_bytes.begin())) continue;
    labels.push_back(label.text + "  =>  " + sys.describe(succ));
    cur = std::move(succ);
    return;
  }
  labels.push_back("<trace reconstruction failed>");
}

/// Replay a root-first chain of stored encodings into trace labels (labels
/// are not stored during exploration to keep the visited set lean). Shared
/// by the sequential and sharded reconstructions.
template <class Sys>
std::vector<std::string> replay_chain(
    const Sys& sys, const std::vector<std::span<const std::byte>>& chain,
    SymmetryMode symmetry) {
  std::vector<std::string> labels;
  ByteSource root_src(chain.front());
  auto cur = sys.decode(root_src);
  labels.push_back("initial: " + sys.describe(cur));
  ByteSink sink;
  for (std::size_t i = 1; i < chain.size(); ++i)
    append_step_label(sys, cur, chain[i], symmetry, sink, labels);
  return labels;
}

/// One step of fingerprint-based trace replay: advance `cur` to the
/// successor whose (canonical) encoding fingerprints to `child_fp`. Under
/// hash compaction the visited set kept no state bytes, only fingerprints
/// — but every step taken here is a real transition enumerated from a
/// concrete state, so the resulting trace is a genuine path of the system;
/// the fingerprints only SELECT among the real successors. (A mid-chain
/// fingerprint collision could select a different genuine successor; the
/// violation itself was established on the concrete state at exploration
/// time, so the endpoint is never fabricated.)
template <class Sys>
void append_step_label_fp(const Sys& sys, typename Sys::State& cur,
                          std::uint64_t child_fp, FingerprintFn fp,
                          SymmetryMode symmetry, ByteSink& sink,
                          std::vector<std::string>& labels) {
  for (auto& [succ, label] : sys.successors(cur)) {
    sink.clear();
    if constexpr (HasCanonicalize<Sys>) {
      if (symmetry == SymmetryMode::Canonical) {
        auto rep = succ;
        sys.canonicalize(rep);
        sys.encode(rep, sink);
      } else {
        sys.encode(succ, sink);
      }
    } else {
      sys.encode(succ, sink);
    }
    if (fp(sink.bytes()) != child_fp) continue;
    labels.push_back(label.text + "  =>  " + sys.describe(succ));
    cur = std::move(succ);
    return;
  }
  labels.push_back("<trace reconstruction failed>");
}

/// Replay a root-first fingerprint chain into trace labels, starting from
/// the system's concrete initial state. Shared by the sequential and
/// sharded hash-compaction reconstructions.
template <class Sys>
std::vector<std::string> replay_fp_chain(const Sys& sys,
                                         const std::vector<std::uint64_t>& fps,
                                         FingerprintFn fp,
                                         SymmetryMode symmetry) {
  std::vector<std::string> labels;
  auto cur = sys.initial();
  labels.push_back("initial: " + sys.describe(cur));
  ByteSink sink;
  for (std::size_t i = 1; i < fps.size(); ++i)
    append_step_label_fp(sys, cur, fps[i], fp, symmetry, sink, labels);
  return labels;
}

/// Recompute the label sequence root -> `target` by replaying successor
/// enumeration along the BFS parent chain. The chain copies each state's
/// bytes: under Collapse, seen.at() re-expands into a scratch buffer that
/// the next at() overwrites, so spans cannot be held across the walk.
template <class Sys>
std::vector<std::string> rebuild_trace(const Sys& sys,
                                       const CollapsedStateSet& seen,
                                       const std::vector<std::uint32_t>& parent,
                                       std::uint32_t target,
                                       SymmetryMode symmetry) {
  std::vector<std::vector<std::byte>> owned;
  for (std::uint32_t at = target; at != 0xffffffffu; at = parent[at]) {
    auto b = seen.at(at);
    owned.emplace_back(b.begin(), b.end());
  }
  std::reverse(owned.begin(), owned.end());
  std::vector<std::span<const std::byte>> chain(owned.begin(), owned.end());
  return replay_chain(sys, chain, symmetry);
}

/// How a bfs_reach() run ended.
enum class BfsOutcome : std::uint8_t {
  Complete,   // every reachable state expanded
  Exhausted,  // the visited set's memory budget refused an insert
  Stopped,    // a callback returned false (violation found, etc.)
};

/// Breadth-first reachability skeleton shared by explore() and
/// check_progress(): root insertion, cursor-queue decode, and the
/// canonicalize/encode/insert path for every successor live here exactly
/// once. Policy hangs off three callbacks, each returning false to stop:
///
///   on_expand(index, state, succs)            before a state's edges
///                                             (succs is always the FULL
///                                             enumeration, even under POR,
///                                             so deadlock detection stays
///                                             exact)
///   on_edge(from, state, succ, label)         per edge, on the *concrete*
///                                             successor (pre-canonicalize;
///                                             edge checks need this)
///   on_insert(from, insert_result, succ, label)
///                                             after the insert attempt;
///                                             succ is canonicalized here
///
/// Under PorMode::Ample (systems with successors_por only) each state first
/// expands one ample candidate's edges; the rest are expanded too when any
/// ample successor was already visited — the BFS cycle proviso (C3): every
/// cycle of the reduced graph has a member whose first insertion precedes a
/// cycle edge into it, so that edge observes AlreadyPresent and its source
/// is fully expanded — no transition is ignored forever. `por_visible` masks
/// remotes whose moves an observer can see (LTL atoms); their candidates are
/// never selected (C2).
template <class Sys, class OnExpand, class OnEdge, class OnInsert>
BfsOutcome bfs_reach(const Sys& sys, CollapsedStateSet& seen,
                     SymmetryMode symmetry, sem::LabelMode mode, PorMode por,
                     std::uint64_t por_visible, OnExpand&& on_expand,
                     OnEdge&& on_edge, OnInsert&& on_insert) {
  ComponentSink sink;  // reused across every encode below
  {
    auto root = sys.initial();
    maybe_canonicalize(sys, root, symmetry);
    sys.encode(root, sink);
    auto ins = seen.insert(sink.bytes(), sink.marks());
    if (ins.outcome == StateSet::Outcome::Exhausted)
      return BfsOutcome::Exhausted;
    if (ins.outcome == StateSet::Outcome::Deferred) {
      // External tier: the root is pending in a partition file; one
      // resolve admits it (it cannot be a duplicate of anything).
      if (seen.resolve_pending() == ResolveOutcome::Failed)
        return BfsOutcome::Exhausted;
      CCREF_ASSERT(seen.size() == 1);
    } else {
      CCREF_ASSERT(ins.outcome == StateSet::Outcome::Inserted);
    }
  }
  for (std::uint32_t cursor = 0;; ++cursor) {
    if (cursor >= seen.size()) {
      // Deferred-frontier phase (external tier): the in-order frontier is
      // spent, but partitions may hold pending fingerprints below their
      // watermarks. Merge them all; genuinely-new states extend the
      // frontier and the sweep continues. RAM tiers answer Drained
      // immediately — this branch is their loop exit, same cost as the
      // old `cursor < seen.size()` condition.
      const ResolveOutcome rr = seen.resolve_pending();
      if (rr == ResolveOutcome::Failed) return BfsOutcome::Exhausted;
      if (rr == ResolveOutcome::Drained) break;
    }
    ByteSource src(seen.at(cursor));
    auto state = sys.decode(src);

    bool revisit = false;
    auto step = [&](auto& succ, sem::Label& label) {
      if (!on_edge(cursor, state, succ, label)) return BfsOutcome::Stopped;
      maybe_canonicalize(sys, succ, symmetry);
      sink.clear();
      sys.encode(succ, sink);
      auto ins = seen.insert(sink.bytes(), sink.marks());
      if (ins.outcome == StateSet::Outcome::Exhausted)
        return BfsOutcome::Exhausted;
      // A Deferred successor may yet prove fresh, so the C3 proviso must
      // assume a revisit — sound (at worst a full expansion), and the
      // checkers downgrade POR under the external tier anyway.
      if (ins.outcome == StateSet::Outcome::AlreadyPresent ||
          ins.outcome == StateSet::Outcome::Deferred)
        revisit = true;
      if (!on_insert(cursor, ins, succ, label)) return BfsOutcome::Stopped;
      return BfsOutcome::Complete;  // keep going
    };

    if constexpr (HasPor<Sys>) {
      if (por == PorMode::Ample) {
        auto ps = sys.successors_por(state, mode);
        if (!on_expand(cursor, state, ps.all)) return BfsOutcome::Stopped;
        const auto* amp = pick_ample(ps, por_visible);
        auto in_ample = [&](std::size_t e) {
          return amp && (e == amp->delivery ||
                         (e >= amp->local_begin && e < amp->local_end));
        };
        if (amp) {
          auto r = step(ps.all[amp->delivery].first,
                        ps.all[amp->delivery].second);
          if (r != BfsOutcome::Complete) return r;
          for (std::size_t e = amp->local_begin; e < amp->local_end; ++e) {
            r = step(ps.all[e].first, ps.all[e].second);
            if (r != BfsOutcome::Complete) return r;
          }
          if (!revisit) continue;  // proviso clear: postpone the rest
        }
        for (std::size_t e = 0; e < ps.all.size(); ++e) {
          if (in_ample(e)) continue;
          auto r = step(ps.all[e].first, ps.all[e].second);
          if (r != BfsOutcome::Complete) return r;
        }
        continue;
      }
    }
    auto succs = successors_of(sys, state, mode);
    if (!on_expand(cursor, state, succs)) return BfsOutcome::Stopped;
    for (auto& [succ, label] : succs) {
      auto r = step(succ, label);
      if (r != BfsOutcome::Complete) return r;
    }
  }
  return BfsOutcome::Complete;
}

}  // namespace detail

template <class Sys>
[[nodiscard]] CheckResult explore(const Sys& sys,
                                  const CheckOptions<Sys>& opts = {}) {
  auto t0 = std::chrono::steady_clock::now();
  CheckResult result;
  const bool external = opts.external.enabled();
  StorageOptions st{.compress = opts.compress,
                    .hash_compact = opts.hash_compact,
                    .fingerprint = opts.fingerprint,
                    // The fingerprint log exists only to re-concretize
                    // counterexamples; skip its 8 B/state (or the on-disk
                    // order log) when no trace is wanted.
                    .keep_fingerprints =
                        (opts.hash_compact || external) && opts.want_trace,
                    .spill = opts.spill,
                    .external = opts.external,
                    .expected_states = opts.expected_states};
  auto add_note = [&](const char* text) {
    if (!result.note.empty()) result.note += "; ";
    result.note += text;
  };
  if (external && opts.hash_compact)
    add_note(
        "hash-compact is subsumed by the external tier: it stores the "
        "same 64-bit fingerprints, on disk");
  if ((opts.hash_compact || external) &&
      opts.compress != CompressionMode::Off)
    add_note(
        "compress ignored under hash compaction: fingerprints leave no "
        "stored bytes to compress");
  CollapsedStateSet seen(opts.memory_limit, st);
  std::vector<std::uint32_t> parent;

  auto finish = [&](Status status) {
    result.status = status;
    result.states = seen.size();
    result.memory_bytes = seen.memory_used();
    result.pool_bytes = seen.stored_bytes();
    result.raw_pool_bytes = seen.raw_bytes();
    result.spill_bytes = seen.spill_bytes();
    result.waste_bytes = seen.waste_bytes();
    result.external_bytes = seen.external_bytes();
    result.merge_passes = seen.merge_passes();
    if (opts.hash_compact || external)
      result.omission_probability = omission_bound(seen.size());
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  };

  auto fail_at = [&](Status status, std::uint32_t index, std::string msg) {
    result.violation = std::move(msg);
    if (opts.want_trace) {
      if (external) {
        // Parents live in the on-disk order log (inserts answered
        // Deferred, so the engine-side parent vector was never fed);
        // replay the fingerprint chain like hash compaction does.
        std::vector<std::uint64_t> fps;
        for (std::uint64_t at = index;
             at != CollapsedStateSet::kNoParentIndex;
             at = seen.parent_at(static_cast<std::uint32_t>(at)))
          fps.push_back(seen.fingerprint_at(static_cast<std::uint32_t>(at)));
        std::reverse(fps.begin(), fps.end());
        result.trace = detail::replay_fp_chain(
            sys, fps,
            opts.fingerprint != nullptr ? opts.fingerprint
                                        : &default_fingerprint,
            opts.symmetry);
      } else if (opts.hash_compact) {
        std::vector<std::uint64_t> fps;
        for (std::uint32_t at = index; at != 0xffffffffu; at = parent[at])
          fps.push_back(seen.fingerprint_at(at));
        std::reverse(fps.begin(), fps.end());
        result.trace = detail::replay_fp_chain(
            sys, fps,
            opts.fingerprint != nullptr ? opts.fingerprint
                                        : &default_fingerprint,
            opts.symmetry);
      } else {
        result.trace =
            detail::rebuild_trace(sys, seen, parent, index, opts.symmetry);
      }
    }
    return finish(status);
  };

  // Labels feed nothing on the hot path unless an edge check reads them;
  // traces are rebuilt (with full labels) only after a violation.
  const sem::LabelMode mode =
      opts.edge_check ? sem::LabelMode::Full : sem::LabelMode::Quiet;

  // Invariants and edge checks observe state/edge detail the ample sets are
  // not invisible to (C2): a reduced search would check them only on the
  // reduced graph. Downgrade rather than return a weaker verdict.
  PorMode por = opts.por;
  if (por == PorMode::Ample && (opts.invariant || opts.edge_check)) {
    por = PorMode::Off;
    add_note(
        "por downgraded to off: invariants/edge checks must see every "
        "reachable state and edge");
  }
  // The ample cycle proviso (C3) re-expands a state when an ample
  // successor reads back AlreadyPresent; the external tier answers
  // Deferred instead, which must conservatively count as a revisit — so
  // every state would expand fully and the reduction would evaporate
  // while still reporting reduced-looking counts. Downgrade honestly.
  if (por == PorMode::Ample && external) {
    por = PorMode::Off;
    add_note(
        "por downgraded to off: the external tier defers duplicate "
        "detection, so the ample cycle proviso cannot observe revisits");
  }

  // Violation details are captured here by the callbacks; the matching
  // fail_at() runs once bfs_reach returns Stopped.
  Status stop_status = Status::Ok;
  std::uint32_t stop_index = 0;
  std::string stop_msg;
  auto stop = [&](Status status, std::uint32_t index, std::string msg) {
    stop_status = status;
    stop_index = index;
    stop_msg = std::move(msg);
    return false;
  };
  parent.push_back(0xffffffffu);  // the root bfs_reach is about to insert

  auto outcome = detail::bfs_reach(
      sys, seen, opts.symmetry, mode, por, /*por_visible=*/0,
      [&](std::uint32_t index, const auto& state, const auto& succs) {
        // RAM tiers check invariants on fresh successors at insertion (and
        // the root here); the external tier never materializes a fresh
        // successor at insert time — states surface at merge resolution —
        // so every state is checked when it is expanded instead. Same
        // coverage: each admitted state is expanded exactly once.
        if ((index == 0 || external) && opts.invariant) {
          std::string msg = opts.invariant(state);
          if (!msg.empty())
            return stop(Status::InvariantViolated, index, msg);
        }
        if (succs.empty() && opts.detect_deadlock)
          return stop(Status::Deadlock, index,
                      "deadlock: no enabled transition in " +
                          sys.describe(state));
        return true;
      },
      [&](std::uint32_t from, const auto& state, const auto& succ,
          const sem::Label& label) {
        ++result.transitions;
        if (opts.edge_check) {
          std::string msg = opts.edge_check(state, succ, label);
          if (!msg.empty())
            return stop(Status::InvariantViolated, from,
                        "edge '" + label.text + "': " + msg);
        }
        return true;
      },
      [&](std::uint32_t from, const StateSet::InsertResult& ins,
          const auto& succ, const sem::Label&) {
        if (ins.outcome != StateSet::Outcome::Inserted) return true;
        parent.push_back(from);
        if (opts.invariant) {
          std::string msg = opts.invariant(succ);
          if (!msg.empty())
            return stop(Status::InvariantViolated, ins.index, msg);
        }
        return true;
      });

  switch (outcome) {
    case detail::BfsOutcome::Exhausted: return finish(Status::Unfinished);
    case detail::BfsOutcome::Stopped:
      return fail_at(stop_status, stop_index, std::move(stop_msg));
    case detail::BfsOutcome::Complete: break;
  }
  return finish(Status::Ok);
}

}  // namespace ccref::verify
