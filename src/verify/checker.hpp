// Explicit-state reachability checker (the library's stand-in for SPIN).
//
// Works over any System type providing:
//   using State = ...;                              // value type
//   State initial() const;
//   std::vector<std::pair<State, sem::Label>> successors(const State&) const;
//   void encode(const State&, ByteSink&) const;
//   State decode(ByteSource&) const;
//   std::string describe(const State&) const;
//
// Exploration is breadth-first using the visited set as the queue, so
// counter-example traces are shortest. A memory budget bounds the visited
// set; exhausting it yields Status::Unfinished — the paper's Table 3 term
// for the asynchronous protocols that outgrew 64 MB.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "sem/label.hpp"
#include "support/bytes.hpp"
#include "verify/state_set.hpp"

namespace ccref::verify {

enum class Status : std::uint8_t {
  Ok,                 // full state space explored, no violations
  Unfinished,         // memory budget exhausted (paper: "Unfinished")
  InvariantViolated,  // a reachable state failed an invariant
  Deadlock,           // a reachable state has no successors
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::Unfinished: return "Unfinished";
    case Status::InvariantViolated: return "invariant-violated";
    case Status::Deadlock: return "deadlock";
  }
  return "?";
}

struct CheckResult {
  Status status = Status::Ok;
  std::size_t states = 0;       // distinct states stored
  std::size_t transitions = 0;  // edges traversed
  std::size_t memory_bytes = 0;
  double seconds = 0;
  std::string violation;           // message for violated invariant
  std::vector<std::string> trace;  // labels root -> offending state
};

template <class Sys>
struct CheckOptions {
  std::size_t memory_limit = 64u << 20;  // the paper's 64 MB
  bool detect_deadlock = true;
  bool want_trace = true;
  /// Return "" when the state is fine, otherwise the violation message.
  std::function<std::string(const typename Sys::State&)> invariant;
  /// Called on every traversed edge (used by the §4 simulation-relation
  /// checker); return "" or a violation message.
  std::function<std::string(const typename Sys::State&,
                            const typename Sys::State&, const sem::Label&)>
      edge_check;
};

namespace detail {

template <class Sys>
std::vector<std::byte> encode_state(const Sys& sys,
                                    const typename Sys::State& s) {
  ByteSink sink;
  sys.encode(s, sink);
  return sink.take();
}

/// Does the system offer the LabelMode-aware successor overload? Systems
/// without it (custom test harnesses) always pay for full labels.
template <class Sys>
concept HasLabelMode = requires(const Sys& sys, const typename Sys::State& s) {
  { sys.successors(s, sem::LabelMode::Quiet) };
};

/// Enumerate successors, skipping Label::text materialization when the
/// system supports it and the caller doesn't need text.
template <class Sys>
auto successors_of(const Sys& sys, const typename Sys::State& s,
                   sem::LabelMode mode) {
  if constexpr (HasLabelMode<Sys>) {
    return sys.successors(s, mode);
  } else {
    return sys.successors(s);
  }
}

/// One step of trace replay: find the successor of `pstate` whose encoding
/// equals `child_bytes` and append its label + description to `labels`.
/// Compares size, then hash, then bytes — and reuses the caller's ByteSink —
/// so replaying a chain is linear in the encoded bytes enumerated, not
/// quadratic in re-allocated vectors.
template <class Sys>
void append_step_label(const Sys& sys, const typename Sys::State& pstate,
                       std::span<const std::byte> child_bytes, ByteSink& sink,
                       std::vector<std::string>& labels) {
  const std::uint64_t child_hash = hash_bytes(child_bytes);
  for (auto& [succ, label] : sys.successors(pstate)) {
    sink.clear();
    sys.encode(succ, sink);
    auto enc = sink.bytes();
    if (enc.size() != child_bytes.size()) continue;
    if (hash_bytes(enc) != child_hash) continue;
    if (!std::equal(enc.begin(), enc.end(), child_bytes.begin())) continue;
    labels.push_back(label.text + "  =>  " + sys.describe(succ));
    return;
  }
  labels.push_back("<trace reconstruction failed>");
}

/// Recompute the label sequence root -> `target` by replaying successor
/// enumeration along the BFS parent chain (labels are not stored during
/// exploration to keep the visited set lean).
template <class Sys>
std::vector<std::string> rebuild_trace(const Sys& sys, const StateSet& seen,
                                       const std::vector<std::uint32_t>& parent,
                                       std::uint32_t target) {
  std::vector<std::uint32_t> chain;
  for (std::uint32_t at = target; at != 0xffffffffu; at = parent[at])
    chain.push_back(at);
  std::vector<std::string> labels;
  labels.push_back("initial: " +
                   sys.describe([&] {
                     ByteSource src(seen.at(chain.back()));
                     return sys.decode(src);
                   }()));
  ByteSink sink;
  for (std::size_t i = chain.size(); i-- > 1;) {
    ByteSource psrc(seen.at(chain[i]));
    auto pstate = sys.decode(psrc);
    append_step_label(sys, pstate, seen.at(chain[i - 1]), sink, labels);
  }
  return labels;
}

}  // namespace detail

template <class Sys>
[[nodiscard]] CheckResult explore(const Sys& sys,
                                  const CheckOptions<Sys>& opts = {}) {
  auto t0 = std::chrono::steady_clock::now();
  CheckResult result;
  StateSet seen(opts.memory_limit);
  std::vector<std::uint32_t> parent;

  auto finish = [&](Status status) {
    result.status = status;
    result.states = seen.size();
    result.memory_bytes = seen.memory_used();
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  };

  auto fail_at = [&](Status status, std::uint32_t index, std::string msg) {
    result.violation = std::move(msg);
    if (opts.want_trace)
      result.trace = detail::rebuild_trace(sys, seen, parent, index);
    return finish(status);
  };

  // Labels feed nothing on the hot path unless an edge check reads them;
  // traces are rebuilt (with full labels) only after a violation.
  const sem::LabelMode mode =
      opts.edge_check ? sem::LabelMode::Full : sem::LabelMode::Quiet;
  ByteSink sink;  // reused across every encode below

  {
    auto root = sys.initial();
    sys.encode(root, sink);
    auto ins = seen.insert(sink.bytes());
    CCREF_ASSERT(ins.outcome == StateSet::Outcome::Inserted);
    parent.push_back(0xffffffffu);
    if (opts.invariant) {
      std::string msg = opts.invariant(root);
      if (!msg.empty())
        return fail_at(Status::InvariantViolated, 0, std::move(msg));
    }
  }

  for (std::uint32_t cursor = 0; cursor < seen.size(); ++cursor) {
    ByteSource src(seen.at(cursor));
    auto state = sys.decode(src);
    auto succs = detail::successors_of(sys, state, mode);
    if (succs.empty() && opts.detect_deadlock)
      return fail_at(Status::Deadlock, cursor,
                     "deadlock: no enabled transition in " +
                         sys.describe(state));
    for (auto& [succ, label] : succs) {
      ++result.transitions;
      if (opts.edge_check) {
        std::string msg = opts.edge_check(state, succ, label);
        if (!msg.empty())
          return fail_at(Status::InvariantViolated, cursor,
                         "edge '" + label.text + "': " + msg);
      }
      sink.clear();
      sys.encode(succ, sink);
      auto ins = seen.insert(sink.bytes());
      switch (ins.outcome) {
        case StateSet::Outcome::Exhausted:
          return finish(Status::Unfinished);
        case StateSet::Outcome::AlreadyPresent:
          break;
        case StateSet::Outcome::Inserted: {
          parent.push_back(cursor);
          if (opts.invariant) {
            std::string msg = opts.invariant(succ);
            if (!msg.empty())
              return fail_at(Status::InvariantViolated, ins.index,
                             std::move(msg));
          }
          break;
        }
      }
    }
  }
  return finish(Status::Ok);
}

}  // namespace ccref::verify
