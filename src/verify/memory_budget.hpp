// Shared memory budget for visited-state storage.
//
// Table 3 of the paper caps each verification at 64 MB; the sequential
// StateSet enforced that with a plain byte counter. The parallel engine
// splits the visited set into independently-locked shards that must all
// draw on ONE budget — otherwise K shards would quietly get K×64 MB and
// `Unfinished` would stop meaning what the paper means. Reservations are
// lock-free (CAS on a single atomic) so shards never serialize on the
// accountant.
#pragma once

#include <atomic>
#include <cstddef>

namespace ccref::verify {

class MemoryBudget {
 public:
  explicit MemoryBudget(std::size_t limit_bytes) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Charge `delta` bytes against the budget; false (and no charge) if the
  /// total would exceed the limit.
  [[nodiscard]] bool try_reserve(std::size_t delta) {
    std::size_t used = used_.load(std::memory_order_relaxed);
    for (;;) {
      if (used + delta > limit_) return false;
      if (used_.compare_exchange_weak(used, used + delta,
                                      std::memory_order_relaxed))
        return true;
    }
  }

  /// Return `delta` previously reserved bytes (e.g. a hash table freed
  /// after growth).
  void release(std::size_t delta) {
    used_.fetch_sub(delta, std::memory_order_relaxed);
  }

  /// Unconditionally record `delta` bytes as used, even past the limit.
  /// For construction-time floors (a table needs SOME slot array to exist):
  /// the memory is already allocated, so refusing the charge would make
  /// used() lie. used() may then exceed limit(), and every subsequent
  /// try_reserve fails until a matching release — the structure is born
  /// exhausted rather than born dishonest.
  void charge(std::size_t delta) {
    used_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t used() const {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t limit() const { return limit_; }

 private:
  std::atomic<std::size_t> used_{0};
  std::size_t limit_;
};

}  // namespace ccref::verify
