// Memory-accounted visited-state set for explicit-state exploration.
//
// Open-addressing hash table over byte-encoded states, with all state bytes
// appended to a chunked pool. Insertion order is stable, so the set doubles
// as the BFS queue (the cursor trick): states are numbered 0..size()-1 in
// discovery order and retrievable by index.
//
// Memory accounting is explicit because Table 3 of the paper reports
// verifications "limited to 64MB of memory": insert() refuses (returns
// Exhausted) once pool + table + index bytes would exceed the limit, letting
// the checker report `Unfinished` exactly like the paper does. The budget can
// be owned (sequential checker, one set) or shared (ShardedStateSet: K shards
// drawing on one limit).
//
// The pool is a ChunkedBytePool (chunk addresses never move, so at() spans
// stay valid across inserts), which is what lets a SpillPolicy route chunks
// past the RAM high-water mark into mmap-backed spill files: the random-
// access table and entry index stay in RAM, the append-only payload bytes
// degrade to disk, and `Unfinished` becomes a disk-space event.
//
// Symmetry reduction (symmetry.hpp) composes transparently: the checkers
// canonicalize states *before* encoding, so under SymmetryMode::Canonical
// this set only ever sees — and spends its budget on — one representative
// byte string per orbit.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "support/atomic_table.hpp"
#include "support/contracts.hpp"
#include "support/hash.hpp"
#include "support/spill.hpp"
#include "verify/memory_budget.hpp"

namespace ccref::verify {

class StateSet {
 public:
  // One outcome vocabulary across the sequential and lock-free sets, so
  // agreement tests compare results without translation.
  using Outcome = ::ccref::InsertOutcome;

  struct InsertResult {
    Outcome outcome;
    std::uint32_t index;  // valid unless Exhausted
  };

  /// `expected_states` pre-sizes the table for that many entries at the 0.7
  /// load factor, charged to the budget up front — a correct hint on a large
  /// run replaces log2(states/1024) rehash storms (each of which briefly
  /// holds two tables) with one charge at construction. 0 keeps the default
  /// 1024-slot table; the hint is capped so it can never pre-spend more than
  /// half the budget on slots.
  explicit StateSet(std::size_t memory_limit_bytes,
                    std::size_t expected_states = 0, SpillPolicy spill = {})
      : owned_(std::make_unique<MemoryBudget>(memory_limit_bytes)),
        budget_(owned_.get()),
        pool_(*budget_, kPoolChunk0, spill) {
    init_table(expected_states, kInitialSlots);
  }

  /// Shard constructor: draw on a budget shared with sibling sets. The
  /// caller keeps `budget` alive for the set's lifetime. `min_slots` (a
  /// power of two) lets small auxiliary sets — collapse-compression
  /// dictionaries — start below the default 1024 slots; `pool_chunk0`
  /// likewise floors their pool chunks below the 4 KB default.
  explicit StateSet(MemoryBudget& budget, std::size_t expected_states = 0,
                    std::size_t min_slots = kInitialSlots,
                    SpillPolicy spill = {},
                    std::size_t pool_chunk0 = kPoolChunk0)
      : budget_(&budget), pool_(budget, pool_chunk0, spill) {
    init_table(expected_states, min_slots);
  }

  [[nodiscard]] InsertResult insert(std::span<const std::byte> state) {
    return insert(state, hash_bytes(state));
  }

  /// Insert with a precomputed hash (the sharded set hashes once to pick the
  /// shard and reuses the value here).
  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::uint64_t h) {
    std::size_t mask = table_.size() - 1;
    std::size_t slot = h & mask;
    for (;;) {
      std::uint32_t e = table_[slot];
      if (e == kEmpty) break;
      if (entries_[e].hash == h && equals(e, state))
        return {Outcome::AlreadyPresent, e};
      slot = (slot + 1) & mask;
    }

    // Admission control for the index structures (the pool charges its own
    // chunks inside alloc). Vector growth doubles capacity, so project the
    // *post-growth* footprint.
    auto grown = [](std::size_t cap, std::size_t need) {
      return need <= cap ? cap : std::max(cap * 2, need);
    };
    std::size_t projected =
        grown(entries_.capacity(), entries_.size() + 1) * sizeof(Entry) +
        table_.capacity() * sizeof(std::uint32_t);
    if (projected > reserved_) {
      if (!budget_->try_reserve(projected - reserved_)) {
        // Nothing was allocated; hand back anything charged beyond actual
        // use so sibling shards on a shared budget see the true headroom.
        reconcile();
        return {Outcome::Exhausted, 0};
      }
      reserved_ = projected;
    }

    // Pool placement next: a refused chunk (RAM and spill both exhausted)
    // aborts before any index mutation.
    std::uint32_t off = 0;
    if (!state.empty()) {
      off = pool_.alloc(state.size());
      if (off == decltype(pool_)::kNpos) {
        reconcile();
        return {Outcome::Exhausted, 0};
      }
      std::memcpy(pool_.data(off), state.data(), state.size());
    }

    auto index = static_cast<std::uint32_t>(entries_.size());
    CCREF_ASSERT_MSG(index != kEmpty, "state count overflow");
    entries_.push_back({h, off, static_cast<std::uint32_t>(state.size())});
    payload_bytes_ += state.size();
    table_[slot] = index;
    reconcile();
    if (entries_.size() * 10 > table_.size() * 7) {
      if (!grow()) {
        // Rolling back keeps the set consistent if the grow would burst the
        // budget; the caller sees exhaustion on this insert. The pool bump
        // pointer rewinds to exactly where alloc placed this record (the
        // set is single-threaded), and reconcile releases whatever the
        // index vectors projected beyond their shrunken sizes.
        table_[slot] = kEmpty;
        if (!state.empty()) pool_.rewind(off, state.size());
        payload_bytes_ -= state.size();
        entries_.pop_back();
        reconcile();
        return {Outcome::Exhausted, 0};
      }
    }
    return {Outcome::Inserted, index};
  }

  [[nodiscard]] std::span<const std::byte> at(std::uint32_t index) const {
    CCREF_REQUIRE(index < entries_.size());
    const Entry& e = entries_[index];
    if (e.len == 0) return {};
    return {pool_.data(e.offset), e.len};
  }

  [[nodiscard]] std::uint64_t hash_at(std::uint32_t index) const {
    CCREF_REQUIRE(index < entries_.size());
    return entries_[index].hash;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Bytes of state payload actually stored (the raw-vs-collapsed
  /// compression comparisons are about this quantity, not the table/index
  /// overhead that memory_used() also charges).
  [[nodiscard]] std::size_t pool_bytes() const { return payload_bytes_; }

  /// RAM bytes held: pool chunks charged to the budget plus the index
  /// structures. Spilled chunks are in spill_bytes(), not here.
  [[nodiscard]] std::size_t memory_used() const {
    return pool_.charged() + index_bytes();
  }

  /// Payload bytes held in mmap-backed spill files.
  [[nodiscard]] std::size_t spill_bytes() const { return pool_.spill_bytes(); }

  /// Pool bytes held but never occupied by a record (chunk-seam skips and
  /// the final chunk's unused tail).
  [[nodiscard]] std::size_t waste_bytes() const { return pool_.bytes_waste(); }

  [[nodiscard]] std::size_t memory_limit() const { return budget_->limit(); }

  [[nodiscard]] MemoryBudget& budget() { return *budget_; }

 private:
  struct Entry {
    std::uint64_t hash;
    std::uint32_t offset;  // into pool_
    std::uint32_t len;
  };

  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::size_t kInitialSlots = 1024;
  static constexpr std::size_t kPoolChunk0 = 4096;

  /// Charge the initial table to the budget immediately. An idle shard on a
  /// shared budget still holds its table; deferring the charge to the first
  /// insert would let budget().used() drift below the memory actually held.
  /// The expected-states hint is honored up to half the budget: a wild hint
  /// must degrade into ordinary growth, not immediate exhaustion.
  void init_table(std::size_t expected_states, std::size_t min_slots) {
    std::size_t slots = min_slots;
    while (slots * 7 < expected_states * 10) slots *= 2;
    while (slots > min_slots &&
           slots * sizeof(std::uint32_t) > budget_->limit() / 2)
      slots /= 2;
    table_.resize(slots, kEmpty);
    reconcile();
  }

  [[nodiscard]] bool equals(std::uint32_t e,
                            std::span<const std::byte> state) const {
    const Entry& ent = entries_[e];
    if (ent.len != state.size()) return false;
    if (ent.len == 0) return true;
    return std::memcmp(pool_.data(ent.offset), state.data(), ent.len) == 0;
  }

  [[nodiscard]] std::size_t index_bytes() const {
    return entries_.capacity() * sizeof(Entry) +
           table_.capacity() * sizeof(std::uint32_t);
  }

  /// Re-align the reservation with what the index vectors actually hold:
  /// charge any capacity grabbed beyond the projection (libstdc++ doubles
  /// exactly, so that direction is normally a no-op) and release any
  /// projected bytes the vectors never took — after a growth policy lands
  /// below max(2*cap, need), or after an insert rollback. Leaving the
  /// surplus charged would starve sibling shards drawing on a shared
  /// budget. (The pool reconciles nothing: chunks are charged in full on
  /// allocation and held until destruction.)
  void reconcile() {
    std::size_t actual = index_bytes();
    if (actual > reserved_) {
      // Over-projection failure here would mean the allocator already
      // grabbed the memory; record it rather than lie about usage.
      (void)budget_->try_reserve(actual - reserved_);
      reserved_ = actual;
    } else if (reserved_ > actual) {
      budget_->release(reserved_ - actual);
      reserved_ = actual;
    }
  }

  [[nodiscard]] bool grow() {
    std::size_t new_slots = table_.size() * 2;
    // The old and the new table coexist during rehash; both are charged.
    if (!budget_->try_reserve(new_slots * sizeof(std::uint32_t))) return false;
    reserved_ += new_slots * sizeof(std::uint32_t);
    std::vector<std::uint32_t> fresh(new_slots, kEmpty);
    std::size_t mask = new_slots - 1;
    for (std::uint32_t e = 0; e < entries_.size(); ++e) {
      std::size_t slot = entries_[e].hash & mask;
      while (fresh[slot] != kEmpty) slot = (slot + 1) & mask;
      fresh[slot] = e;
    }
    std::size_t old_bytes = table_.capacity() * sizeof(std::uint32_t);
    table_ = std::move(fresh);
    budget_->release(old_bytes);
    reserved_ -= old_bytes;
    return true;
  }

  std::unique_ptr<MemoryBudget> owned_;  // null when the budget is shared
  MemoryBudget* budget_;
  std::size_t reserved_ = 0;  // index bytes currently charged to the budget
  std::size_t payload_bytes_ = 0;
  ChunkedBytePool<MemoryBudget> pool_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> table_;
};

}  // namespace ccref::verify
