// Symmetry (scalarset) reduction mode for the explicit-state engines.
//
// The paper's star topology is one home plus n *identical* remotes, so the
// global state space is invariant under any permutation of the remote
// indices: if state s is reachable, so is pi(s) for every permutation pi,
// and s violates an invariant iff pi(s) does (all shipped invariants are
// symmetric in the remote index). Under SymmetryMode::Canonical the
// checkers therefore store one *representative per orbit*: every state is
// canonicalized — remotes sorted into a canonical order, with the inducing
// permutation applied to every node-indexed fact — before it is encoded and
// hashed into the visited set. Reported state counts become orbit counts
// (<= the full count, by up to n!), error reachability is preserved, and
// counterexample traces are re-concretized during reconstruction by
// searching each orbit for a matching concrete successor.
//
// Canonicalization happens *before* hashing, so the reduction composes
// unchanged with StateSet, ShardedStateSet (the parallel engine), and
// BitstateSet — each of them only ever sees canonical byte encodings.
#pragma once

#include <optional>
#include <string_view>

namespace ccref::verify {

enum class SymmetryMode : std::uint8_t {
  Off,        // store every concrete state (bit-identical to prior results)
  Canonical,  // store one canonical representative per permutation orbit
};

[[nodiscard]] constexpr const char* to_string(SymmetryMode m) {
  switch (m) {
    case SymmetryMode::Off: return "off";
    case SymmetryMode::Canonical: return "canonical";
  }
  return "?";
}

/// Parse a `--symmetry` flag value; nullopt on anything unknown.
[[nodiscard]] inline std::optional<SymmetryMode> parse_symmetry(
    std::string_view text) {
  if (text == "off") return SymmetryMode::Off;
  if (text == "canonical" || text == "canon") return SymmetryMode::Canonical;
  return std::nullopt;
}

}  // namespace ccref::verify
