// Fair accepting-lasso search: LTL model checking over the Büchi product
// (the liveness side of the paper's claims — §2.5 weak-fairness progress,
// §6 per-node starvation — that the reachability checker cannot express).
//
// The engine explores the product of a system (rendezvous or asynchronous
// semantics, or any System type checker.hpp accepts) with a generalized
// Büchi automaton for the *negated* property (ltl/buchi.hpp), then runs an
// SCC-based emptiness check (iterative Tarjan): the property fails iff some
// reachable SCC supports a cycle that
//   - visits every automaton acceptance set (the ¬φ obligations), and
//   - is *fair* under the requested FairnessMode.
//
// Fairness is folded in as acceptance conditions on product edges/states
// rather than extra automaton states:
//   Weak    per-process weak fairness (justice): a process continuously
//           enabled must eventually act. Edge marks: "process p acted" or
//           "p was disabled at the source". A cycle is weakly fair iff every
//           process has a marked edge on it — an SCC-local coverage check.
//   Strong  Weak plus per-remote *service* fairness (compassion, Streett):
//           if a grant to remote i is enabled infinitely often, remote i is
//           granted infinitely often. §6's shared-pool argument is exactly
//           this assumption: with an n-slot buffer the home cannot ignore a
//           buffered request forever. Checked by the classic Streett
//           recursion: delete the E_i-states of violated pairs, re-SCC.
//
// Counterexamples are lassos: a stem (BFS-shortest to the cycle entry) plus
// a cycle routed through every required mark. Both are re-concretized with
// the same orbit re-search replay_chain/append_step_label machinery the
// safety checker uses, so they compose with --symmetry canonical: each
// reported step is a real transition of the raw (uncanonicalized) relation;
// under symmetry the cycle closes up to a remote permutation of the entry
// state (the concrete trace re-enters the entry's orbit).
//
// Memory: product states live in the same budget-accounted StateSet as
// reachability; auxiliary arrays (parents, edges, fairness marks, Tarjan
// stacks) are charged to the identical MemoryBudget, so the paper's 64 MB
// cap yields Status::Unfinished exactly like Table 3.
#pragma once

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ltl/buchi.hpp"
#include "support/strings.hpp"
#include "verify/checker.hpp"

namespace ccref::verify {

enum class FairnessMode : std::uint8_t {
  None,    // any accepting cycle counts (no fairness assumption)
  Weak,    // per-process weak fairness (the paper's §2.5 assumption)
  Strong,  // weak + per-remote service fairness (the §6 buffer argument)
};

[[nodiscard]] constexpr const char* to_string(FairnessMode m) {
  switch (m) {
    case FairnessMode::None: return "none";
    case FairnessMode::Weak: return "weak";
    case FairnessMode::Strong: return "strong";
  }
  return "?";
}

/// Parse a `--fairness` flag value; nullopt on anything unknown.
[[nodiscard]] inline std::optional<FairnessMode> parse_fairness(
    std::string_view text) {
  if (text == "none") return FairnessMode::None;
  if (text == "weak") return FairnessMode::Weak;
  if (text == "strong") return FairnessMode::Strong;
  return std::nullopt;
}

struct LivenessOptions {
  std::size_t memory_limit = 64u << 20;  // the paper's 64 MB
  SymmetryMode symmetry = SymmetryMode::Off;
  FairnessMode fairness = FairnessMode::Weak;
  /// Ample-set reduction over the product (por.hpp). Only sound for
  /// stutter-invariant (next-free) properties, which ltl/check.hpp gates;
  /// the engine itself downgrades to Off under fairness (ample sets postpone
  /// transitions, which breaks per-process enabled/taken marks) and notes it.
  PorMode por = PorMode::Off;
  /// Remotes whose moves the formula's atoms can observe (bit i = remote i).
  /// Candidates for visible remotes are never selected (condition C2).
  /// ~0 — everything visible — makes Ample a no-op; ltl/check.hpp computes
  /// the real mask from the bound atoms.
  std::uint64_t por_visible = ~0ull;
  /// COLLAPSE component interning over product states (collapse.hpp): the
  /// automaton prefix becomes its own component, the system components keep
  /// their classes. Verdict-neutral.
  CompressionMode compress = CompressionMode::Off;
  /// Pre-size the product visited set (0: grow on demand).
  std::size_t expected_states = 0;
  bool want_trace = true;
};

/// Same engine-metadata shape as CheckResult/ProgressResult (status, states,
/// transitions, memory, seconds) so bench rows stay uniform.
struct LivenessResult {
  Status status = Status::Ok;   // Ok | Unfinished | LivenessViolated
  std::size_t states = 0;       // product states stored
  std::size_t transitions = 0;  // product edges recorded
  std::size_t memory_bytes = 0;
  double seconds = 0;
  std::string violation;           // lasso summary when LivenessViolated
  std::string note;                // engine notes (e.g. symmetry downgrade)
  std::vector<std::string> stem;   // labels: initial -> cycle entry
  std::vector<std::string> cycle;  // labels around the fair accepting cycle
};

namespace detail {

template <class Sys>
concept HasNumRemotes = requires(const Sys& sys) {
  { sys.num_remotes() } -> std::convertible_to<int>;
};

/// One stored product edge. `fair` carries the weak-fairness marks (bit 0 =
/// home, bit i+1 = remote i: set when that process executed the step or was
/// disabled at its source). `granted` is the remote granted by the step
/// (Streett T_i marks), or -1.
struct ProductEdge {
  std::uint64_t fair;
  std::uint32_t to;
  std::int8_t granted;
};

/// Iterative Tarjan over the recorded product graph, restricted to nodes
/// with alive[v] != 0. Appends each SCC (as a vector of node ids) to `out`.
inline void tarjan_sccs(const std::vector<std::uint64_t>& edge_start,
                        const std::vector<ProductEdge>& edges,
                        const std::vector<std::uint8_t>& alive,
                        const std::vector<std::uint32_t>& roots,
                        std::vector<std::vector<std::uint32_t>>& out) {
  const std::uint32_t kUnvisited = 0xffffffffu;
  const std::size_t n = edge_start.size() - 1;
  std::vector<std::uint32_t> index(n, kUnvisited), low(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  std::uint32_t counter = 0;

  struct Frame {
    std::uint32_t v;
    std::uint64_t edge;  // next outgoing edge offset to look at
  };
  std::vector<Frame> call;

  for (std::uint32_t root : roots) {
    if (!alive[root] || index[root] != kUnvisited) continue;
    call.push_back({root, edge_start[root]});
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!call.empty()) {
      Frame& f = call.back();
      if (f.edge < edge_start[f.v + 1]) {
        std::uint32_t w = edges[f.edge].to;
        ++f.edge;
        if (!alive[w]) continue;
        if (index[w] == kUnvisited) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = 1;
          call.push_back({w, edge_start[w]});
        } else if (on_stack[w]) {
          if (index[w] < low[f.v]) low[f.v] = index[w];
        }
        continue;
      }
      std::uint32_t v = f.v;
      call.pop_back();
      if (!call.empty() && low[v] < low[call.back().v])
        low[call.back().v] = low[v];
      if (low[v] == index[v]) {
        std::vector<std::uint32_t> scc;
        for (;;) {
          std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          scc.push_back(w);
          if (w == v) break;
        }
        out.push_back(std::move(scc));
      }
    }
  }
}

}  // namespace detail

/// Search the system x automaton product for a fair accepting lasso. `aut`
/// recognizes the *negated* property; `atoms` are the bound AP predicates
/// (ltl/ap.hpp), indexed as in the automaton's literal masks. State
/// predicates are evaluated on each step's target state, event predicates on
/// its label; the initial state itself carries no letter.
template <class Sys>
[[nodiscard]] LivenessResult find_accepting_lasso(
    const Sys& sys, const ltl::Buchi& aut,
    const std::vector<std::function<bool(const typename Sys::State&,
                                         const sem::Label&)>>& atoms,
    const LivenessOptions& opts = {}) {
  auto t0 = std::chrono::steady_clock::now();
  LivenessResult result;
  CCREF_REQUIRE(atoms.size() == aut.num_atoms);

  // Process universe for the fairness marks. Systems without num_remotes()
  // (custom test harnesses) run without fairness constraints.
  int n_remotes = 0;
  if constexpr (detail::HasNumRemotes<Sys>) n_remotes = sys.num_remotes();
  CCREF_REQUIRE(n_remotes <= 62);
  const bool fairness_on =
      opts.fairness != FairnessMode::None && n_remotes > 0;

  // Fairness marks name processes in the coordinates of each edge's *source
  // representative*. Canonicalization permutes remotes between steps, so on
  // a quotient cycle those frames disagree and a per-bit coverage check is
  // meaningless both ways (a cycle fair in mixed frames may treat no
  // concrete process fairly, and vice versa). Sound composition needs the
  // permutation-annotated quotient (Emerson & Sistla 1997), which this
  // engine does not build — fall back to the full product and say so.
  // Fairness-free emptiness is frame-invariant (acceptance lives on the
  // automaton component; atoms reaching this engine are orbit-invariant),
  // so SymmetryMode::Canonical stays available for FairnessMode::None.
  SymmetryMode symmetry = opts.symmetry;
  if (fairness_on && symmetry == SymmetryMode::Canonical) {
    symmetry = SymmetryMode::Off;
    result.note =
        "symmetry downgraded to off: fairness marks are not invariant "
        "under the orbit quotient (use --fairness none to keep it)";
  }
  // Fairness constrains which cycles count through per-process enabled/taken
  // marks on every edge; an ample set postpones enabled transitions, so a
  // reduced product can both hide fair cycles and manufacture spuriously
  // fair ones. Same pattern as the symmetry downgrade above: fall back and
  // say so rather than return a weaker verdict.
  PorMode por = opts.por;
  if (fairness_on && por == PorMode::Ample) {
    por = PorMode::Off;
    const char* msg =
        "por downgraded to off: fairness marks are not preserved by the "
        "ample-set reduction (use --fairness none to keep it)";
    result.note = result.note.empty() ? msg : result.note + "; " + msg;
  }
  const bool strong = opts.fairness == FairnessMode::Strong && n_remotes > 0;
  const int num_procs = fairness_on ? n_remotes + 1 : 0;
  const std::uint64_t procs_mask =
      num_procs ? (1ull << num_procs) - 1 : 0;
  auto proc_bit = [&](int actor) -> int {
    if (!fairness_on) return -1;
    if (actor == -1) return 0;
    if (actor >= 0 && actor < n_remotes) return actor + 1;
    return -1;
  };

  CollapsedStateSet seen(opts.memory_limit, opts.compress,
                         opts.expected_states);
  std::vector<std::uint32_t> parent;         // first-discovery BFS parent
  std::vector<std::uint32_t> aut_of;         // automaton component per state
  std::vector<std::uint64_t> grant_enabled;  // Streett E_i bits per state
  std::vector<std::uint64_t> edge_start;     // CSR offsets, one per state
  std::vector<detail::ProductEdge> edges;

  // Auxiliary arrays are charged to the same budget as the visited set, so
  // the 64 MB cap means the whole liveness search, like the paper's runs.
  std::size_t aux_reserved = 0;
  auto aux_bytes = [&] {
    return parent.capacity() * sizeof(std::uint32_t) +
           aut_of.capacity() * sizeof(std::uint32_t) +
           grant_enabled.capacity() * sizeof(std::uint64_t) +
           edge_start.capacity() * sizeof(std::uint64_t) +
           edges.capacity() * sizeof(detail::ProductEdge);
  };
  auto charge_aux = [&] {
    std::size_t now = aux_bytes();
    if (now <= aux_reserved) return true;
    if (!seen.budget().try_reserve(now - aux_reserved)) return false;
    aux_reserved = now;
    return true;
  };

  auto finish = [&](Status status) {
    result.status = status;
    result.states = seen.size();
    result.memory_bytes = seen.memory_used() + aux_bytes();
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  };

  auto valuation = [&](const typename Sys::State& target,
                       const sem::Label& label) {
    std::uint64_t v = 0;
    for (std::size_t a = 0; a < atoms.size(); ++a)
      if (atoms[a](target, label)) v |= 1ull << a;
    return v;
  };

  // The automaton component gets dictionary class 4 (the system encoders use
  // 0-3); the system components carry their own classes across via the
  // mark-shifting raw() overload.
  constexpr std::uint8_t kCompAutomaton = 4;
  ComponentSink sink;
  {
    auto root = sys.initial();
    detail::maybe_canonicalize(sys, root, symmetry);
    sink.u32(0);  // automaton initial pseudo-state
    sink.boundary(kCompAutomaton);
    sys.encode(root, sink);
    auto ins = seen.insert(sink.bytes(), sink.marks());
    if (ins.outcome == StateSet::Outcome::Exhausted)
      return finish(Status::Unfinished);
    parent.push_back(0xffffffffu);
    aut_of.push_back(0);
    grant_enabled.push_back(0);
  }

  // ---- product BFS -------------------------------------------------------
  ComponentSink enc;  // reused per-system-edge encoding
  for (std::uint32_t cursor = 0; cursor < seen.size(); ++cursor) {
    edge_start.push_back(edges.size());
    const std::uint32_t q = aut_of[cursor];
    ByteSource src(seen.at(cursor));
    (void)src.u32();  // skip the automaton prefix
    auto state = sys.decode(src);

    // Under an engaged reduction the candidate choice depends only on the
    // system component, so two product states sharing a system state expand
    // the same ample set; the cycle proviso (revisit below) is evaluated on
    // product inserts, where the cycles we must not starve live.
    decltype(detail::successors_of(sys, state, sem::LabelMode::Quiet)) succs;
    std::uint32_t amp_delivery = 0, amp_begin = 0, amp_end = 0;
    bool have_amp = false;
    bool computed = false;
    if constexpr (detail::HasPor<Sys>) {
      if (por == PorMode::Ample) {
        auto ps = sys.successors_por(state, sem::LabelMode::Quiet);
        if (const auto* amp = detail::pick_ample(ps, opts.por_visible)) {
          amp_delivery = amp->delivery;
          amp_begin = amp->local_begin;
          amp_end = amp->local_end;
          have_amp = true;
        }
        succs = std::move(ps.all);
        computed = true;
      }
    }
    if (!computed)
      succs = detail::successors_of(sys, state, sem::LabelMode::Quiet);

    std::uint64_t enabled = 0, genabled = 0;
    for (auto& [succ, label] : succs) {
      int p = proc_bit(label.actor);
      if (p >= 0) enabled |= 1ull << p;
      if (strong && label.completes_rendezvous && label.granted_to >= 0 &&
          label.granted_to < n_remotes)
        genabled |= 1ull << label.granted_to;
    }
    grant_enabled[cursor] = genabled;
    const std::uint64_t disabled_mask = procs_mask & ~enabled;

    // `system_enc` must not alias the visited set's pool: insert() below can
    // reallocate it mid-loop.
    bool revisit = false;  // an ample product successor was already visited
    auto push_product = [&](std::uint64_t v,
                            std::span<const std::byte> system_enc,
                            std::span<const ComponentMark> system_marks,
                            std::uint64_t fair, std::int8_t granted) {
      for (std::uint32_t q2 : aut.succ[q]) {
        if (!aut.admits(q2, v)) continue;
        sink.clear();
        sink.u32(q2);
        sink.boundary(kCompAutomaton);
        sink.raw(system_enc, system_marks);
        auto ins = seen.insert(sink.bytes(), sink.marks());
        if (ins.outcome == StateSet::Outcome::Exhausted) return false;
        if (ins.outcome == StateSet::Outcome::Inserted) {
          parent.push_back(cursor);
          aut_of.push_back(q2);
          grant_enabled.push_back(0);
        } else {
          revisit = true;
        }
        edges.push_back({fair, ins.index, granted});
        ++result.transitions;
      }
      return true;
    };

    if (succs.empty()) {
      // Deadlock: stutter-extend with an invisible self-step so the LTL
      // semantics stays over infinite words. Nothing is enabled, so every
      // weak-fairness constraint is vacuously satisfied on this edge.
      // Re-encode the decoded state rather than slicing the stored bytes:
      // encoding is canonical, this regenerates the component marks, and it
      // cannot alias the visited set's pool (or, under Collapse, the at()
      // scratch buffer that push_product's insert would invalidate).
      sem::Label stutter;
      std::uint64_t v = valuation(state, stutter);
      enc.clear();
      sys.encode(state, enc);
      if (!push_product(v, enc.bytes(), enc.marks(), procs_mask, -1))
        return finish(Status::Unfinished);
    } else {
      auto emit = [&](std::size_t e) {
        auto& [succ, label] = succs[e];
        // Valuation on the concrete successor (symmetric atoms are orbit-
        // invariant; asymmetric atoms force symmetry off — check.hpp).
        std::uint64_t v = valuation(succ, label);
        int p = proc_bit(label.actor);
        std::uint64_t fair =
            disabled_mask | (p >= 0 ? (1ull << p) : 0);
        std::int8_t granted =
            (strong && label.completes_rendezvous && label.granted_to >= 0 &&
             label.granted_to < n_remotes)
                ? static_cast<std::int8_t>(label.granted_to)
                : std::int8_t{-1};
        detail::maybe_canonicalize(sys, succ, symmetry);
        enc.clear();
        sys.encode(succ, enc);
        return push_product(v, enc.bytes(), enc.marks(), fair, granted);
      };
      if (have_amp) {
        if (!emit(amp_delivery)) return finish(Status::Unfinished);
        for (std::size_t e = amp_begin; e < amp_end; ++e)
          if (!emit(e)) return finish(Status::Unfinished);
        if (revisit) {
          for (std::size_t e = 0; e < succs.size(); ++e) {
            if (e == amp_delivery || (e >= amp_begin && e < amp_end))
              continue;
            if (!emit(e)) return finish(Status::Unfinished);
          }
        }
      } else {
        for (std::size_t e = 0; e < succs.size(); ++e)
          if (!emit(e)) return finish(Status::Unfinished);
      }
    }
    if (!charge_aux()) return finish(Status::Unfinished);
  }
  edge_start.push_back(edges.size());

  // ---- SCC-based emptiness + fairness ------------------------------------
  const std::size_t n_states = seen.size();
  // Tarjan bookkeeping: index/low/on_stack/stacks, ~13 bytes per state.
  if (!seen.budget().try_reserve(n_states * 16))
    return finish(Status::Unfinished);
  aux_reserved += n_states * 16;

  const std::uint32_t all_acc = aut.all_acc_mask();
  std::vector<std::uint8_t> alive(n_states, 1);
  std::vector<std::uint32_t> all_roots(n_states);
  for (std::uint32_t i = 0; i < n_states; ++i) all_roots[i] = i;
  std::vector<std::vector<std::uint32_t>> work;
  detail::tarjan_sccs(edge_start, edges, alive, all_roots, work);

  // Epoch-marked membership test shared by all component inspections.
  std::vector<std::uint32_t> mark(n_states, 0);
  std::uint32_t epoch = 0;

  std::vector<std::uint32_t> found;  // members of a fair accepting SCC
  while (!work.empty() && found.empty()) {
    std::vector<std::uint32_t> members = std::move(work.back());
    work.pop_back();
    ++epoch;
    for (std::uint32_t m : members) mark[m] = epoch;

    std::uint32_t acc_u = 0;
    std::uint64_t fair_u = 0, grant_t = 0, grant_e = 0;
    bool internal = false;
    for (std::uint32_t m : members) {
      acc_u |= aut.acc[aut_of[m]];
      grant_e |= grant_enabled[m];
      for (std::uint64_t e = edge_start[m]; e < edge_start[m + 1]; ++e) {
        if (mark[edges[e].to] != epoch) continue;
        internal = true;
        fair_u |= edges[e].fair;
        if (edges[e].granted >= 0) grant_t |= 1ull << edges[e].granted;
      }
    }
    if (!internal) continue;                      // trivial SCC: no cycle
    if ((acc_u & all_acc) != all_acc) continue;   // misses a ¬φ obligation
    if ((fair_u & procs_mask) != procs_mask) continue;  // no weakly-fair cycle
    if (strong) {
      std::uint64_t bad = grant_e & ~grant_t;
      if (bad) {
        // Streett recursion: a fair cycle must avoid every state where a
        // never-taken grant is enabled (else E_i holds infinitely often
        // without T_i). Delete those states and re-decompose.
        std::vector<std::uint32_t> kept;
        for (std::uint32_t m : members)
          if (!(grant_enabled[m] & bad)) kept.push_back(m);
        if (kept.empty()) continue;
        ++epoch;
        for (std::uint32_t m : kept) mark[m] = epoch;
        for (std::uint32_t v = 0; v < n_states; ++v)
          alive[v] = mark[v] == epoch;
        detail::tarjan_sccs(edge_start, edges, alive, kept, work);
        continue;
      }
    }
    found = std::move(members);
  }

  if (found.empty()) return finish(Status::Ok);

  // ---- lasso construction ------------------------------------------------
  ++epoch;
  for (std::uint32_t m : found) mark[m] = epoch;

  // Cycle entry: the member closest to the root (shortest stem).
  std::uint32_t entry = found.front();
  for (std::uint32_t m : found) entry = std::min(entry, m);

  // Required waypoints: one member per automaton acceptance set, one edge
  // per weak-fairness constraint, one granting edge per active Streett pair.
  std::vector<std::uint32_t> state_waypoints;
  for (std::uint32_t k = 0; k < aut.num_acc; ++k)
    for (std::uint32_t m : found)
      if (aut.acc[aut_of[m]] & (1u << k)) {
        state_waypoints.push_back(m);
        break;
      }
  std::vector<std::uint64_t> edge_waypoints;  // indices into `edges`
  {
    std::uint64_t fair_needed = procs_mask;
    std::uint64_t grants_needed = 0;
    if (strong)
      for (std::uint32_t m : found) grants_needed |= grant_enabled[m];
    for (std::uint32_t m : found) {
      for (std::uint64_t e = edge_start[m]; e < edge_start[m + 1]; ++e) {
        if (mark[edges[e].to] != epoch) continue;
        std::uint64_t new_fair = edges[e].fair & fair_needed;
        bool new_grant = edges[e].granted >= 0 &&
                         (grants_needed & (1ull << edges[e].granted));
        if (new_fair || new_grant) {
          edge_waypoints.push_back(e);
          fair_needed &= ~new_fair;
          if (new_grant) grants_needed &= ~(1ull << edges[e].granted);
        }
      }
    }
  }

  // Route a closed walk: entry -> each waypoint -> entry, with BFS inside
  // the member set between stops. `edge_of` maps a CSR edge index to its
  // source node.
  auto bfs_to = [&](std::uint32_t from, std::uint32_t to,
                    std::vector<std::uint32_t>& path_out) {
    // BFS restricted to marked members; appends the nodes after `from` up
    // to and including `to` (no-op when from == to).
    if (from == to) return;
    std::vector<std::uint32_t> queue{from};
    std::unordered_map<std::uint32_t, std::uint32_t> came;  // node -> pred
    came.emplace(from, from);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      std::uint32_t v = queue[head];
      for (std::uint64_t e = edge_start[v]; e < edge_start[v + 1]; ++e) {
        std::uint32_t w = edges[e].to;
        if (mark[w] != epoch || came.count(w)) continue;
        came.emplace(w, v);
        if (w == to) {
          std::vector<std::uint32_t> rev;
          for (std::uint32_t at = to; at != from; at = came[at])
            rev.push_back(at);
          path_out.insert(path_out.end(), rev.rbegin(), rev.rend());
          return;
        }
        queue.push_back(w);
      }
    }
    CCREF_ASSERT_MSG(false, "SCC member unreachable inside its own SCC");
  };

  std::vector<std::uint32_t> cycle_nodes{entry};
  std::uint32_t cur = entry;
  for (std::uint32_t w : state_waypoints) {
    bfs_to(cur, w, cycle_nodes);
    cur = w;
  }
  for (std::uint64_t e : edge_waypoints) {
    // Find the edge's source: it lies in the CSR block of exactly one node.
    std::uint32_t from_node =
        static_cast<std::uint32_t>(
            std::upper_bound(edge_start.begin(), edge_start.end(), e) -
            edge_start.begin()) -
        1;
    bfs_to(cur, from_node, cycle_nodes);
    cycle_nodes.push_back(edges[e].to);
    cur = edges[e].to;
  }
  bfs_to(cur, entry, cycle_nodes);
  if (cycle_nodes.size() == 1) {
    // No waypoint forced a step (e.g. fairness off, no untils): take any
    // internal edge and come back.
    for (std::uint64_t e = edge_start[entry]; e < edge_start[entry + 1];
         ++e) {
      if (mark[edges[e].to] != epoch) continue;
      cycle_nodes.push_back(edges[e].to);
      bfs_to(edges[e].to, entry, cycle_nodes);
      break;
    }
  }

  result.violation = strf(
      "fair accepting lasso (fairness: %s): stem %zu steps, cycle %zu steps",
      to_string(opts.fairness),
      [&] {
        std::size_t d = 0;
        for (std::uint32_t at = entry; parent[at] != 0xffffffffu;
             at = parent[at])
          ++d;
        return d;
      }(),
      cycle_nodes.size() - 1);

  if (opts.want_trace) {
    // Full product chain root -> entry -> around the cycle; system bytes are
    // the stored encodings minus the 4-byte automaton prefix.
    std::vector<std::uint32_t> stem_nodes;
    for (std::uint32_t at = entry; at != 0xffffffffu; at = parent[at])
      stem_nodes.push_back(at);
    std::reverse(stem_nodes.begin(), stem_nodes.end());

    auto sys_span = [&](std::uint32_t idx) {
      return seen.at(idx).subspan(4);
    };
    std::vector<std::string> labels;
    ByteSource root_src(sys_span(stem_nodes.front()));
    auto cur_state = sys.decode(root_src);
    labels.push_back("initial: " + sys.describe(cur_state));
    ByteSink replay_sink;
    auto replay_step = [&](std::uint32_t idx) {
      if (sys.successors(cur_state).empty()) {
        // The product stutter-extends deadlocks; the system itself stops.
        labels.push_back("(deadlock: stutters forever)");
        return;
      }
      detail::append_step_label(sys, cur_state, sys_span(idx), symmetry,
                                replay_sink, labels);
    };
    for (std::size_t i = 1; i < stem_nodes.size(); ++i)
      replay_step(stem_nodes[i]);
    result.stem = std::move(labels);
    labels.clear();
    for (std::size_t i = 1; i < cycle_nodes.size(); ++i)
      replay_step(cycle_nodes[i]);
    result.cycle = std::move(labels);
  }
  return finish(Status::LivenessViolated);
}

}  // namespace ccref::verify
