// Hash-compaction visited set (Wolper & Leroy 1993, Stern & Dill 1995):
// one 64-bit fingerprint per state instead of the full (or collapsed)
// byte vector.
//
// This is the storage tier between full/COLLAPSE storage and --bitstate:
// ~11.4 bytes per state at the 0.7 load factor, against ~60 raw or ~20
// collapsed — but two distinct states whose fingerprints collide dedupe
// to one, so the second is never expanded. Unlike bitstate the damage is
// quantifiable: for n states and a 64-bit fingerprint the birthday bound
// puts the probability that ANY state was omitted at ~n(n-1)/2^65, which
// the checker reports alongside the verdict (omission_probability in
// CheckResult / --json). A verdict of "invariant violated" is always
// exact — counterexamples are re-concretized by replaying real
// transitions — only the Ok state count carries the caveat.
//
// The table is a plain open-addressing array of u64 words (0 = empty;
// fingerprint 0 folds onto 1, costing one bit of the 64). Growth is
// admitted BEFORE the insert so a refused grow never needs a probe-chain
// rollback: past a hard 90% cap with growth refused, insert reports
// Exhausted, same discipline as the lock-free table.
#pragma once

#include <cstdint>
#include <vector>

#include "support/atomic_table.hpp"
#include "support/contracts.hpp"
#include "verify/memory_budget.hpp"

namespace ccref::verify {

/// Birthday-bound estimate of the probability that hash compaction omitted
/// at least one distinct state: n(n-1)/2 pairs, each colliding with
/// probability 2^-64.
[[nodiscard]] inline double omission_bound(std::size_t states) {
  const double n = static_cast<double>(states);
  const double p = n * (n - 1) / 2.0 / 18446744073709551616.0;  // 2^64
  return p > 1.0 ? 1.0 : p;
}

class FingerprintSet {
 public:
  using Outcome = ::ccref::InsertOutcome;

  struct InsertResult {
    Outcome outcome;
    std::uint32_t index;  // insertion order; valid only when Inserted
  };

  /// Draws on a budget shared with the owning set; `expected_states`
  /// pre-sizes the table like StateSet's hint (charged up front, capped at
  /// half the budget).
  explicit FingerprintSet(MemoryBudget& budget,
                          std::size_t expected_states = 0)
      : budget_(&budget) {
    std::size_t slots = kInitialSlots;
    while (slots * 7 < expected_states * 10) slots *= 2;
    while (slots > kInitialSlots &&
           slots * sizeof(std::uint64_t) > budget_->limit() / 2)
      slots /= 2;
    table_.resize(slots, 0);
    reserved_ = table_.capacity() * sizeof(std::uint64_t);
    // Same born-exhausted-not-dishonest discipline as the other tables.
    if (!budget_->try_reserve(reserved_)) budget_->charge(reserved_);
  }

  ~FingerprintSet() { budget_->release(reserved_); }

  FingerprintSet(const FingerprintSet&) = delete;
  FingerprintSet& operator=(const FingerprintSet&) = delete;

  [[nodiscard]] InsertResult insert(std::uint64_t fp) {
    if (fp == 0) fp = 1;  // 0 marks an empty slot
    // Admit growth before touching the probe chain: a post-insert rollback
    // would need open-addressing deletion, which linear probing lacks.
    if ((size_ + 1) * 10 > table_.size() * 7) (void)grow();
    const std::size_t mask = table_.size() - 1;
    std::size_t slot = fp & mask;
    for (;;) {
      const std::uint64_t w = table_[slot];
      if (w == 0) break;
      // Equal fingerprints dedupe whether or not the states were equal —
      // that IS the compaction bet; insertion indices of duplicates are
      // not tracked (nothing in the BFS needs them).
      if (w == fp) return {Outcome::AlreadyPresent, 0};
      slot = (slot + 1) & mask;
    }
    // Hard cap at 95% when growth is refused, applied only to genuinely
    // fresh fingerprints — duplicates above must keep answering so a
    // capped set never cuts a search short on a state it already holds.
    // Probe chains degrade badly up there, but this tier exists exactly
    // for budget-bound runs, where "slow for the last few percent" beats
    // Unfinished. (The power-of-two growth steps are coarse — at 64 MB
    // the next doubling IS the budget — so the cap decides real capacity,
    // not a pathological corner.)
    if ((size_ + 1) * 20 >= table_.size() * 19)
      return {Outcome::Exhausted, 0};
    table_[slot] = fp;
    return {Outcome::Inserted, static_cast<std::uint32_t>(size_++)};
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] std::size_t memory_used() const { return reserved_; }

 private:
  static constexpr std::size_t kInitialSlots = 1024;

  [[nodiscard]] bool grow() {
    const std::size_t new_slots = table_.size() * 2;
    if (!budget_->try_reserve(new_slots * sizeof(std::uint64_t))) return false;
    std::vector<std::uint64_t> fresh(new_slots, 0);
    const std::size_t mask = new_slots - 1;
    for (std::uint64_t fp : table_) {
      if (fp == 0) continue;
      std::size_t slot = fp & mask;
      while (fresh[slot] != 0) slot = (slot + 1) & mask;
      fresh[slot] = fp;
    }
    const std::size_t old_bytes = table_.capacity() * sizeof(std::uint64_t);
    table_ = std::move(fresh);
    budget_->release(old_bytes);
    reserved_ += new_slots * sizeof(std::uint64_t) - old_bytes;
    return true;
  }

  MemoryBudget* budget_;
  std::size_t reserved_ = 0;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> table_;
};

}  // namespace ccref::verify
