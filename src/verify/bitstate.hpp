// Bitstate hashing (Holzmann's "supertrace") — SPIN's 1997-era answer to
// the `Unfinished` rows of Table 3.
//
// When the exact visited set exhausts its memory budget, exchange
// exactness for coverage: states are recorded only as two independent hash
// bits in a fixed-size bit array. Collisions silently prune exploration
// (never report false errors for *reachable* states; may miss states), so
// results are lower bounds on the reachable count — exactly how SPIN's -DBITSTATE
// mode was used on the machines the paper ran on.
//
// Because bitstate storage cannot reproduce a state from its bits, the
// exploration is depth-first with an explicit stack of decoded states (the
// stack depth, not the state count, bounds the non-bit memory).
#pragma once

#include <chrono>
#include <vector>

#include "support/hash.hpp"
#include "verify/checker.hpp"

namespace ccref::verify {

class BitstateSet {
 public:
  /// `memory` bytes of bit array (rounded down to a power of two bits).
  explicit BitstateSet(std::size_t memory_bytes) {
    std::size_t bits = 8;
    while (bits * 2 <= memory_bytes * 8) bits *= 2;
    bits_.assign(bits / 64, 0);
    mask_ = bits - 1;
  }

  /// True if newly inserted; false if (probably) seen before.
  bool insert(std::span<const std::byte> state) {
    std::uint64_t h1 = hash_bytes(state, 0x9e3779b97f4a7c15ull);
    std::uint64_t h2 = hash_bytes(state, 0xc2b2ae3d27d4eb4full);
    bool fresh = !test_and_set(h1 & mask_);
    fresh |= !test_and_set(h2 & mask_);
    return fresh;
  }

  [[nodiscard]] std::size_t memory_used() const {
    return bits_.size() * sizeof(std::uint64_t);
  }

 private:
  bool test_and_set(std::uint64_t bit) {
    std::uint64_t& word = bits_[bit >> 6];
    std::uint64_t m = 1ull << (bit & 63);
    bool was = word & m;
    word |= m;
    return was;
  }

  std::vector<std::uint64_t> bits_;
  std::uint64_t mask_ = 0;
};

struct BitstateResult {
  std::size_t states = 0;       // visited (lower bound on reachable)
  std::size_t transitions = 0;
  std::size_t max_depth = 0;
  std::size_t memory_bytes = 0;
  double seconds = 0;
  bool depth_bounded = false;   // hit the depth limit somewhere
  bool state_bounded = false;   // hit the max_states budget
  std::string violation;        // first invariant violation, if any
};

/// Depth-first exploration under bitstate hashing. `invariant` (optional)
/// is checked on every visited state; a violation stops the search (any
/// violation found is real — only omissions are possible). Symmetry
/// reduction composes with the bit array exactly as with the exact sets:
/// states are canonicalized before hashing, so the two bits per state are
/// spent on orbits, not concrete states.
template <class Sys>
[[nodiscard]] BitstateResult explore_bitstate(
    const Sys& sys, std::size_t bit_memory = 8u << 20,
    std::size_t max_depth = 100000,
    const std::function<std::string(const typename Sys::State&)>& invariant =
        {},
    std::size_t max_states = 0 /* 0 = unbounded */,
    SymmetryMode symmetry = SymmetryMode::Off) {
  auto t0 = std::chrono::steady_clock::now();
  BitstateResult result;
  BitstateSet seen(bit_memory);
  result.memory_bytes = seen.memory_used();

  // Frames hold byte-encoded successors, not materialized states, so the
  // DFS stack costs tens of bytes per pending edge.
  struct Frame {
    std::vector<std::vector<std::byte>> succs;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;

  auto push = [&](std::span<const std::byte> bytes) {
    if (!seen.insert(bytes)) return false;
    ++result.states;
    ByteSource src(bytes);
    auto state = sys.decode(src);
    if (invariant) {
      std::string msg = invariant(state);
      if (!msg.empty()) {
        result.violation = std::move(msg);
        return false;
      }
    }
    if (stack.size() >= max_depth) {
      result.depth_bounded = true;
      return false;
    }
    Frame frame;
    for (auto& [succ, label] : sys.successors(state)) {
      detail::maybe_canonicalize(sys, succ, symmetry);
      ByteSink sink;
      sys.encode(succ, sink);
      frame.succs.push_back(sink.take());
    }
    stack.push_back(std::move(frame));
    return true;
  };

  {
    ByteSink sink;
    auto root = sys.initial();
    detail::maybe_canonicalize(sys, root, symmetry);
    sys.encode(root, sink);
    auto root_bytes = sink.take();
    (void)push(root_bytes);
  }
  while (!stack.empty() && result.violation.empty()) {
    if (max_states && result.states >= max_states) {
      result.state_bounded = true;
      break;
    }
    result.max_depth = std::max(result.max_depth, stack.size());
    Frame& top = stack.back();
    if (top.next >= top.succs.size()) {
      stack.pop_back();
      continue;
    }
    ++result.transitions;
    // `top` may be invalidated by the push; index via the copy below.
    std::vector<std::byte> next_bytes = std::move(top.succs[top.next++]);
    (void)push(next_bytes);
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace ccref::verify
