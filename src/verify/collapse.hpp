// COLLAPSE-style state-vector compression (SPIN's -DCOLLAPSE, Holzmann
// 1997) — the answer to Table 3's "limited to 64MB of memory" wall.
//
// A global state of the star protocols is a tuple of near-independent
// components: the home machine, each of the n identical remote machines,
// and each per-remote FIFO channel. Across the reachable set these
// components repeat massively (the remotes are the *same* process, so at
// any time most of them sit in one of a handful of local configurations),
// which means the flat byte encodings the StateSet pools are dominated by
// repeated substrings. Under CompressionMode::Collapse each component is
// interned once in a per-class dictionary and the pooled "state" becomes the
// tuple of dictionary indices.
//
// Layout:
//   * State encoders (AsyncSystem/RendezvousSystem/liveness product) call
//     ByteSink::boundary(cls) after each component; a ComponentSink collects
//     the (offset, class) marks, a plain ByteSink ignores them.
//   * Dictionary classes group components that draw from the same value
//     space — all remote machines share one dictionary, all up channels
//     another — so n identical remotes saturate one small table instead of
//     n disjoint ones.
//   * Each dictionary is itself a StateSet (open addressing, stable indices,
//     budget-charged), drawing on the same MemoryBudget as the tuple pool:
//     the 64 MB cap bounds pool + dictionaries + tables together.
//   * The pooled tuple is the concatenation of the per-component dictionary
//     indices in varint coding. Varint is canonical per value and a prefix
//     code, so for a fixed component structure (checked per insert) two
//     tuples are byte-equal iff every component index matches iff every
//     component's bytes match iff the raw encodings match: index-tuple
//     equality is exactly state equality, and dedupe/hashing work unchanged
//     on the compressed form. (SPIN stores fixed-width indices; varint keeps
//     the common all-dictionaries-small case 2-3x smaller still.)
//   * at() transparently re-expands the tuple through the dictionaries, so
//     decode/trace reconstruction see the original raw encoding. The
//     expansion lives in a scratch buffer: a returned span is valid only
//     until the next at() call — callers that need several states at once
//     (trace rebuilds) copy.
//
// CompressionMode::Off makes this a zero-cost passthrough to the inner
// StateSet — bit-identical behavior and accounting to the uncompressed
// engines.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "support/bytes.hpp"
#include "verify/state_set.hpp"

namespace ccref::verify {

enum class CompressionMode : std::uint8_t {
  Off,       // pool raw byte encodings (bit-identical to prior results)
  Collapse,  // intern components per class, pool varint index tuples
};

[[nodiscard]] constexpr const char* to_string(CompressionMode m) {
  switch (m) {
    case CompressionMode::Off: return "off";
    case CompressionMode::Collapse: return "collapse";
  }
  return "?";
}

/// Parse a `--compress` flag value; nullopt on anything unknown.
[[nodiscard]] inline std::optional<CompressionMode> parse_compression(
    std::string_view text) {
  if (text == "off") return CompressionMode::Off;
  if (text == "collapse") return CompressionMode::Collapse;
  return std::nullopt;
}

class CollapsedStateSet {
 public:
  using Outcome = StateSet::Outcome;
  using InsertResult = StateSet::InsertResult;

  explicit CollapsedStateSet(std::size_t memory_limit_bytes,
                             CompressionMode mode = CompressionMode::Off,
                             std::size_t expected_states = 0)
      : owned_(std::make_unique<MemoryBudget>(memory_limit_bytes)),
        budget_(owned_.get()),
        mode_(mode),
        tuples_(*budget_, expected_states) {}

  /// Shard constructor: draw on a budget shared with sibling sets (the
  /// caller keeps `budget` alive). Dictionaries are then per-shard too —
  /// canonical encodings hash to one shard, so sibling dictionaries never
  /// need to agree on indices.
  CollapsedStateSet(MemoryBudget& budget, CompressionMode mode,
                    std::size_t expected_states = 0)
      : budget_(&budget), mode_(mode), tuples_(budget, expected_states) {}

  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::span<const ComponentMark> marks = {}) {
    if (mode_ == CompressionMode::Off) {
      auto r = tuples_.insert(state);
      if (r.outcome == Outcome::Inserted) raw_bytes_ += state.size();
      return r;
    }
    return insert_collapsed(state, marks);
  }

  /// Insert with a precomputed hash of the RAW encoding (the sharded set
  /// hashes once to pick the shard). Off mode reuses it for the table;
  /// Collapse hashes the index tuple itself, since that is what the inner
  /// table stores and compares.
  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::span<const ComponentMark> marks,
                                    std::uint64_t raw_hash) {
    if (mode_ == CompressionMode::Off) {
      auto r = tuples_.insert(state, raw_hash);
      if (r.outcome == Outcome::Inserted) raw_bytes_ += state.size();
      return r;
    }
    return insert_collapsed(state, marks);
  }

  /// Raw encoding of a stored state. Off: a stable span into the pool.
  /// Collapse: the tuple re-expanded through the dictionaries into a scratch
  /// buffer — valid only until the next at() call on this set.
  [[nodiscard]] std::span<const std::byte> at(std::uint32_t index) const {
    if (mode_ == CompressionMode::Off) return tuples_.at(index);
    ByteSource src(tuples_.at(index));
    scratch_.clear();
    for (std::uint8_t cls : structure_) {
      auto comp = dicts_[cls]->at(static_cast<std::uint32_t>(src.varint()));
      scratch_.insert(scratch_.end(), comp.begin(), comp.end());
    }
    CCREF_ASSERT(src.exhausted());
    return scratch_;
  }

  [[nodiscard]] std::uint64_t hash_at(std::uint32_t index) const {
    return tuples_.hash_at(index);
  }

  [[nodiscard]] std::size_t size() const { return tuples_.size(); }

  [[nodiscard]] std::size_t memory_used() const {
    std::size_t total = tuples_.memory_used();
    for (const auto& d : dicts_)
      if (d) total += d->memory_used();
    return total;
  }

  [[nodiscard]] std::size_t memory_limit() const { return budget_->limit(); }

  [[nodiscard]] MemoryBudget& budget() { return *budget_; }

  [[nodiscard]] CompressionMode mode() const { return mode_; }

  /// Bytes the pool would hold uncompressed: the summed raw encoding sizes
  /// of every stored state (Off: exactly pool_bytes()).
  [[nodiscard]] std::size_t raw_bytes() const { return raw_bytes_; }

  /// Bytes actually spent storing states: tuple pool plus the complete
  /// dictionary footprint (entries and tables included — the honest side of
  /// the raw_bytes() comparison).
  [[nodiscard]] std::size_t stored_bytes() const {
    std::size_t total = tuples_.pool_bytes();
    for (const auto& d : dicts_)
      if (d) total += d->memory_used();
    return total;
  }

 private:
  // 16 classes cover every encoder (async uses 4, the liveness product one
  // more); dictionaries are created on first use.
  static constexpr std::size_t kMaxClasses = 16;
  // Dictionaries hold few distinct entries until a protocol is large;
  // starting at 64 slots keeps K shards x C classes of idle tables cheap.
  static constexpr std::size_t kDictSlots = 64;

  [[nodiscard]] InsertResult insert_collapsed(
      std::span<const std::byte> state,
      std::span<const ComponentMark> marks) {
    // Slice into components: [previous end, mark.end) per mark, plus an
    // implicit trailing class-0 component for anything after the last mark
    // (systems without boundary emission collapse whole-state; still sound,
    // just ratio 1).
    tuple_.clear();
    std::size_t start = 0;
    std::size_t slot = 0;
    auto one = [&](std::size_t end, std::uint8_t cls) {
      CCREF_REQUIRE(cls < kMaxClasses && start <= end && end <= state.size());
      // The component structure (count and classes) must be a constant of
      // the system, never state-dependent: index-tuple equality only mirrors
      // state equality when slot k always draws from the same dictionary.
      if (slot == structure_.size())
        structure_.push_back(cls);
      else
        CCREF_REQUIRE(structure_[slot] == cls);
      if (cls >= dicts_.size()) dicts_.resize(cls + 1);
      if (!dicts_[cls])
        dicts_[cls] = std::make_unique<StateSet>(*budget_, 0, kDictSlots);
      auto r = dicts_[cls]->insert(state.subspan(start, end - start));
      if (r.outcome == Outcome::Exhausted) return false;
      // An interned component of a state whose insert later exhausts stays
      // in its dictionary: it is a valid (likely reusable) entry, and the
      // dictionary's own accounting already reconciled it.
      tuple_.varint(r.index);
      start = end;
      ++slot;
      return true;
    };
    for (const ComponentMark& m : marks)
      if (!one(m.end, m.cls)) return {Outcome::Exhausted, 0};
    if (start < state.size() || slot == 0)
      if (!one(state.size(), 0)) return {Outcome::Exhausted, 0};
    CCREF_REQUIRE(slot == structure_.size());

    auto r = tuples_.insert(tuple_.bytes());
    if (r.outcome == Outcome::Inserted) raw_bytes_ += state.size();
    return r;
  }

  std::unique_ptr<MemoryBudget> owned_;  // null when the budget is shared
  MemoryBudget* budget_;
  CompressionMode mode_;
  StateSet tuples_;  // Off: raw encodings; Collapse: varint index tuples
  std::vector<std::unique_ptr<StateSet>> dicts_;  // indexed by class
  std::vector<std::uint8_t> structure_;  // class of each tuple slot
  std::size_t raw_bytes_ = 0;
  ByteSink tuple_;  // reused per insert
  mutable std::vector<std::byte> scratch_;  // at() expansion buffer
};

}  // namespace ccref::verify
