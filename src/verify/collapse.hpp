// COLLAPSE-style state-vector compression (SPIN's -DCOLLAPSE, Holzmann
// 1997) — the answer to Table 3's "limited to 64MB of memory" wall.
//
// A global state of the star protocols is a tuple of near-independent
// components: the home machine, each of the n identical remote machines,
// and each per-remote FIFO channel. Across the reachable set these
// components repeat massively (the remotes are the *same* process, so at
// any time most of them sit in one of a handful of local configurations),
// which means the flat byte encodings the StateSet pools are dominated by
// repeated substrings. Under CompressionMode::Collapse each component is
// interned once in a per-class dictionary and the pooled "state" becomes the
// tuple of dictionary indices.
//
// Layout:
//   * State encoders (AsyncSystem/RendezvousSystem/liveness product) call
//     ByteSink::boundary(cls) after each component; a ComponentSink collects
//     the (offset, class) marks, a plain ByteSink ignores them.
//   * Dictionary classes group components that draw from the same value
//     space — all remote machines share one dictionary, all up channels
//     another — so n identical remotes saturate one small table instead of
//     n disjoint ones.
//   * Each dictionary is itself a StateSet (open addressing, stable indices,
//     budget-charged), drawing on the same MemoryBudget as the tuple pool:
//     the 64 MB cap bounds pool + dictionaries + tables together.
//   * The pooled tuple is the concatenation of the per-component dictionary
//     indices in varint coding. Varint is canonical per value and a prefix
//     code, so for a fixed component structure (checked per insert) two
//     tuples are byte-equal iff every component index matches iff every
//     component's bytes match iff the raw encodings match: index-tuple
//     equality is exactly state equality, and dedupe/hashing work unchanged
//     on the compressed form. (SPIN stores fixed-width indices; varint keeps
//     the common all-dictionaries-small case 2-3x smaller still.)
//   * at() transparently re-expands the tuple through the dictionaries, so
//     decode/trace reconstruction see the original raw encoding. The
//     expansion lives in a scratch buffer: a returned span is valid only
//     until the next at() call — callers that need several states at once
//     (trace rebuilds) copy.
//
// CompressionMode::Off makes this a zero-cost passthrough to the inner
// StateSet — bit-identical behavior and accounting to the uncompressed
// engines.
#pragma once

#include <array>
#include <atomic>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "support/atomic_table.hpp"
#include "support/bytes.hpp"
#include "support/run_file.hpp"
#include "support/spill.hpp"
#include "support/thread_pool.hpp"
#include "verify/external_set.hpp"
#include "verify/fingerprint_set.hpp"
#include "verify/state_set.hpp"

namespace ccref::verify {

enum class CompressionMode : std::uint8_t {
  Off,       // pool raw byte encodings (bit-identical to prior results)
  Collapse,  // intern components per class, pool varint index tuples
};

[[nodiscard]] constexpr const char* to_string(CompressionMode m) {
  switch (m) {
    case CompressionMode::Off: return "off";
    case CompressionMode::Collapse: return "collapse";
  }
  return "?";
}

/// Parse a `--compress` flag value; nullopt on anything unknown.
[[nodiscard]] inline std::optional<CompressionMode> parse_compression(
    std::string_view text) {
  if (text == "off") return CompressionMode::Off;
  if (text == "collapse") return CompressionMode::Collapse;
  return std::nullopt;
}

/// Fingerprint function for hash compaction. A plain function pointer so
/// tests can stub a colliding hash deterministically; null means the
/// engine's hash_bytes.
using FingerprintFn = std::uint64_t (*)(std::span<const std::byte>);

[[nodiscard]] inline std::uint64_t default_fingerprint(
    std::span<const std::byte> bytes) {
  return hash_bytes(bytes);
}

/// Storage-tier routing for a visited set, assembled by the checkers from
/// CheckOptions and threaded to every set/shard/dictionary: which
/// compression tier stores states, whether hash compaction replaces byte
/// storage entirely, and where chunked pools overflow once RAM runs out.
struct StorageOptions {
  /// The pre-StorageOptions ctor surface (mode + hint only), kept so the
  /// liveness/progress callers and older tests read unchanged.
  [[nodiscard]] static StorageOptions legacy(CompressionMode mode,
                                             std::size_t expected_states) {
    StorageOptions st;
    st.compress = mode;
    st.expected_states = expected_states;
    return st;
  }

  CompressionMode compress = CompressionMode::Off;
  /// Store a 64-bit fingerprint per state instead of (collapsed) bytes.
  /// Under compaction `compress` is moot — there are no pooled bytes left
  /// to compress — and the checkers record a note when both are requested.
  bool hash_compact = false;
  FingerprintFn fingerprint = nullptr;  // null: default_fingerprint
  /// Keep the insertion-ordered fingerprint list (4+8 bytes/state extra)
  /// so counterexample traces can be re-concretized by fingerprint replay.
  /// Under the external tier this selects the on-disk order log instead.
  bool keep_fingerprints = false;
  SpillPolicy spill;
  /// Disk-backed visited tier (external_set.hpp): fingerprints live in
  /// partitioned run files with a RAM cache front, membership resolves by
  /// sorted-run delayed duplicate detection. Subsumes hash_compact (same
  /// fingerprint representation, hence the same omission bound) and makes
  /// `compress` moot; the checkers note both downgrades.
  ExternalPolicy external;
  std::size_t expected_states = 0;
};

class CollapsedStateSet {
 public:
  using Outcome = StateSet::Outcome;
  using InsertResult = StateSet::InsertResult;

  explicit CollapsedStateSet(std::size_t memory_limit_bytes,
                             CompressionMode mode = CompressionMode::Off,
                             std::size_t expected_states = 0)
      : CollapsedStateSet(memory_limit_bytes,
                          StorageOptions::legacy(mode, expected_states)) {}

  /// Owning constructor with full storage routing.
  CollapsedStateSet(std::size_t memory_limit_bytes, const StorageOptions& st)
      : owned_(std::make_unique<MemoryBudget>(memory_limit_bytes)),
        budget_(owned_.get()),
        st_(st),
        mode_(st.compress),
        tuples_(*budget_, table_bound(st) ? 0 : st.expected_states,
                table_bound(st) ? kDictSlots : kTableSlots, st.spill) {
    init_tiers();
  }

  /// Shard constructor: draw on a budget shared with sibling sets (the
  /// caller keeps `budget` alive). Dictionaries are then per-shard too —
  /// canonical encodings hash to one shard, so sibling dictionaries never
  /// need to agree on indices.
  CollapsedStateSet(MemoryBudget& budget, CompressionMode mode,
                    std::size_t expected_states = 0)
      : CollapsedStateSet(budget,
                          StorageOptions::legacy(mode, expected_states)) {}

  CollapsedStateSet(MemoryBudget& budget, const StorageOptions& st)
      : budget_(&budget),
        st_(st),
        mode_(st.compress),
        tuples_(budget, table_bound(st) ? 0 : st.expected_states,
                table_bound(st) ? kDictSlots : kTableSlots, st.spill) {
    init_tiers();
  }

  ~CollapsedStateSet() {
    // Hand back the window and fingerprint-log charges so sibling sets on
    // a shared budget see the true headroom (everything else releases via
    // its own destructor or is owned by the budget's owner).
    budget_->release(window_charged_ + fp_charged_);
  }

  CollapsedStateSet(const CollapsedStateSet&) = delete;
  CollapsedStateSet& operator=(const CollapsedStateSet&) = delete;

  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::span<const ComponentMark> marks = {}) {
    if (ext_) return insert_external(state);
    if (st_.hash_compact) return insert_compacted(state);
    if (mode_ == CompressionMode::Off) {
      auto r = tuples_.insert(state);
      if (r.outcome == Outcome::Inserted) raw_bytes_ += state.size();
      return r;
    }
    return insert_collapsed(state, marks);
  }

  /// Insert with a precomputed hash of the RAW encoding (the sharded set
  /// hashes once to pick the shard). Off mode reuses it for the table;
  /// Collapse hashes the index tuple itself, since that is what the inner
  /// table stores and compares.
  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::span<const ComponentMark> marks,
                                    std::uint64_t raw_hash) {
    if (ext_) return insert_external(state);
    if (st_.hash_compact) return insert_compacted(state);
    if (mode_ == CompressionMode::Off) {
      auto r = tuples_.insert(state, raw_hash);
      if (r.outcome == Outcome::Inserted) raw_bytes_ += state.size();
      return r;
    }
    return insert_collapsed(state, marks);
  }

  /// Raw encoding of a stored state. Off: a stable span into the pool.
  /// Collapse: the tuple re-expanded through the dictionaries into a scratch
  /// buffer — valid only until the next at() call on this set. Hash-compact:
  /// only the BFS cursor's state is retrievable — the window holds fresh
  /// states between insertion and expansion, and at(cursor) consumes the
  /// front; anything older exists only as a fingerprint.
  [[nodiscard]] std::span<const std::byte> at(std::uint32_t index) const {
    if (ext_) {
      // Same consume-the-front discipline as the hash-compact window, but
      // the frontier lives on disk: resolve_external appended this state's
      // record to the frontier queue file, and the BFS reads it back
      // exactly once, in order. Reading also latches `index` as the BFS
      // parent for every successor deferred while expanding this state.
      CCREF_REQUIRE(index == window_head_);
      std::uint32_t len = 0;
      CCREF_REQUIRE(frontier_q_.pread_at(q_read_, &len, sizeof(len)));
      scratch_.resize(len);
      CCREF_REQUIRE(len == 0 ||
                    frontier_q_.pread_at(q_read_ + sizeof(len),
                                         scratch_.data(), len));
      q_read_ += sizeof(len) + len;
      ++window_head_;
      defer_parent_ = index;
      return scratch_;
    }
    if (st_.hash_compact) {
      CCREF_REQUIRE(index == window_head_ && !window_.empty());
      scratch_.assign(window_.front().begin(), window_.front().end());
      budget_->release(window_.front().size());
      window_charged_ -= window_.front().size();
      window_.pop_front();
      ++window_head_;
      return scratch_;
    }
    if (mode_ == CompressionMode::Off) return tuples_.at(index);
    ByteSource src(tuples_.at(index));
    scratch_.clear();
    for (std::uint8_t cls : structure_) {
      auto comp = dicts_[cls]->at(static_cast<std::uint32_t>(src.varint()));
      scratch_.insert(scratch_.end(), comp.begin(), comp.end());
    }
    CCREF_ASSERT(src.exhausted());
    return scratch_;
  }

  [[nodiscard]] std::uint64_t hash_at(std::uint32_t index) const {
    CCREF_REQUIRE(!st_.hash_compact);
    return tuples_.hash_at(index);
  }

  /// Fingerprint of the index-th inserted state (hash-compact or external
  /// runs with keep_fingerprints — the trace-replay fallback).
  [[nodiscard]] std::uint64_t fingerprint_at(std::uint32_t index) const {
    CCREF_REQUIRE(st_.keep_fingerprints);
    if (ext_) return ext_->fingerprint_at(index);
    CCREF_REQUIRE(st_.hash_compact && index < fp_order_.size());
    return fp_order_[index];
  }

  /// External tier only: BFS parent index of a resolved state, from the
  /// on-disk order log (kNoParentIndex for the root). The engine-side
  /// parent vector cannot exist here — inserts answer Deferred, so the
  /// BFS never learns which of them were fresh.
  static constexpr std::uint64_t kNoParentIndex = ~0ull;
  [[nodiscard]] std::uint64_t parent_at(std::uint32_t index) const {
    CCREF_REQUIRE(ext_ != nullptr);
    return ext_->parent_at(index);
  }

  /// External tier: run delayed duplicate detection over every partition
  /// with pending fingerprints, appending genuinely-new states to the
  /// frontier. Drained for the RAM tiers (they never defer), so the BFS
  /// drain loop costs nothing when --external is off.
  [[nodiscard]] ResolveOutcome resolve_pending() {
    if (!ext_) return ResolveOutcome::Drained;
    return resolve_external(/*only_ripe=*/false);
  }

  [[nodiscard]] std::size_t size() const {
    if (ext_) return ext_->size();
    return st_.hash_compact ? fps_->size() : tuples_.size();
  }

  [[nodiscard]] std::size_t memory_used() const {
    std::size_t total = tuples_.memory_used();
    for (const auto& d : dicts_)
      if (d) total += d->memory_used();
    if (fps_) total += fps_->memory_used();
    if (ext_) total += ext_->memory_used();
    total += window_charged_ + fp_charged_;
    return total;
  }

  [[nodiscard]] std::size_t memory_limit() const { return budget_->limit(); }

  [[nodiscard]] MemoryBudget& budget() { return *budget_; }

  [[nodiscard]] CompressionMode mode() const { return mode_; }

  [[nodiscard]] bool hash_compact() const { return st_.hash_compact; }

  [[nodiscard]] bool external() const { return ext_ != nullptr; }

  /// Disk bytes held by the external tier: pending + history runs, the
  /// order log, and the frontier queue. Zero for the RAM tiers.
  [[nodiscard]] std::size_t external_bytes() const {
    return ext_ ? ext_->disk_bytes() +
                      static_cast<std::size_t>(frontier_q_.bytes())
                : 0;
  }

  /// Sorted-run merge passes the external tier performed.
  [[nodiscard]] std::size_t merge_passes() const {
    return ext_ ? ext_->merge_passes() : 0;
  }

  /// Bytes the pool would hold uncompressed: the summed raw encoding sizes
  /// of every stored state (Off: exactly pool_bytes()).
  [[nodiscard]] std::size_t raw_bytes() const { return raw_bytes_; }

  /// Bytes actually spent storing states: tuple pool plus the complete
  /// dictionary footprint (entries and tables included — the honest side of
  /// the raw_bytes() comparison). Hash-compact: the fingerprint table.
  [[nodiscard]] std::size_t stored_bytes() const {
    if (ext_) return ext_->memory_used();  // the cache front stands in
    if (st_.hash_compact) return fps_->memory_used();
    std::size_t total = tuples_.pool_bytes();
    for (const auto& d : dicts_)
      if (d) total += d->memory_used();
    return total;
  }

  /// Bytes held in mmap-backed spill files across the tuple pool and every
  /// dictionary pool.
  [[nodiscard]] std::size_t spill_bytes() const {
    std::size_t total = tuples_.spill_bytes();
    for (const auto& d : dicts_)
      if (d) total += d->spill_bytes();
    return total;
  }

  /// Chunk bytes held but never occupied by records, across all pools.
  [[nodiscard]] std::size_t waste_bytes() const {
    std::size_t total = tuples_.waste_bytes();
    for (const auto& d : dicts_)
      if (d) total += d->waste_bytes();
    return total;
  }

 private:
  // 16 classes cover every encoder (async uses 4, the liveness product one
  // more); dictionaries are created on first use.
  static constexpr std::size_t kMaxClasses = 16;
  // Dictionaries hold few distinct entries until a protocol is large;
  // starting at 64 slots and 256-byte pool chunks keeps K shards x C
  // classes of idle tables cheap (chunked pools charge whole chunks, so a
  // 4 KB floor per dictionary would dominate small budgets).
  static constexpr std::size_t kDictSlots = 64;
  static constexpr std::size_t kDictChunk0 = 256;
  // Default inner-table floor (StateSet's own default). Hash-compact and
  // external runs shrink the unused tuple table to the dictionary floor.
  static constexpr std::size_t kTableSlots = 1024;

  /// Tiers that bypass the tuple pool entirely (fingerprints replace
  /// stored bytes), so the inner table keeps only its floor.
  [[nodiscard]] static bool table_bound(const StorageOptions& st) {
    return st.hash_compact || st.external.enabled();
  }

  void init_tiers() {
    if (st_.external.enabled()) {
      // External subsumes hash compaction: same fingerprint
      // representation, but membership lives on disk. Normalizing here
      // protects direct users of the set; the checkers also note it.
      st_.hash_compact = false;
      auto cfg = ExternalVisitedSet::configure(st_.external, budget_->limit());
      cfg.keep_order_log = st_.keep_fingerprints;
      ext_ = std::make_unique<ExternalVisitedSet>(*budget_, cfg);
      ext_ok_ = ext_->ok() &&
                frontier_q_.open(cfg.dir, "frontier", kFrontierBufBytes);
      return;
    }
    if (st_.hash_compact)
      fps_ = std::make_unique<FingerprintSet>(*budget_, st_.expected_states);
  }

  static constexpr std::size_t kFrontierBufBytes = 32768;

  [[nodiscard]] InsertResult insert_external(std::span<const std::byte> state) {
    if (!ext_ok_) return {Outcome::Exhausted, 0};
    const std::uint64_t fp =
        (st_.fingerprint != nullptr ? st_.fingerprint
                                    : &default_fingerprint)(state);
    auto o = ext_->insert(fp, defer_parent_, state);
    if (o == Outcome::Exhausted) {
      ext_ok_ = false;
      return {Outcome::Exhausted, 0};
    }
    // Ripe partitions merge inline — the amortized cost of the deferred
    // inserts that filled them. Fresh survivors land on the frontier
    // queue and the BFS picks them up at the current sweep's end.
    if (o == Outcome::Deferred && ext_->needs_resolve() &&
        resolve_external(/*only_ripe=*/true) == ResolveOutcome::Failed)
      return {Outcome::Exhausted, 0};
    return {o, 0};
  }

  [[nodiscard]] ResolveOutcome resolve_external(bool only_ripe) {
    if (!ext_ok_) return ResolveOutcome::Failed;
    // The frontier queue is read exactly once and in order: when the BFS
    // has consumed everything in it, reclaim the file before appending
    // the next wave, bounding it to about one BFS level of encodings.
    if (q_read_ == frontier_q_.bytes() && q_read_ != 0) {
      if (!frontier_q_.reset()) {
        ext_ok_ = false;
        return ResolveOutcome::Failed;
      }
      q_read_ = 0;
    }
    bool q_ok = true;
    auto r = ext_->resolve(only_ripe, [&](std::uint32_t /*index*/,
                                          std::uint64_t /*fp*/,
                                          std::uint64_t /*parent*/,
                                          std::span<const std::byte> bytes) {
      const auto len = static_cast<std::uint32_t>(bytes.size());
      q_ok = q_ok && frontier_q_.append(&len, sizeof(len));
      if (!bytes.empty())
        q_ok = q_ok && frontier_q_.append(bytes.data(), bytes.size());
      raw_bytes_ += bytes.size();
    });
    if (!q_ok || !frontier_q_.flush() || r == ResolveOutcome::Failed) {
      ext_ok_ = false;
      return ResolveOutcome::Failed;
    }
    return r;
  }

  [[nodiscard]] InsertResult insert_compacted(
      std::span<const std::byte> state) {
    const std::uint64_t fp =
        (st_.fingerprint != nullptr ? st_.fingerprint
                                    : &default_fingerprint)(state);
    // Admit every side allocation BEFORE the fingerprint probe, because a
    // refusal after it would need open-addressing deletion: the window
    // copy of the state bytes plus any fp_order_ capacity growth.
    std::size_t fp_grow = 0;
    if (st_.keep_fingerprints && fp_order_.size() == fp_order_.capacity())
      fp_grow = std::max<std::size_t>(fp_order_.capacity() * 2, 1024) *
                    sizeof(std::uint64_t) -
                fp_charged_;
    if (!budget_->try_reserve(state.size() + fp_grow))
      return {Outcome::Exhausted, 0};
    auto r = fps_->insert(fp);
    if (r.outcome != Outcome::Inserted) {
      budget_->release(state.size() + fp_grow);
      return {r.outcome, r.index};
    }
    window_.emplace_back(state.begin(), state.end());
    window_charged_ += state.size();
    if (st_.keep_fingerprints) {
      if (fp_grow != 0) {
        fp_order_.reserve(std::max<std::size_t>(fp_order_.capacity() * 2,
                                                1024));
        fp_charged_ += fp_grow;
      }
      fp_order_.push_back(fp);
    }
    raw_bytes_ += state.size();
    return {Outcome::Inserted, r.index};
  }

  [[nodiscard]] InsertResult insert_collapsed(
      std::span<const std::byte> state,
      std::span<const ComponentMark> marks) {
    // Slice into components: [previous end, mark.end) per mark, plus an
    // implicit trailing class-0 component for anything after the last mark
    // (systems without boundary emission collapse whole-state; still sound,
    // just ratio 1).
    tuple_.clear();
    std::size_t start = 0;
    std::size_t slot = 0;
    auto one = [&](std::size_t end, std::uint8_t cls) {
      CCREF_REQUIRE(cls < kMaxClasses && start <= end && end <= state.size());
      // The component structure (count and classes) must be a constant of
      // the system, never state-dependent: index-tuple equality only mirrors
      // state equality when slot k always draws from the same dictionary.
      if (slot == structure_.size())
        structure_.push_back(cls);
      else
        CCREF_REQUIRE(structure_[slot] == cls);
      if (cls >= dicts_.size()) dicts_.resize(cls + 1);
      if (!dicts_[cls])
        dicts_[cls] = std::make_unique<StateSet>(*budget_, 0, kDictSlots,
                                                 st_.spill, kDictChunk0);
      auto r = dicts_[cls]->insert(state.subspan(start, end - start));
      if (r.outcome == Outcome::Exhausted) return false;
      // An interned component of a state whose insert later exhausts stays
      // in its dictionary: it is a valid (likely reusable) entry, and the
      // dictionary's own accounting already reconciled it.
      tuple_.varint(r.index);
      start = end;
      ++slot;
      return true;
    };
    for (const ComponentMark& m : marks)
      if (!one(m.end, m.cls)) return {Outcome::Exhausted, 0};
    if (start < state.size() || slot == 0)
      if (!one(state.size(), 0)) return {Outcome::Exhausted, 0};
    CCREF_REQUIRE(slot == structure_.size());

    auto r = tuples_.insert(tuple_.bytes());
    if (r.outcome == Outcome::Inserted) raw_bytes_ += state.size();
    return r;
  }

  std::unique_ptr<MemoryBudget> owned_;  // null when the budget is shared
  MemoryBudget* budget_;
  StorageOptions st_;
  CompressionMode mode_;
  StateSet tuples_;  // Off: raw encodings; Collapse: varint index tuples
  std::vector<std::unique_ptr<StateSet>> dicts_;  // indexed by class
  std::vector<std::uint8_t> structure_;  // class of each tuple slot
  std::size_t raw_bytes_ = 0;
  ByteSink tuple_;  // reused per insert
  mutable std::vector<std::byte> scratch_;  // at() expansion buffer
  // Hash-compaction state: the fingerprint table, the sliding window of
  // not-yet-expanded state bytes (the BFS frontier — the only place full
  // encodings still exist under compaction), and the optional insertion-
  // ordered fingerprint log for trace replay. Window members are mutable
  // because at() — const across the storage tiers — consumes the window
  // front under compaction.
  std::unique_ptr<FingerprintSet> fps_;
  mutable std::deque<std::vector<std::byte>> window_;
  mutable std::uint32_t window_head_ = 0;
  mutable std::size_t window_charged_ = 0;
  std::size_t fp_charged_ = 0;
  std::vector<std::uint64_t> fp_order_;
  // External-tier state: the disk-backed set, the on-disk frontier queue
  // of resolved-but-unexpanded encodings (read back by at(), which also
  // latches the defer parent), and a health flag that turns any disk
  // failure into an honest Exhausted.
  std::unique_ptr<ExternalVisitedSet> ext_;
  mutable RunFile frontier_q_;
  mutable std::uint64_t q_read_ = 0;
  mutable std::uint64_t defer_parent_ = kNoParentIndex;
  bool ext_ok_ = false;
};

// ---------------------------------------------------------------------------
// Lock-free concurrent COLLAPSE — the compressed visited set behind the
// parallel engine's CAS-based shards. Same compression model as
// CollapsedStateSet above (per-class dictionaries, varint index tuples),
// re-engineered so the read-mostly dictionary HIT path takes no lock at
// all: component values recur massively (that is the whole premise of
// COLLAPSE), so after warm-up nearly every intern() is a lock-free probe.
// Only a genuine miss — once per distinct component value, ever — takes a
// short per-dictionary spinlock.
// ---------------------------------------------------------------------------

/// Component structure registry shared by every shard of a sharded
/// collapsed set: slot k of every state tuple must always carry the same
/// dictionary class, or index-tuple equality would stop mirroring state
/// equality. The sequential set checks this against a private vector;
/// concurrent shards publish first-seen classes with CAS so ALL shards
/// (and at()'s re-expansion) agree on one structure.
class CollapseStructure {
 public:
  static constexpr std::size_t kMaxComponents = 512;

  CollapseStructure() {
    for (auto& c : cls_) c.store(-1, std::memory_order_relaxed);
  }

  /// Record (or verify) that tuple slot `slot` carries class `cls`.
  /// False on a structure mismatch — a caller bug, checked by REQUIRE.
  [[nodiscard]] bool check_or_set(std::size_t slot, std::uint8_t cls) {
    if (slot >= kMaxComponents) return false;
    auto want = static_cast<std::int16_t>(cls);
    std::int16_t cur = cls_[slot].load(std::memory_order_acquire);
    if (cur == want) return true;
    if (cur != -1) return false;
    std::int16_t expected = -1;
    if (cls_[slot].compare_exchange_strong(expected, want,
                                           std::memory_order_acq_rel))
      return true;
    return expected == want;
  }

  /// Record (or verify) the component count once a full tuple is sliced.
  [[nodiscard]] bool seal(std::size_t n) {
    auto want = static_cast<std::int32_t>(n);
    std::int32_t cur = count_.load(std::memory_order_acquire);
    if (cur == want) return true;
    if (cur != -1) return false;
    std::int32_t expected = -1;
    if (count_.compare_exchange_strong(expected, want,
                                       std::memory_order_acq_rel))
      return true;
    return expected == want;
  }

  [[nodiscard]] std::size_t count() const {
    auto c = count_.load(std::memory_order_acquire);
    return c < 0 ? 0 : static_cast<std::size_t>(c);
  }
  [[nodiscard]] std::uint8_t cls(std::size_t slot) const {
    return static_cast<std::uint8_t>(cls_[slot].load(std::memory_order_acquire));
  }

 private:
  std::array<std::atomic<std::int16_t>, kMaxComponents> cls_;
  std::atomic<std::int32_t> count_{-1};
};

/// One per-class intern dictionary: maps component bytes to a dense index
/// (dense because the varint tuple coding and the compression-ratio
/// arithmetic depend on small indices). Lookup is lock-free: slot words
/// pack [dense:32][offset+1:32] and are published with release stores, so
/// a prober either sees a complete entry or an empty word. The miss path
/// takes the dictionary's spinlock, re-probes the CURRENT array (the
/// lock-free probe may have raced a publication or read a retired array),
/// and inserts. Slot arrays grow under the lock and are retired — not
/// freed — until destruction, because lock-free probers may still hold
/// them; a stale probe can only miss, never mis-resolve, and every miss
/// re-checks under the lock.
class ConcurrentDict {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  static constexpr std::size_t kFloorBytes = 64 * sizeof(std::uint64_t);

  ConcurrentDict(MemoryBudget& budget, std::size_t chunk0, bool* alive,
                 SpillPolicy spill = {})
      : budget_(&budget), pool_(budget, chunk0, spill) {
    *alive = budget_->try_reserve(kInitialSlots * sizeof(std::uint64_t));
    if (*alive) {
      charged_.fetch_add(kInitialSlots * sizeof(std::uint64_t),
                         std::memory_order_relaxed);
      slots_.store(new Array(kInitialSlots), std::memory_order_relaxed);
    }
  }

  ConcurrentDict(const ConcurrentDict&) = delete;
  ConcurrentDict& operator=(const ConcurrentDict&) = delete;

  ~ConcurrentDict() { delete slots_.load(std::memory_order_relaxed); }

  /// Dense index of `bytes`, interning on first sight; kNone when the
  /// budget refuses the entry. `h` = hash_bytes(bytes).
  [[nodiscard]] std::uint32_t intern(std::span<const std::byte> bytes,
                                     std::uint64_t h) {
    Array* arr = slots_.load(std::memory_order_acquire);
    std::uint32_t dense = lookup(arr, bytes, h);
    if (dense != kNone) return dense;  // lock-free hit path

    std::lock_guard<SpinLock> guard(lock_);
    arr = slots_.load(std::memory_order_relaxed);
    dense = lookup(arr, bytes, h);
    if (dense != kNone) return dense;  // raced a publication

    // Keep ≤ 70% load so the lock-free probe stays short.
    if ((size_plain_ + 1) * 10 > arr->count * 7) {
      if (Array* bigger = grow(arr)) arr = bigger;
      // Growth refused: keep inserting into the old array up to a hard
      // 90% cap, past which we give up (probe termination guarantee).
      else if ((size_plain_ + 1) * 10 >= arr->count * 9)
        return kNone;
    }

    const std::uint32_t off = pool_.alloc(sizeof(std::uint32_t) + bytes.size());
    if (off == decltype(pool_)::kNpos) return kNone;
    std::byte* p = pool_.data(off);
    const auto len = static_cast<std::uint32_t>(bytes.size());
    std::memcpy(p, &len, sizeof(len));
    if (!bytes.empty())
      std::memcpy(p + sizeof(len), bytes.data(), bytes.size());

    dense = size_plain_;
    if (!map_set(dense, off)) return kNone;

    // Publish: find an empty slot in the CURRENT array and release-store
    // the complete word; lock-free probers see all of it or none of it.
    const std::uint64_t mask = arr->count - 1;
    std::size_t slot = h & mask;
    while (arr->word(slot).load(std::memory_order_relaxed) != 0)
      slot = (slot + 1) & mask;
    arr->word(slot).store((std::uint64_t{dense} << 32) | (std::uint64_t{off} + 1),
                          std::memory_order_release);
    ++size_plain_;
    size_.store(size_plain_, std::memory_order_relaxed);
    return dense;
  }

  /// Quiescent-only: bytes of entry `dense` (used by at() re-expansion).
  [[nodiscard]] std::span<const std::byte> at(std::uint32_t dense) const {
    CCREF_REQUIRE(dense < size_.load(std::memory_order_relaxed));
    const std::size_t dir = map_dir(dense);
    const std::uint32_t off = map_[dir][dense - map_base(dir)];
    const std::byte* p = pool_.data(off);
    std::uint32_t len = 0;
    std::memcpy(&len, p, sizeof(len));
    return {p + sizeof(len), len};
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Bytes charged to the budget (slot arrays incl. retired + pool + map).
  [[nodiscard]] std::size_t charged() const {
    return charged_.load(std::memory_order_relaxed) + pool_.charged();
  }

  /// Component bytes held in mmap-backed spill files.
  [[nodiscard]] std::size_t spill_bytes() const { return pool_.spill_bytes(); }

  /// Pool bytes held but never occupied by an entry.
  [[nodiscard]] std::size_t waste_bytes() const { return pool_.bytes_waste(); }

 private:
  static constexpr std::size_t kInitialSlots =
      kFloorBytes / sizeof(std::uint64_t);
  // Dense->offset map in geometrically growing chunks (dir k holds
  // 64 << k entries), same shape as ChunkedBytePool: a 64-entry floor
  // keeps idle dictionaries cheap on tiny budgets while 26 dirs cover
  // the full 32-bit dense space.
  static constexpr std::size_t kMapChunk0Bits = 6;
  static constexpr std::size_t kMapDirs = 26;

  [[nodiscard]] static std::size_t map_dir(std::uint32_t dense) {
    return static_cast<std::size_t>(
        std::bit_width((std::uint64_t{dense} >> kMapChunk0Bits) + 1) - 1);
  }
  [[nodiscard]] static std::uint32_t map_base(std::size_t dir) {
    return static_cast<std::uint32_t>(((std::uint64_t{1} << dir) - 1)
                                      << kMapChunk0Bits);
  }
  [[nodiscard]] static std::size_t map_entries(std::size_t dir) {
    return std::size_t{1} << (kMapChunk0Bits + dir);
  }

  struct Array {
    explicit Array(std::size_t n)
        : count(n), words(new std::atomic<std::uint64_t>[n]()) {}
    std::size_t count;
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
    [[nodiscard]] std::atomic<std::uint64_t>& word(std::size_t i) {
      return words[i];
    }
  };

  [[nodiscard]] std::uint32_t lookup(Array* arr,
                                     std::span<const std::byte> bytes,
                                     std::uint64_t h) const {
    const std::uint64_t mask = arr->count - 1;
    std::size_t slot = h & mask;
    for (;;) {
      const std::uint64_t w = arr->word(slot).load(std::memory_order_acquire);
      if (w == 0) return kNone;
      const auto off = static_cast<std::uint32_t>((w & 0xffffffffu) - 1);
      const std::byte* p = pool_.data(off);
      std::uint32_t len = 0;
      std::memcpy(&len, p, sizeof(len));
      if (len == bytes.size() &&
          (bytes.empty() ||
           std::memcmp(p + sizeof(len), bytes.data(), len) == 0))
        return static_cast<std::uint32_t>(w >> 32);
      slot = (slot + 1) & mask;
    }
  }

  // Under lock_. nullptr when the budget refuses the bigger array.
  [[nodiscard]] Array* grow(Array* old) {
    const std::size_t fresh_count = old->count * 2;
    if (!budget_->try_reserve(fresh_count * sizeof(std::uint64_t)))
      return nullptr;
    charged_.fetch_add(fresh_count * sizeof(std::uint64_t),
                       std::memory_order_relaxed);
    auto* fresh = new Array(fresh_count);
    const std::uint64_t mask = fresh_count - 1;
    for (std::size_t i = 0; i < old->count; ++i) {
      const std::uint64_t w = old->word(i).load(std::memory_order_relaxed);
      if (w == 0) continue;
      const auto off = static_cast<std::uint32_t>((w & 0xffffffffu) - 1);
      const std::byte* p = pool_.data(off);
      std::uint32_t len = 0;
      std::memcpy(&len, p, sizeof(len));
      std::size_t slot =
          hash_bytes({p + sizeof(len), len}) & mask;
      while (fresh->word(slot).load(std::memory_order_relaxed) != 0)
        slot = (slot + 1) & mask;
      fresh->word(slot).store(w, std::memory_order_relaxed);
    }
    slots_.store(fresh, std::memory_order_release);
    // Lock-free probers may still hold `old`: retire it (and keep its
    // budget charge — the memory really is still held) until destruction.
    retired_.emplace_back(old);
    return fresh;
  }

  // Written only under lock_; chunk addresses never move, so quiescent
  // readers (at()) walk the map without coordination.
  [[nodiscard]] bool map_set(std::uint32_t dense, std::uint32_t off) {
    const std::size_t dir = map_dir(dense);
    if (dir >= kMapDirs) return false;
    if (!map_[dir]) {
      const std::size_t bytes = map_entries(dir) * sizeof(std::uint32_t);
      if (!budget_->try_reserve(bytes)) return false;
      charged_.fetch_add(bytes, std::memory_order_relaxed);
      map_[dir] = std::make_unique<std::uint32_t[]>(map_entries(dir));
    }
    map_[dir][dense - map_base(dir)] = off;
    return true;
  }

  MemoryBudget* budget_;
  ChunkedBytePool<MemoryBudget> pool_;
  SpinLock lock_;
  std::atomic<Array*> slots_{nullptr};
  std::vector<std::unique_ptr<Array>> retired_;  // mutated under lock_
  std::array<std::unique_ptr<std::uint32_t[]>, kMapDirs> map_{};
  std::uint32_t size_plain_ = 0;            // authoritative, under lock_
  std::atomic<std::uint32_t> size_{0};      // mirror for lock-free readers
  std::atomic<std::size_t> charged_{0};
};

/// One shard of the lock-free parallel visited set. CompressionMode::Off
/// is a passthrough to an AtomicByteTable over raw encodings; Collapse
/// interns components through ConcurrentDicts (lock-free hit path) and
/// stores the varint index tuple in the table. Refs are record byte
/// offsets — stable, dense-free, and never reused.
///
/// Concurrency contract: insert() from any thread; at()/parent_of()/
/// stored_bytes() require quiescence (at() expands into a scratch buffer;
/// dictionaries retire arrays only, so even that is safe against races,
/// but the contract stays conservative to match the sequential set).
class ConcurrentCollapsedSet {
 public:
  using Outcome = InsertOutcome;

  struct InsertResult {
    Outcome outcome;
    std::uint32_t ref = 0;  // record offset in this shard; valid unless Exhausted
  };

  /// Sizing knobs, computed once by ShardedStateSet so K shards plus
  /// their floors provably fit small budgets (tables shrink before the
  /// budget is even consulted).
  struct Layout {
    std::size_t table_slots = 1024;
    std::size_t table_chunk0 = 4096;
    std::size_t dict_chunk0 = 512;
  };

  ConcurrentCollapsedSet(MemoryBudget& budget, const StorageOptions& st,
                         bool track_parents, CollapseStructure& structure,
                         Layout layout)
      : budget_(&budget),
        st_(st),
        mode_(st.compress),
        structure_(&structure),
        layout_(layout),
        tuples_(budget, layout.table_slots, layout.table_chunk0,
                track_parents, st.spill) {
    for (auto& d : dicts_) d.store(nullptr, std::memory_order_relaxed);
  }

  ~ConcurrentCollapsedSet() {
    for (auto& d : dicts_) delete d.load(std::memory_order_relaxed);
  }

  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::span<const ComponentMark> marks,
                                    std::uint64_t raw_hash,
                                    std::uint64_t parent) {
    if (st_.hash_compact) {
      // `raw_hash` IS the fingerprint here — the sharded set hashes with
      // the run's FingerprintFn under compaction — so an empty-payload
      // record gives exact fingerprint-set semantics: tag match, then the
      // stored full 64-bit hash, then empty==empty payload comparison.
      auto r = tuples_.insert({}, raw_hash, parent);
      if (r.outcome == Outcome::Inserted)
        raw_bytes_.fetch_add(state.size(), std::memory_order_relaxed);
      return {r.outcome, r.ref};
    }
    if (mode_ == CompressionMode::Off) {
      auto r = tuples_.insert(state, raw_hash, parent);
      if (r.outcome == Outcome::Inserted)
        raw_bytes_.fetch_add(state.size(), std::memory_order_relaxed);
      return {r.outcome, r.ref};
    }

    // Slice into components exactly like the sequential set: [previous
    // end, mark.end) per mark plus an implicit trailing class-0 tail.
    static thread_local ByteSink tuple;
    tuple.clear();
    std::size_t start = 0;
    std::size_t slot = 0;
    auto one = [&](std::size_t end, std::uint8_t cls) {
      CCREF_REQUIRE(cls < kMaxClasses && start <= end && end <= state.size());
      CCREF_REQUIRE(structure_->check_or_set(slot, cls));
      ConcurrentDict* d = dict(cls);
      if (d == nullptr) return false;
      auto comp = state.subspan(start, end - start);
      const std::uint32_t dense = d->intern(comp, hash_bytes(comp));
      if (dense == ConcurrentDict::kNone) return false;
      // An interned component of a state whose insert later exhausts
      // stays in its dictionary — valid, likely reusable, fully charged.
      tuple.varint(dense);
      start = end;
      ++slot;
      return true;
    };
    for (const ComponentMark& m : marks)
      if (!one(m.end, m.cls)) return {Outcome::Exhausted, 0};
    if (start < state.size() || slot == 0)
      if (!one(state.size(), 0)) return {Outcome::Exhausted, 0};
    CCREF_REQUIRE(structure_->seal(slot));

    auto tb = tuple.bytes();
    auto r = tuples_.insert(tb, hash_bytes(tb), parent);
    if (r.outcome == Outcome::Inserted)
      raw_bytes_.fetch_add(state.size(), std::memory_order_relaxed);
    return {r.outcome, r.ref};
  }

  /// Quiescent-only. Off: stable span into the pool. Collapse: the tuple
  /// re-expanded through the dictionaries into a scratch buffer — valid
  /// until the next at() on this shard. Hash-compact records keep no
  /// payload: traces are re-concretized by fingerprint replay instead.
  [[nodiscard]] std::span<const std::byte> at(std::uint32_t ref) const {
    CCREF_REQUIRE(!st_.hash_compact);
    if (mode_ == CompressionMode::Off) return tuples_.at(ref);
    ByteSource src(tuples_.at(ref));
    scratch_.clear();
    const std::size_t n = structure_->count();
    for (std::size_t i = 0; i < n; ++i) {
      const ConcurrentDict* d =
          dicts_[structure_->cls(i)].load(std::memory_order_acquire);
      CCREF_ASSERT(d != nullptr);
      auto comp = d->at(static_cast<std::uint32_t>(src.varint()));
      scratch_.insert(scratch_.end(), comp.begin(), comp.end());
    }
    CCREF_ASSERT(src.exhausted());
    return scratch_;
  }

  [[nodiscard]] std::uint64_t parent_of(std::uint32_t ref) const {
    return tuples_.parent_at(ref);
  }

  /// Stored 64-bit hash of a record — under hash compaction this is the
  /// state's fingerprint, the handle trace replay matches against.
  [[nodiscard]] std::uint64_t hash_of(std::uint32_t ref) const {
    return tuples_.hash_at(ref);
  }

  [[nodiscard]] std::size_t size() const { return tuples_.size(); }

  [[nodiscard]] std::size_t raw_bytes() const {
    return raw_bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes actually spent storing states: tuple payloads plus the full
  /// dictionary footprint (mirrors CollapsedStateSet::stored_bytes).
  /// Hash-compact: the table's full charge — slots plus empty-payload
  /// records are exactly the fingerprint storage.
  [[nodiscard]] std::size_t stored_bytes() const {
    if (st_.hash_compact) return tuples_.charged();
    std::size_t total = tuples_.payload_bytes();
    for (const auto& d : dicts_)
      if (const auto* p = d.load(std::memory_order_acquire))
        total += p->charged();
    return total;
  }

  /// Bytes held in mmap-backed spill files (record pool + dictionaries).
  [[nodiscard]] std::size_t spill_bytes() const {
    std::size_t total = tuples_.spill_bytes();
    for (const auto& d : dicts_)
      if (const auto* p = d.load(std::memory_order_acquire))
        total += p->spill_bytes();
    return total;
  }

  /// Chunk bytes held but never occupied by records, across all pools.
  [[nodiscard]] std::size_t waste_bytes() const {
    std::size_t total = tuples_.waste_bytes();
    for (const auto& d : dicts_)
      if (const auto* p = d.load(std::memory_order_acquire))
        total += p->waste_bytes();
    return total;
  }

 private:
  static constexpr std::size_t kMaxClasses = 16;

  /// Dictionary for `cls`, created on first use (CAS install; the loser
  /// deletes its copy). nullptr when the budget refuses even the floor.
  [[nodiscard]] ConcurrentDict* dict(std::uint8_t cls) {
    auto& slot = dicts_[cls];
    if (ConcurrentDict* d = slot.load(std::memory_order_acquire)) return d;
    bool alive = false;
    auto* fresh = new ConcurrentDict(*budget_, layout_.dict_chunk0, &alive,
                                     st_.spill);
    if (!alive) {
      delete fresh;
      return nullptr;
    }
    ConcurrentDict* expected = nullptr;
    if (slot.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
      return fresh;
    delete fresh;  // ~ConcurrentDict releases nothing; undo the floor charge
    budget_->release(ConcurrentDict::kFloorBytes);
    return expected;
  }

  MemoryBudget* budget_;
  StorageOptions st_;
  CompressionMode mode_;
  CollapseStructure* structure_;
  Layout layout_;
  AtomicByteTable<MemoryBudget> tuples_;
  std::array<std::atomic<ConcurrentDict*>, kMaxClasses> dicts_;
  std::atomic<std::size_t> raw_bytes_{0};
  mutable std::vector<std::byte> scratch_;  // at() expansion buffer
};

}  // namespace ccref::verify
