// Forward-progress (weak fairness) analysis — the paper's §2.5 guarantee.
//
// The refinement promises that *some* remote always makes progress: from
// every reachable state, a rendezvous-completing transition must remain
// reachable. A state from which no completion is ever reachable is *doomed*
// (a livelock: the system can still move — nacks and retries forever — but
// never completes another rendezvous). §3.2 motivates the progress buffer
// with exactly this failure: "if the buffer is full and none of the requests
// in the buffer can enable a guard in the home node ... the home node can no
// longer make progress".
//
// check_progress() builds the reachable graph, seeds a backward search at
// every state with an outgoing completing edge, and reports the states the
// search never reaches. Deadlock states (no successors at all) are also
// doomed.
#pragma once

#include "verify/checker.hpp"

namespace ccref::verify {

struct ProgressResult {
  Status status = Status::Ok;  // Ok, or Unfinished on memory exhaustion
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t completing_edges = 0;
  std::size_t doomed = 0;         // states that can never complete again
  std::string doomed_example;     // describe() of one doomed state
  double seconds = 0;
};

template <class Sys>
[[nodiscard]] ProgressResult check_progress(
    const Sys& sys, std::size_t memory_limit = 256u << 20) {
  auto t0 = std::chrono::steady_clock::now();
  ProgressResult result;
  StateSet seen(memory_limit);
  // Reverse adjacency + per-state "has a completing out-edge" seed flag.
  std::vector<std::vector<std::uint32_t>> rev;
  std::vector<std::uint8_t> seed;

  {
    ByteSink sink;
    sys.encode(sys.initial(), sink);
    auto ins = seen.insert(sink.bytes());
    CCREF_ASSERT(ins.outcome == StateSet::Outcome::Inserted);
    rev.emplace_back();
    seed.push_back(0);
  }

  for (std::uint32_t cursor = 0; cursor < seen.size(); ++cursor) {
    ByteSource src(seen.at(cursor));
    auto state = sys.decode(src);
    for (auto& [succ, label] : sys.successors(state)) {
      ++result.transitions;
      ByteSink sink;
      sys.encode(succ, sink);
      auto ins = seen.insert(sink.bytes());
      if (ins.outcome == StateSet::Outcome::Exhausted) {
        result.status = Status::Unfinished;
        result.states = seen.size();
        return result;
      }
      if (ins.outcome == StateSet::Outcome::Inserted) {
        rev.emplace_back();
        seed.push_back(0);
      }
      rev[ins.index].push_back(cursor);
      if (label.completes_rendezvous) {
        ++result.completing_edges;
        seed[cursor] = 1;
      }
    }
  }
  result.states = seen.size();

  // Backward reachability from completing states.
  std::vector<std::uint8_t> good = seed;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t s = 0; s < good.size(); ++s)
    if (good[s]) stack.push_back(s);
  while (!stack.empty()) {
    std::uint32_t at = stack.back();
    stack.pop_back();
    for (std::uint32_t pred : rev[at])
      if (!good[pred]) {
        good[pred] = 1;
        stack.push_back(pred);
      }
  }
  for (std::uint32_t s = 0; s < good.size(); ++s) {
    if (good[s]) continue;
    ++result.doomed;
    if (result.doomed_example.empty()) {
      ByteSource src(seen.at(s));
      result.doomed_example = sys.describe(sys.decode(src));
    }
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace ccref::verify
