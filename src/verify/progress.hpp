// Forward-progress (weak fairness) analysis — the paper's §2.5 guarantee.
//
// The refinement promises that *some* remote always makes progress: from
// every reachable state, a rendezvous-completing transition must remain
// reachable. A state from which no completion is ever reachable is *doomed*
// (a livelock: the system can still move — nacks and retries forever — but
// never completes another rendezvous). §3.2 motivates the progress buffer
// with exactly this failure: "if the buffer is full and none of the requests
// in the buffer can enable a guard in the home node ... the home node can no
// longer make progress".
//
// check_progress() builds the reachable graph (via the same detail::bfs_reach
// skeleton the safety checker uses, so symmetry reduction and the memory cap
// behave identically), seeds a backward search at every state with an
// outgoing completing edge, and reports the states the search never reaches.
// Deadlock states (no successors at all) are also doomed.
//
// "Doomed state exists" is the CTL flavour of non-progress; the LTL flavour
// (`G F completion` under weak fairness, ltl/check.hpp) agrees with it on
// these protocols — tests/test_liveness.cpp pins that agreement down.
#pragma once

#include "verify/checker.hpp"

namespace ccref::verify {

struct ProgressOptions {
  std::size_t memory_limit = 64u << 20;  // the paper's 64 MB cap
  /// Orbit quotient (symmetry.hpp). Sound for this analysis: "a completion
  /// stays reachable" is invariant under remote permutation, so a doomed
  /// representative implies a doomed orbit and vice versa.
  SymmetryMode symmetry = SymmetryMode::Off;
  /// Ample-set reduction (por.hpp). Sound here with no extra restrictions:
  /// reduced paths are real paths (no false doomed states), and with the
  /// cycle proviso every full-graph trace from a reduced state has a
  /// reduced-graph path carrying the same transitions, so a completion
  /// reachable in the full graph stays reachable in the reduced one (no
  /// missed doomed states). Reported counts are reduced-graph quantities.
  PorMode por = PorMode::Off;
  /// COLLAPSE component interning (collapse.hpp); verdict-neutral.
  CompressionMode compress = CompressionMode::Off;
  /// Pre-size the visited set for this many states (0: grow on demand).
  std::size_t expected_states = 0;
};

struct ProgressResult {
  Status status = Status::Ok;  // Ok, or Unfinished on memory exhaustion
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t completing_edges = 0;
  std::size_t doomed = 0;        // states that can never complete again
  std::string doomed_example;    // describe() of one doomed state
  std::size_t memory_bytes = 0;  // visited set + reverse graph
  double seconds = 0;
};

template <class Sys>
[[nodiscard]] ProgressResult check_progress(const Sys& sys,
                                            const ProgressOptions& opts = {}) {
  auto t0 = std::chrono::steady_clock::now();
  ProgressResult result;
  CollapsedStateSet seen(opts.memory_limit, opts.compress,
                         opts.expected_states);
  // Reverse adjacency + per-state "has a completing out-edge" seed flag.
  std::vector<std::vector<std::uint32_t>> rev;
  std::vector<std::uint8_t> seed;

  // The reverse graph is charged against the same budget as the visited set
  // so the cap bounds the whole analysis, not just state storage. Per-edge
  // capacity overshoot inside rev's inner vectors is not observable cheaply;
  // this is the same element-count approximation liveness.hpp uses.
  std::size_t aux_bytes = 0;
  auto charge_aux = [&](std::size_t bytes) {
    aux_bytes += bytes;
    return seen.budget().try_reserve(bytes);
  };
  constexpr std::size_t kPerState =
      sizeof(std::vector<std::uint32_t>) + sizeof(std::uint8_t);
  constexpr std::size_t kPerEdge = sizeof(std::uint32_t);

  auto finish = [&](Status status) {
    result.status = status;
    result.states = seen.size();
    result.memory_bytes = seen.memory_used() + aux_bytes;
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  };

  auto outcome = detail::bfs_reach(
      sys, seen, opts.symmetry, sem::LabelMode::Quiet, opts.por,
      /*por_visible=*/0,
      [&](std::uint32_t index, const auto&, const auto&) {
        if (index == 0) {  // bfs_reach just inserted the root
          rev.emplace_back();
          seed.push_back(0);
          return charge_aux(kPerState);
        }
        return true;
      },
      [&](std::uint32_t, const auto&, const auto&, const sem::Label&) {
        ++result.transitions;
        return true;
      },
      [&](std::uint32_t from, const StateSet::InsertResult& ins, const auto&,
          const sem::Label& label) {
        if (ins.outcome == StateSet::Outcome::Inserted) {
          rev.emplace_back();
          seed.push_back(0);
          if (!charge_aux(kPerState)) return false;
        }
        rev[ins.index].push_back(from);
        if (!charge_aux(kPerEdge)) return false;
        if (label.completes_rendezvous) {
          ++result.completing_edges;
          seed[from] = 1;
        }
        return true;
      });
  switch (outcome) {
    case detail::BfsOutcome::Exhausted:
    case detail::BfsOutcome::Stopped:  // reverse-graph accounting refused
      return finish(Status::Unfinished);
    case detail::BfsOutcome::Complete: break;
  }

  // Backward reachability from completing states.
  if (!charge_aux(seen.size() * (sizeof(std::uint8_t) + sizeof(std::uint32_t))))
    return finish(Status::Unfinished);
  std::vector<std::uint8_t> good = seed;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t s = 0; s < good.size(); ++s)
    if (good[s]) stack.push_back(s);
  while (!stack.empty()) {
    std::uint32_t at = stack.back();
    stack.pop_back();
    for (std::uint32_t pred : rev[at])
      if (!good[pred]) {
        good[pred] = 1;
        stack.push_back(pred);
      }
  }
  for (std::uint32_t s = 0; s < good.size(); ++s) {
    if (good[s]) continue;
    ++result.doomed;
    if (result.doomed_example.empty()) {
      ByteSource src(seen.at(s));
      result.doomed_example = sys.describe(sys.decode(src));
    }
  }
  return finish(Status::Ok);
}

/// Budget-only convenience overload kept for existing call sites.
template <class Sys>
[[nodiscard]] ProgressResult check_progress(const Sys& sys,
                                            std::size_t memory_limit) {
  ProgressOptions opts;
  opts.memory_limit = memory_limit;
  return check_progress(sys, opts);
}

}  // namespace ccref::verify
