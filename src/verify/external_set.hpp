// External-memory visited set: partitioned fingerprint run files with a
// RAM cache front and sorted-run delayed duplicate detection (Stern &
// Dill's disk-based Murphi scheme, adapted to the fingerprint tier).
//
// PR 7 moved POOLS to disk (--spill) but hash tables stayed RAM-resident
// by design — a table probe is a random access, and random access to
// disk is what kills external hashing. This tier removes the table from
// RAM entirely by changing the *timing* of the membership answer:
//
//   * insert(fp) first probes a small in-RAM cache of recently inserted
//     fingerprints. The cache holds only genuine fingerprints, so a HIT
//     is an exact "AlreadyPresent" — no deferred work, no I/O. BFS
//     locality makes this the common case (most duplicate edges point at
//     states inserted recently).
//   * A MISS proves nothing (the cache forgets). The fingerprint is
//     appended — 8 bytes, sequential — to one of P partition files
//     chosen by its high bits, the encoded state bytes to a sibling
//     record file, and the caller gets InsertOutcome::Deferred: "not
//     known visited; queued for delayed duplicate detection".
//   * When a partition's pending run crosses a watermark (or the BFS
//     frontier drains), resolve() sorts the pending fingerprints by
//     (fp, arrival), streams them against that partition's sorted
//     history run, writes the merged history, and calls back with each
//     genuinely-new state so the engine can assign it an index and
//     re-enqueue it. Per resolved batch that is ONE sequential read of
//     the history plus ONE sequential write of the merged run — the
//     amortized ≤2 sequential passes the tier is designed around.
//
// Partitioning by high fingerprint bits keeps each sort RAM-sized and
// each merge local to one file; fingerprints are uniform, so partitions
// stay balanced. Within a batch, duplicates dedupe by arrival order
// (first one wins — matching what a RAM table would have answered).
//
// Correctness: a state's fingerprint is appended to exactly one
// partition, and a partition's history run is a sorted set of every
// fingerprint previously admitted there. A pending fingerprint survives
// iff it is absent from the history AND is the first of its value in the
// batch, so each distinct fingerprint is admitted exactly once across
// the whole run — the same exactly-once discipline as a RAM table, with
// the answer delayed to the next merge. Fingerprint collisions dedupe
// distinct states exactly as --hash-compact does; omission_bound()
// quantifies that, and it is reported, never silent.
//
// Files live unlinked in the caller's directory (run_file.hpp): the fds
// own the blocks, crash leaves nothing. All RAM (cache, sort scratch,
// append buffers) is charged to the shared MemoryBudget up front, so the
// 64 MB wall stays honest while disk takes the table's place.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/atomic_table.hpp"
#include "support/contracts.hpp"
#include "support/run_file.hpp"
#include "verify/memory_budget.hpp"

namespace ccref::verify {

/// `--external DIR` routing, threaded through StorageOptions. Zeroes mean
/// "size from the memory budget" (ExternalVisitedSet::configure).
struct ExternalPolicy {
  std::string dir;            // empty: tier off
  std::size_t partitions = 0; // pending-run fan-out (rounded to a power of 2)
  std::size_t watermark = 0;  // pending entries per partition before a merge
  std::size_t cache_bytes = 0;  // RAM cache front

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// How a resolve pass ended, surfaced to the BFS drain loop.
enum class ResolveOutcome : std::uint8_t {
  Fresh,    // at least one genuinely-new state was delivered
  Drained,  // nothing pending anywhere (or nothing survived the merge)
  Failed,   // disk I/O failed — the caller reports Unfinished
};

class ExternalVisitedSet {
 public:
  using Outcome = ::ccref::InsertOutcome;

  struct Config {
    std::string dir;
    std::size_t partitions = 4;    // power of two
    std::size_t watermark = 4096;  // pending entries per partition
    std::size_t cache_slots = 65536;  // power of two
    bool keep_order_log = false;   // (fp, parent) per resolved state, for traces
  };

  /// Budget-driven sizing. `shares` splits the RAM knobs across sibling
  /// sets drawing on one budget (the sharded engine runs one single-
  /// partition set per shard).
  [[nodiscard]] static Config configure(const ExternalPolicy& policy,
                                        std::size_t budget_limit,
                                        std::size_t shares = 1) {
    Config cfg;
    cfg.dir = policy.dir;
    if (shares == 0) shares = 1;
    // Partitions bound each merge's sort to watermark entries; more of
    // them only costs append buffers, so scale gently with the budget.
    std::size_t parts = policy.partitions;
    if (parts == 0)
      parts = budget_limit >= (256u << 20) ? 64
              : budget_limit >= (16u << 20) ? 16
                                            : 4;
    cfg.partitions = round_pow2(parts);
    std::size_t wm = policy.watermark;
    if (wm == 0)
      wm = std::clamp<std::size_t>(budget_limit / 1024 / shares, 4096,
                                   std::size_t{1} << 20);
    cfg.watermark = wm;
    const std::size_t cache =
        (policy.cache_bytes != 0 ? policy.cache_bytes : budget_limit / 4) /
        shares;
    cfg.cache_slots =
        round_pow2(std::max<std::size_t>(cache / sizeof(std::uint64_t),
                                         1024));
    while (cfg.cache_slots > 1024 &&
           cfg.cache_slots * sizeof(std::uint64_t) > cache)
      cfg.cache_slots /= 2;
    return cfg;
  }

  ExternalVisitedSet(MemoryBudget& budget, const Config& cfg)
      : budget_(&budget), cfg_(cfg) {
    CCREF_REQUIRE((cfg_.partitions & (cfg_.partitions - 1)) == 0);
    CCREF_REQUIRE((cfg_.cache_slots & (cfg_.cache_slots - 1)) == 0);
    partition_bits_ = 0;
    for (std::size_t v = cfg_.partitions; v > 1; v >>= 1) ++partition_bits_;

    ok_ = ensure_run_dir(cfg_.dir);
    parts_.resize(cfg_.partitions);
    for (auto& p : parts_) {
      ok_ = ok_ && p.fps.open(cfg_.dir, "pending-fp", kFpBufBytes);
      ok_ = ok_ && p.recs.open(cfg_.dir, "pending-rec", kRecBufBytes);
      ok_ = ok_ && p.history.open(cfg_.dir, "history", kStreamBufBytes);
    }
    if (cfg_.keep_order_log)
      ok_ = ok_ && order_log_.open(cfg_.dir, "order-log", kFpBufBytes);

    cache_.resize(cfg_.cache_slots, 0);
    // Fixed RAM plan, charged once: the cache, per-partition append
    // buffers, and the resolve scratch (sort keys + survivor map for one
    // watermark-sized batch, plus the stream buffers). Charging up front
    // keeps resolve() from perturbing the budget mid-run — a transient
    // overcharge there could turn a sibling's insert into a spurious
    // Unfinished. Same born-exhausted-not-dishonest discipline as the
    // RAM tables.
    charged_ = cfg_.cache_slots * sizeof(std::uint64_t) +
               cfg_.partitions * (kFpBufBytes + kRecBufBytes) +
               cfg_.watermark * (sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                                 sizeof(std::uint8_t)) +
               4 * kStreamBufBytes;
    if (!budget_->try_reserve(charged_)) budget_->charge(charged_);
  }

  ~ExternalVisitedSet() { budget_->release(charged_); }

  ExternalVisitedSet(const ExternalVisitedSet&) = delete;
  ExternalVisitedSet& operator=(const ExternalVisitedSet&) = delete;

  /// All files created and healthy?
  [[nodiscard]] bool ok() const { return ok_; }

  /// Membership probe + enqueue. AlreadyPresent is EXACT (cache front
  /// hit); Deferred means "queued for the next merge"; Exhausted means
  /// disk I/O failed. Never returns Inserted — fresh states surface
  /// through resolve()'s callback instead.
  [[nodiscard]] Outcome insert(std::uint64_t fp, std::uint64_t parent,
                               std::span<const std::byte> bytes) {
    if (!ok_) return Outcome::Exhausted;
    if (fp == 0) fp = 1;  // 0 marks an empty cache slot
    const std::size_t mask = cfg_.cache_slots - 1;
    const std::size_t base = fp & mask;
    for (std::size_t i = 0; i < kCacheProbes; ++i) {
      const std::uint64_t w = cache_[(base + i) & mask];
      if (w == fp) return Outcome::AlreadyPresent;
      if (w == 0) break;
    }
    // Remember the fingerprint (overwriting the oldest of the probe
    // window on conflict) so repeat edges in the near future hit.
    std::size_t victim = base;
    for (std::size_t i = 0; i < kCacheProbes; ++i) {
      const std::size_t s = (base + i) & mask;
      if (cache_[s] == 0) {
        victim = s;
        break;
      }
      if (i == (cache_tick_ % kCacheProbes)) victim = s;
    }
    cache_[victim] = fp;
    ++cache_tick_;

    Partition& p = parts_[partition_of(fp)];
    const auto len = static_cast<std::uint32_t>(bytes.size());
    if (!p.fps.append(&fp, sizeof(fp)) ||
        !p.recs.append(&parent, sizeof(parent)) ||
        !p.recs.append(&len, sizeof(len)) ||
        (!bytes.empty() && !p.recs.append(bytes.data(), bytes.size()))) {
      ok_ = false;
      return Outcome::Exhausted;
    }
    ++p.pending;
    ++pending_total_;
    return Outcome::Deferred;
  }

  /// Any partition past the watermark?
  [[nodiscard]] bool needs_resolve() const {
    for (const Partition& p : parts_)
      if (p.pending >= cfg_.watermark) return true;
    return false;
  }

  [[nodiscard]] std::size_t pending() const { return pending_total_; }

  /// Run delayed duplicate detection. `only_ripe` restricts the pass to
  /// partitions past the watermark (the steady-state trigger); the BFS
  /// drain phase passes false to flush everything. `on_fresh(index, fp,
  /// parent, bytes)` fires once per genuinely-new state, in resolution
  /// order; `index` is the state's global insertion index.
  template <class F>
  [[nodiscard]] ResolveOutcome resolve(bool only_ripe, F&& on_fresh) {
    if (!ok_) return ResolveOutcome::Failed;
    bool fresh = false;
    for (Partition& p : parts_) {
      if (p.pending == 0) continue;
      if (only_ripe && p.pending < cfg_.watermark) continue;
      switch (resolve_one(p, on_fresh)) {
        case ResolveOutcome::Fresh: fresh = true; break;
        case ResolveOutcome::Drained: break;
        case ResolveOutcome::Failed: ok_ = false; return ResolveOutcome::Failed;
      }
    }
    return fresh ? ResolveOutcome::Fresh : ResolveOutcome::Drained;
  }

  /// States admitted so far (resolved; pending entries are not counted).
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Fingerprint / BFS parent of the index-th admitted state, from the
  /// order log (keep_order_log runs only — the trace-replay path).
  [[nodiscard]] std::uint64_t fingerprint_at(std::uint32_t index) const {
    return order_entry(index, 0);
  }
  [[nodiscard]] std::uint64_t parent_at(std::uint32_t index) const {
    return order_entry(index, sizeof(std::uint64_t));
  }

  /// Bytes currently held on disk across pending runs, history runs and
  /// the order log.
  [[nodiscard]] std::size_t disk_bytes() const {
    std::uint64_t total = order_log_.bytes();
    for (const Partition& p : parts_)
      total += p.fps.bytes() + p.recs.bytes() + p.history.bytes();
    return static_cast<std::size_t>(total);
  }

  /// Sorted-run merge passes performed (one per partition per resolve).
  [[nodiscard]] std::size_t merge_passes() const { return merge_passes_; }

  /// RAM charged against the budget (cache + buffers + resolve scratch).
  [[nodiscard]] std::size_t memory_used() const { return charged_; }

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  // Append-buffer sizes: pending fps see one u64 per miss, records a few
  // dozen bytes; history/stream buffers carry the sequential merges.
  static constexpr std::size_t kFpBufBytes = 4096;
  static constexpr std::size_t kRecBufBytes = 8192;
  static constexpr std::size_t kStreamBufBytes = 32768;
  static constexpr std::size_t kCacheProbes = 8;

  struct Partition {
    RunFile fps;      // pending fingerprints, 8 B each, arrival order
    RunFile recs;     // pending (parent u64, len u32, bytes) records
    RunFile history;  // sorted run of every admitted fingerprint
    std::size_t pending = 0;
  };

  [[nodiscard]] static std::size_t round_pow2(std::size_t v) {
    std::size_t r = 1;
    while (r < v) r <<= 1;
    return r;
  }

  [[nodiscard]] std::size_t partition_of(std::uint64_t fp) const {
    return partition_bits_ == 0
               ? 0
               : static_cast<std::size_t>(fp >> (64 - partition_bits_));
  }

  [[nodiscard]] std::uint64_t order_entry(std::uint32_t index,
                                          std::size_t field_off) const {
    CCREF_REQUIRE(cfg_.keep_order_log && index < size_);
    std::uint64_t v = 0;
    const std::uint64_t off =
        std::uint64_t{index} * 2 * sizeof(std::uint64_t) + field_off;
    CCREF_REQUIRE(order_log_.pread_at(off, &v, sizeof(v)));
    return v;
  }

  template <class F>
  [[nodiscard]] ResolveOutcome resolve_one(Partition& p, F&& on_fresh) {
    const std::size_t n = p.pending;
    if (!p.fps.flush() || !p.recs.flush()) return ResolveOutcome::Failed;

    // Pass 0 (RAM): load + sort the pending batch by (fp, arrival).
    batch_.resize(n);
    if (!p.fps.pread_at(0, batch_.data(), n * sizeof(std::uint64_t)))
      return ResolveOutcome::Failed;
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0u);
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return batch_[a] != batch_[b] ? batch_[a] < batch_[b] : a < b;
              });
    survivor_.assign(n, 0);

    // Pass 1 (disk read) + pass 2 (disk write): stream the sorted history
    // against the sorted batch, writing the merged history run. A batch
    // fingerprint survives iff it is absent from history and first of its
    // value in the batch.
    RunFile merged;
    if (!merged.open(cfg_.dir, "history", kStreamBufBytes) ||
        !p.history.flush())
      return ResolveOutcome::Failed;
    RunFile::Reader hist(p.history, kStreamBufBytes);
    std::uint64_t hfp = 0;
    bool have_h = hist.read(&hfp, sizeof(hfp));
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t bfp = batch_[order_[i]];
      while (have_h && hfp < bfp) {
        if (!merged.append(&hfp, sizeof(hfp))) return ResolveOutcome::Failed;
        have_h = hist.read(&hfp, sizeof(hfp));
      }
      const bool dup = have_h && hfp == bfp;
      if (!dup) {
        survivor_[order_[i]] = 1;
        if (!merged.append(&bfp, sizeof(bfp))) return ResolveOutcome::Failed;
      }
      while (i < n && batch_[order_[i]] == bfp) ++i;  // batch-internal dups
    }
    while (have_h) {
      if (!merged.append(&hfp, sizeof(hfp))) return ResolveOutcome::Failed;
      have_h = hist.read(&hfp, sizeof(hfp));
    }
    if (!merged.flush()) return ResolveOutcome::Failed;
    p.history = std::move(merged);

    // Deliver survivors in arrival order by streaming the record file.
    RunFile::Reader recs(p.recs, kStreamBufBytes);
    bool fresh = false;
    for (std::size_t pos = 0; pos < n; ++pos) {
      std::uint64_t parent = 0;
      std::uint32_t len = 0;
      if (!recs.read(&parent, sizeof(parent)) || !recs.read(&len, sizeof(len)))
        return ResolveOutcome::Failed;
      rec_scratch_.resize(len);
      if (len != 0 && !recs.read(rec_scratch_.data(), len))
        return ResolveOutcome::Failed;
      if (!survivor_[pos]) continue;
      const std::uint64_t fp = batch_[pos];
      const auto index = static_cast<std::uint32_t>(size_++);
      if (cfg_.keep_order_log) {
        if (!order_log_.append(&fp, sizeof(fp)) ||
            !order_log_.append(&parent, sizeof(parent)) ||
            !order_log_.flush())
          return ResolveOutcome::Failed;
      }
      fresh = true;
      on_fresh(index, fp, parent,
               std::span<const std::byte>(rec_scratch_.data(),
                                          rec_scratch_.size()));
    }

    if (!p.fps.reset() || !p.recs.reset()) return ResolveOutcome::Failed;
    pending_total_ -= p.pending;
    p.pending = 0;
    ++merge_passes_;
    return fresh ? ResolveOutcome::Fresh : ResolveOutcome::Drained;
  }

  MemoryBudget* budget_;
  Config cfg_;
  bool ok_ = false;
  std::size_t partition_bits_ = 0;
  std::vector<Partition> parts_;
  RunFile order_log_;  // (fp u64, parent u64) per admitted state
  std::vector<std::uint64_t> cache_;
  std::size_t cache_tick_ = 0;
  std::size_t charged_ = 0;
  std::size_t pending_total_ = 0;
  std::size_t size_ = 0;
  std::size_t merge_passes_ = 0;
  // Resolve scratch, sized by the watermark and charged at construction.
  std::vector<std::uint64_t> batch_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint8_t> survivor_;
  std::vector<std::byte> rec_scratch_;
};

}  // namespace ccref::verify
