// Parallel explicit-state reachability engine — lock-free on every hot
// path.
//
// Same contract as verify::explore (checker.hpp), executed by a worker
// pool over a lock-free ShardedStateSet: each worker owns a Chase–Lev
// work-stealing deque (owner push/pop lock-free, steal by CAS) and
// steals from siblings when its own runs dry. Visited-set inserts are
// claim-by-CAS / publish-with-release (no shard mutexes), and under
// --compress the COLLAPSE dictionary hit path is a lock-free probe. For
// a run that completes with Status::Ok the reported state and transition
// counts are IDENTICAL to the sequential engine's — every reachable
// state is expanded exactly once, and the edge total is
// order-independent. What parallel exploration gives up is the
// breadth-first frontier: counterexample traces are valid paths but may
// be longer than the minimal ones the sequential BFS guarantees, and
// violations/deadlocks may be detected at a different (equally real)
// state. Memory exhaustion still yields Status::Unfinished against the
// same single budget, though the exact state count at exhaustion depends
// on scheduling.
//
// Under `--external` the visited set is per-shard delayed duplicate
// detection on disk (sharded_state_set.hpp): inserts answer Deferred,
// ripe merges run inline on whichever worker trips a shard's watermark
// (overlapping merges with exploration), and when the frontier goes
// quiescent with fingerprints still pending, one worker drains every
// shard under a mutex that also serializes worker exits — quiescence is
// only believed when in_flight == 0 AND nothing is pending, both
// observed under that lock.
//
// Termination detection (proof sketch in DESIGN.md §4.6): `in_flight`
// counts states inserted but not yet fully expanded. It is incremented
// BEFORE the item becomes stealable and decremented only AFTER its
// expansion pushed (and pre-counted) every fresh successor, so
// in_flight >= (queued items) + (items being expanded) at all times, and
// once it reads 0 no item exists anywhere and none can reappear — an
// idle worker that observes 0 can exit without a barrier. Idle workers
// spin with bounded exponential backoff (pause then yield); there is no
// sleep/poll loop, so quiescence is detected within a scheduling quantum.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "support/thread_pool.hpp"
#include "support/work_steal_deque.hpp"
#include "verify/checker.hpp"
#include "verify/sharded_state_set.hpp"

namespace ccref::verify {

namespace detail {

/// rebuild_trace over the sharded set: parents are packed Refs recorded at
/// insertion. Same concrete hash-first replay as the sequential
/// reconstruction (replay_chain re-concretizes orbit representatives when
/// symmetry reduction stored them).
template <class Sys>
std::vector<std::string> rebuild_trace_sharded(const Sys& sys,
                                               const ShardedStateSet& seen,
                                               ShardedStateSet::Ref target,
                                               SymmetryMode symmetry) {
  // Hash-compacted records keep no payload, but every record stores its
  // full 64-bit fingerprint: walk the parent chain collecting fingerprints
  // and re-concretize by fingerprint-matching real transitions from the
  // initial state (see append_step_label_fp for the exactness argument).
  // The external tier replays the same way, reading fingerprints and
  // parents back from the per-shard order logs.
  if (seen.hash_compact() || seen.external()) {
    std::vector<std::uint64_t> fps;
    for (std::uint64_t at = ShardedStateSet::pack(target);
         at != ShardedStateSet::kNoParent;) {
      auto r = ShardedStateSet::unpack(at);
      fps.push_back(seen.hash_of(r));
      at = seen.parent_of(r);
    }
    std::reverse(fps.begin(), fps.end());
    return replay_fp_chain(sys, fps, seen.fingerprint_fn(), symmetry);
  }
  // Copy each state's bytes: under Collapse, seen.at() re-expands into a
  // per-shard scratch buffer that the next at() on that shard overwrites.
  std::vector<std::vector<std::byte>> owned;
  for (std::uint64_t at = ShardedStateSet::pack(target);
       at != ShardedStateSet::kNoParent;) {
    auto r = ShardedStateSet::unpack(at);
    auto b = seen.at(r);
    owned.emplace_back(b.begin(), b.end());
    at = seen.parent_of(r);
  }
  std::reverse(owned.begin(), owned.end());
  std::vector<std::span<const std::byte>> chain(owned.begin(), owned.end());
  return replay_chain(sys, chain, symmetry);
}

}  // namespace detail

/// Parallel counterpart of verify::explore. `jobs` == 0 means one worker
/// per hardware thread; `shards` == 0 matches the shard count to the
/// worker count — shards are a striping detail of the lock-free table
/// (they spread resize epochs and allocation counters), not a lock
/// domain, so they no longer need to outnumber the workers 8:1. Agrees
/// with the sequential engine on status always, and on state/transition
/// counts whenever the status is Ok.
template <class Sys>
[[nodiscard]] CheckResult par_explore(const Sys& sys,
                                      const CheckOptions<Sys>& opts = {},
                                      unsigned jobs = 0, unsigned shards = 0) {
  auto t0 = std::chrono::steady_clock::now();
  if (jobs == 0) jobs = ThreadPool::default_concurrency();
  if (shards == 0) shards = jobs;

  CheckResult result;
  const sem::LabelMode mode =
      opts.edge_check ? sem::LabelMode::Full : sem::LabelMode::Quiet;

  const bool external = opts.external.enabled();
  auto add_note = [&](const char* text) {
    if (!result.note.empty()) result.note += "; ";
    result.note += text;
  };
  // Same downgrade rule as the sequential engine: invariants/edge checks
  // must see every reachable state and edge, which a reduced search does not
  // visit.
  PorMode por = opts.por;
  if (por == PorMode::Ample && (opts.invariant || opts.edge_check)) {
    por = PorMode::Off;
    add_note(
        "por downgraded to off: invariants/edge checks must see every "
        "reachable state and edge");
  }
  // Same external-tier composition rules as the sequential engine (see
  // checker.hpp): Deferred cannot serve as the C3 revisit signal, and
  // fingerprints-on-disk subsume hash compaction.
  if (por == PorMode::Ample && external) {
    por = PorMode::Off;
    add_note(
        "por downgraded to off: the external tier defers duplicate "
        "detection, so the ample cycle proviso cannot observe revisits");
  }
  if (external && opts.hash_compact)
    add_note(
        "hash-compact is subsumed by the external tier: it stores the "
        "same 64-bit fingerprints, on disk");
  if ((opts.hash_compact || external) &&
      opts.compress != CompressionMode::Off)
    add_note(
        "compress ignored under hash compaction: fingerprints leave no "
        "stored bytes to compress");
  // No fingerprint log here: every record stores its full 64-bit hash,
  // which under compaction IS the fingerprint trace replay matches on.
  // The external tier is the exception — its records live on disk, so
  // trace replay needs the order log (keep_fingerprints routes there).
  StorageOptions st{.compress = opts.compress,
                    .hash_compact = opts.hash_compact && !external,
                    .fingerprint = opts.fingerprint,
                    .keep_fingerprints = external && opts.want_trace,
                    .spill = opts.spill,
                    .external = opts.external,
                    .expected_states = opts.expected_states};
  ShardedStateSet seen(opts.memory_limit, shards,
                       /*track_parents=*/opts.want_trace, st);

  // A frontier item carries its own copy of the encoded state: under
  // Collapse, reading a state back out of the set is not concurrent-safe
  // (and in Off mode the copy costs less than the cache traffic of
  // re-reading a remote shard's pool).
  struct Item {
    ShardedStateSet::Ref ref;
    std::vector<std::byte> bytes;
  };
  struct Worker {
    WorkStealDeque<Item*> frontier;
    std::uint64_t transitions = 0;
    ComponentSink sink;  // reused for every encode this worker performs
  };
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(jobs);
  for (unsigned i = 0; i < jobs; ++i)
    workers.push_back(std::make_unique<Worker>());

  // Termination detector: see the header comment. `stop` short-circuits
  // on the first violation / deadlock / memory exhaustion. Under the
  // external tier, `drain_mu` serializes full drains AND worker exits:
  // pending counts only move during expansions (in_flight > 0) or under
  // this mutex, so a worker that observes in_flight == 0 and pending == 0
  // while holding it has witnessed true quiescence and may retire.
  std::atomic<std::size_t> in_flight{0};
  std::atomic<bool> stop{false};
  std::mutex drain_mu;
  std::mutex fail_mu;  // cold: taken once, by the first failure
  bool failed = false;
  Status fail_status = Status::Ok;
  ShardedStateSet::Ref fail_ref{};
  std::string fail_msg;

  auto report = [&](Status st, ShardedStateSet::Ref ref, std::string msg) {
    {
      std::lock_guard<std::mutex> lock(fail_mu);
      if (!failed) {
        failed = true;
        fail_status = st;
        fail_ref = ref;
        fail_msg = std::move(msg);
      }
    }
    stop.store(true, std::memory_order_release);
  };

  {
    ComponentSink sink;
    auto root = sys.initial();
    detail::maybe_canonicalize(sys, root, opts.symmetry);
    sys.encode(root, sink);
    auto ins = seen.insert(sink.bytes(), sink.marks());
    bool ok = ins.outcome != StateSet::Outcome::Exhausted;
    if (!ok) {
      report(Status::Unfinished, {}, std::string());
    } else if (external) {
      // The root defers like any other state; drain immediately so the
      // search starts from its admitted (shard, order-log index) Ref.
      CCREF_ASSERT(ins.outcome == StateSet::Outcome::Deferred);
      std::vector<ShardedStateSet::FreshState> fresh;
      if (seen.resolve_external(/*only_ripe=*/false, fresh) ==
          ResolveOutcome::Failed) {
        report(Status::Unfinished, {}, std::string());
        ok = false;
      } else {
        CCREF_ASSERT(fresh.size() == 1);
        ins.ref = fresh[0].ref;
      }
    } else {
      CCREF_ASSERT(ins.outcome == StateSet::Outcome::Inserted);
    }
    if (ok) {
      std::string msg = opts.invariant ? opts.invariant(root) : std::string();
      if (!msg.empty()) {
        report(Status::InvariantViolated, ins.ref, std::move(msg));
      } else {
        auto b = sink.bytes();
        in_flight.store(1, std::memory_order_relaxed);
        workers[0]->frontier.push(
            new Item{ins.ref, std::vector<std::byte>(b.begin(), b.end())});
      }
    }
  }

  auto worker_fn = [&](unsigned id) {
    Worker& self = *workers[id];
    SpinBackoff idle;
    // States admitted by external resolve passes (inline ripe merges in
    // insert, or full drains below) land here and become frontier items.
    std::vector<ShardedStateSet::FreshState> fresh;

    auto next_item = [&]() -> Item* {
      if (Item* it = self.frontier.pop()) return it;
      // Steal from the top of a sibling's deque (oldest work — under BFS
      // ordering the shallowest states, i.e. the biggest subtrees).
      for (unsigned k = 1; k < workers.size(); ++k)
        if (Item* it = workers[(id + k) % workers.size()]->frontier.steal())
          return it;
      return nullptr;
    };

    auto enqueue_fresh = [&]() {
      for (auto& f : fresh) {
        // Count BEFORE the item becomes stealable — the termination
        // detector's invariant depends on this order.
        in_flight.fetch_add(1, std::memory_order_release);
        self.frontier.push(new Item{f.ref, std::move(f.bytes)});
      }
      fresh.clear();
    };

    while (!stop.load(std::memory_order_acquire)) {
      std::unique_ptr<Item> item(next_item());
      if (!item) {
        if (in_flight.load(std::memory_order_acquire) == 0) {
          if (!external) return;
          // External tier: quiescent for now, but deferred fingerprints
          // may still hide fresh states. Exits and drains are serialized
          // by drain_mu (see its comment); a worker that loses the
          // try_lock race just spins and re-observes.
          if (drain_mu.try_lock()) {
            if (in_flight.load(std::memory_order_acquire) == 0) {
              if (seen.external_pending() == 0) {
                drain_mu.unlock();
                return;
              }
              fresh.clear();
              if (seen.resolve_external(/*only_ripe=*/false, fresh) ==
                  ResolveOutcome::Failed)
                report(Status::Unfinished, {}, std::string());
              enqueue_fresh();
            }
            drain_mu.unlock();
          }
        }
        idle.pause();
        continue;
      }
      idle.reset();
      ByteSource src(item->bytes);
      auto state = sys.decode(src);
      // External tier: inserts answer Deferred, so invariants cannot be
      // checked at insertion. Every admitted state is expanded exactly
      // once — check here instead (the root is also checked up front;
      // re-checking it is harmless).
      if (external && opts.invariant) {
        std::string msg = opts.invariant(state);
        if (!msg.empty()) {
          report(Status::InvariantViolated, item->ref, std::move(msg));
          return;
        }
      }

      bool revisit = false;  // some successor was already visited (C3)
      auto do_edge = [&](auto& succ, sem::Label& label) {
        ++self.transitions;
        if (opts.edge_check) {
          std::string msg = opts.edge_check(state, succ, label);
          if (!msg.empty()) {
            report(Status::InvariantViolated, item->ref,
                   "edge '" + label.text + "': " + msg);
            return false;
          }
        }
        detail::maybe_canonicalize(sys, succ, opts.symmetry);
        self.sink.clear();
        sys.encode(succ, self.sink);
        auto ins = seen.insert(self.sink.bytes(), self.sink.marks(),
                               ShardedStateSet::pack(item->ref),
                               external ? &fresh : nullptr);
        if (ins.outcome == StateSet::Outcome::Exhausted) {
          report(Status::Unfinished, {}, std::string());
          return false;
        }
        // Deferred is conservatively a revisit for C3 — moot here since
        // POR is downgraded under external, but kept for symmetry with
        // the sequential engine.
        if (ins.outcome == StateSet::Outcome::AlreadyPresent ||
            ins.outcome == StateSet::Outcome::Deferred)
          revisit = true;
        // A ripe inline merge inside insert() may have admitted a batch
        // of earlier-deferred states; they join this worker's frontier.
        if (!fresh.empty()) enqueue_fresh();
        if (ins.outcome == StateSet::Outcome::Inserted) {
          if (opts.invariant) {
            std::string msg = opts.invariant(succ);
            if (!msg.empty()) {
              report(Status::InvariantViolated, ins.ref, std::move(msg));
              return false;
            }
          }
          // Count BEFORE the item becomes stealable — the termination
          // detector's invariant depends on this order.
          in_flight.fetch_add(1, std::memory_order_release);
          auto b = self.sink.bytes();
          self.frontier.push(
              new Item{ins.ref, std::vector<std::byte>(b.begin(), b.end())});
        }
        return true;
      };

      if constexpr (detail::HasPor<Sys>) {
        if (por == PorMode::Ample) {
          auto ps = sys.successors_por(state, mode);
          if (ps.all.empty() && opts.detect_deadlock) {
            report(Status::Deadlock, item->ref,
                   "deadlock: no enabled transition in " +
                       sys.describe(state));
            return;
          }
          // Conservative C3 under parallelism: a racing insert of an ample
          // successor by another worker reads back AlreadyPresent here, so
          // races only cause extra full expansions, never a missed one.
          const auto* amp = detail::pick_ample(ps, /*visible=*/0);
          auto in_ample = [&](std::size_t e) {
            return amp && (e == amp->delivery ||
                           (e >= amp->local_begin && e < amp->local_end));
          };
          if (amp) {
            if (!do_edge(ps.all[amp->delivery].first,
                         ps.all[amp->delivery].second))
              return;
            for (std::size_t e = amp->local_begin; e < amp->local_end; ++e)
              if (!do_edge(ps.all[e].first, ps.all[e].second)) return;
          }
          if (!amp || revisit) {
            for (std::size_t e = 0; e < ps.all.size(); ++e) {
              if (in_ample(e)) continue;
              if (!do_edge(ps.all[e].first, ps.all[e].second)) return;
            }
          }
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
      }
      auto succs = detail::successors_of(sys, state, mode);
      if (succs.empty() && opts.detect_deadlock) {
        report(Status::Deadlock, item->ref,
               "deadlock: no enabled transition in " + sys.describe(state));
        return;
      }
      for (auto& [succ, label] : succs)
        if (!do_edge(succ, label)) return;
      in_flight.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  {
    ThreadPool pool(jobs);
    for (unsigned i = 0; i < jobs; ++i)
      pool.submit([&worker_fn, i] { worker_fn(i); });
    pool.wait_idle();
  }
  // Early-stop runs leave unexpanded items behind; workers are joined, so
  // draining via owner pops is safe from this thread.
  for (auto& w : workers)
    while (Item* leftover = w->frontier.pop()) delete leftover;

  result.status = failed ? fail_status : Status::Ok;
  result.states = seen.size();
  result.memory_bytes = seen.memory_used();
  result.pool_bytes = seen.stored_bytes();
  result.raw_pool_bytes = seen.raw_bytes();
  result.spill_bytes = seen.spill_bytes();
  result.waste_bytes = seen.waste_bytes();
  if (seen.external()) {
    result.external_bytes = seen.external_bytes();
    result.merge_passes = seen.merge_passes();
  }
  if (opts.hash_compact || seen.external())
    result.omission_probability = omission_bound(seen.size());
  for (const auto& w : workers) result.transitions += w->transitions;
  if (failed) {
    result.violation = std::move(fail_msg);
    if (opts.want_trace && fail_status != Status::Unfinished)
      result.trace =
          detail::rebuild_trace_sharded(sys, seen, fail_ref, opts.symmetry);
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace ccref::verify
