// The snooping bus family: MESI, MOESI, MESIF and Dragon, written in the
// DSL under `topology bus` (ROADMAP: the biggest scenario-diversity unlock).
//
// All four share one shape. Stable cache states are passive communication
// states mixing `bcast?` snoop guards with CPU-decision taus; a miss or
// upgrade walks through an *active* state that broadcasts on the bus
// (`bcast!BusRd` / `bcast!BusRdX` / ...), and the home — playing bus arbiter
// plus grant oracle — answers with a point-to-point grant chosen from its
// copyset/owner bookkeeping (GrE when the line is unshared, GrS/GrF
// otherwise). Dirty evictions broadcast `BusWB`; because active states under
// `topology bus` may still snoop, a cache waiting to write back observes a
// racing BusRdX and cancels (the classic writeback race, resolved the way
// hardware resolves it). Clean evictions notify the home point-to-point
// (`Evict`) so the copyset stays a sound grant oracle.
//
// Protocol deltas:
//   MESI   — Illinois: E upgrades to M silently; BusRd demotes M/E to S.
//   MOESI  — M snooping BusRd becomes O (owner keeps supplying data; no
//            memory writeback on the read).
//   MESIF  — grants GrF instead of GrS: the newest sharer holds F and is the
//            designated responder; the old F demotes to S on the same
//            broadcast, so F stays unique.
//   Dragon — update-based: no invalidation. Sc/Sm writers broadcast BusUpd
//            and learn from the home's UpdS/UpdX reply whether other copies
//            remain (Sm) or the line is now exclusive (M).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/process.hpp"
#include "runtime/async_state.hpp"
#include "sem/rendezvous.hpp"

namespace ccref::protocols {

[[nodiscard]] ir::Protocol make_mesi();
[[nodiscard]] ir::Protocol make_moesi();
[[nodiscard]] ir::Protocol make_mesif();
[[nodiscard]] ir::Protocol make_dragon();

/// All four snooping protocols, for sweeps: (name, protocol) pairs in the
/// order MESI, MOESI, MESIF, Dragon.
[[nodiscard]] std::vector<std::pair<std::string, ir::Protocol>>
make_snoop_family();

/// Coherence invariant at the rendezvous level, shared across the family
/// (each clause applies when the named states exist in the protocol):
///   - single writer: at most one cache in a dirty-owner state (M/O/Sm);
///   - exclusivity: a cache in M or E implies no other cache holds any
///     valid stable copy (S/E/M/O/F/Sc/Sm);
///   - Forward uniqueness (MESIF): at most one cache in F;
///   - owner tracking: when the home's `o` names a cache, that cache is in
///     M, O or WbA (mid-writeback).
[[nodiscard]] std::function<std::string(const sem::RvState&)>
snoop_invariant(const ir::Protocol& protocol, int num_remotes);

/// The same state-count clauses on asynchronous (refined) states. The home
/// `o` clause is skipped: between the home committing a grant and the
/// requester consuming it, `o` legitimately names a cache still in its wait
/// state.
[[nodiscard]] std::function<std::string(const runtime::AsyncState&)>
snoop_async_invariant(const ir::Protocol& protocol, int num_remotes);

}  // namespace ccref::protocols
