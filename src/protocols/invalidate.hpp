// The invalidate protocol — the second Avalanche DSM protocol the paper
// verifies in Table 3.
//
// The paper does not reprint its figures, so this is a reconstruction of the
// standard directory invalidate (MSI) protocol in the paper's rendezvous
// style: the home tracks a copyset `cs` of sharers and an exclusive owner
// `o`; read requests are granted shared copies; a write request triggers a
// rendezvous invalidation sweep over the copyset (each `inv` rendezvous *is*
// the invalidation acknowledgement) or a revocation (`rvk`/`WB`) of the
// exclusive owner. Sharers may silently decide to evict, which they must
// report with `drop`; the exclusive owner writes back with `WB`.
#pragma once

#include <functional>
#include <string>

#include "ir/process.hpp"
#include "runtime/async_state.hpp"
#include "sem/rendezvous.hpp"

namespace ccref::protocols {

struct InvalidateOptions {
  /// Abstract data domain (see MigratoryOptions::data_domain).
  std::uint32_t data_domain = 1;
};

[[nodiscard]] ir::Protocol make_invalidate(const InvalidateOptions& opts = {});

/// Safety invariant at the rendezvous level:
///   - at most one remote is in M / WBACK (dirty states);
///   - a dirty remote implies the home records exclusivity and that owner;
///   - exclusivity implies an empty copyset;
///   - a remote in S is recorded in the copyset.
[[nodiscard]] std::function<std::string(const sem::RvState&)>
invalidate_invariant(const ir::Protocol& protocol, int num_remotes);

/// Exclusivity stated directly on asynchronous states: at most one dirty
/// remote (M / WBACK), and no shared copies coexist with a dirty one.
[[nodiscard]] std::function<std::string(const runtime::AsyncState&)>
invalidate_async_invariant(const ir::Protocol& protocol, int num_remotes);

}  // namespace ccref::protocols
