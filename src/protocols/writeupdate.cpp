#include "protocols/writeupdate.hpp"

#include "ir/builder.hpp"
#include "support/strings.hpp"

namespace ccref::protocols {

using namespace ir;  // NOLINT — protocol definitions read like the figures
using ex::add;
using ex::lit;
using ex::set_empty;
using ex::var;

Protocol make_write_update(const WriteUpdateOptions& opts) {
  CCREF_REQUIRE(opts.data_domain >= 2);
  ProtocolBuilder b("writeupdate");

  MsgId REQS = b.msg("reqS");             // join the sharers
  MsgId GRS = b.msg("grS", {Type::Int});  // shared grant with current value
  MsgId WR = b.msg("wr", {Type::Int});    // write-through of a new value
  MsgId UPD = b.msg("upd", {Type::Int});  // push the new value to a sharer
  MsgId DROP = b.msg("drop");             // sharer leaves the copyset

  // ---- home node ----
  auto& h = b.home();
  VarId cs = h.var("cs", Type::NodeSet);   // sharers
  VarId rem = h.var("rem", Type::NodeSet); // sweep worklist
  VarId j = h.var("j", Type::Node, kNoNode);        // requester / writer
  VarId t = h.var("t", Type::Node, kNoNode);        // sweep target
  VarId mem = h.var("mem", Type::Int, 0, opts.data_domain);

  h.comm("H").initial();
  h.comm("GS");
  h.comm("UPD");

  h.input("H", REQS).from_any(j).go("GS");
  h.input("H", WR)
      .from_any(j)
      .bind({mem})
      .act(st::seq({st::assign(rem, var(cs)), st::set_remove(rem, var(j)),
                    st::assign(j, ex::no_node())}))
      .go("UPD")
      .label("write-through; push to the other sharers");
  h.input("H", DROP)
      .from_any(t)
      .act(st::seq({st::set_remove(cs, var(t)), st::assign(t, ex::no_node())}))
      .go("H");

  h.output("GS", GRS)
      .to(var(j))
      .pay({var(mem)})
      .act(st::seq({st::set_add(cs, var(j)), st::assign(j, ex::no_node())}))
      .go("H");

  // Update sweep: push the new value to every remaining sharer; concurrent
  // drops must be accepted or the sweep deadlocks against an evicting
  // sharer (the same argument as the invalidate protocol's INV state).
  h.output("UPD", UPD)
      .to_any_in(var(rem), t)
      .pay({var(mem)})
      .act(st::seq({st::set_remove(rem, var(t)), st::assign(t, ex::no_node())}))
      .go("UPD");
  h.input("UPD", DROP)
      .from_any(t)
      .act(st::seq({st::set_remove(cs, var(t)), st::set_remove(rem, var(t)),
                    st::assign(t, ex::no_node())}))
      .go("UPD");
  // A second writer racing the sweep would deadlock it (it sits in AW
  // offering only wr, while the sweep offers it only upd). Absorb the write
  // and restart the sweep with the newer value.
  h.input("UPD", WR)
      .from_any(j)
      .bind({mem})
      .act(st::seq({st::assign(rem, var(cs)), st::set_remove(rem, var(j)),
                    st::assign(j, ex::no_node())}))
      .go("UPD")
      .label("write raced the sweep; restart");
  h.tau("UPD", "swept").when(set_empty(var(rem))).go("H");

  // ---- remote node ----
  auto& r = b.remote();
  VarId d = r.var("d", Type::Int, 0, opts.data_domain);

  r.internal("I");
  r.comm("AR");   // active: join
  r.comm("WS");   // waiting for the shared grant
  r.comm("S");    // sharing; reads hit locally, updates arrive via upd
  r.comm("AW");   // active: publishing a write
  r.comm("ADROP");

  r.tau("I", "read").go("AR");
  r.output("AR", REQS).go("WS");
  r.input("WS", GRS).bind({d}).go("S");

  r.input("S", UPD).bind({d}).go("S").label("another sharer wrote");
  r.tau("S", "write").act(st::assign(d, add(var(d), lit(1)))).go("AW");
  r.tau("S", "evict").go("ADROP");
  r.output("AW", WR).pay({var(d)}).go("S");
  r.output("ADROP", DROP).go("I");

  return b.build();
}

std::function<std::string(const sem::RvState&)> write_update_invariant(
    const ir::Protocol& protocol, int num_remotes) {
  const StateId rS = protocol.remote.find_state("S");
  const StateId hH = protocol.home.find_state("H");
  const VarId cs = protocol.home.find_var("cs");
  const VarId mem = protocol.home.find_var("mem");
  const VarId d = protocol.remote.find_var("d");
  CCREF_REQUIRE(rS != kNoState && hH != kNoState && cs != kNoVar &&
                mem != kNoVar && d != kNoVar);

  return [=](const sem::RvState& s) -> std::string {
    const NodeSet copyset(s.home.store.get(cs));
    for (int i = 0; i < num_remotes; ++i) {
      if (s.remotes[i].state != rS) continue;
      if (!copyset.contains(static_cast<NodeId>(i)))
        return strf("r%d shares but is missing from the copyset", i);
      if (s.home.state == hH &&
          s.remotes[i].store.get(d) != s.home.store.get(mem))
        return strf("home idle but r%d caches %llu while memory holds %llu",
                    i,
                    static_cast<unsigned long long>(s.remotes[i].store.get(d)),
                    static_cast<unsigned long long>(s.home.store.get(mem)));
    }
    return "";
  };
}

}  // namespace ccref::protocols
