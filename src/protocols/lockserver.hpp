// A centralized lock server in the paper's star-protocol fragment.
//
// Not a cache protocol — included to exercise the claim that the refinement
// applies to "large classes of DSM protocols" (§1): any client/server
// synchronization written as rendezvous over a star refines the same way.
//
// Clients acquire (`acq`) and release (`rel`) a single lock; the server
// grants (`grant`) immediately when free, otherwise parks the requester in a
// waiting set and grants to an arbitrary waiter on release. acq/grant fuse
// under §3.3 (the client always awaits the grant); rel follows the generic
// request/ack scheme.
#pragma once

#include <functional>
#include <string>

#include "ir/process.hpp"
#include "runtime/async_state.hpp"
#include "sem/rendezvous.hpp"

namespace ccref::protocols {

[[nodiscard]] ir::Protocol make_lock_server();

/// Mutual exclusion: at most one client holds the lock (CS or RL states),
/// and the server's `held` flag tracks it.
[[nodiscard]] std::function<std::string(const sem::RvState&)>
lock_server_invariant(const ir::Protocol& protocol, int num_remotes);

/// Mutual exclusion stated directly on asynchronous states.
[[nodiscard]] std::function<std::string(const runtime::AsyncState&)>
lock_server_async_invariant(const ir::Protocol& protocol, int num_remotes);

}  // namespace ccref::protocols
