#include "protocols/lockserver.hpp"

#include "ir/builder.hpp"
#include "support/strings.hpp"

namespace ccref::protocols {

using namespace ir;  // NOLINT — protocol definitions read like the figures
using ex::boolean;
using ex::negate;
using ex::set_empty;
using ex::var;

Protocol make_lock_server() {
  ProtocolBuilder b("lockserver");

  MsgId ACQ = b.msg("acq");
  MsgId GRANT = b.msg("grant");
  MsgId REL = b.msg("rel");

  // ---- server (home) ----
  auto& h = b.home();
  VarId w = h.var("w", Type::NodeSet);  // parked waiters
  VarId o = h.var("o", Type::Node, kNoNode);     // current holder
  VarId j = h.var("j", Type::Node, kNoNode);     // fresh requester
  VarId t = h.var("t", Type::Node, kNoNode);     // waiter being granted
  VarId held = h.var("held", Type::Bool);

  h.comm("L").initial();
  h.comm("G");  // immediate grant to j

  h.input("L", ACQ)
      .from_any(j)
      .when(negate(var(held)))
      .go("G")
      .label("lock free: grant now");
  h.input("L", ACQ)
      .from_any(j)
      .when(var(held))
      .act(st::seq({st::set_add(w, var(j)), st::assign(j, ex::no_node())}))
      .go("L")
      .label("lock busy: park");
  h.input("L", REL)
      .from(var(o))
      .when(var(held))
      .act(st::seq({st::assign(held, boolean(false)),
                    st::assign(o, ex::no_node())}))
      .go("L");
  // Hand the lock to an arbitrary parked waiter once it is free.
  h.output("L", GRANT)
      .when(ex::land(negate(var(held)), negate(set_empty(var(w)))))
      .to_any_in(var(w), t)
      .act(st::seq({st::set_remove(w, var(t)), st::assign(o, var(t)),
                    st::assign(held, boolean(true)),
                    st::assign(t, ex::no_node())}))
      .go("L");
  h.output("G", GRANT)
      .to(var(j))
      .act(st::seq({st::assign(o, var(j)), st::assign(held, boolean(true)),
                    st::assign(j, ex::no_node())}))
      .go("L");

  // ---- client (remote) ----
  auto& r = b.remote();
  r.comm("I");   // active: request the lock when the thread wants it
  r.comm("WL");  // waiting for the grant
  r.comm("CS");  // inside the critical section
  r.comm("RL");  // active: releasing

  r.output("I", ACQ).go("WL").label("want");
  r.input("WL", GRANT).go("CS");
  r.tau("CS", "unlock").go("RL");
  r.output("RL", REL).go("I");

  return b.build();
}

std::function<std::string(const sem::RvState&)> lock_server_invariant(
    const ir::Protocol& protocol, int num_remotes) {
  const StateId rCS = protocol.remote.find_state("CS");
  const StateId rRL = protocol.remote.find_state("RL");
  const VarId held = protocol.home.find_var("held");
  const VarId o = protocol.home.find_var("o");
  CCREF_REQUIRE(rCS != kNoState && rRL != kNoState && held != kNoVar &&
                o != kNoVar);

  return [=](const sem::RvState& s) -> std::string {
    int holders = 0;
    int holder = -1;
    for (int i = 0; i < num_remotes; ++i) {
      StateId rs = s.remotes[i].state;
      if (rs == rCS || rs == rRL) {
        ++holders;
        holder = i;
      }
    }
    if (holders > 1)
      return strf("%d clients inside the critical section", holders);
    const bool is_held = s.home.store.get(held) != 0;
    if (holders == 1 && !is_held)
      return strf("r%d holds the lock but the server thinks it is free",
                  holder);
    if (holders == 1 && static_cast<int>(s.home.store.get(o)) != holder)
      return strf("server records holder r%llu but r%d is in the CS",
                  static_cast<unsigned long long>(s.home.store.get(o)),
                  holder);
    return "";
  };
}

std::function<std::string(const runtime::AsyncState&)>
lock_server_async_invariant(const ir::Protocol& protocol, int num_remotes) {
  const StateId rCS = protocol.remote.find_state("CS");
  const StateId rRL = protocol.remote.find_state("RL");
  CCREF_REQUIRE(rCS != kNoState && rRL != kNoState);

  return [=](const runtime::AsyncState& s) -> std::string {
    int holders = 0;
    for (int i = 0; i < num_remotes; ++i) {
      StateId rs = s.remotes[i].state;
      if (rs == rCS) {
        ++holders;
        continue;
      }
      // A releasing client stops holding once the server committed the rel
      // rendezvous (ack already in flight back).
      if (rs == rRL) {
        bool committed = false;
        if (s.remotes[i].transient)
          for (const auto& m : s.down[i].q)
            if (m.meta == runtime::Meta::Ack ||
                m.meta == runtime::Meta::Repl)
              committed = true;
        if (!committed) ++holders;
      }
    }
    if (holders > 1)
      return strf("%d clients inside the critical section", holders);
    return "";
  };
}

}  // namespace ccref::protocols
