#include "protocols/migratory.hpp"

#include "ir/builder.hpp"
#include "support/strings.hpp"

namespace ccref::protocols {

using namespace ir;  // NOLINT — protocol definitions read like the figures
using ex::add;
using ex::lit;
using ex::var;

Protocol make_migratory(const MigratoryOptions& opts) {
  CCREF_REQUIRE(opts.data_domain >= 1);
  ProtocolBuilder b("migratory");

  MsgId REQ = b.msg("req");
  MsgId GR = b.msg("gr", {Type::Int});
  MsgId LR = b.msg("LR", {Type::Int});
  MsgId INV = b.msg("inv");
  MsgId ID = b.msg("ID", {Type::Int});

  // ---- home node (Fig. 2) ----
  auto& h = b.home();
  VarId o = h.var("o", Type::Node, kNoNode);    // current owner
  VarId j = h.var("j", Type::Node, kNoNode);    // pending requester
  VarId mem = h.var("mem", Type::Int, 0, opts.data_domain);

  h.comm("F").initial();
  h.comm("GRANT");
  h.comm("E");
  h.comm("I1");
  h.comm("I2");
  h.comm("I3");

  // Dead binders are reset to the null node as soon as their rendezvous no
  // longer needs them; this canonicalizes states that differ only in stale
  // values and keeps the rendezvous state space small (the property behind
  // the paper's "model checked for up to 64 nodes in 32 MB"). The reset
  // value must be `no_node()` — a literal id like node(0) would pin remote 0
  // and break the permutation symmetry the orbit quotient relies on.
  h.input("F", REQ).from_any(j).go("GRANT").label("first requester");
  h.output("GRANT", GR)
      .to(var(j))
      .pay({var(mem)})
      .act(st::seq({st::assign(o, var(j)), st::assign(j, ex::no_node())}))
      .go("E");
  h.input("E", LR)
      .from(var(o))
      .bind({mem})
      .act(st::assign(o, ex::no_node()))
      .go("F")
      .label("owner gives up");
  h.input("E", REQ).from_any(j).go("I1").label("new requester; revoke");
  h.output("I1", INV).to(var(o)).go("I2");
  h.input("I1", LR)
      .from(var(o))
      .bind({mem})
      .act(st::assign(o, ex::no_node()))
      .go("I3")
      .label("evict raced inv");
  h.input("I2", ID)
      .from(var(o))
      .bind({mem})
      .act(st::assign(o, ex::no_node()))
      .go("I3");
  h.output("I3", GR)
      .to(var(j))
      .pay({var(mem)})
      .act(st::seq({st::assign(o, var(j)), st::assign(j, ex::no_node())}))
      .go("E");

  // ---- remote node (Fig. 3) ----
  auto& r = b.remote();
  VarId d = r.var("d", Type::Int, 0, opts.data_domain);

  // Fig. 3 labels the edge leaving I with the CPU decision `rw`; the
  // decision is the nondeterministic firing of the req rendezvous itself, so
  // I is an *active* communication state. (Modelling `rw` as a τ into a
  // separate wants-the-line state would give every remote an independent
  // mode bit and an exponential rendezvous state space.)
  r.comm("I");   // invalid; active: ask for the line when the CPU needs it
  r.comm("W");   // waiting for the grant
  r.comm("V");   // valid: CPU reads/writes the local copy
  r.comm("D1");  // active: answering an invalidation
  r.comm("A2");  // active: relinquishing after eviction

  r.output("I", REQ).go("W").label("rw");
  r.input("W", GR).bind({d}).go("V");
  r.input("V", INV).go("D1");
  r.tau("V", "evict").go("A2");
  if (opts.data_domain > 1)
    r.tau("V", "write").act(st::assign(d, add(var(d), lit(1)))).go("V");
  r.output("D1", ID).pay({var(d)}).go("I");
  r.output("A2", LR).pay({var(d)}).go("I");

  return b.build();
}

std::function<std::string(const sem::RvState&)> migratory_invariant(
    const ir::Protocol& protocol, int num_remotes) {
  const StateId rV = protocol.remote.find_state("V");
  const StateId rD1 = protocol.remote.find_state("D1");
  const StateId rA2 = protocol.remote.find_state("A2");
  const StateId hF = protocol.home.find_state("F");
  const StateId hE = protocol.home.find_state("E");
  const VarId o = protocol.home.find_var("o");
  CCREF_REQUIRE(rV != kNoState && rD1 != kNoState && rA2 != kNoState &&
                hF != kNoState && hE != kNoState && o != kNoVar);

  return [=](const sem::RvState& s) -> std::string {
    int holders = 0;
    int holder = -1;
    for (int i = 0; i < num_remotes; ++i) {
      StateId rs = s.remotes[i].state;
      if (rs == rV || rs == rD1 || rs == rA2) {
        ++holders;
        holder = i;
      }
    }
    if (holders > 1)
      return strf("%d remotes hold the line simultaneously", holders);
    if (s.home.state == hF && holders != 0)
      return strf("home is free but r%d holds the line", holder);
    if (s.home.state == hE && holders == 1 &&
        static_cast<int>(s.home.store.get(o)) != holder)
      return strf("home records owner r%llu but r%d holds the line",
                  static_cast<unsigned long long>(s.home.store.get(o)),
                  holder);
    return "";
  };
}


std::function<std::string(const runtime::AsyncState&)>
migratory_async_invariant(const ir::Protocol& protocol, int num_remotes) {
  const StateId rV = protocol.remote.find_state("V");
  const StateId rD1 = protocol.remote.find_state("D1");
  const StateId rA2 = protocol.remote.find_state("A2");
  CCREF_REQUIRE(rV != kNoState && rD1 != kNoState && rA2 != kNoState);

  return [=](const runtime::AsyncState& s) -> std::string {
    int holders = 0;
    for (int i = 0; i < num_remotes; ++i) {
      StateId rs = s.remotes[i].state;
      if (rs == rV) {
        ++holders;
        continue;
      }
      // A remote relinquishing the line (answering an invalidation from D1
      // or evicting from A2) stops holding it once the home has committed
      // the ID/LR rendezvous — i.e. once an ack/reply is already in flight
      // back to it. (A nack means the handshake failed: still a holder.)
      if (rs == rA2 || rs == rD1) {
        bool committed = false;
        if (s.remotes[i].transient)
          for (const auto& m : s.down[i].q)
            if (m.meta == runtime::Meta::Ack ||
                m.meta == runtime::Meta::Repl)
              committed = true;
        if (!committed) ++holders;
      }
    }
    if (holders > 1)
      return strf("%d remotes hold the line simultaneously", holders);
    return "";
  };
}

}  // namespace ccref::protocols
