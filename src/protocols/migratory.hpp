// The migratory protocol of the Avalanche DSM machine, exactly as specified
// by the paper's Figures 2 and 3 (§5 "Example Protocol").
//
// One cache line migrates between remotes; the home node tracks the single
// owner `o`. A remote requests the line (`req`), the home grants it (`gr`,
// carrying data), possibly after revoking it from the current owner with
// `inv` (answered by `ID`, "invalidate done") or after the owner voluntarily
// relinquishes it (`LR`, "line relinquish").
//
// Home (Fig. 2):  F --r(i)?req--> . --r(i)!gr--> E
//                 E --r(o)?LR--> F
//                 E --r(j)?req--> I1 --r(o)!inv--> I2 --r(o)?ID--> I3
//                 I1 --r(o)?LR--> I3,   I3 --r(j)!gr--> E
// Remote (Fig.3): I --rw--> . --h!req--> . --h?gr--> V
//                 V --evict--> . --h!LR--> I
//                 V --h?inv--> . --h!ID--> I
#pragma once

#include <functional>
#include <string>

#include "ir/process.hpp"
#include "runtime/async_state.hpp"
#include "sem/rendezvous.hpp"

namespace ccref::protocols {

struct MigratoryOptions {
  /// Size of the abstract data domain carried by gr/LR/ID. 1 abstracts data
  /// away entirely (the configuration used for the Table 3 state counts);
  /// >1 adds a `write` τ on the valid state so data actually propagates and
  /// the coherence-of-values invariants become meaningful.
  std::uint32_t data_domain = 1;
};

[[nodiscard]] ir::Protocol make_migratory(const MigratoryOptions& opts = {});

/// Safety invariant at the rendezvous level:
///   - at most one remote holds the line (states V / D1 / A2);
///   - home in F implies nobody holds it;
///   - home in E implies the holder (if any) is the recorded owner `o`.
/// Returns "" for healthy states, a diagnostic otherwise.
[[nodiscard]] std::function<std::string(const sem::RvState&)>
migratory_invariant(const ir::Protocol& protocol, int num_remotes);

/// The same exclusivity property stated directly on asynchronous states
/// (usable for elide-ack variants where the §4 abstraction is undefined):
/// at most one remote holds the line (V / D1 / A2).
[[nodiscard]] std::function<std::string(const runtime::AsyncState&)>
migratory_async_invariant(const ir::Protocol& protocol, int num_remotes);

}  // namespace ccref::protocols
