#include "protocols/invalidate.hpp"

#include "ir/builder.hpp"
#include "support/strings.hpp"

namespace ccref::protocols {

using namespace ir;  // NOLINT — protocol definitions read like the figures
using ex::add;
using ex::lit;
using ex::negate;
using ex::set_empty;
using ex::var;

Protocol make_invalidate(const InvalidateOptions& opts) {
  CCREF_REQUIRE(opts.data_domain >= 1);
  ProtocolBuilder b("invalidate");

  MsgId REQS = b.msg("reqS");               // read miss
  MsgId REQX = b.msg("reqX");               // write miss / upgrade
  MsgId GRS = b.msg("grS", {Type::Int});    // shared grant
  MsgId GRX = b.msg("grX", {Type::Int});    // exclusive grant
  MsgId INV = b.msg("inv");                 // invalidate a sharer
  MsgId RVK = b.msg("rvk");                 // revoke the exclusive owner
  MsgId WB = b.msg("WB", {Type::Int});      // writeback (dirty data)
  MsgId DROP = b.msg("drop");               // sharer evicted its clean copy

  // ---- home node ----
  auto& h = b.home();
  VarId cs = h.var("cs", Type::NodeSet);  // sharers
  VarId o = h.var("o", Type::Node, kNoNode);       // exclusive owner (when excl)
  VarId j = h.var("j", Type::Node, kNoNode);       // pending requester
  VarId t = h.var("t", Type::Node, kNoNode);       // invalidation target
  VarId excl = h.var("excl", Type::Bool);
  VarId mem = h.var("mem", Type::Int, 0, opts.data_domain);

  h.comm("H").initial();
  h.comm("GS");    // grant shared to j
  h.comm("GX");    // grant exclusive to j
  h.comm("INV");   // sweep the copyset before an exclusive grant
  h.comm("RX1");   // revoke owner, then grant shared
  h.comm("RX1W");
  h.comm("RX2");   // revoke owner, then grant exclusive
  h.comm("RX2W");

  h.input("H", REQS).from_any(j).when(negate(var(excl))).go("GS");
  h.input("H", REQS).from_any(j).when(var(excl)).go("RX1");
  h.input("H", REQX)
      .from_any(j)
      .when(negate(var(excl)))
      .act(st::set_remove(cs, var(j)))  // an upgrading sharer leaves cs
      .go("INV");
  h.input("H", REQX).from_any(j).when(var(excl)).go("RX2");
  // Dead binders (t, j, o) are reset to the null node once no longer needed so the
  // rendezvous state space stays canonical (states differing only in stale
  // binder values collapse).
  h.input("H", WB)
      .from(var(o))
      .when(var(excl))
      .bind({mem})
      .act(st::seq({st::assign(excl, ex::boolean(false)),
                    st::assign(o, ex::no_node())}))
      .go("H")
      .label("voluntary writeback");
  h.input("H", DROP)
      .from_any(t)
      .act(st::seq({st::set_remove(cs, var(t)), st::assign(t, ex::no_node())}))
      .go("H");

  h.output("GS", GRS)
      .to(var(j))
      .pay({var(mem)})
      .act(st::seq({st::set_add(cs, var(j)), st::assign(j, ex::no_node())}))
      .go("H");

  // Invalidation sweep: each inv rendezvous is itself the acknowledgement;
  // concurrent sharer drops are also accepted so the sweep cannot deadlock.
  h.output("INV", INV)
      .to_any_in(var(cs), t)
      .act(st::seq({st::set_remove(cs, var(t)), st::assign(t, ex::no_node())}))
      .go("INV");
  h.input("INV", DROP)
      .from_any(t)
      .act(st::seq({st::set_remove(cs, var(t)), st::assign(t, ex::no_node())}))
      .go("INV");
  h.tau("INV", "swept").when(set_empty(var(cs))).go("GX");

  h.output("GX", GRX)
      .to(var(j))
      .pay({var(mem)})
      .act(st::seq({st::assign(excl, ex::boolean(true)),
                    st::assign(o, var(j)), st::assign(j, ex::no_node())}))
      .go("H");

  h.output("RX1", RVK).to(var(o)).go("RX1W");
  h.input("RX1", WB)
      .from(var(o))
      .bind({mem})
      .act(st::seq({st::assign(excl, ex::boolean(false)),
                    st::assign(o, ex::no_node())}))
      .go("GS")
      .label("evict raced revoke");
  h.input("RX1W", WB)
      .from(var(o))
      .bind({mem})
      .act(st::seq({st::assign(excl, ex::boolean(false)),
                    st::assign(o, ex::no_node())}))
      .go("GS");

  h.output("RX2", RVK).to(var(o)).go("RX2W");
  h.input("RX2", WB)
      .from(var(o))
      .bind({mem})
      .act(st::seq({st::assign(excl, ex::boolean(false)),
                    st::assign(o, ex::no_node())}))
      .go("INV")
      .label("evict raced revoke");
  h.input("RX2W", WB)
      .from(var(o))
      .bind({mem})
      .act(st::seq({st::assign(excl, ex::boolean(false)),
                    st::assign(o, ex::no_node())}))
      .go("INV");

  // ---- remote node ----
  auto& r = b.remote();
  VarId d = r.var("d", Type::Int, 0, opts.data_domain);

  r.internal("I");
  r.comm("AR");     // active: read request
  r.comm("WS");     // waiting for shared grant
  r.comm("AW");     // active: write request
  r.comm("WX");     // waiting for exclusive grant
  r.comm("S");      // shared (clean) copy
  r.comm("M");      // modified (dirty) copy
  r.comm("WBACK");  // active: writing back dirty data
  r.comm("ADROP");  // active: reporting a clean eviction

  r.tau("I", "read").go("AR");
  r.tau("I", "write").go("AW");
  r.output("AR", REQS).go("WS");
  r.input("WS", GRS).bind({d}).go("S");
  r.output("AW", REQX).go("WX");
  r.input("WX", GRX).bind({d}).go("M");

  // Note: there is deliberately no direct S -> AW upgrade. An upgrading
  // sharer would sit in the copyset offering only reqX, while the home's INV
  // sweep offers only inv/drop to copyset members — a rendezvous deadlock.
  // Sharers instead evict (drop) and re-request from I, a standard
  // simplification for directory protocols specified atomically.
  r.input("S", INV).go("I");
  r.tau("S", "evict").go("ADROP");
  r.output("ADROP", DROP).go("I");

  r.input("M", RVK).go("WBACK");
  r.tau("M", "evict").go("WBACK");
  if (opts.data_domain > 1)
    r.tau("M", "write").act(st::assign(d, add(var(d), lit(1)))).go("M");
  r.output("WBACK", WB).pay({var(d)}).go("I");

  return b.build();
}

std::function<std::string(const sem::RvState&)> invalidate_invariant(
    const ir::Protocol& protocol, int num_remotes) {
  const StateId rS = protocol.remote.find_state("S");
  const StateId rM = protocol.remote.find_state("M");
  const StateId rWB = protocol.remote.find_state("WBACK");
  const VarId cs = protocol.home.find_var("cs");
  const VarId o = protocol.home.find_var("o");
  const VarId excl = protocol.home.find_var("excl");
  CCREF_REQUIRE(rS != kNoState && rM != kNoState && rWB != kNoState &&
                cs != kNoVar && o != kNoVar && excl != kNoVar);

  return [=](const sem::RvState& s) -> std::string {
    int dirty = 0;
    int dirty_holder = -1;
    for (int i = 0; i < num_remotes; ++i) {
      StateId rs = s.remotes[i].state;
      if (rs == rM || rs == rWB) {
        ++dirty;
        dirty_holder = i;
      }
    }
    const bool is_excl = s.home.store.get(excl) != 0;
    const NodeSet copyset(s.home.store.get(cs));
    if (dirty > 1) return strf("%d remotes are dirty simultaneously", dirty);
    if (dirty == 1 && !is_excl)
      return strf("r%d is dirty but home is not exclusive", dirty_holder);
    if (dirty == 1 &&
        static_cast<int>(s.home.store.get(o)) != dirty_holder)
      return strf("home records owner r%llu but r%d is dirty",
                  static_cast<unsigned long long>(s.home.store.get(o)),
                  dirty_holder);
    if (is_excl && !copyset.empty())
      return "home is exclusive but the copyset is non-empty";
    for (int i = 0; i < num_remotes; ++i) {
      if (s.remotes[i].state == rS &&
          !copyset.contains(static_cast<NodeId>(i)))
        return strf("r%d has a shared copy but is missing from the copyset",
                    i);
      if (s.remotes[i].state == rM &&
          copyset.contains(static_cast<NodeId>(i)))
        return strf("r%d is dirty yet still in the copyset", i);
    }
    return "";
  };
}


std::function<std::string(const runtime::AsyncState&)>
invalidate_async_invariant(const ir::Protocol& protocol, int num_remotes) {
  const StateId rS = protocol.remote.find_state("S");
  const StateId rM = protocol.remote.find_state("M");
  const StateId rWB = protocol.remote.find_state("WBACK");
  CCREF_REQUIRE(rS != kNoState && rM != kNoState && rWB != kNoState);

  return [=](const runtime::AsyncState& s) -> std::string {
    int dirty = 0, shared = 0;
    for (int i = 0; i < num_remotes; ++i) {
      StateId rs = s.remotes[i].state;
      if (rs == rM) {
        ++dirty;
      } else if (rs == rWB) {
        // A writing-back remote stops being dirty once the home committed
        // the WB rendezvous (ack already in flight back to it).
        bool committed = false;
        if (s.remotes[i].transient)
          for (const auto& m : s.down[i].q)
            if (m.meta == runtime::Meta::Ack ||
                m.meta == runtime::Meta::Repl)
              committed = true;
        if (!committed) ++dirty;
      }
      if (rs == rS) ++shared;
    }
    if (dirty > 1) return strf("%d remotes are dirty simultaneously", dirty);
    if (dirty == 1 && shared > 0)
      return strf("a dirty copy coexists with %d shared copies", shared);
    return "";
  };
}

}  // namespace ccref::protocols
