#include "protocols/snoop.hpp"

#include "dsl/parser.hpp"
#include "ir/validate.hpp"
#include "support/strings.hpp"

namespace ccref::protocols {

using ir::kNoState;
using ir::StateId;

namespace {

// The protocols are DSL sources, not builder calls: the snooping family is
// what exercises the whole lexer → parser → ir → validate pipeline behind
// `topology bus`. ir::print round-trips this surface syntax.

constexpr const char* kMesi = R"(
protocol mesi;
topology bus;

message BusRd;
message BusRdX;
message BusWB;
message Evict;
message GrS;
message GrE;
message GrM;

home h {
  var cs: nodeset;
  var o: node;
  var jj: node;
  state H initial {
    [o == none] r(any jj)?BusRd -> Grd
    [o != none] r(any jj)?BusRd { cs += {o}; o := none } -> Grd
    r(any jj)?BusRdX { cs := {}; o := none } -> Gwr
    r(any jj)?BusWB { o := none; cs -= {jj}; jj := none } -> H
    r(any jj)?Evict { cs -= {jj}; jj := none } -> H
  }
  state Grd {
    [empty(cs) && o == none] r(jj)!GrE { cs += {jj}; jj := none } -> H
    [!(empty(cs) && o == none)] r(jj)!GrS { cs += {jj}; jj := none } -> H
  }
  state Gwr {
    r(jj)!GrM { o := jj; jj := none } -> H
  }
}

remote r {
  state I initial {
    tau read -> RdA
    tau write -> WrA
  }
  state RdA { bcast!BusRd -> RdW }
  state RdW {
    h?GrS -> S
    h?GrE -> E
  }
  state WrA { bcast!BusRdX -> WrW }
  state WrW { h?GrM -> M }
  state S {
    bcast?BusRdX -> I
    tau write -> WrA
    tau evict -> EvA
  }
  state E {
    bcast?BusRd -> S
    bcast?BusRdX -> I
    tau write -> M
    tau evict -> EvA
  }
  state M {
    bcast?BusRd -> S
    bcast?BusRdX -> I
    tau evict -> WbA
  }
  state EvA {
    bcast?BusRdX -> I
    h!Evict -> I
  }
  state WbA {
    bcast?BusRd -> EvA
    bcast?BusRdX -> I
    bcast!BusWB -> I
  }
}
)";

constexpr const char* kMoesi = R"(
protocol moesi;
topology bus;

message BusRd;
message BusRdX;
message BusWB;
message Evict;
message GrS;
message GrE;
message GrM;

home h {
  var cs: nodeset;
  var o: node;
  var jj: node;
  state H initial {
    r(any jj)?BusRd -> Grd
    r(any jj)?BusRdX { cs := {}; o := none } -> Gwr
    r(any jj)?BusWB { o := none; cs -= {jj}; jj := none } -> H
    r(any jj)?Evict { cs -= {jj}; jj := none } -> H
  }
  state Grd {
    [empty(cs) && o == none] r(jj)!GrE { cs += {jj}; jj := none } -> H
    [!(empty(cs) && o == none)] r(jj)!GrS { cs += {jj}; jj := none } -> H
  }
  state Gwr {
    r(jj)!GrM { o := jj; jj := none } -> H
  }
}

remote r {
  state I initial {
    tau read -> RdA
    tau write -> WrA
  }
  state RdA { bcast!BusRd -> RdW }
  state RdW {
    h?GrS -> S
    h?GrE -> E
  }
  state WrA { bcast!BusRdX -> WrW }
  state WrW { h?GrM -> M }
  state S {
    bcast?BusRdX -> I
    tau write -> WrA
    tau evict -> EvA
  }
  state E {
    bcast?BusRd -> S
    bcast?BusRdX -> I
    tau write -> M
    tau evict -> EvA
  }
  state M {
    bcast?BusRd -> O
    bcast?BusRdX -> I
    tau evict -> WbA
  }
  state O {
    bcast?BusRdX -> I
    tau write -> WrA
    tau evict -> WbA
  }
  state EvA {
    bcast?BusRdX -> I
    h!Evict -> I
  }
  state WbA {
    bcast?BusRdX -> I
    bcast!BusWB -> I
  }
}
)";

constexpr const char* kMesif = R"(
protocol mesif;
topology bus;

message BusRd;
message BusRdX;
message BusWB;
message Evict;
message GrF;
message GrE;
message GrM;

home h {
  var cs: nodeset;
  var o: node;
  var jj: node;
  state H initial {
    [o == none] r(any jj)?BusRd -> Grd
    [o != none] r(any jj)?BusRd { cs += {o}; o := none } -> Grd
    r(any jj)?BusRdX { cs := {}; o := none } -> Gwr
    r(any jj)?BusWB { o := none; cs -= {jj}; jj := none } -> H
    r(any jj)?Evict { cs -= {jj}; jj := none } -> H
  }
  state Grd {
    [empty(cs) && o == none] r(jj)!GrE { cs += {jj}; jj := none } -> H
    [!(empty(cs) && o == none)] r(jj)!GrF { cs += {jj}; jj := none } -> H
  }
  state Gwr {
    r(jj)!GrM { o := jj; jj := none } -> H
  }
}

remote r {
  state I initial {
    tau read -> RdA
    tau write -> WrA
  }
  state RdA { bcast!BusRd -> RdW }
  state RdW {
    h?GrF -> F
    h?GrE -> E
  }
  state WrA { bcast!BusRdX -> WrW }
  state WrW { h?GrM -> M }
  state S {
    bcast?BusRdX -> I
    tau write -> WrA
    tau evict -> EvA
  }
  state F {
    bcast?BusRd -> S
    bcast?BusRdX -> I
    tau write -> WrA
    tau evict -> EvA
  }
  state E {
    bcast?BusRd -> S
    bcast?BusRdX -> I
    tau write -> M
    tau evict -> EvA
  }
  state M {
    bcast?BusRd -> S
    bcast?BusRdX -> I
    tau evict -> WbA
  }
  state EvA {
    bcast?BusRdX -> I
    h!Evict -> I
  }
  state WbA {
    bcast?BusRd -> EvA
    bcast?BusRdX -> I
    bcast!BusWB -> I
  }
}
)";

constexpr const char* kDragon = R"(
protocol dragon;
topology bus;

message BusRd;
message BusRdU;
message BusUpd;
message BusWB;
message Evict;
message GrS;
message GrE;
message UpdS;
message UpdX;

home h {
  var cs: nodeset;
  var jj: node;
  state H initial {
    r(any jj)?BusRd -> Grd
    r(any jj)?BusRdU -> Gru
    r(any jj)?BusUpd -> Gup
    r(any jj)?BusWB { cs -= {jj}; jj := none } -> H
    r(any jj)?Evict { cs -= {jj}; jj := none } -> H
  }
  state Grd {
    [empty(cs)] r(jj)!GrE { cs += {jj}; jj := none } -> H
    [!empty(cs)] r(jj)!GrS { cs += {jj}; jj := none } -> H
  }
  state Gru {
    [empty(cs)] r(jj)!UpdX { cs += {jj}; jj := none } -> H
    [!empty(cs)] r(jj)!UpdS { cs += {jj}; jj := none } -> H
  }
  state Gup {
    [size(cs) <= 1] r(jj)!UpdX { jj := none } -> H
    [1 < size(cs)] r(jj)!UpdS { jj := none } -> H
  }
}

remote r {
  state I initial {
    tau read -> RdA
    tau write -> RuA
  }
  state RdA { bcast!BusRd -> RdW }
  state RdW {
    h?GrE -> E
    h?GrS -> Sc
  }
  state RuA { bcast!BusRdU -> RuW }
  state RuW {
    h?UpdX -> M
    h?UpdS -> Sm
  }
  state UpA { bcast!BusUpd -> UpW }
  state UpW {
    h?UpdX -> M
    h?UpdS -> Sm
  }
  state E {
    bcast?BusRd -> Sc
    bcast?BusRdU -> Sc
    tau write -> M
    tau evict -> EvA
  }
  state Sc {
    tau write -> UpA
    tau evict -> EvA
  }
  state Sm {
    bcast?BusUpd -> Sc
    bcast?BusRdU -> Sc
    tau write -> UpA
    tau evict -> WbA
  }
  state M {
    bcast?BusRd -> Sm
    bcast?BusRdU -> Sc
    tau evict -> WbA
  }
  state EvA { h!Evict -> I }
  state WbA {
    bcast?BusUpd -> EvA
    bcast?BusRdU -> EvA
    bcast!BusWB -> I
  }
}
)";

ir::Protocol parse_protocol(const char* source) {
  auto result = dsl::parse(source);
  CCREF_REQUIRE_MSG(result.protocol.has_value(),
                    "snooping protocol source failed to parse");
  auto diags = ir::validate(*result.protocol);
  CCREF_REQUIRE_MSG(!ir::has_errors(diags),
                    "snooping protocol failed validation");
  return std::move(*result.protocol);
}

/// State-id lookup that tolerates absence (not every protocol has every
/// state); kNoState never matches a real remote state.
struct SnoopStates {
  StateId M, O, Sm, E, S, Sc, F, WbA;

  explicit SnoopStates(const ir::Process& r)
      : M(r.find_state("M")),
        O(r.find_state("O")),
        Sm(r.find_state("Sm")),
        E(r.find_state("E")),
        S(r.find_state("S")),
        Sc(r.find_state("Sc")),
        F(r.find_state("F")),
        WbA(r.find_state("WbA")) {}

  [[nodiscard]] bool valid_stable(StateId s) const {
    return (s == M || s == O || s == Sm || s == E || s == S || s == Sc ||
            s == F) &&
           s != kNoState;
  }
};

template <typename GetState>
std::string check_counts(const SnoopStates& st, int n, GetState&& state_of) {
  int owners = 0, excl = 0, strict_m = 0, forwards = 0, valid = 0;
  for (int i = 0; i < n; ++i) {
    const StateId s = state_of(i);
    if (s == kNoState) continue;
    if (st.valid_stable(s)) ++valid;
    if (s == st.M || (st.O != kNoState && s == st.O) ||
        (st.Sm != kNoState && s == st.Sm))
      ++owners;
    if (s == st.M) ++strict_m;
    if (s == st.E) ++excl;
    if (st.F != kNoState && s == st.F) ++forwards;
  }
  if (owners > 1)
    return strf("single-writer violated: %d dirty owners", owners);
  if (excl > 1) return strf("%d caches hold E simultaneously", excl);
  if (strict_m == 1 && valid > 1)
    return strf("a cache in M coexists with %d other valid copies",
                valid - 1);
  if (excl == 1 && valid > 1)
    return strf("a cache in E coexists with %d other valid copies",
                valid - 1);
  if (forwards > 1)
    return strf("Forward uniqueness violated: %d caches in F", forwards);
  return "";
}

}  // namespace

ir::Protocol make_mesi() { return parse_protocol(kMesi); }
ir::Protocol make_moesi() { return parse_protocol(kMoesi); }
ir::Protocol make_mesif() { return parse_protocol(kMesif); }
ir::Protocol make_dragon() { return parse_protocol(kDragon); }

std::vector<std::pair<std::string, ir::Protocol>> make_snoop_family() {
  std::vector<std::pair<std::string, ir::Protocol>> family;
  family.emplace_back("mesi", make_mesi());
  family.emplace_back("moesi", make_moesi());
  family.emplace_back("mesif", make_mesif());
  family.emplace_back("dragon", make_dragon());
  return family;
}

std::function<std::string(const sem::RvState&)> snoop_invariant(
    const ir::Protocol& protocol, int num_remotes) {
  const SnoopStates st(protocol.remote);
  CCREF_REQUIRE(st.M != kNoState);
  const ir::VarId ho = protocol.home.find_var("o");
  // Protocols with an Owned state let the tracked owner upgrade in place
  // (O -> WrA -> WrW -> M): it keeps the dirty line the whole way, so the
  // transit states are legitimate places for the home's `o` to point at.
  const StateId wr_a =
      st.O != kNoState ? protocol.remote.find_state("WrA") : kNoState;
  const StateId wr_w =
      st.O != kNoState ? protocol.remote.find_state("WrW") : kNoState;

  return [=, &protocol](const sem::RvState& s) -> std::string {
    std::string err = check_counts(
        st, num_remotes, [&](int i) { return s.remotes[i].state; });
    if (!err.empty()) return err;
    if (ho != ir::kNoVar) {
      const ir::Value o = s.home.store.get(ho);
      if (o != ir::kNoNode) {
        if (o >= static_cast<ir::Value>(num_remotes))
          return strf("home owner var names non-existent cache %llu",
                      static_cast<unsigned long long>(o));
        const StateId os = s.remotes[o].state;
        if (os != st.M && os != st.O && os != st.WbA &&
            !(os == wr_a && wr_a != kNoState) &&
            !(os == wr_w && wr_w != kNoState))
          return strf("home tracks cache %llu as owner but it is in %s",
                      static_cast<unsigned long long>(o),
                      protocol.remote.state(os).name.c_str());
      }
    }
    return "";
  };
}

std::function<std::string(const runtime::AsyncState&)> snoop_async_invariant(
    const ir::Protocol& protocol, int num_remotes) {
  const SnoopStates st(protocol.remote);
  CCREF_REQUIRE(st.M != kNoState);
  return [=](const runtime::AsyncState& s) -> std::string {
    return check_counts(st, num_remotes,
                        [&](int i) { return s.remotes[i].state; });
  };
}

}  // namespace ccref::protocols
