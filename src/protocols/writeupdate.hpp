// A write-update DSM protocol (the classic alternative to invalidation).
//
// Sharers join a copyset with reqS/grS (fused under §3.3). A writer does not
// invalidate the other sharers: it sends the new value to the home (`wr`,
// acked), and the home pushes `upd` messages to every *other* sharer, each
// acknowledged individually. The home's sweep uses a scratch copy of the
// copyset (`rem := cs; rem -= {j}`), exercising NodeSet assignment in the
// expression language.
//
// Rendezvous-level coherence: whenever the home is idle in H, every sharer's
// cached value equals memory — write propagation is atomic at this level,
// which is exactly the designer's intended view (§1).
#pragma once

#include <functional>
#include <string>

#include "ir/process.hpp"
#include "sem/rendezvous.hpp"

namespace ccref::protocols {

struct WriteUpdateOptions {
  /// Abstract data domain; use >= 2 so writes are visible.
  std::uint32_t data_domain = 2;
};

[[nodiscard]] ir::Protocol make_write_update(
    const WriteUpdateOptions& opts = {});

/// Coherence of values: home idle in H implies every remote in S caches
/// exactly `mem`; sharers are always recorded in the copyset.
[[nodiscard]] std::function<std::string(const sem::RvState&)>
write_update_invariant(const ir::Protocol& protocol, int num_remotes);

}  // namespace ccref::protocols
