// Knobs of the refinement procedure (paper §3) plus the ablation switches
// DESIGN.md's experiment A-ABL sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccref::refine {

struct Options {
  /// Home buffer capacity k >= 2 (§3.2). k = 2 is the paper's minimum that
  /// still guarantees weak-fairness forward progress.
  int home_buffer_capacity = 2;

  /// Apply the §3.3 request/reply transformation where the syntactic
  /// pattern holds (e.g. req/gr and inv/ID in the migratory protocol).
  bool request_reply_fusion = true;

  /// Reserve the last free buffer slot for requests that satisfy a guard of
  /// the current communication state (§3.2). Disabling reproduces the
  /// livelock the paper describes: "if the buffer is full and none of the
  /// requests ... can enable a guard ... the home node can no longer make
  /// progress".
  bool progress_buffer = true;

  /// Reserve a buffer slot for the awaited ack/nack/request when the home
  /// enters a transient state (§3.2's "ack buffer").
  bool ack_buffer = true;

  /// Messages (by name) whose rendezvous completes without an ack: the
  /// sender applies its transition at send time and the home must always
  /// accept them. This models the hand-designed Avalanche migratory protocol
  /// (§5: "no ack is exchanged after an LR message" — the dotted arrows of
  /// Figures 4 and 5). Unsound under the §4 simulation relation; safety is
  /// re-checked directly on the asynchronous state space instead.
  std::vector<std::string> elide_ack;

  /// Channel capacity used by the asynchronous semantics. The paper assumes
  /// an infinite-buffer network (§2.2); explicit-state checking needs a
  /// bound, and the simulator uses a large one.
  int channel_capacity = 3;
};

}  // namespace ccref::refine
