#include "refine/abstraction.hpp"

#include "support/strings.hpp"

namespace ccref::refine {

using ir::EvalCtx;
using ir::InputGuard;
using ir::OutputGuard;
using runtime::AsyncState;
using runtime::AsyncSystem;
using runtime::Meta;
using runtime::Msg;
using sem::RvState;

namespace {

constexpr int kHome = -1;

/// Apply a completed output transition to a rendezvous-level process slice.
void apply_output(sem::ProcState& ps, const ir::Process& proc,
                  const OutputGuard& og, int target, int self) {
  if (og.bind_peer != ir::kNoVar)
    ps.store.set(og.bind_peer, static_cast<ir::Value>(target));
  if (og.action) ir::exec(*og.action, ps.store, proc.vars, EvalCtx{self});
  ps.state = og.next;
}

void apply_input(sem::ProcState& ps, const ir::Process& proc,
                 const InputGuard& ig, const Msg& m, int sender, int self) {
  if (ig.bind_peer != ir::kNoVar)
    ps.store.set(ig.bind_peer, static_cast<ir::Value>(sender));
  for (std::size_t f = 0; f < ig.bind_payload.size(); ++f)
    if (ig.bind_payload[f] != ir::kNoVar)
      ps.store.set(ig.bind_payload[f], m.payload[f]);
  if (ig.action) ir::exec(*ig.action, ps.store, proc.vars, EvalCtx{self});
  ps.state = ig.next;
}

/// The single in-flight response (ack/nack/repl) on a channel, if any.
const Msg* find_response(const runtime::Channel& ch) {
  const Msg* found = nullptr;
  for (const Msg& m : ch.q) {
    if (m.meta == Meta::Req) continue;
    CCREF_ASSERT_MSG(!found, "two responses in flight on one channel");
    found = &m;
  }
  return found;
}

}  // namespace

RvState abstract(const AsyncSystem& async, const AsyncState& s) {
  const RefinedProtocol& rp = async.refined();
  CCREF_REQUIRE_MSG(rp.options.elide_ack.empty(),
                    "abs is undefined for elide-ack (hand-design) variants");
  CCREF_REQUIRE_MSG(rp.base->topology == ir::Topology::Star,
                    "abs is defined for star protocols only: a mid-flight "
                    "bus transaction has already moved the snooped remotes "
                    "while the home guard is still pending, so no single "
                    "rendezvous prefix corresponds to it (bus protocols are "
                    "checked by invariants at both levels instead)");
  const ir::Protocol& p = async.protocol();
  const int n = async.num_remotes();

  RvState rv;
  rv.home.state = s.home.state;
  rv.home.store = s.home.store;
  rv.remotes.resize(n);

  if (s.home.transient) {
    const int ri = s.home.t_target;
    const OutputGuard& og =
        p.home.state(s.home.state).outputs[s.home.t_guard];
    const Msg* resp = find_response(s.up[ri]);
    if (resp == nullptr || resp->meta == Meta::Nack) {
      // Rule 1/3: request discarded (or nacked) — as though never sent.
    } else if (resp->meta == Meta::Ack) {
      // Rule 2: fast-forward past the consumed ack.
      apply_output(rv.home, p.home, og, ri, kHome);
    } else {  // Repl: the reply acks the request and carries the second
              // rendezvous; fast-forward through both.
      apply_output(rv.home, p.home, og, ri, kHome);
      bool applied = false;
      for (const auto& ig : p.home.state(rv.home.state).inputs) {
        if (ig.msg != resp->msg) continue;
        bool src_ok =
            ig.from.kind == ir::PeerSrc::Kind::Any ||
            (ig.from.kind == ir::PeerSrc::Kind::Expr &&
             ir::eval(*ig.from.expr, rv.home.store, EvalCtx{kHome}) == ri);
        if (!src_ok) continue;
        if (ig.cond && !ir::eval(*ig.cond, rv.home.store, EvalCtx{kHome}))
          continue;
        apply_input(rv.home, p.home, ig, *resp, ri, kHome);
        applied = true;
        break;
      }
      CCREF_ASSERT_MSG(applied, "abs: fused reply has no consuming guard");
    }
  }

  for (int i = 0; i < n; ++i) {
    rv.remotes[i].state = s.remotes[i].state;
    rv.remotes[i].store = s.remotes[i].store;
    if (!s.remotes[i].transient) continue;
    const OutputGuard& og = p.remote.state(s.remotes[i].state).outputs[0];
    const Msg* resp = find_response(s.down[i]);
    if (resp != nullptr) {
      if (resp->meta == Meta::Nack) continue;  // rule 3: back to comm state
      if (resp->meta == Meta::Ack) {
        apply_output(rv.remotes[i], p.remote, og, kHome, i);
        continue;
      }
      // Repl: fast-forward through the request and the reply rendezvous.
      const auto* fusion = rp.remote_fusion_at(s.remotes[i].state);
      CCREF_ASSERT(fusion && fusion->reply == resp->msg);
      apply_output(rv.remotes[i], p.remote, og, kHome, i);
      apply_input(rv.remotes[i], p.remote,
                  p.remote.state(fusion->wait_state).inputs[0], *resp,
                  Msg::kHomeSrc, i);
      continue;
    }
    // No response in flight. If the request itself is still pending (in
    // flight or in the home's buffer), rule 1 discards it: stay at the
    // communication state. Otherwise the home consumed it silently, which
    // only happens for fused requests — the remote is logically waiting.
    bool pending = false;
    for (const Msg& m : s.up[i].q)
      if (m.meta == Meta::Req && m.msg == og.msg) pending = true;
    for (const Msg& m : s.home.buffer)
      if (m.src == i && m.msg == og.msg) pending = true;
    if (pending) continue;
    CCREF_ASSERT_MSG(rp.cls(og.msg) == MsgClass::FusedRequest,
                     "abs: unfused request vanished without a response");
    apply_output(rv.remotes[i], p.remote, og, kHome, i);
  }
  return rv;
}

std::function<std::string(const AsyncState&, const AsyncState&,
                          const sem::Label&)>
make_simulation_checker(const AsyncSystem& async,
                        const sem::RendezvousSystem& rendezvous) {
  CCREF_REQUIRE_MSG(async.protocol().topology == ir::Topology::Star,
                    "the §4 simulation checker requires a star protocol "
                    "(abs is undefined mid bus transaction)");
  auto encode = [&rendezvous](const RvState& s) {
    ByteSink sink;
    rendezvous.encode(s, sink);
    return sink.take();
  };
  return [&async, &rendezvous, encode](const AsyncState& s,
                                       const AsyncState& s2,
                                       const sem::Label& label) -> std::string {
    RvState a = abstract(async, s);
    RvState b = abstract(async, s2);
    auto eb = encode(b);
    if (encode(a) == eb) return "";  // stutter
    // One rendezvous step?
    auto succs = rendezvous.successors(a);
    for (const auto& [x, xl] : succs)
      if (encode(x) == eb) return "";
    // Two (the fused request/reply pair completed by one remote step)?
    for (const auto& [x, xl] : succs) {
      if (!xl.completes_rendezvous) continue;
      for (const auto& [y, yl] : rendezvous.successors(x))
        if (yl.completes_rendezvous && encode(y) == eb) return "";
    }
    return strf(
        "Equation 1 violated: abs moved from {%s} to {%s} on '%s' but no "
        "rendezvous path of length <= 2 connects them",
        rendezvous.describe(a).c_str(), rendezvous.describe(b).c_str(),
        label.text.c_str());
  };
}

}  // namespace ccref::refine
