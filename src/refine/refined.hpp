// The refinement procedure's static analysis (paper §3).
//
// refine() inspects the syntactic structure of a validated rendezvous
// protocol and produces a RefinedProtocol: a per-message classification and
// the fusion tables the asynchronous runtime interprets.
//
// Message classes:
//   Normal       — generic scheme: request for rendezvous answered by an
//                  explicit ack or nack (§3, rules R1-R3).
//   FusedRequest — first half of a §3.3 request/reply pair: consuming the
//                  request completes no handshake; the later reply acts as
//                  the ack (req and inv in the migratory protocol).
//   Reply        — second half of a pair: sent fire-and-forget, doubles as
//                  the ack of the FusedRequest (gr and ID).
//   ElideAck     — hand-design deviation (Options::elide_ack): the sender
//                  commits at send time; the home must always accept.
//   Broadcast    — bus transaction (`bcast!` under topology bus): refined to
//                  a split transaction (request, home-sequenced snoops, ack)
//                  by the runtime; never participates in §3.3 fusion.
#pragma once

#include <optional>
#include <vector>

#include "ir/process.hpp"
#include "refine/options.hpp"

namespace ccref::refine {

enum class MsgClass : std::uint8_t {
  Normal,
  FusedRequest,
  Reply,
  ElideAck,
  Broadcast,
};

[[nodiscard]] constexpr const char* to_string(MsgClass c) {
  switch (c) {
    case MsgClass::Normal: return "normal";
    case MsgClass::FusedRequest: return "fused-request";
    case MsgClass::Reply: return "reply";
    case MsgClass::ElideAck: return "elide-ack";
    case MsgClass::Broadcast: return "broadcast";
  }
  return "?";
}

/// Remote-active fusion (req/gr pattern): the remote's active state A sends
/// `request`; A's successor W is passive with a single input guard for
/// `reply`, which the home sends fire-and-forget.
struct RemoteFusion {
  ir::StateId active_state = ir::kNoState;  // A
  ir::MsgId request = 0;                    // sent from A
  ir::StateId wait_state = ir::kNoState;    // W = A.out.next
  ir::MsgId reply = 0;                      // W's only input
};

/// Home-active fusion (inv/ID pattern): a home output guard sends `request`;
/// the remote's matching input guard leads straight to an active state that
/// answers `reply`; the home's successor state consumes the reply.
struct HomeFusion {
  ir::StateId home_state = ir::kNoState;  // state holding the output guard
  std::size_t out_guard = 0;              // index of that guard
  ir::MsgId request = 0;
  ir::MsgId reply = 0;
};

struct RefinedProtocol {
  const ir::Protocol* base = nullptr;
  Options options;
  std::vector<MsgClass> msg_class;   // indexed by MsgId
  std::vector<RemoteFusion> remote_fusions;
  std::vector<HomeFusion> home_fusions;

  [[nodiscard]] MsgClass cls(ir::MsgId m) const { return msg_class[m]; }

  /// Fusion record for a remote active state, if any.
  [[nodiscard]] const RemoteFusion* remote_fusion_at(ir::StateId a) const;

  /// Fusion record for a home output guard, if any.
  [[nodiscard]] const HomeFusion* home_fusion_at(ir::StateId s,
                                                 std::size_t guard) const;

  /// True if the remote input guard `ig` (in state `s`) is the remote half
  /// of a home-active fusion: its next state actively replies.
  [[nodiscard]] bool remote_replies_through(const ir::InputGuard& ig) const;
};

/// Run the refinement analysis. The protocol must validate without errors
/// (ir::validate); violations abort via contract failure.
[[nodiscard]] RefinedProtocol refine(const ir::Protocol& protocol,
                                     const Options& options = {});

}  // namespace ccref::refine
