#include "refine/refined.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "ir/validate.hpp"
#include "support/contracts.hpp"

namespace ccref::refine {

using ir::InputGuard;
using ir::MsgId;
using ir::OutputGuard;
using ir::PeerSel;
using ir::PeerSrc;
using ir::Process;
using ir::Protocol;
using ir::State;
using ir::StateId;
using ir::StateKind;

namespace {

/// Send/receive site inventory per message.
struct Sites {
  // (state, guard index) pairs
  std::vector<std::pair<StateId, std::size_t>> remote_out, remote_in,
      home_out, home_in;
};

/// All edges entering `target` in `proc`, as (kind, state, guard) triples.
/// Used to enforce the §3.3 "always appear together" condition: a fused wait
/// or reply state must not be reachable except through its fused partner.
struct Entry {
  enum class Kind : std::uint8_t { Input, Output, Tau } kind;
  StateId state;
  std::size_t guard;
};

std::vector<Entry> entries_of(const Process& proc, StateId target) {
  std::vector<Entry> out;
  for (StateId si = 0; si < proc.states.size(); ++si) {
    const State& s = proc.states[si];
    for (std::size_t g = 0; g < s.inputs.size(); ++g)
      if (s.inputs[g].next == target) out.push_back({Entry::Kind::Input, si, g});
    for (std::size_t g = 0; g < s.outputs.size(); ++g)
      if (s.outputs[g].next == target)
        out.push_back({Entry::Kind::Output, si, g});
    for (std::size_t g = 0; g < s.taus.size(); ++g)
      if (s.taus[g].next == target) out.push_back({Entry::Kind::Tau, si, g});
  }
  return out;
}

/// Variables written by a statement tree (used to kill dataflow facts).
void assigned_vars(const ir::Stmt* s, std::vector<ir::VarId>& out) {
  if (!s) return;
  switch (s->kind) {
    case ir::Stmt::Kind::Nop:
      return;
    case ir::Stmt::Kind::Assign:
    case ir::Stmt::Kind::SetAdd:
    case ir::Stmt::Kind::SetRemove:
      out.push_back(s->var);
      return;
    case ir::Stmt::Kind::Seq:
      for (const auto& child : s->body) assigned_vars(child.get(), out);
      return;
  }
}

std::vector<Sites> collect_sites(const Protocol& p) {
  std::vector<Sites> sites(p.messages.size());
  auto scan = [&](const Process& proc, bool is_home) {
    for (StateId si = 0; si < proc.states.size(); ++si) {
      const State& s = proc.states[si];
      for (std::size_t g = 0; g < s.outputs.size(); ++g)
        (is_home ? sites[s.outputs[g].msg].home_out
                 : sites[s.outputs[g].msg].remote_out)
            .emplace_back(si, g);
      for (std::size_t g = 0; g < s.inputs.size(); ++g)
        (is_home ? sites[s.inputs[g].msg].home_in
                 : sites[s.inputs[g].msg].remote_in)
            .emplace_back(si, g);
    }
  };
  scan(p.home, true);
  scan(p.remote, false);
  return sites;
}

}  // namespace

namespace {

/// The paper's home-side §3.3 condition: "ri!repl always appears after
/// ri?req in the home node". A fire-and-forget reply is only sound when the
/// addressed remote is guaranteed to be waiting, i.e. the reply's target was
/// bound by consuming that remote's (still unanswered) fused request on
/// *every* path into the sending state.
///
/// Checked as a must dataflow analysis over the home's state graph. A fact
/// (v, rep) over a Node variable means "v holds a remote whose fused request
/// awaits reply rep"; over a NodeSet variable it means "every member awaits
/// rep" (vacuously true for the initially-empty set, which is what lets a
/// lock server park requesters in a waiting set and grant from it later).
/// The meet is intersection. Remote-active fusions with an unprovable reply
/// site are demoted to the generic request/ack scheme.
void verify_reply_flow(RefinedProtocol& rp) {
  const Process& home = rp.base->home;
  using Fact = std::pair<ir::VarId, MsgId>;  // (var or set var, reply msg)
  using Facts = std::set<Fact>;

  std::map<MsgId, MsgId> reply_of;  // fused request -> reply
  for (const auto& f : rp.remote_fusions) reply_of[f.request] = f.reply;
  if (reply_of.empty()) return;

  std::set<MsgId> replies;
  for (const auto& [req, rep] : reply_of) replies.insert(rep);

  auto is_nodeset = [&](ir::VarId v) {
    return home.vars[v].type == ir::Type::NodeSet;
  };

  // Walk an action sequentially: `fresh` maps variables that currently hold
  // a just-bound pending requester to the awaited reply.
  auto walk_stmt = [&](const ir::Stmt* st, Facts& facts,
                       std::map<ir::VarId, MsgId>& fresh, auto&& self) -> void {
    if (!st) return;
    switch (st->kind) {
      case ir::Stmt::Kind::Nop:
        return;
      case ir::Stmt::Kind::Seq:
        for (const auto& child : st->body)
          self(child.get(), facts, fresh, self);
        return;
      case ir::Stmt::Kind::Assign: {
        std::erase_if(facts,
                      [&](const Fact& f) { return f.first == st->var; });
        fresh.erase(st->var);
        // NodeSet copy propagates the source set's facts.
        if (is_nodeset(st->var) && st->a &&
            st->a->kind == ir::Expr::Kind::VarRef) {
          for (MsgId rep : replies)
            if (facts.contains({st->a->var, rep}))
              facts.insert({st->var, rep});
        }
        return;
      }
      case ir::Stmt::Kind::SetAdd: {
        // Adding a pending-for-rep member keeps (sv, rep) and kills the
        // other replies' facts; adding anything else kills them all.
        MsgId keep = 0;
        bool have_keep = false;
        if (st->a && st->a->kind == ir::Expr::Kind::VarRef) {
          auto it = fresh.find(st->a->var);
          if (it != fresh.end()) {
            keep = it->second;
            have_keep = true;
          }
        }
        std::erase_if(facts, [&](const Fact& f) {
          return f.first == st->var && !(have_keep && f.second == keep);
        });
        return;
      }
      case ir::Stmt::Kind::SetRemove:
        return;  // a subset of pending requesters is still pending
    }
  };

  // Per-guard transfer functions producing OUT facts.
  auto transfer_input = [&](Facts facts, const InputGuard& g) {
    std::map<ir::VarId, MsgId> fresh;
    if (g.bind_peer != ir::kNoVar) {
      std::erase_if(facts,
                    [&](const Fact& f) { return f.first == g.bind_peer; });
      auto it = reply_of.find(g.msg);
      if (it != reply_of.end()) {
        facts.insert({g.bind_peer, it->second});
        fresh[g.bind_peer] = it->second;
      }
    }
    for (ir::VarId v : g.bind_payload) {
      if (v == ir::kNoVar) continue;
      std::erase_if(facts, [&](const Fact& f) { return f.first == v; });
      fresh.erase(v);
    }
    walk_stmt(g.action.get(), facts, fresh, walk_stmt);
    return facts;
  };

  auto transfer_output = [&](Facts facts, const OutputGuard& g) {
    std::map<ir::VarId, MsgId> fresh;
    bool is_reply = replies.contains(g.msg);
    if (is_reply && g.to.kind == PeerSel::Kind::Expr && g.to.expr &&
        g.to.expr->kind == ir::Expr::Kind::VarRef) {
      facts.erase({g.to.expr->var, g.msg});  // this requester is answered
    }
    bool removed_target_from_set = false;
    ir::VarId set_var = ir::kNoVar;
    if (g.to.kind == PeerSel::Kind::AnyInSet && g.to.expr &&
        g.to.expr->kind == ir::Expr::Kind::VarRef)
      set_var = g.to.expr->var;
    if (g.bind_peer != ir::kNoVar) {
      std::erase_if(facts,
                    [&](const Fact& f) { return f.first == g.bind_peer; });
      // Detect `sv -= {t}` in the action: the answered member leaves.
      std::vector<const ir::Stmt*> stack{g.action.get()};
      while (!stack.empty()) {
        const ir::Stmt* st = stack.back();
        stack.pop_back();
        if (!st) continue;
        if (st->kind == ir::Stmt::Kind::Seq)
          for (const auto& child : st->body) stack.push_back(child.get());
        else if (st->kind == ir::Stmt::Kind::SetRemove &&
                 st->var == set_var && st->a &&
                 st->a->kind == ir::Expr::Kind::VarRef &&
                 st->a->var == g.bind_peer)
          removed_target_from_set = true;
      }
    }
    walk_stmt(g.action.get(), facts, fresh, walk_stmt);
    if (is_reply && set_var != ir::kNoVar && !removed_target_from_set)
      facts.erase({set_var, g.msg});  // answered member still in the set
    return facts;
  };

  auto transfer_tau = [&](Facts facts, const ir::TauGuard& g) {
    std::map<ir::VarId, MsgId> fresh;
    walk_stmt(g.action.get(), facts, fresh, walk_stmt);
    return facts;
  };

  // Initial facts: every NodeSet variable that starts empty vacuously holds
  // only pending requesters.
  Facts init;
  for (ir::VarId v = 0; v < home.vars.size(); ++v)
    if (home.vars[v].type == ir::Type::NodeSet && home.vars[v].init == 0)
      for (MsgId rep : replies) init.insert({v, rep});

  // Worklist fixpoint; nullopt = top (unvisited).
  std::vector<std::optional<Facts>> in(home.states.size());
  in[home.initial] = init;
  std::vector<StateId> work{home.initial};
  auto merge_into = [&](StateId target, const Facts& facts) {
    if (!in[target]) {
      in[target] = facts;
      work.push_back(target);
      return;
    }
    Facts met;
    std::set_intersection(in[target]->begin(), in[target]->end(),
                          facts.begin(), facts.end(),
                          std::inserter(met, met.begin()));
    if (met != *in[target]) {
      in[target] = std::move(met);
      work.push_back(target);
    }
  };
  while (!work.empty()) {
    StateId s = work.back();
    work.pop_back();
    const Facts facts = *in[s];
    const State& st = home.states[s];
    for (const auto& g : st.inputs)
      merge_into(g.next, transfer_input(facts, g));
    for (const auto& g : st.outputs)
      merge_into(g.next, transfer_output(facts, g));
    for (const auto& g : st.taus) merge_into(g.next, transfer_tau(facts, g));
  }

  // Check every reply-send site; collect fusions that cannot be proven.
  std::set<MsgId> bad_replies;
  for (StateId s = 0; s < home.states.size(); ++s) {
    for (const auto& g : home.states[s].outputs) {
      if (!replies.contains(g.msg)) continue;
      if (!in[s].has_value()) continue;  // unreachable: vacuously fine
      bool ok = g.to.expr && g.to.expr->kind == ir::Expr::Kind::VarRef &&
                (g.to.kind == PeerSel::Kind::Expr ||
                 g.to.kind == PeerSel::Kind::AnyInSet) &&
                in[s]->contains({g.to.expr->var, g.msg});
      if (!ok) bad_replies.insert(g.msg);
    }
  }

  for (MsgId rep : bad_replies) {
    for (auto it = rp.remote_fusions.begin();
         it != rp.remote_fusions.end();) {
      if (it->reply == rep) {
        rp.msg_class[it->request] = MsgClass::Normal;
        it = rp.remote_fusions.erase(it);
      } else {
        ++it;
      }
    }
    rp.msg_class[rep] = MsgClass::Normal;
  }
}

}  // namespace

const RemoteFusion* RefinedProtocol::remote_fusion_at(StateId a) const {
  for (const auto& f : remote_fusions)
    if (f.active_state == a) return &f;
  return nullptr;
}

const HomeFusion* RefinedProtocol::home_fusion_at(StateId s,
                                                  std::size_t guard) const {
  for (const auto& f : home_fusions)
    if (f.home_state == s && f.out_guard == guard) return &f;
  return nullptr;
}

bool RefinedProtocol::remote_replies_through(const InputGuard& ig) const {
  const Process& r = base->remote;
  const State& d = r.state(ig.next);
  if (!Process::is_active_state(d)) return false;
  const OutputGuard& og = d.outputs[0];
  return cls(og.msg) == MsgClass::Reply && !og.cond;
}

RefinedProtocol refine(const Protocol& protocol, const Options& options) {
  CCREF_REQUIRE_MSG(options.home_buffer_capacity >= 2,
                    "home buffer capacity must be >= 2 (§3.2)");
  CCREF_REQUIRE_MSG(options.channel_capacity >= 1, "channel capacity >= 1");
  {
    auto diags = ir::validate(protocol);
    CCREF_REQUIRE_MSG(!ir::has_errors(diags),
                      "protocol fails ir::validate; refine() requires the "
                      "§2.4 fragment");
  }

  RefinedProtocol rp;
  rp.base = &protocol;
  rp.options = options;
  rp.msg_class.assign(protocol.messages.size(), MsgClass::Normal);

  auto sites = collect_sites(protocol);
  const Process& remote = protocol.remote;
  const Process& home = protocol.home;

  // ---- broadcasts (topology bus) -------------------------------------------
  // A broadcast message refines to a split bus transaction (request,
  // home-sequenced snoops, ack) interpreted directly by the async runtime.
  // It opts out of the §3 point-to-point scheme and never fuses.
  for (const State& st : remote.states)
    for (const auto& og : st.outputs)
      if (og.to.kind == PeerSel::Kind::Bcast)
        rp.msg_class[og.msg] = MsgClass::Broadcast;

  // ---- ElideAck (hand-design deviation) ------------------------------------
  for (const auto& name : options.elide_ack) {
    MsgId m = protocol.find_message(name);
    CCREF_REQUIRE_MSG(sites[m].home_out.empty(),
                      "elide_ack supports remote->home messages only");
    CCREF_REQUIRE_MSG(rp.msg_class[m] != MsgClass::Broadcast,
                      "elide_ack does not apply to broadcast messages");
    rp.msg_class[m] = MsgClass::ElideAck;
  }

  if (!options.request_reply_fusion) return rp;

  // ---- remote-active fusion (req/gr) ----------------------------------------
  // For each message sent only by remotes, check every send site matches the
  // §3.3 pattern: h!req always immediately followed by h?repl.
  for (MsgId m = 0; m < protocol.messages.size(); ++m) {
    const Sites& s = sites[m];
    if (rp.msg_class[m] != MsgClass::Normal) continue;
    if (s.remote_out.empty() || !s.home_out.empty()) continue;

    bool ok = true;
    MsgId reply = 0;
    bool have_reply = false;
    std::vector<RemoteFusion> found;
    std::set<StateId> wait_states;
    for (auto [a, g] : s.remote_out) {
      const State& as = remote.state(a);
      if (!Process::is_active_state(as)) {
        ok = false;
        break;
      }
      const OutputGuard& og = as.outputs[0];
      const State& w = remote.state(og.next);
      // W: passive, exactly one unconditional input from the home.
      if (w.kind != StateKind::Comm || w.inputs.size() != 1 ||
          !w.outputs.empty() || !w.taus.empty() || w.inputs[0].cond) {
        ok = false;
        break;
      }
      MsgId m2 = w.inputs[0].msg;
      if (have_reply && m2 != reply) {
        ok = false;
        break;
      }
      // W must be unreachable except through A's request (and must not be
      // the initial state): a remote sitting in W without having requested
      // would receive a fire-and-forget reply it never asked for.
      if (og.next == remote.initial) {
        ok = false;
        break;
      }
      for (const Entry& e : entries_of(remote, og.next)) {
        if (e.kind == Entry::Kind::Output &&
            remote.state(e.state).outputs[e.guard].msg == m)
          continue;
        ok = false;
      }
      if (!ok) break;
      reply = m2;
      have_reply = true;
      found.push_back({a, m, og.next, m2});
      wait_states.insert(og.next);
    }
    if (!ok || !have_reply) continue;

    // Reply-side conditions: sent only by the home, never received by the
    // home, and received by remotes only in the wait states above.
    const Sites& r = sites[reply];
    if (r.remote_out.size() + r.home_in.size() != 0) continue;
    if (r.home_out.empty()) continue;
    if (rp.msg_class[reply] != MsgClass::Normal) continue;
    bool reply_ok = true;
    for (auto [w, g] : r.remote_in)
      if (!wait_states.contains(w)) reply_ok = false;
    if (!reply_ok) continue;

    rp.msg_class[m] = MsgClass::FusedRequest;
    rp.msg_class[reply] = MsgClass::Reply;
    for (auto& f : found) rp.remote_fusions.push_back(f);
  }

  // ---- home-active fusion (inv/ID) ------------------------------------------
  // For each message sent only by the home: every remote input guard must
  // lead straight to an active state answering one consistent reply, and
  // each home send site's successor state must consume that reply.
  for (MsgId m = 0; m < protocol.messages.size(); ++m) {
    const Sites& s = sites[m];
    if (rp.msg_class[m] != MsgClass::Normal) continue;
    if (s.home_out.empty() || !s.remote_out.empty()) continue;
    if (!s.home_in.empty() || s.remote_in.empty()) continue;

    bool ok = true;
    MsgId reply = 0;
    bool have_reply = false;
    for (auto [si, g] : s.remote_in) {
      const InputGuard& ig = remote.state(si).inputs[g];
      const State& d = remote.state(ig.next);
      if (!Process::is_active_state(d) || d.outputs[0].cond) {
        ok = false;
        break;
      }
      MsgId m2 = d.outputs[0].msg;
      if (have_reply && m2 != reply) {
        ok = false;
        break;
      }
      // The reply state D must be enterable only by receiving this request
      // (§3.3: the reply "always appears after" the request). A τ entry —
      // e.g. a voluntary writeback sharing the WB message with the
      // revocation reply — disqualifies the fusion.
      if (ig.next == remote.initial) {
        ok = false;
        break;
      }
      for (const Entry& e : entries_of(remote, ig.next)) {
        if (e.kind == Entry::Kind::Input &&
            remote.state(e.state).inputs[e.guard].msg == m)
          continue;
        ok = false;
      }
      if (!ok) break;
      reply = m2;
      have_reply = true;
    }
    if (!ok || !have_reply) continue;

    // Reply must be remote->home only, still unclassified, and sent *only*
    // from the reply states reached by this request.
    const Sites& r = sites[reply];
    if (!r.home_out.empty() || !r.remote_in.empty()) continue;
    if (rp.msg_class[reply] != MsgClass::Normal) continue;
    {
      std::set<StateId> reply_states;
      for (auto [si, g] : s.remote_in)
        reply_states.insert(remote.state(si).inputs[g].next);
      bool only_there = true;
      for (auto [si, g] : r.remote_out)
        if (!reply_states.contains(si)) only_there = false;
      if (!only_there) continue;
    }

    // Every home send site must be followed by a state that can consume the
    // reply.
    bool sites_ok = true;
    std::vector<HomeFusion> found;
    for (auto [si, g] : s.home_out) {
      const OutputGuard& og = home.state(si).outputs[g];
      bool consumes = false;
      for (const auto& ig2 : home.state(og.next).inputs)
        if (ig2.msg == reply) consumes = true;
      if (!consumes) {
        sites_ok = false;
        break;
      }
      found.push_back({si, g, m, reply});
    }
    if (!sites_ok) continue;

    rp.msg_class[m] = MsgClass::FusedRequest;
    rp.msg_class[reply] = MsgClass::Reply;
    for (auto& f : found) rp.home_fusions.push_back(f);
  }

  verify_reply_flow(rp);
  return rp;
}

}  // namespace ccref::refine
