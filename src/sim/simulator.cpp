#include "sim/simulator.hpp"

#include <algorithm>
#include <set>

#include "support/rng.hpp"

namespace ccref::sim {

using runtime::AsyncState;
using runtime::AsyncSystem;

double SimStats::fairness_index() const {
  if (remotes.empty()) return 1.0;
  double sum = 0, sumsq = 0;
  for (const auto& r : remotes) {
    sum += static_cast<double>(r.ops_completed);
    sumsq += static_cast<double>(r.ops_completed) *
             static_cast<double>(r.ops_completed);
  }
  if (sumsq == 0) return 1.0;
  return (sum * sum) / (static_cast<double>(remotes.size()) * sumsq);
}

namespace {

struct OpCursor {
  std::size_t next = 0;          // index into the remote's op list
  std::uint64_t activated = 0;   // step at which the current op became head
};

/// Advance cursors past every op whose goal the remote has reached.
void settle(const AsyncState& s, const Workload& w,
            std::vector<OpCursor>& cursors, std::uint64_t step,
            SimStats& stats) {
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    auto& cur = cursors[i];
    const auto& ops = w.per_remote[i];
    while (cur.next < ops.size() && !s.remotes[i].transient &&
           s.remotes[i].state == ops[cur.next].goal) {
      std::uint64_t latency = step - cur.activated;
      auto& rs = stats.remotes[i];
      ++rs.ops_completed;
      rs.latency_total += latency;
      rs.latency_max = std::max(rs.latency_max, latency);
      ++cur.next;
      cur.activated = step;
    }
  }
}

/// Point the stall diagnostics at the first remote with an incomplete op:
/// which op is blocked and what the queues around that remote look like.
void fill_stall(Stall& stall, const AsyncState& s, const Workload& w,
                const std::vector<OpCursor>& cursors) {
  stall.home_buffer = s.home.buffer.size();
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i].next >= w.per_remote[i].size()) continue;
    stall.op = w.per_remote[i][cursors[i].next].name;
    stall.remote = static_cast<int>(i);
    stall.up_occupancy = s.up[i].size();
    stall.down_occupancy = s.down[i].size();
    return;
  }
}

[[nodiscard]] bool decision_allowed(const sem::Label& label,
                                    const Workload& w,
                                    const std::set<std::string>& vocab,
                                    const std::vector<OpCursor>& cursors) {
  if (label.decision.empty() || label.actor < 0) return true;
  // Decisions outside the workload's vocabulary are obligatory protocol
  // actions (e.g. answering an invalidation) and cannot be refused.
  if (!vocab.contains(label.decision)) return true;
  const auto& ops = w.per_remote[label.actor];
  const auto& cur = cursors[label.actor];
  if (cur.next >= ops.size()) return false;  // no work left for this remote
  const Op& op = ops[cur.next];
  return std::find(op.decisions.begin(), op.decisions.end(),
                   label.decision) != op.decisions.end();
}

}  // namespace

SimStats simulate(const AsyncSystem& system, const Workload& workload,
                  const SimOptions& options) {
  const int n = system.num_remotes();
  CCREF_REQUIRE(static_cast<int>(workload.per_remote.size()) == n);

  SimStats stats;
  stats.remotes.resize(n);
  Rng rng(options.seed);
  AsyncState state = system.initial();
  const std::set<std::string>& vocab = workload.vocabulary;
  std::vector<OpCursor> cursors(n);

  std::vector<std::size_t> eligible;
  for (stats.steps = 0; stats.steps < options.max_steps; ++stats.steps) {
    settle(state, workload, cursors, stats.steps, stats);

    bool all_done = true;
    for (int i = 0; i < n; ++i)
      if (cursors[i].next < workload.per_remote[i].size()) all_done = false;
    if (all_done) {
      stats.finished = true;
      break;
    }

    auto succs = system.successors(state);
    eligible.clear();
    for (std::size_t t = 0; t < succs.size(); ++t)
      if (decision_allowed(succs[t].second, workload, vocab, cursors))
        eligible.push_back(t);
    if (eligible.empty()) {
      stats.stall.reason = "no eligible transition in " +
                           system.describe(state);
      fill_stall(stats.stall, state, workload, cursors);
      break;
    }
    auto& [next, label] = succs[eligible[rng.below(eligible.size())]];
    stats.req += label.sent_req;
    stats.ack += label.sent_ack;
    stats.nack += label.sent_nack;
    stats.repl += label.sent_repl;
    if (label.completes_rendezvous) ++stats.completions;
    state = std::move(next);
  }
  if (!stats.finished && !stats.stall.stalled()) {
    stats.stall.reason = "step budget exhausted";
    fill_stall(stats.stall, state, workload, cursors);
  }
  for (const auto& r : stats.remotes) stats.ops_total += r.ops_completed;
  return stats;
}

}  // namespace ccref::sim
