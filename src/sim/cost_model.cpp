#include "sim/cost_model.hpp"

namespace ccref::sim {

std::optional<CostModel> CostModel::preset(const std::string& name) {
  if (name.empty() || name == "avalanche") return CostModel{};
  if (name == "uniform") {
    CostModel m;
    m.link = 1;
    m.home_occupancy = 0;
    m.wbuf_drain = 0;
    m.flat = true;
    return m;
  }
  if (name == "dsm") {
    CostModel m;
    m.link = 40;
    m.memory = 100;
    m.block_words = 4;
    m.home_occupancy = 8;
    m.wbuf_drain = 10;
    return m;
  }
  return std::nullopt;
}

}  // namespace ccref::sim
