#include "sim/stats.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "support/strings.hpp"

namespace ccref::sim {

int LatencyHistogram::bucket_of(std::uint64_t v) {
  if (v < kSub) return static_cast<int>(v);  // exact for tiny latencies
  const int decade = 63 - std::countl_zero(v);
  // Linear position of the top 3 bits below the leading one.
  const int sub = static_cast<int>((v >> (decade - 3)) & (kSub - 1));
  return decade * kSub + sub;
}

std::uint64_t LatencyHistogram::bucket_hi(int b) {
  if (b < kSub) return static_cast<std::uint64_t>(b);
  const int decade = b / kSub;
  const int sub = b % kSub;
  // Upper edge: next sub-bucket's lower edge minus one.
  return ((std::uint64_t{kSub} + sub + 1) << (decade - 3)) - 1;
}

void LatencyHistogram::record(std::uint64_t cycles) {
  const int b = bucket_of(cycles);
  if (buckets_.size() <= static_cast<std::size_t>(b))
    buckets_.resize(static_cast<std::size_t>(b) + 1, 0);
  ++buckets_[static_cast<std::size_t>(b)];
  ++count_;
  sum_ += cycles;
  max_ = std::max(max_, cycles);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (buckets_.size() < other.buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t b = 0; b < other.buckets_.size(); ++b)
    buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the percentile sample, 1-based ceiling (p99 of 100 = the 99th).
  const auto rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count_) + 0.9999999999);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank && buckets_[b])
      return std::min(bucket_hi(static_cast<int>(b)), max_);
  }
  return max_;
}

std::string Stall::to_string() const {
  if (reason.empty()) return "";
  std::string out = reason;
  if (!op.empty() || remote >= 0)
    out += strf(" [op=%s node=%d up=%zu down=%zu hbuf=%zu]",
                op.empty() ? "-" : op.c_str(), remote, up_occupancy,
                down_occupancy, home_buffer);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Stall& s) {
  return os << s.to_string();
}

double DesStats::fairness_index() const {
  if (nodes.empty()) return 1.0;
  double sum = 0, sumsq = 0;
  for (const auto& n : nodes) {
    sum += static_cast<double>(n.completed);
    sumsq += static_cast<double>(n.completed) *
             static_cast<double>(n.completed);
  }
  if (sumsq == 0) return 1.0;
  return (sum * sum) / (static_cast<double>(nodes.size()) * sumsq);
}

void DesStats::merge(const DesStats& other) {
  events += other.events;
  cycles = std::max(cycles, other.cycles);
  req += other.req;
  ack += other.ack;
  nack += other.nack;
  repl += other.repl;
  completions += other.completions;
  ops_total += other.ops_total;
  retries += other.retries;
  memory_accesses += other.memory_accesses;
  c2c_transfers += other.c2c_transfers;
  write_backs += other.write_backs;
  home_busy_cycles += other.home_busy_cycles;
  wbuf_hits += other.wbuf_hits;
  wbuf_drains += other.wbuf_drains;
  instances += other.instances;
  windows += other.windows;
  latency.merge(other.latency);
  if (nodes.size() < other.nodes.size()) nodes.resize(other.nodes.size());
  for (std::size_t i = 0; i < other.nodes.size(); ++i)
    nodes[i].completed += other.nodes[i].completed;
  finished = finished && other.finished;
  if (!stall.stalled() && other.stall.stalled()) stall = other.stall;
}

}  // namespace ccref::sim
