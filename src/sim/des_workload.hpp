// Workload sources for the discrete-event simulator.
//
// One interface, three producers: an adapter over the random-step
// simulator's sim::Workload (used by the cross-engine agreement tests),
// synthetic generators (migratory/invalidate access streams and an
// open-loop lock_server arrival process that scales to millions of
// clients), and a trace-file replayer (sim/trace.hpp).
//
// An OpSource hands out ops per node, in that node's program order. The
// engine may call next() concurrently for DIFFERENT nodes (parallel lanes);
// implementations keep per-node cursors/RNG streams so node programs are
// independent of global call order — the same seed yields the same per-node
// stream no matter how many lanes run.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ir/process.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"
#include "support/rng.hpp"

namespace ccref::sim {

/// One operation for the discrete-event engine. `name` and `decisions`
/// borrow from the owning source (stable for its lifetime); copies are two
/// pointers, not string churn.
struct DesOp {
  const char* name = "";
  std::uint64_t addr = 0;
  const std::vector<std::string>* decisions = nullptr;
  ir::StateId goal = ir::kNoState;
  // A second state that also satisfies the op: a read is served by S *or*
  // M (a node re-reading a block it wrote must not wait for S — it never
  // downgrades, and the op would wedge with empty channels).
  ir::StateId alt_goal = ir::kNoState;
  std::uint64_t think = 0;  // cycles before issue (after prior completion)
  bool write = false;       // a store: eligible for the write buffer
};

class OpSource {
 public:
  virtual ~OpSource() = default;
  [[nodiscard]] virtual std::uint32_t num_nodes() const = 0;
  /// Controllable decision labels (the gate's vocabulary).
  [[nodiscard]] virtual const std::set<std::string>& vocabulary() const = 0;
  /// Next op in `node`'s program order; false when the stream is done.
  virtual bool next(std::uint32_t node, DesOp& op) = 0;
};

/// Protocol-specific mapping from trace mnemonics (r/w/acq/rel/evict) to
/// decision sets and goal states. Built by protocol name; unknown protocols
/// get nullopt.
struct OpSpec {
  std::string mnemonic;
  std::vector<std::string> decisions;
  ir::StateId goal = ir::kNoState;
  bool write = false;
  ir::StateId alt_goal = ir::kNoState;  // stronger state that also serves
};

class OpMap {
 public:
  [[nodiscard]] static std::optional<OpMap> for_protocol(
      const ir::Protocol& p);
  [[nodiscard]] const OpSpec* find(const std::string& mnemonic) const;

  std::vector<OpSpec> specs;
  std::set<std::string> vocabulary;
  /// The mnemonic issued between accesses to relinquish the line/lock
  /// ("rel"); synthetic generators pair every access with it.
  std::string release;
};

/// Adapter over sim::Workload: same ops, same order, addr 0 for everything,
/// zero think time — the configuration the agreement tests compare engines
/// under.
class WorkloadSource final : public OpSource {
 public:
  explicit WorkloadSource(const Workload& w)
      : w_(&w), cursors_(w.per_remote.size(), 0) {}

  [[nodiscard]] std::uint32_t num_nodes() const override {
    return static_cast<std::uint32_t>(w_->per_remote.size());
  }
  [[nodiscard]] const std::set<std::string>& vocabulary() const override {
    return w_->vocabulary;
  }
  bool next(std::uint32_t node, DesOp& op) override;

 private:
  const Workload* w_;
  std::vector<std::size_t> cursors_;
};

/// Synthetic open/closed-loop generator. Each node performs `ops_per_node`
/// access/release pairs against a uniform random address; think times are
/// uniform in [0, 2*think_mean]. With `arrival_window > 0` the FIRST op of
/// each node is offset uniformly inside the window — an open-loop arrival
/// process (the millions-of-clients lock_server configuration).
struct SyntheticConfig {
  std::string kind = "lock_server";  // lock_server | migratory | invalidate
  std::uint32_t nodes = 1024;
  std::uint32_t ops_per_node = 4;  // access/release pairs
  std::uint64_t addresses = 1;
  double write_fraction = 0.3;  // migratory/invalidate: store probability
  std::uint64_t think_mean = 32;
  std::uint64_t arrival_window = 0;
  std::uint64_t seed = 1;
};

class SyntheticSource final : public OpSource {
 public:
  /// `p` must be the protocol named by `cfg.kind`.
  SyntheticSource(const ir::Protocol& p, const SyntheticConfig& cfg);

  [[nodiscard]] std::uint32_t num_nodes() const override {
    return cfg_.nodes;
  }
  [[nodiscard]] const std::set<std::string>& vocabulary() const override {
    return map_.vocabulary;
  }
  bool next(std::uint32_t node, DesOp& op) override;

 private:
  struct NodeCursor {
    Rng rng;
    std::uint32_t pairs_left = 0;
    bool release_next = false;
    std::uint64_t addr = 0;
    bool started = false;
  };

  SyntheticConfig cfg_;
  OpMap map_;
  const OpSpec* read_ = nullptr;
  const OpSpec* write_ = nullptr;
  const OpSpec* release_ = nullptr;
  std::vector<NodeCursor> cursors_;
};

/// Replays a parsed trace; `p` selects the mnemonic mapping.
class TraceSource final : public OpSource {
 public:
  TraceSource(const ir::Protocol& p, const Trace& trace);

  [[nodiscard]] std::uint32_t num_nodes() const override {
    return static_cast<std::uint32_t>(per_node_.size());
  }
  [[nodiscard]] const std::set<std::string>& vocabulary() const override {
    return map_.vocabulary;
  }
  bool next(std::uint32_t node, DesOp& op) override;

 private:
  const Trace* trace_;
  OpMap map_;
  std::vector<std::vector<std::uint32_t>> per_node_;  // record indices
  std::vector<std::size_t> cursors_;
};

}  // namespace ccref::sim
