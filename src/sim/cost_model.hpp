// Cycle cost model for the discrete-event simulator.
//
// Follows the Cache-Simulator evaluation design the ROADMAP adopts: a plain
// memory access costs 100 cycles, a cache-to-cache transfer of an N-word
// block costs 4N + (P+1) cycles (P processors arbitrating the path), and
// control messages pay a fixed link latency. In the star topology every
// message is classified by direction and payload: data sourced by the home
// is a memory access, data sourced by a remote cache is a cache-to-cache
// transfer, everything else (requests, acks, nacks) is control traffic.
// The home directory additionally has an occupancy: it processes one
// incoming message per `home_occupancy` cycles, which is what creates
// queueing at the hot home under contention.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace ccref::sim {

struct CostModel {
  std::uint64_t link = 4;             // control-message latency (cycles)
  std::uint64_t memory = 100;         // home memory access for data it sends
  std::uint64_t block_words = 4;      // N in the 4N + (P+1) c2c formula
  std::uint64_t home_occupancy = 2;   // directory service time per message
  std::uint64_t wbuf_drain = 10;      // per-store drain cost (write buffer)
  bool flat = false;                  // every message costs `link` (uniform)

  /// Cache-to-cache transfer latency with `p` processors on the path.
  [[nodiscard]] std::uint64_t c2c(int p) const {
    return 4 * block_words + static_cast<std::uint64_t>(p) + 1;
  }

  /// Latency of one message: `data` when it carries a payload (Req/Repl
  /// with non-empty payload), `from_home` by sender side.
  [[nodiscard]] std::uint64_t latency(bool data, bool from_home,
                                      int p) const {
    if (flat || !data) return link;
    return from_home ? memory + link : c2c(p) + link;
  }

  /// Named presets for `--cost-model`: "avalanche" (the defaults above),
  /// "uniform" (every message 1 cycle, free directory — timing-neutral, used
  /// by the agreement tests), "dsm" (software DSM: 10× link, 4× occupancy —
  /// Golab's cost separation between CC and DSM access). Returns nullopt for
  /// unknown names.
  [[nodiscard]] static std::optional<CostModel> preset(
      const std::string& name);
};

}  // namespace ccref::sim
