#include "sim/des.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#ifdef CCREF_DES_DEBUG_WEDGE
#include <cstdio>
#endif
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/async_exec.hpp"
#include "support/calendar_queue.hpp"
#include "support/event_pool.hpp"
#include "support/node_set.hpp"

namespace ccref::sim {

using runtime::AsyncExec;
using runtime::AsyncState;
using runtime::AsyncSystem;
using runtime::ExecResult;
using runtime::Meta;
using runtime::SendLog;

namespace {

constexpr std::uint64_t kNever = ~std::uint64_t{0};

struct Event {
  enum Kind : std::uint8_t {
    kIssue,        // a = node: its current op becomes eligible
    kDeliverUp,    // a = instance, b = channel: one up message arrived
    kDeliverDown,  // a = instance, b = channel: one down message arrived
    kService,      // a = instance: the busy home directory frees up
  };
  Kind kind;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct Instance {
  std::uint64_t addr = 0;
  std::uint32_t idx = 0;  // index within the owning lane
  AsyncState st;
  std::uint64_t busy_until = 0;  // home directory occupancy
  std::uint64_t blocked_up = 0;  // deliver_up blocked: needs down[i] slack
  std::uint64_t dirty = 0;       // slots needing remote_step attempts
  // Slots whose bound node has an op in flight HERE. This mask is the only
  // liveness source the lane consults: a node's NodeState is owned by
  // whichever lane runs its current op, so peeking at it through a stale
  // slot binding would race with that lane. The mask is maintained entirely
  // by the owning lane (set in bind(), cleared at completion).
  std::uint64_t bound = 0;
  std::vector<std::uint64_t> up_free, down_free;  // channel next-free time
  std::vector<std::uint16_t> up_pending;  // arrived-but-undelivered counts
  std::vector<std::int32_t> slot_node;    // bound node per slot, -1 free
  std::deque<std::uint32_t> waiting;      // nodes parked for a slot
  std::uint8_t rr_next = 0;               // round-robin home service cursor
  bool service_scheduled = false;         // a kService event is pending
#ifdef CCREF_DES_DEBUG_WEDGE
  std::vector<std::uint64_t> dbg_push_down, dbg_pop_down;
#endif
};

struct NodeState {
  DesOp op;
  std::uint64_t activated = 0;   // issue (or park) time of the current op
  std::uint64_t bound_addr = 0;
  std::uint64_t wbuf_penalty = 0;  // drain cycles charged to the next issue
  std::int32_t slot = -1;
  std::uint32_t wbuf = 0;  // retired stores in the write buffer
  bool active = false;     // an op is fetched and incomplete
  bool issued = false;     // bound and visible to the decision gate
  bool parked = false;     // waiting for a slot
  bool wbuf_bypass = false;  // next store must take the protocol path
  bool done = false;         // stream exhausted
};

struct Handoff {
  int lane;
  std::uint32_t node;
  std::uint64_t time;
};

struct Lane {
  int idx = 0;
  CalendarQueue cal;
  EventPool<Event> pool;
  std::unordered_map<std::uint64_t, std::uint32_t> inst_of;
  std::vector<std::unique_ptr<Instance>> instances;
  DesStats stats;
  std::uint64_t now = 0;
  std::uint64_t next_time = kNever;  // first event at/after the window end
  std::uint64_t streams_done = 0;
  std::vector<Handoff> outbox;
};

class Engine {
 public:
  Engine(const refine::RefinedProtocol& refined, OpSource& source,
         const DesOptions& opts)
      : opts_(opts),
        source_(&source),
        num_nodes_(source.num_nodes()),
        w_(std::max(1, std::min({opts.slot_cap, kMaxNodes,
                                 static_cast<int>(std::max<std::uint32_t>(
                                     1, source.num_nodes()))}))),
        sys_(refined, w_),
        exec_(sys_),
        vocab_(&source.vocabulary()),
        initial_(sys_.initial()) {
    const ir::Protocol& p = sys_.protocol();
    msg_data_.resize(p.messages.size());
    for (std::size_t m = 0; m < p.messages.size(); ++m)
      msg_data_[m] = !p.messages[m].payload.empty();
    for (std::size_t v = 0; v < p.home.vars.size(); ++v)
      if (p.home.vars[v].type == ir::Type::Node ||
          p.home.vars[v].type == ir::Type::NodeSet)
        home_node_vars_.push_back(
            {static_cast<ir::VarId>(v),
             p.home.vars[v].type == ir::Type::NodeSet});
    const int lanes = std::max(1, opts_.lanes);
    lanes_.resize(lanes);
    for (int l = 0; l < lanes; ++l) {
      lanes_[l] = std::make_unique<Lane>();
      lanes_[l]->idx = l;
      lanes_[l]->stats.nodes.resize(num_nodes_);
    }
    nodes_.resize(num_nodes_);
  }

  DesStats run();

 private:
  // ---- gate -----------------------------------------------------------------
  struct Gate final : runtime::DecisionGate {
    const Engine* e = nullptr;
    const Instance* a = nullptr;
    Gate(const Engine* e_, const Instance* a_) : e(e_), a(a_) {}
    [[nodiscard]] bool allows(int r,
                              const std::string& d) const override {
      if (d.empty()) return true;
      if (!e->vocab_->contains(d)) return true;  // obligatory action
      // Only consult NodeState behind the lane-local `bound` mask: a set
      // bit proves the node's current op runs on this lane, so the read
      // cannot race with another lane rebinding the node.
      if (!(a->bound >> r & 1)) return false;
      const std::int32_t node = a->slot_node[r];
      const NodeState& ns = e->nodes_[node];
      const auto& dec = *ns.op.decisions;
      return std::find(dec.begin(), dec.end(), d) != dec.end();
    }
  };

  [[nodiscard]] int lane_of(std::uint64_t addr) const {
    return static_cast<int>(addr % lanes_.size());
  }

  void schedule(Lane& l, std::uint64_t t, Event ev) {
    auto h = l.pool.alloc();
    l.pool[h] = ev;
    l.cal.push(t, h);
  }

  Instance& instance(Lane& l, std::uint64_t addr) {
    auto it = l.inst_of.find(addr);
    if (it != l.inst_of.end()) return *l.instances[it->second];
    auto inst = std::make_unique<Instance>();
    inst->addr = addr;
    inst->idx = static_cast<std::uint32_t>(l.instances.size());
    inst->st = initial_;
    inst->up_free.assign(w_, 0);
    inst->down_free.assign(w_, 0);
    inst->up_pending.assign(w_, 0);
    inst->slot_node.assign(w_, -1);
#ifdef CCREF_DES_DEBUG_WEDGE
    inst->dbg_push_down.assign(w_, 0);
    inst->dbg_pop_down.assign(w_, 0);
#endif
    l.inst_of.emplace(addr, inst->idx);
    l.instances.push_back(std::move(inst));
    ++l.stats.instances;
    return *l.instances.back();
  }

  /// Can slot `s` be rebound to a new node? True when the machine is
  /// indistinguishable from a fresh remote: initial state/store, no
  /// transient, empty channels, and no home-side reference (buffered
  /// request, pending transient target, Node/NodeSet variable).
  [[nodiscard]] bool detachable(const Instance& a, int s) const {
    // An op in flight pins the slot. The lane-local mask answers this
    // without touching NodeState: a node parked behind a stale binding may
    // already be running on another lane, and reading its fields here
    // would race with that lane's bind().
    if (a.bound >> s & 1) return false;
    const auto& rm = a.st.remotes[s];
    if (rm.transient) return false;
    // A buffered home request only pins the slot while its rendezvous is
    // live (home still transient toward us — checked below). Otherwise it
    // is R3-dead: the elide-ack race leaves a stale `inv` at a remote that
    // released before it arrived, and the reference semantics delete it on
    // the remote's next active send — which a rebound node's first issue
    // performs, so acquire_slot may drop it when it rebinds.
    if (rm.state != initial_.remotes[0].state) return false;
    if (!(rm.store == initial_.remotes[0].store)) return false;
    if (!a.st.up[s].empty() || !a.st.down[s].empty()) return false;
    if (a.st.home.transient &&
        a.st.home.t_target == static_cast<std::uint8_t>(s))
      return false;
    for (const auto& msg : a.st.home.buffer)
      if (msg.src == static_cast<std::uint8_t>(s)) return false;
    for (const auto& [var, is_set] : home_node_vars_) {
      const ir::Value v = a.st.home.store.get(var);
      if (is_set ? ((v >> s) & 1u) : (v == static_cast<ir::Value>(s)))
        return false;
    }
    return true;
  }

  [[nodiscard]] int acquire_slot(Instance& a) {
    for (int s = 0; s < w_; ++s)
      if (a.slot_node[s] < 0) return s;
    for (int s = 0; s < w_; ++s)
      if (detachable(a, s)) {
        a.st.remotes[s].buffer.reset();  // R3: stale request dies here
        a.slot_node[s] = -1;
        return s;
      }
    return -1;
  }

  void account(Lane& l, Instance& a, const sem::Label& lab,
               const SendLog& log, std::uint64_t now) {
    ++l.stats.events;
    l.stats.req += lab.sent_req;
    l.stats.ack += lab.sent_ack;
    l.stats.nack += lab.sent_nack;
    l.stats.repl += lab.sent_repl;
    if (lab.completes_rendezvous) ++l.stats.completions;
    for (std::uint8_t e = 0; e < log.count; ++e) {
      const auto& s = log.e[e];
      const bool data = (s.meta == Meta::Req || s.meta == Meta::Repl) &&
                        msg_data_[s.msg];
      const bool from_home = !s.up;
      const std::uint64_t lat = opts_.cost.latency(data, from_home, w_);
      auto& free_at = s.up ? a.up_free[s.node] : a.down_free[s.node];
      // A link carries one message per cycle: the +1 serializes same-cycle
      // sends and keeps per-channel arrival times strictly increasing
      // (FIFO delivery order needs no tie-breaking).
      const std::uint64_t arrival = std::max(now + lat, free_at + 1);
      free_at = arrival;
      schedule(l, arrival,
               {s.up ? Event::kDeliverUp : Event::kDeliverDown, a.idx,
                s.node});
#ifdef CCREF_DES_DEBUG_WEDGE
      if (!s.up) ++a.dbg_push_down[s.node];
#endif
      if (data) {
        if (from_home)
          ++l.stats.memory_accesses;
        else if (s.meta == Meta::Repl)
          ++l.stats.c2c_transfers;  // cache serves data on demand
        else
          ++l.stats.write_backs;  // cache pushes data home (e.g. LR)
      }
    }
  }

  void complete(Lane& l, std::uint32_t node, std::uint64_t now) {
    NodeState& ns = nodes_[node];
    l.stats.latency.record(now - ns.activated);
    ++l.stats.ops_total;
    ++l.stats.nodes[node].completed;
    ns.active = ns.issued = false;
    DesOp op;
    if (!source_->next(node, op)) {
      ns.done = true;
      ++l.streams_done;
      return;
    }
    ns.op = op;
    ns.active = true;
    const std::uint64_t t = now + op.think + ns.wbuf_penalty;
    ns.wbuf_penalty = 0;
    const int target = lane_of(op.addr);
    if (target == l.idx)
      schedule(l, t, {Event::kIssue, node, 0});
    else
      l.outbox.push_back({target, node, t});
  }

  void settle_slot(Lane& l, Instance& a, int s, std::uint64_t now) {
    if (!(a.bound >> s & 1)) return;  // no op in flight on this slot
    const std::int32_t node = a.slot_node[s];
    NodeState& ns = nodes_[node];  // lane-owned: the mask bit proves it
    if (a.st.remotes[s].transient) return;
    const ir::StateId st = a.st.remotes[s].state;
    if (st != ns.op.goal && st != ns.op.alt_goal) return;
    a.bound &= ~(std::uint64_t{1} << s);
    complete(l, node, now);
  }

  /// Bind parked nodes to newly available slots. Returns true if any bound.
  bool try_waiters(Lane& l, Instance& a, std::uint64_t now) {
    bool bound = false;
    while (!a.waiting.empty()) {
      const int s = acquire_slot(a);
      if (s < 0) break;
      const std::uint32_t node = a.waiting.front();
      a.waiting.pop_front();
      bind(l, a, node, s, now);
      bound = true;
    }
    return bound;
  }

  void bind(Lane& l, Instance& a, std::uint32_t node, int s,
            std::uint64_t now) {
    NodeState& ns = nodes_[node];
    a.slot_node[s] = static_cast<std::int32_t>(node);
    ns.slot = s;
    ns.bound_addr = a.addr;
    ns.issued = true;
    ns.parked = false;
    // Queueing time while parked counts toward the op's latency:
    // `activated` was stamped when the op was first issued.
    if (!a.st.remotes[s].transient &&
        (a.st.remotes[s].state == ns.op.goal ||
         a.st.remotes[s].state == ns.op.alt_goal)) {
      complete(l, node, now);
      return;
    }
    a.bound |= std::uint64_t{1} << s;  // op now in flight on this slot
    a.dirty |= std::uint64_t{1} << s;
  }

  void pump(Lane& l, Instance& a, std::uint64_t now) {
    const Gate gate(this, &a);
    sem::Label lab;
    SendLog log;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (;;) {
        log.clear();
        if (exec_.home_step(a.st, lab, &log) != ExecResult::Applied) break;
        progressed = true;
        account(l, a, lab, log, now);
      }
      std::uint64_t mask = a.dirty;
      a.dirty = 0;
      while (mask) {
        const int s = std::countr_zero(mask);
        mask &= mask - 1;
        for (;;) {
          log.clear();
          if (exec_.remote_step(a.st, s, gate, lab, &log) !=
              ExecResult::Applied)
            break;
          progressed = true;
          account(l, a, lab, log, now);
          settle_slot(l, a, s, now);
        }
      }
      if (a.dirty) progressed = true;
      if (try_waiters(l, a, now)) progressed = true;
    }
  }

  /// Serve arrived up-messages at the home directory. One service cursor per
  /// instance scans the channels round-robin so that a retry storm from
  /// contending requesters cannot starve the one channel whose head would
  /// complete the home's transient (per-channel retry events racing on equal
  /// timestamps did exactly that — a deterministic livelock). At most one
  /// kService wake-up is outstanding per instance.
  void service(Lane& l, Instance& a, std::uint64_t now) {
    sem::Label lab;
    SendLog log;
    for (;;) {
      bool any_pending = false;
      for (int k = 0; k < w_; ++k)
        if (a.up_pending[k] > 0) {
          any_pending = true;
          break;
        }
      if (!any_pending) return;
      if (a.busy_until > now) {
        if (!a.service_scheduled) {
          a.service_scheduled = true;
          schedule(l, a.busy_until, {Event::kService, a.idx, 0});
        }
        return;
      }
      int chosen = -1;
      for (int k = 0; k < w_; ++k) {
        const int i = (a.rr_next + k) % w_;
        if (a.up_pending[i] == 0) continue;
        if (a.blocked_up & (std::uint64_t{1} << i)) continue;
        chosen = i;
        break;
      }
      if (chosen < 0) return;  // everything pending is blocked on down slack
      log.clear();
      const ExecResult r = exec_.deliver_up(a.st, chosen, lab, &log);
      if (r == ExecResult::Blocked) {
        a.blocked_up |= std::uint64_t{1} << chosen;
        continue;  // skip this channel, try the next pending one
      }
      CCREF_ASSERT(r == ExecResult::Applied);
      --a.up_pending[chosen];
      a.rr_next = static_cast<std::uint8_t>((chosen + 1) % w_);
      account(l, a, lab, log, now);
      if (opts_.cost.home_occupancy) {
        a.busy_until = now + opts_.cost.home_occupancy;
        l.stats.home_busy_cycles += opts_.cost.home_occupancy;
      }
      a.dirty |= std::uint64_t{1} << chosen;  // up[chosen] slack freed
    }
  }

  void issue(Lane& l, std::uint32_t node, std::uint64_t now) {
    NodeState& ns = nodes_[node];
    CCREF_ASSERT(ns.active);
    if (opts_.write_buffer && ns.op.write) {
      if (!ns.wbuf_bypass &&
          ns.wbuf < static_cast<std::uint32_t>(
                        std::max(1, opts_.write_buffer_capacity))) {
        // Retire the store into the write buffer: no protocol traffic.
        ++ns.wbuf;
        ++l.stats.wbuf_hits;
        ns.activated = now;
        complete(l, node, now);
        return;
      }
      if (!ns.wbuf_bypass) {
        // Buffer full: this store models the drain batch — flush and take
        // the protocol path after paying the drain cost.
        ++l.stats.wbuf_drains;
        const std::uint64_t drain = opts_.cost.wbuf_drain * ns.wbuf;
        ns.wbuf = 0;
        ns.wbuf_bypass = true;
        schedule(l, now + drain, {Event::kIssue, node, 0});
        return;
      }
      ns.wbuf_bypass = false;
    }
    Instance& a = instance(l, ns.op.addr);
    int s = -1;
    if (ns.slot >= 0 && ns.bound_addr == ns.op.addr &&
        ns.slot < w_ &&
        a.slot_node[ns.slot] == static_cast<std::int32_t>(node))
      s = ns.slot;  // still bound from a previous op (cache residency)
    ns.activated = now;
    if (s < 0) {
      s = acquire_slot(a);
      if (s < 0) {
        ns.parked = true;
        a.waiting.push_back(node);
        return;
      }
      bind(l, a, node, s, now);
    } else {
      bind(l, a, node, s, now);
    }
    pump(l, a, now);
  }

  void dispatch(Lane& l, const Event& ev, std::uint64_t now) {
    switch (ev.kind) {
      case Event::kIssue:
        issue(l, ev.a, now);
        return;
      case Event::kDeliverUp: {
        Instance& a = *l.instances[ev.a];
        ++a.up_pending[ev.b];
        service(l, a, now);
        pump(l, a, now);
        return;
      }
      case Event::kService: {
        Instance& a = *l.instances[ev.a];
        a.service_scheduled = false;
        service(l, a, now);
        pump(l, a, now);
        return;
      }
      case Event::kDeliverDown: {
        Instance& a = *l.instances[ev.a];
        const int i = static_cast<int>(ev.b);
#ifdef CCREF_DES_DEBUG_WEDGE
        ++a.dbg_pop_down[i];
#endif
        CCREF_ASSERT(!a.st.down[i].empty());
        const Meta head = a.st.down[i].front().meta;
        if (head == Meta::Nack) ++l.stats.retries;
        if (opts_.write_buffer && head == Meta::Req &&
            (a.bound >> i & 1)) {
          // Coherence event at this cache: the write buffer drains before
          // the request is answered. Only while the owning node is mid-op
          // here — an idle resident's NodeState may already belong to
          // another lane, so its buffered stores are instead charged when
          // the buffer next fills at issue time.
          NodeState& ns = nodes_[a.slot_node[i]];
          if (ns.wbuf > 0) {
            ++l.stats.wbuf_drains;
            ns.wbuf_penalty += opts_.cost.wbuf_drain * ns.wbuf;
            ns.wbuf = 0;
          }
        }
        sem::Label lab;
        const ExecResult r = exec_.deliver_down(a.st, i, lab, nullptr);
        CCREF_ASSERT(r == ExecResult::Applied);
        account(l, a, lab, SendLog{}, now);
        a.dirty |= std::uint64_t{1} << i;
        if (a.blocked_up & (std::uint64_t{1} << i)) {
          a.blocked_up &= ~(std::uint64_t{1} << i);
          service(l, a, now);
        }
        settle_slot(l, a, i, now);
        pump(l, a, now);
        return;
      }
    }
  }

  /// Process this lane's events strictly before `end`. Returns the time of
  /// the first unprocessed event (kNever when drained). `check_budget` is
  /// the single-lane path; multi-lane budgets are enforced at the barrier.
  std::uint64_t run_until(Lane& l, std::uint64_t end, bool check_budget) {
    std::uint64_t t = 0;
    std::uint32_t h = 0;
    while (l.cal.pop(t, h)) {
      if (t >= end) {
        l.cal.push(t, h);
        return t;
      }
      if (check_budget) {
        if (opts_.max_cycles && t > opts_.max_cycles) {
          l.cal.push(t, h);
          budget_stall_ = "cycle budget exhausted";
          return t;
        }
        if (opts_.max_events && l.stats.events >= opts_.max_events) {
          l.cal.push(t, h);
          budget_stall_ = "event budget exhausted";
          return t;
        }
      }
      const Event ev = l.pool[h];
      l.pool.release(h);
      l.now = t;
      dispatch(l, ev, t);
    }
    return kNever;
  }

  void seed();
  void fill_stall(DesStats& out) const;

  const DesOptions opts_;
  OpSource* source_;
  const std::uint32_t num_nodes_;
  const int w_;  // protocol remotes per address instance
  AsyncSystem sys_;
  AsyncExec exec_;
  const std::set<std::string>* vocab_;
  const AsyncState initial_;
  std::vector<bool> msg_data_;  // MsgId -> carries a payload
  std::vector<std::pair<ir::VarId, bool>> home_node_vars_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<NodeState> nodes_;
  std::string budget_stall_;

  // Multi-lane shared coordination (written only in the barrier completion
  // function, which runs exclusively while all lanes wait; lanes read after
  // the barrier releases them, so no synchronization beyond it is needed).
  std::uint64_t window_start_ = 0;
  std::uint64_t window_len_ = 0;  // current adaptive window length
  std::uint64_t windows_ = 0;     // barrier completions
  bool done_ = false;
};

void Engine::seed() {
  for (std::uint32_t node = 0; node < num_nodes_; ++node) {
    DesOp op;
    if (!source_->next(node, op)) {
      nodes_[node].done = true;
      ++lanes_[0]->streams_done;
      continue;
    }
    nodes_[node].op = op;
    nodes_[node].active = true;
    Lane& l = *lanes_[lane_of(op.addr)];
    schedule(l, op.think, {Event::kIssue, node, 0});
  }
}

void Engine::fill_stall(DesStats& out) const {
  for (std::uint32_t node = 0; node < num_nodes_; ++node) {
    const NodeState& ns = nodes_[node];
    if (ns.done) continue;
    Stall& st = out.stall;
    if (st.reason.empty())
      st.reason = ns.parked ? "no detachable slot at the address instance"
                            : "blocked mid-protocol";
    st.op = ns.active ? ns.op.name : "";
    st.remote = static_cast<int>(node);
    const Lane& l = *lanes_[lane_of(ns.op.addr)];
    auto it = l.inst_of.find(ns.op.addr);
    if (it != l.inst_of.end()) {
      const Instance& a = *l.instances[it->second];
#ifdef CCREF_DES_DEBUG_WEDGE
      std::fprintf(stderr, "WEDGE node=%u op=%s parked=%d slot=%d\n", node,
                   ns.op.name, ns.parked, ns.slot);
      for (auto& lp : lanes_)
        for (auto& ip : lp->instances) {
          std::fprintf(stderr, "  addr=%llu slots:",
                       (unsigned long long)ip->addr);
          for (int s = 0; s < w_; ++s)
            std::fprintf(stderr, " %d(det=%d,pd=%llu/%llu)",
                         ip->slot_node[s], detachable(*ip, s),
                         (unsigned long long)ip->dbg_push_down[s],
                         (unsigned long long)ip->dbg_pop_down[s]);
          std::fprintf(stderr, "\n  state: %s\n",
                       sys_.describe(ip->st).c_str());
        }
#endif
      st.home_buffer = a.st.home.buffer.size();
      if (ns.slot >= 0 && ns.slot < w_ &&
          a.slot_node[ns.slot] == static_cast<std::int32_t>(node)) {
        st.up_occupancy = a.st.up[ns.slot].size();
        st.down_occupancy = a.st.down[ns.slot].size();
      }
    }
    return;
  }
}

DesStats Engine::run() {
  seed();
  const int lanes = static_cast<int>(lanes_.size());

  if (lanes == 1) {
    Lane& l = *lanes_[0];
    run_until(l, kNever, /*check_budget=*/true);
  } else {
    window_len_ = std::max<std::uint64_t>(1, opts_.window);
    const std::uint64_t cap =
        opts_.window_max ? std::max(opts_.window_max, window_len_)
                         : window_len_;
    auto on_window = [this, cap]() noexcept {
      ++windows_;
      const std::uint64_t next = window_start_ + window_len_;
      std::uint64_t mint = kNever;
      bool handoff = false;
      for (auto& lp : lanes_) {
        for (const Handoff& h : lp->outbox) {
          handoff = true;
          const std::uint64_t t = std::max(h.time, next);
          schedule(*lanes_[h.lane], t, {Event::kIssue, h.node, 0});
          mint = std::min(mint, t);
        }
        lp->outbox.clear();
        mint = std::min(mint, lp->next_time);
      }
      if (mint == kNever) {
        done_ = true;
        return;
      }
      if (opts_.max_cycles && mint > opts_.max_cycles) {
        budget_stall_ = "cycle budget exhausted";
        done_ = true;
        return;
      }
      if (opts_.max_events) {
        std::uint64_t total = 0;
        for (auto& lp : lanes_) total += lp->stats.events;
        if (total >= opts_.max_events) {
          budget_stall_ = "event budget exhausted";
          done_ = true;
          return;
        }
      }
      // Adapt to the observed cross-lane horizon: a handoff-free window
      // proves the lanes ran independently for its whole span, so the next
      // one doubles; any handoff resets to the base so the clamp error of
      // interacting lanes stays bounded by `window`.
      window_len_ = handoff ? std::max<std::uint64_t>(1, opts_.window)
                            : std::min(window_len_ * 2, cap);
      window_start_ = std::max(next, (mint / window_len_) * window_len_);
    };
    std::barrier bar(lanes, on_window);
    auto lane_main = [&](int idx) {
      Lane& l = *lanes_[idx];
      for (;;) {
        l.next_time = run_until(l, window_start_ + window_len_,
                                /*check_budget=*/false);
        bar.arrive_and_wait();
        if (done_) break;
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(lanes);
    for (int t = 0; t < lanes; ++t) threads.emplace_back(lane_main, t);
    for (auto& t : threads) t.join();
  }

  DesStats out;
  out.nodes.resize(num_nodes_);
  std::uint64_t streams_done = 0;
  for (auto& lp : lanes_) {
    lp->stats.cycles = lp->now;
    out.merge(lp->stats);
    streams_done += lp->streams_done;
  }
  out.windows = windows_;
  if (opts_.max_cycles) out.cycles = std::min(out.cycles, opts_.max_cycles);
  out.finished = streams_done == num_nodes_ && budget_stall_.empty();
  if (!out.finished) {
    out.stall.reason = budget_stall_;
    fill_stall(out);
    if (out.stall.reason.empty()) out.stall.reason = "wedged";
  }
  return out;
}

}  // namespace

DesStats des_simulate(const refine::RefinedProtocol& refined,
                      OpSource& source, const DesOptions& options) {
  CCREF_REQUIRE(source.num_nodes() >= 1);
  CCREF_REQUIRE(options.lanes >= 1);
  CCREF_REQUIRE(options.window >= 1);
  Engine engine(refined, source, options);
  return engine.run();
}

}  // namespace ccref::sim
