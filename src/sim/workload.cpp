#include "sim/workload.hpp"

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace ccref::sim {

Workload migratory_workload(const ir::Protocol& protocol, int num_remotes,
                            int cycles) {
  const ir::StateId goal_v = protocol.remote.find_state("V");
  const ir::StateId goal_i = protocol.remote.find_state("I");
  CCREF_REQUIRE(goal_v != ir::kNoState && goal_i != ir::kNoState);
  Workload w;
  w.vocabulary = {"req", "evict", "write"};
  w.per_remote.resize(num_remotes);
  for (auto& q : w.per_remote) {
    q.reserve(2 * cycles);
    for (int c = 0; c < cycles; ++c) {
      q.push_back({"acquire", {"req"}, goal_v});
      q.push_back({"release", {"evict"}, goal_i});  // the LR send is obligatory
    }
  }
  return w;
}

Workload invalidate_workload(const ir::Protocol& protocol, int num_remotes,
                             int ops, double write_fraction,
                             std::uint64_t seed) {
  const ir::StateId goal_s = protocol.remote.find_state("S");
  const ir::StateId goal_m = protocol.remote.find_state("M");
  const ir::StateId goal_i = protocol.remote.find_state("I");
  CCREF_REQUIRE(goal_s != ir::kNoState && goal_m != ir::kNoState &&
                goal_i != ir::kNoState);
  Workload w;
  w.vocabulary = {"read", "write", "reqS", "reqX", "evict"};
  w.per_remote.resize(num_remotes);
  Rng rng(seed);
  for (auto& q : w.per_remote) {
    q.reserve(2 * ops);
    for (int c = 0; c < ops; ++c) {
      if (rng.chance(write_fraction)) {
        q.push_back({"write", {"write", "reqX"}, goal_m});
      } else {
        q.push_back({"read", {"read", "reqS"}, goal_s});
      }
      q.push_back({"release", {"evict"}, goal_i});  // drop/WB are obligatory
    }
  }
  return w;
}

}  // namespace ccref::sim
