// Workloads: per-remote sequences of CPU operations that drive a simulated
// asynchronous protocol.
//
// The asynchronous semantics exposes autonomous decisions (τ moves and
// active-request initiations) through sem::Label::decision; an Op names the
// decisions a remote is allowed to take until it reaches the op's goal
// state. Retries after nacks reuse the same decision label, so they are
// naturally permitted while the op is outstanding.
//
// Gating applies only to decisions in the workload's *vocabulary* (the union
// of all op decision labels): everything else — answering an invalidation
// with ID, writing back after a revocation — is an obligatory protocol
// action a CPU cannot refuse, and always remains eligible.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "ir/process.hpp"

namespace ccref::sim {

struct Op {
  std::string name;                    // "acquire", "release", ...
  std::vector<std::string> decisions;  // allowed decision labels
  ir::StateId goal = ir::kNoState;     // op completes here (non-transient)
};

struct Workload {
  std::vector<std::vector<Op>> per_remote;

  [[nodiscard]] std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& q : per_remote) n += q.size();
    return n;
  }

  /// The protocol's *controllable* decisions (CPU-driven τs and request
  /// initiations). Decisions outside this set are obligatory protocol
  /// actions and never gated. Generators fill this from protocol knowledge;
  /// it must cover every controllable label, not just the ones this
  /// particular workload happens to use (an all-write workload still needs
  /// "read" gated off).
  std::set<std::string> vocabulary;
};

/// Migratory workload: each remote performs `cycles` acquire/release pairs
/// (acquire the line, hold it, relinquish it).
[[nodiscard]] Workload migratory_workload(const ir::Protocol& protocol,
                                          int num_remotes, int cycles);

/// Invalidate workload: each remote performs `ops` acquire/release pairs;
/// each acquire is a write miss with probability `write_fraction`, else a
/// read miss. Seeded and fully deterministic.
[[nodiscard]] Workload invalidate_workload(const ir::Protocol& protocol,
                                           int num_remotes, int ops,
                                           double write_fraction,
                                           std::uint64_t seed);

}  // namespace ccref::sim
