#include "sim/trace.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"

namespace ccref::sim {

namespace {

const char* const kKnownOps[] = {"r", "w", "acq", "rel", "evict"};

[[nodiscard]] bool known_op(const std::string& op) {
  for (const char* k : kKnownOps)
    if (op == k) return true;
  return false;
}

/// Parse one unsigned field (decimal, or 0x-hex for addresses).
[[nodiscard]] bool parse_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  // strtoull accepts a sign and silently wraps: "-1" parses as
  // 0xFFFFFFFFFFFFFFFF. Trace fields are unsigned; reject signed spellings.
  if (tok[0] == '-' || tok[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 0);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = v;
  return true;
}

}  // namespace

bool parse_trace(const std::string& text, Trace& out, std::string& error) {
  Trace t;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    ++lineno;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (std::size_t hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);

    std::vector<std::string> tok;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                 line[i] == '\r'))
        ++i;
      std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r')
        ++i;
      if (i > start) tok.push_back(line.substr(start, i - start));
    }
    if (tok.empty()) continue;
    if (tok.size() != 4) {
      error = strf("line %d: expected 4 fields <node> <op> <addr> <think>, "
                   "got %zu",
                   lineno, tok.size());
      return false;
    }
    TraceRecord r;
    std::uint64_t node = 0;
    if (!parse_u64(tok[0], node) || node > 0xffffffffull) {
      error = strf("line %d: bad node id '%s'", lineno, tok[0].c_str());
      return false;
    }
    r.node = static_cast<std::uint32_t>(node);
    r.op = tok[1];
    if (!known_op(r.op)) {
      error = strf("line %d: unknown op '%s' (r/w/acq/rel/evict)", lineno,
                   tok[1].c_str());
      return false;
    }
    if (!parse_u64(tok[2], r.addr)) {
      error = strf("line %d: bad address '%s'", lineno, tok[2].c_str());
      return false;
    }
    if (!parse_u64(tok[3], r.think)) {
      error = strf("line %d: bad think time '%s'", lineno, tok[3].c_str());
      return false;
    }
    t.max_node = std::max(t.max_node, r.node);
    t.records.push_back(std::move(r));
  }
  out = std::move(t);
  error.clear();
  return true;
}

bool load_trace(const std::string& path, Trace& out, std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
    text.append(buf, got);
  std::fclose(f);
  if (!parse_trace(text, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

}  // namespace ccref::sim
