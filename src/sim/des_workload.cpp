#include "sim/des_workload.hpp"

#include "support/contracts.hpp"

namespace ccref::sim {

namespace {

/// Distinct per-node RNG streams from one seed: mix the node id through
/// splitmix-style constants so neighbouring nodes do not correlate.
[[nodiscard]] std::uint64_t node_seed(std::uint64_t seed,
                                      std::uint32_t node) {
  return seed ^ (0x9e3779b97f4a7c15ull * (node + 1));
}

}  // namespace

// ---- OpMap ------------------------------------------------------------------

const OpSpec* OpMap::find(const std::string& mnemonic) const {
  for (const auto& s : specs)
    if (s.mnemonic == mnemonic) return &s;
  return nullptr;
}

std::optional<OpMap> OpMap::for_protocol(const ir::Protocol& p) {
  OpMap m;
  if (p.name == "migratory") {
    const ir::StateId v = p.remote.find_state("V");
    const ir::StateId i = p.remote.find_state("I");
    CCREF_REQUIRE(v != ir::kNoState && i != ir::kNoState);
    m.vocabulary = {"req", "evict", "write"};
    m.specs = {{"r", {"req"}, v, false},
               {"w", {"req", "write"}, v, true},
               {"acq", {"req"}, v, false},
               {"rel", {"evict"}, i, false},
               {"evict", {"evict"}, i, false}};
    m.release = "rel";
    return m;
  }
  if (p.name == "invalidate") {
    const ir::StateId s = p.remote.find_state("S");
    const ir::StateId x = p.remote.find_state("M");
    const ir::StateId i = p.remote.find_state("I");
    CCREF_REQUIRE(s != ir::kNoState && x != ir::kNoState &&
                  i != ir::kNoState);
    m.vocabulary = {"read", "write", "reqS", "reqX", "evict"};
    // A read is served by S or by an already-held M (read-after-own-write
    // must not wait for a downgrade that never comes).
    m.specs = {{"r", {"read", "reqS"}, s, false, x},
               {"w", {"write", "reqX"}, x, true},
               {"acq", {"write", "reqX"}, x, false},
               {"rel", {"evict"}, i, false},
               {"evict", {"evict"}, i, false}};
    m.release = "rel";
    return m;
  }
  if (p.name == "lockserver") {
    const ir::StateId cs = p.remote.find_state("CS");
    const ir::StateId i = p.remote.find_state("I");
    CCREF_REQUIRE(cs != ir::kNoState && i != ir::kNoState);
    // Active sends surface the *message* name as the decision ("acq"); the
    // REL send is obligatory once unlocked, so only "unlock" gates it.
    m.vocabulary = {"acq", "unlock"};
    m.specs = {{"acq", {"acq"}, cs, false},
               {"rel", {"unlock"}, i, false}};
    m.release = "rel";
    return m;
  }
  return std::nullopt;
}

// ---- WorkloadSource ---------------------------------------------------------

bool WorkloadSource::next(std::uint32_t node, DesOp& op) {
  const auto& ops = w_->per_remote[node];
  std::size_t& cur = cursors_[node];
  if (cur >= ops.size()) return false;
  const Op& o = ops[cur++];
  op = DesOp{};
  op.name = o.name.c_str();
  op.decisions = &o.decisions;
  op.goal = o.goal;
  return true;
}

// ---- SyntheticSource --------------------------------------------------------

SyntheticSource::SyntheticSource(const ir::Protocol& p,
                                 const SyntheticConfig& cfg)
    : cfg_(cfg) {
  auto m = OpMap::for_protocol(p);
  CCREF_REQUIRE_MSG(m.has_value(),
                    "no op mapping for this protocol; synthetic workloads "
                    "support migratory/invalidate/lockserver");
  map_ = std::move(*m);
  read_ = map_.find(cfg_.kind == "lock_server" ? "acq" : "r");
  write_ = map_.find(cfg_.kind == "lock_server" ? "acq" : "w");
  release_ = map_.find(map_.release);
  CCREF_REQUIRE(read_ && write_ && release_);
  CCREF_REQUIRE(cfg_.nodes >= 1 && cfg_.addresses >= 1);
  cursors_.reserve(cfg_.nodes);
  for (std::uint32_t i = 0; i < cfg_.nodes; ++i)
    cursors_.push_back(NodeCursor{Rng(node_seed(cfg_.seed, i)),
                                  cfg_.ops_per_node, false, 0, false});
}

bool SyntheticSource::next(std::uint32_t node, DesOp& op) {
  NodeCursor& c = cursors_[node];
  op = DesOp{};
  if (c.release_next) {
    // Hold the line/lock briefly, then relinquish it.
    c.release_next = false;
    op.name = release_->mnemonic.c_str();
    op.decisions = &release_->decisions;
    op.goal = release_->goal;
    op.alt_goal = release_->alt_goal;
    op.think = cfg_.think_mean ? c.rng.below(cfg_.think_mean + 1) : 0;
    op.addr = c.addr;
    return true;
  }
  if (c.pairs_left == 0) return false;
  --c.pairs_left;
  c.addr = cfg_.addresses > 1 ? c.rng.below(cfg_.addresses) : 0;
  const OpSpec* spec =
      c.rng.chance(cfg_.write_fraction) ? write_ : read_;
  op.name = spec->mnemonic.c_str();
  op.decisions = &spec->decisions;
  op.goal = spec->goal;
  op.alt_goal = spec->alt_goal;
  op.write = spec->write;
  op.addr = c.addr;
  if (!c.started && cfg_.arrival_window > 0)
    op.think = c.rng.below(cfg_.arrival_window);  // open-loop arrival
  else
    op.think = cfg_.think_mean ? c.rng.below(2 * cfg_.think_mean + 1) : 0;
  c.started = true;
  c.release_next = true;
  return true;
}

// ---- TraceSource ------------------------------------------------------------

TraceSource::TraceSource(const ir::Protocol& p, const Trace& trace)
    : trace_(&trace) {
  auto m = OpMap::for_protocol(p);
  CCREF_REQUIRE_MSG(m.has_value(), "no trace op mapping for this protocol");
  map_ = std::move(*m);
  per_node_.resize(trace.num_nodes());
  for (std::uint32_t r = 0; r < trace.records.size(); ++r)
    per_node_[trace.records[r].node].push_back(r);
  cursors_.assign(per_node_.size(), 0);
}

bool TraceSource::next(std::uint32_t node, DesOp& op) {
  std::size_t& cur = cursors_[node];
  const auto& idx = per_node_[node];
  if (cur >= idx.size()) return false;
  const TraceRecord& r = trace_->records[idx[cur++]];
  const OpSpec* spec = map_.find(r.op);
  CCREF_REQUIRE_MSG(spec != nullptr, "trace op not mapped for protocol");
  op = DesOp{};
  op.name = spec->mnemonic.c_str();
  op.decisions = &spec->decisions;
  op.goal = spec->goal;
  op.alt_goal = spec->alt_goal;
  op.write = spec->write;
  op.addr = r.addr;
  op.think = r.think;
  return true;
}

}  // namespace ccref::sim
