#include "sim/bus.hpp"

#include <algorithm>
#include <limits>
#include <random>
#include <set>

#include "support/contracts.hpp"
#include "support/strings.hpp"

namespace ccref::sim {

using ir::StateId;
using sem::Label;
using sem::LabelMode;
using sem::RendezvousSystem;
using sem::RvState;

BusWorkload make_bus_workload(int num_remotes, int ops_per_node,
                              double write_fraction, double evict_fraction,
                              std::uint64_t think_mean, std::uint64_t seed) {
  CCREF_REQUIRE(num_remotes >= 1 && ops_per_node >= 0);
  BusWorkload w;
  w.per_remote.resize(num_remotes);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  auto think = [&] { return 1 + rng() % (2 * std::max<std::uint64_t>(
                                                 think_mean, 1)); };
  for (int i = 0; i < num_remotes; ++i) {
    for (int k = 0; k < ops_per_node; ++k) {
      const bool wr = coin(rng) < write_fraction;
      w.per_remote[i].push_back({wr ? "write" : "read", think()});
      if (coin(rng) < evict_fraction)
        w.per_remote[i].push_back({"evict", think()});
    }
  }
  return w;
}

double BusStats::avg_latency() const {
  std::uint64_t lat = 0, ops = 0;
  for (const auto& r : remotes) {
    lat += r.latency_total;
    ops += r.ops_completed - r.hits;
  }
  return ops ? static_cast<double>(lat) / static_cast<double>(ops) : 0.0;
}

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// Per-remote CPU progress through its op stream.
struct Cpu {
  enum class Phase : std::uint8_t {
    Thinking,  // next op activates at `ready_at`
    Eligible,  // op active; its tau is gated ON, waiting for the scheduler
    Issued,    // tau fired; waiting to return to a stable state
  };
  Phase phase = Phase::Thinking;
  std::size_t next_op = 0;
  std::uint64_t ready_at = 0;
  std::uint64_t activated_at = 0;

  [[nodiscard]] bool done(const std::vector<BusOp>& ops) const {
    return next_op >= ops.size();
  }
};

}  // namespace

BusStats bus_simulate(const ir::Protocol& protocol, int num_remotes,
                      const BusWorkload& workload, const BusOptions& options) {
  CCREF_REQUIRE_MSG(protocol.topology == ir::Topology::Bus,
                    "bus_simulate drives snooping (topology bus) protocols");
  CCREF_REQUIRE(static_cast<int>(workload.per_remote.size()) == num_remotes);
  const RendezvousSystem sys(protocol, num_remotes);
  const BusCostModel& cost = options.cost;

  // --- static protocol knowledge -----------------------------------------
  // Stable states are the ones offering CPU taus; everything else is a
  // transient the protocol drives on its own.
  const ir::Process& remote = protocol.remote;
  auto stable = [&](StateId sid) { return !remote.state(sid).taus.empty(); };
  auto offers = [&](StateId sid, const std::string& decision) {
    for (const auto& g : remote.state(sid).taus)
      if (g.label == decision) return true;
    return false;
  };
  std::set<std::string> vocabulary;
  for (const auto& st : remote.states)
    for (const auto& g : st.taus)
      if (!g.label.empty()) vocabulary.insert(g.label);
  std::set<std::string> bcast_msgs;
  for (const auto& st : remote.states)
    for (const auto& og : st.outputs)
      if (og.to.kind == ir::PeerSel::Kind::Bcast)
        bcast_msgs.insert(protocol.message(og.msg).name);
  // Data-source classification: supplier copies, and whether dirty data may
  // stay shared (an owned state exists) or must reflect to memory.
  std::set<StateId> suppliers, dirty;
  bool has_owned = false;
  for (const char* name : {"M", "O", "E", "F", "Sm"}) {
    const StateId sid = remote.find_state(name);
    if (sid == ir::kNoState) continue;
    suppliers.insert(sid);
    if (name[0] == 'M' || name[0] == 'O' || name[1] == 'm') dirty.insert(sid);
    if (std::string_view(name) == "O" || std::string_view(name) == "Sm")
      has_owned = true;
  }

  // --- run ---------------------------------------------------------------
  BusStats stats;
  stats.remotes.resize(num_remotes);
  stats.ops_total = workload.total_ops();
  RvState s = sys.initial();
  std::vector<Cpu> cpu(num_remotes);
  std::mt19937_64 rng(options.seed);

  auto complete_op = [&](int i, bool hit) {
    const std::vector<BusOp>& ops = workload.per_remote[i];
    Cpu& c = cpu[i];
    BusRemoteStats& r = stats.remotes[i];
    ++r.ops_completed;
    if (hit) {
      ++r.hits;
      ++stats.hits;
    } else {
      const std::uint64_t lat = stats.cycles - c.activated_at;
      r.latency_total += lat;
      r.latency_max = std::max(r.latency_max, lat);
    }
    ++c.next_op;
    c.phase = Cpu::Phase::Thinking;
    c.ready_at = c.done(ops) ? kNever : stats.cycles + ops[c.next_op].think;
  };

  // Activate remote i's current op: ops whose tau the current stable state
  // does not offer are hits (read in S/E/M, write in M, evict in I) and
  // complete instantly; the first op that needs the protocol goes Eligible.
  auto activate = [&](int i) {
    const std::vector<BusOp>& ops = workload.per_remote[i];
    Cpu& c = cpu[i];
    while (!c.done(ops) && stats.cycles >= c.ready_at) {
      c.activated_at = stats.cycles;
      if (offers(s.remotes[i].state, ops[c.next_op].decision)) {
        c.phase = Cpu::Phase::Eligible;
        return;
      }
      complete_op(i, /*hit=*/true);
    }
  };

  for (int i = 0; i < num_remotes; ++i) {
    const auto& ops = workload.per_remote[i];
    cpu[i].ready_at = ops.empty() ? kNever : ops[0].think;
  }

  while (stats.steps < options.max_steps) {
    for (int i = 0; i < num_remotes; ++i)
      if (cpu[i].phase == Cpu::Phase::Thinking &&
          !cpu[i].done(workload.per_remote[i]) &&
          stats.cycles >= cpu[i].ready_at)
        activate(i);

    bool all_done = true;
    for (int i = 0; i < num_remotes; ++i)
      all_done = all_done && cpu[i].done(workload.per_remote[i]);
    if (all_done) {
      stats.finished = true;
      return stats;
    }

    // Enumerate, then gate: CPU decisions need an Eligible op asking for
    // exactly that label; every other step is obligatory protocol work.
    auto succs = sys.successors(s, LabelMode::Quiet);
    std::vector<std::size_t> eligible;
    for (std::size_t k = 0; k < succs.size(); ++k) {
      const Label& l = succs[k].second;
      if (!l.completes_rendezvous && l.actor >= 0 &&
          vocabulary.count(l.decision)) {
        const Cpu& c = cpu[l.actor];
        if (c.phase != Cpu::Phase::Eligible ||
            workload.per_remote[l.actor][c.next_op].decision != l.decision)
          continue;
      }
      eligible.push_back(k);
    }

    if (eligible.empty()) {
      // Nothing runnable now: advance the clock to the next activation.
      std::uint64_t next = kNever;
      for (int i = 0; i < num_remotes; ++i)
        if (cpu[i].phase == Cpu::Phase::Thinking &&
            !cpu[i].done(workload.per_remote[i]))
          next = std::min(next, cpu[i].ready_at);
      if (next == kNever) {
        stats.stall = strf("wedged at cycle %llu with no eligible step",
                           static_cast<unsigned long long>(stats.cycles));
        return stats;
      }
      stats.cycles = std::max(stats.cycles, next);
      continue;
    }

    const std::size_t pick =
        eligible[rng() % static_cast<std::uint64_t>(eligible.size())];
    const Label& l = succs[pick].second;

    // Charge the cost model against the PRE-state (the supplier is whoever
    // held the block when the transaction won arbitration).
    if (l.completes_rendezvous) {
      if (bcast_msgs.count(l.decision)) {
        ++stats.bus_transactions;
        stats.cycles += cost.arbitration;
        if (l.decision.find("WB") != std::string::npos) {
          ++stats.mem_writebacks;
          stats.cycles += cost.memory;
        } else if (l.decision.find("Upd") != std::string::npos) {
          ++stats.bus_updates;
          stats.cycles += cost.word;
        } else {
          int supplier = -1;
          for (int j = 0; j < num_remotes; ++j)
            if (j != l.actor && suppliers.count(s.remotes[j].state))
              supplier = j;
          if (supplier >= 0) {
            ++stats.c2c_transfers;
            stats.cycles += cost.c2c(num_remotes);
            // Without an owned state (MESI/MESIF) a dirty supplier must
            // reflect the block to memory on the same transaction.
            if (dirty.count(s.remotes[supplier].state) && !has_owned) {
              ++stats.mem_writebacks;
              stats.cycles += cost.memory;
            }
          } else {
            ++stats.mem_fills;
            stats.cycles += cost.memory;
          }
        }
      } else {
        ++stats.grants;
        stats.cycles += cost.grant;
      }
    }

    // Eligible -> Issued when the chosen step was this remote's CPU tau.
    if (!l.completes_rendezvous && l.actor >= 0 &&
        cpu[l.actor].phase == Cpu::Phase::Eligible &&
        vocabulary.count(l.decision))
      cpu[l.actor].phase = Cpu::Phase::Issued;

    s = std::move(succs[pick].first);
    ++stats.steps;

    for (int i = 0; i < num_remotes; ++i) {
      if (!stable(s.remotes[i].state)) continue;
      if (cpu[i].phase == Cpu::Phase::Issued) {
        complete_op(i, /*hit=*/false);
      } else if (cpu[i].phase == Cpu::Phase::Eligible &&
                 !offers(s.remotes[i].state,
                         workload.per_remote[i][cpu[i].next_op].decision)) {
        // A snoop changed the state out from under the waiting op (e.g. a
        // pending evict was invalidated away): it is satisfied for free.
        complete_op(i, /*hit=*/true);
      }
    }
  }

  stats.stall = strf("step budget (%llu) exhausted",
                     static_cast<unsigned long long>(options.max_steps));
  return stats;
}

}  // namespace ccref::sim
