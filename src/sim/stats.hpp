// Statistics for both simulators: a mergeable latency histogram, structured
// stall diagnostics, and the discrete-event simulator's counter block.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccref::sim {

/// Fixed-footprint latency histogram: 64 power-of-two decades × 8 linear
/// sub-buckets, covering [0, 2^63] cycles with <= 12.5% relative error per
/// bucket. Mergeable across lanes (plain counter addition), so percentile
/// extraction after a parallel run needs no per-sample storage.
class LatencyHistogram {
 public:
  void record(std::uint64_t cycles);
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  /// Upper edge of the bucket holding the p-th percentile (p in [0,1]);
  /// 0 when empty. percentile(0.5) is p50, percentile(0.99) is p99.
  [[nodiscard]] std::uint64_t percentile(double p) const;

 private:
  static constexpr int kSub = 8;  // linear sub-buckets per decade
  [[nodiscard]] static int bucket_of(std::uint64_t v);
  [[nodiscard]] static std::uint64_t bucket_hi(int b);

  std::vector<std::uint64_t> buckets_;  // grown on demand, decade-major
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Structured stall diagnostics: when a run wedges or exhausts its budget
/// before the workload completes, this names the first blocked operation,
/// the remote/node executing it, and the queue occupancies around it — not
/// just a prose reason.
struct Stall {
  std::string reason;     // "" = no stall; else a short slug + context
  std::string op;         // blocked operation name ("acquire", "w", ...)
  int remote = -1;        // blocked remote slot / node id; -1 unknown
  std::size_t up_occupancy = 0;    // up-channel depth at the blocked remote
  std::size_t down_occupancy = 0;  // down-channel depth at it
  std::size_t home_buffer = 0;     // home request-buffer depth

  [[nodiscard]] bool stalled() const { return !reason.empty(); }
  /// One-line rendering for logs: reason plus the blocked-op context.
  [[nodiscard]] std::string to_string() const;
};

/// Streams Stall::to_string() (so gtest failure messages stay one-liners).
std::ostream& operator<<(std::ostream& os, const Stall& s);

/// Per-node operation counters (discrete-event engine).
struct NodeOps {
  std::uint64_t completed = 0;
};

/// Counters of one discrete-event run; merged across lanes.
struct DesStats {
  std::uint64_t events = 0;       // applied state transitions
  std::uint64_t cycles = 0;       // simulated time at completion
  std::uint64_t req = 0, ack = 0, nack = 0, repl = 0;
  std::uint64_t completions = 0;  // rendezvous completed
  std::uint64_t ops_total = 0;
  std::uint64_t retries = 0;           // nacks delivered back to remotes
  std::uint64_t memory_accesses = 0;   // data messages sourced by the home
  std::uint64_t c2c_transfers = 0;     // data messages sourced by a cache
  std::uint64_t write_backs = 0;       // data pushed remote -> home
  std::uint64_t home_busy_cycles = 0;  // directory occupancy, summed
  std::uint64_t wbuf_hits = 0;         // stores retired into the write buffer
  std::uint64_t wbuf_drains = 0;       // buffer flushes on coherence events
  std::uint64_t instances = 0;         // address instances materialized
  std::uint64_t windows = 0;  // cross-lane barriers (0 for a single lane)
  LatencyHistogram latency;            // per-op issue -> completion cycles
  std::vector<NodeOps> nodes;
  bool finished = false;
  Stall stall;

  [[nodiscard]] std::uint64_t messages() const {
    return req + ack + nack + repl;
  }
  [[nodiscard]] double msgs_per_op() const {
    return ops_total ? static_cast<double>(messages()) /
                           static_cast<double>(ops_total)
                     : 0.0;
  }
  /// Fraction of simulated time the home directory was busy (averaged over
  /// address instances when there are several).
  [[nodiscard]] double home_occupancy() const {
    if (!cycles || !instances) return 0.0;
    return static_cast<double>(home_busy_cycles) /
           (static_cast<double>(cycles) * static_cast<double>(instances));
  }
  /// Jain's fairness index over per-node completed ops.
  [[nodiscard]] double fairness_index() const;

  void merge(const DesStats& other);
};

}  // namespace ccref::sim
