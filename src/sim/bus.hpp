// Timed snooping-bus simulator for the MESI/MOESI/MESIF/Dragon family.
//
// Drives sem::RendezvousSystem — the abstract level, where one broadcast is
// one atomic step — so a simulated bus transaction is indivisible exactly
// like the real bus's address phase. A seeded scheduler picks uniformly among
// enabled transitions; a remote's CPU decisions (`read`/`write`/`evict` taus)
// are gated by its synthetic op stream, everything else (broadcast sends from
// active states, home grants, snoop answers) is obligatory protocol work.
// Because the driver IS the model-checked semantics, simulated behaviour and
// verified behaviour agree by construction.
//
// The cost model follows the classic snooping evaluation split: every
// broadcast pays bus arbitration; a fill is served cache-to-cache when some
// other cache holds a supplier copy (M/O/E/F/Sm), else by memory; a dirty
// supplier without an owned state (no O/Sm — i.e. MESI/MESIF) also reflects
// the block to memory on the transfer, which is precisely the memory-traffic
// gap MOESI and Dragon exist to close. BusWB is a memory write-back; Dragon's
// BusUpd moves one word. Point-to-point home grants are control messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/process.hpp"
#include "sem/rendezvous.hpp"

namespace ccref::sim {

struct BusCostModel {
  std::uint64_t arbitration = 2;   // address phase, every bus transaction
  std::uint64_t memory = 100;      // memory supplies or absorbs a block
  std::uint64_t block_words = 4;   // N in the 4N + (P+1) c2c formula
  std::uint64_t word = 2;          // Dragon BusUpd: one word on the bus
  std::uint64_t grant = 4;         // point-to-point control message

  /// Cache-to-cache block transfer with `p` processors arbitrating.
  [[nodiscard]] std::uint64_t c2c(int p) const {
    return 4 * block_words + static_cast<std::uint64_t>(p) + 1;
  }
};

/// One CPU operation: the decision label its tau carries ("read", "write",
/// "evict") plus think time before it activates. An op whose tau is not
/// offered by the current stable state is a cache hit (read in S/E/M, write
/// in M, evict in I) and completes instantly for free.
struct BusOp {
  std::string decision;
  std::uint64_t think = 0;
};

struct BusWorkload {
  std::vector<std::vector<BusOp>> per_remote;

  [[nodiscard]] std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& q : per_remote) n += q.size();
    return n;
  }
};

/// Seeded synthetic mix: `ops_per_node` read/write ops per remote (write
/// with probability `write_fraction`), each followed by an evict with
/// probability `evict_fraction`; think times uniform in [1, 2*think_mean].
[[nodiscard]] BusWorkload make_bus_workload(int num_remotes, int ops_per_node,
                                            double write_fraction,
                                            double evict_fraction,
                                            std::uint64_t think_mean,
                                            std::uint64_t seed);

struct BusOptions {
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 2'000'000;
  BusCostModel cost;
};

struct BusRemoteStats {
  std::uint64_t ops_completed = 0;
  std::uint64_t hits = 0;           // ops satisfied without a tau (free)
  std::uint64_t latency_total = 0;  // cycles, activation to completion
  std::uint64_t latency_max = 0;
};

struct BusStats {
  std::uint64_t steps = 0;
  std::uint64_t cycles = 0;

  // The paper-style message-economy counters.
  std::uint64_t bus_transactions = 0;  // broadcasts that won arbitration
  std::uint64_t mem_writebacks = 0;    // blocks absorbed by memory
  std::uint64_t c2c_transfers = 0;     // blocks supplied cache-to-cache
  std::uint64_t mem_fills = 0;         // blocks supplied by memory
  std::uint64_t bus_updates = 0;       // Dragon word updates
  std::uint64_t grants = 0;            // point-to-point control messages

  std::uint64_t ops_total = 0;
  std::uint64_t hits = 0;
  std::vector<BusRemoteStats> remotes;
  bool finished = false;
  std::string stall;  // non-empty when the run wedged before finishing

  [[nodiscard]] double per_op(std::uint64_t x) const {
    const std::uint64_t misses = ops_total - hits;
    return misses ? static_cast<double>(x) / static_cast<double>(misses) : 0.0;
  }
  [[nodiscard]] std::uint64_t mem_traffic() const {
    return mem_writebacks + mem_fills;
  }
  [[nodiscard]] double avg_latency() const;
};

[[nodiscard]] BusStats bus_simulate(const ir::Protocol& protocol,
                                    int num_remotes,
                                    const BusWorkload& workload,
                                    const BusOptions& options = {});

}  // namespace ccref::sim
