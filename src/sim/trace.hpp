// Trace-file workloads: replay recorded per-node operation streams.
//
// Text format, one record per line, whitespace-separated:
//
//     <node> <op> <addr> <think>
//
//   node   decimal node id (0-based)
//   op     operation mnemonic, protocol-mapped by the workload layer:
//          r (read), w (write), acq (lock acquire), rel (lock release),
//          evict (drop the line) — unknown mnemonics are a parse error
//   addr   decimal or 0x-hex block/lock address
//   think  cycles the node computes before issuing this op (after its
//          previous op completed)
//
// `#` starts a comment (whole line or trailing); blank lines are skipped.
// Records are per-node FIFO: the order of lines for one node is its program
// order. Two example traces ship under examples/traces/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccref::sim {

struct TraceRecord {
  std::uint32_t node = 0;
  std::string op;
  std::uint64_t addr = 0;
  std::uint64_t think = 0;
};

struct Trace {
  std::vector<TraceRecord> records;  // file order
  std::uint32_t max_node = 0;        // highest node id seen

  [[nodiscard]] std::uint32_t num_nodes() const {
    return records.empty() ? 0 : max_node + 1;
  }
};

/// Parse a trace from text. On error returns false and sets `error` to
/// "line N: what" — never partially succeeds.
[[nodiscard]] bool parse_trace(const std::string& text, Trace& out,
                               std::string& error);

/// Load and parse a trace file; same error contract plus I/O failures.
[[nodiscard]] bool load_trace(const std::string& path, Trace& out,
                              std::string& error);

}  // namespace ccref::sim
