// Discrete-event performance simulator for refined protocols.
//
// Where sim::Simulator asks "does this workload complete, with how many
// messages", this engine asks "how many CYCLES does it take": every wire
// message gets a latency from sim::CostModel, the home directory has an
// occupancy that creates queueing under contention, and per-op latency is
// collected into percentile histograms. The protocol semantics are the same
// runtime::AsyncSystem rules, executed in place by runtime::AsyncExec — no
// state copies, no successor enumeration — on a pool-allocated event core
// with a batched calendar queue (support/event_pool.hpp,
// support/calendar_queue.hpp).
//
// Scaling past kMaxNodes: the protocol instance is per ADDRESS, with up to
// `slot_cap` (<= 64) concurrently *bound* nodes. A node binds a slot when it
// issues an op on the address, keeps it while the protocol machine holds
// residual state (cache residency), and a fresh-equivalent slot is detached
// on demand when new nodes contend. Thousands-to-millions of clients share
// one lock address through this revolving door; the wait queue is the
// "directory full" backpressure.
//
// Parallel lanes: addresses partition by `addr % lanes`; each lane owns its
// instances, calendar, and event pool. The only cross-lane interaction is a
// node whose NEXT op lands on another lane's address — handed over through
// per-lane outboxes that are exchanged at a window barrier, with the issue
// time clamped to the next window start. Timestamps therefore never run
// backwards (conservative synchronization), every exchange happens in a
// single-threaded barrier completion, and a run is deterministic for a
// fixed (seed, lanes, window, window_max).
//
// The window length adapts to the observed cross-lane event horizon: a
// barrier that exchanged no handoffs proves the lanes ran independently for
// the whole window, so the next window doubles (up to `window_max`); any
// handoff resets the length to the base `window`. Correctness never depends
// on the length — every exchange still happens at a barrier and issue times
// are still clamped forward — and the clamp error stays bounded by the base
// window whenever lanes actually interact. Workloads whose nodes stay on
// their own lane pay O(log) barriers instead of one per `window` cycles.
#pragma once

#include <cstdint>

#include "refine/refined.hpp"
#include "sim/cost_model.hpp"
#include "sim/des_workload.hpp"
#include "sim/stats.hpp"

namespace ccref::sim {

struct DesOptions {
  std::uint64_t max_events = 0;  // 0 = unbounded
  std::uint64_t max_cycles = 0;  // 0 = unbounded
  CostModel cost;
  bool write_buffer = false;      // retire stores into a bounded buffer
  int write_buffer_capacity = 8;  // stores held before a forced drain
  int lanes = 1;
  std::uint64_t window = 1024;  // base cross-lane sync window (cycles)
  // Adaptive-window cap: handoff-free windows double up to this length; a
  // handoff resets to `window`. 0 pins every window at `window` (the old
  // fixed-barrier cadence).
  std::uint64_t window_max = 1 << 17;
  int slot_cap = 64;  // concurrent bound nodes per address
};

/// Run `source` to completion (or budget exhaustion) under the cost model.
/// Deterministic: same refined protocol + source + options => same stats.
[[nodiscard]] DesStats des_simulate(const refine::RefinedProtocol& refined,
                                    OpSource& source,
                                    const DesOptions& options = {});

}  // namespace ccref::sim
