// Workload-driven simulator for asynchronous (refined) protocols.
//
// Executes runtime::AsyncSystem one transition at a time: passive reactions
// (deliveries, buffering, acks/nacks, home-initiated protocol steps) are
// always eligible; a remote's autonomous decisions are gated by its pending
// workload op. The scheduler picks uniformly at random among eligible
// transitions with a seeded RNG, so every run is reproducible.
//
// This substitutes for the Avalanche hardware in the paper's efficiency
// comparison (§5): the quality metric — request/ack/nack message counts per
// rendezvous — is a property of the protocol and the §2.2 network model, not
// of the silicon, so counting wire messages per completed operation
// reproduces it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/async_system.hpp"
#include "sim/stats.hpp"
#include "sim/workload.hpp"

namespace ccref::sim {

struct SimOptions {
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 2'000'000;
};

struct RemoteStats {
  std::uint64_t ops_completed = 0;
  std::uint64_t latency_total = 0;  // steps from op activation to completion
  std::uint64_t latency_max = 0;
};

struct SimStats {
  std::uint64_t steps = 0;
  std::uint64_t completions = 0;  // rendezvous completed (ack/repl events)
  std::uint64_t req = 0, ack = 0, nack = 0, repl = 0;
  std::uint64_t ops_total = 0;
  std::vector<RemoteStats> remotes;
  bool finished = false;  // every op completed
  Stall stall;            // stalled() if the run wedged before finishing

  [[nodiscard]] std::uint64_t messages() const {
    return req + ack + nack + repl;
  }
  [[nodiscard]] double msgs_per_op() const {
    return ops_total ? static_cast<double>(messages()) / ops_total : 0.0;
  }
  /// Jain's fairness index over per-remote completed ops (1.0 = perfectly
  /// fair, 1/n = one remote got everything).
  [[nodiscard]] double fairness_index() const;
};

[[nodiscard]] SimStats simulate(const runtime::AsyncSystem& system,
                                const Workload& workload,
                                const SimOptions& options = {});

}  // namespace ccref::sim
