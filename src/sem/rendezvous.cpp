#include "sem/rendezvous.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace ccref::sem {

using ir::EvalCtx;
using ir::InputGuard;
using ir::OutputGuard;
using ir::PeerSel;
using ir::PeerSrc;
using ir::StateKind;

RendezvousSystem::RendezvousSystem(const ir::Protocol& protocol,
                                   int num_remotes)
    : protocol_(&protocol), n_(num_remotes) {
  CCREF_REQUIRE(num_remotes >= 1 && num_remotes <= kMaxNodes);
}

RvState RendezvousSystem::initial() const {
  RvState s;
  s.home.state = protocol_->home.initial;
  s.home.store = ir::Store(protocol_->home.vars);
  s.remotes.resize(n_);
  for (auto& r : s.remotes) {
    r.state = protocol_->remote.initial;
    r.store = ir::Store(protocol_->remote.vars);
  }
  return s;
}

std::vector<std::pair<RvState, Label>> RendezvousSystem::successors(
    const RvState& s, LabelMode mode) const {
  std::vector<std::pair<RvState, Label>> out;
  tau_moves(s, -1, mode, out);
  for (int i = 0; i < n_; ++i) tau_moves(s, i, mode, out);
  home_active(s, mode, out);
  for (int i = 0; i < n_; ++i) remote_active(s, i, mode, out);
  return out;
}

void RendezvousSystem::tau_moves(
    const RvState& s, int proc, LabelMode mode,
    std::vector<std::pair<RvState, Label>>& out) const {
  const ir::Process& p = proc < 0 ? protocol_->home : protocol_->remote;
  const ProcState& ps = proc < 0 ? s.home : s.remotes[proc];
  const EvalCtx ctx{proc};
  const ir::State& st = p.state(ps.state);
  for (const auto& g : st.taus) {
    if (g.cond && !ir::eval(*g.cond, ps.store, ctx)) continue;
    RvState next = s;
    ProcState& target = proc < 0 ? next.home : next.remotes[proc];
    if (g.action) ir::exec(*g.action, target.store, p.vars, ctx);
    target.state = g.next;
    Label label;
    if (mode == LabelMode::Full)
      label.text = strf("%s: tau %s", proc < 0 ? "h" : strf("r%d", proc).c_str(),
                        g.label.empty() ? "-" : g.label.c_str());
    label.actor = proc;
    label.decision = g.label;
    out.emplace_back(std::move(next), std::move(label));
  }
}

void RendezvousSystem::home_active(
    const RvState& s, LabelMode mode,
    std::vector<std::pair<RvState, Label>>& out) const {
  const ir::State& hs = protocol_->home.state(s.home.state);
  const EvalCtx hctx{-1};
  for (const auto& og : hs.outputs) {
    if (og.cond && !ir::eval(*og.cond, s.home.store, hctx)) continue;
    // Resolve the set of candidate targets.
    NodeSet targets;
    if (og.to.kind == PeerSel::Kind::Expr) {
      std::int64_t j = ir::eval(*og.to.expr, s.home.store, hctx);
      CCREF_ASSERT_MSG(j >= 0 && j < n_, "home addressed a non-existent remote");
      targets.add(static_cast<NodeId>(j));
    } else if (og.to.kind == PeerSel::Kind::AnyInSet) {
      targets = NodeSet(static_cast<std::uint64_t>(
          ir::eval(*og.to.expr, s.home.store, hctx)));
    }
    for (NodeId j : targets) {
      if (j >= n_) continue;
      const ir::State& rs = protocol_->remote.state(s.remotes[j].state);
      if (rs.kind != StateKind::Comm) continue;
      const EvalCtx rctx{j};
      for (const auto& ig : rs.inputs) {
        if (ig.msg != og.msg) continue;
        CCREF_ASSERT(ig.from.kind == PeerSrc::Kind::Home);
        if (ig.cond && !ir::eval(*ig.cond, s.remotes[j].store, rctx))
          continue;
        fire(s, og, -1, ig, j, mode, out);
      }
    }
  }
}

void RendezvousSystem::remote_active(
    const RvState& s, int i, LabelMode mode,
    std::vector<std::pair<RvState, Label>>& out) const {
  const ir::State& rs = protocol_->remote.state(s.remotes[i].state);
  if (rs.kind != StateKind::Comm) return;
  const EvalCtx rctx{i};
  const ir::State& hs = protocol_->home.state(s.home.state);
  if (hs.kind != StateKind::Comm) return;
  const EvalCtx hctx{-1};
  for (const auto& og : rs.outputs) {
    if (og.cond && !ir::eval(*og.cond, s.remotes[i].store, rctx)) continue;
    CCREF_ASSERT(og.to.kind == PeerSel::Kind::Home ||
                 og.to.kind == PeerSel::Kind::Bcast);
    for (const auto& ig : hs.inputs) {
      if (ig.msg != og.msg) continue;
      bool src_ok = false;
      switch (ig.from.kind) {
        case PeerSrc::Kind::Any:
          src_ok = true;
          break;
        case PeerSrc::Kind::Expr:
          src_ok = ir::eval(*ig.from.expr, s.home.store, hctx) == i;
          break;
        case PeerSrc::Kind::Home:
        case PeerSrc::Kind::Bcast:
          src_ok = false;  // impossible after validation
          break;
      }
      if (!src_ok) continue;
      if (ig.cond && !ir::eval(*ig.cond, s.home.store, hctx)) continue;
      if (og.to.kind == PeerSel::Kind::Bcast)
        fire_bcast(s, og, i, ig, mode, out);
      else
        fire(s, og, i, ig, -1, mode, out);
    }
  }
}

void RendezvousSystem::fire_bcast(
    const RvState& s, const OutputGuard& og, int i, const InputGuard& hg,
    LabelMode mode, std::vector<std::pair<RvState, Label>>& out) const {
  RvState next = s;
  const EvalCtx actx{i};
  const EvalCtx hctx{-1};

  // Payload is evaluated in the requester's pre-action store, once; every
  // participant observes the same values (the bus carries one datum).
  std::vector<ir::Value> payload;
  payload.reserve(og.payload.size());
  for (const auto& e : og.payload)
    payload.push_back(
        static_cast<ir::Value>(ir::eval(*e, next.remotes[i].store, actx)));

  auto deliver = [&](const InputGuard& ig, ProcState& p, const EvalCtx& ctx,
                     const ir::Process& proc, int sender) {
    if (ig.bind_peer != ir::kNoVar)
      p.store.set(ig.bind_peer, static_cast<ir::Value>(sender));
    for (std::size_t f = 0; f < ig.bind_payload.size(); ++f)
      if (ig.bind_payload[f] != ir::kNoVar)
        p.store.set(ig.bind_payload[f], payload[f]);
    if (ig.action) ir::exec(*ig.action, p.store, proc.vars, ctx);
    p.state = ig.next;
  };

  // The home mediates: its generalized input participates like a star sync.
  deliver(hg, next.home, hctx, protocol_->home, i);

  // Every other remote snoops through its first enabled bcast guard; a
  // remote with none (wrong state, or guard condition false) is unchanged —
  // a cache in I ignores bus traffic it misses on. Guard conditions are
  // evaluated against the pre-bind store, matching every other guard kind.
  for (int j = 0; j < n_; ++j) {
    if (j == i) continue;
    const ir::State& js = protocol_->remote.state(s.remotes[j].state);
    if (js.kind != StateKind::Comm) continue;
    const EvalCtx jctx{j};
    for (const auto& ig : js.inputs) {
      if (ig.msg != og.msg || ig.from.kind != PeerSrc::Kind::Bcast) continue;
      if (ig.cond && !ir::eval(*ig.cond, s.remotes[j].store, jctx)) continue;
      deliver(ig, next.remotes[j], jctx, protocol_->remote, i);
      break;  // first enabled snoop guard wins (deterministic per snooper)
    }
  }

  // Requester last: its action may read vars the payload already captured.
  if (og.action)
    ir::exec(*og.action, next.remotes[i].store, protocol_->remote.vars, actx);
  next.remotes[i].state = og.next;

  Label label;
  if (mode == LabelMode::Full)
    label.text = strf("r%d!%s -> *", i,
                      protocol_->message(og.msg).name.c_str());
  label.completes_rendezvous = true;
  label.actor = i;
  label.granted_to = i;
  label.decision = protocol_->message(og.msg).name;
  out.emplace_back(std::move(next), std::move(label));
}

void RendezvousSystem::fire(const RvState& s, const OutputGuard& og,
                            int active, const InputGuard& ig, int passive,
                            LabelMode mode,
                            std::vector<std::pair<RvState, Label>>& out) const {
  RvState next = s;
  const ir::Process& ap = active < 0 ? protocol_->home : protocol_->remote;
  const ir::Process& pp = passive < 0 ? protocol_->home : protocol_->remote;
  ProcState& a = active < 0 ? next.home : next.remotes[active];
  ProcState& p = passive < 0 ? next.home : next.remotes[passive];
  const EvalCtx actx{active};
  const EvalCtx pctx{passive};

  // The chosen target becomes visible to the active side's payload and
  // action (e.g. `o := j` after picking j from a copyset).
  if (og.bind_peer != ir::kNoVar)
    a.store.set(og.bind_peer, static_cast<ir::Value>(passive));

  std::vector<ir::Value> payload;
  payload.reserve(og.payload.size());
  for (const auto& e : og.payload)
    payload.push_back(
        static_cast<ir::Value>(ir::eval(*e, a.store, actx)));

  // Passive side: learn the sender, bind the payload, run the action.
  if (ig.bind_peer != ir::kNoVar)
    p.store.set(ig.bind_peer, static_cast<ir::Value>(active));
  for (std::size_t f = 0; f < ig.bind_payload.size(); ++f)
    if (ig.bind_payload[f] != ir::kNoVar)
      p.store.set(ig.bind_payload[f], payload[f]);

  if (og.action) ir::exec(*og.action, a.store, ap.vars, actx);
  if (ig.action) ir::exec(*ig.action, p.store, pp.vars, pctx);
  a.state = og.next;
  p.state = ig.next;

  Label label;
  if (mode == LabelMode::Full) {
    std::string an = active < 0 ? "h" : strf("r%d", active);
    std::string pn = passive < 0 ? "h" : strf("r%d", passive);
    label.text = strf("%s!%s -> %s", an.c_str(),
                      protocol_->message(og.msg).name.c_str(), pn.c_str());
  }
  label.completes_rendezvous = true;
  label.actor = active;
  // The active party's rendezvous is the one being granted: a remote-active
  // sync grants that remote's request, a home-active sync the home's.
  label.granted_to = active;
  label.decision = protocol_->message(og.msg).name;
  out.emplace_back(std::move(next), std::move(label));
}

void RendezvousSystem::encode(const RvState& s, ByteSink& sink) const {
  sink.varint(s.home.state);
  s.home.store.encode(sink);
  sink.boundary(kCompHome);
  for (const auto& r : s.remotes) {
    sink.varint(r.state);
    r.store.encode(sink);
    sink.boundary(kCompRemote);
  }
}

RvState RendezvousSystem::decode(ByteSource& src) const {
  RvState s;
  s.home.state = static_cast<ir::StateId>(src.varint());
  s.home.store = ir::Store(protocol_->home.vars);
  s.home.store.decode(src);
  s.remotes.resize(n_);
  for (auto& r : s.remotes) {
    r.state = static_cast<ir::StateId>(src.varint());
    r.store = ir::Store(protocol_->remote.vars);
    r.store.decode(src);
  }
  return s;
}

std::string RendezvousSystem::describe(const RvState& s) const {
  auto proc_str = [&](const ir::Process& p, const ProcState& ps,
                      const std::string& name) {
    std::string out = name + "=" + p.state(ps.state).name;
    if (!p.vars.empty()) {
      out += "(";
      for (std::size_t v = 0; v < p.vars.size(); ++v) {
        if (v) out += ",";
        out += strf("%s=%llu", p.vars[v].name.c_str(),
                    static_cast<unsigned long long>(ps.store.get(
                        static_cast<ir::VarId>(v))));
      }
      out += ")";
    }
    return out;
  };
  std::string out = proc_str(protocol_->home, s.home, "h");
  for (int i = 0; i < n_; ++i)
    out += " " + proc_str(protocol_->remote, s.remotes[i], strf("r%d", i));
  return out;
}

// ---- symmetry ------------------------------------------------------------------

void RendezvousSystem::permute(RvState& s, const ir::NodePerm& perm) const {
  CCREF_REQUIRE(perm.size() == static_cast<std::size_t>(n_));
  std::vector<ProcState> remotes(n_);
  for (int i = 0; i < n_; ++i) remotes[perm[i]] = std::move(s.remotes[i]);
  s.remotes = std::move(remotes);
  ir::remap_store(s.home.store, protocol_->home.vars, perm);
  for (auto& r : s.remotes)
    ir::remap_store(r.store, protocol_->remote.vars, perm);
}

void RendezvousSystem::canonicalize(RvState& s) const {
  if (n_ <= 1) return;
  // Per-remote signature: every identity-dependent fact about remote i,
  // written identity-independently — its own control state and store (Node
  // self-references fold to a fixed tag; references to *other* remotes stay
  // raw, which keeps the reduction sound but only partially canonical for
  // protocols with remote-to-remote references; the shipped protocols have
  // none), plus the home's view of i (does each home Node var name it, is it
  // in each home copyset).
  const auto& hvars = protocol_->home.vars;
  const auto& rvars = protocol_->remote.vars;
  std::vector<std::vector<std::byte>> sig(n_);
  ByteSink sink;
  for (int i = 0; i < n_; ++i) {
    sink.clear();
    sink.varint(s.remotes[i].state);
    for (std::size_t v = 0; v < rvars.size(); ++v) {
      const ir::Value val = s.remotes[i].store.get(static_cast<ir::VarId>(v));
      switch (rvars[v].type) {
        case ir::Type::Node:
          sink.varint(val == static_cast<ir::Value>(i)
                          ? static_cast<ir::Value>(n_)
                          : val);
          break;
        case ir::Type::NodeSet:
          sink.u8((val >> i) & 1u);
          sink.varint(val & ~(ir::Value{1} << i));
          break;
        default:
          sink.varint(val);
      }
    }
    for (std::size_t v = 0; v < hvars.size(); ++v) {
      const ir::Value val = s.home.store.get(static_cast<ir::VarId>(v));
      if (hvars[v].type == ir::Type::Node)
        sink.u8(val == static_cast<ir::Value>(i) ? 1 : 0);
      else if (hvars[v].type == ir::Type::NodeSet)
        sink.u8((val >> i) & 1u);
    }
    sig[i] = std::vector<std::byte>(sink.bytes().begin(), sink.bytes().end());
  }

  std::vector<int> order(n_);
  for (int i = 0; i < n_; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return sig[a] != sig[b] ? sig[a] < sig[b] : a < b;
  });

  ir::NodePerm perm(n_);
  for (int p = 0; p < n_; ++p)
    perm[order[p]] = static_cast<std::uint8_t>(p);
  if (!ir::is_identity(perm)) permute(s, perm);
}

}  // namespace ccref::sem
