// Transition labels shared by the rendezvous and asynchronous semantics.
//
// Labels carry what the model checker, the soundness analyses, and the
// simulator need to know about a step: a human-readable description, whether
// the step *completes* a rendezvous (the paper's notion of forward progress,
// §2.5), how many wire messages of each kind it sent (the paper's quality
// metric, §1), and which autonomous decision it represents (so the simulator
// can gate CPU decisions like `rw`/`evict` on a workload).
#pragma once

#include <cstdint>
#include <string>

namespace ccref::sem {

/// How much of a Label successor generation should materialize.
///
/// `Label::text` exists for human consumption (counterexample traces,
/// simulator logs); building it costs a heap-allocated formatted string per
/// enumerated edge, which dominates the checker's hot path on the
/// asynchronous semantics. In `Quiet` mode the semantics skip the text and
/// fill only the machine-consumed fields (flags, message counters, actor,
/// decision).
enum class LabelMode : std::uint8_t {
  Full,   // materialize Label::text (traces, describe, debugging)
  Quiet,  // leave Label::text empty (hot exploration path)
};

struct Label {
  std::string text;

  /// True when this transition finishes a rendezvous: the synchronous step
  /// itself in the rendezvous semantics; the ack-generating (or fused-reply)
  /// step in the asynchronous semantics.
  bool completes_rendezvous = false;

  /// Wire messages sent during this step (asynchronous semantics only).
  std::uint8_t sent_req = 0;
  std::uint8_t sent_ack = 0;
  std::uint8_t sent_nack = 0;
  std::uint8_t sent_repl = 0;

  /// Acting process: -1 home, >= 0 remote id, -2 not applicable.
  int actor = -2;

  /// For completing steps only: whose outstanding rendezvous this step
  /// grants. >= 0 names the remote whose request completed (the `granted(i)`
  /// atomic proposition of the LTL layer, §6 per-node starvation); -1 means
  /// the home's own rendezvous completed; -2 not a grant.
  int granted_to = -2;

  /// Non-empty for τ decisions and remote active initiations; carries the
  /// τ's label (e.g. "evict") or the sent message name (e.g. "req"). The
  /// simulator matches this against pending workload events.
  std::string decision;

  [[nodiscard]] int messages_sent() const {
    return sent_req + sent_ack + sent_nack + sent_repl;
  }
};

}  // namespace ccref::sem
