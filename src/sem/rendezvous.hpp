// Synchronous (rendezvous) semantics of a star protocol: the atomic-
// transaction view the designer writes and model-checks first (paper §2.3).
//
// A global state is the home's (control state, store) plus each remote's.
// Transitions are:
//   τ      — one process takes an autonomous move;
//   sync   — an enabled output guard in one process meets a matching input
//            guard in the addressed partner; payload transfer, both actions
//            and both state changes happen atomically.
#pragma once

#include <vector>

#include "ir/permute.hpp"
#include "ir/process.hpp"
#include "ir/store.hpp"
#include "sem/label.hpp"
#include "support/bytes.hpp"

namespace ccref::sem {

/// One process instance's slice of the global state.
struct ProcState {
  ir::StateId state = 0;
  ir::Store store;

  friend bool operator==(const ProcState&, const ProcState&) = default;
};

/// Global state of the rendezvous system: home + n remotes.
struct RvState {
  ProcState home;
  std::vector<ProcState> remotes;

  friend bool operator==(const RvState&, const RvState&) = default;
};

class RendezvousSystem {
 public:
  using State = RvState;

  RendezvousSystem(const ir::Protocol& protocol, int num_remotes);

  [[nodiscard]] State initial() const;

  /// Enumerate all enabled transitions in deterministic order.
  [[nodiscard]] std::vector<std::pair<State, Label>> successors(
      const State& s) const {
    return successors(s, LabelMode::Full);
  }

  /// Same enumeration; `LabelMode::Quiet` skips `Label::text` formatting on
  /// the checker's hot path.
  [[nodiscard]] std::vector<std::pair<State, Label>> successors(
      const State& s, LabelMode mode) const;

  /// COLLAPSE dictionary classes (verify/collapse.hpp): encode() closes the
  /// home machine and each remote machine as components. All remotes share
  /// kCompRemote.
  static constexpr std::uint8_t kCompHome = 0;
  static constexpr std::uint8_t kCompRemote = 1;

  void encode(const State& s, ByteSink& sink) const;
  [[nodiscard]] State decode(ByteSource& src) const;

  /// Human-readable dump for error traces.
  [[nodiscard]] std::string describe(const State& s) const;

  /// Apply a remote-index permutation (perm[old] == new) to `s`: reorder the
  /// remote vector and rename every Node/NodeSet value through the same
  /// permutation. The result is observationally equivalent to `s` because
  /// all n remotes run the same process definition.
  void permute(State& s, const ir::NodePerm& perm) const;

  /// Rewrite `s` in place to its orbit's canonical representative under
  /// remote permutation (verify::SymmetryMode::Canonical): remotes are
  /// sorted by an identity-independent signature and the inducing
  /// permutation is applied via permute().
  void canonicalize(State& s) const;

  [[nodiscard]] const ir::Protocol& protocol() const { return *protocol_; }
  [[nodiscard]] int num_remotes() const { return n_; }

 private:
  void tau_moves(const State& s, int proc /* -1 = home */, LabelMode mode,
                 std::vector<std::pair<State, Label>>& out) const;
  void home_active(const State& s, LabelMode mode,
                   std::vector<std::pair<State, Label>>& out) const;
  void remote_active(const State& s, int i, LabelMode mode,
                     std::vector<std::pair<State, Label>>& out) const;
  void fire(const State& s, const ir::OutputGuard& og, int active,
            const ir::InputGuard& ig, int passive, LabelMode mode,
            std::vector<std::pair<State, Label>>& out) const;
  /// Bus broadcast (topology bus): requester i fires `og` against the home
  /// input `hg`; every *other* remote snoops via its first enabled
  /// PeerSrc::Kind::Bcast guard (no guard = the snoop is ignored). One
  /// atomic step for the whole bus — its footprint is all nodes, which is
  /// why no ample-set candidate can ever contain it (DESIGN.md §4.9).
  void fire_bcast(const State& s, const ir::OutputGuard& og, int i,
                  const ir::InputGuard& hg, LabelMode mode,
                  std::vector<std::pair<State, Label>>& out) const;

  const ir::Protocol* protocol_;
  int n_;
};

}  // namespace ccref::sem
