// Synchronous (rendezvous) semantics of a star protocol: the atomic-
// transaction view the designer writes and model-checks first (paper §2.3).
//
// A global state is the home's (control state, store) plus each remote's.
// Transitions are:
//   τ      — one process takes an autonomous move;
//   sync   — an enabled output guard in one process meets a matching input
//            guard in the addressed partner; payload transfer, both actions
//            and both state changes happen atomically.
#pragma once

#include <vector>

#include "ir/process.hpp"
#include "ir/store.hpp"
#include "sem/label.hpp"
#include "support/bytes.hpp"

namespace ccref::sem {

/// One process instance's slice of the global state.
struct ProcState {
  ir::StateId state = 0;
  ir::Store store;

  friend bool operator==(const ProcState&, const ProcState&) = default;
};

/// Global state of the rendezvous system: home + n remotes.
struct RvState {
  ProcState home;
  std::vector<ProcState> remotes;

  friend bool operator==(const RvState&, const RvState&) = default;
};

class RendezvousSystem {
 public:
  using State = RvState;

  RendezvousSystem(const ir::Protocol& protocol, int num_remotes);

  [[nodiscard]] State initial() const;

  /// Enumerate all enabled transitions in deterministic order.
  [[nodiscard]] std::vector<std::pair<State, Label>> successors(
      const State& s) const {
    return successors(s, LabelMode::Full);
  }

  /// Same enumeration; `LabelMode::Quiet` skips `Label::text` formatting on
  /// the checker's hot path.
  [[nodiscard]] std::vector<std::pair<State, Label>> successors(
      const State& s, LabelMode mode) const;

  void encode(const State& s, ByteSink& sink) const;
  [[nodiscard]] State decode(ByteSource& src) const;

  /// Human-readable dump for error traces.
  [[nodiscard]] std::string describe(const State& s) const;

  [[nodiscard]] const ir::Protocol& protocol() const { return *protocol_; }
  [[nodiscard]] int num_remotes() const { return n_; }

 private:
  void tau_moves(const State& s, int proc /* -1 = home */, LabelMode mode,
                 std::vector<std::pair<State, Label>>& out) const;
  void home_active(const State& s, LabelMode mode,
                   std::vector<std::pair<State, Label>>& out) const;
  void remote_active(const State& s, int i, LabelMode mode,
                     std::vector<std::pair<State, Label>>& out) const;
  void fire(const State& s, const ir::OutputGuard& og, int active,
            const ir::InputGuard& ig, int passive, LabelMode mode,
            std::vector<std::pair<State, Label>>& out) const;

  const ir::Protocol* protocol_;
  int n_;
};

}  // namespace ccref::sem
