#include "ir/expr.hpp"

#include "ir/process.hpp"
#include "ir/store.hpp"
#include "support/strings.hpp"

namespace ccref::ir {

std::int64_t eval(const Expr& e, const Store& store, const EvalCtx& ctx) {
  using K = Expr::Kind;
  switch (e.kind) {
    case K::IntLit:
    case K::BoolLit:
    case K::NodeLit:
      return e.ival;
    case K::EmptySet:
      return 0;
    case K::VarRef:
      return static_cast<std::int64_t>(store.get(e.var));
    case K::SelfId:
      CCREF_REQUIRE_MSG(ctx.self >= 0, "SelfId outside a remote instance");
      return ctx.self;
    case K::Not:
      return eval(*e.a, store, ctx) == 0 ? 1 : 0;
    case K::Add:
      return eval(*e.a, store, ctx) + eval(*e.b, store, ctx);
    case K::Sub:
      return eval(*e.a, store, ctx) - eval(*e.b, store, ctx);
    case K::Eq:
      return eval(*e.a, store, ctx) == eval(*e.b, store, ctx) ? 1 : 0;
    case K::Ne:
      return eval(*e.a, store, ctx) != eval(*e.b, store, ctx) ? 1 : 0;
    case K::Lt:
      return eval(*e.a, store, ctx) < eval(*e.b, store, ctx) ? 1 : 0;
    case K::Le:
      return eval(*e.a, store, ctx) <= eval(*e.b, store, ctx) ? 1 : 0;
    case K::And:
      return eval(*e.a, store, ctx) != 0 && eval(*e.b, store, ctx) != 0;
    case K::Or:
      return eval(*e.a, store, ctx) != 0 || eval(*e.b, store, ctx) != 0;
    case K::SetEmpty:
      return static_cast<std::uint64_t>(eval(*e.a, store, ctx)) == 0;
    case K::SetContains: {
      auto set = static_cast<std::uint64_t>(eval(*e.a, store, ctx));
      auto node = eval(*e.b, store, ctx);
      CCREF_ASSERT(node >= 0 && node < kMaxNodes);
      return (set >> node) & 1u;
    }
    case K::SetSize:
      return NodeSet(static_cast<std::uint64_t>(eval(*e.a, store, ctx)))
          .size();
  }
  CCREF_UNREACHABLE("bad Expr::Kind");
}

bool expr_equal(const Expr& x, const Expr& y) {
  if (x.kind != y.kind || x.ival != y.ival || x.var != y.var) return false;
  if (!!x.a != !!y.a || !!x.b != !!y.b) return false;
  if (x.a && !expr_equal(*x.a, *y.a)) return false;
  if (x.b && !expr_equal(*x.b, *y.b)) return false;
  return true;
}

std::string to_string(const Expr& e, const Process& proc) {
  using K = Expr::Kind;
  auto bin = [&](const char* op) {
    return "(" + to_string(*e.a, proc) + " " + op + " " +
           to_string(*e.b, proc) + ")";
  };
  switch (e.kind) {
    case K::IntLit:
      return strf("%lld", static_cast<long long>(e.ival));
    case K::NodeLit:
      if (static_cast<Value>(e.ival) == kNoNode) return "none";
      return strf("node(%lld)", static_cast<long long>(e.ival));
    case K::BoolLit:
      return e.ival ? "true" : "false";
    case K::EmptySet:
      return "{}";
    case K::VarRef:
      return e.var < proc.vars.size() ? proc.vars[e.var].name
                                      : strf("v%u", e.var);
    case K::SelfId:
      return "self";
    case K::Not:
      return "!" + to_string(*e.a, proc);
    case K::Add:
      return bin("+");
    case K::Sub:
      return bin("-");
    case K::Eq:
      return bin("==");
    case K::Ne:
      return bin("!=");
    case K::Lt:
      return bin("<");
    case K::Le:
      return bin("<=");
    case K::And:
      return bin("&&");
    case K::Or:
      return bin("||");
    case K::SetEmpty:
      return "empty(" + to_string(*e.a, proc) + ")";
    case K::SetContains:
      return "(" + to_string(*e.b, proc) + " in " + to_string(*e.a, proc) +
             ")";
    case K::SetSize:
      return "size(" + to_string(*e.a, proc) + ")";
  }
  CCREF_UNREACHABLE("bad Expr::Kind");
}

namespace ex {
namespace {
ExprP make(Expr::Kind k, std::int64_t ival, VarId var, ExprP a, ExprP b) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  e->ival = ival;
  e->var = var;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}
}  // namespace

ExprP lit(std::int64_t v) {
  return make(Expr::Kind::IntLit, v, kNoVar, nullptr, nullptr);
}
ExprP node(std::int64_t id) {
  return make(Expr::Kind::NodeLit, id, kNoVar, nullptr, nullptr);
}
ExprP no_node() {
  return make(Expr::Kind::NodeLit, static_cast<std::int64_t>(kNoNode), kNoVar,
              nullptr, nullptr);
}
ExprP boolean(bool v) {
  return make(Expr::Kind::BoolLit, v ? 1 : 0, kNoVar, nullptr, nullptr);
}
ExprP empty_set() {
  return make(Expr::Kind::EmptySet, 0, kNoVar, nullptr, nullptr);
}
ExprP var(VarId v) { return make(Expr::Kind::VarRef, 0, v, nullptr, nullptr); }
ExprP self() { return make(Expr::Kind::SelfId, 0, kNoVar, nullptr, nullptr); }
ExprP negate(ExprP a) {
  return make(Expr::Kind::Not, 0, kNoVar, std::move(a), nullptr);
}
ExprP add(ExprP a, ExprP b) {
  return make(Expr::Kind::Add, 0, kNoVar, std::move(a), std::move(b));
}
ExprP sub(ExprP a, ExprP b) {
  return make(Expr::Kind::Sub, 0, kNoVar, std::move(a), std::move(b));
}
ExprP eq(ExprP a, ExprP b) {
  return make(Expr::Kind::Eq, 0, kNoVar, std::move(a), std::move(b));
}
ExprP ne(ExprP a, ExprP b) {
  return make(Expr::Kind::Ne, 0, kNoVar, std::move(a), std::move(b));
}
ExprP lt(ExprP a, ExprP b) {
  return make(Expr::Kind::Lt, 0, kNoVar, std::move(a), std::move(b));
}
ExprP le(ExprP a, ExprP b) {
  return make(Expr::Kind::Le, 0, kNoVar, std::move(a), std::move(b));
}
ExprP land(ExprP a, ExprP b) {
  return make(Expr::Kind::And, 0, kNoVar, std::move(a), std::move(b));
}
ExprP lor(ExprP a, ExprP b) {
  return make(Expr::Kind::Or, 0, kNoVar, std::move(a), std::move(b));
}
ExprP set_empty(ExprP a) {
  return make(Expr::Kind::SetEmpty, 0, kNoVar, std::move(a), nullptr);
}
ExprP set_contains(ExprP set, ExprP node) {
  return make(Expr::Kind::SetContains, 0, kNoVar, std::move(set),
              std::move(node));
}
ExprP set_size(ExprP set) {
  return make(Expr::Kind::SetSize, 0, kNoVar, std::move(set), nullptr);
}

}  // namespace ex
}  // namespace ccref::ir
