#include "ir/process.hpp"

namespace ccref::ir {

VarId Process::find_var(std::string_view name) const {
  for (std::size_t i = 0; i < vars.size(); ++i)
    if (vars[i].name == name) return static_cast<VarId>(i);
  return kNoVar;
}

StateId Process::find_state(std::string_view name) const {
  for (std::size_t i = 0; i < states.size(); ++i)
    if (states[i].name == name) return static_cast<StateId>(i);
  return kNoState;
}

MsgId Protocol::find_message(std::string_view name) const {
  for (std::size_t i = 0; i < messages.size(); ++i)
    if (messages[i].name == name) return static_cast<MsgId>(i);
  CCREF_REQUIRE_MSG(false, "unknown message name");
  return 0;
}

}  // namespace ccref::ir
