#include "ir/print.hpp"

#include "support/strings.hpp"

namespace ccref::ir {

namespace {

std::string var_name(const Process& proc, VarId v) {
  return v < proc.vars.size() ? proc.vars[v].name : strf("v%u", v);
}

std::string peer_src(const PeerSrc& src, const Process& proc,
                     VarId bind_peer) {
  switch (src.kind) {
    case PeerSrc::Kind::Home:
      return "h";
    case PeerSrc::Kind::Any:
      return bind_peer == kNoVar
                 ? "r(any)"
                 : strf("r(any %s)", var_name(proc, bind_peer).c_str());
    case PeerSrc::Kind::Expr:
      return "r(" + to_string(*src.expr, proc) + ")";
    case PeerSrc::Kind::Bcast:
      return bind_peer == kNoVar
                 ? "bcast"
                 : strf("bcast(%s)", var_name(proc, bind_peer).c_str());
  }
  return "?";
}

std::string peer_sel(const PeerSel& sel, const Process& proc,
                     VarId bind_peer) {
  switch (sel.kind) {
    case PeerSel::Kind::Home:
      return "h";
    case PeerSel::Kind::Expr:
      return "r(" + to_string(*sel.expr, proc) + ")";
    case PeerSel::Kind::AnyInSet: {
      std::string set = to_string(*sel.expr, proc);
      return bind_peer == kNoVar
                 ? strf("r(pick %s)", set.c_str())
                 : strf("r(pick %s as %s)", set.c_str(),
                        var_name(proc, bind_peer).c_str());
    }
    case PeerSel::Kind::Bcast:
      return "bcast";
  }
  return "?";
}

std::string clause_suffix(const StmtP& action, StateId next,
                          const Process& proc, const std::string& label) {
  std::string out;
  if (action && !is_nop(*action))
    out += " { " + to_string(*action, proc) + " }";
  out += " -> " + proc.state(next).name;
  if (!label.empty()) out += "   // " + label;
  return out;
}

std::string cond_prefix(const ExprP& cond, const Process& proc) {
  return cond ? "[" + to_string(*cond, proc) + "] " : "";
}

}  // namespace

std::string to_string(const InputGuard& g, const Process& proc,
                      const Protocol& protocol) {
  std::string binds;
  if (!g.bind_payload.empty()) {
    std::vector<std::string> names;
    for (VarId v : g.bind_payload)
      names.push_back(v == kNoVar ? "_" : var_name(proc, v));
    binds = "(" + join(names, ", ") + ")";
  }
  return cond_prefix(g.cond, proc) + peer_src(g.from, proc, g.bind_peer) +
         "?" + protocol.message(g.msg).name + binds +
         clause_suffix(g.action, g.next, proc, g.label);
}

std::string to_string(const OutputGuard& g, const Process& proc,
                      const Protocol& protocol) {
  std::string pay;
  if (!g.payload.empty()) {
    std::vector<std::string> parts;
    for (const auto& e : g.payload) parts.push_back(to_string(*e, proc));
    pay = "(" + join(parts, ", ") + ")";
  }
  return cond_prefix(g.cond, proc) + peer_sel(g.to, proc, g.bind_peer) + "!" +
         protocol.message(g.msg).name + pay +
         clause_suffix(g.action, g.next, proc, g.label);
}

std::string to_string(const TauGuard& g, const Process& proc) {
  std::string name = g.label.empty() ? "tau" : "tau " + g.label;
  return cond_prefix(g.cond, proc) + name +
         clause_suffix(g.action, g.next, proc, "");
}

std::string to_string(const Process& proc, const Protocol& protocol) {
  std::string out =
      strf("%s %s {\n", proc.role == Role::Home ? "home" : "remote",
           proc.name.c_str());
  for (std::size_t i = 0; i < proc.vars.size(); ++i) {
    const VarDecl& v = proc.vars[i];
    out += strf("  var %s: %s", v.name.c_str(),
                std::string(type_name(v.type)).c_str());
    if (v.type == Type::Int) out += strf(" mod %u", v.bound);
    // Emit the initializer whenever it differs from the parser's default for
    // the type (node vars default to the null node, everything else to 0).
    const Value default_init = v.type == Type::Node ? kNoNode : 0;
    if (v.init != default_init)
      out += strf(" = %llu", (unsigned long long)v.init);
    out += ";\n";
  }
  for (std::size_t i = 0; i < proc.states.size(); ++i) {
    const State& s = proc.states[i];
    out += strf("  %s %s%s {\n",
                s.kind == StateKind::Internal ? "internal" : "state",
                s.name.c_str(),
                static_cast<StateId>(i) == proc.initial ? " initial" : "");
    for (const auto& g : s.inputs)
      out += "    " + to_string(g, proc, protocol) + "\n";
    for (const auto& g : s.outputs)
      out += "    " + to_string(g, proc, protocol) + "\n";
    for (const auto& g : s.taus) out += "    " + to_string(g, proc) + "\n";
    out += "  }\n";
  }
  out += "}\n";
  return out;
}

std::string to_string(const Protocol& protocol) {
  std::string out = strf("protocol %s;\n", protocol.name.c_str());
  if (protocol.topology == Topology::Bus) out += "topology bus;\n";
  for (const auto& m : protocol.messages) {
    out += "message " + m.name;
    if (!m.payload.empty()) {
      std::vector<std::string> parts;
      for (Type t : m.payload) parts.emplace_back(type_name(t));
      out += "(" + join(parts, ", ") + ")";
    }
    out += ";\n";
  }
  out += "\n" + to_string(protocol.home, protocol);
  out += "\n" + to_string(protocol.remote, protocol);
  return out;
}

}  // namespace ccref::ir
