// Expression AST for guard conditions and message payloads.
//
// Expressions are immutable trees (not std::function) because the refinement
// engine performs *syntactic* analysis on them — request/reply fusion (§3.3)
// and the remote-node restrictions (§2.4) are syntactic properties — and the
// model checker needs deterministic, serializable evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ir/types.hpp"

namespace ccref::ir {

struct Process;  // fwd
class Store;     // fwd

struct Expr;
using ExprP = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    IntLit,       // ival
    BoolLit,      // ival (0/1)
    NodeLit,      // ival (a literal node id, used to reset dead binders)
    EmptySet,     // NodeSet literal {}
    VarRef,       // var
    SelfId,       // the executing remote node's id (remote processes only)
    Not,          // a
    Add,          // a + b (Int)
    Sub,          // a - b (Int, may be negative before modular assign)
    Eq,           // a == b (Int or Node or Bool)
    Ne,           // a != b
    Lt,           // a < b (Int)
    Le,           // a <= b (Int)
    And,          // a && b
    Or,           // a || b
    SetEmpty,     // a is the empty set
    SetContains,  // b (Node) in a (NodeSet)
    SetSize,      // |a| as Int
  };

  Kind kind;
  std::int64_t ival = 0;
  VarId var = kNoVar;
  ExprP a, b;
};

/// Evaluation context: `self` is the node id of the executing remote
/// instance (meaningless, and rejected by validation, in the home process).
struct EvalCtx {
  int self = -1;
};

/// Evaluate an expression over a store. Int results are signed and may
/// exceed variable bounds; assignment reduces them (see Stmt).
[[nodiscard]] std::int64_t eval(const Expr& e, const Store& store,
                                const EvalCtx& ctx);

/// Structural equality (used by fusion detection and tests).
[[nodiscard]] bool expr_equal(const Expr& x, const Expr& y);

/// Pretty-print to CSP-like syntax, resolving variable names via `proc`.
[[nodiscard]] std::string to_string(const Expr& e, const Process& proc);

// ---- Factory helpers -------------------------------------------------------
namespace ex {

[[nodiscard]] ExprP lit(std::int64_t v);
[[nodiscard]] ExprP node(std::int64_t id);
/// The null node (kNoNode); the only Node literal protocols should use to
/// reset a dead binder — see the kNoNode doc in types.hpp.
[[nodiscard]] ExprP no_node();
[[nodiscard]] ExprP boolean(bool v);
[[nodiscard]] ExprP empty_set();
[[nodiscard]] ExprP var(VarId v);
[[nodiscard]] ExprP self();
[[nodiscard]] ExprP negate(ExprP a);  // logical not
[[nodiscard]] ExprP add(ExprP a, ExprP b);
[[nodiscard]] ExprP sub(ExprP a, ExprP b);
[[nodiscard]] ExprP eq(ExprP a, ExprP b);
[[nodiscard]] ExprP ne(ExprP a, ExprP b);
[[nodiscard]] ExprP lt(ExprP a, ExprP b);
[[nodiscard]] ExprP le(ExprP a, ExprP b);
[[nodiscard]] ExprP land(ExprP a, ExprP b);
[[nodiscard]] ExprP lor(ExprP a, ExprP b);
[[nodiscard]] ExprP set_empty(ExprP a);
[[nodiscard]] ExprP set_contains(ExprP set, ExprP node);
[[nodiscard]] ExprP set_size(ExprP set);

}  // namespace ex

}  // namespace ccref::ir
