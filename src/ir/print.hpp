// Pretty-printer: renders a Protocol back to the textual DSL syntax
// (round-trips through dsl::parse). Used by examples, goldens, and error
// reporting.
#pragma once

#include <string>

#include "ir/process.hpp"

namespace ccref::ir {

[[nodiscard]] std::string to_string(const Protocol& protocol);
[[nodiscard]] std::string to_string(const Process& proc,
                                    const Protocol& protocol);

/// One-line rendering of a guard, e.g. "r(any j)?req -> GRANT".
[[nodiscard]] std::string to_string(const InputGuard& g, const Process& proc,
                                    const Protocol& protocol);
[[nodiscard]] std::string to_string(const OutputGuard& g, const Process& proc,
                                    const Protocol& protocol);
[[nodiscard]] std::string to_string(const TauGuard& g, const Process& proc);

}  // namespace ccref::ir
