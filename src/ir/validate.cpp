#include "ir/validate.hpp"

#include <set>

#include "support/strings.hpp"

namespace ccref::ir {

namespace {

struct Checker {
  const Protocol& protocol;
  std::vector<Diag> diags;

  void error(std::string where, std::string text) {
    diags.push_back({Diag::Severity::Error, std::move(where),
                     std::move(text)});
  }
  void warn(std::string where, std::string text) {
    diags.push_back({Diag::Severity::Warning, std::move(where),
                     std::move(text)});
  }

  void expect_type(const ExprP& e, const Process& proc, Type want,
                   const std::string& where, const char* what) {
    if (!e) {
      error(where, strf("%s is missing", what));
      return;
    }
    std::string err;
    auto got = type_of(*e, proc, &err);
    if (!got) {
      error(where, strf("%s: %s", what, err.c_str()));
    } else if (*got != want) {
      error(where, strf("%s has type %s, expected %s", what,
                        std::string(type_name(*got)).c_str(),
                        std::string(type_name(want)).c_str()));
    }
  }

  void check_cond(const ExprP& cond, const Process& proc,
                  const std::string& where) {
    if (cond) expect_type(cond, proc, Type::Bool, where, "condition");
  }

  void check_stmt(const StmtP& stmt, const Process& proc,
                  const std::string& where) {
    if (!stmt) return;
    check_stmt_inner(*stmt, proc, where);
  }

  void check_stmt_inner(const Stmt& s, const Process& proc,
                        const std::string& where) {
    using K = Stmt::Kind;
    switch (s.kind) {
      case K::Nop:
        return;
      case K::Assign: {
        if (s.var >= proc.vars.size()) {
          error(where, "assignment to undeclared variable");
          return;
        }
        expect_type(s.a, proc, proc.vars[s.var].type, where,
                    "assignment value");
        return;
      }
      case K::SetAdd:
      case K::SetRemove: {
        if (s.var >= proc.vars.size() ||
            proc.vars[s.var].type != Type::NodeSet) {
          error(where, "set update on non-NodeSet variable");
          return;
        }
        expect_type(s.a, proc, Type::Node, where, "set element");
        return;
      }
      case K::Seq:
        for (const auto& child : s.body)
          check_stmt_inner(*child, proc, where);
        return;
    }
  }

  void check_msg_payload(MsgId msg, const std::vector<ExprP>& payload,
                         const Process& proc, const std::string& where) {
    if (msg >= protocol.messages.size()) {
      error(where, "guard uses undeclared message");
      return;
    }
    const MsgDecl& decl = protocol.messages[msg];
    if (payload.size() != decl.payload.size()) {
      error(where, strf("message '%s' expects %zu payload fields, guard "
                        "supplies %zu",
                        decl.name.c_str(), decl.payload.size(),
                        payload.size()));
      return;
    }
    for (std::size_t i = 0; i < payload.size(); ++i)
      expect_type(payload[i], proc, decl.payload[i], where, "payload field");
  }

  void check_msg_binds(MsgId msg, const std::vector<VarId>& binds,
                       const Process& proc, const std::string& where) {
    if (msg >= protocol.messages.size()) {
      error(where, "guard uses undeclared message");
      return;
    }
    const MsgDecl& decl = protocol.messages[msg];
    if (!binds.empty() && binds.size() != decl.payload.size()) {
      error(where, strf("message '%s' has %zu payload fields, guard binds "
                        "%zu",
                        decl.name.c_str(), decl.payload.size(),
                        binds.size()));
      return;
    }
    for (std::size_t i = 0; i < binds.size(); ++i) {
      if (binds[i] == kNoVar) continue;  // explicitly ignored field
      if (binds[i] >= proc.vars.size()) {
        error(where, "payload binds undeclared variable");
      } else if (proc.vars[binds[i]].type != decl.payload[i]) {
        error(where, "payload binding type mismatch");
      }
    }
  }

  void check_bind_peer(VarId bind, const Process& proc,
                       const std::string& where) {
    if (bind == kNoVar) return;
    if (bind >= proc.vars.size() || proc.vars[bind].type != Type::Node)
      error(where, "bind_peer variable must have type node");
  }

  /// A broadcast is home-mediated: it can only fire when the home has an
  /// enabled generalized input for the message. With no such guard at all
  /// the broadcast is permanently disabled — a modelling error, not a
  /// reachable deadlock, so diagnose it statically.
  void check_bcast_home_partner(const OutputGuard& g,
                                const std::string& where) {
    for (const auto& hs : protocol.home.states)
      for (const auto& hg : hs.inputs)
        if (hg.msg == g.msg && hg.from.kind == PeerSrc::Kind::Any) return;
    const char* msg_name = g.msg < protocol.messages.size()
                               ? protocol.messages[g.msg].name.c_str()
                               : "?";
    error(where,
          strf("broadcast message '%s' has no generalized home input "
               "'r(any v)?%s' — a broadcast is home-mediated and could "
               "never fire",
               msg_name, msg_name));
  }

  void check_process(const Process& proc) {
    const char* pn = proc.name.c_str();
    if (proc.initial >= proc.states.size())
      error(proc.name, "initial state out of range");
    if (proc.role == Role::Remote) {
      // SelfId is checked per-expression below via role; nothing global.
    }

    for (std::size_t si = 0; si < proc.states.size(); ++si) {
      const State& s = proc.states[si];
      std::string base = strf("%s.%s", pn, s.name.c_str());

      if (s.kind == StateKind::Internal) {
        if (!s.inputs.empty() || !s.outputs.empty())
          error(base, "internal state offers communication guards");
        if (s.taus.empty())
          error(base,
                "internal state has no τ move (process would be stuck, "
                "violating the §2.4 eventually-communicating assumption)");
      } else {
        if (s.inputs.empty() && s.outputs.empty() && s.taus.empty())
          error(base, "communication state has no guards");
      }

      // §2.4: remote comm states are single-output active or passive. Under
      // topology bus an active state may also snoop ('bcast?' inputs only).
      if (proc.role == Role::Remote && s.kind == StateKind::Comm) {
        bool active = !s.outputs.empty();
        if (active) {
          bool ok = s.outputs.size() == 1 && s.taus.empty();
          if (protocol.topology == Topology::Bus) {
            for (const auto& in : s.inputs)
              if (in.from.kind != PeerSrc::Kind::Bcast) ok = false;
          } else {
            ok = ok && s.inputs.empty();
          }
          if (!ok)
            error(base,
                  protocol.topology == Topology::Bus
                      ? "remote active state must have exactly one output "
                        "guard, no taus, and only 'bcast?' snoop inputs "
                        "(§2.4 relaxed for topology bus)"
                      : "remote active state must have exactly one output "
                        "guard and no other guards (§2.4)");
        }
      }

      for (std::size_t gi = 0; gi < s.inputs.size(); ++gi) {
        const InputGuard& g = s.inputs[gi];
        std::string where = strf("%s.in[%zu]", base.c_str(), gi);
        check_cond(g.cond, proc, where);
        check_stmt(g.action, proc, where);
        check_msg_binds(g.msg, g.bind_payload, proc, where);
        check_bind_peer(g.bind_peer, proc, where);
        if (g.next >= proc.states.size())
          error(where, "next state out of range");
        const bool bus = protocol.topology == Topology::Bus;
        switch (g.from.kind) {
          case PeerSrc::Kind::Home:
            if (proc.role == Role::Home)
              error(where, "home cannot receive from itself");
            break;
          case PeerSrc::Kind::Any:
            if (proc.role == Role::Remote)
              error(where,
                    bus ? "remote receives from the home or snoops "
                          "broadcasts ('bcast?') under topology bus"
                        : "remote receives only from the home (star "
                          "topology)");
            break;
          case PeerSrc::Kind::Expr:
            if (proc.role == Role::Remote)
              error(where,
                    bus ? "remote receives from the home or snoops "
                          "broadcasts ('bcast?') under topology bus"
                        : "remote receives only from the home (star "
                          "topology)");
            else
              expect_type(g.from.expr, proc, Type::Node, where,
                          "source peer expression");
            break;
          case PeerSrc::Kind::Bcast:
            if (proc.role == Role::Home)
              error(where,
                    "the home observes broadcasts through its generalized "
                    "'r(any v)?' input, not a 'bcast?' snoop guard");
            else if (!bus)
              error(where,
                    "'bcast?' snoop guard requires 'topology bus;' (this "
                    "protocol is star)");
            break;
        }
        if (g.bind_peer != kNoVar && g.from.kind != PeerSrc::Kind::Any &&
            g.from.kind != PeerSrc::Kind::Bcast)
          warn(where, "bind_peer on a non-Any source is redundant");
      }

      for (std::size_t gi = 0; gi < s.outputs.size(); ++gi) {
        const OutputGuard& g = s.outputs[gi];
        std::string where = strf("%s.out[%zu]", base.c_str(), gi);
        check_cond(g.cond, proc, where);
        check_stmt(g.action, proc, where);
        check_msg_payload(g.msg, g.payload, proc, where);
        check_bind_peer(g.bind_peer, proc, where);
        if (g.next >= proc.states.size())
          error(where, "next state out of range");
        const bool bus = protocol.topology == Topology::Bus;
        switch (g.to.kind) {
          case PeerSel::Kind::Home:
            if (proc.role == Role::Home)
              error(where, "home cannot send to itself");
            break;
          case PeerSel::Kind::Expr:
            if (proc.role == Role::Remote)
              error(where,
                    bus ? "remote sends to the home or broadcasts "
                          "('bcast!') under topology bus; a bus cannot "
                          "address one peer from a remote"
                        : "remote sends only to the home (star topology)");
            else
              expect_type(g.to.expr, proc, Type::Node, where,
                          "target peer expression");
            break;
          case PeerSel::Kind::AnyInSet:
            if (proc.role == Role::Remote)
              error(where,
                    bus ? "remote sends to the home or broadcasts "
                          "('bcast!') under topology bus; a bus cannot "
                          "address one peer from a remote"
                        : "remote sends only to the home (star topology)");
            else if (bus)
              error(where,
                    "a bus cannot address a nondeterministically chosen "
                    "peer ('pick') — under topology bus the home replies "
                    "to a specific requester (r(e)!) and only remotes "
                    "broadcast");
            else
              expect_type(g.to.expr, proc, Type::NodeSet, where,
                          "target peer set expression");
            break;
          case PeerSel::Kind::Bcast:
            if (proc.role == Role::Home)
              error(where,
                    bus ? "the home replies point-to-point (r(e)!); only "
                          "remotes broadcast on the bus"
                        : "'bcast!' requires 'topology bus;' (this protocol "
                          "is star)");
            else if (!bus)
              error(where,
                    "'bcast!' requires 'topology bus;' (this protocol is "
                    "star)");
            else if (protocol.home.role == Role::Home)
              check_bcast_home_partner(g, where);
            break;
        }
        if (g.bind_peer != kNoVar && g.to.kind != PeerSel::Kind::AnyInSet)
          warn(where, "bind_peer on a non-AnyInSet target is redundant");
      }

      for (std::size_t gi = 0; gi < s.taus.size(); ++gi) {
        const TauGuard& g = s.taus[gi];
        std::string where = strf("%s.tau[%zu]", base.c_str(), gi);
        check_cond(g.cond, proc, where);
        check_stmt(g.action, proc, where);
        if (g.next >= proc.states.size())
          error(where, "next state out of range");
      }
    }

    check_reachability(proc);
  }

  void check_reachability(const Process& proc) {
    std::vector<bool> seen(proc.states.size(), false);
    std::vector<StateId> stack;
    if (proc.initial < proc.states.size()) {
      seen[proc.initial] = true;
      stack.push_back(proc.initial);
    }
    while (!stack.empty()) {
      StateId id = stack.back();
      stack.pop_back();
      const State& s = proc.states[id];
      auto visit = [&](StateId next) {
        if (next < proc.states.size() && !seen[next]) {
          seen[next] = true;
          stack.push_back(next);
        }
      };
      for (const auto& g : s.inputs) visit(g.next);
      for (const auto& g : s.outputs) visit(g.next);
      for (const auto& g : s.taus) visit(g.next);
    }
    for (std::size_t i = 0; i < proc.states.size(); ++i)
      if (!seen[i])
        warn(strf("%s.%s", proc.name.c_str(), proc.states[i].name.c_str()),
             "state is unreachable from the initial state");
  }

  /// Warn on messages no guard ever offers to send or receive.
  void check_message_usage() {
    std::set<MsgId> sent, received;
    auto scan = [&](const Process& proc) {
      for (const auto& s : proc.states) {
        for (const auto& g : s.outputs) sent.insert(g.msg);
        for (const auto& g : s.inputs) received.insert(g.msg);
      }
    };
    scan(protocol.home);
    scan(protocol.remote);
    for (std::size_t m = 0; m < protocol.messages.size(); ++m) {
      MsgId id = static_cast<MsgId>(m);
      if (!sent.contains(id) && !received.contains(id))
        warn(protocol.name,
             strf("message '%s' is never used",
                  protocol.messages[m].name.c_str()));
      else if (sent.contains(id) != received.contains(id))
        warn(protocol.name,
             strf("message '%s' is %s but never %s — the rendezvous can "
                  "never complete",
                  protocol.messages[m].name.c_str(),
                  sent.contains(id) ? "sent" : "received",
                  sent.contains(id) ? "received" : "sent"));
    }
  }
};

}  // namespace

std::optional<Type> type_of(const Expr& e, const Process& proc,
                            std::string* err) {
  using K = Expr::Kind;
  auto fail = [&](std::string msg) -> std::optional<Type> {
    if (err) *err = std::move(msg);
    return std::nullopt;
  };
  auto sub = [&](const ExprP& child) { return type_of(*child, proc, err); };
  auto require_child = [&](const ExprP& child,
                           const char* what) -> std::optional<Type> {
    if (!child) return fail(strf("missing %s operand", what));
    return sub(child);
  };

  switch (e.kind) {
    case K::IntLit:
      return Type::Int;
    case K::NodeLit:
      return Type::Node;
    case K::BoolLit:
      return Type::Bool;
    case K::EmptySet:
      return Type::NodeSet;
    case K::VarRef:
      if (e.var >= proc.vars.size()) return fail("undeclared variable");
      return proc.vars[e.var].type;
    case K::SelfId:
      if (proc.role != Role::Remote)
        return fail("'self' is only meaningful in the remote process");
      return Type::Node;
    case K::Not: {
      auto a = require_child(e.a, "not");
      if (!a) return std::nullopt;
      if (*a != Type::Bool) return fail("'!' needs a bool operand");
      return Type::Bool;
    }
    case K::Add:
    case K::Sub: {
      auto a = require_child(e.a, "left");
      auto b = require_child(e.b, "right");
      if (!a || !b) return std::nullopt;
      if (*a != Type::Int || *b != Type::Int)
        return fail("arithmetic needs int operands");
      return Type::Int;
    }
    case K::Eq:
    case K::Ne: {
      auto a = require_child(e.a, "left");
      auto b = require_child(e.b, "right");
      if (!a || !b) return std::nullopt;
      if (*a != *b) return fail("comparison operands have different types");
      return Type::Bool;
    }
    case K::Lt:
    case K::Le: {
      auto a = require_child(e.a, "left");
      auto b = require_child(e.b, "right");
      if (!a || !b) return std::nullopt;
      if (*a != Type::Int || *b != Type::Int)
        return fail("ordering needs int operands");
      return Type::Bool;
    }
    case K::And:
    case K::Or: {
      auto a = require_child(e.a, "left");
      auto b = require_child(e.b, "right");
      if (!a || !b) return std::nullopt;
      if (*a != Type::Bool || *b != Type::Bool)
        return fail("logical operators need bool operands");
      return Type::Bool;
    }
    case K::SetEmpty: {
      auto a = require_child(e.a, "set");
      if (!a) return std::nullopt;
      if (*a != Type::NodeSet) return fail("empty() needs a nodeset");
      return Type::Bool;
    }
    case K::SetContains: {
      auto a = require_child(e.a, "set");
      auto b = require_child(e.b, "element");
      if (!a || !b) return std::nullopt;
      if (*a != Type::NodeSet || *b != Type::Node)
        return fail("'in' needs (node, nodeset)");
      return Type::Bool;
    }
    case K::SetSize: {
      auto a = require_child(e.a, "set");
      if (!a) return std::nullopt;
      if (*a != Type::NodeSet) return fail("size() needs a nodeset");
      return Type::Int;
    }
  }
  return fail("bad expression kind");
}

std::vector<Diag> validate(const Protocol& protocol) {
  Checker c{protocol, {}};
  if (protocol.home.role != Role::Home)
    c.error(protocol.name, "home process does not have the Home role");
  if (protocol.remote.role != Role::Remote)
    c.error(protocol.name, "remote process does not have the Remote role");
  c.check_process(protocol.home);
  c.check_process(protocol.remote);
  c.check_message_usage();
  return std::move(c.diags);
}

bool has_errors(const std::vector<Diag>& diags) {
  for (const auto& d : diags)
    if (d.severity == Diag::Severity::Error) return true;
  return false;
}

std::string to_string(const std::vector<Diag>& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += d.severity == Diag::Severity::Error ? "error: " : "warning: ";
    out += d.where;
    out += ": ";
    out += d.text;
    out += '\n';
  }
  return out;
}

}  // namespace ccref::ir
