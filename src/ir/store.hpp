// Variable store: the data state of one process instance.
//
// A Store is a flat vector of canonical Values matching a declared variable
// list. It is the unit of state the rendezvous and asynchronous semantics
// snapshot, encode into the model checker's visited set, and mutate through
// Stmt execution.
#pragma once

#include <span>
#include <vector>

#include "ir/types.hpp"
#include "support/bytes.hpp"
#include "support/contracts.hpp"

namespace ccref::ir {

class Store {
 public:
  Store() = default;

  /// Initialize from declarations (values start at each decl's init).
  explicit Store(std::span<const VarDecl> decls);

  [[nodiscard]] Value get(VarId v) const {
    CCREF_REQUIRE(v < values_.size());
    return values_[v];
  }

  void set(VarId v, Value value) {
    CCREF_REQUIRE(v < values_.size());
    values_[v] = value;
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }

  void encode(ByteSink& sink) const {
    for (Value v : values_) sink.varint(v);
  }

  void decode(ByteSource& src) {
    for (Value& v : values_) v = src.varint();
  }

  friend bool operator==(const Store&, const Store&) = default;

 private:
  std::vector<Value> values_;
};

inline Store::Store(std::span<const VarDecl> decls) {
  values_.reserve(decls.size());
  for (const auto& d : decls) values_.push_back(d.init);
}

}  // namespace ccref::ir
