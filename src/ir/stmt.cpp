#include "ir/stmt.hpp"

#include "ir/process.hpp"
#include "ir/store.hpp"
#include "support/strings.hpp"

namespace ccref::ir {

namespace {

/// Floor modulus: keeps Int assignments inside [0, bound) even when the
/// expression result went negative (e.g. `x - 1` at zero wraps to bound-1).
Value reduce(std::int64_t v, std::uint32_t bound) {
  CCREF_ASSERT(bound > 0);
  std::int64_t m = v % static_cast<std::int64_t>(bound);
  if (m < 0) m += bound;
  return static_cast<Value>(m);
}

}  // namespace

void exec(const Stmt& s, Store& store, std::span<const VarDecl> decls,
          const EvalCtx& ctx) {
  using K = Stmt::Kind;
  switch (s.kind) {
    case K::Nop:
      return;
    case K::Assign: {
      CCREF_REQUIRE(s.var < decls.size());
      std::int64_t v = eval(*s.a, store, ctx);
      const VarDecl& d = decls[s.var];
      store.set(s.var, d.type == Type::Int
                           ? reduce(v, d.bound)
                           : static_cast<Value>(v));
      return;
    }
    case K::SetAdd: {
      std::int64_t node = eval(*s.a, store, ctx);
      CCREF_ASSERT(node >= 0 && node < kMaxNodes);
      NodeSet set(store.get(s.var));
      set.add(static_cast<NodeId>(node));
      store.set(s.var, set.bits());
      return;
    }
    case K::SetRemove: {
      std::int64_t node = eval(*s.a, store, ctx);
      CCREF_ASSERT(node >= 0 && node < kMaxNodes);
      NodeSet set(store.get(s.var));
      set.remove(static_cast<NodeId>(node));
      store.set(s.var, set.bits());
      return;
    }
    case K::Seq:
      for (const auto& child : s.body) exec(*child, store, decls, ctx);
      return;
  }
  CCREF_UNREACHABLE("bad Stmt::Kind");
}

bool stmt_equal(const Stmt& x, const Stmt& y) {
  if (x.kind != y.kind || x.var != y.var) return false;
  if (!!x.a != !!y.a) return false;
  if (x.a && !expr_equal(*x.a, *y.a)) return false;
  if (x.body.size() != y.body.size()) return false;
  for (std::size_t i = 0; i < x.body.size(); ++i)
    if (!stmt_equal(*x.body[i], *y.body[i])) return false;
  return true;
}

bool is_nop(const Stmt& s) {
  if (s.kind == Stmt::Kind::Nop) return true;
  if (s.kind == Stmt::Kind::Seq) {
    for (const auto& child : s.body)
      if (!is_nop(*child)) return false;
    return true;
  }
  return false;
}

std::string to_string(const Stmt& s, const Process& proc) {
  using K = Stmt::Kind;
  auto var_name = [&](VarId v) {
    return v < proc.vars.size() ? proc.vars[v].name : strf("v%u", v);
  };
  switch (s.kind) {
    case K::Nop:
      return "skip";
    case K::Assign:
      return var_name(s.var) + " := " + to_string(*s.a, proc);
    case K::SetAdd:
      return var_name(s.var) + " += {" + to_string(*s.a, proc) + "}";
    case K::SetRemove:
      return var_name(s.var) + " -= {" + to_string(*s.a, proc) + "}";
    case K::Seq: {
      std::vector<std::string> parts;
      parts.reserve(s.body.size());
      for (const auto& child : s.body)
        parts.push_back(to_string(*child, proc));
      return join(parts, "; ");
    }
  }
  CCREF_UNREACHABLE("bad Stmt::Kind");
}

namespace st {

StmtP nop() {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Nop;
  return s;
}
StmtP assign(VarId var, ExprP value) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Assign;
  s->var = var;
  s->a = std::move(value);
  return s;
}
StmtP set_add(VarId var, ExprP node) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::SetAdd;
  s->var = var;
  s->a = std::move(node);
  return s;
}
StmtP set_remove(VarId var, ExprP node) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::SetRemove;
  s->var = var;
  s->a = std::move(node);
  return s;
}
StmtP seq(std::vector<StmtP> body) {
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Seq;
  s->body = std::move(body);
  return s;
}

}  // namespace st
}  // namespace ccref::ir
