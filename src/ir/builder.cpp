#include "ir/builder.hpp"

#include <map>

#include "support/contracts.hpp"

namespace ccref::ir {

// ---- StateB ----------------------------------------------------------------

StateB& StateB::initial() {
  CCREF_REQUIRE_MSG(owner_->initial_.empty() || owner_->initial_ == name_,
                    "two states marked initial");
  owner_->initial_ = name_;
  return *this;
}

// ---- InputB ----------------------------------------------------------------

InputB::InputB(std::string state, MsgId msg, Role role)
    : state_(std::move(state)) {
  g_.msg = msg;
  // Remote inputs default to "from home"; the home has no default source.
  g_.from.kind =
      role == Role::Remote ? PeerSrc::Kind::Home : PeerSrc::Kind::Any;
}

InputB& InputB::from_home() {
  g_.from = {PeerSrc::Kind::Home, nullptr};
  return *this;
}
InputB& InputB::from_any(VarId bind_peer) {
  g_.from = {PeerSrc::Kind::Any, nullptr};
  g_.bind_peer = bind_peer;
  return *this;
}
InputB& InputB::from(ExprP node) {
  g_.from = {PeerSrc::Kind::Expr, std::move(node)};
  return *this;
}
InputB& InputB::from_bcast(VarId bind_peer) {
  g_.from = {PeerSrc::Kind::Bcast, nullptr};
  g_.bind_peer = bind_peer;
  return *this;
}
InputB& InputB::when(ExprP cond) {
  g_.cond = std::move(cond);
  return *this;
}
InputB& InputB::bind(std::vector<VarId> payload_vars) {
  g_.bind_payload = std::move(payload_vars);
  return *this;
}
InputB& InputB::act(StmtP action) {
  g_.action = std::move(action);
  return *this;
}
InputB& InputB::go(std::string next_state) {
  next_ = std::move(next_state);
  return *this;
}
InputB& InputB::label(std::string text) {
  g_.label = std::move(text);
  return *this;
}

// ---- OutputB ---------------------------------------------------------------

OutputB::OutputB(std::string state, MsgId msg, Role role)
    : state_(std::move(state)) {
  g_.msg = msg;
  g_.to.kind = role == Role::Remote ? PeerSel::Kind::Home
                                    : PeerSel::Kind::Expr;  // must be set
}

OutputB& OutputB::to_home() {
  g_.to = {PeerSel::Kind::Home, nullptr};
  return *this;
}
OutputB& OutputB::to(ExprP node) {
  g_.to = {PeerSel::Kind::Expr, std::move(node)};
  return *this;
}
OutputB& OutputB::to_any_in(ExprP set, VarId bind_peer) {
  g_.to = {PeerSel::Kind::AnyInSet, std::move(set)};
  g_.bind_peer = bind_peer;
  return *this;
}
OutputB& OutputB::bcast() {
  g_.to = {PeerSel::Kind::Bcast, nullptr};
  return *this;
}
OutputB& OutputB::when(ExprP cond) {
  g_.cond = std::move(cond);
  return *this;
}
OutputB& OutputB::pay(std::vector<ExprP> payload) {
  g_.payload = std::move(payload);
  return *this;
}
OutputB& OutputB::act(StmtP action) {
  g_.action = std::move(action);
  return *this;
}
OutputB& OutputB::go(std::string next_state) {
  next_ = std::move(next_state);
  return *this;
}
OutputB& OutputB::label(std::string text) {
  g_.label = std::move(text);
  return *this;
}

// ---- TauB ------------------------------------------------------------------

TauB::TauB(std::string state, std::string label) : state_(std::move(state)) {
  g_.label = std::move(label);
}

TauB& TauB::when(ExprP cond) {
  g_.cond = std::move(cond);
  return *this;
}
TauB& TauB::act(StmtP action) {
  g_.action = std::move(action);
  return *this;
}
TauB& TauB::go(std::string next_state) {
  next_ = std::move(next_state);
  return *this;
}

// ---- ProcessBuilder --------------------------------------------------------

VarId ProcessBuilder::var(std::string name, Type type, Value init,
                          std::uint32_t bound) {
  for (const auto& v : vars_)
    CCREF_REQUIRE_MSG(v.name != name, "duplicate variable name");
  vars_.push_back({std::move(name), type, init, bound});
  return static_cast<VarId>(vars_.size() - 1);
}

StateB& ProcessBuilder::comm(std::string name) {
  states_.push_back(StateB(this, std::move(name), StateKind::Comm));
  return states_.back();
}

StateB& ProcessBuilder::internal(std::string name) {
  states_.push_back(StateB(this, std::move(name), StateKind::Internal));
  return states_.back();
}

InputB& ProcessBuilder::input(std::string state, MsgId msg) {
  inputs_.push_back(InputB(std::move(state), msg, role_));
  return inputs_.back();
}

OutputB& ProcessBuilder::output(std::string state, MsgId msg) {
  outputs_.push_back(OutputB(std::move(state), msg, role_));
  return outputs_.back();
}

TauB& ProcessBuilder::tau(std::string state, std::string label) {
  taus_.push_back(TauB(std::move(state), std::move(label)));
  return taus_.back();
}

Process ProcessBuilder::finish() const {
  Process p;
  p.name = name_;
  p.role = role_;
  p.vars = vars_;

  std::map<std::string, StateId, std::less<>> ids;
  for (const auto& sb : states_) {
    CCREF_REQUIRE_MSG(!ids.contains(sb.name_), "duplicate state name");
    ids.emplace(sb.name_, static_cast<StateId>(p.states.size()));
    State s;
    s.name = sb.name_;
    s.kind = sb.kind_;
    p.states.push_back(std::move(s));
  }
  CCREF_REQUIRE_MSG(!p.states.empty(), "process has no states");

  auto resolve = [&](const std::string& name) -> StateId {
    auto it = ids.find(name);
    CCREF_REQUIRE_MSG(it != ids.end(), "guard references undeclared state");
    return it->second;
  };

  for (const auto& ib : inputs_) {
    InputGuard g = ib.g_;
    CCREF_REQUIRE_MSG(!ib.next_.empty(), "input guard missing .go()");
    g.next = resolve(ib.next_);
    p.states[resolve(ib.state_)].inputs.push_back(std::move(g));
  }
  for (const auto& ob : outputs_) {
    OutputGuard g = ob.g_;
    CCREF_REQUIRE_MSG(!ob.next_.empty(), "output guard missing .go()");
    CCREF_REQUIRE_MSG(
        !(role_ == Role::Home && g.to.kind == PeerSel::Kind::Expr && !g.to.expr),
        "home output guard missing .to()");
    g.next = resolve(ob.next_);
    p.states[resolve(ob.state_)].outputs.push_back(std::move(g));
  }
  for (const auto& tb : taus_) {
    TauGuard g = tb.g_;
    CCREF_REQUIRE_MSG(!tb.next_.empty(), "tau guard missing .go()");
    g.next = resolve(tb.next_);
    p.states[resolve(tb.state_)].taus.push_back(std::move(g));
  }

  p.initial = initial_.empty() ? 0 : resolve(initial_);
  return p;
}

// ---- ProtocolBuilder -------------------------------------------------------

ProtocolBuilder::ProtocolBuilder(std::string name)
    : name_(std::move(name)),
      home_(ProcessBuilder("h", Role::Home)),
      remote_(ProcessBuilder("r", Role::Remote)) {}

MsgId ProtocolBuilder::msg(std::string name, std::vector<Type> payload) {
  CCREF_REQUIRE_MSG(payload.size() <= kMaxPayload, "payload too wide");
  for (const auto& m : messages_)
    CCREF_REQUIRE_MSG(m.name != name, "duplicate message name");
  messages_.push_back({std::move(name), std::move(payload)});
  CCREF_REQUIRE_MSG(messages_.size() <= 250, "too many message types");
  return static_cast<MsgId>(messages_.size() - 1);
}

ProtocolBuilder& ProtocolBuilder::topology(Topology t) {
  topology_ = t;
  return *this;
}

Protocol ProtocolBuilder::build() const {
  Protocol p;
  p.name = name_;
  p.topology = topology_;
  p.messages = messages_;
  p.home = home_.finish();
  p.remote = remote_.finish();
  return p;
}

}  // namespace ccref::ir
