// Statement AST for rendezvous actions.
//
// Actions run atomically when a rendezvous (or τ move) fires. Like Expr,
// statements are introspectable trees so the refinement procedure can reason
// about them and the printer can render protocol listings.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "ir/types.hpp"

namespace ccref::ir {

struct Stmt;
using StmtP = std::shared_ptr<const Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    Nop,
    Assign,     // var := a  (Int assigns reduce modulo the var's bound)
    SetAdd,     // var += {a}  (NodeSet var, Node expr)
    SetRemove,  // var -= {a}
    Seq,        // body in order
  };

  Kind kind = Kind::Nop;
  VarId var = kNoVar;
  ExprP a;
  std::vector<StmtP> body;
};

/// Execute a statement, mutating `store`. `decls` supplies Int bounds for
/// modular reduction on assignment.
void exec(const Stmt& s, Store& store, std::span<const VarDecl> decls,
          const EvalCtx& ctx);

[[nodiscard]] bool stmt_equal(const Stmt& x, const Stmt& y);

[[nodiscard]] std::string to_string(const Stmt& s, const Process& proc);

/// True if the statement tree is a no-op (Nop or empty Seq of Nops).
[[nodiscard]] bool is_nop(const Stmt& s);

namespace st {

[[nodiscard]] StmtP nop();
[[nodiscard]] StmtP assign(VarId var, ExprP value);
[[nodiscard]] StmtP set_add(VarId var, ExprP node);
[[nodiscard]] StmtP set_remove(VarId var, ExprP node);
[[nodiscard]] StmtP seq(std::vector<StmtP> body);

}  // namespace st

}  // namespace ccref::ir
