// Fluent construction API for rendezvous protocols.
//
// Guards reference states by *name* and are resolved when build() runs, so
// protocols read top-to-bottom like the paper's figures:
//
//   ProtocolBuilder b("migratory");
//   MsgId REQ = b.msg("req");
//   auto& h = b.home();
//   VarId o = h.var("o", Type::Node);
//   h.comm("F").initial();
//   h.input("F", REQ).from_any(j).go("G1");
//   ...
//   Protocol p = b.build();   // aborts on dangling names; run ir::validate
//                             // for the full §2.4 restriction check
#pragma once

#include <deque>
#include <string>

#include "ir/process.hpp"

namespace ccref::ir {

class ProcessBuilder;

class StateB {
 public:
  StateB& initial();

 private:
  friend class ProcessBuilder;
  StateB(ProcessBuilder* owner, std::string name, StateKind kind)
      : owner_(owner), name_(std::move(name)), kind_(kind) {}
  ProcessBuilder* owner_;
  std::string name_;
  StateKind kind_;
};

class InputB {
 public:
  InputB& from_home();
  InputB& from_any(VarId bind_peer = kNoVar);
  InputB& from(ExprP node);
  InputB& from_bcast(VarId bind_peer = kNoVar);  // snoop; binds the requester
  InputB& when(ExprP cond);
  InputB& bind(std::vector<VarId> payload_vars);
  InputB& act(StmtP action);
  InputB& go(std::string next_state);
  InputB& label(std::string text);

 private:
  friend class ProcessBuilder;
  InputB(std::string state, MsgId msg, Role role);
  std::string state_;
  InputGuard g_;
  std::string next_;
};

class OutputB {
 public:
  OutputB& to_home();
  OutputB& to(ExprP node);
  OutputB& to_any_in(ExprP set, VarId bind_peer = kNoVar);
  OutputB& bcast();  // bus broadcast to the home and every other remote
  OutputB& when(ExprP cond);
  OutputB& pay(std::vector<ExprP> payload);
  OutputB& act(StmtP action);
  OutputB& go(std::string next_state);
  OutputB& label(std::string text);

 private:
  friend class ProcessBuilder;
  OutputB(std::string state, MsgId msg, Role role);
  std::string state_;
  OutputGuard g_;
  std::string next_;
};

class TauB {
 public:
  TauB& when(ExprP cond);
  TauB& act(StmtP action);
  TauB& go(std::string next_state);

 private:
  friend class ProcessBuilder;
  TauB(std::string state, std::string label);
  std::string state_;
  TauGuard g_;
  std::string next_;
};

class ProcessBuilder {
 public:
  /// Declare a variable; returns its id for use in expressions.
  VarId var(std::string name, Type type, Value init = 0,
            std::uint32_t bound = 2);

  /// Declare states. The first declared state is initial unless .initial()
  /// marks another.
  StateB& comm(std::string name);
  StateB& internal(std::string name);

  /// Add guards to a named state (state must be declared first or later —
  /// names resolve at build()).
  InputB& input(std::string state, MsgId msg);
  OutputB& output(std::string state, MsgId msg);
  TauB& tau(std::string state, std::string label);

  [[nodiscard]] Role role() const { return role_; }

 private:
  friend class ProtocolBuilder;
  friend class StateB;
  ProcessBuilder(std::string name, Role role)
      : name_(std::move(name)), role_(role) {}
  [[nodiscard]] Process finish() const;

  std::string name_;
  Role role_;
  std::vector<VarDecl> vars_;
  std::deque<StateB> states_;
  std::deque<InputB> inputs_;
  std::deque<OutputB> outputs_;
  std::deque<TauB> taus_;
  std::string initial_;
};

class ProtocolBuilder {
 public:
  explicit ProtocolBuilder(std::string name);

  /// Declare a message type with payload field types.
  MsgId msg(std::string name, std::vector<Type> payload = {});

  /// Set the interconnect topology (default Star).
  ProtocolBuilder& topology(Topology t);

  [[nodiscard]] ProcessBuilder& home() { return home_; }
  [[nodiscard]] ProcessBuilder& remote() { return remote_; }

  /// Resolve names and produce the protocol. Aborts (contract failure) on
  /// dangling state names; semantic restrictions are ir::validate's job.
  [[nodiscard]] Protocol build() const;

 private:
  std::string name_;
  Topology topology_ = Topology::Star;
  std::vector<MsgDecl> messages_;
  ProcessBuilder home_;
  ProcessBuilder remote_;
};

}  // namespace ccref::ir
