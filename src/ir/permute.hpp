// Remote-index permutations over IR values and stores.
//
// Symmetry reduction (verify/symmetry.hpp) reorders the n identical remotes
// of a star protocol; every node-indexed fact in the global state must be
// renamed through the same permutation or the result is not a permutation
// of the state at all. Values are renamed by declared type: Node values in
// [0, n) map through the permutation (out-of-range values — the kNoVar-style
// sentinels a home binder holds after `static_cast` of -1 — pass through
// untouched), NodeSet bitmasks have their low n bits permuted, and Bool/Int
// values are identity-invariant.
#pragma once

#include <span>
#include <vector>

#include "ir/store.hpp"
#include "ir/types.hpp"

namespace ccref::ir {

/// A permutation of remote indices: perm[old_index] == new_index.
using NodePerm = std::vector<std::uint8_t>;

[[nodiscard]] inline bool is_identity(const NodePerm& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i)
    if (perm[i] != i) return false;
  return true;
}

/// Rename one value of declared type `t` through `perm`.
[[nodiscard]] inline Value remap_value(Type t, Value v, const NodePerm& perm) {
  const std::size_t n = perm.size();
  switch (t) {
    case Type::Node:
      return v < n ? perm[v] : v;
    case Type::NodeSet: {
      Value out = 0;
      for (std::size_t i = 0; i < n; ++i)
        if ((v >> i) & 1u) out |= Value{1} << perm[i];
      // Bits at or above n cannot name a live remote; keep them verbatim so
      // the remap is a bijection on encodings.
      if (n < 64) out |= v & ~((Value{1} << n) - 1);
      return out;
    }
    case Type::Bool:
    case Type::Int:
      return v;
  }
  return v;
}

/// Rename every Node/NodeSet variable of a store through `perm`.
inline void remap_store(Store& store, std::span<const VarDecl> decls,
                        const NodePerm& perm) {
  for (std::size_t v = 0; v < decls.size(); ++v) {
    if (decls[v].type != Type::Node && decls[v].type != Type::NodeSet)
      continue;
    const auto id = static_cast<VarId>(v);
    store.set(id, remap_value(decls[v].type, store.get(id), perm));
  }
}

}  // namespace ccref::ir
