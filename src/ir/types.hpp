// Core value/type vocabulary of the protocol IR.
//
// Protocols manipulate four value types:
//   Bool    — guard conditions, dirty flags;
//   Int     — abstract cache-line data (bounded so state spaces stay finite);
//   Node    — remote-node identities (the paper's `o`, `i`, `j`);
//   NodeSet — directory copysets for invalidate-style protocols.
//
// All values share one canonical 64-bit representation so stores, message
// payloads, and state encodings stay uniform.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/node_set.hpp"

namespace ccref::ir {

enum class Type : std::uint8_t { Bool, Int, Node, NodeSet };

[[nodiscard]] constexpr std::string_view type_name(Type t) {
  switch (t) {
    case Type::Bool: return "bool";
    case Type::Int: return "int";
    case Type::Node: return "node";
    case Type::NodeSet: return "nodeset";
  }
  return "?";
}

/// Canonical value representation. Bool: 0/1. Int: [0, bound). Node: id.
/// NodeSet: bitmask.
using Value = std::uint64_t;

/// The null node: the value of a Node variable that currently names no
/// remote ("dead binder"). It sits one past the largest legal node id, so it
/// can never collide with a real remote and — crucially for symmetry
/// reduction — is a fixed point of every node permutation. Protocols must
/// reset dead Node binders to kNoNode (`none` in the DSL), never to a
/// literal id like node(0): a scalarset-typed literal pins one concrete
/// remote and breaks the permutation-equivariance the orbit quotient relies
/// on (and inflates the unreduced state space with stale-id distinctions).
inline constexpr Value kNoNode = 64;  // == support kMaxNodes

using VarId = std::uint16_t;
using StateId = std::uint16_t;
using MsgId = std::uint8_t;

inline constexpr VarId kNoVar = 0xffff;
inline constexpr StateId kNoState = 0xffff;

/// Declared process-local variable.
struct VarDecl {
  std::string name;
  Type type = Type::Int;
  Value init = 0;
  /// For Int variables: assignments reduce modulo this bound, keeping the
  /// reachable state space finite (paper protocols use tiny data domains).
  std::uint32_t bound = 2;
};

/// Message type declared by a protocol: a name plus payload field types.
struct MsgDecl {
  std::string name;
  std::vector<Type> payload;
};

/// Maximum payload fields per message (cache-line data + one id is plenty).
inline constexpr std::size_t kMaxPayload = 2;

}  // namespace ccref::ir
