// Static validation of rendezvous protocols.
//
// Enforces the paper's §2.4 syntactic restrictions (star topology; remote
// communication states are single-output active or input-only passive) plus
// general well-formedness: type correctness of every expression, statement,
// payload and binding; guard targets; state reachability.
//
// The refinement procedure (src/refine) requires a protocol that validates
// without errors; its guarantees are stated only for this fragment.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/process.hpp"

namespace ccref::ir {

struct Diag {
  enum class Severity : std::uint8_t { Error, Warning };
  Severity severity = Severity::Error;
  std::string where;  // "h.F.guard[2]" style location
  std::string text;
};

[[nodiscard]] std::vector<Diag> validate(const Protocol& protocol);

[[nodiscard]] bool has_errors(const std::vector<Diag>& diags);

/// Render diagnostics one per line ("error: h.F: ...").
[[nodiscard]] std::string to_string(const std::vector<Diag>& diags);

/// Infer the type of an expression in a process context. Returns nullopt and
/// fills *err on type errors.
[[nodiscard]] std::optional<Type> type_of(const Expr& e, const Process& proc,
                                          std::string* err);

}  // namespace ccref::ir
