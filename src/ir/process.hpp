// Process and Protocol IR: the rendezvous-level specification the designer
// writes and the refinement procedure consumes.
//
// A protocol is a star (paper §2): one *home* process `h` plus `n` identical
// instances of one *remote* template `r(i)`. States are either *internal*
// (only autonomous τ moves, e.g. the CPU deciding to read/write or evict) or
// *communication* (rendezvous guards offered). The paper's syntactic
// restrictions (§2.4) are enforced by ir::validate:
//   - the home may mix generalized input and output guards,
//   - a remote communication state is either *active* (exactly one output
//     guard, nothing else) or *passive* (input guards plus optional τs).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "ir/stmt.hpp"
#include "ir/types.hpp"

namespace ccref::ir {

enum class Role : std::uint8_t { Home, Remote };

/// Output-guard destination.
///   Home     — the home process (only valid in remote processes).
///   Expr     — a specific remote r(e) where e is a Node expression
///              (e.g. r(o)!inv — invalidate the current owner).
///   AnyInSet — any member of a NodeSet expression (nondeterministic choice,
///              e.g. pick a sharer from the copyset to invalidate).
///   Bcast    — broadcast: the bus rendezvous with the home *and* every
///              other remote at once (remote outputs, `topology bus` only).
struct PeerSel {
  enum class Kind : std::uint8_t { Home, Expr, AnyInSet, Bcast } kind =
      Kind::Home;
  ExprP expr;  // Node for Expr, NodeSet for AnyInSet
};

/// Input-guard source.
///   Home  — from the home (remote processes).
///   Any   — from any remote r(i), binding i (home's generalized input).
///   Expr  — from the specific remote r(e) (e.g. r(o)?LR).
///   Bcast — a snooped broadcast from any *other* remote, binding the
///           requester (remote inputs, `topology bus` only). A remote with
///           no enabled Bcast guard for the message simply ignores the
///           snoop (hardware caches in I ignore bus traffic they miss on).
struct PeerSrc {
  enum class Kind : std::uint8_t { Home, Any, Expr, Bcast } kind = Kind::Home;
  ExprP expr;  // Node expression for Expr
};

/// Passive side of a rendezvous: `from?msg(binds)` with optional condition.
struct InputGuard {
  ExprP cond;                       // nullptr = true
  PeerSrc from;
  MsgId msg = 0;
  std::vector<VarId> bind_payload;  // one var per payload field (may be kNoVar)
  VarId bind_peer = kNoVar;         // receives the sender id (Any sources)
  StmtP action;                     // nullptr = nop; runs after binding
  StateId next = kNoState;
  std::string label;
};

/// Active side of a rendezvous: `to!msg(payload)` with optional condition.
struct OutputGuard {
  ExprP cond;
  PeerSel to;
  MsgId msg = 0;
  std::vector<ExprP> payload;
  VarId bind_peer = kNoVar;  // receives the chosen target (AnyInSet targets)
  StmtP action;              // runs when the rendezvous completes
  StateId next = kNoState;
  std::string label;
};

/// Autonomous move (no partner): models CPU decisions such as `rw`/`evict`.
struct TauGuard {
  ExprP cond;
  StmtP action;
  StateId next = kNoState;
  std::string label;
};

enum class StateKind : std::uint8_t { Internal, Comm };

struct State {
  std::string name;
  StateKind kind = StateKind::Comm;
  std::vector<InputGuard> inputs;
  std::vector<OutputGuard> outputs;
  std::vector<TauGuard> taus;
};

struct Process {
  std::string name;
  Role role = Role::Home;
  std::vector<VarDecl> vars;
  std::vector<State> states;
  StateId initial = 0;

  [[nodiscard]] const State& state(StateId id) const {
    CCREF_REQUIRE(id < states.size());
    return states[id];
  }
  /// Find a variable by name; returns kNoVar if absent.
  [[nodiscard]] VarId find_var(std::string_view name) const;
  /// Find a state by name; returns kNoState if absent.
  [[nodiscard]] StateId find_state(std::string_view name) const;

  /// True if a remote communication state is *active* (single output guard).
  /// Under `topology bus` an active state may additionally carry `bcast?`
  /// snoop inputs: a cache waiting to win the bus still snoops other
  /// transactions (this is what makes writeback races resolvable — the
  /// pending writeback is cancelled when a BusRdX snoops the line away).
  /// Star-validated processes never have Bcast inputs, so the relaxed
  /// predicate is equivalent to the §2.4 one for them.
  [[nodiscard]] static bool is_active_state(const State& s) {
    if (s.kind != StateKind::Comm || s.outputs.size() != 1 ||
        !s.taus.empty())
      return false;
    for (const auto& in : s.inputs)
      if (in.from.kind != PeerSrc::Kind::Bcast) return false;
    return true;
  }
};

/// Interconnect shape. Star is the paper's §2 topology (every rendezvous
/// pairs one remote with the home). Bus relaxes §2.4: remote outputs may
/// broadcast (PeerSel::Kind::Bcast) and remote inputs may snoop broadcasts
/// (PeerSrc::Kind::Bcast); the home still mediates every broadcast.
enum class Topology : std::uint8_t { Star, Bus };

/// A full rendezvous protocol: message vocabulary, home, remote template.
struct Protocol {
  std::string name;
  Topology topology = Topology::Star;
  std::vector<MsgDecl> messages;
  Process home;
  Process remote;

  [[nodiscard]] const MsgDecl& message(MsgId id) const {
    CCREF_REQUIRE(id < messages.size());
    return messages[id];
  }
  [[nodiscard]] MsgId find_message(std::string_view name) const;
};

}  // namespace ccref::ir
