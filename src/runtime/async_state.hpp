// Global state of the asynchronous (refined) protocol.
//
// Each refined process is its unrefined control state plus refinement
// bookkeeping: a transient flag (§3's transient states are identified by the
// communication state that entered them plus, for the home, the output guard
// and pending target), and the incoming-request buffer (§3.1: one slot per
// remote; §3.2: k slots at the home).
#pragma once

#include <optional>
#include <vector>

#include "ir/store.hpp"
#include "runtime/message.hpp"
#include "support/node_set.hpp"

namespace ccref::runtime {

struct RemoteMachine {
  /// True when waiting for an ack/nack/reply after sending a request; the
  /// originating active state is `state`.
  bool transient = false;
  ir::StateId state = 0;
  ir::Store store;
  std::optional<Msg> buffer;  // a pending request from the home

  friend bool operator==(const RemoteMachine&, const RemoteMachine&) = default;
};

/// An open split bus transaction (topology bus, refined broadcast). The home
/// admitted a broadcast request, matched it against one of its generalized
/// input guards, and is now snooping every other remote sequentially; when
/// `pending` drains it applies the recorded guard and acks the requester.
/// While a transaction is open the home takes no other local step — that
/// serialization is what makes the split transaction refine the atomic
/// broadcast rendezvous.
struct BusTxn {
  std::uint8_t src = 0;       // the requester
  std::uint8_t guard = 0;     // input-guard index in the home's current state
  ir::MsgId msg = 0;          // the broadcast message
  std::uint8_t snooping = kNoSnoop;  // remote with an outstanding Snoop
  NodeSet pending;            // remotes not yet snooped
  std::vector<ir::Value> payload;    // the request's payload, replayed to all

  static constexpr std::uint8_t kNoSnoop = 0xff;

  friend bool operator==(const BusTxn&, const BusTxn&) = default;
};

struct HomeMachine {
  bool transient = false;
  ir::StateId state = 0;        // current state; origin when transient
  std::uint8_t t_guard = 0;     // pending output guard index (transient)
  std::uint8_t t_target = 0;    // pending target remote (transient)
  ir::Store store;
  std::vector<Msg> buffer;      // k-slot request buffer (§3.2)
  std::optional<BusTxn> txn;    // open bus transaction (bus protocols only)

  friend bool operator==(const HomeMachine&, const HomeMachine&) = default;
};

struct AsyncState {
  HomeMachine home;
  std::vector<RemoteMachine> remotes;
  std::vector<Channel> up;    // remote i -> home
  std::vector<Channel> down;  // home -> remote i

  friend bool operator==(const AsyncState&, const AsyncState&) = default;
};

}  // namespace ccref::runtime
