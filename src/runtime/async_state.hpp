// Global state of the asynchronous (refined) protocol.
//
// Each refined process is its unrefined control state plus refinement
// bookkeeping: a transient flag (§3's transient states are identified by the
// communication state that entered them plus, for the home, the output guard
// and pending target), and the incoming-request buffer (§3.1: one slot per
// remote; §3.2: k slots at the home).
#pragma once

#include <optional>
#include <vector>

#include "ir/store.hpp"
#include "runtime/message.hpp"

namespace ccref::runtime {

struct RemoteMachine {
  /// True when waiting for an ack/nack/reply after sending a request; the
  /// originating active state is `state`.
  bool transient = false;
  ir::StateId state = 0;
  ir::Store store;
  std::optional<Msg> buffer;  // a pending request from the home

  friend bool operator==(const RemoteMachine&, const RemoteMachine&) = default;
};

struct HomeMachine {
  bool transient = false;
  ir::StateId state = 0;        // current state; origin when transient
  std::uint8_t t_guard = 0;     // pending output guard index (transient)
  std::uint8_t t_target = 0;    // pending target remote (transient)
  ir::Store store;
  std::vector<Msg> buffer;      // k-slot request buffer (§3.2)

  friend bool operator==(const HomeMachine&, const HomeMachine&) = default;
};

struct AsyncState {
  HomeMachine home;
  std::vector<RemoteMachine> remotes;
  std::vector<Channel> up;    // remote i -> home
  std::vector<Channel> down;  // home -> remote i

  friend bool operator==(const AsyncState&, const AsyncState&) = default;
};

}  // namespace ccref::runtime
