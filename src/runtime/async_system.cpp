#include "runtime/async_system.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace ccref::runtime {

using ir::EvalCtx;
using ir::InputGuard;
using ir::OutputGuard;
using ir::PeerSel;
using ir::PeerSrc;
using ir::StateKind;
using refine::MsgClass;
using sem::Label;
using sem::LabelMode;

namespace {
constexpr int kHome = -1;
}  // namespace

AsyncSystem::AsyncSystem(const refine::RefinedProtocol& refined,
                         int num_remotes)
    : refined_(&refined),
      n_(num_remotes),
      k_(refined.options.home_buffer_capacity),
      cap_(refined.options.channel_capacity) {
  CCREF_REQUIRE(num_remotes >= 1 && num_remotes <= kMaxNodes);
}

AsyncState AsyncSystem::initial() const {
  const ir::Protocol& p = protocol();
  AsyncState s;
  s.home.state = p.home.initial;
  s.home.store = ir::Store(p.home.vars);
  s.remotes.resize(n_);
  for (auto& r : s.remotes) {
    r.state = p.remote.initial;
    r.store = ir::Store(p.remote.vars);
  }
  s.up.resize(n_);
  s.down.resize(n_);
  return s;
}

std::vector<std::pair<AsyncState, Label>> AsyncSystem::successors(
    const AsyncState& s, LabelMode mode) const {
  Out out;
  // The LTL layer's weak-fairness constraints partition transitions by
  // Label::actor, so deliveries need an owner. Both directions are charged
  // to the *remote* of the channel: down-deliveries because the remote is
  // the receiver, up-deliveries because weak fairness on them is how we
  // encode reliable delivery of remote i's traffic — if they belonged to the
  // home, a "fair" run could leave remote i's request in the channel forever
  // and §6's per-node starvation would hold at every buffer size.
  for (int i = 0; i < n_; ++i)
    if (!s.up[i].empty()) {
      std::size_t first = out.size();
      deliver_to_home(s, i, mode, out);
      for (std::size_t e = first; e < out.size(); ++e)
        out[e].second.actor = i;
    }
  for (int i = 0; i < n_; ++i)
    if (!s.down[i].empty()) {
      std::size_t first = out.size();
      deliver_to_remote(s, i, mode, out);
      for (std::size_t e = first; e < out.size(); ++e)
        out[e].second.actor = i;
    }
  home_local(s, mode, out);
  for (int i = 0; i < n_; ++i) remote_local(s, i, mode, out);
  return out;
}

AsyncSystem::PorSuccessors AsyncSystem::successors_por(const AsyncState& s,
                                                       LabelMode mode) const {
  PorSuccessors out;
  for (int i = 0; i < n_; ++i)
    if (!s.up[i].empty()) {
      std::size_t first = out.all.size();
      deliver_to_home(s, i, mode, out.all);
      for (std::size_t e = first; e < out.all.size(); ++e)
        out.all[e].second.actor = i;
    }
  std::vector<std::uint32_t> delivery(n_, 0);
  for (int i = 0; i < n_; ++i)
    if (!s.down[i].empty()) {
      std::size_t first = out.all.size();
      deliver_to_remote(s, i, mode, out.all);
      // Candidacy below relies on the down-head delivery being exactly one
      // edge: every deliver_to_remote case consumes the head one way.
      CCREF_ASSERT(out.all.size() == first + 1);
      out.all[first].second.actor = i;
      delivery[i] = static_cast<std::uint32_t>(first);
    }
  home_local(s, mode, out.all);
  for (int i = 0; i < n_; ++i) {
    auto first = static_cast<std::uint32_t>(out.all.size());
    remote_local(s, i, mode, out.all);
    if (!s.down[i].empty() &&
        s.up[i].size() < static_cast<std::size_t>(cap_))
      out.candidates.push_back(
          {i, delivery[i], first, static_cast<std::uint32_t>(out.all.size())});
  }
  return out;
}

// ---- helpers ----------------------------------------------------------------

bool AsyncSystem::input_source_matches(const InputGuard& ig,
                                       const ir::Store& home_store,
                                       std::uint8_t src) const {
  switch (ig.from.kind) {
    case PeerSrc::Kind::Any:
      return src != Msg::kHomeSrc;
    case PeerSrc::Kind::Expr:
      return ir::eval(*ig.from.expr, home_store, EvalCtx{kHome}) == src;
    case PeerSrc::Kind::Home:
    case PeerSrc::Kind::Bcast:
      return false;  // only remote guards have Home/Bcast sources
  }
  return false;
}

bool AsyncSystem::satisfies_home_guard(const AsyncState& s, ir::StateId sid,
                                       const Msg& m) const {
  const ir::State& st = protocol().home.state(sid);
  if (st.kind != StateKind::Comm) return false;
  for (const auto& ig : st.inputs) {
    if (ig.msg != m.msg) continue;
    if (!input_source_matches(ig, s.home.store, m.src)) continue;
    if (ig.cond && !ir::eval(*ig.cond, s.home.store, EvalCtx{kHome})) continue;
    return true;
  }
  return false;
}

bool AsyncSystem::admit(const HomeMachine& hm, const AsyncState& s,
                        const Msg& m, bool in_transient) const {
  // Hand-design deviation: elide-ack messages must always be accepted — the
  // sender already committed its transition.
  if (refined_->cls(m.msg) == MsgClass::ElideAck) return true;

  const auto& opts = refined_->options;
  int free = k_ - static_cast<int>(hm.buffer.size());
  int reserved = (in_transient && opts.ack_buffer) ? 1 : 0;  // §3.2 ack buffer
  int avail = free - reserved;
  if (!opts.progress_buffer) return avail >= 1;
  if (avail >= 2) return true;                               // row T4
  if (avail == 1)                                            // row T5
    return satisfies_home_guard(s, hm.state, m);
  return false;                                              // row T6
}

std::vector<ir::Value> AsyncSystem::eval_payload(const OutputGuard& og,
                                                 const ir::Store& store,
                                                 int actor, int target) const {
  std::vector<ir::Value> payload;
  payload.reserve(og.payload.size());
  const EvalCtx ctx{actor};
  if (og.bind_peer != ir::kNoVar) {
    // The chosen target must be visible to payload expressions, but the live
    // store may not be mutated before the rendezvous completes (the request
    // can still be nacked and the §4 abstraction maps the transient state
    // back to the unmutated communication state).
    ir::Store scratch = store;
    scratch.set(og.bind_peer, static_cast<ir::Value>(target));
    for (const auto& e : og.payload)
      payload.push_back(static_cast<ir::Value>(ir::eval(*e, scratch, ctx)));
  } else {
    for (const auto& e : og.payload)
      payload.push_back(static_cast<ir::Value>(ir::eval(*e, store, ctx)));
  }
  return payload;
}

void AsyncSystem::apply_home_output(HomeMachine& hm, const OutputGuard& og,
                                    int target) const {
  if (og.bind_peer != ir::kNoVar)
    hm.store.set(og.bind_peer, static_cast<ir::Value>(target));
  if (og.action)
    ir::exec(*og.action, hm.store, protocol().home.vars, EvalCtx{kHome});
  hm.state = og.next;
  hm.transient = false;
}

void AsyncSystem::apply_input(const ir::Process& proc, ir::Store& store,
                              ir::StateId& state, const InputGuard& ig,
                              const Msg& m, int self) const {
  if (ig.bind_peer != ir::kNoVar)
    store.set(ig.bind_peer, static_cast<ir::Value>(m.src));
  for (std::size_t f = 0; f < ig.bind_payload.size(); ++f)
    if (ig.bind_payload[f] != ir::kNoVar)
      store.set(ig.bind_payload[f], m.payload[f]);
  if (ig.action) ir::exec(*ig.action, store, proc.vars, EvalCtx{self});
  state = ig.next;
}

// ---- deliveries to the home --------------------------------------------------

void AsyncSystem::deliver_to_home(const AsyncState& s, int i, LabelMode mode,
                                  Out& out) const {
  const Msg& m = s.up[i].front();
  const ir::Process& home = protocol().home;
  const HomeMachine& hm = s.home;

  switch (m.meta) {
    case Meta::Ack: {
      // Row T1: the pending rendezvous succeeded.
      CCREF_ASSERT_MSG(hm.transient && hm.t_target == i,
                       "stray ACK at the home");
      const OutputGuard& og = home.state(hm.state).outputs[hm.t_guard];
      CCREF_ASSERT(refined_->cls(og.msg) != MsgClass::FusedRequest ||
                   !refined_->home_fusion_at(hm.state, hm.t_guard));
      AsyncState next = s;
      next.up[i].pop();
      apply_home_output(next.home, og, i);
      Label l;
      if (mode == LabelMode::Full)
        l.text = strf("h T1: ack from r%d completes %s", i,
                    protocol().message(og.msg).name.c_str());
      out.emplace_back(std::move(next), std::move(l));
      return;
    }
    case Meta::Nack: {
      // Row T2: rendezvous failed; return to the communication state.
      CCREF_ASSERT_MSG(hm.transient && hm.t_target == i,
                       "stray NACK at the home");
      AsyncState next = s;
      next.up[i].pop();
      next.home.transient = false;
      Label l;
      if (mode == LabelMode::Full)
        l.text = strf("h T2: nack from r%d", i);
      out.emplace_back(std::move(next), std::move(l));
      return;
    }
    case Meta::Repl: {
      // Fused pair completion (§3.3): the reply acks the pending request and
      // carries the second rendezvous of the pair.
      CCREF_ASSERT_MSG(hm.transient && hm.t_target == i,
                       "stray REPL at the home");
      const auto* fusion = refined_->home_fusion_at(hm.state, hm.t_guard);
      CCREF_ASSERT_MSG(fusion && fusion->reply == m.msg,
                       "REPL does not match the pending fusion");
      const OutputGuard& og = home.state(hm.state).outputs[hm.t_guard];
      AsyncState next = s;
      next.up[i].pop();
      apply_home_output(next.home, og, i);
      // Consume the reply in the successor state.
      bool applied = false;
      for (const auto& ig : home.state(next.home.state).inputs) {
        if (ig.msg != m.msg) continue;
        if (!input_source_matches(ig, next.home.store, m.src)) continue;
        if (ig.cond &&
            !ir::eval(*ig.cond, next.home.store, EvalCtx{kHome}))
          continue;
        apply_input(home, next.home.store, next.home.state, ig, m, kHome);
        applied = true;
        break;
      }
      CCREF_ASSERT_MSG(applied, "no guard consumed the fused reply");
      Label l;
      if (mode == LabelMode::Full)
        l.text = strf("h T1: repl %s from r%d completes fused pair",
                    protocol().message(m.msg).name.c_str(), i);
      out.emplace_back(std::move(next), std::move(l));
      return;
    }
    case Meta::Snoop:
      CCREF_ASSERT_MSG(false, "SNOOP delivered to the home");
      return;
    case Meta::SnoopAck: {
      CCREF_ASSERT_MSG(hm.txn && hm.txn->snooping == i,
                       "stray SNOOPACK at the home");
      AsyncState next = s;
      next.up[i].pop();
      auto& txn = *next.home.txn;
      txn.snooping = BusTxn::kNoSnoop;
      txn.pending.remove(static_cast<NodeId>(i));
      bool purged = false;
      if (m.msg == 1) {
        // Answering the snoop cancelled r(i)'s own in-flight request. FIFO
        // order means that request reached the home before this SnoopAck:
        // purge it from the buffer if it was admitted (if it was nacked
        // instead, r(i) drops the stale nack on arrival).
        for (std::size_t b = 0; b < next.home.buffer.size(); ++b) {
          if (next.home.buffer[b].meta != Meta::Req ||
              next.home.buffer[b].src != i)
            continue;
          next.home.buffer.erase(next.home.buffer.begin() + b);
          purged = true;
          break;
        }
      }
      Label l;
      if (mode == LabelMode::Full)
        l.text = strf("h bus: snoop-ack from r%d%s%s", i,
                    m.msg == 1 ? " (cancelled own request)" : "",
                    purged ? ", purged it" : "");
      out.emplace_back(std::move(next), std::move(l));
      return;
    }
    case Meta::Req: {
      if (hm.transient && hm.t_target == i) {
        // Row T3 (rule R3): treat as an implicit nack plus a request. The
        // ack-buffer reservation guarantees space for this request.
        AsyncState next = s;
        next.up[i].pop();
        next.home.transient = false;
        Msg req = m;
        if (admit(next.home, next, req, /*in_transient=*/false)) {
          next.home.buffer.push_back(std::move(req));
          Label l;
          if (mode == LabelMode::Full)
            l.text = strf("h T3: implicit nack; buffered %s from r%d",
                        protocol().message(m.msg).name.c_str(), i);
          out.emplace_back(std::move(next), std::move(l));
        } else {
          // Only reachable with the ack buffer disabled (ablation).
          if (s.down[i].size() >= static_cast<std::size_t>(cap_)) return;
          Msg nack;
          nack.meta = Meta::Nack;
          nack.src = Msg::kHomeSrc;
          next.down[i].push(std::move(nack));
          Label l;
          if (mode == LabelMode::Full)
            l.text = strf("h T3: implicit nack; nacked %s from r%d (no space)",
                        protocol().message(m.msg).name.c_str(), i);
          l.sent_nack = 1;
          out.emplace_back(std::move(next), std::move(l));
        }
        return;
      }
      // Rows T4/T5/T6 (and the analogous communication-state admission).
      if (admit(hm, s, m, hm.transient)) {
        AsyncState next = s;
        next.up[i].pop();
        next.home.buffer.push_back(m);
        Label l;
        if (mode == LabelMode::Full)
          l.text = strf("h buffer: %s from r%d",
                      protocol().message(m.msg).name.c_str(), i);
        out.emplace_back(std::move(next), std::move(l));
      } else {
        if (s.down[i].size() >= static_cast<std::size_t>(cap_)) return;
        AsyncState next = s;
        next.up[i].pop();
        Msg nack;
        nack.meta = Meta::Nack;
        nack.src = Msg::kHomeSrc;
        next.down[i].push(std::move(nack));
        Label l;
        if (mode == LabelMode::Full)
          l.text = strf("h T6: nack %s from r%d",
                      protocol().message(m.msg).name.c_str(), i);
        l.sent_nack = 1;
        out.emplace_back(std::move(next), std::move(l));
      }
      return;
    }
  }
}

// ---- deliveries to a remote ---------------------------------------------------

void AsyncSystem::deliver_to_remote(const AsyncState& s, int i, LabelMode mode,
                                    Out& out) const {
  const Msg& m = s.down[i].front();
  const ir::Process& remote = protocol().remote;
  const RemoteMachine& rm = s.remotes[i];

  if (m.meta == Meta::Snoop) {
    // A snoop parks in the one-slot buffer (kept one edge for the POR
    // footprint) and is answered with priority in remote_local — even by a
    // transient remote, which is what lets a cache waiting to win the bus
    // observe the transaction that just beat it. The home never snoops a
    // remote with an unresolved point-to-point request, so the slot is free.
    CCREF_ASSERT_MSG(!rm.buffer.has_value(),
                     "snoop arrived while a request was buffered");
    AsyncState next = s;
    next.down[i].pop();
    next.remotes[i].buffer = m;
    Label l;
    if (mode == LabelMode::Full)
      l.text = strf("r%d buffer: snoop %s(r%d)", i,
                  protocol().message(m.msg).name.c_str(), m.src);
    out.emplace_back(std::move(next), std::move(l));
    return;
  }

  if (rm.transient) {
    const ir::State& a = remote.state(rm.state);
    const OutputGuard& og = a.outputs[0];
    switch (m.meta) {
      case Meta::Ack: {
        // Row T1.
        CCREF_ASSERT_MSG(!refined_->remote_fusion_at(rm.state),
                         "ACK for a fused request");
        AsyncState next = s;
        next.down[i].pop();
        auto& nrm = next.remotes[i];
        if (og.action)
          ir::exec(*og.action, nrm.store, remote.vars, EvalCtx{i});
        nrm.state = og.next;
        nrm.transient = false;
        Label l;
        if (mode == LabelMode::Full)
          l.text = strf("r%d T1: ack completes %s", i,
                      protocol().message(og.msg).name.c_str());
        out.emplace_back(std::move(next), std::move(l));
        return;
      }
      case Meta::Nack: {
        // Row T2: go back and retransmit (the active send re-enables).
        AsyncState next = s;
        next.down[i].pop();
        next.remotes[i].transient = false;
        Label l;
        if (mode == LabelMode::Full)
          l.text = strf("r%d T2: nack; will retry", i);
        out.emplace_back(std::move(next), std::move(l));
        return;
      }
      case Meta::Repl: {
        const auto* fusion = refined_->remote_fusion_at(rm.state);
        CCREF_ASSERT_MSG(fusion && fusion->reply == m.msg,
                         "REPL does not match the remote fusion");
        AsyncState next = s;
        next.down[i].pop();
        auto& nrm = next.remotes[i];
        if (og.action)
          ir::exec(*og.action, nrm.store, remote.vars, EvalCtx{i});
        nrm.state = og.next;  // W
        const InputGuard& ig =
            remote.state(fusion->wait_state).inputs[0];
        apply_input(remote, nrm.store, nrm.state, ig, m, i);
        nrm.transient = false;
        Label l;
        if (mode == LabelMode::Full)
          l.text = strf("r%d T1: repl %s completes fused pair", i,
                      protocol().message(m.msg).name.c_str());
        out.emplace_back(std::move(next), std::move(l));
        return;
      }
      case Meta::Req: {
        // Row T3: the remote knows the home will treat its own pending
        // request as an implicit nack, so this request is simply dropped.
        AsyncState next = s;
        next.down[i].pop();
        Label l;
        if (mode == LabelMode::Full)
          l.text = strf("r%d T3: ignore %s from home", i,
                      protocol().message(m.msg).name.c_str());
        out.emplace_back(std::move(next), std::move(l));
        return;
      }
      case Meta::Snoop:
      case Meta::SnoopAck:
        CCREF_ASSERT_MSG(false, "unreachable meta at a transient remote");
        return;
    }
    return;
  }

  if (m.meta == Meta::Nack &&
      protocol().topology == ir::Topology::Bus) {
    // Stale nack: the remote's request was rejected after the remote had
    // already cancelled it by answering a snoop. Drop it.
    AsyncState next = s;
    next.down[i].pop();
    Label l;
    if (mode == LabelMode::Full)
      l.text = strf("r%d: drop stale nack", i);
    out.emplace_back(std::move(next), std::move(l));
    return;
  }

  // Not transient: only requests can arrive; hold in the one-slot buffer.
  CCREF_ASSERT_MSG(m.meta == Meta::Req, "non-request at an idle remote");
  CCREF_ASSERT_MSG(!rm.buffer.has_value(),
                   "home sent two outstanding requests to one remote");
  AsyncState next = s;
  next.down[i].pop();
  next.remotes[i].buffer = m;
  Label l;
  if (mode == LabelMode::Full)
    l.text = strf("r%d buffer: %s from home", i,
                protocol().message(m.msg).name.c_str());
  out.emplace_back(std::move(next), std::move(l));
}

// ---- home local steps ----------------------------------------------------------

void AsyncSystem::home_local(const AsyncState& s, LabelMode mode,
                             Out& out) const {
  const ir::Process& home = protocol().home;
  const HomeMachine& hm = s.home;
  if (hm.transient) return;  // waiting for an ack/nack/reply
  const ir::State& st = home.state(hm.state);
  const EvalCtx hctx{kHome};

  if (hm.txn) {
    // An open bus transaction serializes the home: no taus, no other C1/C2
    // until it commits. Snoop the pending remotes one at a time, then apply
    // the recorded guard and ack the requester.
    const BusTxn& txn = *hm.txn;
    if (txn.snooping != BusTxn::kNoSnoop) return;  // awaiting a SnoopAck
    if (!txn.pending.empty()) {
      const NodeId j = txn.pending.first();
      if (s.down[j].size() >= static_cast<std::size_t>(cap_)) return;
      AsyncState next = s;
      Msg sn;
      sn.meta = Meta::Snoop;
      sn.msg = txn.msg;
      sn.src = txn.src;  // snoop guards bind the original requester
      sn.payload = txn.payload;
      next.down[j].push(std::move(sn));
      next.home.txn->snooping = j;
      Label l;
      if (mode == LabelMode::Full)
        l.text = strf("h bus: snoop %s(r%d) -> r%d",
                    protocol().message(txn.msg).name.c_str(), txn.src, j);
      l.actor = kHome;
      out.emplace_back(std::move(next), std::move(l));
      return;
    }
    // Every other remote has answered: commit. The home store is untouched
    // since the open (the transaction blocks every store-writing home step),
    // so the guard condition checked at open still holds.
    if (s.down[txn.src].size() >= static_cast<std::size_t>(cap_)) return;
    const ir::InputGuard& ig = st.inputs[txn.guard];
    AsyncState next = s;
    Msg taken;
    taken.meta = Meta::Req;
    taken.msg = txn.msg;
    taken.src = txn.src;
    taken.payload = txn.payload;
    Msg ack;
    ack.meta = Meta::Ack;
    ack.src = Msg::kHomeSrc;
    next.down[txn.src].push(std::move(ack));
    next.home.txn.reset();
    apply_input(home, next.home.store, next.home.state, ig, taken, kHome);
    Label l;
    if (mode == LabelMode::Full)
      l.text = strf("h bus: commit %s from r%d",
                  protocol().message(taken.msg).name.c_str(), taken.src);
    l.sent_ack = 1;
    l.completes_rendezvous = true;
    l.granted_to = taken.src;
    l.actor = kHome;
    l.decision = protocol().message(taken.msg).name;
    out.emplace_back(std::move(next), std::move(l));
    return;
  }

  // τ moves (internal states, and autonomous decisions in comm states such
  // as the invalidate protocol's "copyset swept").
  for (const auto& g : st.taus) {
    if (g.cond && !ir::eval(*g.cond, hm.store, hctx)) continue;
    AsyncState next = s;
    if (g.action)
      ir::exec(*g.action, next.home.store, home.vars, hctx);
    next.home.state = g.next;
    Label l;
    if (mode == LabelMode::Full)
      l.text = strf("h: tau %s", g.label.empty() ? "-" : g.label.c_str());
    l.actor = kHome;
    l.decision = g.label;
    out.emplace_back(std::move(next), std::move(l));
  }
  if (st.kind != StateKind::Comm) return;

  // ---- row C1: complete a rendezvous from the buffer ----
  bool any_c1 = false;
  for (std::size_t b = 0; b < hm.buffer.size(); ++b) {
    const Msg& m = hm.buffer[b];
    for (std::size_t gi = 0; gi < st.inputs.size(); ++gi) {
      const InputGuard& ig = st.inputs[gi];
      if (ig.msg != m.msg) continue;
      if (!input_source_matches(ig, hm.store, m.src)) continue;
      if (ig.cond && !ir::eval(*ig.cond, hm.store, hctx)) continue;
      any_c1 = true;
      MsgClass cls = refined_->cls(m.msg);
      if (cls == MsgClass::Broadcast) {
        // Open a split bus transaction instead of completing on the spot:
        // the guard is recorded and applied only after every other remote
        // has been snooped.
        AsyncState next = s;
        BusTxn txn;
        txn.src = m.src;
        txn.guard = static_cast<std::uint8_t>(gi);
        txn.msg = m.msg;
        txn.pending = NodeSet::all(n_);
        txn.pending.remove(m.src);
        txn.payload = m.payload;
        next.home.buffer.erase(next.home.buffer.begin() + b);
        next.home.txn = std::move(txn);
        Label l;
        l.actor = kHome;
        if (mode == LabelMode::Full)
          l.text = strf("h bus: open %s from r%d",
                      protocol().message(m.msg).name.c_str(), m.src);
        out.emplace_back(std::move(next), std::move(l));
        continue;
      }
      if (cls == MsgClass::Normal &&
          s.down[m.src].size() >= static_cast<std::size_t>(cap_))
        continue;  // no room for the ack right now
      AsyncState next = s;
      Msg taken = m;
      next.home.buffer.erase(next.home.buffer.begin() + b);
      Label l;
      l.actor = kHome;
      if (cls == MsgClass::Normal) {
        Msg ack;
        ack.meta = Meta::Ack;
        ack.src = Msg::kHomeSrc;
        next.down[taken.src].push(std::move(ack));
        l.sent_ack = 1;
        l.completes_rendezvous = true;
        l.granted_to = taken.src;
      } else if (cls == MsgClass::FusedRequest) {
        // §3.3: no ack — the later reply acts as the ack.
        l.completes_rendezvous = true;
        l.granted_to = taken.src;
      } else {
        // ElideAck: the sender already committed at send time.
        CCREF_ASSERT(cls == MsgClass::ElideAck);
      }
      apply_input(home, next.home.store, next.home.state, ig, taken, kHome);
      if (mode == LabelMode::Full)
        l.text = strf("h C1: %s %s from r%d",
                    cls == MsgClass::Normal ? "ack" : "consume",
                    protocol().message(taken.msg).name.c_str(), taken.src);
      out.emplace_back(std::move(next), std::move(l));
    }
  }

  // ---- row C2: initiate a rendezvous (only when no buffered request can
  // complete one — condition (a)) ----
  if (any_c1) return;
  for (std::size_t gi = 0; gi < st.outputs.size(); ++gi) {
    const OutputGuard& og = st.outputs[gi];
    if (og.cond && !ir::eval(*og.cond, hm.store, hctx)) continue;
    NodeSet targets;
    if (og.to.kind == PeerSel::Kind::Expr) {
      std::int64_t j = ir::eval(*og.to.expr, hm.store, hctx);
      CCREF_ASSERT(j >= 0 && j < n_);
      targets.add(static_cast<NodeId>(j));
    } else if (og.to.kind == PeerSel::Kind::AnyInSet) {
      targets = NodeSet(
          static_cast<std::uint64_t>(ir::eval(*og.to.expr, hm.store, hctx)));
    }
    MsgClass cls = refined_->cls(og.msg);
    for (NodeId ri : targets) {
      if (ri >= n_) continue;
      // Condition (c): a pending request from ri means ri is active and
      // cannot satisfy our request — sending would be wasted.
      bool pending = false;
      for (const auto& bm : hm.buffer)
        if (bm.src == ri) pending = true;
      if (pending) continue;
      if (cls == MsgClass::Reply) {
        // Fire-and-forget reply of a fused pair: the §3.3 conditions
        // guarantee the remote is waiting, so no ack and no transient.
        if (s.down[ri].size() >= static_cast<std::size_t>(cap_)) continue;
        AsyncState next = s;
        Msg repl;
        repl.meta = Meta::Repl;
        repl.msg = og.msg;
        repl.src = Msg::kHomeSrc;
        repl.payload = eval_payload(og, hm.store, kHome, ri);
        next.down[ri].push(std::move(repl));
        apply_home_output(next.home, og, ri);
        Label l;
        if (mode == LabelMode::Full)
          l.text = strf("h C2: repl %s -> r%d",
                      protocol().message(og.msg).name.c_str(), ri);
        l.sent_repl = 1;
        l.completes_rendezvous = true;
        l.granted_to = kHome;
        l.actor = kHome;
        l.decision = protocol().message(og.msg).name;
        out.emplace_back(std::move(next), std::move(l));
        continue;
      }
      // Generic request: allocate the ack buffer first (§3.2), nacking one
      // buffered request if the buffer is full (condition (a) already told
      // us none of them satisfies a rendezvous here).
      AsyncState next = s;
      Label l;
      if (refined_->options.ack_buffer &&
          next.home.buffer.size() >= static_cast<std::size_t>(k_)) {
        int victim = -1;
        for (int v = static_cast<int>(next.home.buffer.size()) - 1; v >= 0;
             --v)
          if (refined_->cls(next.home.buffer[v].msg) != MsgClass::ElideAck) {
            victim = v;
            break;
          }
        if (victim < 0) continue;  // nothing nackable
        std::uint8_t vsrc = next.home.buffer[victim].src;
        if (next.down[vsrc].size() >= static_cast<std::size_t>(cap_))
          continue;
        next.home.buffer.erase(next.home.buffer.begin() + victim);
        Msg nack;
        nack.meta = Meta::Nack;
        nack.src = Msg::kHomeSrc;
        next.down[vsrc].push(std::move(nack));
        l.sent_nack = 1;
      }
      if (next.down[ri].size() >= static_cast<std::size_t>(cap_)) continue;
      Msg req;
      req.meta = Meta::Req;
      req.msg = og.msg;
      req.src = Msg::kHomeSrc;
      req.payload = eval_payload(og, hm.store, kHome, ri);
      next.down[ri].push(std::move(req));
      next.home.transient = true;
      next.home.t_guard = static_cast<std::uint8_t>(gi);
      next.home.t_target = ri;
      if (mode == LabelMode::Full)
        l.text = strf("h C2: request %s -> r%d",
                    protocol().message(og.msg).name.c_str(), ri);
      l.sent_req = 1;
      l.actor = kHome;
      l.decision = protocol().message(og.msg).name;
      out.emplace_back(std::move(next), std::move(l));
    }
  }
}

// ---- remote local steps ---------------------------------------------------------

void AsyncSystem::remote_local(const AsyncState& s, int i, LabelMode mode,
                               Out& out) const {
  const ir::Process& remote = protocol().remote;
  const RemoteMachine& rm = s.remotes[i];
  const EvalCtx rctx{i};

  if (rm.buffer && rm.buffer->meta == Meta::Snoop) {
    // A parked snoop is answered before anything else — even by a transient
    // remote (its active state's `bcast?` guards are exactly the snoops it
    // may consume while waiting for the bus). First enabled guard wins,
    // mirroring sem::fire_bcast; no guard means the snoop is ignored.
    if (s.up[i].size() >= static_cast<std::size_t>(cap_)) return;
    const Msg m = *rm.buffer;
    const ir::State& cur = remote.state(rm.state);
    const InputGuard* hit = nullptr;
    if (cur.kind == StateKind::Comm) {
      for (const auto& ig : cur.inputs) {
        if (ig.msg != m.msg || ig.from.kind != PeerSrc::Kind::Bcast) continue;
        if (ig.cond && !ir::eval(*ig.cond, rm.store, rctx)) continue;
        hit = &ig;
        break;
      }
    }
    AsyncState next = s;
    auto& nrm = next.remotes[i];
    nrm.buffer.reset();
    const bool cancelled = hit && rm.transient;
    if (hit) {
      apply_input(remote, nrm.store, nrm.state, *hit, m, i);
      nrm.transient = false;
    }
    Msg ack;
    ack.meta = Meta::SnoopAck;
    ack.msg = cancelled ? 1 : 0;  // flag: own in-flight request cancelled
    ack.src = static_cast<std::uint8_t>(i);
    next.up[i].push(std::move(ack));
    Label l;
    l.actor = i;
    if (mode == LabelMode::Full)
      l.text = strf("r%d: snoop %s(r%d) %s", i,
                  protocol().message(m.msg).name.c_str(), m.src,
                  cancelled  ? "applied, cancelling own request"
                  : hit      ? "applied"
                             : "ignored");
    out.emplace_back(std::move(next), std::move(l));
    return;
  }

  if (rm.transient) return;
  const ir::State& st = remote.state(rm.state);

  // τ moves; the one-slot buffer rides along.
  for (const auto& g : st.taus) {
    if (g.cond && !ir::eval(*g.cond, rm.store, rctx)) continue;
    AsyncState next = s;
    auto& nrm = next.remotes[i];
    if (g.action) ir::exec(*g.action, nrm.store, remote.vars, rctx);
    nrm.state = g.next;
    Label l;
    if (mode == LabelMode::Full)
      l.text = strf("r%d: tau %s", i, g.label.empty() ? "-" : g.label.c_str());
    l.actor = i;
    l.decision = g.label;
    out.emplace_back(std::move(next), std::move(l));
  }
  if (st.kind != StateKind::Comm) return;

  if (!st.outputs.empty()) {
    // Active state (§2.4: exactly one output guard) — rows C1/C2 of Table 1.
    const OutputGuard& og = st.outputs[0];
    if (og.cond && !ir::eval(*og.cond, rm.store, rctx)) return;
    if (s.up[i].size() >= static_cast<std::size_t>(cap_)) return;
    MsgClass cls = refined_->cls(og.msg);
    AsyncState next = s;
    auto& nrm = next.remotes[i];
    // Row C2: a buffered request from the home is deleted; the home will
    // interpret our request as an implicit nack for it (rule R3).
    bool deleted = nrm.buffer.has_value();
    nrm.buffer.reset();
    Label l;
    l.actor = i;
    l.decision = protocol().message(og.msg).name;
    if (cls == MsgClass::ElideAck) {
      // Hand-design deviation: send and commit immediately, no handshake.
      Msg req;
      req.meta = Meta::Req;
      req.msg = og.msg;
      req.src = static_cast<std::uint8_t>(i);
      req.payload = eval_payload(og, rm.store, i, kHome);
      next.up[i].push(std::move(req));
      if (og.action) ir::exec(*og.action, nrm.store, remote.vars, rctx);
      nrm.state = og.next;
      if (mode == LabelMode::Full)
        l.text = strf("r%d: send %s (no ack)%s", i,
                    protocol().message(og.msg).name.c_str(),
                    deleted ? ", dropped buffered request" : "");
      l.sent_req = 1;
      l.completes_rendezvous = true;
      l.granted_to = i;
    } else {
      Msg req;
      req.meta = Meta::Req;
      req.msg = og.msg;
      req.src = static_cast<std::uint8_t>(i);
      req.payload = eval_payload(og, rm.store, i, kHome);
      next.up[i].push(std::move(req));
      nrm.transient = true;
      if (mode == LabelMode::Full)
        l.text = strf("r%d C%d: request %s", i, deleted ? 2 : 1,
                    protocol().message(og.msg).name.c_str());
      l.sent_req = 1;
    }
    out.emplace_back(std::move(next), std::move(l));
    return;
  }

  // Passive state — row C3: answer the buffered request.
  if (!rm.buffer.has_value()) return;
  const Msg& m = *rm.buffer;
  bool matched = false;
  for (const auto& ig : st.inputs) {
    if (ig.msg != m.msg) continue;
    // Stable bus states mix `h?` inputs with `bcast?` snoop guards; a
    // buffered point-to-point request only answers through the former.
    if (ig.from.kind != PeerSrc::Kind::Home) continue;
    if (ig.cond && !ir::eval(*ig.cond, rm.store, rctx)) continue;
    matched = true;
    if (s.up[i].size() >= static_cast<std::size_t>(cap_)) continue;
    AsyncState next = s;
    auto& nrm = next.remotes[i];
    Msg taken = m;
    nrm.buffer.reset();
    Label l;
    l.actor = i;
    if (refined_->cls(m.msg) == MsgClass::FusedRequest &&
        refined_->remote_replies_through(ig)) {
      // §3.3 reverse direction: apply the input, then immediately answer
      // with the reply — it doubles as the ack.
      apply_input(remote, nrm.store, nrm.state, ig, taken, i);
      const OutputGuard& og = remote.state(nrm.state).outputs[0];
      Msg repl;
      repl.meta = Meta::Repl;
      repl.msg = og.msg;
      repl.src = static_cast<std::uint8_t>(i);
      repl.payload = eval_payload(og, nrm.store, i, kHome);
      next.up[i].push(std::move(repl));
      if (og.action) ir::exec(*og.action, nrm.store, remote.vars, rctx);
      nrm.state = og.next;
      if (mode == LabelMode::Full)
        l.text = strf("r%d C3: %s answered with repl %s", i,
                    protocol().message(taken.msg).name.c_str(),
                    protocol().message(repl.msg).name.c_str());
      l.sent_repl = 1;
      l.completes_rendezvous = true;
      l.granted_to = kHome;
    } else {
      Msg ack;
      ack.meta = Meta::Ack;
      ack.src = static_cast<std::uint8_t>(i);
      next.up[i].push(std::move(ack));
      apply_input(remote, nrm.store, nrm.state, ig, taken, i);
      if (mode == LabelMode::Full)
        l.text = strf("r%d C3: ack %s", i,
                    protocol().message(taken.msg).name.c_str());
      l.sent_ack = 1;
      l.completes_rendezvous = true;
      l.granted_to = kHome;
    }
    out.emplace_back(std::move(next), std::move(l));
  }
  if (!matched) {
    // Row C3, no guard satisfied: nack and keep waiting.
    if (s.up[i].size() >= static_cast<std::size_t>(cap_)) return;
    AsyncState next = s;
    next.remotes[i].buffer.reset();
    Msg nack;
    nack.meta = Meta::Nack;
    nack.src = static_cast<std::uint8_t>(i);
    next.up[i].push(std::move(nack));
    Label l;
    if (mode == LabelMode::Full)
      l.text = strf("r%d C3: nack %s", i,
                  protocol().message(m.msg).name.c_str());
    l.sent_nack = 1;
    l.actor = i;
    out.emplace_back(std::move(next), std::move(l));
  }
}

// ---- encode / decode / describe ------------------------------------------------

void AsyncSystem::encode(const AsyncState& s, ByteSink& sink) const {
  sink.u8(s.home.transient ? 1 : 0);
  sink.varint(s.home.state);
  sink.u8(s.home.t_guard);
  sink.u8(s.home.t_target);
  s.home.store.encode(sink);
  sink.u8(static_cast<std::uint8_t>(s.home.buffer.size()));
  for (const Msg& m : s.home.buffer) m.encode(sink);
  sink.u8(s.home.txn.has_value() ? 1 : 0);
  if (s.home.txn) {
    const BusTxn& t = *s.home.txn;
    sink.u8(t.src);
    sink.u8(t.guard);
    sink.u8(t.msg);
    sink.u8(t.snooping);
    sink.varint(t.pending.bits());
    sink.u8(static_cast<std::uint8_t>(t.payload.size()));
    for (ir::Value v : t.payload) sink.varint(v);
  }
  sink.boundary(kCompHome);
  for (const auto& r : s.remotes) {
    sink.u8(r.transient ? 1 : 0);
    sink.varint(r.state);
    r.store.encode(sink);
    sink.u8(r.buffer.has_value() ? 1 : 0);
    if (r.buffer) r.buffer->encode(sink);
    sink.boundary(kCompRemote);
  }
  for (const auto& c : s.up) {
    c.encode(sink);
    sink.boundary(kCompUp);
  }
  for (const auto& c : s.down) {
    c.encode(sink);
    sink.boundary(kCompDown);
  }
}

AsyncState AsyncSystem::decode(ByteSource& src) const {
  const ir::Protocol& p = protocol();
  AsyncState s;
  s.home.transient = src.u8() != 0;
  s.home.state = static_cast<ir::StateId>(src.varint());
  s.home.t_guard = src.u8();
  s.home.t_target = src.u8();
  s.home.store = ir::Store(p.home.vars);
  s.home.store.decode(src);
  s.home.buffer.resize(src.u8());
  for (Msg& m : s.home.buffer) m = Msg::decode(src);
  if (src.u8()) {
    BusTxn t;
    t.src = src.u8();
    t.guard = src.u8();
    t.msg = src.u8();
    t.snooping = src.u8();
    t.pending = NodeSet(src.varint());
    t.payload.resize(src.u8());
    for (ir::Value& v : t.payload) v = src.varint();
    s.home.txn = std::move(t);
  }
  s.remotes.resize(n_);
  for (auto& r : s.remotes) {
    r.transient = src.u8() != 0;
    r.state = static_cast<ir::StateId>(src.varint());
    r.store = ir::Store(p.remote.vars);
    r.store.decode(src);
    if (src.u8()) r.buffer = Msg::decode(src);
  }
  s.up.resize(n_);
  for (auto& c : s.up) c = Channel::decode(src);
  s.down.resize(n_);
  for (auto& c : s.down) c = Channel::decode(src);
  return s;
}

std::string AsyncSystem::describe(const AsyncState& s) const {
  const ir::Protocol& p = protocol();
  auto msg_str = [&](const Msg& m) {
    std::string out = to_string(m.meta);
    if (m.meta == Meta::Req || m.meta == Meta::Repl ||
        m.meta == Meta::Snoop)
      out += "." + p.message(m.msg).name;
    if (m.meta == Meta::SnoopAck && m.msg == 1) out += ".cancel";
    out += m.src == Msg::kHomeSrc ? "<h" : strf("<r%d", m.src);
    return out;
  };
  std::string out = "h=" + p.home.state(s.home.state).name;
  if (s.home.transient)
    out += strf("*[g%d->r%d]", s.home.t_guard, s.home.t_target);
  out += "(";
  for (std::size_t v = 0; v < p.home.vars.size(); ++v) {
    if (v) out += ",";
    out += strf("%s=%llu", p.home.vars[v].name.c_str(),
                static_cast<unsigned long long>(
                    s.home.store.get(static_cast<ir::VarId>(v))));
  }
  out += ") buf[";
  for (std::size_t b = 0; b < s.home.buffer.size(); ++b) {
    if (b) out += " ";
    out += msg_str(s.home.buffer[b]);
  }
  out += "]";
  if (s.home.txn) {
    const BusTxn& t = *s.home.txn;
    out += strf(" txn[%s<r%d pend=%llx", p.message(t.msg).name.c_str(),
                t.src, static_cast<unsigned long long>(t.pending.bits()));
    if (t.snooping != BusTxn::kNoSnoop) out += strf(" snooping=r%d", t.snooping);
    out += "]";
  }
  for (int i = 0; i < n_; ++i) {
    const auto& r = s.remotes[i];
    out += strf(" r%d=%s%s", i, p.remote.state(r.state).name.c_str(),
                r.transient ? "*" : "");
    if (r.buffer) out += "[" + msg_str(*r.buffer) + "]";
  }
  for (int i = 0; i < n_; ++i) {
    if (!s.up[i].empty()) {
      out += strf(" up%d:", i);
      for (const Msg& m : s.up[i].q) out += " " + msg_str(m);
    }
    if (!s.down[i].empty()) {
      out += strf(" down%d:", i);
      for (const Msg& m : s.down[i].q) out += " " + msg_str(m);
    }
  }
  return out;
}

// ---- symmetry ------------------------------------------------------------------

void AsyncSystem::permute(AsyncState& s, const ir::NodePerm& perm) const {
  CCREF_REQUIRE(perm.size() == static_cast<std::size_t>(n_));
  const ir::Protocol& p = protocol();

  auto reorder = [&](auto& vec) {
    std::remove_reference_t<decltype(vec)> out(n_);
    for (int i = 0; i < n_; ++i) out[perm[i]] = std::move(vec[i]);
    vec = std::move(out);
  };
  reorder(s.remotes);
  reorder(s.up);
  reorder(s.down);

  auto remap_msg = [&](Msg& m) {
    if (m.src != Msg::kHomeSrc && m.src < n_) m.src = perm[m.src];
    if (m.meta != Meta::Req && m.meta != Meta::Repl &&
        m.meta != Meta::Snoop)
      return;
    const auto& types = p.message(m.msg).payload;
    for (std::size_t f = 0; f < m.payload.size() && f < types.size(); ++f)
      m.payload[f] = ir::remap_value(types[f], m.payload[f], perm);
  };

  ir::remap_store(s.home.store, p.home.vars, perm);
  // The transient target is remapped even when the home is back in a stable
  // state: the stale value is still part of the encoding, and a group action
  // must rename it consistently or two permutations of one state would stop
  // being equal.
  if (s.home.t_target < n_) s.home.t_target = perm[s.home.t_target];
  if (s.home.txn) {
    BusTxn& t = *s.home.txn;
    if (t.src < n_) t.src = perm[t.src];
    if (t.snooping != BusTxn::kNoSnoop && t.snooping < n_)
      t.snooping = perm[t.snooping];
    t.pending = NodeSet(static_cast<std::uint64_t>(ir::remap_value(
        ir::Type::NodeSet, static_cast<ir::Value>(t.pending.bits()), perm)));
    const auto& types = p.message(t.msg).payload;
    for (std::size_t f = 0; f < t.payload.size() && f < types.size(); ++f)
      t.payload[f] = ir::remap_value(types[f], t.payload[f], perm);
  }
  for (Msg& m : s.home.buffer) remap_msg(m);
  for (auto& r : s.remotes) {
    ir::remap_store(r.store, p.remote.vars, perm);
    if (r.buffer) remap_msg(*r.buffer);
  }
  for (auto& c : s.up)
    for (Msg& m : c.q) remap_msg(m);
  for (auto& c : s.down)
    for (Msg& m : c.q) remap_msg(m);
}

void AsyncSystem::canonicalize(AsyncState& s) const {
  if (n_ <= 1) return;
  const ir::Protocol& p = protocol();
  const auto& hvars = p.home.vars;
  const auto& rvars = p.remote.vars;

  // Per-remote signature: the remote machine, its two channels, and the
  // home's view of it (Node/NodeSet references, pending transient target,
  // which buffer slots hold its requests) — each fact written so that two
  // interchangeable remotes produce byte-identical signatures. Node values
  // naming *other* remotes stay raw: sound, but only partially canonical
  // for protocols with cross-remote references (the shipped ones have none).
  ByteSink sink;
  auto sig_value = [&](ir::Type t, ir::Value val, int self) {
    switch (t) {
      case ir::Type::Node:
        sink.varint(val == static_cast<ir::Value>(self)
                        ? static_cast<ir::Value>(n_)
                        : val);
        break;
      case ir::Type::NodeSet:
        sink.u8((val >> self) & 1u);
        sink.varint(val & ~(ir::Value{1} << self));
        break;
      default:
        sink.varint(val);
    }
  };
  auto sig_msg = [&](const Msg& m, int self) {
    sink.u8(static_cast<std::uint8_t>(m.meta));
    sink.u8(m.msg);
    // 0xfe tags "sent by this remote": raw src values are node ids < 64.
    sink.u8(m.src == static_cast<std::uint8_t>(self) ? 0xfe : m.src);
    if (m.meta != Meta::Req && m.meta != Meta::Repl &&
        m.meta != Meta::Snoop)
      return;
    const auto& types = p.message(m.msg).payload;
    for (std::size_t f = 0; f < m.payload.size(); ++f)
      sig_value(f < types.size() ? types[f] : ir::Type::Int, m.payload[f],
                self);
  };

  std::vector<std::vector<std::byte>> sig(n_);
  for (int i = 0; i < n_; ++i) {
    sink.clear();
    const RemoteMachine& r = s.remotes[i];
    sink.u8(r.transient ? 1 : 0);
    sink.varint(r.state);
    for (std::size_t v = 0; v < rvars.size(); ++v)
      sig_value(rvars[v].type, r.store.get(static_cast<ir::VarId>(v)), i);
    sink.u8(r.buffer.has_value() ? 1 : 0);
    if (r.buffer) sig_msg(*r.buffer, i);
    for (const Channel* c : {&s.up[i], &s.down[i]}) {
      sink.u8(static_cast<std::uint8_t>(c->size()));
      for (const Msg& m : c->q) sig_msg(m, i);
    }
    for (std::size_t v = 0; v < hvars.size(); ++v) {
      const ir::Value val = s.home.store.get(static_cast<ir::VarId>(v));
      if (hvars[v].type == ir::Type::Node)
        sink.u8(val == static_cast<ir::Value>(i) ? 1 : 0);
      else if (hvars[v].type == ir::Type::NodeSet)
        sink.u8((val >> i) & 1u);
    }
    sink.u8(s.home.t_target == static_cast<std::uint8_t>(i) ? 1 : 0);
    if (s.home.txn) {
      const BusTxn& t = *s.home.txn;
      sink.u8(t.src == static_cast<std::uint8_t>(i) ? 1 : 0);
      sink.u8(t.snooping == static_cast<std::uint8_t>(i) ? 1 : 0);
      sink.u8(t.pending.contains(static_cast<NodeId>(i)) ? 1 : 0);
      const auto& types = p.message(t.msg).payload;
      for (std::size_t f = 0; f < t.payload.size(); ++f)
        sig_value(f < types.size() ? types[f] : ir::Type::Int, t.payload[f],
                  i);
    }
    for (const Msg& m : s.home.buffer)
      sink.u8(m.src == static_cast<std::uint8_t>(i) ? 1 : 0);
    sig[i] = std::vector<std::byte>(sink.bytes().begin(), sink.bytes().end());
  }

  std::vector<int> order(n_);
  for (int i = 0; i < n_; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return sig[a] != sig[b] ? sig[a] < sig[b] : a < b;
  });

  ir::NodePerm perm(n_);
  for (int pos = 0; pos < n_; ++pos)
    perm[order[pos]] = static_cast<std::uint8_t>(pos);
  if (!ir::is_identity(perm)) permute(s, perm);
}

}  // namespace ccref::runtime
