// In-place execution of single asynchronous transitions.
//
// AsyncSystem::successors() enumerates every enabled edge and copies the
// whole AsyncState per edge — exactly right for model checking, hopeless for
// a discrete-event simulator that wants millions of transitions per second
// on one live state. AsyncExec executes ONE chosen transition by mutating
// the state in place: deliver the head of a channel, take one home step, or
// take one remote step, each branch ported line-for-line from the
// enumeration so the reachable behaviours are identical (pinned by the
// cross-engine agreement tests in tests/test_des.cpp).
//
// Where the enumeration offers a choice (which buffered request to ack,
// which C2 target to request), AsyncExec deterministically takes the FIRST
// edge in enumeration order; schedule diversity comes from the caller's
// event interleaving, not from intra-step nondeterminism. Controllable
// remote decisions (τ labels, active-send message names) pass through a
// DecisionGate so a workload can hold back `write`/`evict`/`req` until the
// simulated CPU actually wants them — mirroring sim::Simulator's gating.
#pragma once

#include <string>

#include "runtime/async_system.hpp"
#include "sem/label.hpp"
#include "support/contracts.hpp"

namespace ccref::runtime {

/// Outcome of one in-place execution attempt.
enum class ExecResult : std::uint8_t {
  Applied,  // the state was mutated; the label describes the step
  Blocked,  // a step is enabled but a full channel prevents it right now
  None,     // nothing enabled here (or everything gated off)
};

/// Gate for controllable remote decisions: τ labels (e.g. "evict") and
/// active-send message names (e.g. "req"). Obligatory steps — deliveries,
/// C3 answers/nacks, home steps — are never gated. Implementations must
/// allow the empty label (τs without a decision name are not controllable).
class DecisionGate {
 public:
  virtual ~DecisionGate() = default;
  [[nodiscard]] virtual bool allows(int remote,
                                    const std::string& decision) const = 0;
};

struct AllowAllGate final : DecisionGate {
  [[nodiscard]] bool allows(int, const std::string&) const override {
    return true;
  }
};

/// Wire messages pushed by one applied step, so a discrete-event scheduler
/// can enqueue their deliveries without diffing channel lengths. A step
/// pushes at most two (home C2: eviction nack + the new request).
struct SendLog {
  struct Entry {
    bool up;            // true: up[node] (remote→home); false: down[node]
    std::uint8_t node;  // channel index
    Meta meta;
    ir::MsgId msg;  // meaningful for Req/Repl; 0 for pure control
  };
  std::uint8_t count = 0;
  Entry e[2];

  void add(bool up, std::uint8_t node, Meta meta, ir::MsgId msg) {
    CCREF_ASSERT(count < 2);
    e[count++] = {up, node, meta, msg};
  }
  void clear() { count = 0; }
};

/// Reset a label for reuse without deallocating its string capacity.
inline void reset_label(sem::Label& l) {
  l.text.clear();
  l.completes_rendezvous = false;
  l.sent_req = l.sent_ack = l.sent_nack = l.sent_repl = 0;
  l.actor = -2;
  l.granted_to = -2;
  l.decision.clear();
}

class AsyncExec {
 public:
  explicit AsyncExec(const AsyncSystem& sys) : sys_(&sys) {
    CCREF_REQUIRE_MSG(
        sys.protocol().topology == ir::Topology::Star,
        "AsyncExec drives star protocols only: the in-place executor does "
        "not implement split bus transactions (use AsyncSystem::successors "
        "for bus protocols)");
  }

  /// Deliver the head of up[i] to the home (rows T1-T3 / buffer admission).
  /// Blocked when a required nack cannot be sent because down[i] is full.
  ExecResult deliver_up(AsyncState& s, int i, sem::Label& l,
                        SendLog* log) const;

  /// Deliver the head of down[i] to remote i. Never Blocked: every branch
  /// consumes the head.
  ExecResult deliver_down(AsyncState& s, int i, sem::Label& l,
                          SendLog* log) const;

  /// One home local step: first enabled τ, else first C1 completion, else
  /// first C2 initiation — the enumeration's deterministic order.
  ExecResult home_step(AsyncState& s, sem::Label& l, SendLog* log) const;

  /// One remote local step for remote i: first gate-allowed τ, else the
  /// gate-allowed active send, else the obligatory C3 answer/nack.
  ExecResult remote_step(AsyncState& s, int i, const DecisionGate& gate,
                         sem::Label& l, SendLog* log) const;

  [[nodiscard]] const AsyncSystem& system() const { return *sys_; }

 private:
  ExecResult answer_buffered(AsyncState& s, int i, sem::Label& l,
                             SendLog* log) const;

  const AsyncSystem* sys_;
};

}  // namespace ccref::runtime
