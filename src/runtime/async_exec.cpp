#include "runtime/async_exec.hpp"

namespace ccref::runtime {

using ir::EvalCtx;
using ir::InputGuard;
using ir::OutputGuard;
using ir::PeerSel;
using ir::StateKind;
using refine::MsgClass;
using sem::Label;

namespace {
constexpr int kHome = -1;
}  // namespace

// Every branch below is the in-place port of the matching branch in
// async_system.cpp. The enumeration copies the state, mutates the copy, and
// discards it when a capacity check fails; here every capacity check runs
// BEFORE the first mutation so a Blocked return leaves the state untouched.

ExecResult AsyncExec::deliver_up(AsyncState& s, int i, Label& l,
                                 SendLog* log) const {
  if (s.up[i].empty()) return ExecResult::None;
  const AsyncSystem& sys = *sys_;
  const ir::Process& home = sys.protocol().home;
  HomeMachine& hm = s.home;
  reset_label(l);
  l.actor = i;
  const std::size_t cap = static_cast<std::size_t>(sys.cap_);

  switch (s.up[i].front().meta) {
    case Meta::Ack: {
      // Row T1: the pending rendezvous succeeded.
      CCREF_ASSERT_MSG(hm.transient && hm.t_target == i,
                       "stray ACK at the home");
      const OutputGuard& og = home.state(hm.state).outputs[hm.t_guard];
      CCREF_ASSERT(sys.refined_->cls(og.msg) != MsgClass::FusedRequest ||
                   !sys.refined_->home_fusion_at(hm.state, hm.t_guard));
      s.up[i].pop();
      sys.apply_home_output(hm, og, i);
      return ExecResult::Applied;
    }
    case Meta::Nack: {
      // Row T2: rendezvous failed; return to the communication state.
      CCREF_ASSERT_MSG(hm.transient && hm.t_target == i,
                       "stray NACK at the home");
      s.up[i].pop();
      hm.transient = false;
      return ExecResult::Applied;
    }
    case Meta::Repl: {
      // Fused pair completion (§3.3).
      CCREF_ASSERT_MSG(hm.transient && hm.t_target == i,
                       "stray REPL at the home");
      Msg m = s.up[i].front();
      const auto* fusion = sys.refined_->home_fusion_at(hm.state, hm.t_guard);
      CCREF_ASSERT_MSG(fusion && fusion->reply == m.msg,
                       "REPL does not match the pending fusion");
      const OutputGuard& og = home.state(hm.state).outputs[hm.t_guard];
      s.up[i].pop();
      sys.apply_home_output(hm, og, i);
      bool applied = false;
      for (const auto& ig : home.state(hm.state).inputs) {
        if (ig.msg != m.msg) continue;
        if (!sys.input_source_matches(ig, hm.store, m.src)) continue;
        if (ig.cond && !ir::eval(*ig.cond, hm.store, EvalCtx{kHome})) continue;
        sys.apply_input(home, hm.store, hm.state, ig, m, kHome);
        applied = true;
        break;
      }
      CCREF_ASSERT_MSG(applied, "no guard consumed the fused reply");
      return ExecResult::Applied;
    }
    case Meta::Req: {
      const Msg& m = s.up[i].front();
      if (hm.transient && hm.t_target == i) {
        // Row T3 (rule R3): implicit nack plus a request.
        if (sys.admit(hm, s, m, /*in_transient=*/false)) {
          Msg req = m;
          s.up[i].pop();
          hm.transient = false;
          hm.buffer.push_back(std::move(req));
          return ExecResult::Applied;
        }
        // Only reachable with the ack buffer disabled (ablation).
        if (s.down[i].size() >= cap) return ExecResult::Blocked;
        s.up[i].pop();
        hm.transient = false;
        Msg nack;
        nack.meta = Meta::Nack;
        nack.src = Msg::kHomeSrc;
        s.down[i].push(std::move(nack));
        if (log) log->add(false, static_cast<std::uint8_t>(i), Meta::Nack, 0);
        l.sent_nack = 1;
        return ExecResult::Applied;
      }
      // Rows T4/T5/T6.
      if (sys.admit(hm, s, m, hm.transient)) {
        Msg req = m;
        s.up[i].pop();
        hm.buffer.push_back(std::move(req));
        return ExecResult::Applied;
      }
      if (s.down[i].size() >= cap) return ExecResult::Blocked;
      s.up[i].pop();
      Msg nack;
      nack.meta = Meta::Nack;
      nack.src = Msg::kHomeSrc;
      s.down[i].push(std::move(nack));
      if (log) log->add(false, static_cast<std::uint8_t>(i), Meta::Nack, 0);
      l.sent_nack = 1;
      return ExecResult::Applied;
    }
  }
  return ExecResult::None;
}

ExecResult AsyncExec::deliver_down(AsyncState& s, int i, Label& l,
                                   SendLog*) const {
  if (s.down[i].empty()) return ExecResult::None;
  const AsyncSystem& sys = *sys_;
  const ir::Process& remote = sys.protocol().remote;
  RemoteMachine& rm = s.remotes[i];
  reset_label(l);
  l.actor = i;

  if (rm.transient) {
    const ir::State& a = remote.state(rm.state);
    const OutputGuard& og = a.outputs[0];
    switch (s.down[i].front().meta) {
      case Meta::Ack: {
        // Row T1.
        CCREF_ASSERT_MSG(!sys.refined_->remote_fusion_at(rm.state),
                         "ACK for a fused request");
        s.down[i].pop();
        if (og.action)
          ir::exec(*og.action, rm.store, remote.vars, EvalCtx{i});
        rm.state = og.next;
        rm.transient = false;
        return ExecResult::Applied;
      }
      case Meta::Nack: {
        // Row T2: go back and retransmit (the active send re-enables).
        s.down[i].pop();
        rm.transient = false;
        return ExecResult::Applied;
      }
      case Meta::Repl: {
        Msg m = s.down[i].front();
        const auto* fusion = sys.refined_->remote_fusion_at(rm.state);
        CCREF_ASSERT_MSG(fusion && fusion->reply == m.msg,
                         "REPL does not match the remote fusion");
        s.down[i].pop();
        if (og.action)
          ir::exec(*og.action, rm.store, remote.vars, EvalCtx{i});
        rm.state = og.next;  // W
        const InputGuard& ig = remote.state(fusion->wait_state).inputs[0];
        sys.apply_input(remote, rm.store, rm.state, ig, m, i);
        rm.transient = false;
        return ExecResult::Applied;
      }
      case Meta::Req: {
        // Row T3: dropped — the home treats our pending request as an
        // implicit nack for its own.
        s.down[i].pop();
        return ExecResult::Applied;
      }
    }
    return ExecResult::None;
  }

  // Not transient: only requests can arrive; hold in the one-slot buffer.
  CCREF_ASSERT_MSG(s.down[i].front().meta == Meta::Req,
                   "non-request at an idle remote");
  CCREF_ASSERT_MSG(!rm.buffer.has_value(),
                   "home sent two outstanding requests to one remote");
  rm.buffer = s.down[i].front();
  s.down[i].pop();
  return ExecResult::Applied;
}

ExecResult AsyncExec::home_step(AsyncState& s, Label& l, SendLog* log) const {
  const AsyncSystem& sys = *sys_;
  const ir::Process& home = sys.protocol().home;
  HomeMachine& hm = s.home;
  if (hm.transient) return ExecResult::None;  // waiting for ack/nack/reply
  const ir::State& st = home.state(hm.state);
  const EvalCtx hctx{kHome};
  const std::size_t cap = static_cast<std::size_t>(sys.cap_);

  // τ moves.
  for (const auto& g : st.taus) {
    if (g.cond && !ir::eval(*g.cond, hm.store, hctx)) continue;
    reset_label(l);
    if (g.action) ir::exec(*g.action, hm.store, home.vars, hctx);
    hm.state = g.next;
    l.actor = kHome;
    l.decision = g.label;
    return ExecResult::Applied;
  }
  if (st.kind != StateKind::Comm) return ExecResult::None;

  // ---- row C1: complete a rendezvous from the buffer ----
  bool any_c1 = false;
  for (std::size_t b = 0; b < hm.buffer.size(); ++b) {
    const Msg& m = hm.buffer[b];
    for (const auto& ig : st.inputs) {
      if (ig.msg != m.msg) continue;
      if (!sys.input_source_matches(ig, hm.store, m.src)) continue;
      if (ig.cond && !ir::eval(*ig.cond, hm.store, hctx)) continue;
      any_c1 = true;
      MsgClass cls = sys.refined_->cls(m.msg);
      if (cls == MsgClass::Normal && s.down[m.src].size() >= cap)
        continue;  // no room for the ack right now
      reset_label(l);
      l.actor = kHome;
      Msg taken = m;
      hm.buffer.erase(hm.buffer.begin() + b);
      if (cls == MsgClass::Normal) {
        Msg ack;
        ack.meta = Meta::Ack;
        ack.src = Msg::kHomeSrc;
        s.down[taken.src].push(std::move(ack));
        if (log) log->add(false, taken.src, Meta::Ack, 0);
        l.sent_ack = 1;
        l.completes_rendezvous = true;
        l.granted_to = taken.src;
      } else if (cls == MsgClass::FusedRequest) {
        // §3.3: no ack — the later reply acts as the ack.
        l.completes_rendezvous = true;
        l.granted_to = taken.src;
      } else {
        CCREF_ASSERT(cls == MsgClass::ElideAck);
      }
      sys.apply_input(home, hm.store, hm.state, ig, taken, kHome);
      return ExecResult::Applied;
    }
  }
  // Condition (a): a completable buffered request suppresses C2. If we got
  // here with any_c1 set, every C1 match was capacity-blocked.
  if (any_c1) return ExecResult::Blocked;

  // ---- row C2: initiate a rendezvous ----
  bool blocked = false;
  for (std::size_t gi = 0; gi < st.outputs.size(); ++gi) {
    const OutputGuard& og = st.outputs[gi];
    if (og.cond && !ir::eval(*og.cond, hm.store, hctx)) continue;
    NodeSet targets;
    if (og.to.kind == PeerSel::Kind::Expr) {
      std::int64_t j = ir::eval(*og.to.expr, hm.store, hctx);
      CCREF_ASSERT(j >= 0 && j < sys.n_);
      targets.add(static_cast<NodeId>(j));
    } else if (og.to.kind == PeerSel::Kind::AnyInSet) {
      targets = NodeSet(
          static_cast<std::uint64_t>(ir::eval(*og.to.expr, hm.store, hctx)));
    }
    MsgClass cls = sys.refined_->cls(og.msg);
    for (NodeId ri : targets) {
      if (ri >= sys.n_) continue;
      // Condition (c): a pending request from ri means ri cannot answer.
      bool pending = false;
      for (const auto& bm : hm.buffer)
        if (bm.src == ri) pending = true;
      if (pending) continue;
      if (cls == MsgClass::Reply) {
        if (s.down[ri].size() >= cap) {
          blocked = true;
          continue;
        }
        reset_label(l);
        Msg repl;
        repl.meta = Meta::Repl;
        repl.msg = og.msg;
        repl.src = Msg::kHomeSrc;
        repl.payload = sys.eval_payload(og, hm.store, kHome, ri);
        s.down[ri].push(std::move(repl));
        if (log) log->add(false, ri, Meta::Repl, og.msg);
        sys.apply_home_output(hm, og, ri);
        l.sent_repl = 1;
        l.completes_rendezvous = true;
        l.granted_to = kHome;
        l.actor = kHome;
        l.decision = sys.protocol().message(og.msg).name;
        return ExecResult::Applied;
      }
      // Generic request: allocate the ack buffer first (§3.2). The
      // enumeration mutates a copy and discards it when down[ri] is full;
      // in place, both channel checks must pass before the eviction runs.
      // (victim.src != ri: condition (c) above skipped targets with
      // buffered requests, so the two channel checks are independent.)
      int victim = -1;
      bool evict = sys.refined_->options.ack_buffer &&
                   hm.buffer.size() >= static_cast<std::size_t>(sys.k_);
      if (evict) {
        for (int v = static_cast<int>(hm.buffer.size()) - 1; v >= 0; --v)
          if (sys.refined_->cls(hm.buffer[v].msg) != MsgClass::ElideAck) {
            victim = v;
            break;
          }
        if (victim < 0) continue;  // nothing nackable
        if (s.down[hm.buffer[victim].src].size() >= cap) {
          blocked = true;
          continue;
        }
      }
      if (s.down[ri].size() >= cap) {
        blocked = true;
        continue;
      }
      reset_label(l);
      if (evict) {
        std::uint8_t vsrc = hm.buffer[victim].src;
        hm.buffer.erase(hm.buffer.begin() + victim);
        Msg nack;
        nack.meta = Meta::Nack;
        nack.src = Msg::kHomeSrc;
        s.down[vsrc].push(std::move(nack));
        if (log) log->add(false, vsrc, Meta::Nack, 0);
        l.sent_nack = 1;
      }
      Msg req;
      req.meta = Meta::Req;
      req.msg = og.msg;
      req.src = Msg::kHomeSrc;
      req.payload = sys.eval_payload(og, hm.store, kHome, ri);
      s.down[ri].push(std::move(req));
      if (log) log->add(false, ri, Meta::Req, og.msg);
      hm.transient = true;
      hm.t_guard = static_cast<std::uint8_t>(gi);
      hm.t_target = ri;
      l.sent_req = 1;
      l.actor = kHome;
      l.decision = sys.protocol().message(og.msg).name;
      return ExecResult::Applied;
    }
  }
  return blocked ? ExecResult::Blocked : ExecResult::None;
}

ExecResult AsyncExec::remote_step(AsyncState& s, int i,
                                  const DecisionGate& gate, Label& l,
                                  SendLog* log) const {
  const AsyncSystem& sys = *sys_;
  const ir::Process& remote = sys.protocol().remote;
  RemoteMachine& rm = s.remotes[i];
  if (rm.transient) return ExecResult::None;
  const ir::State& st = remote.state(rm.state);
  const EvalCtx rctx{i};
  const std::size_t cap = static_cast<std::size_t>(sys.cap_);

  // Row C3 first when a request is waiting in a passive state: answering
  // the home is obligatory, so it outranks the controllable moves below.
  // (The enumeration exposes both orders; a simulator that always lets a
  // gated τ preempt the answer can livelock — e.g. a migratory owner whose
  // pending `evict` keeps crossing the home's revocation forever.)
  if (rm.buffer.has_value() && st.kind == StateKind::Comm &&
      st.outputs.empty())
    return answer_buffered(s, i, l, log);

  // τ moves (controllable: gated by the workload's decision vocabulary).
  for (const auto& g : st.taus) {
    if (g.cond && !ir::eval(*g.cond, rm.store, rctx)) continue;
    if (!gate.allows(i, g.label)) continue;
    reset_label(l);
    if (g.action) ir::exec(*g.action, rm.store, remote.vars, rctx);
    rm.state = g.next;
    l.actor = i;
    l.decision = g.label;
    return ExecResult::Applied;
  }
  if (st.kind != StateKind::Comm) return ExecResult::None;

  if (!st.outputs.empty()) {
    // Active state — rows C1/C2 of Table 1 (controllable).
    const OutputGuard& og = st.outputs[0];
    if (og.cond && !ir::eval(*og.cond, rm.store, rctx))
      return ExecResult::None;
    if (!gate.allows(i, sys.protocol().message(og.msg).name))
      return ExecResult::None;
    if (s.up[i].size() >= cap) return ExecResult::Blocked;
    MsgClass cls = sys.refined_->cls(og.msg);
    reset_label(l);
    // Row C2: a buffered request from the home is deleted (rule R3).
    rm.buffer.reset();
    l.actor = i;
    l.decision = sys.protocol().message(og.msg).name;
    Msg req;
    req.meta = Meta::Req;
    req.msg = og.msg;
    req.src = static_cast<std::uint8_t>(i);
    req.payload = sys.eval_payload(og, rm.store, i, kHome);
    s.up[i].push(std::move(req));
    if (log) log->add(true, static_cast<std::uint8_t>(i), Meta::Req, og.msg);
    if (cls == MsgClass::ElideAck) {
      // Hand-design deviation: send and commit immediately, no handshake.
      if (og.action) ir::exec(*og.action, rm.store, remote.vars, rctx);
      rm.state = og.next;
      l.sent_req = 1;
      l.completes_rendezvous = true;
      l.granted_to = i;
    } else {
      rm.transient = true;
      l.sent_req = 1;
    }
    return ExecResult::Applied;
  }

  return ExecResult::None;
}

// Row C3: answer the buffered request from a passive state (obligatory).
ExecResult AsyncExec::answer_buffered(AsyncState& s, int i, Label& l,
                                      SendLog* log) const {
  const AsyncSystem& sys = *sys_;
  const ir::Process& remote = sys.protocol().remote;
  RemoteMachine& rm = s.remotes[i];
  const ir::State& st = remote.state(rm.state);
  const EvalCtx rctx{i};
  const std::size_t cap = static_cast<std::size_t>(sys.cap_);

  const Msg& m = *rm.buffer;
  bool matched = false;
  for (const auto& ig : st.inputs) {
    if (ig.msg != m.msg) continue;
    if (ig.cond && !ir::eval(*ig.cond, rm.store, rctx)) continue;
    matched = true;
    if (s.up[i].size() >= cap) return ExecResult::Blocked;
    reset_label(l);
    l.actor = i;
    Msg taken = m;
    rm.buffer.reset();
    if (sys.refined_->cls(taken.msg) == MsgClass::FusedRequest &&
        sys.refined_->remote_replies_through(ig)) {
      // §3.3 reverse direction: the reply doubles as the ack.
      sys.apply_input(remote, rm.store, rm.state, ig, taken, i);
      const OutputGuard& og = remote.state(rm.state).outputs[0];
      Msg repl;
      repl.meta = Meta::Repl;
      repl.msg = og.msg;
      repl.src = static_cast<std::uint8_t>(i);
      repl.payload = sys.eval_payload(og, rm.store, i, kHome);
      s.up[i].push(std::move(repl));
      if (log)
        log->add(true, static_cast<std::uint8_t>(i), Meta::Repl, og.msg);
      if (og.action) ir::exec(*og.action, rm.store, remote.vars, rctx);
      rm.state = og.next;
      l.sent_repl = 1;
      l.completes_rendezvous = true;
      l.granted_to = kHome;
    } else {
      Msg ack;
      ack.meta = Meta::Ack;
      ack.src = static_cast<std::uint8_t>(i);
      s.up[i].push(std::move(ack));
      if (log) log->add(true, static_cast<std::uint8_t>(i), Meta::Ack, 0);
      sys.apply_input(remote, rm.store, rm.state, ig, taken, i);
      l.sent_ack = 1;
      l.completes_rendezvous = true;
      l.granted_to = kHome;
    }
    return ExecResult::Applied;
  }
  if (!matched) {
    // Row C3, no guard satisfied: nack and keep waiting.
    if (s.up[i].size() >= cap) return ExecResult::Blocked;
    reset_label(l);
    rm.buffer.reset();
    Msg nack;
    nack.meta = Meta::Nack;
    nack.src = static_cast<std::uint8_t>(i);
    s.up[i].push(std::move(nack));
    if (log) log->add(true, static_cast<std::uint8_t>(i), Meta::Nack, 0);
    l.sent_nack = 1;
    l.actor = i;
    return ExecResult::Applied;
  }
  return ExecResult::None;
}

}  // namespace ccref::runtime
