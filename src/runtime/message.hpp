// Wire messages of the asynchronous (refined) protocol.
//
// The refinement splits each rendezvous into a *request for rendezvous* and
// an ack/nack (§3). Fused request/reply pairs (§3.3) add a fourth kind: a
// reply that simultaneously acks the request and carries the second
// rendezvous. A request/reply carries the original rendezvous message id and
// payload; acks and nacks are pure control.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/types.hpp"
#include "support/bytes.hpp"

namespace ccref::runtime {

/// Snoop/SnoopAck implement the split bus transaction (topology bus): the
/// home forwards an admitted broadcast request to each other remote as a
/// Snoop (src = the original requester, so snoop guards bind it), and the
/// remote answers with a SnoopAck. A SnoopAck's `msg` field is reused as a
/// flag: 1 means answering the snoop cancelled the remote's own in-flight
/// request (it left its active state through a `bcast?` guard), telling the
/// home to discard that request wherever it surfaces.
enum class Meta : std::uint8_t { Req, Ack, Nack, Repl, Snoop, SnoopAck };

[[nodiscard]] constexpr const char* to_string(Meta m) {
  switch (m) {
    case Meta::Req: return "REQ";
    case Meta::Ack: return "ACK";
    case Meta::Nack: return "NACK";
    case Meta::Repl: return "REPL";
    case Meta::Snoop: return "SNOOP";
    case Meta::SnoopAck: return "SNOOPACK";
  }
  return "?";
}

struct Msg {
  Meta meta = Meta::Req;
  ir::MsgId msg = 0;      // meaningful for Req/Repl
  std::uint8_t src = 0;   // sender: node id, or kHomeSrc for the home
  std::vector<ir::Value> payload;

  static constexpr std::uint8_t kHomeSrc = 0xff;

  friend bool operator==(const Msg&, const Msg&) = default;

  void encode(ByteSink& sink) const {
    sink.u8(static_cast<std::uint8_t>(meta));
    sink.u8(msg);
    sink.u8(src);
    sink.u8(static_cast<std::uint8_t>(payload.size()));
    for (ir::Value v : payload) sink.varint(v);
  }

  static Msg decode(ByteSource& src_) {
    Msg m;
    m.meta = static_cast<Meta>(src_.u8());
    m.msg = src_.u8();
    m.src = src_.u8();
    m.payload.resize(src_.u8());
    for (ir::Value& v : m.payload) v = src_.varint();
    return m;
  }
};

/// Reliable, in-order, point-to-point FIFO channel (§2.2's network model).
struct Channel {
  std::vector<Msg> q;  // front at index 0; channels hold only a few messages

  [[nodiscard]] bool empty() const { return q.empty(); }
  [[nodiscard]] std::size_t size() const { return q.size(); }
  [[nodiscard]] const Msg& front() const { return q.front(); }
  void push(Msg m) { q.push_back(std::move(m)); }
  void pop() { q.erase(q.begin()); }

  friend bool operator==(const Channel&, const Channel&) = default;

  void encode(ByteSink& sink) const {
    sink.u8(static_cast<std::uint8_t>(q.size()));
    for (const Msg& m : q) m.encode(sink);
  }

  static Channel decode(ByteSource& src) {
    Channel c;
    c.q.resize(src.u8());
    for (Msg& m : c.q) m = Msg::decode(src);
    return c;
  }
};

}  // namespace ccref::runtime
