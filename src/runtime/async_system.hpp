// Asynchronous semantics of a refined protocol: the executable form of the
// paper's Tables 1 (remote rules C1-C3, T1-T3) and 2 (home rules C1-C2,
// T1-T6), including the buffer-reservation scheme (progress buffer and ack
// buffer), the implicit-nack rule R3, and the §3.3 request/reply fusion.
//
// The same System interface as sem::RendezvousSystem, so verify::explore
// model-checks it and sim::Simulator executes it.
#pragma once

#include <string>
#include <vector>

#include "ir/permute.hpp"
#include "refine/refined.hpp"
#include "runtime/async_state.hpp"
#include "sem/label.hpp"

namespace ccref::runtime {

class AsyncSystem {
 public:
  using State = AsyncState;

  AsyncSystem(const refine::RefinedProtocol& refined, int num_remotes);

  [[nodiscard]] State initial() const;

  /// All enabled asynchronous transitions, deterministically ordered:
  /// deliveries to the home, deliveries to remotes, home local steps
  /// (τ / C1 / C2), remote local steps (τ / active send / C3).
  [[nodiscard]] std::vector<std::pair<State, sem::Label>> successors(
      const State& s) const {
    return successors(s, sem::LabelMode::Full);
  }

  /// Same enumeration; `LabelMode::Quiet` skips `Label::text` formatting on
  /// the checker's hot path.
  [[nodiscard]] std::vector<std::pair<State, sem::Label>> successors(
      const State& s, sem::LabelMode mode) const;

  /// successors() plus the per-edge footprint structure the ample-set
  /// partial-order reduction needs (verify/por.hpp). `all` is the exact
  /// successors() enumeration (same edges, same order); each Candidate names
  /// the edge subset that touches only remote `process`'s machine and its
  /// two channels: the delivery of down[process]'s head plus the
  /// remote_local(process) range. A candidate is recorded only when it is
  /// persistent by construction: down[process] is nonempty (so the delivery
  /// exists and FIFO-head stability makes it commute with foreign
  /// tail-pushes) and up[process] has a free slot (so no member is
  /// capacity-blocked and foreign pops of up[process] only widen the slack).
  struct PorSuccessors {
    struct Candidate {
      int process;             // the remote whose footprint the set covers
      std::uint32_t delivery;  // index into `all`: down-head delivery
      std::uint32_t local_begin, local_end;  // remote_local range in `all`
    };
    std::vector<std::pair<State, sem::Label>> all;
    std::vector<Candidate> candidates;
  };
  [[nodiscard]] PorSuccessors successors_por(const State& s,
                                             sem::LabelMode mode) const;

  /// COLLAPSE dictionary classes (verify/collapse.hpp): encode() closes one
  /// component per class after the home machine, each remote machine, and
  /// each up/down channel. All remotes share kCompRemote — they are the same
  /// process, so one dictionary serves every position.
  static constexpr std::uint8_t kCompHome = 0;
  static constexpr std::uint8_t kCompRemote = 1;
  static constexpr std::uint8_t kCompUp = 2;
  static constexpr std::uint8_t kCompDown = 3;

  void encode(const State& s, ByteSink& sink) const;
  [[nodiscard]] State decode(ByteSource& src) const;
  [[nodiscard]] std::string describe(const State& s) const;

  /// Apply a remote-index permutation (perm[old] == new) to `s`: reorder the
  /// remote machines and their up/down channels, and rename every
  /// node-indexed fact — message src fields, Node/NodeSet message payloads,
  /// store variables, and the home's pending transient target — through the
  /// same permutation.
  void permute(State& s, const ir::NodePerm& perm) const;

  /// Rewrite `s` in place to its orbit's canonical representative under
  /// remote permutation (verify::SymmetryMode::Canonical).
  void canonicalize(State& s) const;

  [[nodiscard]] const refine::RefinedProtocol& refined() const {
    return *refined_;
  }
  [[nodiscard]] const ir::Protocol& protocol() const {
    return *refined_->base;
  }
  [[nodiscard]] int num_remotes() const { return n_; }

 private:
  // In-place single-transition executor (runtime/async_exec.hpp); shares the
  // private helpers so the two transition semantics cannot drift apart.
  friend class AsyncExec;

  using Out = std::vector<std::pair<AsyncState, sem::Label>>;

  // ---- deliveries ----
  void deliver_to_home(const State& s, int i, sem::LabelMode mode,
                       Out& out) const;
  void deliver_to_remote(const State& s, int i, sem::LabelMode mode,
                         Out& out) const;

  // ---- local steps ----
  void home_local(const State& s, sem::LabelMode mode, Out& out) const;
  void remote_local(const State& s, int i, sem::LabelMode mode,
                    Out& out) const;

  // ---- helpers ----
  /// Does message m satisfy some input guard of home state `sid`? (§3.2's
  /// "known to complete a rendezvous in the current state".)
  [[nodiscard]] bool satisfies_home_guard(const State& s, ir::StateId sid,
                                          const Msg& m) const;
  /// Buffer admission per Table 2 rows T4-T6 / the progress-buffer rule.
  /// Returns true to buffer, false to nack.
  [[nodiscard]] bool admit(const HomeMachine& hm, const State& s,
                           const Msg& m, bool in_transient) const;
  /// Evaluate an output guard's payload with the target visible to the
  /// expression (without mutating the live store).
  [[nodiscard]] std::vector<ir::Value> eval_payload(
      const ir::OutputGuard& og, const ir::Store& store, int actor,
      int target) const;
  /// Apply a completed home output transition (bind target, action, move).
  void apply_home_output(HomeMachine& hm, const ir::OutputGuard& og,
                         int target) const;
  /// Apply an input guard on a process store/state.
  void apply_input(const ir::Process& proc, ir::Store& store,
                   ir::StateId& state, const ir::InputGuard& ig,
                   const Msg& m, int self) const;
  [[nodiscard]] bool input_source_matches(const ir::InputGuard& ig,
                                          const ir::Store& home_store,
                                          std::uint8_t src) const;

  const refine::RefinedProtocol* refined_;
  int n_;
  int k_;    // home buffer capacity
  int cap_;  // channel capacity
};

}  // namespace ccref::runtime
